package anole_test

// One benchmark per table and figure of the paper's evaluation section
// (the per-experiment index of DESIGN.md §5). Each benchmark regenerates
// its artifact through the internal/eval harness against a shared
// paper-scale lab (built once per run) and reports the headline scalar as
// a benchmark metric, so `go test -bench=.` doubles as the reproduction
// run. cmd/anole-bench renders the same artifacts as human-readable rows.

import (
	"io"
	"sync"
	"testing"

	"anole/internal/eval"
	"anole/internal/stats"
	"anole/internal/synth"
)

const benchSeed = 20240777

var (
	benchOnce sync.Once
	benchLab  *eval.Lab
	benchErr  error
)

// lab returns the shared paper-scale lab, building it on first use
// (outside the timed region of each benchmark).
func lab(b *testing.B) *eval.Lab {
	b.Helper()
	benchOnce.Do(func() {
		cfg := eval.DefaultLabConfig(benchSeed)
		benchLab, benchErr = eval.NewLab(cfg)
	})
	if benchErr != nil {
		b.Fatalf("build lab: %v", benchErr)
	}
	return benchLab
}

func BenchmarkFig3_AdaptiveSampling(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig3(l, 800)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.GiniRandom, "gini-random")
			b.ReportMetric(res.GiniAdaptive, "gini-adaptive")
		}
	}
}

func BenchmarkFig4a_ColdStartLatency(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4a(l, 5, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.DeepMs[0], "first-frame-deep-ms")
			b.ReportMetric(res.TinyMs[0], "first-frame-tiny-ms")
			b.ReportMetric(res.SpeedUp, "deep/tiny-latency")
		}
	}
}

func BenchmarkFig4b_ModelUtility(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4b(l, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Top3Share, "top3-share")
			b.ReportMetric(res.Alpha, "powerlaw-alpha")
		}
	}
}

func BenchmarkFig5_DatasetCDFs(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunFig5(l)
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(float64(res.Frames), "frames")
		}
	}
}

func BenchmarkFig6_ConfusionMatrices(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunFig6(l, 300)
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.SceneAccuracy, "scene-acc")
			b.ReportMetric(res.DecisionDiagonal, "decision-diag")
		}
	}
}

func BenchmarkFig7a_SceneDuration(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig7a(l, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.MeanDuration, "mean-duration-frames")
			b.ReportMetric(res.FracUnder40, "frac-under-40")
		}
	}
}

func BenchmarkFig7b_CacheSweep(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig7b(l, 8, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Rows[0].MissRate, "miss-at-1")
			b.ReportMetric(res.Rows[4].MissRate, "miss-at-5")
			b.ReportMetric(res.Rows[4].F1, "f1-at-5")
		}
	}
}

func BenchmarkFig8_CrossScene(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig8(l, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			var anole, sdm float64
			var n int
			for _, series := range res.Dataset {
				for _, s := range series {
					switch s.Method {
					case "Anole":
						anole += s.Mean
					case "SDM":
						sdm += s.Mean
					}
				}
				n++
			}
			b.ReportMetric(anole/float64(n), "anole-mean-f1")
			b.ReportMetric(sdm/float64(n), "sdm-mean-f1")
		}
	}
}

func BenchmarkTable2_ModelSpecs(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunTable2(l)
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(float64(res.Rows[3].FLOPs)/float64(res.Rows[0].FLOPs), "deep/tiny-flops")
		}
	}
}

func BenchmarkTable3_NewScene(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable3(l)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Mean["Anole"], "anole-mean-f1")
			b.ReportMetric(res.Mean["SDM"], "sdm-mean-f1")
		}
	}
}

func BenchmarkTable4_LatencyMemory(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunTable4(l)
		if i == 0 {
			res.Render(io.Discard)
			for _, row := range res.Rows {
				if row.Device == "Jetson TX2 NX" && row.Model == "compressed detector (tiny)" {
					b.ReportMetric(row.LatencyMs, "tiny-tx2-ms")
				}
			}
		}
	}
}

func BenchmarkFig10_RealWorld(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig10(l, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Mean["Anole"], "anole-mean-f1")
			b.ReportMetric(res.Mean["SDM"], "sdm-mean-f1")
		}
	}
}

func BenchmarkFig11_PowerModes(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig11(l, 400)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.AnolePowerSavingVsSDM, "power-saving-vs-sdm")
		}
	}
}

func BenchmarkAblation_SceneShift(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAblationShift(benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Rows[0].Gap, "gap-at-shift0")
			b.ReportMetric(res.Rows[len(res.Rows)-1].Gap, "gap-at-max-shift")
		}
	}
}

func BenchmarkAblation_Repertoire(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAblationRepertoire(l, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(float64(len(res.Rows)), "settings")
		}
	}
}

func BenchmarkAblation_CachePolicy(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAblationCache(l, 3, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			for _, row := range res.Rows {
				if row.Policy == "LFU" {
					b.ReportMetric(row.MissRate, "lfu-miss")
				}
			}
		}
	}
}

// BenchmarkEndToEnd_RuntimeFrame measures the substitute-model runtime's
// real (not simulated) per-frame cost: decision + cache + detection on
// the host CPU.
func BenchmarkEndToEnd_RuntimeFrame(b *testing.B) {
	l := lab(b)
	rt, err := l.NewRuntime(5, 0)
	if err != nil {
		b.Fatal(err)
	}
	frames := l.Corpus.Frames(synth.Test)
	if len(frames) == 0 {
		b.Fatal("no frames")
	}
	var agg stats.PRF1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rt.ProcessFrame(frames[i%len(frames)])
		if err != nil {
			b.Fatal(err)
		}
		agg = agg.Add(res.Metrics)
	}
	_ = agg
}

// BenchmarkContinual_Expansion regenerates the continual-adaptation
// experiment: flag a novel scene via the calibrated novelty score, expand
// the repertoire, and measure the accuracy recovered.
func BenchmarkContinual_Expansion(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunContinual(l, 120)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.BeforeF1, "before-f1")
			b.ReportMetric(res.AfterF1, "after-f1")
			b.ReportMetric(res.FlagRate, "flag-rate")
		}
	}
}

// BenchmarkSelection_Decomposition regenerates the selection-quality
// decomposition (oracle vs scene-oracle vs decision vs runtime).
func BenchmarkSelection_Decomposition(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunSelection(l, 600)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.Oracle, "oracle-f1")
			b.ReportMetric(res.Runtime, "runtime-f1")
			b.ReportMetric(res.Top1Agreement, "top1-agreement")
		}
	}
}

// BenchmarkAblation_Thermal regenerates the passive-cooling ablation:
// sustained 30 FPS load with thermal throttling enabled.
func BenchmarkAblation_Thermal(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunThermal(l, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			for _, row := range res.Rows {
				if row.Method == "SDM" {
					b.ReportMetric(row.Throttle, "sdm-throttle")
				} else {
					b.ReportMetric(row.Throttle, "anole-throttle")
				}
			}
		}
	}
}

// BenchmarkAblation_Quantize regenerates the repertoire-quantization
// sweep (accuracy vs weight precision vs download size).
func BenchmarkAblation_Quantize(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunQuantize(l, nil, 600)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			for _, row := range res.Rows {
				if row.Bits == 8 {
					b.ReportMetric(row.F1, "int8-f1")
					b.ReportMetric(row.Compression, "int8-compression")
				}
			}
		}
	}
}

// BenchmarkAblation_Hysteresis regenerates the switch-hysteresis sweep.
func BenchmarkAblation_Hysteresis(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunHysteresis(l, 600, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(float64(res.Rows[0].Switches), "switches-h1")
			b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Switches), "switches-h8")
		}
	}
}

// BenchmarkMotivation_Offload regenerates the offloading-vs-local
// motivation comparison under a sweep of link stabilities.
func BenchmarkMotivation_Offload(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunOffload(l, 600, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Render(io.Discard)
			b.ReportMetric(res.AnoleP99Ms, "anole-p99-ms")
			b.ReportMetric(res.Rows[len(res.Rows)-1].OffloadMissPct, "offload-worst-miss-pct")
		}
	}
}
