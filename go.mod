module anole

go 1.22
