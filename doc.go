// Package anole is a from-scratch Go reproduction of "Anole: Adapting
// Diverse Compressed Models for Cross-scene Prediction on Mobile Devices"
// (Li et al., ICDCS 2024).
//
// The public entry points live under internal/ and are exercised by the
// binaries in cmd/ and the runnable programs in examples/. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// substitution decisions, and EXPERIMENTS.md for the paper-vs-measured
// record of every reproduced table and figure. The root-level
// bench_test.go regenerates each of those artifacts as a testing.B
// benchmark.
//
// Concurrency: core.Runtime serves a single frame stream;
// core.MultiRuntime multiplexes N streams over one shared thread-safe
// modelcache.Sharded, with every stream running on the same frozen
// bundle (models are immutable nn.Weights programs executed against
// pooled per-call scratch, so N streams hold one resident copy of the
// repertoire — DESIGN.md §8). A 1-stream MultiRuntime is
// frame-for-frame identical to Runtime. bench_multistream_test.go
// sweeps streams x cache slots and measures the aggregate simulated
// throughput gain over running the same streams sequentially; the
// concurrency suite is written to pass `go test -race ./...`, and the
// untrusted-byte decoders (internal/trace, internal/repo) carry fuzz
// targets — see README.md "Testing".
package anole
