// Package anole is a from-scratch Go reproduction of "Anole: Adapting
// Diverse Compressed Models for Cross-scene Prediction on Mobile Devices"
// (Li et al., ICDCS 2024).
//
// The public entry points live under internal/ and are exercised by the
// binaries in cmd/ and the runnable programs in examples/. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// substitution decisions, and EXPERIMENTS.md for the paper-vs-measured
// record of every reproduced table and figure. The root-level
// bench_test.go regenerates each of those artifacts as a testing.B
// benchmark.
package anole
