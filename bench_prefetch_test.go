package anole_test

// Prefetch evaluation: the sweep behind DESIGN.md §3's prefetching row.
// Both the benchmark and the deterministic regression test drive a
// runtime over a cyclic scene workload (A→B→…→A, each scene held for a
// block of frames) — the recurring-transition setting Anole targets,
// and the smallest workload whose switches a first-order Markov model
// predicts perfectly after one lap. The cycle visits one more model
// than the cache holds, so the demand-only arm thrashes (every switch
// is a cold miss) while the prefetch arm warms the next model during
// the current block.

import (
	"fmt"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// probeReps finds one representative frame for each of k distinct
// desired models by streaming frames through a throwaway runtime whose
// cache holds the whole repertoire (so misses never perturb ranking).
// The decision module ranks on frame features alone, so a frame's
// desired model is stable under repetition.
func probeReps(tb testing.TB, b *core.Bundle, frames []*synth.Frame, k int) []*synth.Frame {
	tb.Helper()
	rt, err := core.NewRuntime(b, core.RuntimeConfig{CacheSlots: len(b.Detectors)})
	if err != nil {
		tb.Fatal(err)
	}
	reps := make([]*synth.Frame, 0, k)
	seen := make(map[int]bool, k)
	for _, f := range frames {
		res, err := rt.ProcessFrame(f)
		if err != nil {
			tb.Fatal(err)
		}
		if !seen[res.Desired] {
			seen[res.Desired] = true
			reps = append(reps, f)
			if len(reps) == k {
				return reps
			}
		}
	}
	tb.Fatalf("corpus elicits only %d distinct desired models, need %d", len(reps), k)
	return nil
}

// blockWorkload builds the cyclic workload: k scenes visited round-robin
// for `cycles` laps, each held for blockLen frames.
func blockWorkload(tb testing.TB, b *core.Bundle, frames []*synth.Frame, k, blockLen, cycles int) []*synth.Frame {
	tb.Helper()
	reps := probeReps(tb, b, frames, k)
	out := make([]*synth.Frame, 0, k*blockLen*cycles)
	for c := 0; c < cycles; c++ {
		for _, f := range reps {
			for j := 0; j < blockLen; j++ {
				out = append(out, f)
			}
		}
	}
	return out
}

// lockedLinkConfig returns a link pinned to one state whose bandwidth is
// calibrated so the largest model transfers in just under transferTicks
// frame intervals. Pinning removes link randomness from the comparison,
// and calibrating to the repertoire keeps the sweep meaningful at any
// model scale: what matters to prefetching is transfer time measured in
// frames of lead time, not absolute megabytes.
func lockedLinkConfig(models []prefetch.Model, state netsim.LinkState, transferTicks int, interval time.Duration) netsim.Config {
	var maxBytes int64
	for _, m := range models {
		if m.Bytes > maxBytes {
			maxBytes = m.Bytes
		}
	}
	const rtt = 40 * time.Millisecond
	budget := (time.Duration(transferTicks)*interval - rtt) * 9 / 10
	bw := float64(maxBytes) / (budget.Seconds() * (1 << 20))
	var row [3]float64
	row[state] = 1
	return netsim.Config{
		GoodBandwidthMBps:     bw,
		GoodRTT:               rtt,
		DegradedBandwidthMBps: bw,
		DegradedRTT:           rtt,
		Transition:            [3][3]float64{row, row, row},
	}
}

// newLinkRuntime wires a runtime to a fresh simulated link. topK -1 is
// the demand-only arm: cold misses still pay the link, nothing is
// prefetched.
func newLinkRuntime(tb testing.TB, b *core.Bundle, net netsim.Config, slots, topK int, seed uint64) *core.Runtime {
	tb.Helper()
	link, err := netsim.NewLink(net, xrand.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	lf, err := prefetch.NewLinkFetcher(link, core.PrefetchModels(b), prefetch.DefaultFrameInterval)
	if err != nil {
		tb.Fatal(err)
	}
	rt, err := core.NewRuntime(b, core.RuntimeConfig{
		CacheSlots: slots,
		Prefetch:   &prefetch.Config{Fetcher: lf, TopK: topK},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rt
}

// runWorkload streams the workload and returns settled stats.
func runWorkload(tb testing.TB, rt *core.Runtime, workload []*synth.Frame) core.RunStats {
	tb.Helper()
	defer rt.Close()
	for _, f := range workload {
		if _, err := rt.ProcessFrame(f); err != nil {
			tb.Fatal(err)
		}
	}
	rt.Close() // settle in-flight prefetch counters before the snapshot
	return rt.Stats()
}

// TestPrefetchReducesStallsOnDegradedLink is the acceptance check for
// the prefetching subsystem: on a link locked to its Degraded state,
// turning prediction on must cut both the mean switch stall and the
// cold-miss rate well below the demand-only arm. The workload cycles
// three scenes over a two-slot cache, so demand-only misses on every
// switch; the prefetch arm pays only the first lap, before the
// transition model has seen the cycle.
func TestPrefetchReducesStallsOnDegradedLink(t *testing.T) {
	fx := testutil.Shared(t)
	const (
		slots    = 2
		blockLen = 12
		cycles   = 8
	)
	frames := fx.Corpus.Frames(synth.Test)
	workload := blockWorkload(t, fx.Bundle, frames, slots+1, blockLen, cycles)
	net := lockedLinkConfig(core.PrefetchModels(fx.Bundle), netsim.Degraded, 6, prefetch.DefaultFrameInterval)

	run := func(topK int) core.RunStats {
		return runWorkload(t, newLinkRuntime(t, fx.Bundle, net, slots, topK, 7), workload)
	}
	off := run(-1)
	on := run(2)

	if off.Switches == 0 || on.Switches != off.Switches {
		t.Fatalf("switch counts diverge: on %d, off %d", on.Switches, off.Switches)
	}
	// Demand-only thrashes: three models round-robin through two slots.
	if off.ColdMisses < off.Switches {
		t.Fatalf("demand-only arm should miss every switch: %d misses, %d switches",
			off.ColdMisses, off.Switches)
	}
	if on.ColdMisses*2 >= off.ColdMisses {
		t.Fatalf("prefetch did not cut cold misses: on %d, off %d", on.ColdMisses, off.ColdMisses)
	}
	if on.FetchStall*2 >= off.FetchStall {
		t.Fatalf("prefetch did not cut fetch stall: on %v, off %v", on.FetchStall, off.FetchStall)
	}
	rt := newLinkRuntime(t, fx.Bundle, net, slots, 2, 7)
	st := runWorkloadWithScheduler(t, rt, workload)
	if st.Completed == 0 || st.PrefetchedBytes == 0 {
		t.Fatalf("no completed prefetches: %+v", st)
	}
}

// runWorkloadWithScheduler replays the workload and returns the
// scheduler counters (captured before Close detaches them).
func runWorkloadWithScheduler(tb testing.TB, rt *core.Runtime, workload []*synth.Frame) prefetch.SchedulerStats {
	tb.Helper()
	sched := rt.Prefetcher()
	if sched == nil {
		tb.Fatal("runtime has no scheduler")
	}
	runWorkload(tb, rt, workload)
	return sched.Stats()
}

// BenchmarkPrefetchSweep reports mean switch stall and cold-miss rate
// across link quality × cache slots × prefetch on/off, on the shared
// paper-scale lab. The good link transfers a model in ~2 frames of lead
// time, the degraded link in ~6; blocks are 12 frames, so both leave
// room for a correct prediction to land.
func BenchmarkPrefetchSweep(b *testing.B) {
	l := lab(b)
	frames := l.Corpus.Frames(synth.Test)
	models := core.PrefetchModels(l.Bundle)
	links := []struct {
		name  string
		state netsim.LinkState
		ticks int
	}{
		{"good", netsim.Good, 2},
		{"degraded", netsim.Degraded, 6},
	}
	arms := []struct {
		name string
		topK int
	}{
		{"off", -1},
		{"on", 2},
	}
	for _, link := range links {
		net := lockedLinkConfig(models, link.state, link.ticks, prefetch.DefaultFrameInterval)
		for _, slots := range []int{2, 3} {
			workload := blockWorkload(b, l.Bundle, frames, slots+1, 12, 8)
			for _, arm := range arms {
				name := fmt.Sprintf("link=%s/slots=%d/prefetch=%s", link.name, slots, arm.name)
				b.Run(name, func(b *testing.B) {
					var st core.RunStats
					for i := 0; i < b.N; i++ {
						rt := newLinkRuntime(b, l.Bundle, net, slots, arm.topK, 7)
						st = runWorkload(b, rt, workload)
					}
					switches := float64(max(1, st.Switches))
					b.ReportMetric(float64(st.FetchStall.Milliseconds())/switches, "stall-ms/switch")
					b.ReportMetric(float64(st.ColdMisses)/switches, "cold-miss/switch")
				})
			}
		}
	}
}
