// Package testutil builds shared fixtures for tests that need a fully
// profiled Anole bundle: a small synthetic corpus and the offline
// pipeline run over it. The fixture is built once per test binary and
// memoized, since profiling trains a dozen networks.
package testutil

import (
	"sync"
	"testing"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/scene"
	"anole/internal/synth"
)

// Fixture bundles the memoized corpus and profiled bundle.
type Fixture struct {
	World  *synth.World
	Corpus *synth.Corpus
	Bundle *core.Bundle
}

var (
	once    sync.Once
	fixture Fixture
	buildE  error
)

// SmallProfileConfig returns a profiling configuration sized for unit
// tests: a handful of models, short training budgets.
func SmallProfileConfig(seed uint64) core.ProfileConfig {
	return core.ProfileConfig{
		Seed:    seed,
		Encoder: scene.EncoderConfig{Epochs: 15},
		Repertoire: scene.RepertoireConfig{
			N:     6,
			Delta: 0.05,
			MaxK:  4,
			Train: detect.TrainConfig{Epochs: 8},
		},
		Sampling: sampling.Config{Kappa: 300, AcceptF1: 0.3},
		Decision: decision.Config{Epochs: 25},
	}
}

// Shared returns the memoized fixture, failing the test on build errors.
func Shared(tb testing.TB) Fixture {
	tb.Helper()
	once.Do(func() {
		w, err := synth.NewWorld(synth.DefaultConfig(424242))
		if err != nil {
			buildE = err
			return
		}
		corpus := w.GenerateCorpus(synth.DefaultProfiles(0.25))
		cfg := SmallProfileConfig(424242)
		bundle, err := core.Profile(corpus, cfg)
		if err != nil {
			buildE = err
			return
		}
		fixture = Fixture{World: w, Corpus: corpus, Bundle: bundle}
	})
	if buildE != nil {
		tb.Fatalf("testutil: build fixture: %v", buildE)
	}
	return fixture
}
