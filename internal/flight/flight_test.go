package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"anole/internal/telemetry"
)

// tickClock is a deterministic recorder clock advancing 1ms per call.
func tickClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n
	}
}

func TestRecorderRingBoundsAndOrder(t *testing.T) {
	r := NewRecorder(Config{GlobalCap: 4, StreamCap: 2, Now: tickClock(),
		TripOn: func(Event) bool { return false }})
	for i := 0; i < 10; i++ {
		r.Record(Event{Stream: i % 2, Kind: KindVerdict, Detail: fmt.Sprintf("v%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("global ring kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := fmt.Sprintf("v%d", 6+i); ev.Detail != want {
			t.Fatalf("event %d detail %q, want %q (oldest-first)", i, ev.Detail, want)
		}
		if i > 0 && got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not monotone: %d then %d", got[i-1].Seq, got[i].Seq)
		}
		if i > 0 && got[i].At <= got[i-1].At {
			t.Fatalf("timestamps not monotone under the injected clock")
		}
	}
	s0 := r.StreamSnapshot(0)
	if len(s0) != 2 || s0[0].Detail != "v6" || s0[1].Detail != "v8" {
		t.Fatalf("stream 0 ring = %+v, want v6,v8", s0)
	}
	if r.StreamSnapshot(7) != nil {
		t.Fatal("unknown stream should read empty")
	}
}

func TestAnomalyPredicate(t *testing.T) {
	cases := []struct {
		ev   Event
		want bool
	}{
		{Event{Kind: KindRollback}, true},
		{Event{Kind: KindQuarantine}, true},
		{Event{Kind: KindPressure, Detail: "critical"}, true},
		{Event{Kind: KindPressure, Detail: "elevated"}, false},
		{Event{Kind: KindCheckpoint, Detail: DetailReject}, true},
		{Event{Kind: KindCheckpoint, Detail: DetailRestore}, false},
		{Event{Kind: KindVerdict, Detail: "shed"}, false},
		{Event{Kind: KindBreaker, Detail: "open"}, false},
		{Event{Kind: KindSwap}, false},
	}
	for _, c := range cases {
		if got := Anomaly(c.ev); got != c.want {
			t.Errorf("Anomaly(%+v) = %v, want %v", c.ev, got, c.want)
		}
	}
}

func TestTripFreezesAndDumps(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(16, func() time.Duration { return 0 })
	tr.Record(telemetry.Span{Stream: 3, Stage: "adapt", Trace: "d3.g1.1", Event: "report"})
	tr.Record(telemetry.Span{Stream: 0, Stage: "decide", Trace: "f0.1"})
	tr.Record(telemetry.Span{Stream: 3, Stage: "adapt", Trace: "d3.g1.1", Event: "rollback"})

	var hooked *Dump
	r := NewRecorder(Config{
		Now:     tickClock(),
		Spans:   tr,
		Gather:  reg,
		Info:    map[string]string{"seed": "13"},
		OnDump:  func(d *Dump) { hooked = d },
		Metrics: reg,
	})
	reg.Counter("anole_core_frames_total", "").Add(42)

	r.Record(Event{Stream: 3, Kind: KindVerdict, Detail: "shed", Trace: "f3.9"})
	if r.Frozen() {
		t.Fatal("non-anomaly froze the recorder")
	}
	r.Record(Event{Stream: 3, Kind: KindRollback, Detail: "candidate rejected", Trace: "d3.g1.1", Value: 1})
	if !r.Frozen() {
		t.Fatal("rollback did not freeze the recorder")
	}
	d := r.LastDump()
	if d == nil || hooked != d {
		t.Fatal("dump not captured or OnDump not invoked with it")
	}
	if d.Version != DumpVersion || !strings.HasPrefix(d.Reason, "rollback") {
		t.Fatalf("dump header %+v", d)
	}
	if d.Trigger.Kind != KindRollback || len(d.Events) != 2 {
		t.Fatalf("dump trigger/events wrong: %+v", d)
	}
	if len(d.StreamEvents) != 2 {
		t.Fatalf("stream events = %d, want 2", len(d.StreamEvents))
	}
	// Linked spans: exactly the trigger trace's spans, both hops.
	if len(d.Spans) != 2 {
		t.Fatalf("linked spans = %d, want 2 (trace-filtered)", len(d.Spans))
	}
	for _, s := range d.Spans {
		if s.Trace != "d3.g1.1" {
			t.Fatalf("unlinked span leaked into dump: %+v", s)
		}
	}
	if d.Metrics["anole_core_frames_total"] != 42 {
		t.Fatalf("metrics snapshot missing: %v", d.Metrics)
	}
	if d.Config["seed"] != "13" {
		t.Fatalf("config echo missing: %v", d.Config)
	}

	// Frozen: further events drop, evidence survives.
	r.Record(Event{Stream: 3, Kind: KindVerdict, Detail: "late"})
	if got := r.Snapshot(); len(got) != 2 {
		t.Fatalf("frozen ring mutated: %d events", len(got))
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	r.Thaw()
	r.Record(Event{Stream: 3, Kind: KindVerdict, Detail: "post-thaw"})
	if got := r.Snapshot(); len(got) != 3 {
		t.Fatalf("thawed recorder did not record: %d events", len(got))
	}

	m := telemetry.Map(reg)
	if m["anole_flight_events_total"] != 3 || m["anole_flight_trips_total"] != 1 || m["anole_flight_dropped_total"] != 1 {
		t.Fatalf("flight metrics = %v", m)
	}
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("scheme: %v", err)
	}
}

func TestManualTrip(t *testing.T) {
	r := NewRecorder(Config{Now: tickClock()})
	r.Trip("watchdog stall", Event{Stream: GlobalStream, Kind: KindQuarantine, Detail: "manual"})
	if !r.Frozen() || r.LastDump() == nil {
		t.Fatal("manual trip did not freeze/capture")
	}
	if r.LastDump().Reason != "watchdog stall" {
		t.Fatalf("reason %q", r.LastDump().Reason)
	}
	// A second trip while frozen is a no-op.
	first := r.LastDump()
	r.Trip("again", Event{Kind: KindRollback})
	if r.LastDump() != first {
		t.Fatal("trip while frozen replaced the dump")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindRollback})
	r.Trip("x", Event{})
	r.Thaw()
	if r.Frozen() || r.Snapshot() != nil || r.StreamSnapshot(0) != nil || r.LastDump() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// TestRecorderConcurrentWriters hammers one recorder from many
// goroutines — writers, trippers, and readers — and must pass under
// -race with consistent final counts.
func TestRecorderConcurrentWriters(t *testing.T) {
	r := NewRecorder(Config{GlobalCap: 64, StreamCap: 8})
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 97 {
				case 13:
					r.Record(Event{Stream: w, Kind: KindPressure, Detail: "critical"})
					r.Thaw()
				case 31:
					r.Trip("stress", Event{Stream: w, Kind: KindQuarantine})
					r.Thaw()
				default:
					r.Record(Event{Stream: w, Kind: KindVerdict, Detail: "shed", Trace: "f0.1"})
				}
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = r.StreamSnapshot(w)
					_ = r.LastDump()
					_ = r.Frozen()
				}
			}
		}(w)
	}
	wg.Wait()
	r.Thaw()
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("global ring = %d events, want full 64", got)
	}
	if r.LastDump() == nil {
		t.Fatal("no dump survived the stress")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := &Dump{
		Version: DumpVersion,
		Reason:  "rollback:candidate rejected",
		At:      5 * time.Millisecond,
		Trigger: Event{Seq: 9, Stream: 3, Kind: KindRollback, Trace: "d3.g1.1", Value: 1},
		Events:  []Event{{Seq: 8, Kind: KindPressure, Detail: "elevated"}},
		Spans:   []telemetry.Span{{Seq: 1, Stream: 3, Stage: "adapt", Trace: "d3.g1.1", Event: "report"}},
		Metrics: map[string]float64{"anole_core_frames_total": 10},
		Config:  map[string]string{"seed": "13"},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != d.Reason || got.Trigger != d.Trigger || len(got.Events) != 1 ||
		len(got.Spans) != 1 || got.Spans[0].Trace != "d3.g1.1" ||
		got.Metrics["anole_core_frames_total"] != 10 || got.Config["seed"] != "13" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadDumpRejects(t *testing.T) {
	if _, err := ReadDump(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ReadDump(strings.NewReader(`{"version":99,"reason":"x"}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadDump(strings.NewReader(`{"version":1}{"version":1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(Config{Now: tickClock()})
	h := Handler(r)

	get := func(path string) (*httptest.ResponseRecorder, status) {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var st status
		if rec.Code == 200 && strings.Contains(path, "dump=1") == false {
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatalf("bad body: %v", err)
			}
		}
		return rec, st
	}

	rec, _ := get("/debug/flight?dump=1")
	if rec.Code != 404 {
		t.Fatalf("dump before anomaly: status %d, want 404", rec.Code)
	}
	r.Record(Event{Stream: 1, Kind: KindVerdict, Detail: "shed"})
	rec, st := get("/debug/flight")
	if rec.Code != 200 || st.Frozen || len(st.Recent) != 1 || st.Dump != nil {
		t.Fatalf("live status = %d %+v", rec.Code, st)
	}
	r.Record(Event{Stream: 1, Kind: KindRollback, Detail: "rejected"})
	rec, st = get("/debug/flight?stream=1")
	if rec.Code != 200 || !st.Frozen || st.Dump == nil || len(st.Recent) != 2 {
		t.Fatalf("post-anomaly status = %d %+v", rec.Code, st)
	}
	rec, _ = get("/debug/flight?dump=1")
	if rec.Code != 200 {
		t.Fatalf("dump fetch: status %d", rec.Code)
	}
	if d, err := ReadDump(rec.Body); err != nil || d.Trigger.Kind != KindRollback {
		t.Fatalf("endpoint dump not ReadDump-compatible: %v", err)
	}
	rec, _ = get("/debug/flight?stream=bogus")
	if rec.Code != 400 {
		t.Fatalf("bad stream: status %d, want 400", rec.Code)
	}
}
