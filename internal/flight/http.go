package flight

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// status is the /debug/flight response envelope: the recorder's live
// state plus the last captured dump (null until an anomaly trips).
type status struct {
	Frozen  bool    `json:"frozen"`
	Dropped int64   `json:"dropped"`
	Recent  []Event `json:"recent"`
	Dump    *Dump   `json:"dump,omitempty"`
}

// recentLimit caps the live-event window the handler returns alongside
// the dump.
const recentLimit = 64

// Handler serves the recorder over HTTP — the GET /debug/flight
// surface. The response carries the frozen flag, the most recent
// global events (?stream=N selects one stream's ring instead), and the
// last captured dump when an anomaly has tripped. ?dump=1 returns the
// bare dump artifact (404 until one exists), byte-identical to the
// WriteDump file format.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if q.Get("dump") == "1" {
			d := r.LastDump()
			if d == nil {
				http.Error(w, "no flight dump captured", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = WriteDump(w, d)
			return
		}
		events := r.Snapshot()
		if v := q.Get("stream"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad stream: want a non-negative integer", http.StatusBadRequest)
				return
			}
			events = r.StreamSnapshot(n)
		}
		if len(events) > recentLimit {
			events = events[len(events)-recentLimit:]
		}
		if events == nil {
			events = []Event{}
		}
		st := status{Recent: events, Dump: r.LastDump()}
		if r != nil {
			st.Frozen = r.Frozen()
			st.Dropped = r.Dropped()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(st)
	})
}
