package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"anole/internal/telemetry"
)

// DumpVersion is the flight-dump format version WriteDump emits and
// ReadDump accepts. Bump it when the Dump schema changes shape
// incompatibly; ReadDump rejects versions it does not know rather than
// silently misreading fields.
const DumpVersion = 1

// maxDumpBytes bounds how much JSON ReadDump will buffer — a guard
// against a truncated-then-padded or adversarial artifact exhausting
// memory.
const maxDumpBytes = 32 << 20

// Dump is the diagnostic bundle captured when an anomaly freezes the
// recorder: the trigger, the retained global and per-stream events,
// the spans causally linked to the trigger's trace, a flattened
// metrics snapshot, and the run-configuration echo.
type Dump struct {
	Version int           `json:"version"`
	Reason  string        `json:"reason"`
	At      time.Duration `json:"atNs"`
	Trigger Event         `json:"trigger"`
	// Events is the global ring at trip time, oldest first.
	Events []Event `json:"events"`
	// StreamEvents is the trigger stream's ring (empty for global
	// triggers).
	StreamEvents []Event `json:"streamEvents,omitempty"`
	// Spans are the tracer spans linked to the trigger: its whole trace
	// when it carries one, otherwise the most recent spans.
	Spans []telemetry.Span `json:"spans,omitempty"`
	// Metrics is the flattened telemetry snapshot (telemetry.Map).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Config echoes the run configuration the recorder was built with.
	Config map[string]string `json:"config,omitempty"`
}

// WriteDump serializes a dump as indented JSON — the artifact format
// CI uploads and ReadDump decodes.
func WriteDump(w io.Writer, d *Dump) error {
	if d == nil {
		return fmt.Errorf("flight: nil dump")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("flight: encode dump: %w", err)
	}
	return nil
}

// ReadDump decodes a flight-dump artifact, rejecting malformed JSON,
// unknown format versions, oversized payloads, and trailing garbage.
func ReadDump(r io.Reader) (*Dump, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxDumpBytes+1))
	if err != nil {
		return nil, fmt.Errorf("flight: read dump: %w", err)
	}
	if len(data) > maxDumpBytes {
		return nil, fmt.Errorf("flight: dump exceeds %d bytes", maxDumpBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var d Dump
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: decode dump: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("flight: trailing data after dump")
	}
	if d.Version != DumpVersion {
		return nil, fmt.Errorf("flight: unsupported dump version %d (want %d)", d.Version, DumpVersion)
	}
	return &d, nil
}
