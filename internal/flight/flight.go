// Package flight is the runtime's anomaly flight recorder: a bounded,
// race-clean ring of structured events (terminal frame verdicts,
// pressure-level transitions, breaker state changes, quarantines,
// rollbacks, checkpoint restores) kept per stream and globally, like a
// cockpit recorder that is always running but only read after
// something goes wrong.
//
// When an anomaly event lands — a rollback, a Critical pressure
// transition, a watchdog quarantine, a checkpoint reject — the
// recorder freezes the rings so the evidence cannot be overwritten and
// captures a diagnostic Dump: the retained events, the spans causally
// linked to the trigger's trace, a metrics snapshot, and the run
// configuration. The dump serializes to a JSON artifact (WriteDump)
// and serves over HTTP (Handler, mounted at /debug/flight).
//
// Like the telemetry package it builds on, flight is clock-injectable
// (simulated-time runs record deterministic timestamps) and nil-safe:
// every method on a nil *Recorder is a no-op, so instrumentation sites
// need no "is the recorder on?" branches.
package flight

import (
	"sync"
	"time"

	"anole/internal/telemetry"
)

// Kind classifies a flight-recorder event.
type Kind string

// Event kinds recorded by the runtime.
const (
	// KindVerdict is a terminal frame verdict other than a clean serve:
	// a frame downgraded, shed, or disposed while quarantined. Detail
	// carries the verdict name.
	KindVerdict Kind = "verdict"
	// KindPressure is a pressure-level transition; Detail carries the
	// new level's name and Value its numeric level.
	KindPressure Kind = "pressure"
	// KindBreaker is a circuit-breaker state change; Detail carries the
	// new state's name.
	KindBreaker Kind = "breaker"
	// KindQuarantine is a watchdog stream quarantine.
	KindQuarantine Kind = "quarantine"
	// KindRollback is a canary rollback; Detail carries the reason and
	// Value the generation rolled back to.
	KindRollback Kind = "rollback"
	// KindCheckpoint is a checkpoint restore outcome; Detail is
	// "restore" for a clean restore or "reject" for a checkpoint the
	// codec refused.
	KindCheckpoint Kind = "checkpoint"
	// KindSwap is a bundle swap landing on a stream; Value carries the
	// generation swapped in.
	KindSwap Kind = "swap"
)

// Checkpoint event details.
const (
	DetailRestore = "restore"
	DetailReject  = "reject"
)

// GlobalStream is the Stream value of events not tied to one stream
// (breaker changes, rollbacks, checkpoint events).
const GlobalStream = -1

// Event is one structured flight-recorder entry. Seq is recorder-wide
// monotone; At is the recorder clock at Record time. Stream is the
// stream the event concerns (GlobalStream for fleet-wide events).
// Trace links the event to the causal trace it belongs to, so a dump
// can pull the spans around it.
type Event struct {
	Seq    int64         `json:"seq"`
	At     time.Duration `json:"atNs"`
	Stream int           `json:"stream"`
	Kind   Kind          `json:"kind"`
	Detail string        `json:"detail,omitempty"`
	Trace  string        `json:"trace,omitempty"`
	Value  float64       `json:"value,omitempty"`
}

// Anomaly reports whether an event is an anomaly trigger: a rollback,
// a transition to Critical pressure, a watchdog quarantine, or a
// checkpoint reject. This is the default trip predicate; Config.TripOn
// overrides it.
func Anomaly(ev Event) bool {
	switch ev.Kind {
	case KindRollback, KindQuarantine:
		return true
	case KindPressure:
		return ev.Detail == "critical"
	case KindCheckpoint:
		return ev.Detail == DetailReject
	}
	return false
}

// Config tunes a Recorder. Zero values select the documented defaults.
type Config struct {
	// GlobalCap bounds the global event ring (default 1024).
	GlobalCap int
	// StreamCap bounds each per-stream ring (default 128).
	StreamCap int
	// Now is the recorder clock (default: wall time since NewRecorder).
	// Inject the simulation clock for deterministic event timestamps.
	Now func() time.Duration
	// TripOn overrides the anomaly predicate (default Anomaly).
	TripOn func(Event) bool
	// Spans, when non-nil, is the tracer a dump pulls causally linked
	// spans from.
	Spans *telemetry.Tracer
	// Gather, when non-nil, supplies the metrics snapshot embedded in a
	// dump.
	Gather telemetry.Gatherer
	// Info is the run-configuration echo embedded verbatim in every
	// dump (flag values, seeds, stream counts).
	Info map[string]string
	// OnDump, when non-nil, is invoked synchronously with each captured
	// dump — the hook anole-run uses to write the JSON artifact the
	// moment the anomaly happens rather than at exit.
	OnDump func(*Dump)
	// Metrics optionally publishes anole_flight_* series.
	Metrics *telemetry.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.GlobalCap <= 0 {
		out.GlobalCap = 1024
	}
	if out.StreamCap <= 0 {
		out.StreamCap = 128
	}
	if out.Now == nil {
		start := time.Now()
		out.Now = func() time.Duration { return time.Since(start) }
	}
	if out.TripOn == nil {
		out.TripOn = Anomaly
	}
	return out
}

// ring is a bounded event ring: the most recent cap events retained,
// oldest overwritten. Callers hold the Recorder lock.
type ring struct {
	buf   []Event
	total int64
}

func (r *ring) push(ev Event, cap_ int) {
	if len(r.buf) < cap_ {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%int64(cap_)] = ev
	}
	r.total++
}

func (r *ring) snapshot(cap_ int) []Event {
	if r.total <= int64(len(r.buf)) {
		return append([]Event(nil), r.buf...)
	}
	head := int(r.total % int64(cap_))
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use; a nil *Recorder ignores every call.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	global  ring
	streams map[int]*ring
	seq     int64
	frozen  bool
	dropped int64
	dump    *Dump

	// Telemetry handles (nil-safe).
	cEvents  *telemetry.Counter
	cDropped *telemetry.Counter
	cTrips   *telemetry.Counter
	gFrozen  *telemetry.Gauge
}

// NewRecorder builds a Recorder from cfg (zero-value fields get
// defaults).
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults(), streams: make(map[int]*ring)}
	if reg := r.cfg.Metrics; reg != nil {
		r.cEvents = reg.Counter("anole_flight_events_total", "flight-recorder events recorded")
		r.cDropped = reg.Counter("anole_flight_dropped_total", "events dropped while the recorder was frozen")
		r.cTrips = reg.Counter("anole_flight_trips_total", "anomaly trips that froze the recorder and captured a dump")
		r.gFrozen = reg.Gauge("anole_flight_frozen", "1 while the recorder is frozen on an anomaly, else 0")
	}
	return r
}

// Record appends one event, stamping its Seq and At. While the
// recorder is frozen the event is counted and dropped, so the evidence
// around the anomaly that froze it survives. If the event satisfies
// the trip predicate, the recorder captures a Dump (including this
// event), freezes, and invokes OnDump. Nil-safe.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.frozen {
		r.dropped++
		r.mu.Unlock()
		r.cDropped.Inc()
		return
	}
	r.seq++
	ev.Seq = r.seq
	ev.At = r.cfg.Now()
	r.global.push(ev, r.cfg.GlobalCap)
	if ev.Stream != GlobalStream {
		sr := r.streams[ev.Stream]
		if sr == nil {
			sr = &ring{}
			r.streams[ev.Stream] = sr
		}
		sr.push(ev, r.cfg.StreamCap)
	}
	trip := r.cfg.TripOn(ev)
	var dump *Dump
	if trip {
		dump = r.buildDumpLocked(string(ev.Kind)+":"+ev.Detail, ev)
		r.dump = dump
		r.frozen = true
	}
	r.mu.Unlock()

	r.cEvents.Inc()
	if trip {
		r.cTrips.Inc()
		r.gFrozen.Set(1)
		if r.cfg.OnDump != nil {
			r.cfg.OnDump(dump)
		}
	}
}

// Trip manually freezes the recorder and captures a dump, as if an
// anomaly event had landed. The trigger event is recorded first.
// No-op while already frozen. Nil-safe.
func (r *Recorder) Trip(reason string, trigger Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.frozen {
		r.mu.Unlock()
		return
	}
	r.seq++
	trigger.Seq = r.seq
	trigger.At = r.cfg.Now()
	r.global.push(trigger, r.cfg.GlobalCap)
	dump := r.buildDumpLocked(reason, trigger)
	r.dump = dump
	r.frozen = true
	r.mu.Unlock()

	r.cEvents.Inc()
	r.cTrips.Inc()
	r.gFrozen.Set(1)
	if r.cfg.OnDump != nil {
		r.cfg.OnDump(dump)
	}
}

// Thaw unfreezes the recorder so it records again. The captured dump
// stays available via LastDump until the next trip replaces it.
// Nil-safe.
func (r *Recorder) Thaw() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.frozen = false
	r.mu.Unlock()
	r.gFrozen.Set(0)
}

// Frozen reports whether the recorder is frozen on an anomaly.
// Nil-safe.
func (r *Recorder) Frozen() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Dropped reports how many events were dropped while frozen. Nil-safe.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns the retained global events oldest-first (nil for a
// nil or empty recorder).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global.snapshot(r.cfg.GlobalCap)
}

// StreamSnapshot returns one stream's retained events oldest-first.
func (r *Recorder) StreamSnapshot(stream int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := r.streams[stream]
	if sr == nil {
		return nil
	}
	return sr.snapshot(r.cfg.StreamCap)
}

// LastDump returns the most recent captured dump (nil when no anomaly
// has tripped the recorder). Nil-safe.
func (r *Recorder) LastDump() *Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dump
}

// buildDumpLocked assembles the diagnostic bundle under the Recorder
// lock. Span and metric snapshots take their own locks but never the
// Recorder's, so the ordering is safe.
func (r *Recorder) buildDumpLocked(reason string, trigger Event) *Dump {
	d := &Dump{
		Version: DumpVersion,
		Reason:  reason,
		At:      trigger.At,
		Trigger: trigger,
		Events:  r.global.snapshot(r.cfg.GlobalCap),
		Config:  r.cfg.Info,
	}
	if sr := r.streams[trigger.Stream]; sr != nil && trigger.Stream != GlobalStream {
		d.StreamEvents = sr.snapshot(r.cfg.StreamCap)
	}
	if t := r.cfg.Spans; t != nil {
		if trigger.Trace != "" {
			// The spans causally linked to the trigger: every hop of its
			// trace, device and cloud side.
			d.Spans = t.SnapshotFiltered(trigger.Trace, -1, 0)
		} else {
			d.Spans = t.SnapshotFiltered("", -1, dumpSpanLimit)
		}
	}
	if g := r.cfg.Gather; g != nil {
		d.Metrics = telemetry.Map(g)
	}
	return d
}

// dumpSpanLimit caps the recent-span window embedded in a dump whose
// trigger carries no trace.
const dumpSpanLimit = 256
