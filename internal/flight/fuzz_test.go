package flight

import (
	"bytes"
	"testing"
	"time"

	"anole/internal/telemetry"
)

// FuzzReadDump throws arbitrary bytes at the flight-dump decoder:
// ReadDump must never panic, and anything it accepts must re-encode
// and re-decode to the same dump (the codec is its own inverse on its
// accepted language).
func FuzzReadDump(f *testing.F) {
	seed := &Dump{
		Version: DumpVersion,
		Reason:  "pressure:critical",
		At:      3 * time.Millisecond,
		Trigger: Event{Seq: 2, Stream: 1, Kind: KindPressure, Detail: "critical", Value: 2},
		Events:  []Event{{Seq: 1, Stream: 1, Kind: KindVerdict, Detail: "shed", Trace: "f1.4"}},
		Spans:   []telemetry.Span{{Seq: 4, Stream: 1, Stage: "decide", Trace: "f1.4"}},
		Metrics: map[string]float64{"anole_core_frames_total": 4},
		Config:  map[string]string{"streams": "2"},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1,"events":[{"seq":-1,"stream":-5,"kind":"???"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDump(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteDump(&out, d); err != nil {
			t.Fatalf("accepted dump failed to re-encode: %v", err)
		}
		d2, err := ReadDump(&out)
		if err != nil {
			t.Fatalf("re-encoded dump rejected: %v", err)
		}
		if d2.Version != d.Version || d2.Reason != d.Reason || d2.Trigger != d.Trigger ||
			len(d2.Events) != len(d.Events) || len(d2.Spans) != len(d.Spans) {
			t.Fatalf("round trip drifted:\n first %+v\nsecond %+v", d, d2)
		}
	})
}
