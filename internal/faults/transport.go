package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Transport wraps an http.RoundTripper with the HTTP half of the fault
// schedule: connection-refused outage bursts, synthesized 5xx bursts,
// pre-response stalls, truncated bodies and bit-flipped payloads. It is
// safe for concurrent use — fault decisions serialize on a mutex, so
// with a sequential client (repo.Client retry loops are sequential) the
// schedule is deterministic in request order.
type Transport struct {
	base http.RoundTripper

	mu       sync.Mutex
	inj      *injector
	outage   int // remaining requests of the current outage burst
	errBurst int // remaining requests of the current 5xx burst
}

var _ http.RoundTripper = (*Transport)(nil)

// ErrInjectedOutage marks a transport error synthesized by the injector;
// clients see it as an ordinary (retryable) connection failure.
var ErrInjectedOutage = fmt.Errorf("faults: injected link outage")

// WrapTransport wraps base (nil selects http.DefaultTransport) with the
// fault schedule derived from cfg.
func WrapTransport(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.OutageMeanSteps <= 0 {
		cfg.OutageMeanSteps = 5
	}
	if cfg.ErrorBurstMean <= 0 {
		cfg.ErrorBurstMean = 3
	}
	return &Transport{base: base, inj: newInjector(cfg, "faults-transport")}
}

// verdict is one request's drawn fault plan.
type verdict struct {
	outage   bool
	syn5xx   bool
	stall    bool
	truncate bool
	corrupt  bool
}

// decide draws this request's faults under the mutex; each request is
// one injector step.
func (t *Transport) decide() verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inj.steps++
	var v verdict
	if !t.inj.active() {
		return v
	}
	cfg := &t.inj.cfg
	switch {
	case t.outage > 0:
		t.outage--
		t.inj.stats.OutageSteps++
		v.outage = true
		return v
	case cfg.OutageRate > 0 && t.inj.rng.Bool(cfg.OutageRate):
		t.outage = t.inj.geometric(cfg.OutageMeanSteps) - 1
		t.inj.stats.Outages++
		t.inj.stats.OutageSteps++
		v.outage = true
		return v
	}
	if cfg.StallRate > 0 && cfg.Stall > 0 && t.inj.rng.Bool(cfg.StallRate) {
		t.inj.stats.Stalled++
		v.stall = true
	}
	switch {
	case t.errBurst > 0:
		t.errBurst--
		t.inj.stats.Errors++
		v.syn5xx = true
		return v
	case cfg.ErrorRate > 0 && t.inj.rng.Bool(cfg.ErrorRate):
		t.errBurst = t.inj.geometric(cfg.ErrorBurstMean) - 1
		t.inj.stats.Errors++
		v.syn5xx = true
		return v
	}
	if cfg.TruncateRate > 0 && t.inj.rng.Bool(cfg.TruncateRate) {
		t.inj.stats.Truncated++
		v.truncate = true
		return v // truncation and corruption are mutually exclusive
	}
	v.corrupt = t.inj.corruptPayload()
	return v
}

// RoundTrip implements http.RoundTripper over the fault plan.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.decide()
	if v.stall {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(t.inj.cfg.Stall):
		}
	}
	if v.outage {
		return nil, ErrInjectedOutage
	}
	if v.syn5xx {
		return synthesized(req, http.StatusServiceUnavailable), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK || resp.Body == nil {
		return resp, err
	}
	switch {
	case v.truncate:
		resp.Body = truncateBody(resp.Body, resp.ContentLength)
	case v.corrupt:
		if err := flipBit(resp); err != nil {
			resp.Body.Close()
			return nil, err
		}
	}
	return resp, nil
}

// Stats returns the fault counters so far.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inj.stats
}

// synthesized fabricates an in-band error response, as a flaky proxy or
// overloaded server would emit.
func synthesized(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("%d %s (injected)", status, http.StatusText(status))
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody cuts the body short: after about half the advertised
// payload the reader fails with io.ErrUnexpectedEOF, as if the peer
// dropped the connection mid-stream.
func truncateBody(body io.ReadCloser, contentLength int64) io.ReadCloser {
	limit := contentLength / 2
	if limit <= 0 {
		limit = 1
	}
	return &truncatedReader{inner: body, remaining: limit}
}

type truncatedReader struct {
	inner     io.ReadCloser
	remaining int64
}

func (r *truncatedReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.inner.Read(p)
	r.remaining -= int64(n)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (r *truncatedReader) Close() error { return r.inner.Close() }

// flipBit buffers the body and flips one bit in the middle, preserving
// Content-Length so the damage is invisible to the transport and only a
// content checksum can catch it.
func flipBit(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("faults: buffer body for corruption: %w", err)
	}
	if len(data) > 0 {
		data[len(data)/2] ^= 0x10
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return nil
}
