package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anole/internal/netsim"
	"anole/internal/xrand"
)

// stubMedium is a Medium pinned to one state with a fixed transfer cost,
// so link-wrapper tests see only the injector's behavior.
type stubMedium struct {
	state netsim.LinkState
	cost  time.Duration
}

func (m *stubMedium) State() netsim.LinkState { return m.state }
func (m *stubMedium) Step() netsim.LinkState  { return m.state }
func (m *stubMedium) Transfer(up, down int64) (time.Duration, bool) {
	if m.state == netsim.Down {
		return 0, false
	}
	return m.cost, true
}

func newChainLink(t *testing.T, seed uint64) *netsim.Link {
	t.Helper()
	link, err := netsim.NewLink(netsim.DefaultConfig(0.5), xrand.NewLabeled(seed, "faults-test-link"))
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestLinkDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, OutageRate: 0.15, CorruptRate: 0.1}
	run := func() ([]netsim.LinkState, []bool, Stats) {
		l := WrapLink(newChainLink(t, 7), cfg)
		states := make([]netsim.LinkState, 0, 500)
		corrupt := make([]bool, 0, 500)
		for i := 0; i < 500; i++ {
			states = append(states, l.Step())
			corrupt = append(corrupt, l.CorruptTransfer())
		}
		return states, corrupt, l.Stats()
	}
	s1, c1, st1 := run()
	s2, c2, st2 := run()
	for i := range s1 {
		if s1[i] != s2[i] || c1[i] != c2[i] {
			t.Fatalf("replay diverged at step %d: state %v vs %v, corrupt %v vs %v",
				i, s1[i], s2[i], c1[i], c2[i])
		}
	}
	if st1 != st2 {
		t.Fatalf("replay stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Outages == 0 || st1.Corrupted == 0 {
		t.Fatalf("chaos never bit: %+v", st1)
	}
}

func TestLinkGraceStepsProtectColdStart(t *testing.T) {
	const grace = 10
	l := WrapLink(&stubMedium{state: netsim.Good, cost: time.Millisecond}, Config{
		Seed:       1,
		GraceSteps: grace,
		// Certain faults: any unprotected step would show them.
		OutageRate:  1,
		CorruptRate: 1,
	})
	for i := 0; i < grace; i++ {
		if got := l.Step(); got != netsim.Good {
			t.Fatalf("step %d inside grace window: state %v, want good", i+1, got)
		}
		if l.CorruptTransfer() {
			t.Fatalf("step %d inside grace window: corrupted transfer", i+1)
		}
	}
	if got := l.Step(); got != netsim.Down {
		t.Fatalf("first post-grace step: state %v, want down (outage rate 1)", got)
	}
}

func TestLinkForcedOutageMasksGoodWeather(t *testing.T) {
	l := WrapLink(&stubMedium{state: netsim.Good, cost: time.Millisecond}, Config{Seed: 3})
	if _, ok := l.Transfer(10, 10); !ok {
		t.Fatal("healthy wrapped link refused a transfer")
	}
	l.ForceOutage(3)
	for i := 0; i < 3; i++ {
		if l.State() != netsim.Down {
			t.Fatalf("forced step %d: state %v, want down", i, l.State())
		}
		if _, ok := l.Transfer(10, 10); ok {
			t.Fatalf("forced step %d: transfer succeeded during outage", i)
		}
		l.Step()
	}
	if l.State() != netsim.Down {
		// The third Step consumed the last forced step; State reflects the
		// inner link again only after the burst is fully consumed.
		t.Logf("state after burst: %v", l.State())
	}
	if got := l.Step(); got != netsim.Good {
		t.Fatalf("post-outage step: state %v, want good", got)
	}
	if _, ok := l.Transfer(10, 10); !ok {
		t.Fatal("post-outage transfer failed")
	}
	st := l.Stats()
	if st.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", st.Outages)
	}
}

func TestLinkOutageBurstsHaveGeometricTail(t *testing.T) {
	l := WrapLink(&stubMedium{state: netsim.Good, cost: time.Millisecond}, Config{
		Seed:            9,
		OutageRate:      0.1,
		OutageMeanSteps: 4,
	})
	for i := 0; i < 5000; i++ {
		l.Step()
	}
	st := l.Stats()
	if st.Outages < 100 {
		t.Fatalf("Outages = %d over 5000 steps at rate 0.1, want >= 100", st.Outages)
	}
	mean := float64(st.OutageSteps) / float64(st.Outages)
	if mean < 2 || mean > 7 {
		t.Fatalf("mean burst length %.2f, want near 4", mean)
	}
}

func newFaultyServer(t *testing.T, payload string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func roundTrip(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestTransportInjectsOutages(t *testing.T) {
	srv := newFaultyServer(t, "payload")
	tr := WrapTransport(srv.Client().Transport, Config{Seed: 1, OutageRate: 1})
	if _, err := roundTrip(t, tr, srv.URL); !errors.Is(err, ErrInjectedOutage) {
		t.Fatalf("err = %v, want ErrInjectedOutage", err)
	}
	if st := tr.Stats(); st.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", st.Outages)
	}
}

func TestTransportSynthesizes5xx(t *testing.T) {
	srv := newFaultyServer(t, "payload")
	tr := WrapTransport(srv.Client().Transport, Config{Seed: 1, ErrorRate: 1})
	resp, err := roundTrip(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if st := tr.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

func TestTransportTruncatesBodies(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := newFaultyServer(t, payload)
	tr := WrapTransport(srv.Client().Transport, Config{Seed: 1, TruncateRate: 1})
	resp, err := roundTrip(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(data) >= len(payload) {
		t.Fatalf("read %d bytes of %d, want a truncated prefix", len(data), len(payload))
	}
	if st := tr.Stats(); st.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", st.Truncated)
	}
}

func TestTransportFlipsBitsInvisibly(t *testing.T) {
	payload := strings.Repeat("y", 1024)
	srv := newFaultyServer(t, payload)
	tr := WrapTransport(srv.Client().Transport, Config{Seed: 1, CorruptRate: 1})
	resp, err := roundTrip(t, tr, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("corrupted body must read cleanly, got %v", err)
	}
	if len(data) != len(payload) {
		t.Fatalf("corrupted body length %d, want %d (damage must be invisible to the transport)", len(data), len(payload))
	}
	if string(data) == payload {
		t.Fatal("payload arrived undamaged with corrupt rate 1")
	}
	if st := tr.Stats(); st.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", st.Corrupted)
	}
}

func TestTransportStallRespectsContext(t *testing.T) {
	srv := newFaultyServer(t, "payload")
	tr := WrapTransport(srv.Client().Transport, Config{
		Seed:      1,
		StallRate: 1,
		Stall:     10 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored cancellation, blocked %v", elapsed)
	}
	if st := tr.Stats(); st.Stalled != 1 {
		t.Fatalf("Stalled = %d, want 1", st.Stalled)
	}
}

func TestTransportGraceSteps(t *testing.T) {
	srv := newFaultyServer(t, "payload")
	tr := WrapTransport(srv.Client().Transport, Config{Seed: 1, GraceSteps: 3, OutageRate: 1})
	for i := 0; i < 3; i++ {
		resp, err := roundTrip(t, tr, srv.URL)
		if err != nil {
			t.Fatalf("request %d inside grace window failed: %v", i+1, err)
		}
		resp.Body.Close()
	}
	if _, err := roundTrip(t, tr, srv.URL); !errors.Is(err, ErrInjectedOutage) {
		t.Fatalf("first post-grace request: err = %v, want ErrInjectedOutage", err)
	}
}

func TestTransportDeterministicReplay(t *testing.T) {
	payload := strings.Repeat("z", 2048)
	srv := newFaultyServer(t, payload)
	cfg := Config{Seed: 5, OutageRate: 0.2, ErrorRate: 0.2, TruncateRate: 0.1, CorruptRate: 0.1}
	run := func() Stats {
		tr := WrapTransport(srv.Client().Transport, cfg)
		for i := 0; i < 300; i++ {
			resp, err := roundTrip(t, tr, srv.URL)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return tr.Stats()
	}
	st1, st2 := run(), run()
	if st1 != st2 {
		t.Fatalf("replay stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Outages == 0 || st1.Errors == 0 || st1.Truncated == 0 || st1.Corrupted == 0 {
		t.Fatalf("chaos never bit: %+v", st1)
	}
}
