package faults

import (
	"time"

	"anole/internal/netsim"
)

// Link wraps a netsim.Medium with seeded forced outages and payload
// corruption. During a forced burst the link reports Down from State,
// Step and Transfer, whatever the underlying Markov chain says; layered
// on the chain's natural churn this produces flapping connectivity.
// Corruption is decided per transfer through CorruptTransfer, which
// prefetch.LinkFetcher consults when registering a transfer.
//
// Like the Link it wraps, a faults.Link is not safe for concurrent use
// on its own; prefetch.LinkFetcher owns it after construction and steps
// it under the fetcher's lock.
type Link struct {
	inner  netsim.Medium
	inj    *injector
	forced int // remaining steps of the current forced outage
}

var _ netsim.Medium = (*Link)(nil)

// WrapLink wraps inner with the fault schedule derived from cfg.
func WrapLink(inner netsim.Medium, cfg Config) *Link {
	if cfg.OutageMeanSteps <= 0 {
		cfg.OutageMeanSteps = 5
	}
	return &Link{inner: inner, inj: newInjector(cfg, "faults-link")}
}

// State returns the effective link state: Down during a forced outage,
// otherwise whatever the wrapped link reports.
func (l *Link) State() netsim.LinkState {
	if l.forced > 0 {
		return netsim.Down
	}
	return l.inner.State()
}

// Step advances both the wrapped chain and the outage schedule one frame
// interval. The chain always steps — a forced outage masks the state, it
// does not freeze the underlying weather — and a new burst may start
// with probability OutageRate once the grace window has passed.
func (l *Link) Step() netsim.LinkState {
	s := l.inner.Step()
	l.inj.steps++
	if l.forced > 0 {
		l.forced--
		l.inj.stats.OutageSteps++
		return netsim.Down
	}
	if l.inj.active() && l.inj.cfg.OutageRate > 0 && l.inj.rng.Bool(l.inj.cfg.OutageRate) {
		// The burst includes this step.
		l.forced = l.inj.geometric(l.inj.cfg.OutageMeanSteps) - 1
		l.inj.stats.Outages++
		l.inj.stats.OutageSteps++
		return netsim.Down
	}
	return s
}

// Transfer fails (ok=false) during a forced outage, otherwise defers to
// the wrapped link.
func (l *Link) Transfer(upBytes, downBytes int64) (time.Duration, bool) {
	if l.forced > 0 {
		return 0, false
	}
	return l.inner.Transfer(upBytes, downBytes)
}

// CorruptTransfer reports whether the next registered transfer's payload
// should arrive damaged; the draw both decides and counts the fault.
// Implements prefetch.TransferCorrupter.
func (l *Link) CorruptTransfer() bool {
	return l.inj.corruptPayload()
}

// ForceOutage starts a scripted outage of exactly steps Step calls,
// regardless of rates — deterministic tests use it to place an outage
// at a known frame and measure recovery.
func (l *Link) ForceOutage(steps int) {
	if steps <= 0 {
		return
	}
	if l.forced == 0 {
		l.inj.stats.Outages++
	}
	l.forced = steps
}

// Stats returns the fault counters so far.
func (l *Link) Stats() Stats { return l.inj.stats }
