// Package faults is a deterministic, seeded fault injector for the
// device↔cloud path. It wraps the two transports a device fetches model
// bytes over — the simulated netsim link (WrapLink) and the repo HTTP
// transport (WrapTransport) — and injects the failures real deployments
// see: outage bursts and flapping connectivity, 5xx bursts, response
// stalls, truncated bodies and bit-flipped payloads.
//
// Every decision is drawn from an xrand stream derived from Config.Seed,
// so a chaos run replays identically from its seed: the regression tests
// in bench_chaos_test.go depend on it. Injected faults are counted in
// Stats so tests can assert the chaos actually bit.
package faults

import (
	"time"

	"anole/internal/xrand"
)

// Config parameterizes an injector. The zero value injects nothing.
type Config struct {
	// Seed derives the injector's private random stream; two injectors
	// with equal Config produce identical fault schedules.
	Seed uint64

	// GraceSteps suppresses all injection for the first N steps (link
	// Step calls, or HTTP requests), so a run's cold start — the one
	// fetch that has no cached model to fall back on — completes before
	// the chaos begins.
	GraceSteps int

	// OutageRate is the per-step probability of starting a forced outage
	// burst; during a burst the link reports Down (or, for HTTP, every
	// request fails at the transport) regardless of the underlying
	// state. Burst lengths are geometric with mean OutageMeanSteps
	// (default 5), so short bursts dominate — the flapping-connectivity
	// pattern — with an exponential tail of longer outages.
	OutageRate      float64
	OutageMeanSteps float64

	// CorruptRate is the per-transfer probability the payload arrives
	// damaged: bit-flipped for the HTTP transport, flagged corrupt for
	// the simulated link (whose transfers carry no real bytes).
	CorruptRate float64

	// ErrorRate is the per-request probability of starting a 5xx burst
	// (HTTP only); during a burst the transport synthesizes 503s without
	// touching the server. Burst lengths are geometric with mean
	// ErrorBurstMean (default 3).
	ErrorRate      float64
	ErrorBurstMean float64

	// TruncateRate is the per-response probability the body is cut short
	// mid-stream (HTTP only): the reader fails with an unexpected-EOF
	// after roughly half the payload, as if the connection dropped.
	TruncateRate float64

	// StallRate delays a response by Stall before the first byte (HTTP
	// only), modelling a wedged server; context cancellation cuts the
	// stall short.
	StallRate float64
	Stall     time.Duration
}

// Stats counts injected faults.
type Stats struct {
	// Outages counts forced outage bursts; OutageSteps the total steps
	// (or HTTP requests) spent inside them.
	Outages     int64
	OutageSteps int64
	// Corrupted counts payloads delivered damaged.
	Corrupted int64
	// Errors counts synthesized 5xx responses, Truncated cut-short
	// bodies, Stalled delayed responses (all HTTP only).
	Errors    int64
	Truncated int64
	Stalled   int64
}

// injector is the shared seeded decision core: a private random stream
// plus the burst state machine. Not safe for concurrent use on its own;
// Link relies on its caller's serialization, Transport wraps it in a
// mutex.
type injector struct {
	cfg   Config
	rng   *xrand.RNG
	steps int
	stats Stats
}

func newInjector(cfg Config, label string) *injector {
	return &injector{cfg: cfg, rng: xrand.NewLabeled(cfg.Seed, label)}
}

// active reports whether the grace window has passed. Callers increment
// steps before consulting it, so the first GraceSteps steps are exactly
// the protected ones.
func (in *injector) active() bool { return in.steps > in.cfg.GraceSteps }

// geometric draws a burst length ≥ 1 with the given mean (clamped to 1).
func (in *injector) geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Geometric on {1, 2, ...} with success probability 1/mean.
	p := 1 / mean
	n := 1
	for !in.rng.Bool(p) {
		n++
	}
	return n
}

// corruptPayload decides whether one delivered payload is damaged.
func (in *injector) corruptPayload() bool {
	if !in.active() || in.cfg.CorruptRate <= 0 {
		return false
	}
	if in.rng.Bool(in.cfg.CorruptRate) {
		in.stats.Corrupted++
		return true
	}
	return false
}
