package tensor

import (
	"math"
	"testing"

	"anole/internal/xrand"
)

// naiveMatMul is the unblocked ijk reference the kernels are checked
// against: dst[i][j] = Σ_k a[i][k]·b[k][j], summed in ascending k order
// with no zero-skipping, so NaN and ±Inf propagate exactly as written.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// naiveMatMulT is the reference for the transposed path: dst = a·bᵀ.
func naiveMatMulT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func randMatrix(rng *xrand.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Norm()
	}
	return m
}

// matricesMatch compares got against want element-wise: finite values
// within relative tolerance tol, NaN matching NaN, infinities matching
// exactly.
func matricesMatch(t *testing.T, got, want *Matrix, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		g := got.Data[i]
		switch {
		case math.IsNaN(w):
			if !math.IsNaN(g) {
				t.Fatalf("%s: element %d = %v, want NaN", label, i, g)
			}
		case math.IsInf(w, 0):
			if g != w {
				t.Fatalf("%s: element %d = %v, want %v", label, i, g, w)
			}
		default:
			scale := math.Abs(w)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(g-w) > tol*scale {
				t.Fatalf("%s: element %d = %v, want %v (diff %v)", label, i, g, w, g-w)
			}
		}
	}
}

// TestMatMulIntoMatchesNaive sweeps random shapes — including the empty
// and single-row/column edge cases — and checks both kernels against the
// naive triple loop. The straight path must agree bitwise (same
// summation order); the transposed path reassociates (unrolled dot), so
// it gets a 1e-12 relative tolerance.
func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := xrand.New(42)
	dims := []int{0, 1, 2, 3, 5, 8, 17, 33, 64}
	for trial := 0; trial < 200; trial++ {
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		want := naiveMatMul(a, b)
		got := MatMulInto(nil, a, b)
		matricesMatch(t, got, want, 0, "MatMulInto")

		bt := randMatrix(rng, n, k)
		wantT := naiveMatMulT(a, bt)
		gotT := MatMulTInto(nil, a, bt)
		matricesMatch(t, gotT, wantT, 1e-12, "MatMulTInto")
	}
}

// TestMatMulParallelPathMatchesNaive forces the row-panel worker pool
// (product far above parallelFLOPs) and checks both kernels still agree
// with the reference.
func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	rng := xrand.New(7)
	a := randMatrix(rng, 300, 70)
	b := randMatrix(rng, 70, 90)
	matricesMatch(t, MatMulInto(nil, a, b), naiveMatMul(a, b), 0, "parallel MatMulInto")

	bt := randMatrix(rng, 90, 70)
	matricesMatch(t, MatMulTInto(nil, a, bt), naiveMatMulT(a, bt), 1e-12, "parallel MatMulTInto")
}

// TestMatMulNaNInfPropagation pins IEEE semantics: a zero row times a
// NaN column still yields NaN (the old MatMul's zero-skip silently
// dropped it), and mixed ±Inf columns collapse to NaN exactly as the
// naive sum does.
func TestMatMulNaNInfPropagation(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {1, 2}})
	b := FromRows([][]float64{{math.NaN(), 1}, {math.Inf(1), math.Inf(-1)}})
	want := naiveMatMul(a, b)
	matricesMatch(t, MatMulInto(nil, a, b), want, 0, "NaN/Inf MatMulInto")
	if !math.IsNaN(want.At(0, 0)) {
		t.Fatal("reference lost NaN from a zero row — test fixture broken")
	}

	bt := FromRows([][]float64{{math.NaN(), math.Inf(1)}, {1, math.Inf(-1)}})
	wantT := naiveMatMulT(a, bt)
	matricesMatch(t, MatMulTInto(nil, a, bt), wantT, 1e-12, "NaN/Inf MatMulTInto")
}

// TestMatMulIntoReusesDst pins the whole point of the Into form: a
// correctly-shaped dst is written in place and returned unchanged in
// identity, with stale contents fully overwritten.
func TestMatMulIntoReusesDst(t *testing.T) {
	rng := xrand.New(3)
	a := randMatrix(rng, 4, 6)
	b := randMatrix(rng, 6, 5)
	dst := NewMatrix(4, 5)
	dst.Fill(123)
	if out := MatMulInto(dst, a, b); out != dst {
		t.Fatal("MatMulInto reallocated a correctly-sized dst")
	}
	matricesMatch(t, dst, naiveMatMul(a, b), 0, "reused dst")

	bt := randMatrix(rng, 5, 6)
	dstT := NewMatrix(4, 5)
	dstT.Fill(-9)
	if out := MatMulTInto(dstT, a, bt); out != dstT {
		t.Fatal("MatMulTInto reallocated a correctly-sized dst")
	}
	matricesMatch(t, dstT, naiveMatMulT(a, bt), 1e-12, "reused dstT")

	// Mis-sized dst is replaced, not written out of bounds.
	small := NewMatrix(1, 1)
	if out := MatMulInto(small, a, b); out == small {
		t.Fatal("mis-sized dst was reused")
	}
}

// TestMatMulWrapperMatchesInto keeps the legacy MatMul a faithful thin
// wrapper.
func TestMatMulWrapperMatchesInto(t *testing.T) {
	rng := xrand.New(11)
	a := randMatrix(rng, 7, 9)
	b := randMatrix(rng, 9, 4)
	matricesMatch(t, MatMul(a, b), MatMulInto(nil, a, b), 0, "MatMul wrapper")
}

// TestMatMulZeroAllocsWithHeldDst pins the steady-state allocation
// contract for both the serial and the parallel (row-panel pool) paths.
func TestMatMulZeroAllocsWithHeldDst(t *testing.T) {
	rng := xrand.New(5)
	// Small product: stays on the serial path.
	a, b := randMatrix(rng, 8, 8), randMatrix(rng, 8, 8)
	dst := NewMatrix(8, 8)
	if allocs := testing.AllocsPerRun(100, func() { MatMulInto(dst, a, b) }); allocs != 0 {
		t.Fatalf("serial MatMulInto with held dst: %v allocs/op, want 0", allocs)
	}

	// Large product: exercises the worker pool; warm it first so the
	// lazily-started goroutines and pooled WaitGroup are in place.
	la, lb := randMatrix(rng, 128, 64), randMatrix(rng, 64, 64)
	ldst := NewMatrix(128, 64)
	MatMulInto(ldst, la, lb)
	if allocs := testing.AllocsPerRun(50, func() { MatMulInto(ldst, la, lb) }); allocs > 0 {
		t.Fatalf("parallel MatMulInto with held dst: %v allocs/op, want 0", allocs)
	}

	lbt := randMatrix(rng, 64, 64)
	tdst := NewMatrix(128, 64)
	MatMulTInto(tdst, la, lbt)
	if allocs := testing.AllocsPerRun(50, func() { MatMulTInto(tdst, la, lbt) }); allocs > 0 {
		t.Fatalf("parallel MatMulTInto with held dst: %v allocs/op, want 0", allocs)
	}
}

// TestMatMulIntoPanics pins the programmer-error surface: inner-dimension
// mismatch and aliased destinations.
func TestMatMulIntoPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2)
	mustPanic(t, "inner mismatch", func() { MatMulInto(nil, a, b) })
	mustPanic(t, "transposed mismatch", func() { MatMulTInto(nil, a, b) })
	sq := NewMatrix(3, 3)
	mustPanic(t, "dst aliases a", func() { MatMulInto(sq, sq, NewMatrix(3, 3)) })
	mustPanic(t, "dstT aliases b", func() { MatMulTInto(sq, NewMatrix(3, 3), sq) })
}

func mustPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", label)
		}
	}()
	f()
}

// FuzzMatMulKernels drives both kernels against the naive reference with
// fuzzer-chosen shapes, seeds and special-value injection (NaN, ±Inf,
// zeros). The straight path must be bitwise identical; the transposed
// path must match within 1e-12 relative on finite values and agree on
// NaN/Inf placement.
func FuzzMatMulKernels(f *testing.F) {
	f.Add(uint64(1), 3, 4, 5, uint8(0))
	f.Add(uint64(2), 0, 3, 2, uint8(1))
	f.Add(uint64(3), 1, 1, 1, uint8(2))
	f.Add(uint64(4), 33, 17, 9, uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, m, k, n int, special uint8) {
		const maxDim = 48
		clamp := func(d int) int {
			if d < 0 {
				d = -d
			}
			return d % (maxDim + 1)
		}
		m, k, n = clamp(m), clamp(k), clamp(n)
		rng := xrand.New(seed)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		bt := randMatrix(rng, n, k)
		inject := func(mat *Matrix) {
			if len(mat.Data) == 0 {
				return
			}
			idx := rng.Intn(len(mat.Data))
			switch special % 4 {
			case 1:
				mat.Data[idx] = math.NaN()
			case 2:
				mat.Data[idx] = math.Inf(1)
			case 3:
				mat.Data[idx] = math.Inf(-1)
			}
			mat.Data[rng.Intn(len(mat.Data))] = 0
		}
		inject(a)
		inject(b)
		inject(bt)

		want := naiveMatMul(a, b)
		got := MatMulInto(nil, a, b)
		for i := range want.Data {
			w, g := want.Data[i], got.Data[i]
			if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
				t.Fatalf("MatMulInto element %d = %v, want %v (bitwise contract)", i, g, w)
			}
		}

		wantT := naiveMatMulT(a, bt)
		gotT := MatMulTInto(nil, a, bt)
		for i := range wantT.Data {
			w, g := wantT.Data[i], gotT.Data[i]
			switch {
			case math.IsNaN(w):
				if !math.IsNaN(g) {
					t.Fatalf("MatMulTInto element %d = %v, want NaN", i, g)
				}
			case math.IsInf(w, 0):
				// Reassociation can turn a same-signed-Inf sum into the
				// same Inf only; a sign flip would be a kernel bug.
				if g != w && !math.IsNaN(g) {
					t.Fatalf("MatMulTInto element %d = %v, want %v", i, g, w)
				}
			default:
				scale := math.Abs(w)
				if scale < 1 {
					scale = 1
				}
				if math.Abs(g-w) > 1e-12*scale {
					t.Fatalf("MatMulTInto element %d = %v, want %v", i, g, w)
				}
			}
		}
	})
}
