// Package tensor provides the dense float64 vector and matrix primitives
// underlying the neural-network library in internal/nn. It implements only
// what gradient-descent training of small MLPs needs — GEMM/GEMV, axpy,
// element-wise maps, stable softmax — with bounds checking on construction
// and panics reserved for programmer errors (shape mismatches).
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(v), len(w)))
	}
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// AddScaled adds alpha*w to v in place (axpy). It panics on length
// mismatch.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Argmax returns the index of the largest element (first winner on ties),
// or -1 for an empty vector.
func (v Vector) Argmax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// SquaredDistance returns the squared Euclidean distance between v and w.
// It panics on length mismatch.
func (v Vector) SquaredDistance(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: distance length mismatch %d vs %d", len(v), len(w)))
	}
	var sum float64
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return sum
}

// Softmax writes the softmax of v into dst (allocating when dst is nil or
// mis-sized) using the max-subtraction trick for numerical stability, and
// returns dst.
func Softmax(dst, v Vector) Vector {
	if len(dst) != len(v) {
		dst = NewVector(len(v))
	}
	if len(v) == 0 {
		return dst
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		uniform := 1 / float64(len(v))
		for i := range dst {
			dst[i] = uniform
		}
		return dst
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// LogSumExp returns log(sum(exp(v))) computed stably.
func LogSumExp(v Vector) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// negative dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share one
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, x float64) {
	m.Data[i*m.Cols+j] = x
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element of m to x.
func (m *Matrix) Fill(x float64) {
	for i := range m.Data {
		m.Data[i] = x
	}
}

// Scale multiplies every element by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddScaled adds alpha*other to m in place. It panics on shape mismatch.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}

// MulVec computes dst = m * v for a column vector v of length Cols,
// writing into dst of length Rows (allocating when dst is nil or
// mis-sized) and returning dst.
func (m *Matrix) MulVec(dst, v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec got %d, want %d", len(v), m.Cols))
	}
	if len(dst) != m.Rows {
		dst = NewVector(m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, x := range row {
			sum += x * v[j]
		}
		dst[i] = sum
	}
	return dst
}

// MulVecT computes dst = mᵀ * v for v of length Rows, writing into dst of
// length Cols and returning dst. Used for backpropagating through dense
// layers without materializing the transpose.
func (m *Matrix) MulVecT(dst, v Vector) Vector {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecT got %d, want %d", len(v), m.Rows))
	}
	if len(dst) != m.Cols {
		dst = NewVector(m.Cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst[j] += x * vi
		}
	}
	return dst
}

// AddOuterScaled adds alpha * a ⊗ b to m in place, where a has length Rows
// and b has length Cols. This is the gradient accumulation of a dense
// layer's weight matrix.
func (m *Matrix) AddOuterScaled(alpha float64, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("tensor: AddOuterScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += ai * b[j]
		}
	}
}

// MatMul returns a new matrix a*b. It panics on inner-dimension
// mismatch. Thin wrapper over MatMulInto (see matmul.go), which reuses a
// caller-held destination instead of allocating per call.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(nil, a, b)
}
