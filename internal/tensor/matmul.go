package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the GEMM kernels behind the batched inference path:
// MatMulInto (dst = a·b) and MatMulTInto (dst = a·bᵀ). Both reuse dst,
// block the shared dimension for cache locality, and split large
// products into row panels executed on a bounded package-level worker
// pool. With a correctly-sized dst the steady state performs no heap
// allocations, which is what lets nn.Weights.InferBatch stay 0-alloc.

const (
	// kBlock is the shared-dimension tile: one a-row tile and the
	// matching b-row panel fit comfortably in L1 at float64.
	kBlock = 256
	// parallelFLOPs is the product size (rows × cols × inner) above
	// which a matmul is split into row panels; below it the
	// dispatch overhead outweighs the span.
	parallelFLOPs = 64 * 1024
	// minPanelRows keeps panels coarse enough that workers do not
	// contend on tiny slices of the output.
	minPanelRows = 8
	// maxMatMulWorkers bounds the pool whatever GOMAXPROCS says.
	maxMatMulWorkers = 16
)

// panelTask is one contiguous row range [r0, r1) of dst to compute.
type panelTask struct {
	dst, a, b *Matrix
	r0, r1    int
	transB    bool
	wg        *sync.WaitGroup
}

var (
	matmulOnce  sync.Once
	matmulTasks chan panelTask
	// wgPool recycles the per-call completion WaitGroup so the parallel
	// dispatch itself does not allocate in steady state.
	wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startMatMulPool lazily spins up the row-panel workers. Pool size is
// fixed at first use; the goroutines are cheap and live for the process.
func startMatMulPool() {
	matmulOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n > maxMatMulWorkers {
			n = maxMatMulWorkers
		}
		if n < 1 {
			n = 1
		}
		matmulTasks = make(chan panelTask, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range matmulTasks {
					if t.transB {
						mulPanelT(t.dst, t.a, t.b, t.r0, t.r1)
					} else {
						mulPanel(t.dst, t.a, t.b, t.r0, t.r1)
					}
					t.wg.Done()
				}
			}()
		}
	})
}

// dispatchPanels runs the kernel over dst's rows, in parallel when the
// product is large enough to amortize the handoff.
func dispatchPanels(dst, a, b *Matrix, inner int, transB bool) {
	rows := dst.Rows
	if int64(rows)*int64(dst.Cols)*int64(inner) < parallelFLOPs || rows < 2*minPanelRows {
		if transB {
			mulPanelT(dst, a, b, 0, rows)
		} else {
			mulPanel(dst, a, b, 0, rows)
		}
		return
	}
	startMatMulPool()
	panels := rows / minPanelRows
	if max := cap(matmulTasks); panels > max {
		panels = max
	}
	if panels < 2 {
		panels = 2
	}
	per := (rows + panels - 1) / panels
	wg := wgPool.Get().(*sync.WaitGroup)
	for r0 := 0; r0 < rows; r0 += per {
		r1 := r0 + per
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		matmulTasks <- panelTask{dst: dst, a: a, b: b, r0: r0, r1: r1, transB: transB, wg: wg}
	}
	wg.Wait()
	wgPool.Put(wg)
}

// mulPanel computes dst[r0:r1] = a[r0:r1]·b with an ikj loop blocked
// over the shared dimension. Per output element the k-summation order is
// ascending, exactly matching the naive ijk triple loop, so results are
// bit-identical to the reference kernel (NaN and ±Inf included).
func mulPanel(dst, a, b *Matrix, r0, r1 int) {
	n, kdim := dst.Cols, a.Cols
	for i := r0; i < r1; i++ {
		orow := dst.Data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		arow := a.Data[i*kdim : (i+1)*kdim]
		for k0 := 0; k0 < kdim; k0 += kBlock {
			k1 := k0 + kBlock
			if k1 > kdim {
				k1 = kdim
			}
			for k := k0; k < k1; k++ {
				av := arow[k]
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// mulPanelT computes dst[r0:r1] = a[r0:r1]·bᵀ. Both operands stream
// row-major, so each output element is a dot product of two contiguous
// rows. The kernel is register-tiled four output columns wide: one pass
// over the a-row feeds four independent accumulators, which amortizes
// the a-row loads and breaks the add-latency chain. Each accumulator
// still sums in ascending k with no reassociation, so every output
// element is bit-identical to the naive reference (NaN/Inf included).
func mulPanelT(dst, a, b *Matrix, r0, r1 int) {
	n, kdim := dst.Cols, a.Cols
	for i := r0; i < r1; i++ {
		arow := a.Data[i*kdim : (i+1)*kdim]
		orow := dst.Data[i*n : (i+1)*n]
		o := 0
		for ; o+4 <= n; o += 4 {
			b0 := b.Data[o*kdim : (o+1)*kdim][:kdim]
			b1 := b.Data[(o+1)*kdim : (o+2)*kdim][:kdim]
			b2 := b.Data[(o+2)*kdim : (o+3)*kdim][:kdim]
			b3 := b.Data[(o+3)*kdim : (o+4)*kdim][:kdim]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[o], orow[o+1], orow[o+2], orow[o+3] = s0, s1, s2, s3
		}
		for ; o < n; o++ {
			brow := b.Data[o*kdim : (o+1)*kdim][:kdim]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[o] = sum
		}
	}
}

// MatMulInto computes dst = a·b, reusing dst when it has shape
// a.Rows × b.Cols (allocating a fresh matrix when dst is nil or
// mis-sized) and returning dst. dst must not alias a or b. Large
// products are split into row panels over a bounded worker pool; the
// per-element summation order matches the naive triple loop, so results
// are bit-identical to an unblocked reference (NaN/Inf propagation
// included).
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil || dst.Rows != a.Rows || dst.Cols != b.Cols {
		dst = NewMatrix(a.Rows, b.Cols)
	}
	if dst == a || dst == b {
		panic("tensor: MatMulInto dst aliases an operand")
	}
	dispatchPanels(dst, a, b, a.Cols, false)
	return dst
}

// MatMulTInto computes dst = a·bᵀ for a of shape m×k and b of shape n×k,
// reusing dst when it has shape m×n (allocating when dst is nil or
// mis-sized) and returning dst. dst must not alias a or b. This is the
// batched dense-layer kernel: with X as a row-per-sample batch and W the
// out×in weight matrix, X·Wᵀ is the whole batch's pre-activation in one
// product. Per-element summation is ascending-k with no reassociation,
// so results are bit-identical to an unblocked reference.
func MatMulTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil || dst.Rows != a.Rows || dst.Cols != b.Rows {
		dst = NewMatrix(a.Rows, b.Rows)
	}
	if dst == a || dst == b {
		panic("tensor: MatMulTInto dst aliases an operand")
	}
	dispatchPanels(dst, a, b, a.Cols, true)
	return dst
}
