package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"anole/internal/xrand"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("dot = %v", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2}
	v.AddScaled(2, Vector{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Fatalf("axpy: %v", v)
	}
}

func TestVectorScaleFill(t *testing.T) {
	v := Vector{1, 2}
	v.Scale(3)
	if v[1] != 6 {
		t.Fatalf("scale: %v", v)
	}
	v.Fill(7)
	if v[0] != 7 || v[1] != 7 {
		t.Fatalf("fill: %v", v)
	}
}

func TestVectorNorm2(t *testing.T) {
	if got := (Vector{3, 4}).Norm2(); got != 5 {
		t.Fatalf("norm = %v", got)
	}
}

func TestVectorArgmax(t *testing.T) {
	if (Vector{1, 5, 3}).Argmax() != 1 {
		t.Fatal("argmax wrong")
	}
	if (Vector{}).Argmax() != -1 {
		t.Fatal("empty argmax should be -1")
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestSquaredDistance(t *testing.T) {
	d := (Vector{0, 0}).SquaredDistance(Vector{3, 4})
	if d != 25 {
		t.Fatalf("distance = %v", d)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	out := Softmax(nil, Vector{1, 2, 3})
	var sum float64
	for _, x := range out {
		sum += x
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
}

func TestSoftmaxStableWithLargeValues(t *testing.T) {
	out := Softmax(nil, Vector{1000, 1001})
	if math.IsNaN(out[0]) || math.IsInf(out[1], 0) {
		t.Fatalf("softmax overflow: %v", out)
	}
	if !almostEqual(out[0]+out[1], 1, 1e-12) {
		t.Fatalf("sum: %v", out)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := Softmax(nil, Vector{1, 2, 3})
	b := Softmax(nil, Vector{101, 102, 103})
	for i := range a {
		if !almostEqual(a[i], b[i], 1e-12) {
			t.Fatalf("shift variance at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSoftmaxReusesDst(t *testing.T) {
	dst := NewVector(2)
	out := Softmax(dst, Vector{0, 0})
	if &out[0] != &dst[0] {
		t.Fatal("softmax should reuse correctly sized dst")
	}
	if !almostEqual(out[0], 0.5, 1e-12) {
		t.Fatalf("uniform softmax: %v", out)
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vector{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEqual(got, math.Log(6), 1e-12) {
		t.Fatalf("lse = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("empty lse should be -inf")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("set/at mismatch")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("row view should alias")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("FromRows: %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 {
		t.Fatal("empty FromRows")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	out := m.MulVec(nil, Vector{1, 1})
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("mulvec: %v", out)
	}
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	out := m.MulVecT(nil, Vector{1, 1})
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("mulvecT: %v", out)
	}
}

func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	r := xrand.New(5)
	m := NewMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	v := Vector{r.Norm(), r.Norm(), r.Norm(), r.Norm()}
	got := m.MulVecT(nil, v)
	want := NewVector(3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			want[j] += m.At(i, j) * v[i]
		}
	}
	for j := range want {
		if !almostEqual(got[j], want[j], 1e-12) {
			t.Fatalf("col %d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, Vector{1, 2}, Vector{3, 4})
	if m.At(0, 0) != 6 || m.At(1, 1) != 16 {
		t.Fatalf("outer: %+v", m.Data)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("matmul[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatrixCloneScaleAddScaled(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Scale(10)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases")
	}
	m.AddScaled(1, c)
	if m.At(0, 1) != 22 {
		t.Fatalf("addScaled: %v", m.Data)
	}
}

func TestMatrixFill(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("fill failed")
	}
}

// Property: MulVec is linear — m*(a*x + y) = a*(m*x) + m*y.
func TestMulVecLinearity(t *testing.T) {
	r := xrand.New(9)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		rows, cols := rr.Intn(5)+1, rr.Intn(5)+1
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rr.Norm()
		}
		x := NewVector(cols)
		y := NewVector(cols)
		for i := range x {
			x[i] = rr.Norm()
			y[i] = rr.Norm()
		}
		a := rr.Norm()
		combo := NewVector(cols)
		for i := range combo {
			combo[i] = a*x[i] + y[i]
		}
		left := m.MulVec(nil, combo)
		mx := m.MulVec(nil, x)
		my := m.MulVec(nil, y)
		for i := 0; i < rows; i++ {
			if !almostEqual(left[i], a*mx[i]+my[i], 1e-9) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability vector.
func TestSoftmaxProperty(t *testing.T) {
	r := xrand.New(10)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(10) + 1
		v := NewVector(n)
		for i := range v {
			v[i] = rr.Norm() * 10
		}
		out := Softmax(nil, v)
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec128(b *testing.B) {
	m := NewMatrix(128, 128)
	v := NewVector(128)
	dst := NewVector(128)
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, v)
	}
}
