// Package slo turns the runtime's raw per-frame outcomes into
// service-level objectives a fleet operator can alert on: windowed
// objectives (frame p99 latency, served fraction, degraded fraction,
// swap staleness) with multi-window burn-rate computation and
// fleet-wide percentile aggregation across streams.
//
// The engine follows the standard error-budget formulation: each
// objective defines a budget (the tolerated bad fraction), and the
// burn rate over a window is the observed bad fraction divided by that
// budget — 1.0 means the budget is being consumed exactly as fast as
// it accrues, higher means faster. Burn is computed over two windows
// (short and long); an objective alerts only when BOTH exceed the
// threshold, the classic multi-window guard against one noisy tick
// paging an operator.
//
// Like the rest of the repository's observability stack the engine is
// clock-injectable (simulated-time runs produce deterministic SLO
// readings), race-clean, and nil-safe: every method on a nil *Engine
// is a no-op.
package slo

import (
	"math"
	"sort"
	"sync"
	"time"

	"anole/internal/telemetry"
)

// Config tunes an Engine. Zero values select the documented defaults.
type Config struct {
	// LatencyTarget is the frame p99 latency objective: at most 1% of
	// frames in a window may exceed it. Default 50ms.
	LatencyTarget time.Duration
	// ServedTarget is the served-fraction objective (frames that
	// produced output — cleanly or downgraded — over frames admitted).
	// Its error budget is 1 - ServedTarget. Default 0.99.
	ServedTarget float64
	// DegradedBudget is the tolerated degraded fraction (frames served
	// by a fallback or downgraded model). Default 0.05.
	DegradedBudget float64
	// StalenessTarget bounds swap staleness: the delay between a
	// generation being published and a stream swapping onto it. The
	// staleness burn is worst-observed/target — a gauge-style SLI.
	// Default 10s.
	StalenessTarget time.Duration
	// ShortWindow and LongWindow are the two burn windows. Defaults 1s
	// and 10s of engine-clock time.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnAlert is the burn-rate threshold both windows must exceed
	// for an objective to alert. Default 1.0.
	BurnAlert float64
	// MaxSamples bounds the retained per-frame samples (default 16384);
	// older samples are overwritten, so a window longer than the ring's
	// reach degrades gracefully to the retained span.
	MaxSamples int
	// Now is the engine clock (default: wall time since NewEngine).
	Now func() time.Duration
	// Metrics optionally publishes anole_slo_* series, refreshed by
	// every Status call.
	Metrics *telemetry.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.LatencyTarget <= 0 {
		out.LatencyTarget = 50 * time.Millisecond
	}
	if out.ServedTarget <= 0 || out.ServedTarget >= 1 {
		out.ServedTarget = 0.99
	}
	if out.DegradedBudget <= 0 || out.DegradedBudget > 1 {
		out.DegradedBudget = 0.05
	}
	if out.StalenessTarget <= 0 {
		out.StalenessTarget = 10 * time.Second
	}
	if out.ShortWindow <= 0 {
		out.ShortWindow = time.Second
	}
	if out.LongWindow <= 0 {
		out.LongWindow = 10 * time.Second
	}
	if out.LongWindow < out.ShortWindow {
		out.ShortWindow, out.LongWindow = out.LongWindow, out.ShortWindow
	}
	if out.BurnAlert <= 0 {
		out.BurnAlert = 1.0
	}
	if out.MaxSamples <= 0 {
		out.MaxSamples = 16384
	}
	if out.Now == nil {
		start := time.Now()
		out.Now = func() time.Duration { return time.Since(start) }
	}
	return out
}

// frameSample is one frame outcome.
type frameSample struct {
	at       time.Duration
	latency  time.Duration
	stream   int32
	served   bool
	degraded bool
}

// staleSample is one swap-staleness observation.
type staleSample struct {
	at     time.Duration
	stale  time.Duration
	stream int32
}

// latencyBudget is the implied error budget of a p99 objective: 1% of
// frames may exceed the target.
const latencyBudget = 0.01

// Engine accumulates frame outcomes and staleness observations in
// bounded rings and computes windowed SLO status on demand. All
// methods are safe for concurrent use; a nil *Engine ignores every
// call.
type Engine struct {
	cfg Config

	mu          sync.Mutex
	frames      []frameSample
	framesTotal int64
	stales      []staleSample
	stalesTotal int64
	// classes maps stream → device class on a heterogeneous fleet (see
	// SetStreamClass); classGauges lazily holds the per-class
	// anole_fleet_* handles, keyed "<class>/<metric>".
	classes     map[int32]string
	classGauges map[string]*telemetry.Gauge

	// Telemetry handles (nil-safe), refreshed by Status.
	gLatencyP99 *telemetry.Gauge
	gServed     *telemetry.Gauge
	gDegraded   *telemetry.Gauge
	gStaleness  *telemetry.Gauge
	gBurns      map[string]*telemetry.Gauge
	gAlerting   *telemetry.Gauge
	cFrames     *telemetry.Counter
}

// NewEngine builds an Engine from cfg (zero-value fields get
// defaults).
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	if reg := e.cfg.Metrics; reg != nil {
		e.gLatencyP99 = reg.Gauge("anole_slo_latency_p99_seconds",
			"Fleet frame p99 latency over the long window.")
		e.gServed = reg.Gauge("anole_slo_served_fraction",
			"Fraction of admitted frames served (cleanly or degraded) over the long window.")
		e.gDegraded = reg.Gauge("anole_slo_degraded_fraction",
			"Fraction of admitted frames degraded over the long window.")
		e.gStaleness = reg.Gauge("anole_slo_swap_staleness_seconds",
			"Worst publish-to-swap staleness observed in the long window.")
		e.gBurns = map[string]*telemetry.Gauge{
			"latency_short":   reg.Gauge("anole_slo_latency_burn_short", "Latency-objective burn rate, short window."),
			"latency_long":    reg.Gauge("anole_slo_latency_burn_long", "Latency-objective burn rate, long window."),
			"served_short":    reg.Gauge("anole_slo_served_burn_short", "Served-fraction burn rate, short window."),
			"served_long":     reg.Gauge("anole_slo_served_burn_long", "Served-fraction burn rate, long window."),
			"degraded_short":  reg.Gauge("anole_slo_degraded_burn_short", "Degraded-fraction burn rate, short window."),
			"degraded_long":   reg.Gauge("anole_slo_degraded_burn_long", "Degraded-fraction burn rate, long window."),
			"staleness_short": reg.Gauge("anole_slo_staleness_burn_short", "Swap-staleness burn rate, short window."),
			"staleness_long":  reg.Gauge("anole_slo_staleness_burn_long", "Swap-staleness burn rate, long window."),
		}
		e.gAlerting = reg.Gauge("anole_slo_alerting_objectives",
			"Objectives whose burn exceeds the alert threshold on both windows.")
		e.cFrames = reg.Counter("anole_slo_frames_total",
			"Frame outcomes folded into the SLO engine.")
	}
	return e
}

// SetStreamClass tags a stream with its device class ("nano", "tx2",
// ...), partitioning fleet percentile aggregation: Status additionally
// reports FleetStats per class and publishes them as
// anole_fleet_<class>_* gauges — a mixed fleet's slow devices get their
// own p99 instead of dominating (or hiding inside) the fleet-wide one.
// The class must already be metric-name-safe ([a-z0-9_]+, as
// device.Fleet classes are). Nil-safe.
func (e *Engine) SetStreamClass(stream int32, class string) {
	if e == nil || class == "" {
		return
	}
	e.mu.Lock()
	if e.classes == nil {
		e.classes = make(map[int32]string)
	}
	e.classes[stream] = class
	e.mu.Unlock()
}

// Now returns the engine clock reading (0 for nil) — exported so
// callers observing staleness can timestamp publish moments on the
// same clock the engine windows against.
func (e *Engine) Now() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.Now()
}

// ObserveFrame folds one frame outcome in: its pipeline latency,
// whether it was served (produced output, cleanly or downgraded), and
// whether it was degraded. Nil-safe.
func (e *Engine) ObserveFrame(stream int, latency time.Duration, served, degraded bool) {
	if e == nil {
		return
	}
	s := frameSample{latency: latency, stream: int32(stream), served: served, degraded: degraded}
	e.mu.Lock()
	s.at = e.cfg.Now()
	if len(e.frames) < e.cfg.MaxSamples {
		e.frames = append(e.frames, s)
	} else {
		e.frames[e.framesTotal%int64(e.cfg.MaxSamples)] = s
	}
	e.framesTotal++
	e.mu.Unlock()
	e.cFrames.Inc()
}

// ObserveStaleness folds one swap-staleness observation in: the delay
// between a generation's publish and this stream swapping onto it.
// Nil-safe.
func (e *Engine) ObserveStaleness(stream int, staleness time.Duration) {
	if e == nil {
		return
	}
	if staleness < 0 {
		staleness = 0
	}
	s := staleSample{stale: staleness, stream: int32(stream)}
	e.mu.Lock()
	s.at = e.cfg.Now()
	if len(e.stales) < staleCap {
		e.stales = append(e.stales, s)
	} else {
		e.stales[e.stalesTotal%int64(staleCap)] = s
	}
	e.stalesTotal++
	e.mu.Unlock()
}

// staleCap bounds the staleness ring; swaps are rare next to frames.
const staleCap = 1024

// Burn is one objective's burn rate over both windows.
type Burn struct {
	Short float64 `json:"short"`
	Long  float64 `json:"long"`
}

// alerting reports whether both windows burn past the threshold.
func (b Burn) alerting(threshold float64) bool {
	return b.Short > threshold && b.Long > threshold
}

// WindowStats is one window's objective readings.
type WindowStats struct {
	Window           time.Duration `json:"windowNs"`
	Frames           int           `json:"frames"`
	LatencyP99       time.Duration `json:"latencyP99Ns"`
	ServedFraction   float64       `json:"servedFraction"`
	DegradedFraction float64       `json:"degradedFraction"`
	SwapStaleness    time.Duration `json:"swapStalenessNs"`
}

// StreamStats is one stream's long-window aggregation, the unit of
// fleet-wide percentile computation.
type StreamStats struct {
	Stream         int           `json:"stream"`
	Frames         int           `json:"frames"`
	LatencyP99     time.Duration `json:"latencyP99Ns"`
	ServedFraction float64       `json:"servedFraction"`
}

// FleetStats aggregates per-stream long-window p99 latencies into
// fleet percentiles — the "fleet-wide percentile SLOs" reading: the
// median stream's p99, the p95 stream's p99, the worst stream's p99,
// and the worst served fraction.
type FleetStats struct {
	Streams           int           `json:"streams"`
	LatencyP99P50     time.Duration `json:"latencyP99P50Ns"`
	LatencyP99P95     time.Duration `json:"latencyP99P95Ns"`
	LatencyP99Max     time.Duration `json:"latencyP99MaxNs"`
	ServedFractionMin float64       `json:"servedFractionMin"`
}

// Status is one evaluation of every objective.
type Status struct {
	Short WindowStats `json:"short"`
	Long  WindowStats `json:"long"`

	LatencyBurn   Burn `json:"latencyBurn"`
	ServedBurn    Burn `json:"servedBurn"`
	DegradedBurn  Burn `json:"degradedBurn"`
	StalenessBurn Burn `json:"stalenessBurn"`

	// Alerts names the objectives burning past the threshold on both
	// windows, sorted.
	Alerts []string `json:"alerts,omitempty"`

	Fleet   FleetStats    `json:"fleet"`
	Streams []StreamStats `json:"streams,omitempty"`
	// Classes holds per-device-class fleet aggregation (sorted by
	// class), present only when SetStreamClass tagged streams.
	Classes []ClassStats `json:"classes,omitempty"`
}

// ClassStats is FleetStats restricted to one device class.
type ClassStats struct {
	Class string `json:"class"`
	FleetStats
}

// windowAcc accumulates one window's tallies during the single pass.
type windowAcc struct {
	frames    int
	served    int
	degraded  int
	overLat   int
	latencies []time.Duration
	worstSt   time.Duration
	stales    int
}

// Status evaluates every objective over both windows as of the engine
// clock now, refreshes the anole_slo_* gauges, and returns the
// readings. Samples timestamped in the future (clock skew between
// writers) count toward every window rather than vanishing. Nil
// engines return a zero Status.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	now := e.cfg.Now()
	frames := append([]frameSample(nil), e.frames...)
	stales := append([]staleSample(nil), e.stales...)
	var classes map[int32]string
	if len(e.classes) > 0 {
		classes = make(map[int32]string, len(e.classes))
		for s, c := range e.classes {
			classes[s] = c
		}
	}
	e.mu.Unlock()

	var st Status
	var shortAcc, longAcc windowAcc
	st.Short, shortAcc = e.window(frames, stales, now, e.cfg.ShortWindow, nil)
	perStream := make(map[int32]*windowAcc)
	st.Long, longAcc = e.window(frames, stales, now, e.cfg.LongWindow, perStream)

	st.LatencyBurn = Burn{
		Short: burn(fracOf(shortAcc.overLat, shortAcc.frames), latencyBudget),
		Long:  burn(fracOf(longAcc.overLat, longAcc.frames), latencyBudget),
	}
	st.ServedBurn = Burn{
		Short: burn(1-st.Short.ServedFraction, 1-e.cfg.ServedTarget),
		Long:  burn(1-st.Long.ServedFraction, 1-e.cfg.ServedTarget),
	}
	st.DegradedBurn = Burn{
		Short: burn(st.Short.DegradedFraction, e.cfg.DegradedBudget),
		Long:  burn(st.Long.DegradedFraction, e.cfg.DegradedBudget),
	}
	st.StalenessBurn = Burn{
		Short: ratio(st.Short.SwapStaleness, e.cfg.StalenessTarget),
		Long:  ratio(st.Long.SwapStaleness, e.cfg.StalenessTarget),
	}

	for name, b := range map[string]Burn{
		"latency": st.LatencyBurn, "served": st.ServedBurn,
		"degraded": st.DegradedBurn, "staleness": st.StalenessBurn,
	} {
		if b.alerting(e.cfg.BurnAlert) {
			st.Alerts = append(st.Alerts, name)
		}
	}
	sort.Strings(st.Alerts)

	st.Streams, st.Fleet = fleetStats(perStream)
	st.Classes = e.classStats(perStream, classes)

	// Refresh the exported gauges from the long window.
	e.gLatencyP99.Set(st.Long.LatencyP99.Seconds())
	e.gServed.Set(st.Long.ServedFraction)
	e.gDegraded.Set(st.Long.DegradedFraction)
	e.gStaleness.Set(st.Long.SwapStaleness.Seconds())
	if e.gBurns != nil {
		e.gBurns["latency_short"].Set(st.LatencyBurn.Short)
		e.gBurns["latency_long"].Set(st.LatencyBurn.Long)
		e.gBurns["served_short"].Set(st.ServedBurn.Short)
		e.gBurns["served_long"].Set(st.ServedBurn.Long)
		e.gBurns["degraded_short"].Set(st.DegradedBurn.Short)
		e.gBurns["degraded_long"].Set(st.DegradedBurn.Long)
		e.gBurns["staleness_short"].Set(st.StalenessBurn.Short)
		e.gBurns["staleness_long"].Set(st.StalenessBurn.Long)
	}
	e.gAlerting.Set(float64(len(st.Alerts)))
	return st
}

// window computes one window's stats; when perStream is non-nil the
// pass also buckets samples by stream for fleet aggregation.
func (e *Engine) window(frames []frameSample, stales []staleSample, now, w time.Duration, perStream map[int32]*windowAcc) (WindowStats, windowAcc) {
	cut := now - w
	acc := windowAcc{}
	for _, s := range frames {
		// ">= cut" keeps skewed-future samples too: a writer slightly
		// ahead of the reader's clock must not make frames vanish from
		// every window.
		if s.at < cut {
			continue
		}
		acc.frames++
		if s.served {
			acc.served++
		}
		if s.degraded {
			acc.degraded++
		}
		if s.latency > e.cfg.LatencyTarget {
			acc.overLat++
		}
		acc.latencies = append(acc.latencies, s.latency)
		if perStream != nil {
			sa := perStream[s.stream]
			if sa == nil {
				sa = &windowAcc{}
				perStream[s.stream] = sa
			}
			sa.frames++
			if s.served {
				sa.served++
			}
			sa.latencies = append(sa.latencies, s.latency)
		}
	}
	for _, s := range stales {
		if s.at < cut {
			continue
		}
		acc.stales++
		if s.stale > acc.worstSt {
			acc.worstSt = s.stale
		}
	}
	out := WindowStats{
		Window:           w,
		Frames:           acc.frames,
		LatencyP99:       quantileDur(acc.latencies, 0.99),
		ServedFraction:   servedFrac(acc.served, acc.frames),
		DegradedFraction: fracOf(acc.degraded, acc.frames),
		SwapStaleness:    acc.worstSt,
	}
	return out, acc
}

// classStats partitions the per-stream long-window buckets by device
// class and folds each partition through fleetStats, refreshing the
// per-class anole_fleet_* gauges. Streams with no class tag are left
// out of every partition (they still count in the fleet-wide stats).
func (e *Engine) classStats(perStream map[int32]*windowAcc, classes map[int32]string) []ClassStats {
	if len(classes) == 0 || len(perStream) == 0 {
		return nil
	}
	byClass := make(map[string]map[int32]*windowAcc)
	for id, sa := range perStream {
		class, ok := classes[id]
		if !ok {
			continue
		}
		part := byClass[class]
		if part == nil {
			part = make(map[int32]*windowAcc)
			byClass[class] = part
		}
		part[id] = sa
	}
	out := make([]ClassStats, 0, len(byClass))
	for class, part := range byClass {
		_, fs := fleetStats(part)
		out = append(out, ClassStats{Class: class, FleetStats: fs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	for _, cs := range out {
		e.classGauge(cs.Class, "latency_p99_p50_seconds", "Median stream p99 latency in this device class, long window.").Set(cs.LatencyP99P50.Seconds())
		e.classGauge(cs.Class, "latency_p99_p95_seconds", "p95 stream p99 latency in this device class, long window.").Set(cs.LatencyP99P95.Seconds())
		e.classGauge(cs.Class, "latency_p99_max_seconds", "Worst stream p99 latency in this device class, long window.").Set(cs.LatencyP99Max.Seconds())
		e.classGauge(cs.Class, "served_fraction_min", "Worst stream served fraction in this device class, long window.").Set(cs.ServedFractionMin)
		e.classGauge(cs.Class, "streams", "Streams of this device class reporting in the long window.").Set(float64(cs.Streams))
	}
	return out
}

// classGauge returns the lazily-registered anole_fleet_<class>_<metric>
// gauge, or nil (a nil-safe no-op handle) without a registry.
func (e *Engine) classGauge(class, metric, help string) *telemetry.Gauge {
	if e.cfg.Metrics == nil {
		return nil
	}
	key := class + "/" + metric
	e.mu.Lock()
	g, ok := e.classGauges[key]
	if !ok {
		if e.classGauges == nil {
			e.classGauges = make(map[string]*telemetry.Gauge)
		}
		g = e.cfg.Metrics.Gauge("anole_fleet_"+class+"_"+metric, help)
		e.classGauges[key] = g
	}
	e.mu.Unlock()
	return g
}

// fleetStats folds the per-stream long-window buckets into sorted
// per-stream stats and fleet percentiles.
func fleetStats(perStream map[int32]*windowAcc) ([]StreamStats, FleetStats) {
	if len(perStream) == 0 {
		return nil, FleetStats{ServedFractionMin: 1}
	}
	streams := make([]StreamStats, 0, len(perStream))
	for id, sa := range perStream {
		streams = append(streams, StreamStats{
			Stream:         int(id),
			Frames:         sa.frames,
			LatencyP99:     quantileDur(sa.latencies, 0.99),
			ServedFraction: servedFrac(sa.served, sa.frames),
		})
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].Stream < streams[j].Stream })

	p99s := make([]time.Duration, 0, len(streams))
	fleet := FleetStats{Streams: len(streams), ServedFractionMin: 1}
	for _, s := range streams {
		p99s = append(p99s, s.LatencyP99)
		if s.ServedFraction < fleet.ServedFractionMin {
			fleet.ServedFractionMin = s.ServedFraction
		}
	}
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	fleet.LatencyP99P50 = quantileSorted(p99s, 0.50)
	fleet.LatencyP99P95 = quantileSorted(p99s, 0.95)
	fleet.LatencyP99Max = p99s[len(p99s)-1]
	return streams, fleet
}

// burn converts an observed bad fraction and its budget into a burn
// rate. Negative observed fractions (floating-point fuzz) clamp to 0.
func burn(observed, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	if observed <= 0 {
		return 0
	}
	return observed / budget
}

// ratio is the gauge-style burn of a worst-observed value against its
// target.
func ratio(observed, target time.Duration) float64 {
	if target <= 0 || observed <= 0 {
		return 0
	}
	return float64(observed) / float64(target)
}

// fracOf returns n/total, 0 for an empty window.
func fracOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// servedFrac returns served/total; an empty window reads as fully
// served (no frames were failed).
func servedFrac(served, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(served) / float64(total)
}

// quantileDur sorts (a copy is not needed — callers own the slice) and
// reads the q-th quantile with the nearest-rank method. Empty input
// reads 0; a single sample reads itself at every quantile.
func quantileDur(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return quantileSorted(d, q)
}

// quantileSorted reads the q-th quantile of a sorted slice by nearest
// rank.
func quantileSorted(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(d)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d) {
		idx = len(d) - 1
	}
	return d[idx]
}
