package slo

import (
	"sync"
	"testing"
	"time"

	"anole/internal/telemetry"
)

// fixedClock returns an engine clock reading from a settable cell.
func fixedClock() (*time.Duration, func() time.Duration) {
	at := new(time.Duration)
	return at, func() time.Duration { return *at }
}

func newTestEngine(t *testing.T, cfg Config) (*Engine, *time.Duration) {
	t.Helper()
	at, now := fixedClock()
	cfg.Now = now
	return NewEngine(cfg), at
}

func TestEmptyWindow(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	st := e.Status()
	if st.Long.Frames != 0 || st.Long.LatencyP99 != 0 {
		t.Fatalf("empty long window: %+v", st.Long)
	}
	if st.Long.ServedFraction != 1 {
		t.Fatalf("empty window served fraction %v, want 1 (no frames failed)", st.Long.ServedFraction)
	}
	if st.LatencyBurn != (Burn{}) || st.ServedBurn != (Burn{}) || st.DegradedBurn != (Burn{}) || st.StalenessBurn != (Burn{}) {
		t.Fatalf("empty window burns non-zero: %+v", st)
	}
	if len(st.Alerts) != 0 {
		t.Fatalf("empty window alerts: %v", st.Alerts)
	}
	if st.Fleet.Streams != 0 || st.Fleet.ServedFractionMin != 1 {
		t.Fatalf("empty fleet: %+v", st.Fleet)
	}
}

func TestSingleSample(t *testing.T) {
	e, at := newTestEngine(t, Config{LatencyTarget: 10 * time.Millisecond})
	*at = time.Second
	e.ObserveFrame(0, 7*time.Millisecond, true, false)
	st := e.Status()
	if st.Long.Frames != 1 || st.Long.LatencyP99 != 7*time.Millisecond {
		t.Fatalf("single sample p99 = %v over %d frames", st.Long.LatencyP99, st.Long.Frames)
	}
	if st.Long.ServedFraction != 1 || st.Long.DegradedFraction != 0 {
		t.Fatalf("single sample fractions: %+v", st.Long)
	}
	if st.LatencyBurn.Long != 0 {
		t.Fatalf("under-target sample burned budget: %v", st.LatencyBurn)
	}
	if st.Fleet.Streams != 1 || st.Fleet.LatencyP99Max != 7*time.Millisecond {
		t.Fatalf("fleet from one stream: %+v", st.Fleet)
	}
}

func TestWindowingAndBurnRates(t *testing.T) {
	e, at := newTestEngine(t, Config{
		LatencyTarget:  10 * time.Millisecond,
		ServedTarget:   0.9, // budget 0.1
		DegradedBudget: 0.25,
		ShortWindow:    time.Second,
		LongWindow:     10 * time.Second,
	})
	// Old frames: inside the long window only. 10 frames, all good.
	*at = 2 * time.Second
	for i := 0; i < 10; i++ {
		e.ObserveFrame(0, 5*time.Millisecond, true, false)
	}
	// Recent frames: inside both windows. 10 frames: 5 shed, 5 served
	// of which 5 degraded and all over the latency target.
	*at = 10 * time.Second
	for i := 0; i < 5; i++ {
		e.ObserveFrame(1, 20*time.Millisecond, false, false)
		e.ObserveFrame(1, 20*time.Millisecond, true, true)
	}

	st := e.Status()
	if st.Short.Frames != 10 || st.Long.Frames != 20 {
		t.Fatalf("window frame counts short=%d long=%d", st.Short.Frames, st.Long.Frames)
	}
	// Short window: 50% shed → error 0.5 / budget 0.1 = burn 5.
	if got := st.ServedBurn.Short; got < 4.99 || got > 5.01 {
		t.Fatalf("short served burn %v, want 5", got)
	}
	// Long window: 25% shed → burn 2.5.
	if got := st.ServedBurn.Long; got < 2.49 || got > 2.51 {
		t.Fatalf("long served burn %v, want 2.5", got)
	}
	// Degraded: short 0.5/0.25 = 2; long 0.25/0.25 = 1.
	if st.DegradedBurn.Short < 1.99 || st.DegradedBurn.Short > 2.01 || st.DegradedBurn.Long < 0.99 || st.DegradedBurn.Long > 1.01 {
		t.Fatalf("degraded burns %+v", st.DegradedBurn)
	}
	// Latency: short window 10/10 over target → 1.0/0.01 = 100.
	if got := st.LatencyBurn.Short; got < 99.9 || got > 100.1 {
		t.Fatalf("short latency burn %v, want 100", got)
	}
	// Served burns past 1.0 on both windows → alerting; degraded long
	// is exactly 1.0 (not >) → not alerting.
	wantAlerts := []string{"latency", "served"}
	if len(st.Alerts) != 2 || st.Alerts[0] != wantAlerts[0] || st.Alerts[1] != wantAlerts[1] {
		t.Fatalf("alerts %v, want %v", st.Alerts, wantAlerts)
	}
}

func TestFleetPercentiles(t *testing.T) {
	e, at := newTestEngine(t, Config{LongWindow: 10 * time.Second})
	*at = time.Second
	// Stream i's frames all take (i+1)ms → per-stream p99 = (i+1)ms.
	for i := 0; i < 10; i++ {
		for f := 0; f < 5; f++ {
			e.ObserveFrame(i, time.Duration(i+1)*time.Millisecond, true, false)
		}
	}
	st := e.Status()
	if st.Fleet.Streams != 10 {
		t.Fatalf("fleet streams %d", st.Fleet.Streams)
	}
	if st.Fleet.LatencyP99P50 != 5*time.Millisecond {
		t.Fatalf("fleet p50 of stream p99s = %v, want 5ms", st.Fleet.LatencyP99P50)
	}
	if st.Fleet.LatencyP99P95 != 10*time.Millisecond {
		t.Fatalf("fleet p95 of stream p99s = %v, want 10ms", st.Fleet.LatencyP99P95)
	}
	if st.Fleet.LatencyP99Max != 10*time.Millisecond {
		t.Fatalf("fleet max %v", st.Fleet.LatencyP99Max)
	}
	if len(st.Streams) != 10 || st.Streams[0].Stream != 0 || st.Streams[9].LatencyP99 != 10*time.Millisecond {
		t.Fatalf("per-stream stats %+v", st.Streams)
	}
}

func TestSwapStaleness(t *testing.T) {
	e, at := newTestEngine(t, Config{StalenessTarget: 10 * time.Second, LongWindow: time.Minute})
	*at = time.Second
	e.ObserveStaleness(0, 5*time.Second)
	e.ObserveStaleness(1, 25*time.Second)
	e.ObserveStaleness(2, -3*time.Second) // skewed negative clamps to 0
	st := e.Status()
	if st.Long.SwapStaleness != 25*time.Second {
		t.Fatalf("worst staleness %v", st.Long.SwapStaleness)
	}
	if got := st.StalenessBurn.Long; got < 2.49 || got > 2.51 {
		t.Fatalf("staleness burn %v, want 2.5", got)
	}
}

// TestClockSkew: samples stamped ahead of the reader's clock (a writer
// racing ahead) must count toward every window, and a clock that
// steps backwards must not panic or produce negative windows.
func TestClockSkew(t *testing.T) {
	e, at := newTestEngine(t, Config{ShortWindow: time.Second, LongWindow: 10 * time.Second})
	*at = 5 * time.Second
	e.ObserveFrame(0, time.Millisecond, true, false)
	// Clock steps backwards before Status: the sample is "from the
	// future" relative to now.
	*at = 2 * time.Second
	st := e.Status()
	if st.Short.Frames != 1 || st.Long.Frames != 1 {
		t.Fatalf("future sample vanished: short=%d long=%d", st.Short.Frames, st.Long.Frames)
	}
	// Far-backwards step: window cut underflows below zero; still sane.
	*at = 0
	if st = e.Status(); st.Long.Frames != 1 {
		t.Fatalf("zero-clock window lost the sample: %+v", st.Long)
	}
}

func TestMetricsExportAndScheme(t *testing.T) {
	reg := telemetry.NewRegistry()
	at, now := fixedClock()
	e := NewEngine(Config{Metrics: reg, Now: now, LatencyTarget: 10 * time.Millisecond})
	*at = time.Second
	e.ObserveFrame(0, 20*time.Millisecond, true, true)
	e.Status()
	m := telemetry.Map(reg)
	if m["anole_slo_frames_total"] != 1 {
		t.Fatalf("frames counter %v", m["anole_slo_frames_total"])
	}
	if m["anole_slo_latency_p99_seconds"] != 0.02 {
		t.Fatalf("latency gauge %v", m["anole_slo_latency_p99_seconds"])
	}
	if m["anole_slo_latency_burn_long"] != 100 {
		t.Fatalf("latency burn gauge %v", m["anole_slo_latency_burn_long"])
	}
	if m["anole_slo_degraded_fraction"] != 1 {
		t.Fatalf("degraded gauge %v", m["anole_slo_degraded_fraction"])
	}
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("scheme: %v", err)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.ObserveFrame(0, time.Millisecond, true, false)
	e.ObserveStaleness(0, time.Second)
	if e.Now() != 0 {
		t.Fatal("nil Now")
	}
	if st := e.Status(); st.Long.Frames != 0 {
		t.Fatal("nil engine status")
	}
}

// TestEngineConcurrent hammers the engine from parallel observers and
// readers; run with -race.
func TestEngineConcurrent(t *testing.T) {
	e := NewEngine(Config{MaxSamples: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				e.ObserveFrame(w, time.Duration(i)*time.Microsecond, i%7 != 0, i%5 == 0)
				if i%20 == 0 {
					e.ObserveStaleness(w, time.Duration(i)*time.Millisecond)
					_ = e.Status()
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Status()
	if st.Long.Frames == 0 || st.Fleet.Streams == 0 {
		t.Fatalf("concurrent run folded nothing: %+v", st.Long)
	}
}

func TestRingBound(t *testing.T) {
	e, at := newTestEngine(t, Config{MaxSamples: 8, LongWindow: time.Hour})
	*at = time.Second
	for i := 0; i < 100; i++ {
		e.ObserveFrame(0, time.Millisecond, true, false)
	}
	if st := e.Status(); st.Long.Frames != 8 {
		t.Fatalf("ring did not bound samples: %d", st.Long.Frames)
	}
}

// TestClassStats partitions the fleet percentiles by device class: two
// classes with well-separated per-stream latencies must each report
// their own p99 aggregates, sorted by class, and export them as
// anole_fleet_<class>_* gauges.
func TestClassStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	at, now := fixedClock()
	e := NewEngine(Config{Metrics: reg, Now: now, LongWindow: 10 * time.Second})
	*at = time.Second

	// Streams 0-1 are "nano" at 20ms, streams 2-3 "tx2" at 5ms; stream
	// 4 has no class and must stay out of every class bucket.
	for _, s := range []int32{0, 1} {
		e.SetStreamClass(s, "nano")
	}
	for _, s := range []int32{2, 3} {
		e.SetStreamClass(s, "tx2")
	}
	for s := 0; s < 5; s++ {
		lat := 20 * time.Millisecond
		if s >= 2 {
			lat = 5 * time.Millisecond
		}
		for f := 0; f < 4; f++ {
			e.ObserveFrame(s, lat, true, false)
		}
	}

	st := e.Status()
	if len(st.Classes) != 2 {
		t.Fatalf("classes %+v, want nano and tx2", st.Classes)
	}
	nano, tx2 := st.Classes[0], st.Classes[1]
	if nano.Class != "nano" || tx2.Class != "tx2" {
		t.Fatalf("classes not sorted: %q, %q", nano.Class, tx2.Class)
	}
	if nano.Streams != 2 || tx2.Streams != 2 {
		t.Fatalf("class stream counts %d/%d, want 2/2", nano.Streams, tx2.Streams)
	}
	if nano.LatencyP99Max != 20*time.Millisecond || tx2.LatencyP99Max != 5*time.Millisecond {
		t.Fatalf("class p99 max nano=%v tx2=%v", nano.LatencyP99Max, tx2.LatencyP99Max)
	}
	if nano.ServedFractionMin != 1 || tx2.ServedFractionMin != 1 {
		t.Fatalf("served fraction min nano=%v tx2=%v", nano.ServedFractionMin, tx2.ServedFractionMin)
	}

	m := telemetry.Map(reg)
	if m["anole_fleet_nano_latency_p99_max_seconds"] != 0.02 {
		t.Fatalf("nano gauge %v", m["anole_fleet_nano_latency_p99_max_seconds"])
	}
	if m["anole_fleet_tx2_latency_p99_max_seconds"] != 0.005 {
		t.Fatalf("tx2 gauge %v", m["anole_fleet_tx2_latency_p99_max_seconds"])
	}
	if m["anole_fleet_nano_streams"] != 2 {
		t.Fatalf("nano streams gauge %v", m["anole_fleet_nano_streams"])
	}
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("scheme: %v", err)
	}

	// SetStreamClass is nil-safe and ignores empty classes.
	var nilE *Engine
	nilE.SetStreamClass(0, "nano")
	e.SetStreamClass(9, "")
	if st := e.Status(); len(st.Classes) != 2 {
		t.Fatalf("empty class leaked into stats: %+v", st.Classes)
	}
}
