package nn

import (
	"math"

	"anole/internal/tensor"
)

// Loss computes a scalar objective and its gradient with respect to the
// network's raw output (logits for the classification losses).
type Loss interface {
	// Eval returns the loss value and writes dLoss/dOutput into grad
	// (which has the output's length and is overwritten).
	Eval(output, target tensor.Vector, grad tensor.Vector) float64
	// Name identifies the loss for logs.
	Name() string
}

// SoftmaxCrossEntropy is the fused softmax + categorical cross-entropy
// loss. The target is a one-hot (or soft) distribution over classes. The
// fused form keeps the gradient numerically benign: grad = softmax(o) − t.
// The type is stateless, so one instance may be shared by concurrent
// trainer workers.
type SoftmaxCrossEntropy struct{}

// NewSoftmaxCrossEntropy returns the fused classification loss used to
// train M_scene and M_decision.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Eval implements Loss. It reuses grad as softmax scratch space before
// overwriting it with the gradient.
func (l *SoftmaxCrossEntropy) Eval(output, target, grad tensor.Vector) float64 {
	probs := tensor.Softmax(grad, output)
	var loss float64
	for i, t := range target {
		if t > 0 {
			p := probs[i]
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= t * math.Log(p)
		}
		grad[i] = probs[i] - t
	}
	return loss
}

// Name implements Loss.
func (l *SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// BCEWithLogits is element-wise binary cross-entropy on logits, used for
// the detectors' multi-label objectness/class heads. Gradient per element
// is sigmoid(o) − t.
type BCEWithLogits struct{}

// NewBCEWithLogits returns the multi-label detection loss.
func NewBCEWithLogits() *BCEWithLogits { return &BCEWithLogits{} }

// Eval implements Loss.
func (l *BCEWithLogits) Eval(output, target, grad tensor.Vector) float64 {
	var loss float64
	n := float64(len(output))
	for i, o := range output {
		t := target[i]
		// Numerically stable BCE-with-logits:
		// max(o,0) - o*t + log(1+exp(-|o|)).
		loss += math.Max(o, 0) - o*t + math.Log1p(math.Exp(-math.Abs(o)))
		s := 1 / (1 + math.Exp(-o))
		grad[i] = (s - t) / n
	}
	return loss / n
}

// Name implements Loss.
func (l *BCEWithLogits) Name() string { return "bce-logits" }

// MSE is the mean squared error loss, used in tests and for regression
// probes.
type MSE struct{}

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Eval implements Loss.
func (l *MSE) Eval(output, target, grad tensor.Vector) float64 {
	var loss float64
	n := float64(len(output))
	for i, o := range output {
		d := o - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n
}

// Name implements Loss.
func (l *MSE) Name() string { return "mse" }
