package nn

import (
	"math"
	"testing"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestDenseForward(t *testing.T) {
	d := NewDense(2, 2, xrand.New(1))
	d.W.Set(0, 0, 1)
	d.W.Set(0, 1, 2)
	d.W.Set(1, 0, 3)
	d.W.Set(1, 1, 4)
	d.B[0], d.B[1] = 10, 20
	out := d.Forward(tensor.Vector{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("dense forward: %v", out)
	}
}

func TestDenseForwardPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(3, 2, xrand.New(1)).Forward(tensor.Vector{1})
}

func TestActivations(t *testing.T) {
	in := tensor.Vector{-1, 0, 2}
	relu := NewReLU().Forward(in)
	if relu[0] != 0 || relu[2] != 2 {
		t.Fatalf("relu: %v", relu)
	}
	tanh := NewTanh().Forward(in)
	if !almostEqual(tanh[2], math.Tanh(2), 1e-12) {
		t.Fatalf("tanh: %v", tanh)
	}
	sig := NewSigmoid().Forward(in)
	if !almostEqual(sig[1], 0.5, 1e-12) {
		t.Fatalf("sigmoid: %v", sig)
	}
}

// numericalGradient computes dLoss/dParam by central differences over
// every parameter of net, for one sample.
func numericalGradient(net *Network, loss Loss, x, y tensor.Vector) []tensor.Vector {
	const h = 1e-5
	params := net.Params()
	grads := make([]tensor.Vector, len(params))
	scratch := tensor.NewVector(net.OutDim())
	for gi, p := range params {
		grads[gi] = tensor.NewVector(len(p.Value))
		for j := range p.Value {
			orig := p.Value[j]
			p.Value[j] = orig + h
			lossPlus := loss.Eval(net.Forward(x), y, scratch)
			p.Value[j] = orig - h
			lossMinus := loss.Eval(net.Forward(x), y, scratch)
			p.Value[j] = orig
			grads[gi][j] = (lossPlus - lossMinus) / (2 * h)
		}
	}
	return grads
}

func checkGradients(t *testing.T, net *Network, loss Loss, x, y tensor.Vector) {
	t.Helper()
	numeric := numericalGradient(net, loss, x, y)
	net.ZeroGrad()
	out := net.Forward(x)
	grad := tensor.NewVector(len(out))
	loss.Eval(out, y, grad)
	net.Backward(grad)
	for gi, p := range net.Params() {
		for j := range p.Grad {
			if !almostEqual(p.Grad[j], numeric[gi][j], 1e-5+1e-4*math.Abs(numeric[gi][j])) {
				t.Fatalf("param group %d[%d]: analytic %v vs numeric %v", gi, j, p.Grad[j], numeric[gi][j])
			}
		}
	}
}

func TestGradientCheckSoftmaxCE(t *testing.T) {
	rng := xrand.New(11)
	net := NewMLP(MLPConfig{InDim: 4, Hidden: []int{6}, OutDim: 3, Activation: NewTanh}, rng)
	x := tensor.Vector{0.3, -0.7, 0.5, 1.2}
	y := tensor.Vector{0, 1, 0}
	checkGradients(t, net, NewSoftmaxCrossEntropy(), x, y)
}

func TestGradientCheckBCE(t *testing.T) {
	rng := xrand.New(12)
	net := NewMLP(MLPConfig{InDim: 3, Hidden: []int{5}, OutDim: 4, Activation: NewTanh}, rng)
	x := tensor.Vector{0.1, 0.9, -0.4}
	y := tensor.Vector{1, 0, 1, 0}
	checkGradients(t, net, NewBCEWithLogits(), x, y)
}

func TestGradientCheckMSE(t *testing.T) {
	rng := xrand.New(13)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{4, 3}, OutDim: 2, Activation: NewTanh}, rng)
	x := tensor.Vector{0.6, -0.2}
	y := tensor.Vector{0.5, -1}
	checkGradients(t, net, NewMSE(), x, y)
}

func TestGradientCheckReLU(t *testing.T) {
	rng := xrand.New(14)
	net := NewMLP(MLPConfig{InDim: 3, Hidden: []int{8}, OutDim: 2}, rng)
	// Avoid inputs that put pre-activations exactly at the ReLU kink.
	x := tensor.Vector{0.37, -0.81, 0.55}
	y := tensor.Vector{1, 0}
	checkGradients(t, net, NewSoftmaxCrossEntropy(), x, y)
}

func xorSamples() []Sample {
	return []Sample{
		{X: tensor.Vector{0, 0}, Y: tensor.Vector{1, 0}},
		{X: tensor.Vector{0, 1}, Y: tensor.Vector{0, 1}},
		{X: tensor.Vector{1, 0}, Y: tensor.Vector{0, 1}},
		{X: tensor.Vector{1, 1}, Y: tensor.Vector{1, 0}},
	}
}

func TestTrainXORAdam(t *testing.T) {
	rng := xrand.New(21)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{8}, OutDim: 2, Activation: NewTanh}, rng)
	_, err := Train(net, xorSamples(), nil, TrainConfig{
		Epochs:    400,
		BatchSize: 4,
		Optimizer: NewAdam(0.05),
		RNG:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, xorSamples()); acc != 1 {
		t.Fatalf("XOR accuracy = %v, want 1", acc)
	}
}

func TestTrainXORSGD(t *testing.T) {
	rng := xrand.New(22)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{12}, OutDim: 2, Activation: NewTanh}, rng)
	_, err := Train(net, xorSamples(), nil, TrainConfig{
		Epochs:    2000,
		BatchSize: 4,
		Optimizer: NewSGD(0.3, 0.9),
		RNG:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, xorSamples()); acc != 1 {
		t.Fatalf("XOR accuracy with SGD = %v, want 1", acc)
	}
}

func TestTrainEmptySet(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, xrand.New(1))
	if _, err := Train(net, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestTrainDeterministic(t *testing.T) {
	build := func() *Network {
		rng := xrand.New(33)
		net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{4}, OutDim: 2}, rng)
		_, err := Train(net, xorSamples(), nil, TrainConfig{Epochs: 20, RNG: rng})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	a := build()
	b := build()
	pa, pb := a.Params(), b.Params()
	for gi := range pa {
		for j := range pa[gi].Value {
			if pa[gi].Value[j] != pb[gi].Value[j] {
				t.Fatalf("training not deterministic at group %d[%d]", gi, j)
			}
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	// With full-batch gradient descent the update is order-independent
	// up to floating-point summation order, so 1-worker and 4-worker
	// runs should land on nearly identical weights.
	samples := xorSamples()
	build := func(workers int) *Network {
		rng := xrand.New(44)
		net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{4}, OutDim: 2, Activation: NewTanh}, rng)
		_, err := Train(net, samples, nil, TrainConfig{
			Epochs:    30,
			BatchSize: 4,
			Optimizer: NewSGD(0.1, 0),
			RNG:       rng,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	serial := build(1)
	parallel := build(4)
	ps, pp := serial.Params(), parallel.Params()
	for gi := range ps {
		for j := range ps[gi].Value {
			if !almostEqual(ps[gi].Value[j], pp[gi].Value[j], 1e-9) {
				t.Fatalf("parallel diverged at group %d[%d]: %v vs %v",
					gi, j, ps[gi].Value[j], pp[gi].Value[j])
			}
		}
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	rng := xrand.New(55)
	// Tiny train set, disjoint val set: overfitting sets in, so early
	// stopping must trigger and restore the checkpoint.
	train := []Sample{
		{X: tensor.Vector{0.1, 0.2}, Y: tensor.Vector{1, 0}},
		{X: tensor.Vector{0.9, 0.8}, Y: tensor.Vector{0, 1}},
	}
	val := []Sample{
		{X: tensor.Vector{0.2, 0.1}, Y: tensor.Vector{1, 0}},
		{X: tensor.Vector{0.8, 0.9}, Y: tensor.Vector{0, 1}},
	}
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{16}, OutDim: 2}, rng)
	res, err := Train(net, train, val, TrainConfig{
		Epochs:    300,
		BatchSize: 2,
		Optimizer: NewAdam(0.1),
		RNG:       rng,
		Patience:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValLoss) == 0 {
		t.Fatal("validation losses not recorded")
	}
	finalVal := MeanLoss(net, val, NewSoftmaxCrossEntropy())
	if finalVal > res.BestValLoss+1e-9 {
		t.Fatalf("restored weights have val loss %v > best %v", finalVal, res.BestValLoss)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := xrand.New(66)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{3}, OutDim: 2}, rng)
	clone := net.Clone()
	x := tensor.Vector{0.5, -0.5}
	before := net.Forward(x).Clone()
	// Perturb the clone; master must not change.
	for _, p := range clone.Params() {
		for j := range p.Value {
			p.Value[j] += 1
		}
	}
	after := net.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("clone shares weights with master")
		}
	}
}

func TestCopyWeightsFromMismatch(t *testing.T) {
	a := NewMLP(MLPConfig{InDim: 2, Hidden: []int{3}, OutDim: 2}, xrand.New(1))
	b := NewMLP(MLPConfig{InDim: 2, Hidden: []int{4}, OutDim: 2}, xrand.New(1))
	if err := a.CopyWeightsFrom(b); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestNewNetworkDimValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewNetwork(NewDense(2, 3, rng), NewDense(4, 2, rng)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := NewNetwork(NewDense(2, 3, rng), NewReLU(), NewDense(3, 2, rng)); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestForwardThrough(t *testing.T) {
	rng := xrand.New(2)
	net := MustNetwork(NewDense(2, 5, rng), NewReLU(), NewDense(5, 3, rng))
	x := tensor.Vector{1, -1}
	emb := net.ForwardThrough(2, x)
	if len(emb) != 5 {
		t.Fatalf("embedding dim = %d", len(emb))
	}
	full := net.Forward(x)
	if len(full) != 3 {
		t.Fatalf("output dim = %d", len(full))
	}
}

func TestForwardThroughPanicsOutOfRange(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.ForwardThrough(99, tensor.Vector{1, 2})
}

func TestParamAndFLOPCounting(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 10, Hidden: []int{20}, OutDim: 5}, xrand.New(1))
	wantParams := 10*20 + 20 + 20*5 + 5
	if got := net.ParamCount(); got != wantParams {
		t.Fatalf("params = %d, want %d", got, wantParams)
	}
	wantFLOPs := int64(2*10*20+20) + 20 + int64(2*20*5+5)
	if got := net.FLOPs(); got != wantFLOPs {
		t.Fatalf("flops = %d, want %d", got, wantFLOPs)
	}
	if net.WeightBytes() != int64(wantParams*8) {
		t.Fatalf("weight bytes = %d", net.WeightBytes())
	}
}

func TestInOutDim(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 7, Hidden: []int{4}, OutDim: 3}, xrand.New(1))
	if net.InDim() != 7 || net.OutDim() != 3 {
		t.Fatalf("dims: in=%d out=%d", net.InDim(), net.OutDim())
	}
}

func TestMeanLossAndAccuracyEmpty(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, xrand.New(1))
	if MeanLoss(net, nil, NewMSE()) != 0 {
		t.Fatal("empty mean loss should be 0")
	}
	if Accuracy(net, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := xrand.New(77)
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, rng)
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	var normBefore float64
	for _, p := range net.Params() {
		normBefore += p.Value.Norm2()
	}
	// Zero gradients: the update is pure decay.
	net.ZeroGrad()
	opt.Step(net.Params())
	var normAfter float64
	for _, p := range net.Params() {
		normAfter += p.Value.Norm2()
	}
	if normAfter >= normBefore {
		t.Fatalf("weight decay did not shrink weights: %v -> %v", normBefore, normAfter)
	}
}

func TestOptimizerReset(t *testing.T) {
	adam := NewAdam(0.01)
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, xrand.New(1))
	adam.Step(net.Params())
	adam.Reset()
	if adam.t != 0 || adam.m != nil {
		t.Fatal("Adam reset incomplete")
	}
	sgd := NewSGD(0.1, 0.9)
	sgd.Step(net.Params())
	sgd.Reset()
	if sgd.velocity != nil {
		t.Fatal("SGD reset incomplete")
	}
}

func TestLossNames(t *testing.T) {
	if NewSoftmaxCrossEntropy().Name() == "" || NewBCEWithLogits().Name() == "" || NewMSE().Name() == "" {
		t.Fatal("losses must be named")
	}
	if NewAdam(0.1).Name() != "adam" || NewSGD(0.1, 0).Name() != "sgd" {
		t.Fatal("optimizer names wrong")
	}
}

func BenchmarkForwardMLP(b *testing.B) {
	net := NewMLP(MLPConfig{InDim: 64, Hidden: []int{64}, OutDim: 16}, xrand.New(1))
	x := tensor.NewVector(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	rng := xrand.New(1)
	net := NewMLP(MLPConfig{InDim: 32, Hidden: []int{32}, OutDim: 8}, rng)
	samples := make([]Sample, 32)
	for i := range samples {
		x := tensor.NewVector(32)
		for j := range x {
			x[j] = rng.Norm()
		}
		y := tensor.NewVector(8)
		y[i%8] = 1
		samples[i] = Sample{X: x, Y: y}
	}
	cfg := TrainConfig{Epochs: 1, BatchSize: 32, RNG: rng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(net, samples, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
