package nn_test

import (
	"bytes"
	"math"
	"testing"

	"anole/internal/nn"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

func freezeFixture(t testing.TB, seed uint64) (*nn.Network, *nn.Weights, *xrand.RNG) {
	t.Helper()
	rng := xrand.New(seed)
	net := nn.NewMLP(nn.MLPConfig{InDim: 12, Hidden: []int{24, 16}, OutDim: 7}, rng)
	return net, net.Freeze(), rng
}

func randVec(rng *xrand.RNG, n int) tensor.Vector {
	v := tensor.NewVector(n)
	for i := range v {
		v[i] = rng.NormMS(0, 1)
	}
	return v
}

// TestFreezeInferMatchesForward pins that the frozen program computes
// bit-for-bit the same function as the trainable network it came from,
// including the embedding prefix.
func TestFreezeInferMatchesForward(t *testing.T) {
	net, w, rng := freezeFixture(t, 1)
	if w.InDim() != net.InDim() || w.OutDim() != net.OutDim() || w.NumLayers() != net.NumLayers() {
		t.Fatalf("frozen dims (%d,%d,%d) != network (%d,%d,%d)",
			w.InDim(), w.OutDim(), w.NumLayers(), net.InDim(), net.OutDim(), net.NumLayers())
	}
	if w.FLOPs() != net.FLOPs() || w.ParamCount() != net.ParamCount() || w.WeightBytes() != net.WeightBytes() {
		t.Fatal("frozen accounting disagrees with network accounting")
	}
	for trial := 0; trial < 25; trial++ {
		x := randVec(rng, w.InDim())
		want := net.Forward(x).Clone()
		got := w.Infer(nil, x, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Infer[%d] = %v, Forward = %v", trial, i, got[i], want[i])
			}
		}
		for k := 0; k <= w.NumLayers(); k++ {
			wantK := net.ForwardThrough(k, x).Clone()
			gotK := w.InferThrough(k, nil, x, nil)
			if len(gotK) != len(wantK) {
				t.Fatalf("InferThrough(%d) len %d, want %d", k, len(gotK), len(wantK))
			}
			for i := range wantK {
				if gotK[i] != wantK[i] {
					t.Fatalf("InferThrough(%d)[%d] = %v, want %v", k, i, gotK[i], wantK[i])
				}
			}
		}
	}
}

// TestInterleavedInfersDoNotCorrupt is the regression test for the old
// Network.Forward aliasing footgun: the returned vector used to alias
// layer state, so a second forward silently rewrote the first result
// (scene/encoder.go compensated with defensive clones). Frozen outputs
// are caller-owned by construction.
func TestInterleavedInfersDoNotCorrupt(t *testing.T) {
	net, w, rng := freezeFixture(t, 2)
	x1 := randVec(rng, w.InDim())
	x2 := randVec(rng, w.InDim())
	want1 := net.Forward(x1).Clone()
	want2 := net.Forward(x2).Clone()

	got1 := w.Infer(nil, x1, nil)
	got2 := w.Infer(nil, x2, nil) // must not touch got1
	got1Again := w.Infer(nil, x1, nil)
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("first result corrupted by second inference at [%d]: %v vs %v", i, got1[i], want1[i])
		}
		if got1Again[i] != got1[i] {
			t.Fatalf("re-run differs at [%d]", i)
		}
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("second result wrong at [%d]: %v vs %v", i, got2[i], want2[i])
		}
	}
	// Same program, one shared scratch, alternating calls with reused
	// destination buffers: each dst is written exactly once per call and
	// never aliased by the other.
	s := w.AcquireScratch()
	defer w.ReleaseScratch(s)
	d1 := tensor.NewVector(w.OutDim())
	d2 := tensor.NewVector(w.OutDim())
	for trial := 0; trial < 10; trial++ {
		w.Infer(d1, x1, s)
		w.Infer(d2, x2, s)
		for i := range want1 {
			if d1[i] != want1[i] || d2[i] != want2[i] {
				t.Fatalf("trial %d: interleaved scratch runs corrupted outputs", trial)
			}
		}
	}
}

// TestWeightsInferZeroAllocs pins the acceptance criterion that the nn
// forward path performs zero heap allocations in steady state: a held
// scratch plus caller-owned dst/in buffers make Infer allocation-free.
func TestWeightsInferZeroAllocs(t *testing.T) {
	_, w, rng := freezeFixture(t, 3)
	s := w.AcquireScratch()
	defer w.ReleaseScratch(s)
	in := s.In(w.InDim())
	copy(in, randVec(rng, w.InDim()))
	dst := s.Out(w.OutDim())

	allocs := testing.AllocsPerRun(200, func() {
		w.Infer(dst, in, s)
	})
	if allocs != 0 {
		t.Fatalf("Weights.Infer with held scratch: %v allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		w.InferThrough(w.NumLayers()-1, s.Out(w.NumLayers()), in, s)
	})
	_ = allocs // dims differ per program; only the full-path pin is hard
}

// TestScratchPoolReuse checks the nil-scratch convenience path borrows
// and returns pool scratches rather than growing without bound.
func TestScratchPoolReuse(t *testing.T) {
	_, w, rng := freezeFixture(t, 4)
	x := randVec(rng, w.InDim())
	dst := tensor.NewVector(w.OutDim())
	// Warm the pool, then verify the steady state stays cheap: the only
	// possible allocation is a GC-cleared pool refilling itself.
	for i := 0; i < 8; i++ {
		w.Infer(dst, x, nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.Infer(dst, x, nil)
	})
	if allocs > 1 {
		t.Fatalf("pooled Infer: %v allocs/op, want ≤1", allocs)
	}
}

// TestWriteToLengthMatchesSizeBytes pins the analytic size against the
// actual encoder for both full-precision and quantized programs, so the
// cache's byte accounting can trust SizeBytes.
func TestWriteToLengthMatchesSizeBytes(t *testing.T) {
	_, w, _ := freezeFixture(t, 5)
	for _, bits := range []int{0, 4, 8, 12, 16} {
		p := w
		if bits > 0 {
			var err error
			p, err = w.Quantize(bits)
			if err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		n, err := p.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("bits=%d: WriteTo reported %d, wrote %d", bits, n, buf.Len())
		}
		if n != p.SizeBytes() {
			t.Fatalf("bits=%d: WriteTo wrote %d bytes, SizeBytes says %d", bits, n, p.SizeBytes())
		}
	}
}

// TestWeightsSerializeRoundTrip pins freeze → serialize → load → Infer
// exactness, and that the loaded program freezes training state out
// entirely (ReadWeights then Thaw re-trains fine).
func TestWeightsSerializeRoundTrip(t *testing.T) {
	_, w, rng := freezeFixture(t, 6)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rw, err := nn.ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randVec(rng, w.InDim())
		a := w.Infer(nil, x, nil)
		b := rw.Infer(nil, x, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round-trip output differs at [%d]: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestQuantizeRoundTripBitForBit is the satellite pin: freeze → quantize
// → serialize → load → Infer must match the pre-refactor quantization
// path (nn.Quantize on the trainable network, then Forward) bit for bit
// on a fixed seed.
func TestQuantizeRoundTripBitForBit(t *testing.T) {
	for _, bits := range []int{4, 8, 16} {
		net, w, rng := freezeFixture(t, 7)
		legacy, err := nn.Quantize(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		qw, err := w.Quantize(bits)
		if err != nil {
			t.Fatal(err)
		}
		if qw.QuantBits() != bits || legacy.QuantBits() != bits {
			t.Fatalf("bits=%d: QuantBits %d / %d", bits, qw.QuantBits(), legacy.QuantBits())
		}
		if qw.WeightBytes() != legacy.WeightBytes() {
			t.Fatalf("bits=%d: WeightBytes %d vs legacy %d", bits, qw.WeightBytes(), legacy.WeightBytes())
		}
		var buf bytes.Buffer
		if _, err := qw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := nn.ReadWeights(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			x := randVec(rng, w.InDim())
			want := legacy.Forward(x).Clone()
			got := loaded.Infer(nil, x, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d trial %d: loaded quantized Infer[%d] = %v, legacy Forward = %v",
						bits, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestThawTrainRefreeze exercises the full Trainable lifecycle: thaw a
// frozen program, train it, and freeze again — the original stays intact.
func TestThawTrainRefreeze(t *testing.T) {
	_, w, rng := freezeFixture(t, 8)
	x := randVec(rng, w.InDim())
	before := w.Infer(nil, x, nil).Clone()

	tr := nn.ThawTrainable(w)
	var samples []nn.Sample
	for i := 0; i < 64; i++ {
		sx := randVec(rng, w.InDim())
		sy := tensor.NewVector(w.OutDim())
		sy[i%w.OutDim()] = 1
		samples = append(samples, nn.Sample{X: sx, Y: sy})
	}
	if _, err := tr.Train(samples, nil, nn.TrainConfig{Epochs: 3, RNG: xrand.New(9)}); err != nil {
		t.Fatal(err)
	}
	w2 := tr.Freeze()

	after := w.Infer(nil, x, nil)
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("training the thawed copy mutated the frozen original at [%d]", i)
		}
	}
	trained := w2.Infer(nil, x, nil)
	moved := false
	for i := range trained {
		if trained[i] != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("training left the refrozen weights identical; optimizer did not run")
	}
}

// TestScaleFinalDense pins the copy-on-write temperature fold: logits
// scale by alpha, the source program is untouched, and quantized
// programs are refused (scaling would leave the integer grid).
func TestScaleFinalDense(t *testing.T) {
	_, w, rng := freezeFixture(t, 10)
	const alpha = 0.37
	scaled, err := w.ScaleFinalDense(alpha)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, w.InDim())
	base := w.Infer(nil, x, nil)
	got := scaled.Infer(nil, x, nil)
	for i := range base {
		want := base[i] * alpha
		if math.Abs(got[i]-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("scaled logit [%d] = %v, want %v", i, got[i], want)
		}
	}
	qw, err := w.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qw.ScaleFinalDense(alpha); err == nil {
		t.Fatal("scaling a quantized program must be refused")
	}
}
