package nn

import (
	"bytes"
	"math"
	"testing"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

func TestQuantizeValidation(t *testing.T) {
	net := NewMLP(MLPConfig{InDim: 2, OutDim: 2}, xrand.New(1))
	if _, err := Quantize(net, 1); err == nil {
		t.Fatal("1 bit accepted")
	}
	if _, err := Quantize(net, 17); err == nil {
		t.Fatal("17 bits accepted")
	}
}

func TestQuantizeDoesNotMutateOriginal(t *testing.T) {
	rng := xrand.New(2)
	net := NewMLP(MLPConfig{InDim: 4, Hidden: []int{6}, OutDim: 3}, rng)
	origParams := net.Params()
	orig := append(tensor.Vector(nil), origParams[0].Value...)
	q, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range net.Params()[0].Value {
		if v != orig[i] {
			t.Fatal("Quantize mutated the input network")
		}
	}
	if net.QuantBits() != 0 {
		t.Fatal("input network marked quantized")
	}
	if q.QuantBits() != 8 {
		t.Fatalf("quant bits = %d", q.QuantBits())
	}
}

func TestQuantizeGrid(t *testing.T) {
	rng := xrand.New(3)
	net := NewMLP(MLPConfig{InDim: 8, Hidden: []int{10}, OutDim: 4}, rng)
	const bits = 8
	q, err := Quantize(net, bits)
	if err != nil {
		t.Fatal(err)
	}
	// Every parameter group must have at most 2^bits distinct values
	// and lie exactly on a uniform grid.
	for gi, p := range q.Params() {
		scale := quantScale(p.Value, bits)
		if scale == 0 {
			continue
		}
		distinct := make(map[float64]bool)
		for _, v := range p.Value {
			k := v / scale
			if math.Abs(k-math.Round(k)) > 1e-9 {
				t.Fatalf("group %d value %v off grid (scale %v)", gi, v, scale)
			}
			if math.Abs(k) > (1<<(bits-1))-1+1e-9 {
				t.Fatalf("group %d value %v beyond %d-bit range", gi, v, bits)
			}
			distinct[v] = true
		}
		if len(distinct) > 1<<bits {
			t.Fatalf("group %d has %d distinct values", gi, len(distinct))
		}
	}
}

func TestQuantizedAccuracyClose(t *testing.T) {
	rng := xrand.New(4)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{8}, OutDim: 2, Activation: NewTanh}, rng)
	if _, err := Train(net, xorSamples(), nil, TrainConfig{
		Epochs: 400, BatchSize: 4, Optimizer: NewAdam(0.05), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	q8, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(q8, xorSamples()); acc != 1 {
		t.Fatalf("8-bit quantized XOR accuracy %v", acc)
	}
	// Brutal 2-bit quantization should visibly distort the function.
	q2, err := Quantize(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, 0.5}
	a, b := net.Forward(x).Clone(), q2.Forward(x)
	var drift float64
	for i := range a {
		drift += math.Abs(a[i] - b[i])
	}
	if drift == 0 {
		t.Fatal("2-bit quantization changed nothing; grid suspiciously fine")
	}
}

func TestQuantizedWeightBytes(t *testing.T) {
	rng := xrand.New(5)
	net := NewMLP(MLPConfig{InDim: 16, Hidden: []int{32}, OutDim: 8}, rng)
	full := net.WeightBytes()
	q8, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(full) / float64(q8.WeightBytes())
	if ratio < 6 || ratio > 8.5 {
		t.Fatalf("8-bit size ratio %.1f, want ~8x", ratio)
	}
	q16, err := Quantize(net, 16)
	if err != nil {
		t.Fatal(err)
	}
	if q16.WeightBytes() <= q8.WeightBytes() {
		t.Fatal("16-bit should be larger than 8-bit")
	}
}

func TestQuantizedSerializationRoundtrip(t *testing.T) {
	rng := xrand.New(6)
	for _, bits := range []int{4, 8, 12, 16} {
		net := NewMLP(MLPConfig{InDim: 5, Hidden: []int{7}, OutDim: 3}, rng)
		q, err := Quantize(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := q.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		// The on-disk size must reflect integer storage.
		overhead := int64(buf.Len()) - q.WeightBytes()
		if overhead < 0 || overhead > 160 {
			t.Fatalf("bits %d: framing overhead %d", bits, overhead)
		}
		got, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.QuantBits() != bits {
			t.Fatalf("bits %d: roundtrip bits %d", bits, got.QuantBits())
		}
		x := tensor.Vector{0.1, -0.9, 0.4, 1.1, -0.3}
		want := q.Forward(x).Clone()
		out := got.Forward(x)
		for i := range want {
			if math.Abs(want[i]-out[i]) > 1e-12 {
				t.Fatalf("bits %d: output %d differs: %v vs %v", bits, i, want[i], out[i])
			}
		}
	}
}

func TestQuantizedCloneKeepsBits(t *testing.T) {
	rng := xrand.New(7)
	net := NewMLP(MLPConfig{InDim: 3, OutDim: 2}, rng)
	q, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Clone().QuantBits() != 8 {
		t.Fatal("clone lost quantization marker")
	}
}

func TestQuantAccuracyFactor(t *testing.T) {
	if QuantAccuracyFactor(0) != 1 || QuantAccuracyFactor(16) != 1 || QuantAccuracyFactor(32) != 1 {
		t.Fatal("full precision must not be penalized")
	}
	prev := 1.0
	for _, bits := range []int{12, 8, 6, 4, 2} {
		f := QuantAccuracyFactor(bits)
		if f >= prev {
			t.Fatalf("factor not decreasing as bits shrink: %d-bit %v >= %v", bits, f, prev)
		}
		if f < 0.8 {
			t.Fatalf("%d-bit factor %v below the plausible floor", bits, f)
		}
		prev = f
	}
	// 8-bit quantization is near-lossless; 2-bit is not.
	if f := QuantAccuracyFactor(8); f < 0.95 {
		t.Fatalf("8-bit factor %v should be near-lossless", f)
	}
	if f := QuantAccuracyFactor(2); f > 0.92 {
		t.Fatalf("2-bit factor %v should show real degradation", f)
	}
}
