package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"anole/internal/tensor"
)

// Binary network format:
//
//	magic   [4]byte  "ANLN"
//	version uint16   (1)
//	layers  uint16
//	per layer:
//	  kind uint8
//	  dense:       inDim uint32, outDim uint32,
//	               W row-major float64..., B float64...
//	  dense-quant: bits uint8, inDim uint32, outDim uint32,
//	               W scale float64 + int8/int16 values (int8 when
//	               bits ≤ 8), B likewise
//	crc32   uint32   (IEEE, over everything after the magic)
//
// All integers and floats are little-endian. The format is what
// internal/repo ships over the wire when devices download models.
const (
	netMagic   = "ANLN"
	netVersion = 1
)

// WriteTo serializes the frozen program to w in the binary format above.
// It returns the number of bytes written, which always equals SizeBytes.
func (wts *Weights) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := cw.Write([]byte(netMagic)); err != nil {
		return cw.n, err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(cw, crc)

	if err := writeBin(mw, uint16(netVersion), uint16(len(wts.layers))); err != nil {
		return cw.n, err
	}
	for i := range wts.layers {
		l := &wts.layers[i]
		if err := writeBin(mw, uint8(l.kind)); err != nil {
			return cw.n, err
		}
		if l.w == nil {
			continue
		}
		if l.quantBits > 0 {
			if err := writeBin(mw, uint8(l.quantBits)); err != nil {
				return cw.n, err
			}
		}
		if err := writeBin(mw, uint32(l.w.Cols), uint32(l.w.Rows)); err != nil {
			return cw.n, err
		}
		if l.quantBits > 0 {
			if err := writeQuantized(mw, l.w.Data, l.quantBits); err != nil {
				return cw.n, err
			}
			if err := writeQuantized(mw, l.b, l.quantBits); err != nil {
				return cw.n, err
			}
			continue
		}
		if err := writeFloats(mw, l.w.Data); err != nil {
			return cw.n, err
		}
		if err := writeFloats(mw, l.b); err != nil {
			return cw.n, err
		}
	}
	if err := writeBin(cw, crc.Sum32()); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// SizeBytes returns the exact serialized length of the frozen program —
// the number WriteTo will write. This is the figure the model cache uses
// for byte-level memory accounting of resident entries.
func (wts *Weights) SizeBytes() int64 {
	n := int64(4 + 2 + 2 + 4) // magic + version + layer count + crc
	for i := range wts.layers {
		l := &wts.layers[i]
		n++ // kind
		if l.w == nil {
			continue
		}
		nw, nb := int64(len(l.w.Data)), int64(len(l.b))
		if l.quantBits > 0 {
			sz := int64(1)
			if l.quantBits > 8 {
				sz = 2
			}
			n += 1 + 8     // bits + dims
			n += 8 + nw*sz // W scale + values
			n += 8 + nb*sz // B scale + values
			continue
		}
		n += 8 + (nw+nb)*8 // dims + float64 payload
	}
	return n
}

// WriteTo serializes the network weights by freezing them first; the wire
// format is identical to (*Weights).WriteTo.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	return n.Freeze().WriteTo(w)
}

// ReadNetwork deserializes a trainable network written by WriteTo,
// verifying the checksum and allocating fresh gradient buffers.
func ReadNetwork(r io.Reader) (*Network, error) {
	w, err := ReadWeights(r)
	if err != nil {
		return nil, err
	}
	return w.Thaw(), nil
}

// ReadWeights deserializes a frozen program written by WriteTo, verifying
// the checksum. The result carries no training state; use Thaw (or
// ReadNetwork) to obtain a trainable form.
func ReadWeights(r io.Reader) (*Weights, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: read magic: %w", err)
	}
	if string(magic) != netMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	var version, layerCount uint16
	if err := readBin(tr, &version, &layerCount); err != nil {
		return nil, fmt.Errorf("nn: read header: %w", err)
	}
	if version != netVersion {
		return nil, fmt.Errorf("nn: unsupported version %d", version)
	}
	layers := make([]wlayer, 0, layerCount)
	// Cumulative budget across layers: a stream may not claim more
	// weights in total than one layer is allowed to, or a long chain of
	// individually-plausible layers still thrashes the allocator before
	// the truncated payload runs out.
	const maxWeights = 1 << 24
	weightBudget := uint64(maxWeights)
	for i := 0; i < int(layerCount); i++ {
		var kind uint8
		if err := readBin(tr, &kind); err != nil {
			return nil, fmt.Errorf("nn: read layer %d kind: %w", i, err)
		}
		switch layerKind(kind) {
		case kindReLU:
			layers = append(layers, wlayer{kind: kindReLU, fn: reluFn})
		case kindTanh:
			layers = append(layers, wlayer{kind: kindTanh, fn: math.Tanh})
		case kindSigmoid:
			layers = append(layers, wlayer{kind: kindSigmoid, fn: sigmoidFn})
		case kindDense, kindDenseQuant:
			bits := 0
			if layerKind(kind) == kindDenseQuant {
				var b uint8
				if err := readBin(tr, &b); err != nil {
					return nil, fmt.Errorf("nn: read layer %d bits: %w", i, err)
				}
				if b < 2 || b > 16 {
					return nil, fmt.Errorf("nn: layer %d has invalid quant bits %d", i, b)
				}
				bits = int(b)
			}
			var inDim, outDim uint32
			if err := readBin(tr, &inDim, &outDim); err != nil {
				return nil, fmt.Errorf("nn: read layer %d dims: %w", i, err)
			}
			const maxDim = 1 << 20
			if inDim == 0 || outDim == 0 || inDim > maxDim || outDim > maxDim {
				return nil, fmt.Errorf("nn: layer %d has implausible dims %dx%d", i, outDim, inDim)
			}
			// Bound the product too: each dimension can be plausible
			// while the weight matrix they claim together is not
			// (found by FuzzReadBundle — 2^20 × 2^20 floats is 8 TB).
			weights := uint64(inDim) * uint64(outDim)
			if weights > weightBudget {
				return nil, fmt.Errorf("nn: layer %d claims %d weights, over budget", i, weights)
			}
			weightBudget -= weights
			l := wlayer{kind: layerKind(kind), quantBits: bits}
			l.w = tensor.NewMatrix(int(outDim), int(inDim))
			l.b = make([]float64, outDim)
			if bits > 0 {
				if err := readQuantized(tr, l.w.Data, bits); err != nil {
					return nil, fmt.Errorf("nn: read layer %d weights: %w", i, err)
				}
				if err := readQuantized(tr, l.b, bits); err != nil {
					return nil, fmt.Errorf("nn: read layer %d bias: %w", i, err)
				}
			} else {
				if err := readFloats(tr, l.w.Data); err != nil {
					return nil, fmt.Errorf("nn: read layer %d weights: %w", i, err)
				}
				if err := readFloats(tr, l.b); err != nil {
					return nil, fmt.Errorf("nn: read layer %d bias: %w", i, err)
				}
			}
			layers = append(layers, l)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %d", kind)
		}
	}
	wantCRC := crc.Sum32()
	var gotCRC uint32
	if err := readBin(br, &gotCRC); err != nil {
		return nil, fmt.Errorf("nn: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("nn: checksum mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}
	// Validate adjacent dense dimensions before compiling the program;
	// untrusted streams must fail with an error, not a panic.
	lastOut := 0
	for i := range layers {
		if layers[i].w == nil {
			continue
		}
		if lastOut != 0 && layers[i].w.Cols != lastOut {
			return nil, fmt.Errorf("nn: layer %d expects input dim %d but previous layer outputs %d", i, layers[i].w.Cols, lastOut)
		}
		lastOut = layers[i].w.Rows
	}
	return newWeights(layers), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeBin(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readBin(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// writeQuantized stores xs as scale + integers: the values must already
// lie on the symmetric grid produced by Quantize, so v/scale is integral.
func writeQuantized(w io.Writer, xs []float64, bits int) error {
	scale := quantScale(xs, bits)
	if err := writeBin(w, scale); err != nil {
		return err
	}
	wide := bits > 8
	size := 1
	if wide {
		size = 2
	}
	buf := make([]byte, size*len(xs))
	for i, x := range xs {
		var q int64
		if scale != 0 {
			q = int64(math.Round(x / scale))
		}
		if wide {
			binary.LittleEndian.PutUint16(buf[i*2:], uint16(int16(q)))
		} else {
			buf[i] = byte(int8(q))
		}
	}
	_, err := w.Write(buf)
	return err
}

func readQuantized(r io.Reader, xs []float64, bits int) error {
	var scale float64
	if err := readBin(r, &scale); err != nil {
		return err
	}
	wide := bits > 8
	size := 1
	if wide {
		size = 2
	}
	buf := make([]byte, size*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range xs {
		var q int64
		if wide {
			q = int64(int16(binary.LittleEndian.Uint16(buf[i*2:])))
		} else {
			q = int64(int8(buf[i]))
		}
		xs[i] = float64(q) * scale
	}
	return nil
}

func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}
