package nn_test

import (
	"fmt"
	"math"
	"testing"

	"anole/internal/nn"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// batchFixture freezes a randomized MLP with fuzz-ish shape diversity:
// hidden widths and depth vary per seed so the batch path is exercised
// across narrow, wide, deep and shallow programs.
func batchFixture(t testing.TB, seed uint64) (*nn.Weights, *xrand.RNG) {
	t.Helper()
	rng := xrand.New(seed)
	depth := 1 + rng.Intn(3)
	hidden := make([]int, depth)
	for i := range hidden {
		hidden[i] = 1 + rng.Intn(40)
	}
	in := 1 + rng.Intn(30)
	out := 1 + rng.Intn(12)
	net := nn.NewMLP(nn.MLPConfig{InDim: in, Hidden: hidden, OutDim: out}, rng)
	return net.Freeze(), rng
}

// TestInferBatchMatchesSequential is the batch-equivalence property
// test at the nn layer: for randomized program shapes and batch sizes
// (including 0 and 1), running B samples through InferBatch must agree
// with B independent Infer calls within 1e-12 relative — the only
// permitted difference is the batched kernel's dot-product
// reassociation.
func TestInferBatchMatchesSequential(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		w, rng := batchFixture(t, seed)
		for _, batch := range []int{0, 1, 2, 3, 7, 32, 65} {
			in := tensor.NewMatrix(batch, w.InDim())
			for i := range in.Data {
				in.Data[i] = rng.NormMS(0, 1)
			}
			got := w.InferBatch(nil, in, nil)
			if got.Rows != batch || got.Cols != w.OutDim() {
				t.Fatalf("seed %d batch %d: output %dx%d, want %dx%d",
					seed, batch, got.Rows, got.Cols, batch, w.OutDim())
			}
			for r := 0; r < batch; r++ {
				want := w.Infer(nil, in.Row(r), nil)
				for j := range want {
					diff := math.Abs(got.At(r, j) - want[j])
					scale := math.Abs(want[j])
					if scale < 1 {
						scale = 1
					}
					if diff > 1e-12*scale {
						t.Fatalf("seed %d batch %d row %d out %d: batched %v, sequential %v",
							seed, batch, r, j, got.At(r, j), want[j])
					}
				}
			}
		}
	}
}

// TestInferBatchThroughMatchesSequential covers the layer-prefix form
// used for batched embedding extraction: every prefix length, batched
// vs per-row InferThrough.
func TestInferBatchThroughMatchesSequential(t *testing.T) {
	w, rng := batchFixture(t, 99)
	const batch = 9
	in := tensor.NewMatrix(batch, w.InDim())
	for i := range in.Data {
		in.Data[i] = rng.NormMS(0, 1)
	}
	for k := 0; k <= w.NumLayers(); k++ {
		got := w.InferBatchThrough(k, nil, in, nil)
		for r := 0; r < batch; r++ {
			want := w.InferThrough(k, nil, in.Row(r), nil)
			if got.Cols != len(want) {
				t.Fatalf("k=%d: batched width %d, sequential %d", k, got.Cols, len(want))
			}
			for j := range want {
				diff := math.Abs(got.At(r, j) - want[j])
				scale := math.Abs(want[j])
				if scale < 1 {
					scale = 1
				}
				if diff > 1e-12*scale {
					t.Fatalf("k=%d row %d out %d: batched %v, sequential %v", k, r, j, got.At(r, j), want[j])
				}
			}
		}
	}
}

// TestInferBatchZeroAllocs pins the steady-state allocation contract of
// the batch path: a held BatchScratch plus scratch-owned staging/output
// matrices make InferBatch allocation-free, including the row-panel
// parallel matmul underneath. CI's allocations job re-measures this pin
// on every push.
func TestInferBatchZeroAllocs(t *testing.T) {
	_, w, rng := freezeFixture(t, 6)
	const batch = 64
	s := w.AcquireBatchScratch()
	defer w.ReleaseBatchScratch(s)
	in := s.In(batch, w.InDim())
	for i := range in.Data {
		in.Data[i] = rng.NormMS(0, 1)
	}
	dst := s.Out(batch, w.OutDim())
	// Warm: grows scratch buffers to this batch shape and spins up the
	// tensor worker pool, after which the steady state must not allocate.
	w.InferBatch(dst, in, s)
	allocs := testing.AllocsPerRun(200, func() {
		w.InferBatch(dst, in, s)
	})
	if allocs != 0 {
		t.Fatalf("InferBatch with held scratch: %v allocs/op, want 0", allocs)
	}
}

// TestBatchScratchPoolReuse checks the nil-scratch convenience path
// borrows pooled batch scratches rather than growing without bound.
func TestBatchScratchPoolReuse(t *testing.T) {
	_, w, rng := freezeFixture(t, 8)
	const batch = 16
	in := tensor.NewMatrix(batch, w.InDim())
	for i := range in.Data {
		in.Data[i] = rng.NormMS(0, 1)
	}
	dst := tensor.NewMatrix(batch, w.OutDim())
	for i := 0; i < 8; i++ {
		w.InferBatch(dst, in, nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.InferBatch(dst, in, nil)
	})
	if allocs > 1 {
		t.Fatalf("pooled InferBatch: %v allocs/op, want ≤1", allocs)
	}
}

// TestBatchScratchStagingIsolation pins that the In and Out staging
// matrices survive an InferBatch on the same scratch — the runtime
// assembles inputs in In, runs the program, and reads Out without any
// intermediate layer clobbering either.
func TestBatchScratchStagingIsolation(t *testing.T) {
	_, w, rng := freezeFixture(t, 12)
	const batch = 5
	s := w.AcquireBatchScratch()
	defer w.ReleaseBatchScratch(s)
	in := s.In(batch, w.InDim())
	for i := range in.Data {
		in.Data[i] = rng.NormMS(0, 1)
	}
	snapshot := append([]float64(nil), in.Data...)
	dst := s.Out(batch, w.OutDim())
	w.InferBatch(dst, in, s)
	for i := range snapshot {
		if in.Data[i] != snapshot[i] {
			t.Fatal("InferBatch clobbered the input staging matrix")
		}
	}
	// The outputs must equal the per-row sequential results, proving dst
	// was not used as an intermediate buffer.
	for r := 0; r < batch; r++ {
		want := w.Infer(nil, in.Row(r), nil)
		for j := range want {
			if math.Abs(dst.At(r, j)-want[j]) > 1e-12 {
				t.Fatalf("row %d out %d: %v, want %v", r, j, dst.At(r, j), want[j])
			}
		}
	}
}

// TestInferBatchQuantized runs the batch path over a quantized program:
// a quantized Weights is just another program, so batched and
// sequential execution must agree there too.
func TestInferBatchQuantized(t *testing.T) {
	_, w, rng := freezeFixture(t, 21)
	q, err := w.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 11
	in := tensor.NewMatrix(batch, q.InDim())
	for i := range in.Data {
		in.Data[i] = rng.NormMS(0, 1)
	}
	got := q.InferBatch(nil, in, nil)
	for r := 0; r < batch; r++ {
		want := q.Infer(nil, in.Row(r), nil)
		for j := range want {
			if math.Abs(got.At(r, j)-want[j]) > 1e-12 {
				t.Fatalf("row %d out %d: %v, want %v", r, j, got.At(r, j), want[j])
			}
		}
	}
}

// BenchmarkBatchStep is the CI allocations-job smoke for the batch
// path: one batched forward pass per op with a held scratch, -benchmem
// showing the steady state at 0 B/op. The sequential baseline is the
// same work as B independent Infer calls, for the speedup headline.
func BenchmarkBatchStep(b *testing.B) {
	_, w, rng := freezeFixture(b, 30)
	for _, batch := range []int{16, 64, 256} {
		in := tensor.NewMatrix(batch, w.InDim())
		for i := range in.Data {
			in.Data[i] = rng.NormMS(0, 1)
		}
		b.Run(fmt.Sprintf("batched/batch=%d", batch), func(b *testing.B) {
			s := w.AcquireBatchScratch()
			defer w.ReleaseBatchScratch(s)
			dst := s.Out(batch, w.OutDim())
			staged := s.In(batch, w.InDim())
			copy(staged.Data, in.Data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.InferBatch(dst, staged, s)
			}
		})
		b.Run(fmt.Sprintf("sequential/batch=%d", batch), func(b *testing.B) {
			s := w.AcquireScratch()
			defer w.ReleaseScratch(s)
			dst := s.Out(w.OutDim())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batch; r++ {
					w.Infer(dst, in.Row(r), s)
				}
			}
		})
	}
}
