// Package nn is a from-scratch neural-network library: dense layers,
// standard activations, classification and regression losses, SGD and Adam
// optimizers, a mini-batch trainer, FLOPs/parameter accounting, and binary
// weight serialization. It substitutes for the paper's PyTorch/TensorRT
// stack (see DESIGN.md §2) — training here is real gradient descent, so
// capacity and specialization effects emerge from optimization rather than
// being scripted.
//
// The library is deliberately small: everything operates on single samples
// (tensor.Vector), with mini-batching handled by the Trainer accumulating
// gradients. That is the right trade-off for the model sizes this
// repository trains (feature dimensions in the tens to low hundreds).
package nn

import (
	"fmt"
	"math"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Layer is one differentiable stage of a Network. Forward consumes an
// input vector and returns the layer output; Backward consumes the gradient
// of the loss with respect to the output, accumulates parameter gradients
// internally, and returns the gradient with respect to the input.
//
// Layers cache their most recent forward input/output, so a Network is not
// safe for concurrent use; clone per goroutine instead (see Network.Clone).
type Layer interface {
	// Forward computes the layer output for in.
	Forward(in tensor.Vector) tensor.Vector
	// Backward propagates gradOut to the input, accumulating parameter
	// gradients. It must be called after Forward with matching shapes.
	Backward(gradOut tensor.Vector) tensor.Vector
	// Params returns the layer's trainable parameter/gradient pairs
	// (empty for stateless layers).
	Params() []Param
	// InDim and OutDim report the layer's fixed dimensions; stateless
	// activations return (0, 0) meaning "any".
	InDim() int
	OutDim() int
	// Clone returns a deep copy sharing no state.
	Clone() Layer
	// kind tags the layer for serialization.
	kind() layerKind
}

// Param pairs a parameter buffer with its gradient accumulator. Both
// slices alias layer-owned storage.
type Param struct {
	Value tensor.Vector
	Grad  tensor.Vector
}

type layerKind uint8

const (
	kindDense layerKind = iota + 1
	kindReLU
	kindTanh
	kindSigmoid
	kindDenseQuant
)

// Dense is a fully connected layer computing W·x + b.
type Dense struct {
	W *tensor.Matrix // out × in
	B tensor.Vector  // out

	// quantBits is the post-training quantization bit width (0 = full
	// precision); it selects integer storage during serialization.
	quantBits int

	gradW *tensor.Matrix
	gradB tensor.Vector

	in  tensor.Vector // cached forward input
	out tensor.Vector
	gin tensor.Vector
}

// NewDense returns a Dense layer with He-initialized weights drawn from
// rng, appropriate for the ReLU networks this repository trains.
func NewDense(inDim, outDim int, rng *xrand.RNG) *Dense {
	d := &Dense{
		W:     tensor.NewMatrix(outDim, inDim),
		B:     tensor.NewVector(outDim),
		gradW: tensor.NewMatrix(outDim, inDim),
		gradB: tensor.NewVector(outDim),
	}
	std := math.Sqrt(2 / float64(max(inDim, 1)))
	for i := range d.W.Data {
		d.W.Data[i] = rng.NormMS(0, std)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in tensor.Vector) tensor.Vector {
	if len(in) != d.W.Cols {
		panic(fmt.Sprintf("nn: dense forward dim %d, want %d", len(in), d.W.Cols))
	}
	d.in = in
	d.out = d.W.MulVec(d.out, in)
	d.out.AddScaled(1, d.B)
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut tensor.Vector) tensor.Vector {
	if len(gradOut) != d.W.Rows {
		panic(fmt.Sprintf("nn: dense backward dim %d, want %d", len(gradOut), d.W.Rows))
	}
	d.gradW.AddOuterScaled(1, gradOut, d.in)
	d.gradB.AddScaled(1, gradOut)
	d.gin = d.W.MulVecT(d.gin, gradOut)
	return d.gin
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{
		{Value: tensor.Vector(d.W.Data), Grad: tensor.Vector(d.gradW.Data)},
		{Value: d.B, Grad: d.gradB},
	}
}

// InDim implements Layer.
func (d *Dense) InDim() int { return d.W.Cols }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.W.Rows }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:         d.W.Clone(),
		B:         d.B.Clone(),
		quantBits: d.quantBits,
		gradW:     tensor.NewMatrix(d.W.Rows, d.W.Cols),
		gradB:     tensor.NewVector(len(d.B)),
	}
}

func (d *Dense) kind() layerKind {
	if d.quantBits > 0 {
		return kindDenseQuant
	}
	return kindDense
}

// activation is the shared implementation of element-wise stateless layers.
type activation struct {
	fn    func(float64) float64
	deriv func(x, y float64) float64 // derivative given input x and output y
	tag   layerKind

	in  tensor.Vector
	out tensor.Vector
	gin tensor.Vector
}

// reluFn and sigmoidFn are named so frozen Weights deserialized from disk
// share the same function values as freshly built layers.
func reluFn(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func sigmoidFn(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// NewReLU returns a rectified-linear activation layer.
func NewReLU() Layer {
	return &activation{
		fn: reluFn,
		deriv: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
		tag: kindReLU,
	}
}

// NewTanh returns a hyperbolic-tangent activation layer.
func NewTanh() Layer {
	return &activation{
		fn:    math.Tanh,
		deriv: func(_, y float64) float64 { return 1 - y*y },
		tag:   kindTanh,
	}
}

// NewSigmoid returns a logistic activation layer.
func NewSigmoid() Layer {
	return &activation{
		fn:    sigmoidFn,
		deriv: func(_, y float64) float64 { return y * (1 - y) },
		tag:   kindSigmoid,
	}
}

func (a *activation) Forward(in tensor.Vector) tensor.Vector {
	a.in = in
	if len(a.out) != len(in) {
		a.out = tensor.NewVector(len(in))
	}
	for i, x := range in {
		a.out[i] = a.fn(x)
	}
	return a.out
}

func (a *activation) Backward(gradOut tensor.Vector) tensor.Vector {
	if len(a.gin) != len(gradOut) {
		a.gin = tensor.NewVector(len(gradOut))
	}
	for i, g := range gradOut {
		a.gin[i] = g * a.deriv(a.in[i], a.out[i])
	}
	return a.gin
}

func (a *activation) Params() []Param { return nil }
func (a *activation) InDim() int      { return 0 }
func (a *activation) OutDim() int     { return 0 }

func (a *activation) Clone() Layer {
	return &activation{fn: a.fn, deriv: a.deriv, tag: a.tag}
}

func (a *activation) kind() layerKind { return a.tag }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
