package nn

import (
	"fmt"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Network is an ordered stack of layers trained end to end. It caches
// activations layer by layer, so a Network must not be shared across
// goroutines; use Clone to obtain per-goroutine replicas that share no
// state (workers then exchange gradients, not activations).
type Network struct {
	layers []Layer
}

// NewNetwork builds a network from layers, validating that adjacent fixed
// dimensions agree.
func NewNetwork(layers ...Layer) (*Network, error) {
	lastOut := 0
	for i, l := range layers {
		in := l.InDim()
		if in != 0 && lastOut != 0 && in != lastOut {
			return nil, fmt.Errorf("nn: layer %d expects input dim %d but previous layer outputs %d", i, in, lastOut)
		}
		if out := l.OutDim(); out != 0 {
			lastOut = out
		}
	}
	return &Network{layers: layers}, nil
}

// MustNetwork is NewNetwork that panics on error, for statically known
// architectures.
func MustNetwork(layers ...Layer) *Network {
	n, err := NewNetwork(layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// MLPConfig describes a plain multi-layer perceptron: InDim inputs, one
// hidden layer per entry of Hidden (each followed by an activation), and a
// linear output layer of OutDim units.
type MLPConfig struct {
	InDim  int
	Hidden []int
	OutDim int
	// Activation constructs the non-linearity between dense layers;
	// nil defaults to NewReLU.
	Activation func() Layer
}

// NewMLP constructs the MLP described by cfg with weights drawn from rng.
func NewMLP(cfg MLPConfig, rng *xrand.RNG) *Network {
	act := cfg.Activation
	if act == nil {
		act = NewReLU
	}
	var layers []Layer
	in := cfg.InDim
	for _, h := range cfg.Hidden {
		layers = append(layers, NewDense(in, h, rng), act())
		in = h
	}
	layers = append(layers, NewDense(in, cfg.OutDim, rng))
	return MustNetwork(layers...)
}

// Forward runs the network on in and returns the output activation. The
// returned vector aliases internal state; copy it if it must survive the
// next Forward call.
func (n *Network) Forward(in tensor.Vector) tensor.Vector {
	x := in
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardThrough runs the first k layers only, returning that intermediate
// activation. Used to extract embeddings from a trained classifier (the
// paper's M_scene hidden features).
func (n *Network) ForwardThrough(k int, in tensor.Vector) tensor.Vector {
	if k < 0 || k > len(n.layers) {
		panic(fmt.Sprintf("nn: ForwardThrough(%d) with %d layers", k, len(n.layers)))
	}
	x := in
	for _, l := range n.layers[:k] {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients. Forward must have been called immediately before.
func (n *Network) Backward(gradOut tensor.Vector) {
	g := gradOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// Params returns all trainable parameter/gradient pairs, outermost layer
// first.
func (n *Network) Params() []Param {
	var params []Param
	for _, l := range n.layers {
		params = append(params, l.Params()...)
	}
	return params
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Fill(0)
	}
}

// Clone returns a deep copy of the network (weights copied, caches fresh).
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.Clone()
	}
	return &Network{layers: layers}
}

// CopyWeightsFrom overwrites this network's parameters with src's. The
// architectures must match.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("nn: parameter group count mismatch %d vs %d", len(dst), len(from))
	}
	for i := range dst {
		if len(dst[i].Value) != len(from[i].Value) {
			return fmt.Errorf("nn: parameter group %d size mismatch %d vs %d", i, len(dst[i].Value), len(from[i].Value))
		}
		copy(dst[i].Value, from[i].Value)
	}
	return nil
}

// NumLayers returns the number of layers in the stack.
func (n *Network) NumLayers() int { return len(n.layers) }

// InDim returns the input dimension of the first dense layer (0 if none).
func (n *Network) InDim() int {
	for _, l := range n.layers {
		if d := l.InDim(); d != 0 {
			return d
		}
	}
	return 0
}

// OutDim returns the output dimension of the last dense layer (0 if none).
func (n *Network) OutDim() int {
	for i := len(n.layers) - 1; i >= 0; i-- {
		if d := n.layers[i].OutDim(); d != 0 {
			return d
		}
	}
	return 0
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value)
	}
	return total
}

// FLOPs estimates the floating-point operations of one forward pass:
// 2·in·out + out per dense layer (multiply-accumulate plus bias) plus one
// op per activation element. This is the figure reported in the Table II
// analogue.
func (n *Network) FLOPs() int64 {
	var total int64
	lastDim := int64(0)
	for _, l := range n.layers {
		switch d := l.(type) {
		case *Dense:
			in, out := int64(d.W.Cols), int64(d.W.Rows)
			total += 2*in*out + out
			lastDim = out
		default:
			total += lastDim
		}
	}
	return total
}

// WeightBytes returns the serialized parameter size in bytes — float64
// storage for full-precision networks, integer storage for quantized ones
// — the analogue of the paper's model weight sizes in Table II.
func (n *Network) WeightBytes() int64 {
	if q, ok := n.quantizedWeightBytes(); ok {
		return q
	}
	return int64(n.ParamCount()) * 8
}
