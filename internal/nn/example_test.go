package nn_test

import (
	"fmt"

	"anole/internal/nn"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Training a small MLP on XOR with Adam: the canonical smoke test of the
// library's gradients and optimizer.
func Example() {
	rng := xrand.New(42)
	net := nn.NewMLP(nn.MLPConfig{
		InDim:      2,
		Hidden:     []int{8},
		OutDim:     2,
		Activation: nn.NewTanh,
	}, rng)

	samples := []nn.Sample{
		{X: tensor.Vector{0, 0}, Y: tensor.Vector{1, 0}},
		{X: tensor.Vector{0, 1}, Y: tensor.Vector{0, 1}},
		{X: tensor.Vector{1, 0}, Y: tensor.Vector{0, 1}},
		{X: tensor.Vector{1, 1}, Y: tensor.Vector{1, 0}},
	}
	if _, err := nn.Train(net, samples, nil, nn.TrainConfig{
		Epochs:    400,
		BatchSize: 4,
		Optimizer: nn.NewAdam(0.05),
		RNG:       rng,
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("XOR accuracy: %.0f%%\n", 100*nn.Accuracy(net, samples))
	// Output:
	// XOR accuracy: 100%
}

// Post-training quantization snaps weights onto an integer grid; int8
// shrinks storage ~8x while the function barely moves.
func ExampleQuantize() {
	rng := xrand.New(7)
	net := nn.NewMLP(nn.MLPConfig{InDim: 4, Hidden: []int{16}, OutDim: 2}, rng)
	q8, err := nn.Quantize(net, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("full %dB -> int8 %dB (bits=%d)\n",
		net.WeightBytes(), q8.WeightBytes(), q8.QuantBits())
	// Output:
	// full 912B -> int8 146B (bits=8)
}
