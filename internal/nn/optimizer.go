package nn

import (
	"math"

	"anole/internal/tensor"
)

// Optimizer updates network parameters from accumulated gradients. Step
// consumes the gradients (the caller zeroes them afterwards via
// Network.ZeroGrad).
type Optimizer interface {
	// Step applies one update to params, treating each Param's Grad as
	// the mini-batch-mean gradient.
	Step(params []Param)
	// Reset clears optimizer state (momentum buffers etc.).
	Reset()
	// Name identifies the optimizer for logs.
	Name() string
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []tensor.Vector
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step implements Optimizer.
func (o *SGD) Step(params []Param) {
	if len(o.velocity) != len(params) {
		o.velocity = make([]tensor.Vector, len(params))
		for i, p := range params {
			o.velocity[i] = tensor.NewVector(len(p.Value))
		}
	}
	for i, p := range params {
		v := o.velocity[i]
		for j := range p.Value {
			g := p.Grad[j] + o.WeightDecay*p.Value[j]
			v[j] = o.Momentum*v[j] - o.LR*g
			p.Value[j] += v[j]
		}
	}
}

// Reset implements Optimizer.
func (o *SGD) Reset() { o.velocity = nil }

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	m, v []tensor.Vector
	t    int
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params []Param) {
	if len(o.m) != len(params) {
		o.m = make([]tensor.Vector, len(params))
		o.v = make([]tensor.Vector, len(params))
		for i, p := range params {
			o.m[i] = tensor.NewVector(len(p.Value))
			o.v[i] = tensor.NewVector(len(p.Value))
		}
		o.t = 0
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		m, v := o.m[i], o.v[i]
		for j := range p.Value {
			g := p.Grad[j] + o.WeightDecay*p.Value[j]
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Value[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m, o.v = nil, nil
	o.t = 0
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }
