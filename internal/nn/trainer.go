package nn

import (
	"errors"
	"sync"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Sample is one supervised training example.
type Sample struct {
	X tensor.Vector
	Y tensor.Vector
}

// TrainConfig controls a Trainer run. Zero values select sensible
// defaults (see Train).
type TrainConfig struct {
	// Epochs is the maximum number of passes over the training set
	// (default 20).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// Loss is the training objective (default SoftmaxCrossEntropy).
	// Losses must be stateless; the same instance is shared by all
	// workers.
	Loss Loss
	// Optimizer updates parameters (default Adam with LR 0.01).
	Optimizer Optimizer
	// RNG drives shuffling; required for determinism.
	RNG *xrand.RNG
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// Workers shards each mini-batch's gradient computation across this
	// many goroutines, each holding a private network clone whose
	// weights are re-synced from the master every step (default 1).
	Workers int
}

// TrainResult reports what a training run did.
type TrainResult struct {
	Epochs       int
	TrainLoss    []float64
	ValLoss      []float64
	BestValLoss  float64
	EarlyStopped bool
}

// errNoData is returned when the training set is empty.
var errNoData = errors.New("nn: empty training set")

// Train fits net to train by mini-batch gradient descent, optionally
// early-stopping on val loss (when val is non-empty and cfg.Patience > 0).
// When early stopping triggers, the best-validation weights are restored.
func Train(net *Network, train, val []Sample, cfg TrainConfig) (TrainResult, error) {
	if len(train) == 0 {
		return TrainResult{}, errNoData
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Loss == nil {
		cfg.Loss = NewSoftmaxCrossEntropy()
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(0.01)
	}
	if cfg.RNG == nil {
		cfg.RNG = xrand.New(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}

	var (
		result    TrainResult
		best      *Network
		bestLoss  = 0.0
		badEpochs = 0
	)
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	workers := newWorkerPool(net, cfg.Workers)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.RNG.ShuffleInts(order)
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			epochLoss += workers.step(net, train, batch, cfg.Loss, cfg.Optimizer)
		}
		result.TrainLoss = append(result.TrainLoss, epochLoss/float64(len(order)))
		result.Epochs = epoch + 1

		if len(val) == 0 || cfg.Patience <= 0 {
			continue
		}
		vl := MeanLoss(net, val, cfg.Loss)
		result.ValLoss = append(result.ValLoss, vl)
		if best == nil || vl < bestLoss {
			bestLoss = vl
			best = net.Clone()
			badEpochs = 0
			continue
		}
		badEpochs++
		if badEpochs >= cfg.Patience {
			result.EarlyStopped = true
			break
		}
	}
	if best != nil {
		if err := net.CopyWeightsFrom(best); err != nil {
			return result, err
		}
		result.BestValLoss = bestLoss
	} else if len(result.ValLoss) > 0 {
		result.BestValLoss = result.ValLoss[len(result.ValLoss)-1]
	}
	return result, nil
}

// MeanLoss evaluates the mean loss of net over samples without touching
// gradients.
func MeanLoss(net *Network, samples []Sample, loss Loss) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	grad := tensor.NewVector(net.OutDim())
	for _, s := range samples {
		out := net.Forward(s.X)
		if len(grad) != len(out) {
			grad = tensor.NewVector(len(out))
		}
		total += loss.Eval(out, s.Y, grad)
	}
	return total / float64(len(samples))
}

// Accuracy returns the argmax classification accuracy of net on samples.
func Accuracy(net *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		out := net.Forward(s.X)
		if out.Argmax() == s.Y.Argmax() {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// workerPool shards mini-batch gradient computation across goroutines.
// Each worker owns a private clone of the master network; before every
// step the clones copy the master weights, compute sharded gradients, and
// the master sums them before the optimizer update. With one worker the
// master network is used directly and no synchronization happens.
type workerPool struct {
	clones []*Network
}

func newWorkerPool(master *Network, workers int) *workerPool {
	p := &workerPool{}
	if workers <= 1 {
		return p
	}
	p.clones = make([]*Network, workers)
	for i := range p.clones {
		p.clones[i] = master.Clone()
	}
	return p
}

// step computes the mean gradient of loss over train[batch], applies opt,
// zeroes gradients, and returns the summed batch loss.
func (p *workerPool) step(master *Network, train []Sample, batch []int, loss Loss, opt Optimizer) float64 {
	scale := 1 / float64(len(batch))
	var batchLoss float64

	if len(p.clones) == 0 {
		grad := tensor.NewVector(master.OutDim())
		for _, idx := range batch {
			s := train[idx]
			out := master.Forward(s.X)
			if len(grad) != len(out) {
				grad = tensor.NewVector(len(out))
			}
			batchLoss += loss.Eval(out, s.Y, grad)
			grad.Scale(scale)
			master.Backward(grad)
		}
	} else {
		nw := len(p.clones)
		losses := make([]float64, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			clone := p.clones[w]
			if err := clone.CopyWeightsFrom(master); err != nil {
				// Architectures are clones by construction; a
				// mismatch is a programmer error.
				panic(err)
			}
			clone.ZeroGrad()
			wg.Add(1)
			go func(w int, clone *Network) {
				defer wg.Done()
				grad := tensor.NewVector(clone.OutDim())
				for bi := w; bi < len(batch); bi += nw {
					s := train[batch[bi]]
					out := clone.Forward(s.X)
					if len(grad) != len(out) {
						grad = tensor.NewVector(len(out))
					}
					losses[w] += loss.Eval(out, s.Y, grad)
					grad.Scale(scale)
					clone.Backward(grad)
				}
			}(w, clone)
		}
		wg.Wait()
		masterParams := master.Params()
		for _, clone := range p.clones {
			for gi, cp := range clone.Params() {
				masterParams[gi].Grad.AddScaled(1, cp.Grad)
			}
		}
		for _, l := range losses {
			batchLoss += l
		}
	}

	opt.Step(master.Params())
	master.ZeroGrad()
	return batchLoss
}
