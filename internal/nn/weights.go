package nn

import (
	"fmt"
	"sync"

	"anole/internal/tensor"
)

// Weights is the frozen, execution-only form of a trained Network: an
// ordered program of dense transforms and activations whose parameters
// never change after construction. A Weights holds no gradients and no
// cached activations, so one instance is safe to share across any number
// of goroutines — every stream, worker, and cache entry can run the same
// resident copy. All mutable per-execution state lives in a Scratch.
//
// Weights is the unit the rest of the system moves around: the model
// cache sizes entries by SizeBytes, the repo serializes it, and
// quantization produces just another Weights (see Quantize).
type Weights struct {
	layers []wlayer

	inDim, outDim int
	maxDim        int // widest activation, sizes Scratch buffers
	flops         int64
	paramCount    int

	// pool recycles Scratch instances for callers that pass nil; it is a
	// pointer so Weights values are never copied with a live pool.
	pool *sync.Pool
	// batchPool does the same for BatchScratch (see batch.go).
	batchPool *sync.Pool
}

// wlayer is one frozen layer: a dense transform (w != nil) or an
// element-wise activation (fn != nil).
type wlayer struct {
	kind      layerKind
	w         *tensor.Matrix // out × in, dense only
	b         tensor.Vector
	quantBits int
	fn        func(float64) float64 // activation only
}

// Inferer is the one interface every executable model form satisfies:
// full-precision and quantized Weights alike run behind it.
type Inferer interface {
	Infer(dst, in tensor.Vector, s *Scratch) tensor.Vector
	InDim() int
	OutDim() int
}

var _ Inferer = (*Weights)(nil)

// Freeze compiles the network's current parameters into an immutable
// Weights program. The parameters are deep-copied, so later training on
// n does not affect the frozen copy.
func (n *Network) Freeze() *Weights {
	ls := make([]wlayer, len(n.layers))
	for i, l := range n.layers {
		switch t := l.(type) {
		case *Dense:
			ls[i] = wlayer{kind: t.kind(), w: t.W.Clone(), b: t.B.Clone(), quantBits: t.quantBits}
		case *activation:
			ls[i] = wlayer{kind: t.tag, fn: t.fn}
		default:
			panic(fmt.Sprintf("nn: cannot freeze layer type %T", l))
		}
	}
	return newWeights(ls)
}

// Freeze is the free-function form of (*Network).Freeze.
func Freeze(n *Network) *Weights { return n.Freeze() }

// newWeights validates the layer program and precomputes the static
// accounting (dims, FLOPs, parameter count, scratch sizing).
func newWeights(ls []wlayer) *Weights {
	w := &Weights{layers: ls}
	lastOut := 0
	for i := range ls {
		l := &ls[i]
		if l.w == nil {
			w.flops += int64(lastOut)
			continue
		}
		in, out := l.w.Cols, l.w.Rows
		if lastOut != 0 && in != lastOut {
			panic(fmt.Sprintf("nn: frozen layer %d expects input dim %d but previous layer outputs %d", i, in, lastOut))
		}
		if w.inDim == 0 {
			w.inDim = in
		}
		w.flops += 2*int64(in)*int64(out) + int64(out)
		w.paramCount += len(l.w.Data) + len(l.b)
		lastOut = out
	}
	w.outDim = lastOut
	w.maxDim = w.inDim
	for i := range ls {
		if ls[i].w != nil && ls[i].w.Rows > w.maxDim {
			w.maxDim = ls[i].w.Rows
		}
	}
	dim := w.maxDim
	w.pool = &sync.Pool{New: func() any { return newScratch(dim) }}
	w.batchPool = &sync.Pool{New: func() any { return newBatchScratch(dim) }}
	return w
}

// clone returns a Weights sharing every layer except those the caller is
// about to replace; used by the copy-on-write transforms below.
func (w *Weights) clone() *Weights {
	ls := make([]wlayer, len(w.layers))
	copy(ls, w.layers)
	return newWeights(ls)
}

// InDim returns the input dimension of the first dense layer (0 if none).
func (w *Weights) InDim() int { return w.inDim }

// OutDim returns the output dimension of the last dense layer (0 if none).
func (w *Weights) OutDim() int { return w.outDim }

// NumLayers returns the number of layers in the frozen program.
func (w *Weights) NumLayers() int { return len(w.layers) }

// ParamCount returns the total number of scalar parameters.
func (w *Weights) ParamCount() int { return w.paramCount }

// FLOPs estimates the floating-point operations of one forward pass,
// using the same accounting as (*Network).FLOPs.
func (w *Weights) FLOPs() int64 { return w.flops }

// QuantBits returns the bit width the dense layers were quantized to, or
// 0 for full precision (first dense layer's width for mixed precision).
func (w *Weights) QuantBits() int {
	for i := range w.layers {
		if w.layers[i].w != nil {
			return w.layers[i].quantBits
		}
	}
	return 0
}

// WeightBytes returns the parameter payload size in bytes: 8 per scalar
// at full precision, integer storage plus per-tensor scales when
// quantized — the Table II model-size analogue.
func (w *Weights) WeightBytes() int64 {
	bits := w.QuantBits()
	if bits == 0 {
		return int64(w.paramCount) * 8
	}
	bytesPer := int64((bits + 7) / 8)
	var total int64
	for i := range w.layers {
		l := &w.layers[i]
		if l.w == nil {
			continue
		}
		total += int64(len(l.w.Data)+len(l.b))*bytesPer + 16 // two scales
	}
	return total
}

// Scratch is the per-execution working set for running a Weights program:
// two ping-pong activation buffers plus caller-usable input/output
// buffers, all preallocated to the widest layer. A Scratch belongs to one
// goroutine at a time; acquire from the owning Weights (AcquireScratch)
// or pass nil to Infer and let it borrow one from the pool.
type Scratch struct {
	ping, pong tensor.Vector
	in, out    tensor.Vector
}

func newScratch(maxDim int) *Scratch {
	return &Scratch{
		ping: tensor.NewVector(maxDim),
		pong: tensor.NewVector(maxDim),
		in:   tensor.NewVector(maxDim),
		out:  tensor.NewVector(maxDim),
	}
}

// In returns the scratch's input staging buffer sliced to n elements,
// for callers assembling model inputs without allocating per call. The
// buffer is distinct from the ping-pong and output buffers, so it may be
// passed to Infer on the same Scratch.
func (s *Scratch) In(n int) tensor.Vector { return s.in[:n] }

// Out returns the scratch's output buffer sliced to n elements, suitable
// as Infer's dst while the same Scratch serves the intermediate layers.
func (s *Scratch) Out(n int) tensor.Vector { return s.out[:n] }

// AcquireScratch borrows a scratch sized for this program from the pool.
// Pair with ReleaseScratch; holding one across many Infer calls (e.g. a
// per-frame cell loop) keeps the steady state allocation-free.
func (w *Weights) AcquireScratch() *Scratch {
	return w.pool.Get().(*Scratch)
}

// ReleaseScratch returns s to the pool. s must not be used afterwards.
func (w *Weights) ReleaseScratch(s *Scratch) {
	if s != nil {
		w.pool.Put(s)
	}
}

// Infer runs the full program on in and writes the output into dst,
// allocating only when dst is nil or mis-sized. dst must not alias in.
// s supplies the intermediate activation buffers; pass nil to borrow one
// from the program's pool. The returned vector is dst: caller-owned, and
// never aliased by later Infer calls.
func (w *Weights) Infer(dst, in tensor.Vector, s *Scratch) tensor.Vector {
	return w.inferThrough(len(w.layers), dst, in, s)
}

// InferThrough runs the first k layers only, the frozen counterpart of
// (*Network).ForwardThrough used to extract embeddings.
func (w *Weights) InferThrough(k int, dst, in tensor.Vector, s *Scratch) tensor.Vector {
	if k < 0 || k > len(w.layers) {
		panic(fmt.Sprintf("nn: InferThrough(%d) with %d layers", k, len(w.layers)))
	}
	return w.inferThrough(k, dst, in, s)
}

func (w *Weights) inferThrough(k int, dst, in tensor.Vector, s *Scratch) tensor.Vector {
	if w.inDim > 0 && len(in) != w.inDim {
		panic(fmt.Sprintf("nn: infer input dim %d, want %d", len(in), w.inDim))
	}
	outDim := len(in)
	for i := 0; i < k; i++ {
		if w.layers[i].w != nil {
			outDim = w.layers[i].w.Rows
		}
	}
	if len(dst) != outDim {
		dst = tensor.NewVector(outDim)
	}
	if k == 0 {
		copy(dst, in)
		return dst
	}
	release := false
	if s == nil {
		s = w.AcquireScratch()
		release = true
	}
	x := in
	buf, alt := s.ping, s.pong
	for i := 0; i < k; i++ {
		l := &w.layers[i]
		last := i == k-1
		var target tensor.Vector
		if l.w != nil {
			if last {
				target = dst
			} else {
				target = buf[:l.w.Rows]
			}
			l.w.MulVec(target, x)
			target.AddScaled(1, l.b)
		} else {
			if last {
				target = dst
			} else {
				target = buf[:len(x)]
			}
			for j, v := range x {
				target[j] = l.fn(v)
			}
		}
		x = target
		buf, alt = alt, buf
	}
	if release {
		w.ReleaseScratch(s)
	}
	return dst
}

// Quantize returns a new Weights with every dense layer's parameters
// snapped to a symmetric integer grid of the given bit width (2..16).
// The receiver is unmodified; the result is an ordinary Weights — same
// Infer interface, smaller serialized form.
func (w *Weights) Quantize(bits int) (*Weights, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("nn: quantization bits %d outside [2,16]", bits)
	}
	q := w.clone()
	for i := range q.layers {
		l := &q.layers[i]
		if l.w == nil {
			continue
		}
		m, b := l.w.Clone(), l.b.Clone()
		quantizeSlice(m.Data, bits)
		quantizeSlice(b, bits)
		l.w, l.b, l.quantBits, l.kind = m, b, bits, kindDenseQuant
	}
	return q, nil
}

// ScaleFinalDense returns a copy of w whose last dense layer (weights and
// bias) is multiplied by alpha — the copy-on-write form of folding a
// temperature into a classifier head. Quantized programs are refused:
// scaling would move the parameters off their integer grid.
func (w *Weights) ScaleFinalDense(alpha float64) (*Weights, error) {
	idx := -1
	for i := len(w.layers) - 1; i >= 0; i-- {
		if w.layers[i].w != nil {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("nn: no dense layer to scale")
	}
	if w.layers[idx].quantBits > 0 {
		return nil, fmt.Errorf("nn: cannot scale a quantized dense layer")
	}
	out := w.clone()
	m, b := out.layers[idx].w.Clone(), out.layers[idx].b.Clone()
	m.Scale(alpha)
	b.Scale(alpha)
	out.layers[idx].w, out.layers[idx].b = m, b
	return out, nil
}

// Thaw reconstructs a trainable Network from the frozen program, with
// fresh gradient buffers and deep-copied parameters. Used to fine-tune a
// deployed model without mutating the shared frozen copy.
func (w *Weights) Thaw() *Network {
	layers := make([]Layer, len(w.layers))
	for i := range w.layers {
		l := &w.layers[i]
		switch l.kind {
		case kindDense, kindDenseQuant:
			layers[i] = &Dense{
				W:         l.w.Clone(),
				B:         l.b.Clone(),
				quantBits: l.quantBits,
				gradW:     tensor.NewMatrix(l.w.Rows, l.w.Cols),
				gradB:     tensor.NewVector(len(l.b)),
			}
		case kindReLU:
			layers[i] = NewReLU()
		case kindTanh:
			layers[i] = NewTanh()
		case kindSigmoid:
			layers[i] = NewSigmoid()
		default:
			panic(fmt.Sprintf("nn: cannot thaw layer kind %d", l.kind))
		}
	}
	return MustNetwork(layers...)
}
