package nn

import (
	"fmt"
	"math"
)

// Quantization: the paper situates Anole in the model-compression
// landscape ("reduce quantization precision to minimize computational
// cost, e.g., use integers instead of floating-point numbers", §VII-A).
// Quantize applies symmetric per-tensor post-training quantization to
// every dense layer: weights and biases snap to a signed integer grid of
// the requested bit width. The returned network computes in float64 (the
// simulator models compute cost separately) but its parameters carry at
// most 2^bits distinct magnitudes, and serialization stores them as
// integers — so the bundle genuinely shrinks by ~64/bits.

// Quantize returns a copy of net with all dense parameters quantized to
// the given bit width (2..16). The input network is not modified.
func Quantize(net *Network, bits int) (*Network, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("nn: quantization bits %d outside [2,16]", bits)
	}
	out := net.Clone()
	for _, l := range out.layers {
		d, ok := l.(*Dense)
		if !ok {
			continue
		}
		quantizeSlice(d.W.Data, bits)
		quantizeSlice(d.B, bits)
		d.quantBits = bits
	}
	return out, nil
}

// quantizeSlice snaps xs onto a symmetric grid with 2^(bits-1)-1 positive
// levels, scaled to the slice's maximum magnitude.
func quantizeSlice(xs []float64, bits int) {
	scale := quantScale(xs, bits)
	if scale == 0 {
		return
	}
	for i, x := range xs {
		xs[i] = math.Round(x/scale) * scale
	}
}

// quantScale returns the grid step for xs at the given bit width, or 0
// for an all-zero slice.
func quantScale(xs []float64, bits int) float64 {
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	levels := float64(int64(1)<<(bits-1)) - 1
	return maxAbs / levels
}

// QuantAccuracyFactor estimates the validation-quality multiplier of
// running at the given weight bit width: 1 at full precision (bits 0 or
// ≥ 16), decaying quadratically as the grid coarsens — post-training
// quantization is near-lossless at 8 bits (~1% here), noticeable at 4
// (~6%), and severe at 2 (~12%). Per-device planning multiplies a
// variant's measured full-precision F1 by this factor to rank variants
// without running validation for every (model, width) pair.
func QuantAccuracyFactor(bits int) float64 {
	if bits <= 0 || bits >= 16 {
		return 1
	}
	saved := float64(16-bits) / 14 // 0 at 16 bits → 1 at 2 bits
	return 1 - 0.12*saved*saved
}

// QuantBits returns the bit width the network's dense layers were
// quantized to, or 0 for full-precision networks. Mixed-precision
// networks report the first dense layer's width.
func (n *Network) QuantBits() int {
	for _, l := range n.layers {
		if d, ok := l.(*Dense); ok {
			return d.quantBits
		}
	}
	return 0
}

// WeightBytes (see network.go) reports 8 bytes per parameter for
// full-precision networks; quantized networks store integers plus one
// float64 scale per tensor, which quantizedWeightBytes accounts for.
func (n *Network) quantizedWeightBytes() (int64, bool) {
	bits := n.QuantBits()
	if bits == 0 {
		return 0, false
	}
	bytesPer := (bits + 7) / 8
	var total int64
	for _, l := range n.layers {
		d, ok := l.(*Dense)
		if !ok {
			continue
		}
		total += int64(len(d.W.Data)+len(d.B))*int64(bytesPer) + 16 // two scales
	}
	return total, true
}
