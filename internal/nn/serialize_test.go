package nn

import (
	"bytes"
	"strings"
	"testing"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

func TestSerializeRoundtrip(t *testing.T) {
	rng := xrand.New(1)
	net := MustNetwork(
		NewDense(3, 7, rng), NewReLU(),
		NewDense(7, 5, rng), NewTanh(),
		NewDense(5, 2, rng), NewSigmoid(),
	)
	var buf bytes.Buffer
	n, err := net.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, -1.5, 2}
	want := net.Forward(x).Clone()
	out := got.Forward(x)
	for i := range want {
		if want[i] != out[i] {
			t.Fatalf("roundtrip output differs at %d: %v vs %v", i, want[i], out[i])
		}
	}
	if got.ParamCount() != net.ParamCount() {
		t.Fatalf("param count %d vs %d", got.ParamCount(), net.ParamCount())
	}
}

func TestDeserializedNetworkTrainable(t *testing.T) {
	rng := xrand.New(2)
	net := NewMLP(MLPConfig{InDim: 2, Hidden: []int{6}, OutDim: 2, Activation: NewTanh}, rng)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(loaded, xorSamples(), nil, TrainConfig{
		Epochs: 300, BatchSize: 4, Optimizer: NewAdam(0.05), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(loaded, xorSamples()); acc != 1 {
		t.Fatalf("loaded network failed to train: acc %v", acc)
	}
}

func TestReadNetworkBadMagic(t *testing.T) {
	if _, err := ReadNetwork(strings.NewReader("XXXXgarbage")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadNetworkTruncated(t *testing.T) {
	rng := xrand.New(3)
	net := NewMLP(MLPConfig{InDim: 4, Hidden: []int{4}, OutDim: 2}, rng)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadNetwork(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadNetworkCorrupted(t *testing.T) {
	rng := xrand.New(4)
	net := NewMLP(MLPConfig{InDim: 3, Hidden: []int{3}, OutDim: 2}, rng)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the weight payload; the CRC must catch it.
	data[len(data)/2] ^= 0xFF
	if _, err := ReadNetwork(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestReadNetworkEmpty(t *testing.T) {
	if _, err := ReadNetwork(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestSerializeSizeMatchesWeightBytes(t *testing.T) {
	rng := xrand.New(5)
	net := NewMLP(MLPConfig{InDim: 8, Hidden: []int{16}, OutDim: 4}, rng)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Serialized size = weights + small framing overhead.
	overhead := int64(buf.Len()) - net.WeightBytes()
	if overhead < 0 || overhead > 128 {
		t.Fatalf("framing overhead = %d bytes", overhead)
	}
}
