package nn

import "anole/internal/xrand"

// Trainable quarantines everything mutable about a model under training —
// gradient accumulators, cached activations, optimizer state spun up by
// Train — behind one wrapper, so the rest of the system only ever handles
// the immutable Weights it freezes into. The lifecycle is:
//
//	t := nn.NewTrainableMLP(cfg, rng)   // or ThawTrainable(w) to fine-tune
//	t.Train(trainSet, valSet, tc)
//	w := t.Freeze()                     // immutable, goroutine-shareable
//
// A Trainable is single-goroutine, like the Network it wraps (the trainer
// itself shards batches across internal clones).
type Trainable struct {
	net *Network
}

// NewTrainable wraps an existing network. The network is owned by the
// Trainable from then on; callers should not keep running it directly.
func NewTrainable(net *Network) *Trainable { return &Trainable{net: net} }

// NewTrainableMLP constructs a trainable MLP described by cfg with weights
// drawn from rng.
func NewTrainableMLP(cfg MLPConfig, rng *xrand.RNG) *Trainable {
	return &Trainable{net: NewMLP(cfg, rng)}
}

// ThawTrainable reopens frozen weights for training: parameters are
// deep-copied into a fresh Network with zeroed gradients, so the shared
// frozen copy keeps serving inference while this one learns.
func ThawTrainable(w *Weights) *Trainable { return &Trainable{net: w.Thaw()} }

// Network exposes the wrapped trainable network for loss/accuracy
// evaluation during training.
func (t *Trainable) Network() *Network { return t.net }

// Train fits the wrapped network (see the Train free function).
func (t *Trainable) Train(train, val []Sample, cfg TrainConfig) (TrainResult, error) {
	return Train(t.net, train, val, cfg)
}

// Freeze compiles the current parameters into an immutable Weights
// program. The Trainable remains usable; freezing copies.
func (t *Trainable) Freeze() *Weights { return t.net.Freeze() }
