package nn

import (
	"fmt"

	"anole/internal/tensor"
)

// BatchScratch is the per-execution working set for running a Weights
// program over a whole batch at once: ping-pong activation matrices plus
// caller-usable input/output staging, all row-major with one sample per
// row. Buffers grow on demand to the largest batch seen and are then
// reused, so the steady state (same batch shape) performs no heap
// allocations. A BatchScratch belongs to one goroutine at a time;
// acquire from the owning Weights (AcquireBatchScratch) or pass nil to
// InferBatch and let it borrow one from the pool.
type BatchScratch struct {
	maxDim int

	pingBuf, pongBuf, inBuf, outBuf []float64
	// Reused matrix headers re-sliced over the buffers per call, so
	// callers and the layer loop never allocate tensor.Matrix values.
	ping, pong, inM, outM tensor.Matrix
}

func newBatchScratch(maxDim int) *BatchScratch {
	return &BatchScratch{maxDim: maxDim}
}

// ensure grows the backing buffers to hold rows samples of the widest
// layer.
func (s *BatchScratch) ensure(rows int) {
	need := rows * s.maxDim
	if need <= cap(s.pingBuf) {
		return
	}
	s.pingBuf = make([]float64, need)
	s.pongBuf = make([]float64, need)
	s.inBuf = make([]float64, need)
	s.outBuf = make([]float64, need)
}

// view re-points one of the scratch's matrix headers at buf with the
// given shape.
func view(m *tensor.Matrix, buf []float64, rows, cols int) *tensor.Matrix {
	m.Rows, m.Cols, m.Data = rows, cols, buf[:rows*cols]
	return m
}

// In returns the scratch's input staging matrix shaped rows × cols, for
// callers assembling batch inputs (one sample per row) without
// allocating per call. cols must not exceed the owning program's widest
// layer. The matrix is distinct from the ping-pong and output buffers,
// so it may be passed to InferBatch on the same BatchScratch.
func (s *BatchScratch) In(rows, cols int) *tensor.Matrix {
	if cols > s.maxDim {
		panic(fmt.Sprintf("nn: batch staging width %d exceeds program max %d", cols, s.maxDim))
	}
	s.ensure(rows)
	return view(&s.inM, s.inBuf, rows, cols)
}

// Out returns the scratch's output matrix shaped rows × cols, suitable
// as InferBatch's dst while the same scratch serves the intermediate
// layers.
func (s *BatchScratch) Out(rows, cols int) *tensor.Matrix {
	if cols > s.maxDim {
		panic(fmt.Sprintf("nn: batch output width %d exceeds program max %d", cols, s.maxDim))
	}
	s.ensure(rows)
	return view(&s.outM, s.outBuf, rows, cols)
}

// AcquireBatchScratch borrows a batch scratch sized for this program
// from the pool. Pair with ReleaseBatchScratch; holding one across many
// InferBatch calls keeps the steady-state batch path allocation-free.
func (w *Weights) AcquireBatchScratch() *BatchScratch {
	return w.batchPool.Get().(*BatchScratch)
}

// ReleaseBatchScratch returns s to the pool. s must not be used
// afterwards.
func (w *Weights) ReleaseBatchScratch(s *BatchScratch) {
	if s != nil {
		w.batchPool.Put(s)
	}
}

// InferBatch runs the full program on a batch of inputs (one sample per
// row of in) and writes the outputs into dst (one result per row),
// allocating only when dst is nil or mis-shaped. dst must not alias in.
// s supplies the intermediate activation matrices; pass nil to borrow
// one from the program's pool. Dense layers execute as one
// matrix-matrix product per layer (tensor.MatMulTInto against the
// frozen out×in weight matrix), so a batch of B samples costs one GEMM
// instead of B GEMVs. The batched kernel sums each dot product in the
// same ascending order as MulVec, so per sample the result is
// bit-identical to Infer.
func (w *Weights) InferBatch(dst, in *tensor.Matrix, s *BatchScratch) *tensor.Matrix {
	return w.inferBatchThrough(len(w.layers), dst, in, s)
}

// InferBatchThrough runs the first k layers only over the batch, the
// batched counterpart of InferThrough (embedding extraction).
func (w *Weights) InferBatchThrough(k int, dst, in *tensor.Matrix, s *BatchScratch) *tensor.Matrix {
	if k < 0 || k > len(w.layers) {
		panic(fmt.Sprintf("nn: InferBatchThrough(%d) with %d layers", k, len(w.layers)))
	}
	return w.inferBatchThrough(k, dst, in, s)
}

func (w *Weights) inferBatchThrough(k int, dst, in *tensor.Matrix, s *BatchScratch) *tensor.Matrix {
	if w.inDim > 0 && in.Cols != w.inDim {
		panic(fmt.Sprintf("nn: batch infer input dim %d, want %d", in.Cols, w.inDim))
	}
	rows := in.Rows
	outDim := in.Cols
	for i := 0; i < k; i++ {
		if w.layers[i].w != nil {
			outDim = w.layers[i].w.Rows
		}
	}
	if dst == nil || dst.Rows != rows || dst.Cols != outDim {
		dst = tensor.NewMatrix(rows, outDim)
	}
	if k == 0 || rows == 0 {
		copy(dst.Data, in.Data[:rows*outDim])
		return dst
	}
	release := false
	if s == nil {
		s = w.AcquireBatchScratch()
		release = true
	}
	s.ensure(rows)
	x := in
	buf, alt := s.pingBuf, s.pongBuf
	front, back := &s.ping, &s.pong
	for i := 0; i < k; i++ {
		l := &w.layers[i]
		last := i == k-1
		var target *tensor.Matrix
		if l.w != nil {
			if last {
				target = dst
			} else {
				target = view(front, buf, rows, l.w.Rows)
			}
			tensor.MatMulTInto(target, x, l.w)
			for r := 0; r < rows; r++ {
				target.Row(r).AddScaled(1, l.b)
			}
		} else {
			if last {
				target = dst
			} else {
				target = view(front, buf, rows, x.Cols)
			}
			for j, v := range x.Data {
				target.Data[j] = l.fn(v)
			}
		}
		x = target
		buf, alt = alt, buf
		front, back = back, front
	}
	if release {
		w.ReleaseBatchScratch(s)
	}
	return dst
}
