// Package device simulates the paper's three mobile platforms — Jetson
// Nano, Jetson TX2 NX and a laptop (Table I) — so that the latency, GPU
// memory and power experiments (Table IV, Fig. 4a, Fig. 11) run without
// the hardware.
//
// The simulator charges each inference latency = FLOPs/throughput +
// dispatch overhead, charges cold model loads bytes/IO-bandwidth plus a
// one-time framework-initialization cost (the paper's Fig. 4a first-frame
// spike), integrates energy as power × busy-time, and accounts GPU memory
// as loaded weights plus an execution working set.
//
// Because the substitute models are far smaller than YOLOv3 (DESIGN.md
// §2), model FLOPs and bytes are multiplied by FLOPsScale/BytesScale to
// land in the paper's workload regime; the scale factors are two
// documented calibration constants, not per-experiment tuning.
package device

import (
	"fmt"
	"time"
)

// FLOPsScale and BytesScale map substitute-model cost to paper-scale
// cost. The compressed detector head here runs ≈0.05 MFLOPs/frame with
// ≈3 KB of weights versus YOLOv3-tiny's 5.56 BFLOPs and 34 MB, so the
// two dimensions need different factors: with these values the tiny
// analogue lands at ≈5.8 BFLOPs / 31 MB and the deep analogue at
// ≈61 BFLOPs / 320 MB — the paper's Table II regime. The same factors
// apply to every model and device, so all ratios are preserved.
const (
	FLOPsScale = 1.2e5
	BytesScale = 1.0e4
)

// PowerMode is one operating point of a device (the TX2 NX exposes
// several; Fig. 11 sweeps them).
type PowerMode struct {
	Name string
	// BudgetW is the nominal input power of the mode.
	BudgetW float64
	// Cores is the number of active CPU cores.
	Cores int
	// GFLOPS is the effective compute throughput at this mode.
	GFLOPS float64
	// IdleW and ActiveW bound the power draw: idle when waiting,
	// active while computing.
	IdleW, ActiveW float64
}

// Profile describes one device (Table I).
type Profile struct {
	Name string
	// GPUMemoryMB bounds what the model cache may hold.
	GPUMemoryMB float64
	// IOBandwidthMBps is the flash→GPU transfer rate for model loads.
	IOBandwidthMBps float64
	// FrameworkInitMs is the one-time inference-engine initialization
	// charged on the very first model load (the dominant part of the
	// Fig. 4a first-frame spike).
	FrameworkInitMs float64
	// DispatchOverheadMs is the fixed per-inference cost (kernel
	// launch, pre/post-processing).
	DispatchOverheadMs float64
	// Modes lists the available power modes; Modes[DefaultMode] is
	// used unless a mode is selected explicitly.
	Modes       []PowerMode
	DefaultMode int
	// BatteryWh is the device's energy envelope in watt-hours. Zero
	// means wall-powered (unbounded); fleet planning treats a positive
	// value as the budget a deployment must live within.
	BatteryWh float64
}

// Validate checks that a profile is internally consistent: at least one
// power mode, a default mode in range, positive memory/bandwidth, and
// sane wattage on every mode. NewSimulator and NewSimulatorAtMode refuse
// profiles that fail validation instead of dividing by zero later.
func (p Profile) Validate() error {
	if len(p.Modes) == 0 {
		return fmt.Errorf("device: profile %q has no power modes", p.Name)
	}
	if p.DefaultMode < 0 || p.DefaultMode >= len(p.Modes) {
		return fmt.Errorf("device: profile %q default mode %d out of range [0,%d)",
			p.Name, p.DefaultMode, len(p.Modes))
	}
	if p.GPUMemoryMB <= 0 {
		return fmt.Errorf("device: profile %q has non-positive GPU memory %v", p.Name, p.GPUMemoryMB)
	}
	if p.IOBandwidthMBps <= 0 {
		return fmt.Errorf("device: profile %q has non-positive IO bandwidth %v", p.Name, p.IOBandwidthMBps)
	}
	if p.FrameworkInitMs < 0 || p.DispatchOverheadMs < 0 {
		return fmt.Errorf("device: profile %q has negative overhead", p.Name)
	}
	if p.BatteryWh < 0 {
		return fmt.Errorf("device: profile %q has negative battery envelope %v", p.Name, p.BatteryWh)
	}
	for i, m := range p.Modes {
		if m.GFLOPS <= 0 {
			return fmt.Errorf("device: profile %q mode %d (%s) has non-positive throughput %v",
				p.Name, i, m.Name, m.GFLOPS)
		}
		if m.BudgetW <= 0 {
			return fmt.Errorf("device: profile %q mode %d (%s) has non-positive power budget %v",
				p.Name, i, m.Name, m.BudgetW)
		}
		if m.IdleW < 0 || m.ActiveW < m.IdleW {
			return fmt.Errorf("device: profile %q mode %d (%s) has inconsistent wattage idle=%v active=%v",
				p.Name, i, m.Name, m.IdleW, m.ActiveW)
		}
	}
	return nil
}

// The three platforms of Table I. Throughput, bandwidth and power figures
// are set so that the Table IV / Fig. 11 shapes reproduce: TX2 NX fastest,
// Nano slowest, laptop in between but with the most memory.
var (
	JetsonNano = Profile{
		Name:               "Jetson Nano",
		GPUMemoryMB:        2048,
		IOBandwidthMBps:    180,
		FrameworkInitMs:    900,
		DispatchOverheadMs: 2.5,
		Modes: []PowerMode{
			{Name: "10W", BudgetW: 10, Cores: 4, GFLOPS: 236, IdleW: 1.5, ActiveW: 9.0},
		},
		BatteryWh: 37, // 3S LiPo pack typical of Nano robotics carriers
	}
	JetsonTX2NX = Profile{
		Name:               "Jetson TX2 NX",
		GPUMemoryMB:        4096,
		IOBandwidthMBps:    400,
		FrameworkInitMs:    600,
		DispatchOverheadMs: 0.8,
		Modes: []PowerMode{
			{Name: "7.5W-2core", BudgetW: 7.5, Cores: 2, GFLOPS: 630, IdleW: 1.8, ActiveW: 7.0},
			{Name: "10W-4core", BudgetW: 10, Cores: 4, GFLOPS: 830, IdleW: 2.0, ActiveW: 9.3},
			{Name: "15W-4core", BudgetW: 15, Cores: 4, GFLOPS: 1060, IdleW: 2.2, ActiveW: 13.5},
			{Name: "20W-6core", BudgetW: 20, Cores: 6, GFLOPS: 1330, IdleW: 2.5, ActiveW: 17.8},
		},
		DefaultMode: 3,
		BatteryWh:   58, // 4S pack on the TX2 NX dev carrier
	}
	Laptop = Profile{
		Name:               "Laptop (i7 + RTX 2070)",
		GPUMemoryMB:        8192,
		IOBandwidthMBps:    1500,
		FrameworkInitMs:    400,
		DispatchOverheadMs: 18, // desktop stacks pay far more per-call overhead
		Modes: []PowerMode{
			{Name: "AC", BudgetW: 180, Cores: 12, GFLOPS: 2100, IdleW: 25, ActiveW: 140},
		},
		BatteryWh: 99, // largest airline-legal pack
	}

	// CPUFast and CPUSlow are CPU-only analogs bracketing the phone SoCs
	// a real deployment sees (OODIn's heterogeneity argument): a flagship
	// big-core cluster and a budget handset. CPUSlow's small memory
	// ceiling is deliberate — it is the profile on which per-device
	// planning's memory constraint actually binds.
	CPUFast = Profile{
		Name:               "CPU (fast)",
		GPUMemoryMB:        3072,
		IOBandwidthMBps:    250,
		FrameworkInitMs:    350,
		DispatchOverheadMs: 1.2,
		Modes: []PowerMode{
			{Name: "sustained", BudgetW: 6, Cores: 4, GFLOPS: 420, IdleW: 0.9, ActiveW: 5.5},
			{Name: "boost", BudgetW: 9, Cores: 8, GFLOPS: 560, IdleW: 1.1, ActiveW: 8.2},
		},
		BatteryWh: 17, // ~4500 mAh handset
	}
	CPUSlow = Profile{
		Name:               "CPU (slow)",
		GPUMemoryMB:        512,
		IOBandwidthMBps:    60,
		FrameworkInitMs:    1400,
		DispatchOverheadMs: 4.0,
		Modes: []PowerMode{
			{Name: "sustained", BudgetW: 3, Cores: 4, GFLOPS: 85, IdleW: 0.5, ActiveW: 2.8},
		},
		BatteryWh: 11, // ~3000 mAh budget handset
	}
)

// Profiles returns the three platforms in Table I order.
func Profiles() []Profile {
	return []Profile{JetsonNano, JetsonTX2NX, Laptop}
}

// ModelCost is what the simulator needs to know about a model.
type ModelCost struct {
	Name string
	// FLOPsPerInference is the unscaled per-frame cost of the
	// substitute model (Detector.FrameFLOPs or Network.FLOPs).
	FLOPsPerInference int64
	// WeightBytes is the unscaled serialized parameter size.
	WeightBytes int64
	// QuantBits is the weight bit width the model runs at; 0 (or ≥ 64)
	// means full precision. Integer kernels execute faster than fp32 on
	// mobile silicon, so Infer divides by QuantSpeedup(QuantBits).
	QuantBits int
}

// QuantSpeedup returns the execution-throughput multiplier of running at
// the given weight bit width relative to full precision: 1 at fp32, rising
// linearly in the saved bits to ≈1.58× at int8 and ≈1.63× at 4-bit — the
// regime mobile integer kernels report versus fp32. The substitute models'
// FLOP counts do not change under nn.Quantize (same arithmetic, narrower
// weights), so the simulator carries the kernel speedup here instead.
func QuantSpeedup(bits int) float64 {
	if bits <= 0 || bits >= 64 {
		return 1
	}
	return 1 + float64(64-bits)/96
}

// ScaledFLOPs returns the paper-scale per-inference compute.
func (m ModelCost) ScaledFLOPs() float64 { return float64(m.FLOPsPerInference) * FLOPsScale }

// ScaledBytes returns the paper-scale model size in bytes.
func (m ModelCost) ScaledBytes() float64 { return float64(m.WeightBytes) * BytesScale }

// LoadMemoryMB returns the GPU memory consumed by holding the model's
// weights resident.
func (m ModelCost) LoadMemoryMB() float64 { return m.ScaledBytes() / (1 << 20) }

// ExecMemoryMB returns the working-set memory during inference: weights
// plus activation buffers, which the paper observes dominate (Table IV
// "Execution" column). The multiplier reflects hidden activations and
// framework workspace.
func (m ModelCost) ExecMemoryMB() float64 { return m.LoadMemoryMB()*3 + 450 }

// Simulator tracks simulated time, energy and memory for one device run.
// It is not safe for concurrent use.
type Simulator struct {
	profile Profile
	mode    PowerMode
	modeIdx int

	busy        time.Duration // time spent computing or loading
	idle        time.Duration // explicit idle time (waiting for frames)
	ioTime      time.Duration // background model-transfer time (overlapped)
	energyJ     float64
	inited      bool    // framework initialized (first load done)
	residentMB  float64 // loaded model memory
	inferences  int
	loads       int
	peakMemory  float64
	execBoostMB float64 // transient execution memory of the last inference

	// thermal, when non-nil, throttles compute under sustained load;
	// heat is its state (see thermal.go).
	thermal *ThermalModel
	heat    float64
}

// NewSimulator creates a simulator for profile at its default power mode.
// The profile must pass Validate; an invalid profile (no modes, zero
// memory, inconsistent wattage) is an error rather than a later panic.
func NewSimulator(profile Profile) (*Simulator, error) {
	return NewSimulatorAtMode(profile, profile.DefaultMode)
}

// NewSimulatorAtMode selects a specific power mode by index. The profile
// must pass Validate.
func NewSimulatorAtMode(profile Profile, mode int) (*Simulator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if mode < 0 || mode >= len(profile.Modes) {
		return nil, fmt.Errorf("device: %s has no mode %d", profile.Name, mode)
	}
	return &Simulator{profile: profile, mode: profile.Modes[mode], modeIdx: mode}, nil
}

// Profile returns the simulated device profile.
func (s *Simulator) Profile() Profile { return s.profile }

// Mode returns the active power mode.
func (s *Simulator) Mode() PowerMode { return s.mode }

// ModeIndex returns the index of the active power mode within the
// profile's Modes.
func (s *Simulator) ModeIndex() int { return s.modeIdx }

// SetMode switches the simulator to another power mode mid-run (DVFS).
// Accrued time, energy and thermal state carry over — only the wattage
// and throughput of subsequent work change.
func (s *Simulator) SetMode(mode int) error {
	if mode < 0 || mode >= len(s.profile.Modes) {
		return fmt.Errorf("device: %s has no mode %d", s.profile.Name, mode)
	}
	s.mode = s.profile.Modes[mode]
	s.modeIdx = mode
	return nil
}

// Infer charges one inference of model and returns its simulated
// latency, lengthened by thermal throttling when a thermal model is
// attached and the device is hot.
func (s *Simulator) Infer(model ModelCost) time.Duration {
	throughput := s.mode.GFLOPS * 1e9 * s.ThrottleFactor() * QuantSpeedup(model.QuantBits)
	seconds := model.ScaledFLOPs()/throughput + s.profile.DispatchOverheadMs/1e3
	d := time.Duration(seconds * float64(time.Second))
	s.busy += d
	s.energyJ += s.mode.ActiveW * d.Seconds()
	s.advanceThermal(d, s.mode.ActiveW)
	s.inferences++
	s.execBoostMB = model.ExecMemoryMB() - model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// ioWatts returns the power drawn by a background model transfer: DMA
// from flash does not light up the compute units, so it sits well below
// ActiveW.
func (s *Simulator) ioWatts() float64 {
	return s.mode.IdleW + 0.3*(s.mode.ActiveW-s.mode.IdleW)
}

// LoadModelAsync charges a background model load (flash→GPU transfer):
// I/O energy and overlapped transfer time, with the weights resident when
// it completes. Background loads never block inference — this is the
// paper's miss path, where the best cached model serves the frame while
// the desired model streams in. Framework initialization, if still
// pending, is charged here too.
func (s *Simulator) LoadModelAsync(model ModelCost) time.Duration {
	seconds := model.ScaledBytes() / (s.profile.IOBandwidthMBps * (1 << 20))
	if !s.inited {
		seconds += s.profile.FrameworkInitMs / 1e3
		s.inited = true
	}
	d := time.Duration(seconds * float64(time.Second))
	s.ioTime += d
	s.energyJ += s.ioWatts() * d.Seconds()
	s.loads++
	s.residentMB += model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// LoadModel charges a blocking model load (flash→GPU transfer, plus
// framework initialization if this is the first load of the run) and
// marks the model's weights resident. It returns the simulated load
// latency. Use for cold starts that gate the first inference (Fig. 4a);
// steady-state cache refills use LoadModelAsync.
func (s *Simulator) LoadModel(model ModelCost) time.Duration {
	seconds := model.ScaledBytes() / (s.profile.IOBandwidthMBps * (1 << 20))
	if !s.inited {
		seconds += s.profile.FrameworkInitMs / 1e3
		s.inited = true
	}
	d := time.Duration(seconds * float64(time.Second))
	s.busy += d
	s.energyJ += s.mode.ActiveW * d.Seconds()
	s.loads++
	s.residentMB += model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// UnloadModel releases a model's resident weights (cache eviction).
func (s *Simulator) UnloadModel(model ModelCost) {
	s.residentMB -= model.LoadMemoryMB()
	if s.residentMB < 0 {
		s.residentMB = 0
	}
}

// Idle advances simulated wall-clock time without compute (e.g. waiting
// for the next camera frame), charging idle power.
func (s *Simulator) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	s.idle += d
	s.energyJ += s.mode.IdleW * d.Seconds()
	s.advanceThermal(d, s.mode.IdleW)
}

// Elapsed returns total simulated time (busy + idle).
func (s *Simulator) Elapsed() time.Duration { return s.busy + s.idle }

// BusyTime returns the simulated compute + load time.
func (s *Simulator) BusyTime() time.Duration { return s.busy }

// EnergyJ returns accumulated energy in joules.
func (s *Simulator) EnergyJ() float64 { return s.energyJ }

// AveragePowerW returns energy divided by elapsed time (0 when no time
// has passed).
func (s *Simulator) AveragePowerW() float64 {
	el := s.Elapsed().Seconds()
	if el == 0 {
		return 0
	}
	return s.energyJ / el
}

// FPS returns inferences per second of busy time (0 when idle).
func (s *Simulator) FPS() float64 {
	b := s.busy.Seconds()
	if b == 0 {
		return 0
	}
	return float64(s.inferences) / b
}

// Inferences and Loads report operation counts.
func (s *Simulator) Inferences() int { return s.inferences }

// Loads returns the number of model loads charged.
func (s *Simulator) Loads() int { return s.loads }

// ResidentMemoryMB returns the currently loaded model memory.
func (s *Simulator) ResidentMemoryMB() float64 { return s.residentMB }

// PeakMemoryMB returns the peak of resident + execution memory.
func (s *Simulator) PeakMemoryMB() float64 { return s.peakMemory }

// FitsInMemory reports whether adding a model would stay within the
// device's GPU memory, including execution headroom.
func (s *Simulator) FitsInMemory(model ModelCost) bool {
	return s.residentMB+model.ExecMemoryMB() <= s.profile.GPUMemoryMB
}

// Reset clears all counters but keeps the framework-initialized flag
// cleared too (a fresh process).
func (s *Simulator) Reset() {
	*s = Simulator{profile: s.profile, mode: s.mode, modeIdx: s.modeIdx}
}

// ResetCounters zeroes time, energy and operation counters while keeping
// the framework initialized and resident models loaded — the steady-state
// measurement boundary after a warm-up phase.
// ResetCounters keeps the thermal state: a warm device stays warm across
// the measurement boundary.
func (s *Simulator) ResetCounters() {
	s.busy, s.idle, s.ioTime = 0, 0, 0
	s.energyJ = 0
	s.inferences, s.loads = 0, 0
	s.peakMemory = s.residentMB + s.execBoostMB
}

// IOTime returns the accumulated background-transfer time.
func (s *Simulator) IOTime() time.Duration { return s.ioTime }
