// Package device simulates the paper's three mobile platforms — Jetson
// Nano, Jetson TX2 NX and a laptop (Table I) — so that the latency, GPU
// memory and power experiments (Table IV, Fig. 4a, Fig. 11) run without
// the hardware.
//
// The simulator charges each inference latency = FLOPs/throughput +
// dispatch overhead, charges cold model loads bytes/IO-bandwidth plus a
// one-time framework-initialization cost (the paper's Fig. 4a first-frame
// spike), integrates energy as power × busy-time, and accounts GPU memory
// as loaded weights plus an execution working set.
//
// Because the substitute models are far smaller than YOLOv3 (DESIGN.md
// §2), model FLOPs and bytes are multiplied by FLOPsScale/BytesScale to
// land in the paper's workload regime; the scale factors are two
// documented calibration constants, not per-experiment tuning.
package device

import (
	"fmt"
	"time"
)

// FLOPsScale and BytesScale map substitute-model cost to paper-scale
// cost. The compressed detector head here runs ≈0.05 MFLOPs/frame with
// ≈3 KB of weights versus YOLOv3-tiny's 5.56 BFLOPs and 34 MB, so the
// two dimensions need different factors: with these values the tiny
// analogue lands at ≈5.8 BFLOPs / 31 MB and the deep analogue at
// ≈61 BFLOPs / 320 MB — the paper's Table II regime. The same factors
// apply to every model and device, so all ratios are preserved.
const (
	FLOPsScale = 1.2e5
	BytesScale = 1.0e4
)

// PowerMode is one operating point of a device (the TX2 NX exposes
// several; Fig. 11 sweeps them).
type PowerMode struct {
	Name string
	// BudgetW is the nominal input power of the mode.
	BudgetW float64
	// Cores is the number of active CPU cores.
	Cores int
	// GFLOPS is the effective compute throughput at this mode.
	GFLOPS float64
	// IdleW and ActiveW bound the power draw: idle when waiting,
	// active while computing.
	IdleW, ActiveW float64
}

// Profile describes one device (Table I).
type Profile struct {
	Name string
	// GPUMemoryMB bounds what the model cache may hold.
	GPUMemoryMB float64
	// IOBandwidthMBps is the flash→GPU transfer rate for model loads.
	IOBandwidthMBps float64
	// FrameworkInitMs is the one-time inference-engine initialization
	// charged on the very first model load (the dominant part of the
	// Fig. 4a first-frame spike).
	FrameworkInitMs float64
	// DispatchOverheadMs is the fixed per-inference cost (kernel
	// launch, pre/post-processing).
	DispatchOverheadMs float64
	// Modes lists the available power modes; Modes[DefaultMode] is
	// used unless a mode is selected explicitly.
	Modes       []PowerMode
	DefaultMode int
}

// The three platforms of Table I. Throughput, bandwidth and power figures
// are set so that the Table IV / Fig. 11 shapes reproduce: TX2 NX fastest,
// Nano slowest, laptop in between but with the most memory.
var (
	JetsonNano = Profile{
		Name:               "Jetson Nano",
		GPUMemoryMB:        2048,
		IOBandwidthMBps:    180,
		FrameworkInitMs:    900,
		DispatchOverheadMs: 2.5,
		Modes: []PowerMode{
			{Name: "10W", BudgetW: 10, Cores: 4, GFLOPS: 236, IdleW: 1.5, ActiveW: 9.0},
		},
	}
	JetsonTX2NX = Profile{
		Name:               "Jetson TX2 NX",
		GPUMemoryMB:        4096,
		IOBandwidthMBps:    400,
		FrameworkInitMs:    600,
		DispatchOverheadMs: 0.8,
		Modes: []PowerMode{
			{Name: "7.5W-2core", BudgetW: 7.5, Cores: 2, GFLOPS: 630, IdleW: 1.8, ActiveW: 7.0},
			{Name: "10W-4core", BudgetW: 10, Cores: 4, GFLOPS: 830, IdleW: 2.0, ActiveW: 9.3},
			{Name: "15W-4core", BudgetW: 15, Cores: 4, GFLOPS: 1060, IdleW: 2.2, ActiveW: 13.5},
			{Name: "20W-6core", BudgetW: 20, Cores: 6, GFLOPS: 1330, IdleW: 2.5, ActiveW: 17.8},
		},
		DefaultMode: 3,
	}
	Laptop = Profile{
		Name:               "Laptop (i7 + RTX 2070)",
		GPUMemoryMB:        8192,
		IOBandwidthMBps:    1500,
		FrameworkInitMs:    400,
		DispatchOverheadMs: 18, // desktop stacks pay far more per-call overhead
		Modes: []PowerMode{
			{Name: "AC", BudgetW: 180, Cores: 12, GFLOPS: 2100, IdleW: 25, ActiveW: 140},
		},
	}
)

// Profiles returns the three platforms in Table I order.
func Profiles() []Profile {
	return []Profile{JetsonNano, JetsonTX2NX, Laptop}
}

// ModelCost is what the simulator needs to know about a model.
type ModelCost struct {
	Name string
	// FLOPsPerInference is the unscaled per-frame cost of the
	// substitute model (Detector.FrameFLOPs or Network.FLOPs).
	FLOPsPerInference int64
	// WeightBytes is the unscaled serialized parameter size.
	WeightBytes int64
}

// ScaledFLOPs returns the paper-scale per-inference compute.
func (m ModelCost) ScaledFLOPs() float64 { return float64(m.FLOPsPerInference) * FLOPsScale }

// ScaledBytes returns the paper-scale model size in bytes.
func (m ModelCost) ScaledBytes() float64 { return float64(m.WeightBytes) * BytesScale }

// LoadMemoryMB returns the GPU memory consumed by holding the model's
// weights resident.
func (m ModelCost) LoadMemoryMB() float64 { return m.ScaledBytes() / (1 << 20) }

// ExecMemoryMB returns the working-set memory during inference: weights
// plus activation buffers, which the paper observes dominate (Table IV
// "Execution" column). The multiplier reflects hidden activations and
// framework workspace.
func (m ModelCost) ExecMemoryMB() float64 { return m.LoadMemoryMB()*3 + 450 }

// Simulator tracks simulated time, energy and memory for one device run.
// It is not safe for concurrent use.
type Simulator struct {
	profile Profile
	mode    PowerMode

	busy        time.Duration // time spent computing or loading
	idle        time.Duration // explicit idle time (waiting for frames)
	ioTime      time.Duration // background model-transfer time (overlapped)
	energyJ     float64
	inited      bool    // framework initialized (first load done)
	residentMB  float64 // loaded model memory
	inferences  int
	loads       int
	peakMemory  float64
	execBoostMB float64 // transient execution memory of the last inference

	// thermal, when non-nil, throttles compute under sustained load;
	// heat is its state (see thermal.go).
	thermal *ThermalModel
	heat    float64
}

// NewSimulator creates a simulator for profile at its default power mode.
func NewSimulator(profile Profile) *Simulator {
	return &Simulator{profile: profile, mode: profile.Modes[profile.DefaultMode]}
}

// NewSimulatorAtMode selects a specific power mode by index.
func NewSimulatorAtMode(profile Profile, mode int) (*Simulator, error) {
	if mode < 0 || mode >= len(profile.Modes) {
		return nil, fmt.Errorf("device: %s has no mode %d", profile.Name, mode)
	}
	return &Simulator{profile: profile, mode: profile.Modes[mode]}, nil
}

// Profile returns the simulated device profile.
func (s *Simulator) Profile() Profile { return s.profile }

// Mode returns the active power mode.
func (s *Simulator) Mode() PowerMode { return s.mode }

// Infer charges one inference of model and returns its simulated
// latency, lengthened by thermal throttling when a thermal model is
// attached and the device is hot.
func (s *Simulator) Infer(model ModelCost) time.Duration {
	throughput := s.mode.GFLOPS * 1e9 * s.ThrottleFactor()
	seconds := model.ScaledFLOPs()/throughput + s.profile.DispatchOverheadMs/1e3
	d := time.Duration(seconds * float64(time.Second))
	s.busy += d
	s.energyJ += s.mode.ActiveW * d.Seconds()
	s.advanceThermal(d, s.mode.ActiveW)
	s.inferences++
	s.execBoostMB = model.ExecMemoryMB() - model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// ioWatts returns the power drawn by a background model transfer: DMA
// from flash does not light up the compute units, so it sits well below
// ActiveW.
func (s *Simulator) ioWatts() float64 {
	return s.mode.IdleW + 0.3*(s.mode.ActiveW-s.mode.IdleW)
}

// LoadModelAsync charges a background model load (flash→GPU transfer):
// I/O energy and overlapped transfer time, with the weights resident when
// it completes. Background loads never block inference — this is the
// paper's miss path, where the best cached model serves the frame while
// the desired model streams in. Framework initialization, if still
// pending, is charged here too.
func (s *Simulator) LoadModelAsync(model ModelCost) time.Duration {
	seconds := model.ScaledBytes() / (s.profile.IOBandwidthMBps * (1 << 20))
	if !s.inited {
		seconds += s.profile.FrameworkInitMs / 1e3
		s.inited = true
	}
	d := time.Duration(seconds * float64(time.Second))
	s.ioTime += d
	s.energyJ += s.ioWatts() * d.Seconds()
	s.loads++
	s.residentMB += model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// LoadModel charges a blocking model load (flash→GPU transfer, plus
// framework initialization if this is the first load of the run) and
// marks the model's weights resident. It returns the simulated load
// latency. Use for cold starts that gate the first inference (Fig. 4a);
// steady-state cache refills use LoadModelAsync.
func (s *Simulator) LoadModel(model ModelCost) time.Duration {
	seconds := model.ScaledBytes() / (s.profile.IOBandwidthMBps * (1 << 20))
	if !s.inited {
		seconds += s.profile.FrameworkInitMs / 1e3
		s.inited = true
	}
	d := time.Duration(seconds * float64(time.Second))
	s.busy += d
	s.energyJ += s.mode.ActiveW * d.Seconds()
	s.loads++
	s.residentMB += model.LoadMemoryMB()
	if m := s.residentMB + s.execBoostMB; m > s.peakMemory {
		s.peakMemory = m
	}
	return d
}

// UnloadModel releases a model's resident weights (cache eviction).
func (s *Simulator) UnloadModel(model ModelCost) {
	s.residentMB -= model.LoadMemoryMB()
	if s.residentMB < 0 {
		s.residentMB = 0
	}
}

// Idle advances simulated wall-clock time without compute (e.g. waiting
// for the next camera frame), charging idle power.
func (s *Simulator) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	s.idle += d
	s.energyJ += s.mode.IdleW * d.Seconds()
	s.advanceThermal(d, s.mode.IdleW)
}

// Elapsed returns total simulated time (busy + idle).
func (s *Simulator) Elapsed() time.Duration { return s.busy + s.idle }

// BusyTime returns the simulated compute + load time.
func (s *Simulator) BusyTime() time.Duration { return s.busy }

// EnergyJ returns accumulated energy in joules.
func (s *Simulator) EnergyJ() float64 { return s.energyJ }

// AveragePowerW returns energy divided by elapsed time (0 when no time
// has passed).
func (s *Simulator) AveragePowerW() float64 {
	el := s.Elapsed().Seconds()
	if el == 0 {
		return 0
	}
	return s.energyJ / el
}

// FPS returns inferences per second of busy time (0 when idle).
func (s *Simulator) FPS() float64 {
	b := s.busy.Seconds()
	if b == 0 {
		return 0
	}
	return float64(s.inferences) / b
}

// Inferences and Loads report operation counts.
func (s *Simulator) Inferences() int { return s.inferences }

// Loads returns the number of model loads charged.
func (s *Simulator) Loads() int { return s.loads }

// ResidentMemoryMB returns the currently loaded model memory.
func (s *Simulator) ResidentMemoryMB() float64 { return s.residentMB }

// PeakMemoryMB returns the peak of resident + execution memory.
func (s *Simulator) PeakMemoryMB() float64 { return s.peakMemory }

// FitsInMemory reports whether adding a model would stay within the
// device's GPU memory, including execution headroom.
func (s *Simulator) FitsInMemory(model ModelCost) bool {
	return s.residentMB+model.ExecMemoryMB() <= s.profile.GPUMemoryMB
}

// Reset clears all counters but keeps the framework-initialized flag
// cleared too (a fresh process).
func (s *Simulator) Reset() {
	*s = Simulator{profile: s.profile, mode: s.mode}
}

// ResetCounters zeroes time, energy and operation counters while keeping
// the framework initialized and resident models loaded — the steady-state
// measurement boundary after a warm-up phase.
// ResetCounters keeps the thermal state: a warm device stays warm across
// the measurement boundary.
func (s *Simulator) ResetCounters() {
	s.busy, s.idle, s.ioTime = 0, 0, 0
	s.energyJ = 0
	s.inferences, s.loads = 0, 0
	s.peakMemory = s.residentMB + s.execBoostMB
}

// IOTime returns the accumulated background-transfer time.
func (s *Simulator) IOTime() time.Duration { return s.ioTime }
