package device

import "time"

// ThermalModel is an optional first-order thermal throttling model for a
// simulated device: the heat state rises toward the ratio of drawn power
// to the chassis' sustainable dissipation with a single RC time constant,
// and compute throughput derates once the state exceeds 1 (the thermal
// envelope). Passively cooled Jetson modules exhibit exactly this
// behavior under sustained load.
type ThermalModel struct {
	// SustainedW is the power the chassis can dissipate indefinitely.
	SustainedW float64
	// TimeConstant is the thermal RC constant (how quickly heat
	// follows power).
	TimeConstant time.Duration
	// MaxDerate is the maximum fractional throughput loss when fully
	// saturated (e.g. 0.4 = down to 60% of nominal GFLOPS).
	MaxDerate float64
}

// DefaultThermal returns a model resembling a passively cooled Jetson:
// ~7 W sustainable, a one-minute time constant, and up to 40% derating.
func DefaultThermal() *ThermalModel {
	return &ThermalModel{SustainedW: 7, TimeConstant: 60 * time.Second, MaxDerate: 0.4}
}

// EnableThermal attaches a thermal model to the simulator. Pass nil to
// disable (the default: experiments that do not study throttling stay
// unaffected).
func (s *Simulator) EnableThermal(m *ThermalModel) {
	s.thermal = m
	s.heat = 0
}

// Heat returns the current thermal state: <1 inside the envelope, >1
// throttling. Zero without a thermal model or before any activity.
func (s *Simulator) Heat() float64 { return s.heat }

// ThrottleFactor returns the current compute-throughput multiplier in
// (0, 1]; 1 when cool or when no thermal model is attached.
func (s *Simulator) ThrottleFactor() float64 {
	if s.thermal == nil || s.heat <= 1 {
		return 1
	}
	over := s.heat - 1
	if over > 1 {
		over = 1
	}
	return 1 - s.thermal.MaxDerate*over
}

// advanceThermal evolves the heat state over duration d at power p.
func (s *Simulator) advanceThermal(d time.Duration, p float64) {
	if s.thermal == nil || d <= 0 {
		return
	}
	target := p / s.thermal.SustainedW
	alpha := float64(d) / float64(s.thermal.TimeConstant)
	if alpha > 1 {
		alpha = 1
	}
	s.heat += (target - s.heat) * alpha
	if s.heat < 0 {
		s.heat = 0
	}
	// The state may exceed 2 transiently under extreme power; clamp so
	// ThrottleFactor's envelope math stays meaningful.
	if s.heat > 2 {
		s.heat = 2
	}
}
