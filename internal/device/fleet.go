package device

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anole/internal/xrand"
)

// This file models a heterogeneous device fleet: which profile (and power
// mode) each of N streams runs on. The paper's cross-scene claim is a
// fleet claim — many devices with different SoCs, memory ceilings and
// thermal envelopes — so the runtime assigns a device per stream instead
// of cloning one profile everywhere.

// Assignment binds one stream to a device profile and power mode. Class
// is the short registry name ("nano", "tx2", ...) plus the mode suffix
// when a non-default mode was requested; fleet-wide percentiles aggregate
// by it.
type Assignment struct {
	Class   string
	Profile Profile
	Mode    int
}

// Fleet is the per-stream device assignment: Fleet[i] is stream i's
// device. A nil/empty fleet means "unspecified" and callers fall back to
// a uniform single-profile fleet.
type Fleet []Assignment

// Validate checks every assignment: a valid profile and a mode index in
// range.
func (f Fleet) Validate() error {
	for i, a := range f {
		if err := a.Profile.Validate(); err != nil {
			return fmt.Errorf("fleet stream %d: %w", i, err)
		}
		if a.Mode < 0 || a.Mode >= len(a.Profile.Modes) {
			return fmt.Errorf("fleet stream %d: %s has no mode %d", i, a.Profile.Name, a.Mode)
		}
		if a.Class == "" {
			return fmt.Errorf("fleet stream %d: empty class", i)
		}
	}
	return nil
}

// Classes returns the distinct class names in the fleet, sorted.
func (f Fleet) Classes() []string {
	seen := map[string]bool{}
	for _, a := range f {
		seen[a.Class] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Counts returns how many streams each class holds.
func (f Fleet) Counts() map[string]int {
	out := map[string]int{}
	for _, a := range f {
		out[a.Class]++
	}
	return out
}

// MaxGPUMemoryMB returns the largest memory ceiling across the fleet
// (used to size shared caches; per-device ceilings are enforced by the
// planner at variant-selection time).
func (f Fleet) MaxGPUMemoryMB() float64 {
	max := 0.0
	for _, a := range f {
		if a.Profile.GPUMemoryMB > max {
			max = a.Profile.GPUMemoryMB
		}
	}
	return max
}

// UniformFleet assigns the same profile at its default mode to every
// stream — the compat shim for the old single-device configuration.
func UniformFleet(p Profile, streams int) Fleet {
	f := make(Fleet, streams)
	class := registryName(p)
	for i := range f {
		f[i] = Assignment{Class: class, Profile: p, Mode: p.DefaultMode}
	}
	return f
}

// registry maps short fleet-spec names to profiles. LookupProfile is the
// public accessor.
var registry = map[string]Profile{
	"nano":     JetsonNano,
	"tx2":      JetsonTX2NX,
	"laptop":   Laptop,
	"cpu-fast": CPUFast,
	"cpu-slow": CPUSlow,
}

// RegistryNames returns the short profile names a FleetSpec may use,
// sorted.
func RegistryNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LookupProfile resolves a short registry name ("nano", "tx2", "laptop",
// "cpu-fast", "cpu-slow") to its profile.
func LookupProfile(name string) (Profile, bool) {
	p, ok := registry[name]
	return p, ok
}

// registryName returns the short name of a known profile, or a sanitized
// form of its display name for profiles outside the registry.
func registryName(p Profile) string {
	for k, v := range registry {
		if v.Name == p.Name {
			return k
		}
	}
	return sanitizeClass(p.Name)
}

// sanitizeClass lowercases and squeezes a name into [a-z0-9_]+ so it can
// embed into a metric name (anole_fleet_<class>_...).
func sanitizeClass(s string) string {
	var b strings.Builder
	lastUnder := true // suppress leading underscore
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnder = false
		default:
			if !lastUnder {
				b.WriteByte('_')
				lastUnder = true
			}
		}
	}
	out := strings.TrimRight(b.String(), "_")
	if out == "" {
		return "device"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "d" + out
	}
	return out
}

// FleetEntry is one parsed term of a fleet spec: a profile, an optional
// power-mode override, and a relative weight.
type FleetEntry struct {
	Class   string
	Profile Profile
	Mode    int
	Weight  int
}

// FleetSpec is a parsed fleet composition.
type FleetSpec struct {
	Entries []FleetEntry
}

// ParseFleetSpec parses a composition string like "nano:40,tx2:40,laptop:20".
// Each term is <profile>[@mode]:<weight> where profile is a registry name,
// mode an optional power-mode index, and weight a positive integer share.
// Weights are relative — "nano:2,tx2:2,laptop:1" describes the same mix.
func ParseFleetSpec(spec string) (FleetSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return FleetSpec{}, fmt.Errorf("device: empty fleet spec")
	}
	var out FleetSpec
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			return FleetSpec{}, fmt.Errorf("device: empty term in fleet spec %q", spec)
		}
		name, weightStr, ok := strings.Cut(term, ":")
		if !ok {
			return FleetSpec{}, fmt.Errorf("device: fleet term %q missing :weight", term)
		}
		name = strings.TrimSpace(name)
		mode := -1 // default mode
		if base, modeStr, hasMode := strings.Cut(name, "@"); hasMode {
			m, err := strconv.Atoi(strings.TrimSpace(modeStr))
			if err != nil {
				return FleetSpec{}, fmt.Errorf("device: fleet term %q has malformed mode: %v", term, err)
			}
			name, mode = strings.TrimSpace(base), m
		}
		prof, ok := LookupProfile(name)
		if !ok {
			return FleetSpec{}, fmt.Errorf("device: unknown fleet profile %q (known: %s)",
				name, strings.Join(RegistryNames(), ", "))
		}
		class := name
		if mode < 0 {
			mode = prof.DefaultMode
		} else {
			if mode >= len(prof.Modes) {
				return FleetSpec{}, fmt.Errorf("device: %s has no mode %d", prof.Name, mode)
			}
			if mode != prof.DefaultMode {
				class = fmt.Sprintf("%s_m%d", name, mode)
			}
		}
		w, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil {
			return FleetSpec{}, fmt.Errorf("device: fleet term %q has malformed weight: %v", term, err)
		}
		if w <= 0 {
			return FleetSpec{}, fmt.Errorf("device: fleet term %q has non-positive weight %d", term, w)
		}
		out.Entries = append(out.Entries, FleetEntry{Class: class, Profile: prof, Mode: mode, Weight: w})
	}
	return out, nil
}

// Build deterministically assigns the spec's profiles to streams. Stream
// counts per class follow the weights by largest-remainder apportionment
// (every class with positive weight gets at least its rounded share, the
// total is exactly streams), and the class→stream placement is a seeded
// shuffle so neighbouring stream IDs don't all share a device class. The
// same (spec, streams, seed) always yields the same fleet.
func (s FleetSpec) Build(streams int, seed uint64) (Fleet, error) {
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("device: empty fleet spec")
	}
	if streams <= 0 {
		return nil, fmt.Errorf("device: fleet needs a positive stream count, got %d", streams)
	}
	total := 0
	for _, e := range s.Entries {
		total += e.Weight
	}
	// Largest-remainder apportionment: floor everyone, then hand the
	// leftover streams to the largest fractional remainders (ties broken
	// by entry order for determinism).
	counts := make([]int, len(s.Entries))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(s.Entries))
	assigned := 0
	for i, e := range s.Entries {
		exact := float64(streams) * float64(e.Weight) / float64(total)
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < streams; k++ {
		counts[rems[k%len(rems)].idx]++
		assigned++
	}
	fleet := make(Fleet, 0, streams)
	for i, e := range s.Entries {
		for n := 0; n < counts[i]; n++ {
			fleet = append(fleet, Assignment{Class: e.Class, Profile: e.Profile, Mode: e.Mode})
		}
	}
	rng := xrand.NewLabeled(seed, "device-fleet")
	rng.Shuffle(len(fleet), func(a, b int) { fleet[a], fleet[b] = fleet[b], fleet[a] })
	return fleet, nil
}

// BuildFleet parses spec and builds a fleet in one step.
func BuildFleet(spec string, streams int, seed uint64) (Fleet, error) {
	s, err := ParseFleetSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(streams, seed)
}
