package device

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{JetsonNano, JetsonTX2NX, Laptop, CPUFast, CPUSlow} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"no modes", func(p *Profile) { p.Modes = nil }},
		{"default mode out of range", func(p *Profile) { p.DefaultMode = 9 }},
		{"negative default mode", func(p *Profile) { p.DefaultMode = -1 }},
		{"zero memory", func(p *Profile) { p.GPUMemoryMB = 0 }},
		{"zero bandwidth", func(p *Profile) { p.IOBandwidthMBps = 0 }},
		{"negative init", func(p *Profile) { p.FrameworkInitMs = -1 }},
		{"negative battery", func(p *Profile) { p.BatteryWh = -1 }},
		{"zero throughput", func(p *Profile) { p.Modes[0].GFLOPS = 0 }},
		{"zero budget", func(p *Profile) { p.Modes[0].BudgetW = 0 }},
		{"active below idle", func(p *Profile) { p.Modes[0].ActiveW = p.Modes[0].IdleW - 1 }},
		{"negative idle", func(p *Profile) { p.Modes[0].IdleW = -1 }},
	}
	for _, tc := range cases {
		p := JetsonNano
		p.Modes = append([]PowerMode(nil), JetsonNano.Modes...)
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the broken profile", tc.name)
		}
		if _, err := NewSimulator(p); err == nil {
			t.Errorf("%s: NewSimulator accepted the broken profile", tc.name)
		}
		if len(p.Modes) > 0 {
			if _, err := NewSimulatorAtMode(p, 0); err == nil {
				t.Errorf("%s: NewSimulatorAtMode accepted the broken profile", tc.name)
			}
		}
	}
}

// Mode switches must keep energy monotone, attribute idle vs active
// wattage to the mode in force at the time, and keep the throttle factor
// bounded throughout.
func TestSimulatorModeSwitchEnergyAccounting(t *testing.T) {
	s, err := NewSimulatorAtMode(JetsonTX2NX, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableThermal(DefaultThermal())

	var prevEnergy float64
	check := func(stage string) {
		if s.EnergyJ() < prevEnergy {
			t.Fatalf("%s: energy went backwards: %v -> %v", stage, prevEnergy, s.EnergyJ())
		}
		prevEnergy = s.EnergyJ()
		if tf := s.ThrottleFactor(); tf <= 0 || tf > 1 {
			t.Fatalf("%s: throttle factor %v outside (0,1]", stage, tf)
		}
	}

	// Active work at the low mode charges that mode's ActiveW.
	lat := s.Infer(deepModel)
	check("low-mode infer")
	wantJ := JetsonTX2NX.Modes[0].ActiveW * lat.Seconds()
	if math.Abs(s.EnergyJ()-wantJ) > 1e-9 {
		t.Fatalf("low-mode infer charged %vJ, want %vJ", s.EnergyJ(), wantJ)
	}

	// Idle at the low mode charges IdleW, not ActiveW.
	before := s.EnergyJ()
	s.Idle(time.Second)
	check("low-mode idle")
	idleJ := s.EnergyJ() - before
	if math.Abs(idleJ-JetsonTX2NX.Modes[0].IdleW) > 1e-9 {
		t.Fatalf("idle second charged %vJ, want IdleW %v", idleJ, JetsonTX2NX.Modes[0].IdleW)
	}

	// Switch up: counters and thermal state survive, wattage changes.
	heatBefore := s.Heat()
	if err := s.SetMode(3); err != nil {
		t.Fatal(err)
	}
	if s.ModeIndex() != 3 || s.Mode().Name != JetsonTX2NX.Modes[3].Name {
		t.Fatal("SetMode did not take")
	}
	if s.Heat() != heatBefore {
		t.Fatal("SetMode disturbed thermal state")
	}
	if s.EnergyJ() != prevEnergy {
		t.Fatal("SetMode itself charged energy")
	}

	// The high mode is faster per inference and charges its own ActiveW.
	before = s.EnergyJ()
	latHigh := s.Infer(deepModel)
	check("high-mode infer")
	if latHigh >= lat {
		t.Fatalf("high mode (%v) not faster than low mode (%v)", latHigh, lat)
	}
	gotW := (s.EnergyJ() - before) / latHigh.Seconds()
	if math.Abs(gotW-JetsonTX2NX.Modes[3].ActiveW) > 1e-9 {
		t.Fatalf("high-mode infer drew %vW, want ActiveW %v", gotW, JetsonTX2NX.Modes[3].ActiveW)
	}

	// Sustained high-mode load heats the device; throttle stays bounded
	// and energy stays monotone all the way through.
	for i := 0; i < 2000; i++ {
		s.Infer(deepModel)
		check("sustained load")
	}
	if s.ThrottleFactor() >= 1 {
		t.Fatal("sustained 20W load did not throttle")
	}
	// Dropping back to the low mode cools the device (2.8W active is
	// below the 7W sustainable envelope).
	if err := s.SetMode(0); err != nil {
		t.Fatal(err)
	}
	hot := s.Heat()
	s.Idle(10 * time.Minute)
	check("cooldown idle")
	if s.Heat() >= hot {
		t.Fatal("idling at the low mode did not cool the device")
	}

	if err := s.SetMode(17); err == nil {
		t.Fatal("SetMode accepted an out-of-range mode")
	}
}

func TestQuantSpeedup(t *testing.T) {
	if QuantSpeedup(0) != 1 || QuantSpeedup(64) != 1 || QuantSpeedup(-3) != 1 {
		t.Fatal("full precision must run at 1x")
	}
	prev := 1.0
	for _, bits := range []int{16, 8, 6, 4, 2} {
		sp := QuantSpeedup(bits)
		if sp <= prev {
			t.Fatalf("speedup not increasing as bits shrink: %d-bit %v <= %v", bits, sp, prev)
		}
		if sp > 2 {
			t.Fatalf("%d-bit speedup %v implausibly large", bits, sp)
		}
		prev = sp
	}
	// The simulator actually applies it: same FLOPs, fewer bits, less time.
	s := mustSim(t, JetsonTX2NX)
	fp := s.Infer(deepModel)
	q := deepModel
	q.QuantBits = 8
	if got := s.Infer(q); got >= fp {
		t.Fatalf("8-bit inference %v not faster than fp32 %v", got, fp)
	}
}

func TestParseFleetSpec(t *testing.T) {
	spec, err := ParseFleetSpec("nano:40, tx2:40,laptop:20")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Entries) != 3 {
		t.Fatalf("entries = %d", len(spec.Entries))
	}
	if spec.Entries[0].Class != "nano" || spec.Entries[0].Weight != 40 {
		t.Fatalf("first entry = %+v", spec.Entries[0])
	}
	if spec.Entries[1].Mode != JetsonTX2NX.DefaultMode {
		t.Fatal("default mode not applied")
	}

	// Mode override renames the class; selecting the default mode
	// explicitly keeps the plain name.
	spec, err = ParseFleetSpec("tx2@1:1,tx2@3:1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Entries[0].Class != "tx2_m1" || spec.Entries[0].Mode != 1 {
		t.Fatalf("mode-override entry = %+v", spec.Entries[0])
	}
	if spec.Entries[1].Class != "tx2" {
		t.Fatalf("default-mode override should keep the plain class, got %q", spec.Entries[1].Class)
	}

	for _, bad := range []string{
		"", "  ", ",", "nano", "nano:", "nano:0", "nano:-3", "nano:x",
		"warp9:10", "nano:10,,tx2:5", "tx2@9:1", "tx2@x:1", "nano:40;tx2:60",
	} {
		if _, err := ParseFleetSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFleetBuildDeterministicAndProportional(t *testing.T) {
	spec, err := ParseFleetSpec("nano:40,tx2:40,laptop:20")
	if err != nil {
		t.Fatal(err)
	}
	for _, streams := range []int{1, 3, 10, 100, 101} {
		a, err := spec.Build(streams, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != streams {
			t.Fatalf("streams=%d: built %d assignments", streams, len(a))
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build(streams, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("streams=%d: same seed produced different fleets", streams)
		}
		// Proportions match weights within rounding: each class's count
		// is within 1 of its exact share.
		counts := a.Counts()
		for class, weight := range map[string]int{"nano": 40, "tx2": 40, "laptop": 20} {
			exact := float64(streams) * float64(weight) / 100
			if d := math.Abs(float64(counts[class]) - exact); d >= 1 {
				t.Fatalf("streams=%d class %s: count %d vs exact share %v", streams, class, counts[class], exact)
			}
		}
	}
	// Different seeds may place classes differently but keep the counts.
	a, _ := spec.Build(100, 1)
	b, _ := spec.Build(100, 2)
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatal("seed changed the apportionment, not just the placement")
	}
}

func TestUniformFleet(t *testing.T) {
	f := UniformFleet(JetsonTX2NX, 4)
	if len(f) != 4 {
		t.Fatalf("len = %d", len(f))
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range f {
		if a.Class != "tx2" || a.Mode != JetsonTX2NX.DefaultMode {
			t.Fatalf("assignment = %+v", a)
		}
	}
	if got := f.MaxGPUMemoryMB(); got != JetsonTX2NX.GPUMemoryMB {
		t.Fatalf("MaxGPUMemoryMB = %v", got)
	}
	if cs := f.Classes(); len(cs) != 1 || cs[0] != "tx2" {
		t.Fatalf("classes = %v", cs)
	}
}

func TestSanitizeClass(t *testing.T) {
	cases := map[string]string{
		"Jetson TX2 NX":          "jetson_tx2_nx",
		"CPU (fast)":             "cpu_fast",
		"Laptop (i7 + RTX 2070)": "laptop_i7_rtx_2070",
		"  ":                     "device",
		"2070":                   "d2070",
	}
	for in, want := range cases {
		if got := sanitizeClass(in); got != want {
			t.Errorf("sanitizeClass(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzParseFleetSpec: the parser must never panic, and anything it
// accepts must build a valid fleet with exactly the requested streams.
func FuzzParseFleetSpec(f *testing.F) {
	f.Add("nano:40,tx2:40,laptop:20")
	f.Add("tx2@1:3,cpu-slow:7")
	f.Add("")
	f.Add("nano:-1")
	f.Add("nano:99999999999999999999")
	f.Add("unknown:5")
	f.Add("nano@:1")
	f.Add(",,,")
	f.Add("nano:1,nano:1,nano:1")
	f.Fuzz(func(t *testing.T, spec string) {
		parsed, err := ParseFleetSpec(spec)
		if err != nil {
			return
		}
		if len(parsed.Entries) == 0 {
			t.Fatalf("spec %q parsed to zero entries without error", spec)
		}
		fleet, err := parsed.Build(17, 7)
		if err != nil {
			t.Fatalf("spec %q parsed but did not build: %v", spec, err)
		}
		if len(fleet) != 17 {
			t.Fatalf("spec %q built %d assignments, want 17", spec, len(fleet))
		}
		if err := fleet.Validate(); err != nil {
			t.Fatalf("spec %q built an invalid fleet: %v", spec, err)
		}
		for _, a := range fleet {
			if strings.ContainsAny(a.Class, " \t\n:,@") {
				t.Fatalf("class %q contains separator characters", a.Class)
			}
		}
	})
}
