package device

import (
	"testing"
	"time"
)

// tinyModel and deepModel mirror the real substitute detectors: ~48k
// FLOPs/frame and ~3 KB of weights for the compressed head, ~10x both for
// the deep one (≈5.8 vs 61 BFLOPs at paper scale).
var tinyModel = ModelCost{Name: "tiny", FLOPsPerInference: 48_000, WeightBytes: 3_100}

var deepModel = ModelCost{Name: "deep", FLOPsPerInference: 510_000, WeightBytes: 32_000}

// mustSim builds a simulator for a known-valid profile.
func mustSim(t *testing.T, p Profile) *Simulator {
	t.Helper()
	s, err := NewSimulator(p)
	if err != nil {
		t.Fatalf("NewSimulator(%s): %v", p.Name, err)
	}
	return s
}

func TestProfilesOrdering(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	if ps[0].Name != JetsonNano.Name || ps[2].Name != Laptop.Name {
		t.Fatal("profile order wrong")
	}
	for _, p := range ps {
		if len(p.Modes) == 0 {
			t.Fatalf("%s has no power modes", p.Name)
		}
		if p.DefaultMode < 0 || p.DefaultMode >= len(p.Modes) {
			t.Fatalf("%s default mode out of range", p.Name)
		}
	}
}

func TestInferLatencyOrdering(t *testing.T) {
	// Table IV shape: TX2 NX fastest, Nano slowest for the same model.
	nano := mustSim(t, JetsonNano)
	tx2 := mustSim(t, JetsonTX2NX)
	lat := map[string]time.Duration{
		"nano": nano.Infer(tinyModel),
		"tx2":  tx2.Infer(tinyModel),
	}
	if lat["tx2"] >= lat["nano"] {
		t.Fatalf("TX2 (%v) should beat Nano (%v)", lat["tx2"], lat["nano"])
	}
}

func TestDeepSlowerThanTiny(t *testing.T) {
	for _, p := range Profiles() {
		s := mustSim(t, p)
		tiny := s.Infer(tinyModel)
		deep := s.Infer(deepModel)
		if deep <= tiny {
			t.Fatalf("%s: deep %v not slower than tiny %v", p.Name, deep, tiny)
		}
	}
}

func TestTinyLatencyMagnitude(t *testing.T) {
	// With FLOPsScale the tiny detector should land in the paper's
	// regime: ~1-60 ms on Jetson-class devices.
	s := mustSim(t, JetsonTX2NX)
	lat := s.Infer(tinyModel)
	if lat < time.Millisecond || lat > 100*time.Millisecond {
		t.Fatalf("tiny latency on TX2 = %v, want milliseconds", lat)
	}
}

func TestFirstLoadPaysFrameworkInit(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	first := s.LoadModel(tinyModel)
	second := s.LoadModel(tinyModel)
	if first <= second {
		t.Fatalf("first load %v should exceed subsequent load %v", first, second)
	}
	diff := (first - second).Seconds() * 1e3
	if diff < JetsonTX2NX.FrameworkInitMs*0.9 {
		t.Fatalf("framework init not charged: delta %vms", diff)
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := mustSim(t, JetsonNano)
	if s.ResidentMemoryMB() != 0 {
		t.Fatal("fresh simulator has resident memory")
	}
	s.LoadModel(tinyModel)
	if s.ResidentMemoryMB() <= 0 {
		t.Fatal("load did not account memory")
	}
	before := s.ResidentMemoryMB()
	s.LoadModel(deepModel)
	s.UnloadModel(deepModel)
	if s.ResidentMemoryMB() != before {
		t.Fatalf("unload did not restore memory: %v vs %v", s.ResidentMemoryMB(), before)
	}
	s.UnloadModel(deepModel) // extra unload must clamp at 0, not go negative
	s.UnloadModel(tinyModel)
	s.UnloadModel(tinyModel)
	if s.ResidentMemoryMB() < 0 {
		t.Fatal("resident memory went negative")
	}
}

func TestPeakMemoryIncludesExecution(t *testing.T) {
	s := mustSim(t, JetsonNano)
	s.LoadModel(tinyModel)
	s.Infer(tinyModel)
	if s.PeakMemoryMB() <= s.ResidentMemoryMB() {
		t.Fatal("peak memory should include execution working set")
	}
}

func TestFitsInMemory(t *testing.T) {
	s := mustSim(t, JetsonNano)
	if !s.FitsInMemory(tinyModel) {
		t.Fatal("tiny model should fit on Nano")
	}
	huge := ModelCost{Name: "huge", FLOPsPerInference: 1, WeightBytes: 1 << 30}
	if s.FitsInMemory(huge) {
		t.Fatal("oversized model reported as fitting")
	}
}

func TestEnergyAndPower(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	if s.AveragePowerW() != 0 {
		t.Fatal("no-time power should be 0")
	}
	s.Infer(deepModel)
	if s.EnergyJ() <= 0 {
		t.Fatal("inference consumed no energy")
	}
	p := s.AveragePowerW()
	mode := s.Mode()
	if p <= 0 || p > mode.ActiveW+1e-9 {
		t.Fatalf("average power %v outside (0, %v]", p, mode.ActiveW)
	}
	// Idling lowers average power toward idle draw.
	s.Idle(10 * time.Second)
	if s.AveragePowerW() >= p {
		t.Fatal("idling should lower average power")
	}
	s.Idle(-time.Second) // no-op
}

func TestPowerModesSweep(t *testing.T) {
	// Fig. 11 shape: higher power modes are faster (higher FPS) and
	// draw more power.
	var prevLat time.Duration
	var prevPower float64
	for i := range JetsonTX2NX.Modes {
		s, err := NewSimulatorAtMode(JetsonTX2NX, i)
		if err != nil {
			t.Fatal(err)
		}
		lat := s.Infer(tinyModel)
		if i > 0 {
			if lat >= prevLat {
				t.Fatalf("mode %d latency %v not below mode %d's %v", i, lat, i-1, prevLat)
			}
			if s.AveragePowerW() <= prevPower {
				t.Fatalf("mode %d power not above mode %d", i, i-1)
			}
		}
		prevLat = lat
		prevPower = s.AveragePowerW()
	}
}

func TestNewSimulatorAtModeValidation(t *testing.T) {
	if _, err := NewSimulatorAtMode(JetsonNano, 5); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if _, err := NewSimulatorAtMode(JetsonNano, -1); err == nil {
		t.Fatal("negative mode accepted")
	}
}

func TestFPS(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	if s.FPS() != 0 {
		t.Fatal("fresh FPS should be 0")
	}
	for i := 0; i < 30; i++ {
		s.Infer(tinyModel)
	}
	fps := s.FPS()
	if fps <= 0 {
		t.Fatalf("fps = %v", fps)
	}
	// Paper: TX2 NX at 20W runs Anole's compressed models above 30 FPS.
	if fps < 30 {
		t.Fatalf("TX2 tiny-model FPS = %v, want > 30", fps)
	}
}

func TestCountersAndReset(t *testing.T) {
	s := mustSim(t, JetsonNano)
	s.Infer(tinyModel)
	s.LoadModel(tinyModel)
	if s.Inferences() != 1 || s.Loads() != 1 {
		t.Fatalf("counters: %d, %d", s.Inferences(), s.Loads())
	}
	if s.BusyTime() <= 0 || s.Elapsed() <= 0 {
		t.Fatal("time not accumulated")
	}
	s.Reset()
	if s.Inferences() != 0 || s.EnergyJ() != 0 || s.ResidentMemoryMB() != 0 {
		t.Fatal("reset incomplete")
	}
	// After reset, framework init must be charged again.
	first := s.LoadModel(tinyModel)
	if first.Seconds()*1e3 < JetsonNano.FrameworkInitMs*0.9 {
		t.Fatal("framework init not re-charged after reset")
	}
}

func TestModelCostScaling(t *testing.T) {
	if tinyModel.ScaledFLOPs() != float64(tinyModel.FLOPsPerInference)*FLOPsScale {
		t.Fatal("flop scaling wrong")
	}
	if tinyModel.ScaledBytes() != float64(tinyModel.WeightBytes)*BytesScale {
		t.Fatal("byte scaling wrong")
	}
	if tinyModel.LoadMemoryMB() <= 0 || tinyModel.ExecMemoryMB() <= tinyModel.LoadMemoryMB() {
		t.Fatal("memory model wrong")
	}
}

func TestLoadLatencyProportionalToSize(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	s.LoadModel(tinyModel) // absorb framework init
	small := s.LoadModel(tinyModel)
	big := s.LoadModel(deepModel)
	if big <= small {
		t.Fatalf("bigger model should load slower: %v vs %v", big, small)
	}
}

func TestThermalThrottlingUnderSustainedLoad(t *testing.T) {
	hot := mustSim(t, JetsonTX2NX) // 20W mode, ActiveW 17.8 >> sustainable 7W
	hot.EnableThermal(DefaultThermal())
	cold := mustSim(t, JetsonTX2NX)

	first := hot.Infer(deepModel)
	if first != cold.Infer(deepModel) {
		t.Fatal("cool device must match the unthrottled one")
	}
	// Sustain heavy load well past the time constant.
	var last time.Duration
	for i := 0; i < 3000; i++ {
		last = hot.Infer(deepModel)
	}
	if hot.Heat() <= 1 {
		t.Fatalf("sustained load did not exceed the envelope: heat %v", hot.Heat())
	}
	if hot.ThrottleFactor() >= 1 {
		t.Fatal("no throttling applied")
	}
	if last <= first {
		t.Fatalf("throttled inference %v not slower than cold %v", last, first)
	}
	// Idling cools the device back down.
	hot.Idle(10 * time.Minute)
	if hot.ThrottleFactor() < 1 {
		t.Fatalf("device did not cool: heat %v", hot.Heat())
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	for i := 0; i < 500; i++ {
		s.Infer(deepModel)
	}
	if s.ThrottleFactor() != 1 || s.Heat() != 0 {
		t.Fatal("thermal model must be opt-in")
	}
}

func TestThermalLightLoadStaysCool(t *testing.T) {
	s := mustSim(t, JetsonTX2NX)
	s.EnableThermal(DefaultThermal())
	// 30 FPS duty cycle with the tiny model: mostly idle.
	for i := 0; i < 2000; i++ {
		lat := s.Infer(tinyModel)
		s.Idle(33*time.Millisecond - lat)
	}
	if s.ThrottleFactor() < 1 {
		t.Fatalf("light duty cycle throttled: heat %v", s.Heat())
	}
}
