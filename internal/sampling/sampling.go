// Package sampling implements the paper's Adaptive Scene Sampling (ASS,
// §IV-B): building a balanced decision-model training set {Ψᵢ^sub} from
// the compressed models' training pools {Γᵢ} via Thompson sampling over
// per-pool Beta posteriors, with the closed-form "well sampled" stopping
// bound, plus the random-sampling baseline the paper contrasts in Fig. 3.
package sampling

import (
	"fmt"
	"math"

	"anole/internal/detect"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// Pool is one compressed model's training pool Γᵢ.
type Pool struct {
	// ModelIdx is the index of the model the pool belongs to.
	ModelIdx int
	// Frames is the pool content (the training frames of the model's
	// cluster scenes).
	Frames []*synth.Frame
}

// LabeledFrame is one decision-model training sample: a frame that model
// ModelIdx predicts accurately, with the observed per-frame F1. Because
// multi-level clustering gives every frame several containing pools, the
// same frame can be accepted for several models; downstream training uses
// F1 to resolve the ambiguity toward the best-fit model.
type LabeledFrame struct {
	Frame    *synth.Frame
	ModelIdx int
	F1       float64
}

// Config controls a sampling run. Zero values select defaults.
type Config struct {
	// Kappa is the number of accepted probes (distinct labeled frames)
	// to collect (default 512).
	Kappa int
	// Theta is the well-sampled confidence θ (default 0.95).
	Theta float64
	// AcceptF1 is the per-frame F1 at or above which a model is deemed
	// accurate on a sample (default 0.5).
	AcceptF1 float64
	// MaxRounds bounds the sampling loop regardless of progress
	// (default 50·Kappa).
	MaxRounds int
	// RNG is required for determinism.
	RNG *xrand.RNG
}

func (c *Config) setDefaults() {
	if c.Kappa <= 0 {
		c.Kappa = 512
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		c.Theta = 0.95
	}
	if c.AcceptF1 <= 0 {
		c.AcceptF1 = 0.5
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 50 * c.Kappa
	}
	if c.RNG == nil {
		c.RNG = xrand.New(0)
	}
}

// Result reports a sampling run: the accepted labeled samples (the
// Ψᵢ^sub content), the per-pool selection counts |Sᵢ| (the quantity
// plotted in Fig. 3 and tested against the well-sampled bound), and how
// many rounds were spent.
type Result struct {
	Samples []LabeledFrame
	Counts  []int
	Rounds  int
}

// AcceptedPerModel returns how many accepted samples each model
// contributed to Ψ^sub.
func (r Result) AcceptedPerModel(n int) []int {
	out := make([]int, n)
	for _, s := range r.Samples {
		if s.ModelIdx >= 0 && s.ModelIdx < n {
			out[s.ModelIdx]++
		}
	}
	return out
}

// NormalizedCounts returns Counts scaled so the maximum is 1, the exact
// form of Fig. 3's y-axis.
func (r Result) NormalizedCounts() []float64 {
	out := make([]float64, len(r.Counts))
	var max int
	for _, c := range r.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return out
	}
	for i, c := range r.Counts {
		out[i] = float64(c) / float64(max)
	}
	return out
}

// WellSampledBound returns the sample count above which a pool of
// gammaSize elements is considered well sampled with confidence theta:
//
//	|Sᵢ| > log(1 − θ^(1/|Γᵢ|)) / log(1 − 1/|Γᵢ|)
//
// (paper §IV-B). Degenerate pool sizes return 0.
func WellSampledBound(gammaSize int, theta float64) float64 {
	if gammaSize <= 1 || theta <= 0 || theta >= 1 {
		return 0
	}
	g := float64(gammaSize)
	num := math.Log(1 - math.Pow(theta, 1/g))
	den := math.Log(1 - 1/g)
	return num / den
}

// Adaptive runs the paper's Thompson-sampling ASS. Each round it skips
// pools that are already well sampled, draws a sampling probability
// pᵢ ~ Beta(αᵢ, βᵢ) for the rest, probes one frame from the pool with the
// highest draw, and tests the pool's model on the frame: accurate frames
// join Ψᵢ^sub. The loop stops after Kappa accepted samples, when every
// pool is well sampled, or at MaxRounds.
//
// Interpretation note: the paper's text increments the sampled pool's α,
// which in isolation concentrates sampling on one pool — the opposite of
// the balance the section (and Fig. 3b) demonstrates. We implement the
// update that realizes the stated goal: the probed pool's β grows and
// every other pool's α grows, so under-sampled pools rise in probability
// and the selection counts equalize. EXPERIMENTS.md records this
// deviation.
func Adaptive(models []*detect.Detector, pools []Pool, cfg Config) (Result, error) {
	if err := validate(models, pools); err != nil {
		return Result{}, err
	}
	cfg.setDefaults()

	n := len(pools)
	alpha := make([]float64, n)
	beta := make([]float64, n)
	for i := range alpha {
		alpha[i], beta[i] = 1, 1
	}
	bounds := make([]float64, n)
	for i, p := range pools {
		bounds[i] = WellSampledBound(len(p.Frames), cfg.Theta)
	}

	res := Result{Counts: make([]int, n)}
	accepted := 0
	for res.Rounds = 0; res.Rounds < cfg.MaxRounds && accepted < cfg.Kappa; res.Rounds++ {
		best, bestDraw := -1, -1.0
		for i := range pools {
			if float64(res.Counts[i]) > bounds[i] {
				continue // well sampled; drop out of contention
			}
			if draw := cfg.RNG.Beta(alpha[i], beta[i]); draw > bestDraw {
				best, bestDraw = i, draw
			}
		}
		if best < 0 {
			break // every pool is well sampled
		}
		pool := pools[best]
		frame := pool.Frames[cfg.RNG.Intn(len(pool.Frames))]
		res.Counts[best]++
		if labels := acceptedLabels(models, pool.ModelIdx, frame, cfg.AcceptF1); len(labels) > 0 {
			res.Samples = append(res.Samples, labels...)
			accepted++
		}
		for i := range pools {
			if i == best {
				beta[i]++
			} else {
				alpha[i]++
			}
		}
	}
	return res, nil
}

// Random is the baseline sampler: each round picks a pool with
// probability proportional to its size (equivalent to drawing a frame
// uniformly from the union of pools), tests the pool's model, and keeps
// accurate samples. It produces the unbalanced Ψ^sub distribution of
// Fig. 3(a).
func Random(models []*detect.Detector, pools []Pool, cfg Config) (Result, error) {
	if err := validate(models, pools); err != nil {
		return Result{}, err
	}
	cfg.setDefaults()

	weights := make([]float64, len(pools))
	for i, p := range pools {
		weights[i] = float64(len(p.Frames))
	}
	res := Result{Counts: make([]int, len(pools))}
	accepted := 0
	for res.Rounds = 0; res.Rounds < cfg.MaxRounds && accepted < cfg.Kappa; res.Rounds++ {
		i := cfg.RNG.Categorical(weights)
		pool := pools[i]
		frame := pool.Frames[cfg.RNG.Intn(len(pool.Frames))]
		res.Counts[i]++
		if labels := acceptedLabels(models, pool.ModelIdx, frame, cfg.AcceptF1); len(labels) > 0 {
			res.Samples = append(res.Samples, labels...)
			accepted++
		}
	}
	return res, nil
}

// acceptedLabels implements the Ψ^sub membership test for one probed
// frame: the probing pool's model must be accurate (F1 ≥ accept) for the
// probe to be accepted at all; an accepted frame is then scored by every
// model, joining Ψ_j^sub for each accurate model j. The multi-label form
// is what the paper's allocation vector v^x encodes, and it lets decision
// training resolve each frame to its best-fit model.
func acceptedLabels(models []*detect.Detector, poolModel int, frame *synth.Frame, accept float64) []LabeledFrame {
	if models[poolModel].EvaluateFrame(frame).F1 < accept {
		return nil
	}
	var out []LabeledFrame
	for j, det := range models {
		if f1 := det.EvaluateFrame(frame).F1; f1 >= accept {
			out = append(out, LabeledFrame{Frame: frame, ModelIdx: j, F1: f1})
		}
	}
	return out
}

func validate(models []*detect.Detector, pools []Pool) error {
	if len(pools) == 0 {
		return fmt.Errorf("sampling: no pools")
	}
	for _, p := range pools {
		if p.ModelIdx < 0 || p.ModelIdx >= len(models) {
			return fmt.Errorf("sampling: pool references model %d of %d", p.ModelIdx, len(models))
		}
		if len(p.Frames) == 0 {
			return fmt.Errorf("sampling: pool for model %d is empty", p.ModelIdx)
		}
	}
	return nil
}
