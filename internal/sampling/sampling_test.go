package sampling

import (
	"testing"

	"anole/internal/detect"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// fixture builds two scene-specialist detectors with pools of very
// different sizes, so balance effects are visible.
type fixture struct {
	models []*detect.Detector
	pools  []Pool
}

func buildFixture(t *testing.T, seed uint64, sizeA, sizeB int) fixture {
	t.Helper()
	w, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed + 1)
	sceneA := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	sceneB := synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Night}

	gen := func(s synth.Scene, n int) []*synth.Frame {
		frames := make([]*synth.Frame, n)
		for i := range frames {
			frames[i] = w.GenerateFrame(s, 1.2, rng)
		}
		return frames
	}
	poolA := gen(sceneA, sizeA)
	poolB := gen(sceneB, sizeB)

	mkDet := func(name string, frames []*synth.Frame) *detect.Detector {
		d := detect.NewDetector(name, detect.Compressed, 8, rng)
		if err := d.Train(frames, nil, detect.TrainConfig{Epochs: 10, RNG: rng}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	return fixture{
		models: []*detect.Detector{mkDet("A", poolA), mkDet("B", poolB)},
		pools: []Pool{
			{ModelIdx: 0, Frames: poolA},
			{ModelIdx: 1, Frames: poolB},
		},
	}
}

func TestWellSampledBound(t *testing.T) {
	// The bound is the coupon-collector-style count needed to have seen
	// the pool with confidence theta; it grows with pool size and with
	// theta.
	b100 := WellSampledBound(100, 0.95)
	b1000 := WellSampledBound(1000, 0.95)
	if b100 <= 0 || b1000 <= b100 {
		t.Fatalf("bounds: %v, %v", b100, b1000)
	}
	if WellSampledBound(100, 0.99) <= b100 {
		t.Fatal("higher confidence should need more samples")
	}
	// n·ln(n) scale sanity: for n=100, θ=0.95 the bound is a few
	// hundred.
	if b100 < 100 || b100 > 2000 {
		t.Fatalf("bound(100, .95) = %v, implausible", b100)
	}
}

func TestWellSampledBoundDegenerate(t *testing.T) {
	if WellSampledBound(0, 0.95) != 0 || WellSampledBound(1, 0.95) != 0 {
		t.Fatal("degenerate sizes should give 0")
	}
	if WellSampledBound(10, 0) != 0 || WellSampledBound(10, 1) != 0 {
		t.Fatal("degenerate theta should give 0")
	}
}

func TestAdaptiveBalancesPools(t *testing.T) {
	fx := buildFixture(t, 100, 400, 40) // 10x size imbalance
	cfg := Config{Kappa: 200, RNG: xrand.New(101)}
	adaptive, err := Adaptive(fx.models, fx.pools, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Random(fx.models, fx.pools, Config{Kappa: 200, RNG: xrand.New(102)})
	if err != nil {
		t.Fatal(err)
	}
	giniA := stats.Gini(toFloat(adaptive.Counts))
	giniR := stats.Gini(toFloat(random.Counts))
	if giniA >= giniR {
		t.Fatalf("adaptive Gini %v not below random %v (counts %v vs %v)",
			giniA, giniR, adaptive.Counts, random.Counts)
	}
}

func TestRandomFollowsPoolSizes(t *testing.T) {
	fx := buildFixture(t, 103, 300, 30)
	res, err := Random(fx.models, fx.pools, Config{Kappa: 300, RNG: xrand.New(104)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] <= res.Counts[1] {
		t.Fatalf("random sampling should favor the big pool: %v", res.Counts)
	}
}

func TestAdaptiveCollectsUpToKappa(t *testing.T) {
	fx := buildFixture(t, 105, 120, 120)
	res, err := Adaptive(fx.models, fx.pools, Config{Kappa: 50, RNG: xrand.New(106)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	if len(res.Samples) > 50 {
		t.Fatalf("collected %d > kappa", len(res.Samples))
	}
	var sum int
	for _, c := range res.Counts {
		sum += c
	}
	if sum != res.Rounds {
		t.Fatalf("selection counts sum %d != rounds %d", sum, res.Rounds)
	}
	if sum < len(res.Samples) {
		t.Fatalf("selections %d below accepted samples %d", sum, len(res.Samples))
	}
	accepted := res.AcceptedPerModel(len(fx.models))
	var accSum int
	for _, c := range accepted {
		accSum += c
	}
	if accSum != len(res.Samples) {
		t.Fatalf("accepted sum %d != samples %d", accSum, len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Frame == nil {
			t.Fatal("nil frame in samples")
		}
		if s.ModelIdx < 0 || s.ModelIdx >= len(fx.models) {
			t.Fatalf("bad model index %d", s.ModelIdx)
		}
	}
}

func TestAdaptiveSamplesAreAccurate(t *testing.T) {
	fx := buildFixture(t, 107, 100, 100)
	cfg := Config{Kappa: 60, AcceptF1: 0.5, RNG: xrand.New(108)}
	res, err := Adaptive(fx.models, fx.pools, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if f1 := fx.models[s.ModelIdx].EvaluateFrame(s.Frame).F1; f1 < cfg.AcceptF1 {
			t.Fatalf("accepted sample with F1 %v < %v", f1, cfg.AcceptF1)
		}
	}
}

func TestAdaptiveStopsWhenAllWellSampled(t *testing.T) {
	// Tiny pools have tiny well-sampled bounds, so the loop must stop
	// early rather than spin to MaxRounds.
	fx := buildFixture(t, 109, 12, 12)
	res, err := Adaptive(fx.models, fx.pools, Config{Kappa: 100000, MaxRounds: 200000, RNG: xrand.New(110)})
	if err != nil {
		t.Fatal(err)
	}
	bound := WellSampledBound(12, 0.95)
	for i, c := range res.Counts {
		if float64(c) > bound+1 {
			t.Fatalf("pool %d oversampled: %d > bound %v", i, c, bound)
		}
	}
	if res.Rounds >= 200000 {
		t.Fatal("loop did not terminate early")
	}
}

func TestSamplingValidation(t *testing.T) {
	fx := buildFixture(t, 111, 20, 20)
	if _, err := Adaptive(fx.models, nil, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("empty pools accepted")
	}
	bad := []Pool{{ModelIdx: 9, Frames: fx.pools[0].Frames}}
	if _, err := Adaptive(fx.models, bad, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("out-of-range model index accepted")
	}
	empty := []Pool{{ModelIdx: 0}}
	if _, err := Random(fx.models, empty, Config{RNG: xrand.New(1)}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestNormalizedCounts(t *testing.T) {
	r := Result{Counts: []int{2, 4, 1}}
	norm := r.NormalizedCounts()
	if norm[1] != 1 || norm[0] != 0.5 || norm[2] != 0.25 {
		t.Fatalf("normalized: %v", norm)
	}
	zero := Result{Counts: []int{0, 0}}
	for _, v := range zero.NormalizedCounts() {
		if v != 0 {
			t.Fatal("zero counts should normalize to zero")
		}
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	fx := buildFixture(t, 112, 60, 60)
	run := func() Result {
		res, err := Adaptive(fx.models, fx.pools, Config{Kappa: 40, RNG: xrand.New(113)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) || a.Rounds != b.Rounds {
		t.Fatal("adaptive sampling not deterministic")
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatal("counts differ across identical runs")
		}
	}
}

func toFloat(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
