package plan

import (
	"testing"
	"time"

	"anole/internal/device"
)

// Variants shaped like a real repertoire: full precision is the most
// accurate and biggest, each quantization step trades accuracy for
// speed and size.
var bank = []Variant{
	{Name: "fp32", QuantBits: 0, DecideFLOPs: 20_000, DetectFLOPs: 480_000, SizeBytes: 40_000, Accuracy: 0.90},
	{Name: "q8", QuantBits: 8, DecideFLOPs: 20_000, DetectFLOPs: 480_000, SizeBytes: 11_000, Accuracy: 0.88},
	{Name: "q4", QuantBits: 4, DecideFLOPs: 20_000, DetectFLOPs: 480_000, SizeBytes: 6_000, Accuracy: 0.83},
}

func dev(gflops float64, memBytes int64, budget time.Duration) Device {
	return Device{Name: "test", GFLOPS: gflops, DispatchOverheadMs: 1, MemoryBytes: memBytes, LatencyBudget: budget}
}

func TestSelectPrefersAccuracyWhenEverythingFits(t *testing.T) {
	// A fast device with ample memory and a loose budget runs full
	// precision: it is the most accurate feasible variant.
	c, err := Select(dev(2000, 1_000_000, time.Second), bank)
	if err != nil {
		t.Fatal(err)
	}
	if c.Index != 0 || !c.Feasible {
		t.Fatalf("choice = %+v, want fp32 feasible", c)
	}
}

func TestSelectQuantizesUnderTightBudget(t *testing.T) {
	// Budget set between fp32's latency and q8's: the solver must step
	// down exactly one quantization level, not to the floor.
	slow := dev(100, 1_000_000, 0)
	fpLat := EstimateLatency(slow, bank[0])
	q8Lat := EstimateLatency(slow, bank[1])
	if q8Lat >= fpLat {
		t.Fatalf("q8 (%v) should beat fp32 (%v) on the same device", q8Lat, fpLat)
	}
	slow.LatencyBudget = q8Lat + (fpLat-q8Lat)/2
	c, err := Select(slow, bank)
	if err != nil {
		t.Fatal(err)
	}
	if c.Index != 1 || !c.Feasible {
		t.Fatalf("choice = %+v, want q8 feasible", c)
	}
}

func TestSelectMemoryCeilingIsHard(t *testing.T) {
	// Ceiling below fp32's size: fp32 must never be chosen no matter
	// how loose the latency budget is.
	c, err := Select(dev(2000, 12_000, time.Hour), bank)
	if err != nil {
		t.Fatal(err)
	}
	if c.Index != 1 {
		t.Fatalf("choice = %+v, want q8 (fp32 exceeds the ceiling)", c)
	}
	// Ceiling below everything: error, not a silent violation.
	if _, err := Select(dev(2000, 100, time.Hour), bank); err == nil {
		t.Fatal("no variant fits, Select must error")
	}
	// MemoryBytes 0 disables the constraint.
	c, err = Select(dev(2000, 0, time.Hour), bank)
	if err != nil || c.Index != 0 {
		t.Fatalf("unconstrained memory: choice = %+v, err = %v", c, err)
	}
}

func TestSelectInfeasibleFallsBackToFastest(t *testing.T) {
	// Budget nobody can meet: the fastest fitting variant comes back
	// flagged infeasible so the caller can degrade deliberately.
	c, err := Select(dev(1, 1_000_000, time.Nanosecond), bank)
	if err != nil {
		t.Fatal(err)
	}
	if c.Feasible {
		t.Fatal("nanosecond budget reported feasible")
	}
	if c.Index != 2 {
		t.Fatalf("choice = %+v, want the fastest variant (q4)", c)
	}
}

func TestReplanOnThrottleChange(t *testing.T) {
	// A cool device meets the budget at full precision; the same device
	// throttled to 40% must step down. This is the pressure-monitor
	// re-planning path.
	d := dev(300, 1_000_000, 0)
	d.LatencyBudget = EstimateLatency(d, bank[0]) + time.Millisecond
	cool, err := Select(d, bank)
	if err != nil {
		t.Fatal(err)
	}
	if cool.Index != 0 {
		t.Fatalf("cool choice = %+v, want fp32", cool)
	}
	d.Throttle = 0.4
	hot, err := Select(d, bank)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Index == 0 {
		t.Fatal("throttled device kept full precision past its budget")
	}
}

func TestEstimateLatencyMatchesSimulator(t *testing.T) {
	// The planner's latency model must agree with what the simulator
	// will actually charge (decision at fp + detect at the variant's
	// width, one dispatch each).
	sim, err := device.NewSimulator(device.JetsonTX2NX)
	if err != nil {
		t.Fatal(err)
	}
	v := bank[1]
	d := Device{
		GFLOPS:             sim.Mode().GFLOPS,
		Throttle:           sim.ThrottleFactor(),
		DispatchOverheadMs: sim.Profile().DispatchOverheadMs,
	}
	got := EstimateLatency(d, v)
	want := sim.Infer(device.ModelCost{FLOPsPerInference: v.DecideFLOPs}) +
		sim.Infer(device.ModelCost{FLOPsPerInference: v.DetectFLOPs, QuantBits: v.QuantBits})
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("estimate %v vs simulator %v", got, want)
	}
}

func TestSelectEmptyBank(t *testing.T) {
	if _, err := Select(dev(100, 0, 0), nil); err == nil {
		t.Fatal("empty bank accepted")
	}
}
