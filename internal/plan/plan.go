// Package plan solves OODIn-style per-device model selection
// (arXiv:2106.04723): given one device's operating point — compute
// throughput after thermal throttling, memory ceiling, latency budget —
// and the repertoire's per-variant cost/accuracy estimates, pick the
// model variant and quantization level that stream should run.
//
// The solver is deliberately small and total: memory is a hard
// constraint (a variant that cannot fit in the device's model-cache
// byte capacity is never selected), latency is a soft constraint
// (among memory-feasible variants the most accurate one meeting the
// budget wins; if none meets it, the fastest memory-feasible variant is
// returned with Feasible=false so the caller can degrade gracefully
// instead of failing). Re-planning on thermal state changes is just
// calling Select again with the new throttle factor.
package plan

import (
	"fmt"
	"time"

	"anole/internal/device"
)

// Variant is one candidate configuration of the repertoire: the full
// bundle at some quantization level.
type Variant struct {
	// Name labels the variant ("fp32", "q8", ...).
	Name string
	// QuantBits is the detector weight width (0 = full precision).
	QuantBits int
	// DecideFLOPs is the unscaled per-frame cost of the scene
	// encoder + decision head, which always runs at full precision.
	DecideFLOPs int64
	// DetectFLOPs is the unscaled per-frame cost of one detector at
	// the planning cell count.
	DetectFLOPs int64
	// SizeBytes is the total serialized size of the variant's
	// detectors — the model-cache residency cost (cache sizer units).
	SizeBytes int64
	// Accuracy is the expected quality in [0,1] (validation F1 scaled
	// by the quantization penalty).
	Accuracy float64
}

// Device is one stream's operating point at planning time.
type Device struct {
	// Name is only for error messages.
	Name string
	// GFLOPS is the active power mode's compute throughput.
	GFLOPS float64
	// Throttle is the current thermal derate in (0,1]; 0 is treated
	// as 1 (no throttling).
	Throttle float64
	// DispatchOverheadMs is the fixed per-inference cost.
	DispatchOverheadMs float64
	// MemoryBytes is the device's model-cache byte capacity
	// (GPUMemoryMB scaled into cache sizer units).
	MemoryBytes int64
	// LatencyBudget is the per-frame target; 0 disables the latency
	// constraint.
	LatencyBudget time.Duration
}

// Choice is the solver's answer for one device.
type Choice struct {
	// Index into the variants slice.
	Index int
	// Latency is the estimated per-frame latency of the choice.
	Latency time.Duration
	// Feasible reports whether the choice meets the latency budget
	// (always true when the budget is 0).
	Feasible bool
}

// EstimateLatency predicts one frame's compute latency for v on dev: the
// decision stage at full precision plus the detector stage at the
// variant's quantized throughput, each paying the dispatch overhead —
// mirroring how core.Runtime charges device.Simulator.Infer.
func EstimateLatency(dev Device, v Variant) time.Duration {
	throttle := dev.Throttle
	if throttle <= 0 || throttle > 1 {
		throttle = 1
	}
	thr := dev.GFLOPS * 1e9 * throttle
	dispatch := dev.DispatchOverheadMs / 1e3
	decide := float64(v.DecideFLOPs) * device.FLOPsScale / thr
	detect := float64(v.DetectFLOPs) * device.FLOPsScale / (thr * device.QuantSpeedup(v.QuantBits))
	return time.Duration((decide + detect + 2*dispatch) * float64(time.Second))
}

// Select picks the variant for one device. Memory is hard: variants
// whose SizeBytes exceed dev.MemoryBytes are excluded outright, and an
// error is returned if nothing fits. Among the fitting variants the
// most accurate one whose estimated latency meets the budget wins
// (ties to the lower latency); when none meets the budget the fastest
// fitting variant is returned with Feasible=false.
func Select(dev Device, variants []Variant) (Choice, error) {
	if len(variants) == 0 {
		return Choice{}, fmt.Errorf("plan: no variants to select from")
	}
	best := Choice{Index: -1}
	var bestAcc float64
	fastest := Choice{Index: -1}
	for i, v := range variants {
		if dev.MemoryBytes > 0 && v.SizeBytes > dev.MemoryBytes {
			continue
		}
		lat := EstimateLatency(dev, v)
		if fastest.Index < 0 || lat < fastest.Latency {
			fastest = Choice{Index: i, Latency: lat}
		}
		if dev.LatencyBudget > 0 && lat > dev.LatencyBudget {
			continue
		}
		if best.Index < 0 || v.Accuracy > bestAcc ||
			(v.Accuracy == bestAcc && lat < best.Latency) {
			best = Choice{Index: i, Latency: lat, Feasible: true}
			bestAcc = v.Accuracy
		}
	}
	if best.Index >= 0 {
		return best, nil
	}
	if fastest.Index >= 0 {
		return fastest, nil // over budget, but the least-bad fit
	}
	return Choice{}, fmt.Errorf("plan: no variant fits device %s memory ceiling (%d bytes)",
		dev.Name, dev.MemoryBytes)
}
