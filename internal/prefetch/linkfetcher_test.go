package prefetch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"anole/internal/modelcache"
	"anole/internal/netsim"
	"anole/internal/xrand"
)

// alwaysGood is a link config that never leaves the Good state.
func alwaysGood() netsim.Config {
	cfg := netsim.DefaultConfig(1)
	return cfg
}

// goodThenDownForever: Good → Down on the first step, then Down sticks.
func goodThenDown() netsim.Config {
	cfg := netsim.DefaultConfig(0)
	cfg.Transition = [3][3]float64{
		{0, 0, 1},
		{0, 0, 1},
		{0, 0, 1},
	}
	return cfg
}

// downOneFrame: Good → Down on the first step, back to Good after one
// Down frame.
func downOneFrame() netsim.Config {
	cfg := netsim.DefaultConfig(0)
	cfg.Transition = [3][3]float64{
		{0, 0, 1},
		{1, 0, 0},
		{1, 0, 0},
	}
	return cfg
}

func newLF(t *testing.T, cfg netsim.Config, models []Model) *LinkFetcher {
	t.Helper()
	link, err := netsim.NewLink(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewLinkFetcher(link, models, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return lf
}

func TestLinkFetcherBackgroundCompletesOnTicks(t *testing.T) {
	// 3 MB at 6 MB/s = 500 ms + 40 ms RTT → completes on the 6th tick.
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newLF(t, alwaysGood(), models)

	done := make(chan error, 1)
	var gotD time.Duration
	go func() {
		_, d, err := lf.FetchModel(context.Background(), "M_0")
		gotD = d
		done <- err
	}()
	// Wait until the transfer is registered before ticking.
	waitFor(t, func() bool {
		lf.mu.Lock()
		defer lf.mu.Unlock()
		return len(lf.pending) == 1
	}, "transfer registered")
	for i := 0; i < 5; i++ {
		lf.Tick()
		select {
		case <-done:
			t.Fatalf("transfer completed after %d ticks", i+1)
		default:
		}
	}
	lf.Tick() // 6 × 100 ms = 600 ms ≥ 540 ms
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gotD < 500*time.Millisecond || gotD > 600*time.Millisecond {
		t.Fatalf("transfer duration %v", gotD)
	}
	if n, b := lf.Transferred(); n != 1 || b != 3<<20 {
		t.Fatalf("transferred %d/%d", n, b)
	}
}

func TestLinkFetcherOutageStallsTransfers(t *testing.T) {
	// Transfer needs ~540 ms ≈ 6 ticks; every Down tick pushes the
	// deadline out by one interval, so with the goodThenDown chain the
	// transfer never completes (Down after tick 1) and cancellation is
	// the only exit.
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newLF(t, goodThenDown(), models)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := lf.FetchModel(ctx, "M_0")
		done <- err
	}()
	waitFor(t, func() bool {
		lf.mu.Lock()
		defer lf.mu.Unlock()
		return len(lf.pending) == 1
	}, "transfer registered")
	for i := 0; i < 20; i++ {
		lf.Tick()
	}
	select {
	case err := <-done:
		t.Fatalf("transfer completed across an outage: %v", err)
	default:
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel returned %v", err)
	}
	lf.mu.Lock()
	rem := len(lf.pending)
	lf.mu.Unlock()
	if rem != 0 {
		t.Fatalf("%d pending transfers after cancel", rem)
	}
}

func TestLinkFetcherDownFailsBackgroundFetch(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, goodThenDown(), models)
	lf.Tick() // Good → Down
	if lf.State() != netsim.Down {
		t.Fatalf("state %v after forced transition", lf.State())
	}
	if _, _, err := lf.FetchModel(context.Background(), "M_0"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("down-link fetch returned %v", err)
	}
}

// goodTransfer is the expected Good-state transfer time of a payload
// under DefaultConfig: RTT + (request + payload) / bandwidth.
func goodTransfer(size int64) time.Duration {
	seconds := float64(256+size) / (6 * (1 << 20))
	return 40*time.Millisecond + time.Duration(seconds*float64(time.Second))
}

func TestLinkFetcherDemandStallIncludesOutage(t *testing.T) {
	// After one tick the link is Down for exactly one frame, so the
	// demand stall must be one interval (100 ms) + the Good transfer.
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, downOneFrame(), models)
	lf.Tick() // now Down
	if lf.State() != netsim.Down {
		t.Fatalf("state %v", lf.State())
	}
	_, stall, err := lf.FetchModelNow(context.Background(), "M_0")
	if err != nil {
		t.Fatal(err)
	}
	want := 100*time.Millisecond + goodTransfer(1<<20)
	if diff := stall - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("stall %v, want ≈%v", stall, want)
	}
}

func TestLinkFetcherDemandNoWaitWhenUp(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, alwaysGood(), models)
	start := time.Now()
	_, stall, err := lf.FetchModelNow(context.Background(), "M_0")
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("demand fetch blocked %v of wall clock", wall)
	}
	want := goodTransfer(1 << 20)
	if diff := stall - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("stall %v, want ≈%v", stall, want)
	}
	// The simulated clock advanced by the stall.
	if lf.Now() != stall {
		t.Fatalf("sim clock %v, want %v", lf.Now(), stall)
	}
}

func TestLinkFetcherUnknownModel(t *testing.T) {
	lf := newLF(t, alwaysGood(), []Model{{Name: "M_0", Bytes: 1}})
	if _, _, err := lf.FetchModel(context.Background(), "nope"); err == nil {
		t.Fatal("unknown model fetched")
	}
	if _, _, err := lf.FetchModelNow(context.Background(), "nope"); err == nil {
		t.Fatal("unknown model demand-fetched")
	}
}

func TestLinkFetcherValidation(t *testing.T) {
	link, err := netsim.NewLink(alwaysGood(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLinkFetcher(nil, []Model{{Name: "a", Bytes: 1}}, 0); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := NewLinkFetcher(link, nil, 0); err == nil {
		t.Fatal("empty repertoire accepted")
	}
	if _, err := NewLinkFetcher(link, []Model{{Name: "a", Bytes: 0}}, 0); err == nil {
		t.Fatal("zero-byte model accepted")
	}
	lf, err := NewLinkFetcher(link, []Model{{Name: "a", Bytes: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Interval() != DefaultFrameInterval {
		t.Fatalf("default interval %v", lf.Interval())
	}
}

// TestSchedulerWithLinkFetcherEndToEnd runs the full stack — Markov →
// Scheduler → LinkFetcher → Sharded cache — under concurrent ticks,
// plans and demand fetches. Run with -race.
func TestSchedulerWithLinkFetcherEndToEnd(t *testing.T) {
	models := testModels(4) // 1 MiB each → ~207 ms per transfer on Good
	lf := newLF(t, alwaysGood(), models)
	store := modelcache.MustNewSharded(3, modelcache.LFU, 1)
	s, err := NewScheduler(Config{Fetcher: lf, TopK: 1}, store, models)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Observe(0, 1)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Tick()
		}
	}()
	s.Plan(0)
	if _, err := s.DemandFetch(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// After 200 ticks (20 s simulated) the M_1 prefetch either finished
	// or was preempted by the demand fetch; both are legal, but the
	// counters must balance.
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Completed+st.Cancelled+st.Failed == st.Issued
	}, "flights settled")
	if st := s.Stats(); st.DemandFetches != 1 {
		t.Fatalf("demand fetches %d", st.DemandFetches)
	}
}

func TestLinkFetcherStartBackgroundSynchronousCompletion(t *testing.T) {
	// 3 MB at 6 MB/s = 500 ms + 40 ms RTT → due on the 6th tick. The
	// callback must fire inside that Tick call, not on some later
	// goroutine schedule — that synchrony is what makes prefetch
	// completion deterministic in simulated time.
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newLF(t, alwaysGood(), models)
	var gotBytes int64
	var gotErr error
	fired := 0
	cancel, err := lf.StartBackground("M_0", func(b int64, e error) {
		fired++
		gotBytes, gotErr = b, e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lf.Tick()
		if fired != 0 {
			t.Fatalf("callback fired after %d ticks, want 6", i+1)
		}
	}
	lf.Tick()
	if fired != 1 {
		t.Fatalf("callback fired %d times after the due tick", fired)
	}
	if gotErr != nil || gotBytes != models[0].Bytes {
		t.Fatalf("callback got (%d, %v)", gotBytes, gotErr)
	}
	// Cancelling a settled transfer reports false: the callback owns the
	// accounting.
	if cancel() {
		t.Fatal("cancel returned true after completion")
	}
	if n, b := lf.Transferred(); n != 1 || b != models[0].Bytes {
		t.Fatalf("transferred (%d, %d)", n, b)
	}
}

func TestLinkFetcherStartBackgroundCancel(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newLF(t, alwaysGood(), models)
	fired := false
	cancel, err := lf.StartBackground("M_0", func(int64, error) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	lf.Tick()
	if !cancel() {
		t.Fatal("cancel of a pending transfer returned false")
	}
	for i := 0; i < 20; i++ {
		lf.Tick()
	}
	if fired {
		t.Fatal("cancelled transfer still completed")
	}
	if n, _ := lf.Transferred(); n != 0 {
		t.Fatalf("cancelled transfer counted: %d", n)
	}
}

func TestLinkFetcherStartBackgroundDownAndUnknown(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, goodThenDown(), models)
	lf.Tick() // Good → Down
	if _, err := lf.StartBackground("M_0", func(int64, error) {}); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("start on a down link: %v", err)
	}
	if _, err := lf.StartBackground("nope", func(int64, error) {}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
