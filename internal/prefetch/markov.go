// Package prefetch anticipates model switches and warms the model cache
// ahead of them, hiding the device↔cloud fetch latency that motivates
// Anole (§I): a moving device crosses scenes faster than it can pull the
// matching compressed model over a degraded wireless link, so the next
// model must already be resident when the decision model switches to it.
//
// Three pieces compose:
//
//   - Markov, an online scene-transition model learned incrementally
//     from the runtime's observed model-switch sequence, predicting the
//     likeliest next models;
//   - Scheduler, which turns those predictions into background fetches
//     into the cache — budgeted, cancellable, and always yielding to the
//     on-demand miss path;
//   - LinkFetcher, a Fetcher that moves the bytes over a simulated
//     netsim.Link in frame-tick time (repo.Client is the real-HTTP
//     Fetcher for device deployments).
//
// All types are safe for concurrent use; core.MultiRuntime shares one
// Scheduler across every stream.
package prefetch

import (
	"fmt"
	"sort"
	"sync"
)

// Prediction is one candidate next model with its estimated transition
// probability.
type Prediction struct {
	Model int
	Prob  float64
}

// Markov is an online first-order model of the switch sequence: a
// row-normalized transition matrix over model indices with Laplace
// smoothing, updated in O(1) per observed switch. It is safe for
// concurrent use.
type Markov struct {
	mu     sync.RWMutex
	n      int
	alpha  float64
	counts []float64 // n×n, row-major
	rowSum []float64
	obs    int64
}

// NewMarkov creates a transition model over n models. alpha is the
// Laplace pseudo-count added to every cell (≤0 selects 1); it keeps
// unseen transitions at a small nonzero probability so a cold-start
// model still ranks candidates.
func NewMarkov(n int, alpha float64) (*Markov, error) {
	if n <= 0 {
		return nil, fmt.Errorf("prefetch: %d models", n)
	}
	if alpha <= 0 {
		alpha = 1
	}
	return &Markov{
		n:      n,
		alpha:  alpha,
		counts: make([]float64, n*n),
		rowSum: make([]float64, n),
	}, nil
}

// NumModels returns the matrix dimension.
func (m *Markov) NumModels() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// Grow widens the transition matrix to n models, preserving every
// recorded count — the continual-adaptation path, where a published
// generation appends models to the repertoire. Rows and columns for the
// new models start empty (Laplace smoothing keeps them rankable). A
// Grow to the current size or smaller is a no-op.
func (m *Markov) Grow(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= m.n {
		return
	}
	counts := make([]float64, n*n)
	for i := 0; i < m.n; i++ {
		copy(counts[i*n:i*n+m.n], m.counts[i*m.n:(i+1)*m.n])
	}
	rowSum := make([]float64, n)
	copy(rowSum, m.rowSum)
	m.counts, m.rowSum, m.n = counts, rowSum, n
}

// Observations returns the number of recorded transitions.
func (m *Markov) Observations() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.obs
}

// Observe records one switch from model `from` to model `to`.
// Out-of-range indices and self-transitions are ignored (the runtime's
// switch sequence contains no self-transitions by construction).
func (m *Markov) Observe(from, to int) {
	if from < 0 || to < 0 || from == to {
		return
	}
	m.mu.Lock()
	if from < m.n && to < m.n {
		m.counts[from*m.n+to]++
		m.rowSum[from]++
		m.obs++
	}
	m.mu.Unlock()
}

// Prob returns the smoothed transition probability P(to | from):
// (count + alpha) / (rowSum + alpha·n).
func (m *Markov) Prob(from, to int) float64 {
	if from < 0 || to < 0 {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if from >= m.n || to >= m.n {
		return 0
	}
	return (m.counts[from*m.n+to] + m.alpha) / (m.rowSum[from] + m.alpha*float64(m.n))
}

// Row returns the full smoothed distribution over next models given
// `from` (a fresh slice summing to 1).
func (m *Markov) Row(from int) []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]float64, m.n)
	if from < 0 || from >= m.n {
		return out
	}
	denom := m.rowSum[from] + m.alpha*float64(m.n)
	for j := 0; j < m.n; j++ {
		out[j] = (m.counts[from*m.n+j] + m.alpha) / denom
	}
	return out
}

// State copies out the transition matrix for checkpointing: dimension,
// smoothing, observation count, and the raw (unsmoothed) counts and
// row sums.
func (m *Markov) State() (n int, alpha float64, obs int64, counts, rowSum []float64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	counts = make([]float64, len(m.counts))
	copy(counts, m.counts)
	rowSum = make([]float64, len(m.rowSum))
	copy(rowSum, m.rowSum)
	return m.n, m.alpha, m.obs, counts, rowSum
}

// RestoreState overwrites the transition counts from a checkpoint
// taken at dimension n. A checkpoint from a smaller repertoire
// restores into the leading n×n block (the repertoire grew after the
// snapshot — new models start empty exactly as Grow leaves them); a
// checkpoint from a larger repertoire is rejected, as it references
// models the current bundle does not have. The configured alpha is
// kept: smoothing is an owner-side parameter, not restored state.
func (m *Markov) RestoreState(n int, obs int64, counts, rowSum []float64) error {
	if n <= 0 || len(counts) != n*n || len(rowSum) != n {
		return fmt.Errorf("prefetch: markov restore geometry n=%d counts=%d rowSum=%d", n, len(counts), len(rowSum))
	}
	if obs < 0 {
		return fmt.Errorf("prefetch: markov restore negative observations %d", obs)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.n {
		return fmt.Errorf("prefetch: markov restore dimension %d exceeds current %d", n, m.n)
	}
	for i := range m.counts {
		m.counts[i] = 0
	}
	for i := range m.rowSum {
		m.rowSum[i] = 0
	}
	for i := 0; i < n; i++ {
		copy(m.counts[i*m.n:i*m.n+n], counts[i*n:(i+1)*n])
		m.rowSum[i] = rowSum[i]
	}
	m.obs = obs
	return nil
}

// TopK returns the k likeliest next models given the current one, in
// descending probability (ties broken by model index for determinism).
// The current model itself is excluded — prefetching what is already
// running is never useful. k is clamped to n-1.
func (m *Markov) TopK(current, k int) []Prediction {
	if current < 0 || k <= 0 {
		return nil
	}
	row := m.Row(current)
	if current >= len(row) {
		return nil
	}
	preds := make([]Prediction, 0, len(row)-1)
	for j, p := range row {
		if j == current {
			continue
		}
		preds = append(preds, Prediction{Model: j, Prob: p})
	}
	sort.SliceStable(preds, func(a, b int) bool {
		if preds[a].Prob != preds[b].Prob {
			return preds[a].Prob > preds[b].Prob
		}
		return preds[a].Model < preds[b].Model
	})
	if k > len(preds) {
		k = len(preds)
	}
	return preds[:k]
}
