package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anole/internal/breaker"
	"anole/internal/telemetry"
)

// Fetcher moves one model's bytes from the repository to the device.
// Both methods return the payload size and the transfer duration; they
// differ in whose time the caller spends:
//
//   - FetchModel is the background path. It returns once the transfer
//     has completed in the fetcher's own notion of time — wall-clock for
//     repo.Client, simulated frame ticks for LinkFetcher (which blocks
//     the calling goroutine until enough Ticks elapse).
//   - FetchModelNow is the critical (miss) path. It never waits on
//     ticks: it returns the stall immediately so the caller can charge
//     it as frame latency.
//
// Implementations must be safe for concurrent use.
type Fetcher interface {
	FetchModel(ctx context.Context, name string) (bytes int64, d time.Duration, err error)
	FetchModelNow(ctx context.Context, name string) (bytes int64, d time.Duration, err error)
}

// Ticker is implemented by fetchers that model time in frame ticks
// (LinkFetcher). The runtime ticks the scheduler once per processed
// frame; fetchers keyed to wall-clock simply don't implement it.
type Ticker interface{ Tick() }

// BackgroundStarter is the tick-synchronous background path, implemented
// by fetchers whose transfers live entirely in simulated time
// (LinkFetcher). StartBackground registers the transfer and returns at
// once; the fetcher invokes done synchronously from inside the Tick that
// passes the transfer's deadline. The scheduler prefers this path over
// goroutine + FetchModel when available: completion then lands before
// the tick returns, so a model prefetched with enough frames of lead
// time is deterministically resident when the switch arrives — a
// goroutine racing the real clock would almost never beat a simulated
// one. cancel reports whether the transfer was still pending; when it
// returns false the done callback has run or is about to, and owns the
// accounting.
type BackgroundStarter interface {
	StartBackground(name string, done func(bytes int64, err error)) (cancel func() bool, err error)
}

// Store is the cache surface the scheduler warms. *modelcache.Sharded
// satisfies it; the store must be safe for concurrent use, since
// completed prefetches insert from background goroutines.
type Store interface {
	Prefetch(key string, size int) (admitted bool, evicted []string, err error)
	Contains(key string) bool
}

// Model describes one repertoire model the scheduler can prefetch.
type Model struct {
	Name string
	// Bytes is the over-the-wire size used for budget accounting and,
	// by LinkFetcher, for transfer-time computation.
	Bytes int64
}

// Config parameterizes a Scheduler.
type Config struct {
	// Fetcher moves the bytes (required).
	Fetcher Fetcher
	// TopK is how many predicted next models each Plan considers
	// (default 2). A negative TopK disables prefetching entirely —
	// demand fetches still work — which is the "prefetch off" arm of
	// the benchmarks.
	TopK int
	// MinProb skips predictions below this transition probability
	// (default 0.02): with heavy smoothing or little history every
	// candidate looks alike, and fetching on noise wastes the link.
	MinProb float64
	// BudgetBytes caps the bytes a single Plan may have in flight
	// (0 = unlimited). Candidates beyond the budget are skipped and
	// counted, not queued.
	BudgetBytes int64
	// MaxInFlight bounds concurrent background fetches (default 1:
	// prefetches share one link; serializing them keeps the simulated
	// transfer model honest).
	MaxInFlight int
	// Smoothing is the Markov Laplace pseudo-count (≤0 selects 1).
	Smoothing float64
	// Metrics, when non-nil, is the telemetry registry the scheduler's
	// counters are registered on (anole_prefetch_*), so a shared
	// registry exposes them live on /metrics. Nil keeps them in a
	// private registry; Stats reads the same handles either way.
	Metrics *telemetry.Registry
	// Breaker, when non-nil, is the circuit breaker shared with the
	// fetch path. Every fetch outcome — background or demand — feeds it;
	// while it is open, Plan issues no prefetches (the link is known
	// bad, speculative traffic would only pile failures on it). The
	// demand path still fetches — a miss has no alternative — and a
	// successful fetch while the breaker is half-open closes it, which
	// resumes prefetching: recovery needs no extra machinery.
	Breaker *breaker.Breaker
}

// SchedulerStats is a snapshot of the scheduler's counters.
type SchedulerStats struct {
	// Issued / Completed / Cancelled / Failed count background
	// prefetches: started, finished (bytes resident), cancelled because
	// the predicted target changed or the miss path preempted them, and
	// failed (link down, transport error).
	Issued    int64
	Completed int64
	Cancelled int64
	Failed    int64
	// SkippedBudget counts predictions dropped by BudgetBytes.
	SkippedBudget int64
	// SkippedBreaker counts Plans dropped whole because the shared
	// circuit breaker was open; BreakerOpens is how many times that
	// breaker has tripped (both zero without a breaker).
	SkippedBreaker int64
	BreakerOpens   int64
	// SkippedPaused counts Plans dropped whole while planning was
	// paused by resource pressure (see SetPaused).
	SkippedPaused int64
	// PrefetchedBytes is the payload total of completed prefetches.
	PrefetchedBytes int64
	// DemandFetches / DemandFailures / DemandBytes / DemandStall
	// describe the on-demand miss path routed through DemandFetch.
	DemandFetches  int64
	DemandFailures int64
	DemandBytes    int64
	DemandStall    time.Duration
	// Observations is the number of switches the transition model has
	// seen.
	Observations int64
}

type flight struct {
	cancel   context.CancelFunc // goroutine path (wall-clock fetchers)
	cancelBG func() bool        // tick-synchronous path (BackgroundStarter)
}

// Scheduler warms the model cache ahead of predicted switches. Plan
// consults the transition model and starts background fetches for the
// likeliest absent models; DemandFetch serves the miss path with strict
// priority (in-flight prefetches are cancelled and new ones held until
// it returns, so prefetch traffic never starves an on-demand fetch).
// All methods are safe for concurrent use.
type Scheduler struct {
	cfg    Config
	markov *Markov
	store  Store
	models []Model

	mu           sync.Mutex
	inflight     map[int]*flight
	demandActive int
	closed       bool

	// paused suspends background planning (see SetPaused); the demand
	// path is unaffected. Atomic so the pressure monitor can flip it
	// from any goroutine without taking the scheduler lock.
	paused atomic.Bool

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	// Counters live on the telemetry registry (Config.Metrics or a
	// private one); SchedulerStats is a snapshot view over them.
	issued, completed, cancelled, failed *telemetry.Counter
	skippedBudget, prefetchedBytes       *telemetry.Counter
	skippedBreaker, skippedPaused        *telemetry.Counter
	demandFetches, demandFailures        *telemetry.Counter
	demandBytes                          *telemetry.Counter
	demandStall                          *telemetry.Histogram
}

// NewScheduler builds a scheduler over the given store and repertoire.
// The store must be the same cache the runtime resolves requests
// against, and must be safe for concurrent use.
func NewScheduler(cfg Config, store Store, models []Model) (*Scheduler, error) {
	if cfg.Fetcher == nil {
		return nil, errors.New("prefetch: nil fetcher")
	}
	if store == nil {
		return nil, errors.New("prefetch: nil store")
	}
	if len(models) == 0 {
		return nil, errors.New("prefetch: empty repertoire")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 2
	}
	if cfg.MinProb <= 0 {
		cfg.MinProb = 0.02
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	markov, err := NewMarkov(len(models), cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		cfg:       cfg,
		markov:    markov,
		store:     store,
		models:    models,
		inflight:  make(map[int]*flight),
		baseCtx:   ctx,
		cancelAll: cancel,

		issued:          reg.Counter("anole_prefetch_issued_total", "background prefetches started"),
		completed:       reg.Counter("anole_prefetch_completed_total", "background prefetches whose bytes became resident"),
		cancelled:       reg.Counter("anole_prefetch_cancelled_total", "background prefetches cancelled by replanning or demand preemption"),
		failed:          reg.Counter("anole_prefetch_failed_total", "background prefetches that failed (link down, transport error)"),
		skippedBudget:   reg.Counter("anole_prefetch_skipped_budget_total", "predictions dropped by BudgetBytes"),
		skippedBreaker:  reg.Counter("anole_prefetch_skipped_breaker_total", "plans dropped whole while the circuit breaker was open"),
		skippedPaused:   reg.Counter("anole_prefetch_skipped_paused_total", "plans dropped whole while planning was paused by resource pressure"),
		prefetchedBytes: reg.Counter("anole_prefetch_bytes_total", "payload bytes of completed prefetches"),
		demandFetches:   reg.Counter("anole_prefetch_demand_fetches_total", "on-demand (miss path) fetches that succeeded"),
		demandFailures:  reg.Counter("anole_prefetch_demand_failures_total", "on-demand fetches that failed"),
		demandBytes:     reg.Counter("anole_prefetch_demand_bytes_total", "payload bytes of successful demand fetches"),
		demandStall:     reg.Histogram("anole_prefetch_demand_stall_seconds", "per-fetch stall charged to frames by the demand path", nil),
	}, nil
}

// Markov exposes the underlying transition model (read-mostly; Observe
// through the scheduler).
func (s *Scheduler) Markov() *Markov { return s.markov }

// Observe records one model switch into the transition model.
func (s *Scheduler) Observe(from, to int) { s.markov.Observe(from, to) }

// Tick advances the fetcher's clock by one frame when the fetcher
// models time in ticks (LinkFetcher); otherwise it is a no-op. The
// runtime calls it once per processed frame.
func (s *Scheduler) Tick() {
	if t, ok := s.cfg.Fetcher.(Ticker); ok {
		t.Tick()
	}
}

// Plan reconciles the in-flight prefetch set with the predictions for
// the current model: fetches whose target is no longer predicted (or
// already resident) are cancelled, and the likeliest absent models are
// fetched in the background, within MinProb, BudgetBytes and
// MaxInFlight. Plans issued while an on-demand fetch is active are
// dropped — the miss path owns the link.
func (s *Scheduler) Plan(current int) {
	if s.cfg.TopK < 0 {
		return
	}
	if s.paused.Load() {
		// Resource pressure paused speculative work; the demand path
		// still flows (a miss has no alternative).
		s.skippedPaused.Inc()
		return
	}
	if br := s.cfg.Breaker; br != nil && !br.Allow() {
		// The link is known bad; speculative traffic would only pile
		// failures on it. The demand path still probes, and its first
		// success closes the breaker, resuming prefetching here.
		s.skippedBreaker.Inc()
		return
	}
	preds := s.markov.TopK(current, s.cfg.TopK)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.demandActive > 0 {
		return
	}
	limited := s.cfg.BudgetBytes > 0
	remaining := s.cfg.BudgetBytes
	wanted := make(map[int]bool, len(preds))
	order := make([]int, 0, len(preds))
	for _, p := range preds {
		if p.Prob < s.cfg.MinProb {
			continue
		}
		m := s.models[p.Model]
		if s.store.Contains(m.Name) {
			continue
		}
		if limited {
			if m.Bytes > remaining {
				s.skippedBudget.Inc()
				continue
			}
			remaining -= m.Bytes
		}
		wanted[p.Model] = true
		order = append(order, p.Model)
	}
	for idx, fl := range s.inflight {
		if !wanted[idx] {
			s.cancelLocked(idx, fl)
		}
	}
	for _, idx := range order {
		if _, dup := s.inflight[idx]; dup {
			continue
		}
		if len(s.inflight) >= s.cfg.MaxInFlight {
			break
		}
		s.startLocked(idx)
	}
}

// cancelLocked forgets the flight immediately so its slot frees up;
// s.mu held. Exactly one party counts the cancellation: this caller
// when the transfer (or goroutine context) was still pending, otherwise
// the completion path, which finds the flight gone from inflight.
func (s *Scheduler) cancelLocked(idx int, fl *flight) {
	delete(s.inflight, idx)
	if fl.cancelBG != nil {
		if fl.cancelBG() {
			s.cancelled.Inc()
		}
		return
	}
	fl.cancel()
}

// startLocked launches the background fetch of model idx; s.mu held.
func (s *Scheduler) startLocked(idx int) {
	if bs, ok := s.cfg.Fetcher.(BackgroundStarter); ok {
		s.startBackgroundLocked(bs, idx)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	fl := &flight{cancel: cancel}
	s.inflight[idx] = fl
	s.issued.Inc()
	// Capture the name while s.mu is held: ExtendModels may replace the
	// models slice concurrently with this goroutine.
	name := s.models[idx].Name
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		bytes, _, err := s.cfg.Fetcher.FetchModel(ctx, name)
		s.mu.Lock()
		if s.inflight[idx] == fl {
			delete(s.inflight, idx)
		}
		s.mu.Unlock()
		s.recordOutcome(err)
		switch {
		case err == nil:
			// Slot-unit admission, matching the runtime's Request size.
			if _, _, err := s.store.Prefetch(name, 1); err == nil {
				s.completed.Inc()
				s.prefetchedBytes.Add(bytes)
			} else {
				s.failed.Inc()
			}
		case errors.Is(err, context.Canceled):
			s.cancelled.Inc()
		default:
			s.failed.Inc()
		}
	}()
}

// startBackgroundLocked launches model idx over the tick-synchronous
// path; s.mu held. The done callback can only fire from a later Tick
// (every transfer costs at least its RTT), never from inside
// StartBackground, so registering the flight after the call is safe.
func (s *Scheduler) startBackgroundLocked(bs BackgroundStarter, idx int) {
	fl := &flight{}
	cancel, err := bs.StartBackground(s.models[idx].Name, func(bytes int64, err error) {
		s.finishBackground(idx, fl, bytes, err)
	})
	s.issued.Inc()
	if err != nil {
		s.failed.Inc()
		s.recordOutcome(err)
		return
	}
	fl.cancelBG = cancel
	s.inflight[idx] = fl
}

// recordOutcome feeds one fetch outcome to the shared breaker (a no-op
// without one). Cancellations are neither success nor failure — they say
// nothing about the link.
func (s *Scheduler) recordOutcome(err error) {
	br := s.cfg.Breaker
	if br == nil {
		return
	}
	switch {
	case err == nil:
		br.Success()
	case errors.Is(err, context.Canceled):
	default:
		br.Failure()
	}
}

// finishBackground settles one tick-synchronous flight. It runs inside
// the fetcher's Tick (or a demand fetch's clock advance) with no
// scheduler lock held, so taking s.mu and the store's lock here cannot
// deadlock against Plan/DemandFetch, which take s.mu before the
// fetcher's.
func (s *Scheduler) finishBackground(idx int, fl *flight, bytes int64, err error) {
	s.mu.Lock()
	current := s.inflight[idx] == fl
	if current {
		delete(s.inflight, idx)
	}
	name := s.models[idx].Name
	s.mu.Unlock()
	if !current {
		// Cancelled between the transfer coming due and this callback;
		// the canceller saw cancelBG report false and left the count to
		// us.
		s.cancelled.Inc()
		return
	}
	s.recordOutcome(err)
	if err != nil {
		s.failed.Inc()
		return
	}
	if _, _, perr := s.store.Prefetch(name, 1); perr == nil {
		s.completed.Inc()
		s.prefetchedBytes.Add(bytes)
	} else {
		s.failed.Inc()
	}
}

// DemandFetch serves a cache miss: it preempts every in-flight
// prefetch, fetches the model on the critical path, and returns the
// stall the caller should charge to the frame. The model is NOT
// admitted to the store — the caller admits it through its normal
// Request path so hit/miss accounting stays in one place.
func (s *Scheduler) DemandFetch(ctx context.Context, model int) (time.Duration, error) {
	s.mu.Lock()
	if model < 0 || model >= len(s.models) {
		n := len(s.models)
		s.mu.Unlock()
		return 0, fmt.Errorf("prefetch: model %d of %d", model, n)
	}
	if s.closed {
		s.mu.Unlock()
		return 0, errors.New("prefetch: scheduler closed")
	}
	name := s.models[model].Name
	s.demandActive++
	for idx, fl := range s.inflight {
		s.cancelLocked(idx, fl)
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.demandActive--
		s.mu.Unlock()
	}()

	bytes, d, err := s.cfg.Fetcher.FetchModelNow(ctx, name)
	s.recordOutcome(err)
	if err != nil {
		s.demandFailures.Inc()
		return 0, err
	}
	s.demandFetches.Inc()
	s.demandBytes.Add(bytes)
	s.demandStall.Observe(d.Seconds())
	return d, nil
}

// Contains reports whether the model is already resident in the store.
func (s *Scheduler) Contains(model int) bool {
	s.mu.Lock()
	if model < 0 || model >= len(s.models) {
		s.mu.Unlock()
		return false
	}
	name := s.models[model].Name
	s.mu.Unlock()
	return s.store.Contains(name)
}

// ExtendModels appends newly published models to the repertoire the
// scheduler can fetch and widens the transition model to match — the
// continual-adaptation path, called when a rollout deploys a bundle
// with appended models. Existing indices, in-flight fetches and
// recorded transitions are untouched. Duplicate names are rejected:
// the name is the fetch key, and two indices sharing one key would
// corrupt budget accounting.
func (s *Scheduler) ExtendModels(more []Model) error {
	if len(more) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("prefetch: scheduler closed")
	}
	known := make(map[string]bool, len(s.models)+len(more))
	for _, m := range s.models {
		known[m.Name] = true
	}
	grown := make([]Model, 0, len(s.models)+len(more))
	grown = append(grown, s.models...)
	for _, m := range more {
		if known[m.Name] {
			return fmt.Errorf("prefetch: duplicate model %q", m.Name)
		}
		known[m.Name] = true
		grown = append(grown, m)
	}
	s.models = grown
	s.markov.Grow(len(grown))
	return nil
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Issued:          s.issued.Value(),
		Completed:       s.completed.Value(),
		Cancelled:       s.cancelled.Value(),
		Failed:          s.failed.Value(),
		SkippedBudget:   s.skippedBudget.Value(),
		SkippedBreaker:  s.skippedBreaker.Value(),
		SkippedPaused:   s.skippedPaused.Value(),
		PrefetchedBytes: s.prefetchedBytes.Value(),
		DemandFetches:   s.demandFetches.Value(),
		DemandFailures:  s.demandFailures.Value(),
		DemandBytes:     s.demandBytes.Value(),
		DemandStall:     time.Duration(s.demandStall.Sum() * 1e9),
		Observations:    s.markov.Observations(),
	}
	if s.cfg.Breaker != nil {
		st.BreakerOpens = s.cfg.Breaker.Opens()
	}
	return st
}

// SetPaused suspends (true) or resumes (false) background planning.
// While paused, Plan returns immediately (counted in SkippedPaused)
// without touching in-flight fetches; DemandFetch is unaffected. The
// pressure monitor flips this at the Elevated level — speculative
// link and memory traffic is the first thing to go when resources
// tighten, because dropping it degrades nothing that is being served.
func (s *Scheduler) SetPaused(p bool) { s.paused.Store(p) }

// Paused reports whether background planning is suspended.
func (s *Scheduler) Paused() bool { return s.paused.Load() }

// Breaker returns the scheduler's shared circuit breaker (nil without
// one).
func (s *Scheduler) Breaker() *breaker.Breaker { return s.cfg.Breaker }

// Close cancels every in-flight prefetch and waits for the background
// goroutines to drain. The scheduler is unusable afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	for idx, fl := range s.inflight {
		s.cancelLocked(idx, fl)
	}
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
}
