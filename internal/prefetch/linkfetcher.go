package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anole/internal/netsim"
)

// ErrLinkDown reports a background fetch attempted while the simulated
// link is in the Down state.
var ErrLinkDown = errors.New("prefetch: link down")

// requestBytes is the uplink cost of one model request (headers only;
// the payload flows downlink).
const requestBytes = 256

// DefaultFrameInterval is the simulated wall-clock per frame tick,
// matching the 10 FPS camera streams of the paper's field runs.
const DefaultFrameInterval = 100 * time.Millisecond

// pendingXfer is one in-flight simulated transfer. Channel transfers
// (done) park a FetchModel goroutine; callback transfers (notify) were
// registered through StartBackground and complete synchronously inside
// the Tick that passes their deadline.
type pendingXfer struct {
	deadline time.Duration // sim-clock completion time
	done     chan struct{}
	size     int64
	notify   func(bytes int64, err error)
}

// LinkFetcher is a Fetcher that moves model bytes over a simulated
// netsim.Link in frame-tick time. Each Tick advances the simulated
// clock by one frame interval and steps the link's Markov chain;
// background transfers complete when the clock passes their deadline,
// and an outage (Down) tick pushes every in-flight deadline out by one
// interval — bytes don't move while the link is down.
//
// The miss path (FetchModelNow) never blocks on ticks: it computes the
// stall — including waiting out an outage — advances the clock by it,
// and returns immediately, so the caller can charge the stall as frame
// latency.
//
// LinkFetcher owns its Link after construction: the link is stepped
// only through Tick/FetchModelNow, under the fetcher's lock, making the
// pair safe for concurrent use. Callers must not touch the Link
// directly afterwards.
type LinkFetcher struct {
	mu      sync.Mutex
	link    *netsim.Link
	sizes   map[string]int64
	every   time.Duration
	now     time.Duration
	pending []*pendingXfer

	transfers int64
	simBytes  int64
	downFails int64
}

// NewLinkFetcher wraps link for the given repertoire. frameInterval ≤ 0
// selects DefaultFrameInterval.
func NewLinkFetcher(link *netsim.Link, models []Model, frameInterval time.Duration) (*LinkFetcher, error) {
	if link == nil {
		return nil, errors.New("prefetch: nil link")
	}
	if len(models) == 0 {
		return nil, errors.New("prefetch: empty repertoire")
	}
	if frameInterval <= 0 {
		frameInterval = DefaultFrameInterval
	}
	sizes := make(map[string]int64, len(models))
	for _, m := range models {
		if m.Bytes <= 0 {
			return nil, fmt.Errorf("prefetch: model %q has %d bytes", m.Name, m.Bytes)
		}
		sizes[m.Name] = m.Bytes
	}
	return &LinkFetcher{link: link, sizes: sizes, every: frameInterval}, nil
}

// Interval returns the simulated duration of one Tick.
func (f *LinkFetcher) Interval() time.Duration { return f.every }

// Now returns the simulated clock.
func (f *LinkFetcher) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// State returns the link's current state.
func (f *LinkFetcher) State() netsim.LinkState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.link.State()
}

// Transferred reports completed transfers and their payload bytes
// (background and demand combined).
func (f *LinkFetcher) Transferred() (count, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transfers, f.simBytes
}

// Tick advances the simulated clock one frame interval and steps the
// link chain, completing due transfers. Callback transfers registered
// through StartBackground are notified before Tick returns, so a caller
// driving the clock observes their effects (e.g. the scheduler's cache
// insert) deterministically in frame-tick time. Implements Ticker.
func (f *LinkFetcher) Tick() {
	f.mu.Lock()
	f.now += f.every
	if f.link.Step() == netsim.Down {
		for _, p := range f.pending {
			p.deadline += f.every
		}
	}
	due := f.collectDueLocked()
	f.mu.Unlock()
	notifyDue(due)
}

// collectDueLocked completes due transfers: channel waiters are released
// in place and callback transfers are returned for notification outside
// the lock (their transfer counters are settled here, under it).
func (f *LinkFetcher) collectDueLocked() []*pendingXfer {
	kept := f.pending[:0]
	var due []*pendingXfer
	for _, p := range f.pending {
		switch {
		case p.deadline > f.now:
			kept = append(kept, p)
		case p.notify != nil:
			f.transfers++
			f.simBytes += p.size
			due = append(due, p)
		default:
			close(p.done)
		}
	}
	f.pending = kept
	return due
}

func notifyDue(due []*pendingXfer) {
	for _, p := range due {
		p.notify(p.size, nil)
	}
}

// StartBackground registers a background transfer at the link's current
// state and returns immediately; when a later Tick (or a demand fetch's
// clock advance) passes the transfer's deadline, done is invoked
// synchronously from that call before it returns, with the payload size.
// A Down link fails registration with ErrLinkDown. The returned cancel
// reports whether the transfer was still pending — when it returns
// false, done has run or is about to. Implements BackgroundStarter.
func (f *LinkFetcher) StartBackground(name string, done func(bytes int64, err error)) (func() bool, error) {
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("prefetch: unknown model %q", name)
	}
	d, up := f.link.Transfer(requestBytes, size)
	if !up {
		f.downFails++
		f.mu.Unlock()
		return nil, ErrLinkDown
	}
	p := &pendingXfer{deadline: f.now + d, size: size, notify: done}
	f.pending = append(f.pending, p)
	f.mu.Unlock()
	cancel := func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, q := range f.pending {
			if q == p {
				f.pending = append(f.pending[:i], f.pending[i+1:]...)
				return true
			}
		}
		return false
	}
	return cancel, nil
}

// FetchModel is the background path: it registers a transfer at the
// link's current state and blocks until enough Ticks pass (or ctx is
// cancelled). A Down link fails immediately with ErrLinkDown — the
// scheduler will simply re-plan later.
func (f *LinkFetcher) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return 0, 0, fmt.Errorf("prefetch: unknown model %q", name)
	}
	d, up := f.link.Transfer(requestBytes, size)
	if !up {
		f.downFails++
		f.mu.Unlock()
		return 0, 0, ErrLinkDown
	}
	p := &pendingXfer{deadline: f.now + d, done: make(chan struct{})}
	f.pending = append(f.pending, p)
	f.mu.Unlock()

	select {
	case <-p.done:
		f.mu.Lock()
		f.transfers++
		f.simBytes += size
		f.mu.Unlock()
		return size, d, nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, q := range f.pending {
			if q == p {
				f.pending = append(f.pending[:i], f.pending[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
		return 0, 0, ctx.Err()
	}
}

// demandDownCap bounds how many frame intervals a demand fetch will
// wait out an outage before giving up.
const demandDownCap = 10000

// FetchModelNow is the miss path: the device has no model to run, so it
// waits for the link — stepping frame intervals through an outage if
// necessary — transfers, and returns the whole stall at once. The
// simulated clock advances by the stall, which also lets concurrently
// registered background transfers complete on time.
func (f *LinkFetcher) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return 0, 0, fmt.Errorf("prefetch: unknown model %q", name)
	}
	var stall time.Duration
	for waited := 0; f.link.State() == netsim.Down; waited++ {
		if waited >= demandDownCap {
			f.downFails++
			f.mu.Unlock()
			return 0, 0, fmt.Errorf("prefetch: link down for %d frames fetching %q", demandDownCap, name)
		}
		f.now += f.every
		stall += f.every
		for _, p := range f.pending {
			p.deadline += f.every
		}
		f.link.Step()
	}
	d, _ := f.link.Transfer(requestBytes, size)
	f.now += d
	stall += d
	due := f.collectDueLocked()
	f.transfers++
	f.simBytes += size
	f.mu.Unlock()
	notifyDue(due)
	return size, stall, nil
}
