package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anole/internal/netsim"
)

// ErrLinkDown reports a background fetch attempted while the simulated
// link is in the Down state.
var ErrLinkDown = errors.New("prefetch: link down")

// ErrCorrupt reports a transfer whose payload arrived damaged — the
// device's checksum rejected the bytes, so they were quarantined
// (discarded, never admitted to any store). The background path surfaces
// it to the scheduler as an ordinary failure; the demand path retries
// in place.
var ErrCorrupt = errors.New("prefetch: transfer corrupted (checksum mismatch)")

// TransferCorrupter is implemented by links that can deliver damaged
// payloads (faults.Link). The fetcher consults it once per registered
// transfer; a corrupted transfer completes with ErrCorrupt instead of
// clean bytes. Links that never corrupt simply don't implement it.
type TransferCorrupter interface{ CorruptTransfer() bool }

// requestBytes is the uplink cost of one model request (headers only;
// the payload flows downlink).
const requestBytes = 256

// DefaultFrameInterval is the simulated wall-clock per frame tick,
// matching the 10 FPS camera streams of the paper's field runs.
const DefaultFrameInterval = 100 * time.Millisecond

// pendingXfer is one in-flight simulated transfer. Channel transfers
// (done) park a FetchModel goroutine; callback transfers (notify) were
// registered through StartBackground and complete synchronously inside
// the Tick that passes their deadline.
type pendingXfer struct {
	deadline time.Duration // sim-clock completion time
	done     chan struct{}
	size     int64
	notify   func(bytes int64, err error)
	// err is the transfer's predetermined outcome (ErrCorrupt for a
	// payload the injector damaged), fixed at registration and read only
	// after completion.
	err error
}

// LinkFetcher is a Fetcher that moves model bytes over a simulated
// netsim.Link in frame-tick time. Each Tick advances the simulated
// clock by one frame interval and steps the link's Markov chain;
// background transfers complete when the clock passes their deadline,
// and an outage (Down) tick pushes every in-flight deadline out by one
// interval — bytes don't move while the link is down.
//
// The miss path (FetchModelNow) never blocks on ticks: it computes the
// stall — including waiting out an outage — advances the clock by it,
// and returns immediately, so the caller can charge the stall as frame
// latency.
//
// LinkFetcher owns its Link after construction: the link is stepped
// only through Tick/FetchModelNow, under the fetcher's lock, making the
// pair safe for concurrent use. Callers must not touch the Link
// directly afterwards.
type LinkFetcher struct {
	mu      sync.Mutex
	link    netsim.Medium
	sizes   map[string]int64
	every   time.Duration
	now     time.Duration
	pending []*pendingXfer
	// downLimit bounds how many frame intervals a demand fetch waits out
	// an outage before failing with ErrLinkDown (SetDemandDownLimit).
	downLimit int

	transfers   int64
	simBytes    int64
	downFails   int64
	corrupted   int64
	quarantined int64
}

// NewLinkFetcher wraps link for the given repertoire. frameInterval ≤ 0
// selects DefaultFrameInterval. A link that also implements
// TransferCorrupter (faults.Link) can deliver damaged payloads; the
// fetcher quarantines them — corrupt bytes never reach a caller or a
// cache.
func NewLinkFetcher(link netsim.Medium, models []Model, frameInterval time.Duration) (*LinkFetcher, error) {
	if link == nil {
		return nil, errors.New("prefetch: nil link")
	}
	if len(models) == 0 {
		return nil, errors.New("prefetch: empty repertoire")
	}
	if frameInterval <= 0 {
		frameInterval = DefaultFrameInterval
	}
	sizes := make(map[string]int64, len(models))
	for _, m := range models {
		if m.Bytes <= 0 {
			return nil, fmt.Errorf("prefetch: model %q has %d bytes", m.Name, m.Bytes)
		}
		sizes[m.Name] = m.Bytes
	}
	return &LinkFetcher{link: link, sizes: sizes, every: frameInterval, downLimit: demandDownCap}, nil
}

// AddModels registers newly published models with the fetcher so their
// bytes can travel the link — the continual-adaptation path. Existing
// entries keep their sizes; re-adding a known name with a different
// size is rejected (the size is the transfer model, silently changing
// it would skew in-flight accounting).
func (f *LinkFetcher) AddModels(models []Model) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range models {
		if m.Bytes <= 0 {
			return fmt.Errorf("prefetch: model %q has %d bytes", m.Name, m.Bytes)
		}
		if have, ok := f.sizes[m.Name]; ok && have != m.Bytes {
			return fmt.Errorf("prefetch: model %q re-added with %d bytes, have %d", m.Name, m.Bytes, have)
		}
	}
	for _, m := range models {
		f.sizes[m.Name] = m.Bytes
	}
	return nil
}

// SetDemandDownLimit bounds how many frame intervals FetchModelNow will
// wait out an outage before failing with ErrLinkDown (default 10000;
// 0 fails immediately). Chaos and degraded-mode runs set a small limit
// so an outage costs a bounded stall and the runtime falls back to a
// resident model instead of freezing the frame.
func (f *LinkFetcher) SetDemandDownLimit(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	f.downLimit = n
}

// Interval returns the simulated duration of one Tick.
func (f *LinkFetcher) Interval() time.Duration { return f.every }

// Now returns the simulated clock.
func (f *LinkFetcher) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// State returns the link's current state.
func (f *LinkFetcher) State() netsim.LinkState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.link.State()
}

// Transferred reports completed clean transfers and their payload bytes
// (background and demand combined).
func (f *LinkFetcher) Transferred() (count, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transfers, f.simBytes
}

// LinkStats is a snapshot of the fetcher's transfer counters.
type LinkStats struct {
	// Transfers / Bytes count clean completed transfers and their
	// payload total.
	Transfers int64
	Bytes     int64
	// DownFails counts fetches refused or abandoned because the link was
	// down.
	DownFails int64
	// Corrupted counts transfers whose payload arrived damaged and was
	// quarantined (discarded before any admission); Quarantined counts
	// the demand-path refetches those corruptions forced.
	Corrupted   int64
	Quarantined int64
}

// Stats returns a snapshot of the fetcher's counters.
func (f *LinkFetcher) Stats() LinkStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return LinkStats{
		Transfers:   f.transfers,
		Bytes:       f.simBytes,
		DownFails:   f.downFails,
		Corrupted:   f.corrupted,
		Quarantined: f.quarantined,
	}
}

// Tick advances the simulated clock one frame interval and steps the
// link chain, completing due transfers. Callback transfers registered
// through StartBackground are notified before Tick returns, so a caller
// driving the clock observes their effects (e.g. the scheduler's cache
// insert) deterministically in frame-tick time. Implements Ticker.
func (f *LinkFetcher) Tick() {
	f.mu.Lock()
	f.now += f.every
	if f.link.Step() == netsim.Down {
		for _, p := range f.pending {
			p.deadline += f.every
		}
	}
	due := f.collectDueLocked()
	f.mu.Unlock()
	notifyDue(due)
}

// collectDueLocked completes due transfers: channel waiters are released
// in place and callback transfers are returned for notification outside
// the lock (their transfer counters are settled here, under it). A
// transfer predetermined to arrive corrupt is quarantined: it counts as
// a corruption, not a transfer, and completes with ErrCorrupt.
func (f *LinkFetcher) collectDueLocked() []*pendingXfer {
	kept := f.pending[:0]
	var due []*pendingXfer
	for _, p := range f.pending {
		switch {
		case p.deadline > f.now:
			kept = append(kept, p)
		case p.notify != nil:
			if p.err != nil {
				f.corrupted++
			} else {
				f.transfers++
				f.simBytes += p.size
			}
			due = append(due, p)
		default:
			close(p.done)
		}
	}
	f.pending = kept
	return due
}

func notifyDue(due []*pendingXfer) {
	for _, p := range due {
		if p.err != nil {
			p.notify(0, p.err)
		} else {
			p.notify(p.size, nil)
		}
	}
}

// registerLocked creates a transfer at the link's current state, drawing
// its corruption outcome from the link's injector when it has one; f.mu
// held. ok=false when the link is down.
func (f *LinkFetcher) registerLocked(size int64, done chan struct{}, notify func(int64, error)) (*pendingXfer, bool) {
	d, up := f.link.Transfer(requestBytes, size)
	if !up {
		return nil, false
	}
	p := &pendingXfer{deadline: f.now + d, size: size, done: done, notify: notify}
	if c, ok := f.link.(TransferCorrupter); ok && c.CorruptTransfer() {
		p.err = ErrCorrupt
	}
	f.pending = append(f.pending, p)
	return p, true
}

// StartBackground registers a background transfer at the link's current
// state and returns immediately; when a later Tick (or a demand fetch's
// clock advance) passes the transfer's deadline, done is invoked
// synchronously from that call before it returns, with the payload size.
// A Down link fails registration with ErrLinkDown. The returned cancel
// reports whether the transfer was still pending — when it returns
// false, done has run or is about to. Implements BackgroundStarter.
func (f *LinkFetcher) StartBackground(name string, done func(bytes int64, err error)) (func() bool, error) {
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("prefetch: unknown model %q", name)
	}
	p, up := f.registerLocked(size, nil, done)
	if !up {
		f.downFails++
		f.mu.Unlock()
		return nil, ErrLinkDown
	}
	f.mu.Unlock()
	cancel := func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, q := range f.pending {
			if q == p {
				f.pending = append(f.pending[:i], f.pending[i+1:]...)
				return true
			}
		}
		return false
	}
	return cancel, nil
}

// FetchModel is the background path: it registers a transfer at the
// link's current state and blocks until enough Ticks pass (or ctx is
// cancelled). A Down link fails immediately with ErrLinkDown — the
// scheduler will simply re-plan later — and a corrupted arrival fails
// with ErrCorrupt after the transfer time has elapsed.
func (f *LinkFetcher) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return 0, 0, fmt.Errorf("prefetch: unknown model %q", name)
	}
	p, up := f.registerLocked(size, make(chan struct{}), nil)
	if !up {
		f.downFails++
		f.mu.Unlock()
		return 0, 0, ErrLinkDown
	}
	d := p.deadline - f.now
	f.mu.Unlock()

	select {
	case <-p.done:
		f.mu.Lock()
		if p.err != nil {
			f.corrupted++
			f.mu.Unlock()
			return 0, d, p.err
		}
		f.transfers++
		f.simBytes += size
		f.mu.Unlock()
		return size, d, nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, q := range f.pending {
			if q == p {
				f.pending = append(f.pending[:i], f.pending[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
		return 0, 0, ctx.Err()
	}
}

// demandDownCap is the default bound on how many frame intervals a
// demand fetch will wait out an outage before giving up
// (SetDemandDownLimit overrides it).
const demandDownCap = 10000

// demandCorruptCap bounds how many corrupted arrivals one demand fetch
// will quarantine and refetch before giving up; at any corruption rate
// below certainty the retry loop terminates long before this.
const demandCorruptCap = 100

// FetchModelNow is the miss path: the device has no model to run, so it
// waits for the link — stepping frame intervals through an outage if
// necessary, up to the demand down limit — transfers, and returns the
// whole stall at once. A payload that arrives corrupted is quarantined
// and refetched in place, the extra transfer time joining the stall; the
// caller only ever sees clean bytes. The simulated clock advances by the
// stall, which also lets concurrently registered background transfers
// complete on time.
func (f *LinkFetcher) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	f.mu.Lock()
	size, ok := f.sizes[name]
	if !ok {
		f.mu.Unlock()
		return 0, 0, fmt.Errorf("prefetch: unknown model %q", name)
	}
	var stall time.Duration
	waited := 0
	for attempt := 0; ; attempt++ {
		for f.link.State() == netsim.Down {
			if waited >= f.downLimit {
				f.downFails++
				f.mu.Unlock()
				return 0, stall, fmt.Errorf("prefetch: %w after %d frames fetching %q", ErrLinkDown, waited, name)
			}
			waited++
			f.now += f.every
			stall += f.every
			for _, p := range f.pending {
				p.deadline += f.every
			}
			f.link.Step()
		}
		d, up := f.link.Transfer(requestBytes, size)
		if !up {
			// The link can drop between the outage wait and the transfer
			// (a fault injector forcing Down mid-loop); re-enter the wait.
			continue
		}
		f.now += d
		stall += d
		corrupt := false
		if c, ok := f.link.(TransferCorrupter); ok && c.CorruptTransfer() {
			corrupt = true
		}
		if !corrupt {
			due := f.collectDueLocked()
			f.transfers++
			f.simBytes += size
			f.mu.Unlock()
			notifyDue(due)
			return size, stall, nil
		}
		// Quarantine: the bytes failed their checksum and are discarded;
		// pay the wasted transfer and fetch again.
		f.corrupted++
		f.quarantined++
		if attempt+1 >= demandCorruptCap {
			due := f.collectDueLocked()
			f.mu.Unlock()
			notifyDue(due)
			return 0, stall, fmt.Errorf("prefetch: %w %d times fetching %q", ErrCorrupt, demandCorruptCap, name)
		}
	}
}
