package prefetch

import (
	"context"
	"sync"
	"testing"
	"time"

	"anole/internal/breaker"
	"anole/internal/modelcache"
)

// breakerClock is a hand-advanced clock for breaker cooldowns in tests.
type breakerClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *breakerClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *breakerClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestSchedulerBreakerPausesPlans(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	clk := &breakerClock{}
	br := breaker.New(breaker.Config{FailureThreshold: 1, Cooldown: time.Second, Now: clk.Now})
	s, err := NewScheduler(Config{Fetcher: errFetcher{}, TopK: 1, Breaker: br}, store, testModels(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The first plan's fetch fails and opens the breaker.
	s.Plan(0)
	waitFor(t, func() bool { return s.Stats().Failed == 1 }, "failed prefetch counted")
	waitFor(t, func() bool { return br.State() == breaker.Open }, "breaker open")

	// While open, plans are skipped without issuing fetches.
	s.Plan(0)
	s.Plan(0)
	st := s.Stats()
	if st.SkippedBreaker != 2 {
		t.Fatalf("skipped %d plans, want 2", st.SkippedBreaker)
	}
	if st.Issued != 1 {
		t.Fatalf("issued %d fetches, want only the pre-open one", st.Issued)
	}
	if st.BreakerOpens != 1 {
		t.Fatalf("breaker opens %d, want 1", st.BreakerOpens)
	}
}

func TestSchedulerBreakerHalfOpenProbeResumesPrefetch(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	clk := &breakerClock{}
	br := breaker.New(breaker.Config{FailureThreshold: 1, Cooldown: time.Second, Now: clk.Now})
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1, Breaker: br}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	br.Failure() // open directly: threshold 1
	if br.State() != breaker.Open {
		t.Fatalf("state %v after failure, want open", br.State())
	}
	s.Plan(0)
	if st := s.Stats(); st.SkippedBreaker != 1 || st.Issued != 0 {
		t.Fatalf("open breaker: skipped %d issued %d, want 1/0", st.SkippedBreaker, st.Issued)
	}

	// After the cooldown the breaker goes half-open and the next plan is
	// admitted as the probe; its success closes the breaker for good.
	clk.Advance(2 * time.Second)
	if br.State() != breaker.HalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", br.State())
	}
	for i := 0; i < 10; i++ {
		s.Observe(0, 1)
	}
	s.Plan(0)
	name := waitStarted(t, ff)
	ff.release(name)
	waitFor(t, func() bool { return s.Stats().Completed == 1 }, "probe prefetch completed")
	if br.State() != breaker.Closed {
		t.Fatalf("state %v after probe success, want closed", br.State())
	}
	s.Plan(1)
	if st := s.Stats(); st.SkippedBreaker != 1 {
		t.Fatalf("closed breaker still skipping: %d", st.SkippedBreaker)
	}
}

func TestSchedulerBreakerDemandOutcomesDriveState(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	clk := &breakerClock{}
	br := breaker.New(breaker.Config{FailureThreshold: 2, Cooldown: time.Second, Now: clk.Now})
	s, err := NewScheduler(Config{Fetcher: errFetcher{}, TopK: 0, Breaker: br}, store, testModels(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Demand fetches are never blocked by the breaker (the frame needs a
	// model), but their failures feed it.
	for i := 0; i < 2; i++ {
		if _, err := s.DemandFetch(context.Background(), 0); err == nil {
			t.Fatal("failing demand fetch succeeded")
		}
	}
	if br.State() != breaker.Open {
		t.Fatalf("state %v after %d demand failures, want open", br.State(), 2)
	}
	// Still not blocked while open.
	if _, err := s.DemandFetch(context.Background(), 0); err == nil {
		t.Fatal("failing demand fetch succeeded")
	}
	if st := s.Stats(); st.DemandFailures != 3 {
		t.Fatalf("demand failures %d, want 3", st.DemandFailures)
	}
}
