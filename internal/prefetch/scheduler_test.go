package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anole/internal/modelcache"
)

// fakeFetcher is a controllable Fetcher: background fetches block until
// released (or their context is cancelled), demand fetches return
// immediately with a fixed stall.
type fakeFetcher struct {
	mu       sync.Mutex
	gates    map[string]chan struct{}
	started  chan string
	demanded []string
	stall    time.Duration
}

func newFakeFetcher() *fakeFetcher {
	return &fakeFetcher{
		gates:   make(map[string]chan struct{}),
		started: make(chan string, 64),
		stall:   50 * time.Millisecond,
	}
}

func (f *fakeFetcher) gate(name string) chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gates[name]
	if !ok {
		g = make(chan struct{})
		f.gates[name] = g
	}
	return g
}

// release lets a blocked background fetch of name complete.
func (f *fakeFetcher) release(name string) {
	close(f.gate(name))
}

func (f *fakeFetcher) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	f.started <- name
	select {
	case <-f.gate(name):
		return 1000, 10 * time.Millisecond, nil
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
}

func (f *fakeFetcher) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	f.mu.Lock()
	f.demanded = append(f.demanded, name)
	f.mu.Unlock()
	return 1000, f.stall, nil
}

func testModels(n int) []Model {
	out := make([]Model, n)
	for i := range out {
		out[i] = Model{Name: fmt.Sprintf("M_%d", i), Bytes: 1 << 20}
	}
	return out
}

// waitStarted blocks until the fetcher reports a background fetch of
// some model, returning its name.
func waitStarted(t *testing.T, f *fakeFetcher) string {
	t.Helper()
	select {
	case name := <-f.started:
		return name
	case <-time.After(5 * time.Second):
		t.Fatal("no background fetch started")
		return ""
	}
}

func TestSchedulerPlanPrefetchesPrediction(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Teach 0→1 strongly, then plan from 0.
	for i := 0; i < 10; i++ {
		s.Observe(0, 1)
	}
	s.Plan(0)
	if got := waitStarted(t, ff); got != "M_1" {
		t.Fatalf("prefetched %q, want M_1", got)
	}
	ff.release("M_1")
	waitFor(t, func() bool { return store.Contains("M_1") }, "M_1 admitted")
	st := s.Stats()
	if st.Issued != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if cs := store.Stats(); cs.Prefetches != 1 {
		t.Fatalf("store prefetches %d", cs.Prefetches)
	}
}

func TestSchedulerCancelsStaleTarget(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 10; i++ {
		s.Observe(0, 1) // from 0, predict 1
		s.Observe(1, 2) // from 1, predict 2
	}
	s.Plan(0)
	if got := waitStarted(t, ff); got != "M_1" {
		t.Fatalf("first prefetch %q", got)
	}
	// The run moved on: from model 1 the prediction is 2, so the M_1
	// flight is stale and must be cancelled.
	s.Plan(1)
	if got := waitStarted(t, ff); got != "M_2" {
		t.Fatalf("second prefetch %q", got)
	}
	waitFor(t, func() bool { return s.Stats().Cancelled == 1 }, "stale flight cancelled")
	ff.release("M_2")
	waitFor(t, func() bool { return store.Contains("M_2") }, "M_2 admitted")
	if store.Contains("M_1") {
		t.Fatal("cancelled prefetch still admitted M_1")
	}
}

func TestSchedulerDemandPreemptsPrefetch(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 10; i++ {
		s.Observe(0, 1)
	}
	s.Plan(0)
	if got := waitStarted(t, ff); got != "M_1" {
		t.Fatalf("prefetch %q", got)
	}
	// Miss path: the in-flight prefetch must be cancelled, and the
	// demand stall returned.
	d, err := s.DemandFetch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != ff.stall {
		t.Fatalf("stall %v, want %v", d, ff.stall)
	}
	waitFor(t, func() bool { return s.Stats().Cancelled == 1 }, "prefetch preempted")
	st := s.Stats()
	if st.DemandFetches != 1 || st.DemandStall != ff.stall {
		t.Fatalf("demand stats %+v", st)
	}
	// DemandFetch must not admit: that's the caller's job.
	if store.Contains("M_2") {
		t.Fatal("demand fetch admitted into store")
	}
}

func TestSchedulerBudgetSkips(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	models := testModels(3) // 1 MiB each
	s, err := NewScheduler(Config{
		Fetcher:     ff,
		TopK:        2,
		BudgetBytes: 1 << 20, // room for exactly one model
		MaxInFlight: 2,
	}, store, models)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Plan(0) // uniform predictions: candidates 1 and 2, budget admits one
	first := waitStarted(t, ff)
	if first != "M_1" {
		t.Fatalf("budgeted prefetch %q", first)
	}
	waitFor(t, func() bool { return s.Stats().SkippedBudget == 1 }, "budget skip counted")
	if got := s.Stats(); got.Issued != 1 {
		t.Fatalf("issued %d with one-model budget", got.Issued)
	}
	ff.release("M_1")
}

func TestSchedulerDemandOnlyMode(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: -1}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Observe(0, 1)
	}
	s.Plan(0)
	select {
	case name := <-ff.started:
		t.Fatalf("demand-only scheduler prefetched %q", name)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := s.DemandFetch(context.Background(), 1); err != nil {
		t.Fatalf("demand fetch in demand-only mode: %v", err)
	}
}

func TestSchedulerSkipsResidentModels(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	if _, _, err := store.Request("M_1", 1); err != nil {
		t.Fatal(err)
	}
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Observe(0, 1)
	}
	s.Plan(0)
	select {
	case name := <-ff.started:
		t.Fatalf("prefetched resident model %q", name)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff}, store, testModels(3))
	if err != nil {
		t.Fatal(err)
	}
	s.Plan(0)
	waitStarted(t, ff)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain in-flight prefetch")
	}
	if _, err := s.DemandFetch(context.Background(), 0); err == nil {
		t.Fatal("DemandFetch after Close succeeded")
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	if _, err := NewScheduler(Config{}, store, testModels(2)); err == nil {
		t.Fatal("nil fetcher accepted")
	}
	if _, err := NewScheduler(Config{Fetcher: ff}, nil, testModels(2)); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewScheduler(Config{Fetcher: ff}, store, nil); err == nil {
		t.Fatal("empty repertoire accepted")
	}
	s, err := NewScheduler(Config{Fetcher: ff}, store, testModels(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.DemandFetch(context.Background(), 99); err == nil {
		t.Fatal("out-of-range demand fetch accepted")
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// errFetcher always fails; the scheduler must count failures, not hang.
type errFetcher struct{}

func (errFetcher) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	return 0, 0, errors.New("boom")
}
func (errFetcher) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	return 0, 0, errors.New("boom")
}

func TestSchedulerCountsFailures(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	s, err := NewScheduler(Config{Fetcher: errFetcher{}, TopK: 1}, store, testModels(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Plan(0)
	waitFor(t, func() bool { return s.Stats().Failed == 1 }, "failed prefetch counted")
	if _, err := s.DemandFetch(context.Background(), 1); err == nil {
		t.Fatal("failing demand fetch succeeded")
	}
	if st := s.Stats(); st.DemandFailures != 1 {
		t.Fatalf("demand failures %d", st.DemandFailures)
	}
}
