package prefetch

import (
	"context"
	"math"
	"testing"

	"anole/internal/modelcache"
)

// TestMarkovGrowPreservesCounts pins the transition model's continual-
// adaptation contract: widening the matrix keeps every recorded count,
// new rows start rankable (Laplace smoothing), and shrinking is a no-op.
func TestMarkovGrowPreservesCounts(t *testing.T) {
	m, err := NewMarkov(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m.Observe(0, 1)
	}

	m.Grow(4)
	if m.NumModels() != 4 {
		t.Fatalf("grew to %d models, want 4", m.NumModels())
	}
	if m.Observations() != 8 {
		t.Fatalf("observations %d after grow, want 8", m.Observations())
	}
	// The learned 0→1 edge must still dominate the smoothed row.
	if m.Prob(0, 1) <= m.Prob(0, 2) || m.Prob(0, 1) <= m.Prob(0, 3) {
		t.Fatalf("grow lost the learned edge: P(1|0)=%v P(2|0)=%v P(3|0)=%v",
			m.Prob(0, 1), m.Prob(0, 2), m.Prob(0, 3))
	}
	if top := m.TopK(0, 1); len(top) != 1 || top[0].Model != 1 {
		t.Fatalf("TopK after grow: %+v", top)
	}
	// Rows stay distributions.
	sum := 0.0
	for _, p := range m.Row(0) {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("row 0 sums to %v after grow", sum)
	}
	// New indices are live observation targets.
	m.Observe(3, 2)
	if m.Prob(3, 2) <= m.Prob(3, 1) {
		t.Fatalf("new row ignored an observation: P(2|3)=%v P(1|3)=%v", m.Prob(3, 2), m.Prob(3, 1))
	}
	// Grow never shrinks.
	m.Grow(3)
	if m.NumModels() != 4 {
		t.Fatalf("grow(3) shrank the matrix to %d", m.NumModels())
	}
}

// TestSchedulerExtendModels pins the scheduler's repertoire-growth path:
// appended models become plannable prefetch targets, duplicate names are
// rejected, and a closed scheduler refuses to grow.
func TestSchedulerExtendModels(t *testing.T) {
	store := modelcache.MustNewSharded(4, modelcache.LFU, 1)
	ff := newFakeFetcher()
	s, err := NewScheduler(Config{Fetcher: ff, TopK: 1}, store, testModels(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Contains(2) {
		t.Fatal("unknown index resident before extension")
	}
	if err := s.ExtendModels(nil); err != nil {
		t.Fatalf("empty extension: %v", err)
	}
	if err := s.ExtendModels([]Model{{Name: "M_2", Bytes: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ExtendModels([]Model{{Name: "M_1", Bytes: 1}}); err == nil {
		t.Fatal("duplicate model name accepted")
	}

	// The appended model is a first-class prefetch target: teach 0→2 and
	// plan from 0.
	for i := 0; i < 10; i++ {
		s.Observe(0, 2)
	}
	s.Plan(0)
	if got := waitStarted(t, ff); got != "M_2" {
		t.Fatalf("prefetched %q after extension, want M_2", got)
	}
	ff.release("M_2")
	waitFor(t, func() bool { return store.Contains("M_2") }, "M_2 admitted")
	if !s.Contains(2) {
		t.Fatal("extended model not reported resident")
	}

	s.Close()
	if err := s.ExtendModels([]Model{{Name: "M_3", Bytes: 1}}); err == nil {
		t.Fatal("closed scheduler grew its repertoire")
	}
}

// TestLinkFetcherAddModels pins the link-side half of repertoire growth:
// registered models become transferable, re-adding a known name with the
// same size is idempotent, a size change is rejected, and a rejected
// batch adds nothing (validation is atomic).
func TestLinkFetcherAddModels(t *testing.T) {
	lf := newLF(t, alwaysGood(), []Model{{Name: "M_0", Bytes: 1 << 20}})
	ctx := context.Background()

	if _, _, err := lf.FetchModelNow(ctx, "M_new"); err == nil {
		t.Fatal("unregistered model fetched")
	}
	if err := lf.AddModels([]Model{{Name: "M_new", Bytes: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lf.FetchModelNow(ctx, "M_new"); err != nil {
		t.Fatalf("fetch after AddModels: %v", err)
	}

	if err := lf.AddModels([]Model{{Name: "M_new", Bytes: 1 << 20}}); err != nil {
		t.Fatalf("idempotent re-add rejected: %v", err)
	}
	if err := lf.AddModels([]Model{{Name: "M_new", Bytes: 2 << 20}}); err == nil {
		t.Fatal("size change accepted")
	}

	// One bad entry voids the whole batch.
	if err := lf.AddModels([]Model{{Name: "M_y", Bytes: 1 << 20}, {Name: "M_z", Bytes: 0}}); err == nil {
		t.Fatal("zero-byte model accepted")
	}
	if _, _, err := lf.FetchModelNow(ctx, "M_y"); err == nil {
		t.Fatal("rejected batch partially registered")
	}
}
