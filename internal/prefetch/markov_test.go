package prefetch

import (
	"math"
	"sync"
	"testing"
)

func TestMarkovColdStartUniform(t *testing.T) {
	m, err := NewMarkov(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With no observations every transition has probability alpha/(alpha·n).
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			p := m.Prob(i, j)
			if math.Abs(p-0.25) > 1e-12 {
				t.Fatalf("P(%d|%d) = %v, want 0.25", j, i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestMarkovLearnsTransitions(t *testing.T) {
	m, err := NewMarkov(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Scene loop 0→1→2→0 observed many times.
	for i := 0; i < 50; i++ {
		m.Observe(0, 1)
		m.Observe(1, 2)
		m.Observe(2, 0)
	}
	if m.Observations() != 150 {
		t.Fatalf("observations %d", m.Observations())
	}
	// Smoothed estimate: (50+1)/(50+3) ≈ 0.962.
	if p := m.Prob(0, 1); math.Abs(p-51.0/53.0) > 1e-12 {
		t.Fatalf("P(1|0) = %v", p)
	}
	top := m.TopK(0, 2)
	if len(top) != 2 || top[0].Model != 1 {
		t.Fatalf("TopK(0) = %+v", top)
	}
	if top[0].Prob <= top[1].Prob {
		t.Fatalf("TopK not sorted: %+v", top)
	}
	// Row stays normalized after learning.
	row := m.Row(1)
	var sum float64
	for _, p := range row {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("row sums to %v", sum)
	}
}

func TestMarkovTopKExcludesCurrentAndClamps(t *testing.T) {
	m, _ := NewMarkov(3, 1)
	top := m.TopK(1, 10)
	if len(top) != 2 {
		t.Fatalf("TopK clamp: %+v", top)
	}
	for _, p := range top {
		if p.Model == 1 {
			t.Fatalf("TopK includes current model: %+v", top)
		}
	}
	// Uniform ties break by model index, deterministically.
	if top[0].Model != 0 || top[1].Model != 2 {
		t.Fatalf("tie-break order: %+v", top)
	}
	if m.TopK(-1, 2) != nil || m.TopK(3, 2) != nil || m.TopK(0, 0) != nil {
		t.Fatal("out-of-range TopK should be nil")
	}
}

func TestMarkovIgnoresInvalidObservations(t *testing.T) {
	m, _ := NewMarkov(3, 1)
	m.Observe(-1, 0)
	m.Observe(0, 3)
	m.Observe(2, 2) // self-transition
	if m.Observations() != 0 {
		t.Fatalf("invalid observations recorded: %d", m.Observations())
	}
}

func TestMarkovSmoothingDefaultsAndErrors(t *testing.T) {
	if _, err := NewMarkov(0, 1); err == nil {
		t.Fatal("zero-size model accepted")
	}
	m, err := NewMarkov(2, -5) // alpha defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Prob(0, 1); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("default-alpha prob %v", p)
	}
}

// TestMarkovConcurrent hammers Observe/TopK/Prob from many goroutines;
// run with -race.
func TestMarkovConcurrent(t *testing.T) {
	m, _ := NewMarkov(5, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe(g%5, (g+i)%5)
				_ = m.TopK(i%5, 3)
				_ = m.Prob(i%5, (i+1)%5)
			}
		}(g)
	}
	wg.Wait()
	if m.Observations() == 0 {
		t.Fatal("no observations recorded")
	}
}
