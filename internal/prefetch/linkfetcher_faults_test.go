package prefetch

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"anole/internal/netsim"
	"anole/internal/xrand"
)

// scriptedCorruptLink wraps a Medium with a fixed per-transfer corruption
// script (false past its end), exercising the TransferCorrupter path
// without a live injector.
type scriptedCorruptLink struct {
	netsim.Medium
	script []bool
	i      int
}

func (l *scriptedCorruptLink) CorruptTransfer() bool {
	if l.i >= len(l.script) {
		return false
	}
	v := l.script[l.i]
	l.i++
	return v
}

func newCorruptLF(t *testing.T, cfg netsim.Config, models []Model, script []bool) *LinkFetcher {
	t.Helper()
	link, err := netsim.NewLink(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewLinkFetcher(&scriptedCorruptLink{Medium: link, script: script}, models, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return lf
}

func TestLinkFetcherDemandQuarantinesAndRefetches(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newCorruptLF(t, alwaysGood(), models, []bool{true})

	size, stall, err := lf.FetchModelNow(context.Background(), "M_0")
	if err != nil {
		t.Fatal(err)
	}
	if size != 1<<20 {
		t.Fatalf("size %d", size)
	}
	// The corrupted transfer's time is paid, then the refetch's: two
	// Good-state transfers.
	want := 2 * goodTransfer(1<<20)
	if diff := stall - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("stall %v, want ≈%v (corrupt transfer + refetch)", stall, want)
	}
	st := lf.Stats()
	if st.Corrupted != 1 || st.Quarantined != 1 {
		t.Fatalf("corrupted %d quarantined %d, want 1/1", st.Corrupted, st.Quarantined)
	}
	if st.Transfers != 1 || st.Bytes != 1<<20 {
		t.Fatalf("transfers %d bytes %d: the quarantined arrival must not count", st.Transfers, st.Bytes)
	}
}

func TestLinkFetcherDemandCorruptCapFails(t *testing.T) {
	script := make([]bool, demandCorruptCap+10)
	for i := range script {
		script[i] = true
	}
	models := []Model{{Name: "M_0", Bytes: 1 << 10}}
	lf := newCorruptLF(t, alwaysGood(), models, script)

	_, _, err := lf.FetchModelNow(context.Background(), "M_0")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	st := lf.Stats()
	if st.Corrupted != demandCorruptCap {
		t.Fatalf("corrupted %d, want %d", st.Corrupted, demandCorruptCap)
	}
	if st.Transfers != 0 {
		t.Fatalf("transfers %d, want 0 — no corrupt payload may be delivered", st.Transfers)
	}
}

func TestLinkFetcherBackgroundCorruptFailsFetch(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newCorruptLF(t, alwaysGood(), models, []bool{true})

	done := make(chan error, 1)
	go func() {
		_, _, err := lf.FetchModel(context.Background(), "M_0")
		done <- err
	}()
	waitFor(t, func() bool {
		lf.mu.Lock()
		defer lf.mu.Unlock()
		return len(lf.pending) == 1
	}, "transfer registered")
	for i := 0; i < 6; i++ {
		lf.Tick()
	}
	if err := <-done; !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	st := lf.Stats()
	if st.Corrupted != 1 || st.Transfers != 0 {
		t.Fatalf("corrupted %d transfers %d, want 1/0", st.Corrupted, st.Transfers)
	}
}

func TestLinkFetcherStartBackgroundCorruptNotifiesError(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 3 << 20}}
	lf := newCorruptLF(t, alwaysGood(), models, []bool{true})

	var gotBytes int64 = -1
	var gotErr error
	_, err := lf.StartBackground("M_0", func(bytes int64, err error) {
		gotBytes, gotErr = bytes, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lf.Tick()
	}
	if !errors.Is(gotErr, ErrCorrupt) {
		t.Fatalf("notified err = %v, want ErrCorrupt", gotErr)
	}
	if gotBytes != 0 {
		t.Fatalf("notified %d bytes with a corrupt payload, want 0", gotBytes)
	}
}

func TestLinkFetcherDemandDownLimitFailsFast(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, goodThenDown(), models)
	lf.SetDemandDownLimit(0)
	lf.Tick() // Good → Down, forever
	_, stall, err := lf.FetchModelNow(context.Background(), "M_0")
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if stall != 0 {
		t.Fatalf("stall %v with a zero down limit, want 0", stall)
	}
	if st := lf.Stats(); st.DownFails != 1 {
		t.Fatalf("down fails %d, want 1", st.DownFails)
	}
}

func TestLinkFetcherDemandDownLimitBoundsOutageWait(t *testing.T) {
	models := []Model{{Name: "M_0", Bytes: 1 << 20}}
	lf := newLF(t, goodThenDown(), models)
	lf.SetDemandDownLimit(5)
	lf.Tick() // Good → Down, forever
	_, stall, err := lf.FetchModelNow(context.Background(), "M_0")
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if want := 5 * lf.Interval(); stall != want {
		t.Fatalf("stall %v, want %v (5 waited frames)", stall, want)
	}
	if !strings.Contains(err.Error(), "after 5 frames") {
		t.Fatalf("error %q does not report the waited frames", err)
	}
}
