package breaker

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable monotonic clock for deterministic cooldown
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{}
	return New(Config{FailureThreshold: threshold, Cooldown: cooldown, Now: clk.Now}), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("after cooldown: state %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	// Probe success closes.
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after probe success: state %v, want closed", got)
	}

	// Probe failure reopens and counts another trip.
	b.Failure()
	clk.Advance(time.Second)
	b.Failure() // half-open → open
	if got := b.State(); got != Open {
		t.Fatalf("after probe failure: state %v, want open", got)
	}
	if b.Opens() != 3 {
		t.Fatalf("opens %d, want 3", b.Opens())
	}
}

// TestBreakerFailureWhileOpenRefreshesCooldown: the probe should happen
// a full cooldown after the LAST failure, not the first.
func TestBreakerFailureWhileOpenRefreshesCooldown(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure() // opens at t=0
	clk.Advance(500 * time.Millisecond)
	b.Failure() // still open; cooldown restarts at t=0.5s
	clk.Advance(700 * time.Millisecond)
	if got := b.State(); got != Open {
		t.Fatalf("cooldown not refreshed: state %v at t=1.2s, want open until t=1.5s", got)
	}
	clk.Advance(300 * time.Millisecond)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state %v at t=1.5s, want half-open", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("default threshold tripped early: %v", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("default threshold did not trip at 5: %v", got)
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines; run
// with -race to prove the locking.
func TestBreakerConcurrent(t *testing.T) {
	b, clk := newTestBreaker(4, 10*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if i%50 == 0 {
					clk.Advance(5 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Opens() < 0 {
		t.Fatal("negative opens")
	}
}
