package breaker

import (
	"sync"
	"testing"
	"time"

	"anole/internal/telemetry"
)

// fakeClock is an injectable monotonic clock for deterministic cooldown
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{}
	return New(Config{FailureThreshold: threshold, Cooldown: cooldown, Now: clk.Now}), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("after cooldown: state %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	// Probe success closes.
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after probe success: state %v, want closed", got)
	}

	// Probe failure reopens and counts another trip.
	b.Failure()
	clk.Advance(time.Second)
	b.Failure() // half-open → open
	if got := b.State(); got != Open {
		t.Fatalf("after probe failure: state %v, want open", got)
	}
	if b.Opens() != 3 {
		t.Fatalf("opens %d, want 3", b.Opens())
	}
}

// TestBreakerFailureWhileOpenRefreshesCooldown: the probe should happen
// a full cooldown after the LAST failure, not the first.
func TestBreakerFailureWhileOpenRefreshesCooldown(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure() // opens at t=0
	clk.Advance(500 * time.Millisecond)
	b.Failure() // still open; cooldown restarts at t=0.5s
	clk.Advance(700 * time.Millisecond)
	if got := b.State(); got != Open {
		t.Fatalf("cooldown not refreshed: state %v at t=1.2s, want open until t=1.5s", got)
	}
	clk.Advance(300 * time.Millisecond)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state %v at t=1.5s, want half-open", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("default threshold tripped early: %v", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("default threshold did not trip at 5: %v", got)
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines; run
// with -race to prove the locking.
func TestBreakerConcurrent(t *testing.T) {
	b, clk := newTestBreaker(4, 10*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if i%50 == 0 {
					clk.Advance(5 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Opens() < 0 {
		t.Fatal("negative opens")
	}
}

// TestBreakerTelemetry drives the state machine with a registry
// attached and checks the anole_breaker_* series track it: the gauge
// mirrors the current state and the counters mirror Opens/HalfOpens.
func TestBreakerTelemetry(t *testing.T) {
	clk := &fakeClock{}
	reg := telemetry.NewRegistry()
	b := New(Config{FailureThreshold: 1, Cooldown: time.Second, Now: clk.Now, Metrics: reg})

	read := func(name string) float64 {
		t.Helper()
		return telemetry.Map(reg)[name]
	}

	b.Failure() // closed → open
	if got := read("anole_breaker_state"); got != float64(Open) {
		t.Fatalf("state gauge %v, want %v", got, float64(Open))
	}
	clk.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if got := read("anole_breaker_state"); got != float64(HalfOpen) {
		t.Fatalf("state gauge %v, want %v", got, float64(HalfOpen))
	}
	b.Success() // probe succeeds → closed
	if got := read("anole_breaker_state"); got != float64(Closed) {
		t.Fatalf("state gauge %v, want %v", got, float64(Closed))
	}

	b.Failure() // trip again
	clk.Advance(time.Second)
	b.State() // lazy half-open transition

	if got, want := read("anole_breaker_opens_total"), float64(b.Opens()); got != want {
		t.Fatalf("opens counter %v, Opens() %v", got, want)
	}
	if got, want := read("anole_breaker_half_open_probes_total"), float64(b.HalfOpens()); got != want || want != 2 {
		t.Fatalf("half-open counter %v, HalfOpens() %v, want 2", got, want)
	}
}

// TestBreakerHalfOpensIsLazy pins that HalfOpens itself applies the
// pending cooldown transition, so a caller snapshotting counters after
// the clock passed the cooldown sees the probe window.
func TestBreakerHalfOpensIsLazy(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.Advance(2 * time.Second)
	if got := b.HalfOpens(); got != 1 {
		t.Fatalf("HalfOpens after cooldown = %d, want 1 (lazy transition not applied)", got)
	}
}
