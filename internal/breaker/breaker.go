// Package breaker implements the circuit breaker guarding the
// device↔cloud path. Repeated fetch failures — outages, 5xx bursts,
// corrupted payloads — trip the breaker open; while open, callers fail
// fast instead of stacking doomed attempts on a dead link. After a
// cooldown the breaker goes half-open and tentatively admits traffic: the
// first success closes it, the first failure reopens it. One breaker is
// shared between repo.Client and the prefetch scheduler, so a link that
// cannot serve demand fetches also pauses speculative prefetching.
//
// Time is read through an injectable monotonic clock so the breaker works
// both on the wall clock (HTTP fetches) and on a simulated frame-tick
// clock (prefetch.LinkFetcher.Now), keeping chaos runs deterministic.
package breaker

import (
	"fmt"
	"sync"
	"time"

	"anole/internal/telemetry"
)

// State is the breaker's admission mode.
type State uint8

// Breaker states.
const (
	// Closed admits all traffic; consecutive failures are counted.
	Closed State = iota
	// Open rejects all traffic until the cooldown elapses.
	Open
	// HalfOpen tentatively admits traffic after the cooldown: the first
	// success closes the breaker, the first failure reopens it. Admission
	// is not limited to a single probe — a cancelled probe must not
	// wedge the breaker — but any failure snaps it back open.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes a Breaker. The zero value selects the defaults.
type Config struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before going
	// half-open (default 2s). A failure while open refreshes the
	// cooldown, so the probe happens Cooldown after the *last* failure.
	Cooldown time.Duration
	// Now is the monotonic clock the cooldown is measured on. Nil
	// selects the wall clock (time.Since construction); simulated paths
	// inject their own — prefetch.LinkFetcher.Now — so breaker timing
	// follows the frame-tick clock deterministically.
	Now func() time.Duration
	// Metrics, when non-nil, registers the breaker's state gauge and
	// transition counters (anole_breaker_*) on the given telemetry
	// registry, so /metrics shows admission mode and trip counts live.
	Metrics *telemetry.Registry
	// OnTransition, when non-nil, observes every state change with the
	// old and new states (an Open-state cooldown refresh is not a
	// transition). The flight recorder hangs its breaker events here.
	// It runs with the breaker's lock held: keep it fast and never call
	// back into the breaker.
	OnTransition func(from, to State)
}

// Breaker is a three-state circuit breaker. All methods are safe for
// concurrent use. Construct with New.
type Breaker struct {
	mu        sync.Mutex
	cfg       Config
	state     State
	failures  int
	openedAt  time.Duration
	opens     int64
	halfOpens int64

	// Telemetry handles (nil-safe no-ops without Config.Metrics).
	stateGauge   *telemetry.Gauge
	opensCtr     *telemetry.Counter
	halfOpensCtr *telemetry.Counter
}

// New builds a breaker; zero-valued Config fields take the documented
// defaults.
func New(cfg Config) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	return &Breaker{
		cfg:          cfg,
		stateGauge:   cfg.Metrics.Gauge("anole_breaker_state", "admission mode: 0 closed, 1 open, 2 half-open"),
		opensCtr:     cfg.Metrics.Counter("anole_breaker_opens_total", "transitions to Open"),
		halfOpensCtr: cfg.Metrics.Counter("anole_breaker_half_open_probes_total", "cooldown expiries admitting a half-open probe window"),
	}
}

// stateLocked applies the open→half-open transition lazily: the breaker
// has no timers, it re-evaluates the cooldown whenever it is consulted.
func (b *Breaker) stateLocked() State {
	if b.state == Open && b.cfg.Now()-b.openedAt >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.halfOpens++
		b.halfOpensCtr.Inc()
		b.stateGauge.Set(float64(HalfOpen))
		b.notifyLocked(Open, HalfOpen)
	}
	return b.state
}

// State returns the current state, applying the cooldown transition.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// Allow reports whether an attempt may proceed: true when closed or
// half-open, false while open.
func (b *Breaker) Allow() bool {
	return b.State() != Open
}

// Success records a successful attempt, closing the breaker from any
// state and resetting the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	from := b.state
	b.state = Closed
	b.failures = 0
	b.stateGauge.Set(float64(Closed))
	if from != Closed {
		b.notifyLocked(from, Closed)
	}
}

// Failure records a failed attempt. In Closed it counts toward the
// threshold; in HalfOpen it reopens immediately (the probe failed); in
// Open it refreshes the cooldown, pushing the next probe out.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	case HalfOpen:
		b.openLocked()
	case Open:
		b.openedAt = b.cfg.Now()
	}
}

// openLocked transitions to Open and stamps the cooldown start; b.mu
// held.
func (b *Breaker) openLocked() {
	from := b.state
	b.state = Open
	b.failures = 0
	b.openedAt = b.cfg.Now()
	b.opens++
	b.opensCtr.Inc()
	b.stateGauge.Set(float64(Open))
	b.notifyLocked(from, Open)
}

// notifyLocked invokes the transition hook; b.mu held.
func (b *Breaker) notifyLocked(from, to State) {
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// HalfOpens returns how many cooldown expiries have moved the breaker
// into HalfOpen — the number of probe windows the path was granted.
// Chaos reports expose it as breakerHalfOpenProbes.
func (b *Breaker) HalfOpens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stateLocked()
	return b.halfOpens
}
