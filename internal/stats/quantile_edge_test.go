package stats

import (
	"math"
	"testing"
)

// TestQuantileSingleSample pins the degenerate one-observation case the
// telemetry histograms hit on their very first Observe: every quantile
// is that observation.
func TestQuantileSingleSample(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := Quantile([]float64{3.5}, q); got != 3.5 {
			t.Errorf("Quantile([3.5], %v) = %v", q, got)
		}
	}
}

// TestQuantileAllEqual pins the all-identical case (e.g. a latency
// histogram fed by a constant simulator): interpolation between equal
// order statistics must return exactly that value, never drift.
func TestQuantileAllEqual(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 0.125
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.999, 1} {
		if got := Quantile(xs, q); got != 0.125 {
			t.Errorf("Quantile(all-0.125, %v) = %v", q, got)
		}
	}
}

// TestQuantileOutOfRangeQ pins clamping: q outside [0,1] returns the
// extremes rather than indexing out of bounds.
func TestQuantileOutOfRangeQ(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("q=-0.5 -> %v, want min", got)
	}
	if got := Quantile(xs, 1.5); got != 3 {
		t.Errorf("q=1.5 -> %v, want max", got)
	}
}

// TestQuantileTwoSamplesInterpolates pins exact linear interpolation on
// the smallest interpolatable sample.
func TestQuantileTwoSamplesInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.25, 2.5}, {0.95, 9.5},
	} {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile([0,10], %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestQuantileEmptyIsZero pins the zero-sample convention shared with
// the telemetry layer: no observations -> 0, never NaN.
func TestQuantileEmptyIsZero(t *testing.T) {
	for _, q := range []float64{0, 0.5, 1} {
		got := Quantile(nil, q)
		if got != 0 || math.IsNaN(got) {
			t.Errorf("Quantile(nil, %v) = %v", q, got)
		}
	}
}

// TestHistogramBucketBoundary pins which bin a value exactly on an
// interior boundary lands in: idx = floor((x-lo)/width), so a boundary
// value belongs to the higher bin, and hi itself clamps into the last.
func TestHistogramBucketBoundary(t *testing.T) {
	// [0,10) in 5 bins of width 2, boundaries at 2,4,6,8: by the floor
	// rule 2 -> bin 1, 4 -> bin 2, 6 -> bin 3, 8 -> bin 4.
	counts := Histogram([]float64{2, 4, 6, 8}, 0, 10, 5)
	want := []int{0, 1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("boundary binning = %v, want %v", counts, want)
		}
	}

	// hi and values above it clamp into the last bin; lo and below into
	// the first.
	counts = Histogram([]float64{-5, 0, 10, 15}, 0, 10, 5)
	if counts[0] != 2 || counts[4] != 2 {
		t.Fatalf("clamping = %v, want 2 in first and last", counts)
	}
}

// TestHistogramSingleBucket pins nbins=1: everything lands in the one
// bin regardless of range position.
func TestHistogramSingleBucket(t *testing.T) {
	counts := Histogram([]float64{-1, 0, 0.5, 1, 2}, 0, 1, 1)
	if len(counts) != 1 || counts[0] != 5 {
		t.Fatalf("single-bucket = %v", counts)
	}
}

// TestSummarizeSingleSample pins Summary on one observation: std 0 (not
// NaN from an n-1 division), all positional stats equal to the sample.
func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Std != 0 || math.IsNaN(s.Std) {
		t.Fatalf("single-sample std = %v, want 0", s.Std)
	}
}
