package stats_test

import (
	"fmt"

	"anole/internal/stats"
)

// Detection metrics from raw matching counts.
func ExampleComputePRF1() {
	m := stats.ComputePRF1(8, 2, 2)
	fmt.Printf("P=%.2f R=%.2f F1=%.2f\n", m.Precision, m.Recall, m.F1)
	// Output:
	// P=0.80 R=0.80 F1=0.80
}

// The empirical CDF used throughout the Fig. 5 and Fig. 8 analyses.
func ExampleCDF() {
	points := stats.CDF([]float64{3, 1, 2, 2})
	for _, p := range points {
		fmt.Printf("P(X<=%.0f)=%.2f\n", p.Value, p.Frac)
	}
	// Output:
	// P(X<=1)=0.25
	// P(X<=2)=0.75
	// P(X<=3)=1.00
}

// Gini measures sampling imbalance (Fig. 3): zero for a perfectly
// balanced allocation.
func ExampleGini() {
	fmt.Printf("balanced %.2f, concentrated %.2f\n",
		stats.Gini([]float64{5, 5, 5, 5}),
		stats.Gini([]float64{0, 0, 0, 20}))
	// Output:
	// balanced 0.00, concentrated 0.75
}

// Ranking model suitability scores, ties broken by index.
func ExampleRankDescending() {
	fmt.Println(stats.RankDescending([]float64{0.2, 0.7, 0.1}))
	// Output:
	// [1 0 2]
}
