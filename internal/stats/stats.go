// Package stats provides the descriptive statistics used across the
// experiment harness: summaries, quantiles, empirical CDFs, histograms,
// boxplot five-number summaries, classification metrics (precision, recall,
// F1, confusion matrices), and distribution-shape diagnostics such as the
// Gini imbalance coefficient used to assess sampling balance (Fig. 3) and
// the power-law tail of model utility (Fig. 4b).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs. An empty
// sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Boxplot is a five-number summary plus mean, mirroring the boxplots in
// Fig. 7(a).
type Boxplot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// BoxplotOf computes the five-number summary of xs.
func BoxplotOf(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Boxplot{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// CDFPoint is one (value, cumulative fraction) pair of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical cumulative distribution of xs evaluated at each
// distinct sample value, in ascending order.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse ties to the last occurrence so Frac is P(X <= v).
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, CDFPoint{Value: sorted[i], Frac: float64(i+1) / n})
	}
	return points
}

// CDFAt returns the empirical P(X <= v) for sample xs.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi].
// Values outside the range are clamped into the boundary bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		return nil
	}
	counts := make([]int, nbins)
	if hi <= lo {
		counts[0] = len(xs)
		return counts
	}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return counts
}

// Gini returns the Gini coefficient of non-negative xs: 0 for perfectly
// balanced samples, approaching 1 for maximal concentration. Used as the
// imbalance measure in the adaptive-sampling experiment (Fig. 3).
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// Normalize scales xs so that the maximum is 1. A zero-max sample is
// returned unchanged (copied).
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	var max float64
	for _, x := range out {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return out
	}
	for i := range out {
		out[i] /= max
	}
	return out
}

// NormalizedEntropy returns the Shannon entropy of the distribution
// obtained by normalizing non-negative xs to sum 1, divided by log(n)
// so the result lies in [0, 1]: 0 when all mass sits on one element,
// 1 when mass is uniform. Negative entries are clamped to 0; a sample
// with no positive mass, or fewer than two elements, scores 0. The
// drift detector windows this over decision scores as its uncertainty
// signal.
func NormalizedEntropy(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var total float64
	for _, x := range xs {
		if x > 0 {
			total += x
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		p := x / total
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(len(xs)))
}

// PowerLawAlpha fits the exponent of a discrete power law p(r) ~ r^-alpha
// to the rank-frequency distribution of positive values xs (largest value is
// rank 1) by least squares in log-log space. Used to verify the long-tailed
// model-utility distribution of Fig. 4(b). Returns 0 when fewer than two
// positive values exist.
func PowerLawAlpha(xs []float64) float64 {
	var positive []float64
	for _, x := range xs {
		if x > 0 {
			positive = append(positive, x)
		}
	}
	if len(positive) < 2 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(positive)))
	var sx, sy, sxx, sxy float64
	n := float64(len(positive))
	for i, v := range positive {
		x := math.Log(float64(i + 1))
		y := math.Log(v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}

// PRF1 holds precision, recall and the F1 score of a detection or
// classification outcome.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// ComputePRF1 derives precision, recall and F1 from raw counts. Empty
// denominators yield zeros, matching the convention used when a window
// contains no objects.
func ComputePRF1(tp, fp, fn int) PRF1 {
	m := PRF1{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Add accumulates counts from another PRF1 and recomputes the derived
// rates.
func (m PRF1) Add(other PRF1) PRF1 {
	return ComputePRF1(m.TP+other.TP, m.FP+other.FP, m.FN+other.FN)
}

// ConfusionMatrix is a square matrix of prediction counts: Counts[i][j] is
// the number of samples with true class i predicted as class j.
type ConfusionMatrix struct {
	Counts [][]int
	K      int
}

// NewConfusionMatrix returns an empty k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	return &ConfusionMatrix{Counts: counts, K: k}
}

// Observe records one (trueClass, predictedClass) observation. Indices out
// of range are ignored.
func (c *ConfusionMatrix) Observe(trueClass, predicted int) {
	if trueClass < 0 || trueClass >= c.K || predicted < 0 || predicted >= c.K {
		return
	}
	c.Counts[trueClass][predicted]++
}

// Accuracy returns the fraction of diagonal observations.
func (c *ConfusionMatrix) Accuracy() float64 {
	var diag, total int
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			total += c.Counts[i][j]
			if i == j {
				diag += c.Counts[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// RowNormalized returns the matrix with each row scaled to sum to 1 (rows
// with no observations stay zero). This is the form plotted in Fig. 6.
func (c *ConfusionMatrix) RowNormalized() [][]float64 {
	out := make([][]float64, c.K)
	for i := 0; i < c.K; i++ {
		out[i] = make([]float64, c.K)
		var rowSum int
		for j := 0; j < c.K; j++ {
			rowSum += c.Counts[i][j]
		}
		if rowSum == 0 {
			continue
		}
		for j := 0; j < c.K; j++ {
			out[i][j] = float64(c.Counts[i][j]) / float64(rowSum)
		}
	}
	return out
}

// DiagonalMass returns the mean of the row-normalized diagonal over rows
// that have observations — a scalar "how confusion-free is this matrix"
// score.
func (c *ConfusionMatrix) DiagonalMass() float64 {
	norm := c.RowNormalized()
	var sum float64
	rows := 0
	for i := 0; i < c.K; i++ {
		var rowTotal float64
		for j := 0; j < c.K; j++ {
			rowTotal += norm[i][j]
		}
		if rowTotal == 0 {
			continue
		}
		sum += norm[i][i]
		rows++
	}
	if rows == 0 {
		return 0
	}
	return sum / float64(rows)
}

// String renders the row-normalized matrix compactly for logs.
func (c *ConfusionMatrix) String() string {
	norm := c.RowNormalized()
	out := ""
	for i := range norm {
		for j := range norm[i] {
			out += fmt.Sprintf("%5.2f ", norm[i][j])
		}
		out += "\n"
	}
	return out
}

// ArgmaxFloat returns the index of the maximum element of xs (first winner
// on ties), or -1 for an empty slice.
func ArgmaxFloat(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// RankDescending returns the indices of xs sorted by value descending,
// breaking ties by lower index first so ranking is deterministic.
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return xs[idx[a]] > xs[idx[b]]
	})
	return idx
}

// ECE computes the Expected Calibration Error of a classifier from
// (confidence, correct) pairs: predictions are bucketed into nbins
// equal-width confidence bins and the bin-weighted mean |accuracy −
// confidence| is returned. 0 means perfectly calibrated confidences.
func ECE(confidences []float64, correct []bool, nbins int) float64 {
	if len(confidences) == 0 || len(confidences) != len(correct) || nbins <= 0 {
		return 0
	}
	sumConf := make([]float64, nbins)
	hits := make([]int, nbins)
	counts := make([]int, nbins)
	for i, c := range confidences {
		b := int(c * float64(nbins))
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		sumConf[b] += c
		counts[b]++
		if correct[i] {
			hits[b]++
		}
	}
	var ece float64
	n := float64(len(confidences))
	for b := 0; b < nbins; b++ {
		if counts[b] == 0 {
			continue
		}
		acc := float64(hits[b]) / float64(counts[b])
		conf := sumConf[b] / float64(counts[b])
		ece += float64(counts[b]) / n * math.Abs(acc-conf)
	}
	return ece
}
