package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"anole/internal/xrand"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single-element summary: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBoxplotOf(t *testing.T) {
	b := BoxplotOf([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 9 {
		t.Fatalf("boxplot: %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Fatalf("quartiles: %+v", b)
	}
}

func TestCDFMonotone(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Norm()
	}
	pts := CDF(xs)
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF should end at 1, got %v", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value || pts[i].Frac <= pts[i-1].Frac {
			t.Fatal("CDF not strictly increasing")
		}
	}
}

func TestCDFTies(t *testing.T) {
	pts := CDF([]float64{1, 1, 2})
	if len(pts) != 2 {
		t.Fatalf("expected 2 distinct points, got %d", len(pts))
	}
	if !almostEqual(pts[0].Frac, 2.0/3.0, 1e-12) {
		t.Fatalf("P(X<=1) = %v", pts[0].Frac)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Fatalf("empty CDFAt = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 0.5, 1.5, 2.5, 10, -5}, 0, 3, 3)
	if counts[0] != 3 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("histogram: %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts := Histogram([]float64{1, 2}, 5, 5, 4)
	if counts[0] != 2 {
		t.Fatalf("degenerate histogram: %v", counts)
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Fatal("zero bins should return nil")
	}
}

func TestGiniBalanced(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !almostEqual(g, 0, 1e-12) {
		t.Fatalf("balanced Gini = %v", g)
	}
}

func TestGiniConcentrated(t *testing.T) {
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated Gini = %v, want high", g)
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a := Gini([]float64{1, 5, 2, 9})
	b := Gini([]float64{9, 2, 5, 1})
	if !almostEqual(a, b, 1e-12) {
		t.Fatalf("Gini order-dependent: %v vs %v", a, b)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8})
	if out[2] != 1 || out[0] != 0.25 {
		t.Fatalf("normalize: %v", out)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 {
		t.Fatal("zero normalize should stay zero")
	}
}

func TestPowerLawAlpha(t *testing.T) {
	// Construct a perfect power law with alpha = 1.5.
	xs := make([]float64, 30)
	for i := range xs {
		xs[i] = math.Pow(float64(i+1), -1.5)
	}
	alpha := PowerLawAlpha(xs)
	if !almostEqual(alpha, 1.5, 1e-9) {
		t.Fatalf("alpha = %v, want 1.5", alpha)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	if PowerLawAlpha([]float64{0, 0}) != 0 {
		t.Fatal("degenerate power law should be 0")
	}
	if PowerLawAlpha([]float64{1}) != 0 {
		t.Fatal("single sample should be 0")
	}
}

func TestComputePRF1(t *testing.T) {
	m := ComputePRF1(8, 2, 2)
	if !almostEqual(m.Precision, 0.8, 1e-12) || !almostEqual(m.Recall, 0.8, 1e-12) {
		t.Fatalf("precision/recall: %+v", m)
	}
	if !almostEqual(m.F1, 0.8, 1e-12) {
		t.Fatalf("F1: %v", m.F1)
	}
}

func TestComputePRF1Zeros(t *testing.T) {
	m := ComputePRF1(0, 0, 0)
	if m.F1 != 0 || m.Precision != 0 || m.Recall != 0 {
		t.Fatalf("zero counts should give zero metrics: %+v", m)
	}
}

func TestPRF1Add(t *testing.T) {
	a := ComputePRF1(1, 1, 0)
	b := ComputePRF1(3, 0, 1)
	c := a.Add(b)
	if c.TP != 4 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("accumulated counts: %+v", c)
	}
	if !almostEqual(c.Precision, 0.8, 1e-12) {
		t.Fatalf("accumulated precision: %v", c.Precision)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3)
	cm.Observe(0, 0)
	cm.Observe(0, 0)
	cm.Observe(0, 1)
	cm.Observe(1, 1)
	cm.Observe(2, 0)
	cm.Observe(-1, 0) // ignored
	cm.Observe(0, 9)  // ignored
	if !almostEqual(cm.Accuracy(), 3.0/5.0, 1e-12) {
		t.Fatalf("accuracy = %v", cm.Accuracy())
	}
	norm := cm.RowNormalized()
	if !almostEqual(norm[0][0], 2.0/3.0, 1e-12) {
		t.Fatalf("row norm: %v", norm[0])
	}
	if norm[2][0] != 1 {
		t.Fatalf("row 2: %v", norm[2])
	}
}

func TestConfusionDiagonalMass(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Observe(0, 0)
	cm.Observe(1, 1)
	if cm.DiagonalMass() != 1 {
		t.Fatalf("perfect matrix diagonal mass = %v", cm.DiagonalMass())
	}
	empty := NewConfusionMatrix(2)
	if empty.DiagonalMass() != 0 {
		t.Fatal("empty matrix diagonal mass should be 0")
	}
}

func TestConfusionString(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Observe(0, 0)
	if cm.String() == "" {
		t.Fatal("String should render something")
	}
}

func TestArgmaxFloat(t *testing.T) {
	if ArgmaxFloat([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgmaxFloat(nil) != -1 {
		t.Fatal("empty argmax should be -1")
	}
	if ArgmaxFloat([]float64{2, 2}) != 0 {
		t.Fatal("tie should pick first")
	}
}

func TestRankDescending(t *testing.T) {
	ranks := RankDescending([]float64{0.1, 0.9, 0.5})
	want := []int{1, 2, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v", ranks)
		}
	}
}

func TestRankDescendingStableTies(t *testing.T) {
	ranks := RankDescending([]float64{0.5, 0.5, 0.9})
	if ranks[0] != 2 || ranks[1] != 0 || ranks[2] != 1 {
		t.Fatalf("tie ranks = %v", ranks)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	r := xrand.New(77)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Norm()
		}
		q := rr.Float64()
		v := Quantile(xs, q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0]-1e-12 && v <= sorted[n-1]+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGiniPropertyRange(t *testing.T) {
	r := xrand.New(88)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		n := rr.Intn(30) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64() * 10
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPRF1PropertyF1BetweenPandR(t *testing.T) {
	// F1 is the harmonic mean, so it lies between min and max of P and R.
	if err := quick.Check(func(tp, fp, fn uint8) bool {
		m := ComputePRF1(int(tp)+1, int(fp), int(fn))
		lo := math.Min(m.Precision, m.Recall)
		hi := math.Max(m.Precision, m.Recall)
		return m.F1 >= lo-1e-12 && m.F1 <= hi+1e-12
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestECEPerfectlyCalibrated(t *testing.T) {
	// Confidence 0.75, accuracy 0.75 → ECE ~0.
	r := xrand.New(21)
	var confs []float64
	var correct []bool
	for i := 0; i < 8000; i++ {
		confs = append(confs, 0.75)
		correct = append(correct, r.Bool(0.75))
	}
	if e := ECE(confs, correct, 10); e > 0.02 {
		t.Fatalf("calibrated ECE = %v", e)
	}
}

func TestECEOverconfident(t *testing.T) {
	// Confidence 0.95 but accuracy 0.5 → ECE ≈ 0.45.
	r := xrand.New(22)
	var confs []float64
	var correct []bool
	for i := 0; i < 8000; i++ {
		confs = append(confs, 0.95)
		correct = append(correct, r.Bool(0.5))
	}
	e := ECE(confs, correct, 10)
	if e < 0.4 || e > 0.5 {
		t.Fatalf("overconfident ECE = %v, want ~0.45", e)
	}
}

func TestECEDegenerate(t *testing.T) {
	if ECE(nil, nil, 10) != 0 {
		t.Fatal("empty ECE should be 0")
	}
	if ECE([]float64{0.5}, []bool{true, false}, 10) != 0 {
		t.Fatal("length mismatch should be 0")
	}
	if ECE([]float64{0.5}, []bool{true}, 0) != 0 {
		t.Fatal("zero bins should be 0")
	}
}
