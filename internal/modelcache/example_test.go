package modelcache_test

import (
	"fmt"

	"anole/internal/modelcache"
)

// A device with room for two compressed models streams requests; the LFU
// cache keeps the frequently used model resident.
func ExampleCache() {
	cache := modelcache.MustNew(2, modelcache.LFU)
	for _, model := range []string{"M_1", "M_1", "M_2", "M_1", "M_3"} {
		hit, evicted, err := cache.Request(model, 1)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s hit=%v evicted=%v\n", model, hit, evicted)
	}
	fmt.Printf("miss rate %.2f, resident %v\n", cache.MissRate(), cache.Keys())
	// Output:
	// M_1 hit=false evicted=[]
	// M_1 hit=true evicted=[]
	// M_2 hit=false evicted=[]
	// M_1 hit=true evicted=[]
	// M_3 hit=false evicted=[M_2]
	// miss rate 0.60, resident [M_1 M_3]
}
