package modelcache

import (
	"fmt"
	"sync"
	"testing"

	"anole/internal/xrand"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, LFU, 4); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewSharded(-3, LRU, 1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewSharded(4, Policy(99), 2); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestShardedCapacityDistribution(t *testing.T) {
	// 7 slots over 3 shards → 3+2+2; shard count clamps to capacity.
	s := MustNewSharded(7, LFU, 3)
	if s.Capacity() != 7 || s.NumShards() != 3 {
		t.Fatalf("capacity %d shards %d", s.Capacity(), s.NumShards())
	}
	var total int
	for _, sh := range s.shards {
		c := sh.c.Capacity()
		if c < 2 || c > 3 {
			t.Fatalf("uneven shard capacity %d", c)
		}
		total += c
	}
	if total != 7 {
		t.Fatalf("shard capacities sum to %d, want 7", total)
	}

	if s := MustNewSharded(2, FIFO, 16); s.NumShards() != 2 {
		t.Fatalf("shards not clamped to capacity: %d", s.NumShards())
	}
	if s := MustNewSharded(100, LRU, 0); s.NumShards() != 8 {
		t.Fatalf("default shard count %d, want 8", s.NumShards())
	}
}

func TestShardedRequestRejectsBadSize(t *testing.T) {
	s := MustNewSharded(4, LFU, 2)
	if _, _, err := s.Request("m", 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, _, err := s.Request("m", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	// An entry larger than its shard's slice of the capacity is
	// rejected, and the failed admission still counts as a miss.
	if _, _, err := s.Request("m", 3); err == nil {
		t.Fatal("oversized entry accepted")
	}
	st := s.Stats()
	if st.Hits+st.Misses != s.Lookups() || s.Lookups() != 1 {
		t.Fatalf("counters unbalanced after rejection: %+v lookups %d", st, s.Lookups())
	}
}

// TestShardedSingleShardMatchesCache replays one random request sequence
// through a 1-shard Sharded cache and a plain Cache: every hit/miss,
// eviction list and counter must agree. This is the equivalence that
// makes MultiRuntime with one stream reproduce Runtime exactly.
func TestShardedSingleShardMatchesCache(t *testing.T) {
	for _, policy := range []Policy{LFU, LRU, FIFO} {
		t.Run(policy.String(), func(t *testing.T) {
			plain := MustNew(3, policy)
			sharded := MustNewSharded(3, policy, 1)
			rng := xrand.NewLabeled(7, "sharded-equivalence")
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("m%d", rng.Intn(8))
				h1, ev1, err1 := plain.Request(key, 1)
				h2, ev2, err2 := sharded.Request(key, 1)
				if h1 != h2 || (err1 == nil) != (err2 == nil) || len(ev1) != len(ev2) {
					t.Fatalf("step %d diverged: (%v,%v,%v) vs (%v,%v,%v)", i, h1, ev1, err1, h2, ev2, err2)
				}
				for j := range ev1 {
					if ev1[j] != ev2[j] {
						t.Fatalf("step %d eviction order diverged: %v vs %v", i, ev1, ev2)
					}
				}
			}
			if plain.Stats() != sharded.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", plain.Stats(), sharded.Stats())
			}
			p, s := plain.Keys(), sharded.Keys()
			if len(p) != len(s) {
				t.Fatalf("resident sets differ: %v vs %v", p, s)
			}
			for i := range p {
				if p[i] != s[i] {
					t.Fatalf("resident sets differ: %v vs %v", p, s)
				}
			}
		})
	}
}

// TestShardedConcurrentHammer is the race/stress harness: goroutines
// hammer Get/Admit (Contains/Touch/Request) plus occasional Remove
// across every policy, while a checker goroutine reads the merged views.
// After the storm: residency never exceeds capacity, the atomic counters
// balance (hits+misses == lookups == total requests), and the merged
// Stats equal the per-shard sums. Run with -race.
func TestShardedConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 3000
		capacity   = 6
		shards     = 4
		keySpace   = 24
	)
	for _, policy := range []Policy{LFU, LRU, FIFO} {
		t.Run(policy.String(), func(t *testing.T) {
			s := MustNewSharded(capacity, policy, shards)

			stop := make(chan struct{})
			var checker sync.WaitGroup
			checker.Add(1)
			go func() {
				defer checker.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if used := s.Used(); used > s.Capacity() {
						// t.Errorf is safe from other goroutines.
						t.Errorf("capacity exceeded mid-flight: used %d > %d", used, s.Capacity())
						return
					}
					s.Len()
					s.Keys()
					s.MissRate()
					s.Stats()
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := xrand.NewLabeled(uint64(g), "sharded-hammer")
					for i := 0; i < opsPerG; i++ {
						key := fmt.Sprintf("m%d", rng.Intn(keySpace))
						switch rng.Intn(10) {
						case 0:
							s.Contains(key)
						case 1:
							s.Touch(key)
						case 2:
							s.Remove(key)
						case 3:
							s.Freq(key)
						default:
							if _, _, err := s.Request(key, 1); err != nil {
								t.Errorf("request %q: %v", key, err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			checker.Wait()

			if used := s.Used(); used > s.Capacity() {
				t.Fatalf("capacity exceeded at rest: used %d > %d", used, s.Capacity())
			}
			if n := s.Len(); n > s.Capacity() {
				t.Fatalf("more entries than slots: %d > %d", n, s.Capacity())
			}
			st := s.Stats()
			if st.Hits+st.Misses != s.Lookups() {
				t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, s.Lookups())
			}
			var perShard Stats
			for _, sh := range s.ShardStats() {
				perShard.Hits += sh.Hits
				perShard.Misses += sh.Misses
				perShard.Evictions += sh.Evictions
			}
			if perShard != st {
				t.Fatalf("merged stats %+v != per-shard sum %+v", st, perShard)
			}
			if got, want := s.MissRate(), float64(st.Misses)/float64(st.Hits+st.Misses); got != want {
				t.Fatalf("miss rate %v, want %v", got, want)
			}
		})
	}
}

// TestShardedConcurrentDisjointKeys drives each goroutine at its own key
// so every request after the first admission must hit: exact per-key
// counters survive the concurrency.
func TestShardedConcurrentDisjointKeys(t *testing.T) {
	const goroutines, ops = 6, 500
	s := MustNewSharded(goroutines, LFU, 3)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("own-%d", g)
			for i := 0; i < ops; i++ {
				if _, _, err := s.Request(key, 1); err != nil {
					t.Errorf("request %q: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	// Each goroutine misses once (first admission) and hits thereafter.
	// Disjoint keys can share a shard, but capacity ≥ keys per shard is
	// not guaranteed — so allow evictions, and check the balance only.
	if st.Hits+st.Misses != int64(goroutines*ops) {
		t.Fatalf("lost requests: %+v, want %d total", st, goroutines*ops)
	}
	if s.Lookups() != int64(goroutines*ops) {
		t.Fatalf("lookups %d, want %d", s.Lookups(), goroutines*ops)
	}
	for g := 0; g < goroutines; g++ {
		key := fmt.Sprintf("own-%d", g)
		if s.Contains(key) && s.Freq(key) < 1 {
			t.Fatalf("resident key %q has zero frequency", key)
		}
	}
}
