package modelcache

import (
	"sync"
	"testing"
)

// TestPrefetchAdmitsWithoutLookup checks that a prefetch neither hits
// nor misses, and that the entry's first real use is counted as a
// prefetch hit.
func TestPrefetchAdmitsWithoutLookup(t *testing.T) {
	c := MustNew(2, LFU)
	admitted, evicted, err := c.Prefetch("a", 1)
	if err != nil || !admitted || len(evicted) != 0 {
		t.Fatalf("prefetch a: admitted=%v evicted=%v err=%v", admitted, evicted, err)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("prefetch moved lookup counters: %+v", st)
	}
	if st.Prefetches != 1 {
		t.Fatalf("prefetches %d", st.Prefetches)
	}
	// First use: a Request hit that doubles as the prefetch hit.
	hit, _, err := c.Request("a", 1)
	if err != nil || !hit {
		t.Fatalf("request after prefetch: hit=%v err=%v", hit, err)
	}
	st = c.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("prefetch hits %d", st.PrefetchHits)
	}
	// Second use is an ordinary hit, not another prefetch hit.
	if hit, _, _ := c.Request("a", 1); !hit {
		t.Fatal("second request missed")
	}
	if st := c.Stats(); st.PrefetchHits != 1 {
		t.Fatalf("prefetch hits after reuse %d", st.PrefetchHits)
	}
}

// TestPrefetchResidentKeyIsNoop: prefetching a model that is already
// cached must not touch it or count anything.
func TestPrefetchResidentKeyIsNoop(t *testing.T) {
	c := MustNew(2, LFU)
	if _, _, err := c.Request("a", 1); err != nil {
		t.Fatal(err)
	}
	freq := c.Freq("a")
	admitted, _, err := c.Prefetch("a", 1)
	if err != nil || admitted {
		t.Fatalf("re-prefetch of resident: admitted=%v err=%v", admitted, err)
	}
	if c.Freq("a") != freq {
		t.Fatal("prefetch of resident key recorded a use")
	}
	if st := c.Stats(); st.Prefetches != 0 {
		t.Fatalf("prefetches %d", st.Prefetches)
	}
}

// TestPrefetchPinProtectsFirstUseWindow: a pinned (unused, in-window)
// prefetched entry must survive on-demand eviction pressure while an
// unpinned victim exists.
func TestPrefetchPinProtectsFirstUseWindow(t *testing.T) {
	c := MustNew(2, LFU)
	// "cold" is an ordinary entry with low frequency; "warm" is pinned.
	if _, _, err := c.Request("cold", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Prefetch("warm", 1); err != nil {
		t.Fatal(err)
	}
	// "warm" has freq 0 (< cold's 1), so plain LFU would evict it; the
	// pin must divert eviction to "cold".
	_, evicted, err := c.Request("newcomer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Fatalf("evicted %v, want [cold]", evicted)
	}
	if !c.Contains("warm") {
		t.Fatal("pinned prefetched entry was evicted")
	}
}

// TestPrefetchPinExpires: once the first-use window lapses, an unused
// prefetched entry becomes an ordinary (and, at freq 0, prime) victim
// and its eviction counts as wasted.
func TestPrefetchPinExpires(t *testing.T) {
	c := MustNew(2, LFU)
	c.SetPinWindow(2)
	if _, _, err := c.Prefetch("warm", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Request("hot", 1); err != nil {
		t.Fatal(err)
	}
	// Burn the window: each touch advances the logical clock.
	c.Touch("hot")
	c.Touch("hot")
	_, evicted, err := c.Request("newcomer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "warm" {
		t.Fatalf("evicted %v, want [warm]", evicted)
	}
	st := c.Stats()
	if st.PrefetchWasted != 1 {
		t.Fatalf("wasted %d", st.PrefetchWasted)
	}
	if st.PrefetchHits != 0 {
		t.Fatalf("phantom prefetch hit: %+v", st)
	}
}

// TestPrefetchBestEffortWhenAllPinned: a prefetch that can only make
// room by displacing pinned entries must decline, while an on-demand
// Request in the same state falls back to evicting a pinned entry.
func TestPrefetchBestEffortWhenAllPinned(t *testing.T) {
	c := MustNew(2, LFU)
	for _, k := range []string{"p1", "p2"} {
		if admitted, _, err := c.Prefetch(k, 1); err != nil || !admitted {
			t.Fatalf("prefetch %s: %v", k, err)
		}
	}
	admitted, evicted, err := c.Prefetch("p3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if admitted || len(evicted) != 0 {
		t.Fatalf("prefetch displaced a pinned entry: admitted=%v evicted=%v", admitted, evicted)
	}
	// On-demand admission must still succeed (pin is soft for Request).
	hit, evicted, err := c.Request("demand", 1)
	if err != nil {
		t.Fatal(err)
	}
	if hit || len(evicted) != 1 {
		t.Fatalf("demand request: hit=%v evicted=%v", hit, evicted)
	}
	if !c.Contains("demand") {
		t.Fatal("demand entry not admitted")
	}
	if st := c.Stats(); st.PrefetchWasted != 1 {
		t.Fatalf("wasted %d after pinned eviction", st.PrefetchWasted)
	}
}

// TestPrefetchOversizedRejected mirrors Request's size validation.
func TestPrefetchOversizedRejected(t *testing.T) {
	c := MustNew(2, LFU)
	if _, _, err := c.Prefetch("big", 3); err == nil {
		t.Fatal("oversized prefetch accepted")
	}
	if _, _, err := c.Prefetch("zero", 0); err == nil {
		t.Fatal("zero-size prefetch accepted")
	}
}

// TestShardedPrefetchCounters drives concurrent prefetches and requests
// through a Sharded cache and checks the merged counters add up; run
// with -race to prove the locking.
func TestShardedPrefetchCounters(t *testing.T) {
	s := MustNewSharded(8, LFU, 4)
	keys := []string{"m0", "m1", "m2", "m3", "m4", "m5"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				k := keys[(off+round)%len(keys)]
				if off%2 == 0 {
					if _, _, err := s.Prefetch(k, 1); err != nil {
						t.Errorf("prefetch %s: %v", k, err)
						return
					}
				} else if _, _, err := s.Request(k, 1); err != nil {
					t.Errorf("request %s: %v", k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != s.Lookups() {
		t.Fatalf("lookups %d != hits %d + misses %d", s.Lookups(), st.Hits, st.Misses)
	}
	if st.PrefetchHits > st.Prefetches {
		t.Fatalf("more prefetch hits (%d) than prefetches (%d)", st.PrefetchHits, st.Prefetches)
	}
	// Per-shard prefetch counters must sum to the merged view.
	var pf, ph, pw int64
	for _, sh := range s.ShardStats() {
		pf += sh.Prefetches
		ph += sh.PrefetchHits
		pw += sh.PrefetchWasted
	}
	if pf != st.Prefetches || ph != st.PrefetchHits || pw != st.PrefetchWasted {
		t.Fatalf("shard prefetch counters (%d/%d/%d) != merged (%d/%d/%d)",
			pf, ph, pw, st.Prefetches, st.PrefetchHits, st.PrefetchWasted)
	}
}

func TestPrefetchNeverEvictsMostRecentlyUsed(t *testing.T) {
	// Under LFU a long-lived hot entry outranks the model serving the
	// current scene, so a naive speculative insert would evict the
	// server. Prefetch must pick the other victim — or decline.
	c := MustNew(2, LFU)
	for i := 0; i < 10; i++ {
		c.Request("old-hot", 1)
	}
	c.Request("current", 1) // freq 1, but most recently used
	admitted, evicted, err := c.Prefetch("next", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !admitted {
		t.Fatal("prefetch declined with an evictable entry present")
	}
	if len(evicted) != 1 || evicted[0] != "old-hot" {
		t.Fatalf("evicted %v, want [old-hot]", evicted)
	}
	if !c.Contains("current") {
		t.Fatal("prefetch displaced the in-use model")
	}
	// With one slot the only resident entry is the in-use one, so a
	// prefetch can only decline.
	one := MustNew(1, LRU)
	one.Request("current", 1)
	admitted, _, err = one.Prefetch("next", 1)
	if err != nil || admitted {
		t.Fatalf("single-slot prefetch: admitted=%v err=%v", admitted, err)
	}
	if !one.Contains("current") {
		t.Fatal("single-slot prefetch displaced the in-use model")
	}
}

// TestPrefetchPinSurvivesEvictionSweep: a pinned prefetched entry must
// outlive a full eviction sweep — enough newcomer admissions to churn
// every other slot several times over — and only become a victim once
// its first-use window has lapsed.
func TestPrefetchPinSurvivesEvictionSweep(t *testing.T) {
	c := MustNew(4, LFU)
	c.SetPinWindow(100)
	if _, _, err := c.Prefetch("pinned", 1); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Request(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Sweep: 12 distinct newcomers, three full turnovers of the three
	// unpinned slots. The pin (freq 0, LFU's prime victim otherwise)
	// must divert every eviction.
	for i := 0; i < 12; i++ {
		_, evicted, err := c.Request(sweepKey(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range evicted {
			if v == "pinned" {
				t.Fatalf("sweep admission %d evicted the pinned entry", i)
			}
		}
		if !c.Contains("pinned") {
			t.Fatalf("pinned entry gone after sweep admission %d", i)
		}
	}
	if st := c.Stats(); st.PrefetchWasted != 0 {
		t.Fatalf("pinned entry counted wasted mid-window: %+v", st)
	}

	// Burn the rest of the window on an unrelated key; the pin expires
	// and the entry becomes an ordinary freq-0 victim.
	for i := 0; i < 100; i++ {
		c.Touch(sweepKey(11))
	}
	_, evicted, err := c.Request("closer", 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range evicted {
		found = found || v == "pinned"
	}
	if !found {
		t.Fatalf("expired pin not evicted, evicted %v", evicted)
	}
	if st := c.Stats(); st.PrefetchWasted != 1 {
		t.Fatalf("expired unused prefetch must count wasted: %+v", st)
	}
}

func sweepKey(i int) string {
	return string(rune('k')) + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
