package modelcache

import (
	"fmt"
	"testing"
	"testing/quick"

	"anole/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, LFU); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(3, Policy(0)); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if c := MustNew(3, LFU); c.Capacity() != 3 {
		t.Fatal("capacity wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(-1, LFU)
}

func TestRequestHitMiss(t *testing.T) {
	c := MustNew(2, LFU)
	hit, ev, err := c.Request("a", 1)
	if err != nil || hit || len(ev) != 0 {
		t.Fatalf("first request: hit=%v ev=%v err=%v", hit, ev, err)
	}
	hit, _, err = c.Request("a", 1)
	if err != nil || !hit {
		t.Fatal("second request should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestLFUEviction(t *testing.T) {
	c := MustNew(2, LFU)
	c.Request("a", 1)
	c.Request("b", 1)
	// Use a twice more; b stays at freq 1.
	c.Request("a", 1)
	c.Request("a", 1)
	_, evicted, err := c.Request("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if !c.Contains("a") || !c.Contains("c") || c.Contains("b") {
		t.Fatalf("cache contents: %v", c.Keys())
	}
}

func TestLFUTieBreaksByInsertionOrder(t *testing.T) {
	c := MustNew(2, LFU)
	c.Request("first", 1)
	c.Request("second", 1)
	_, evicted, _ := c.Request("third", 1)
	if evicted[0] != "first" {
		t.Fatalf("tie should evict oldest: %v", evicted)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(2, LRU)
	c.Request("a", 1)
	c.Request("b", 1)
	c.Request("a", 1) // refresh a's recency
	_, evicted, _ := c.Request("c", 1)
	if evicted[0] != "b" {
		t.Fatalf("LRU should evict b: %v", evicted)
	}
}

func TestFIFOEviction(t *testing.T) {
	c := MustNew(2, FIFO)
	c.Request("a", 1)
	c.Request("b", 1)
	// Heavy reuse of a must not save it under FIFO.
	for i := 0; i < 5; i++ {
		c.Request("a", 1)
	}
	_, evicted, _ := c.Request("c", 1)
	if evicted[0] != "a" {
		t.Fatalf("FIFO should evict a: %v", evicted)
	}
}

func TestMultiUnitSizes(t *testing.T) {
	c := MustNew(4, LFU)
	c.Request("big", 3)
	c.Request("small", 1)
	if c.Used() != 4 {
		t.Fatalf("used = %d", c.Used())
	}
	// Inserting a 2-unit model must evict until it fits (the 1-unit
	// small alone is not enough: big has equal freq but older insert).
	_, evicted, err := c.Request("mid", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 {
		t.Fatal("no eviction for oversized insert")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("over capacity: %d/%d", c.Used(), c.Capacity())
	}
}

func TestRequestRejectsOversized(t *testing.T) {
	c := MustNew(2, LFU)
	if _, _, err := c.Request("huge", 3); err == nil {
		t.Fatal("oversized entry accepted")
	}
	if _, _, err := c.Request("zero", 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestRemove(t *testing.T) {
	c := MustNew(2, LFU)
	c.Request("a", 1)
	if !c.Remove("a") {
		t.Fatal("remove missed present key")
	}
	if c.Remove("a") {
		t.Fatal("double remove reported success")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("remove did not free space")
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("Remove must not count as eviction")
	}
}

func TestTouch(t *testing.T) {
	c := MustNew(2, LFU)
	if c.Touch("ghost") {
		t.Fatal("touch on absent key")
	}
	c.Request("a", 1)
	if !c.Touch("a") {
		t.Fatal("touch missed")
	}
	if c.Freq("a") != 2 {
		t.Fatalf("freq = %d", c.Freq("a"))
	}
	if c.Freq("ghost") != 0 {
		t.Fatal("ghost freq should be 0")
	}
}

func TestKeysSorted(t *testing.T) {
	c := MustNew(3, LFU)
	c.Request("zebra", 1)
	c.Request("alpha", 1)
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zebra" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestPolicyString(t *testing.T) {
	if LFU.String() != "LFU" || LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must print")
	}
}

func TestHotSetStaysResidentUnderLFU(t *testing.T) {
	// Power-law access: models 0-2 are hot, 3-9 cold. With a 3-slot LFU
	// cache the hot set should converge to residency (Fig. 4b ⇒ 7b).
	c := MustNew(3, LFU)
	rng := xrand.New(42)
	weights := []float64{30, 20, 10, 1, 1, 1, 1, 1, 1, 1}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("m%d", rng.Categorical(weights))
		if _, _, err := c.Request(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	// m0 and m1 dominate and must be resident; the third slot churns
	// between m2 and one-off cold models under plain LFU.
	for _, hot := range []string{"m0", "m1"} {
		if !c.Contains(hot) {
			t.Fatalf("hot model %s not resident: %v", hot, c.Keys())
		}
	}
	if c.MissRate() > 0.3 {
		t.Fatalf("hot-set miss rate = %v", c.MissRate())
	}
}

func TestLargerCacheLowersMissRate(t *testing.T) {
	run := func(capacity int) float64 {
		c := MustNew(capacity, LFU)
		rng := xrand.New(7)
		weights := []float64{8, 5, 3, 2, 1, 1, 1, 1}
		for i := 0; i < 4000; i++ {
			k := fmt.Sprintf("m%d", rng.Categorical(weights))
			if _, _, err := c.Request(k, 1); err != nil {
				panic(err)
			}
		}
		return c.MissRate()
	}
	small, large := run(2), run(6)
	if large >= small {
		t.Fatalf("bigger cache should miss less: %v vs %v", large, small)
	}
}

// Property: used never exceeds capacity and counters never go negative.
func TestCacheInvariants(t *testing.T) {
	rng := xrand.New(99)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.Split(uint64(seed))
		policies := []Policy{LFU, LRU, FIFO}
		c := MustNew(rr.Intn(5)+1, policies[rr.Intn(3)])
		for op := 0; op < 200; op++ {
			key := fmt.Sprintf("k%d", rr.Intn(8))
			switch rr.Intn(3) {
			case 0, 1:
				size := rr.Intn(2) + 1
				if _, _, err := c.Request(key, size); err != nil && size <= c.Capacity() {
					return false
				}
			case 2:
				c.Remove(key)
			}
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
			total := 0
			for _, k := range c.Keys() {
				if !c.Contains(k) {
					return false
				}
				total++
			}
			if total != c.Len() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLFUHistorySurvivesEviction(t *testing.T) {
	// A hot model evicted during a burst of other requests regains its
	// frequency standing when re-admitted: the next eviction removes
	// the low-history newcomer, not the returning hot model.
	c := MustNew(2, LFU)
	for i := 0; i < 5; i++ {
		c.Request("hot", 1)
	}
	c.Request("b", 1)
	c.Request("cold1", 1) // evicts b (freq 1 vs hot 5)
	if !c.Contains("hot") {
		t.Fatal("hot evicted prematurely")
	}
	c.Request("cold2", 1) // evicts cold1
	c.Request("cold3", 1) // evicts cold2
	if !c.Contains("hot") {
		t.Fatal("hot lost residency to one-off requests")
	}
	// Evict hot by filling with another key, then bring it back: its
	// history must outrank fresh entries immediately.
	c.Remove("hot")
	c.Request("x", 1)
	c.Request("hot", 1) // re-admitted with historical freq 6
	c.Request("y", 1)   // must evict x or cold3, never hot
	if !c.Contains("hot") {
		t.Fatalf("returning hot model evicted: %v", c.Keys())
	}
}

// bytesInvariant checks BytesUsed equals the sum of the sizer over the
// resident keys — the accounting invariant SetSizer promises.
func bytesInvariant(t *testing.T, c *Cache, size func(string) int64) {
	t.Helper()
	var want int64
	for _, k := range c.Keys() {
		want += size(k)
	}
	if got := c.BytesUsed(); got != want {
		t.Fatalf("BytesUsed %d, resident sum %d (keys %v)", got, want, c.Keys())
	}
}

func TestBytesUsedTracksResidentSet(t *testing.T) {
	// Deterministic fake sizer: key "M_i" weighs (i+1)*1000 bytes.
	size := func(key string) int64 {
		var i int
		fmt.Sscanf(key, "M_%d", &i)
		return int64(i+1) * 1000
	}
	c := MustNew(3, LFU)
	if c.BytesUsed() != 0 {
		t.Fatalf("BytesUsed %d before SetSizer, want 0", c.BytesUsed())
	}

	// Admissions before the sizer is installed are re-measured by SetSizer.
	if _, _, err := c.Request("M_0", 1); err != nil {
		t.Fatal(err)
	}
	c.SetSizer(size)
	bytesInvariant(t, c, size)

	// Demand admissions, hits, evictions, prefetches and removals all
	// keep the invariant.
	for _, key := range []string{"M_1", "M_2", "M_3", "M_1", "M_4"} {
		if _, _, err := c.Request(key, 1); err != nil {
			t.Fatal(err)
		}
		bytesInvariant(t, c, size)
	}
	if _, _, err := c.Prefetch("M_5", 1); err != nil {
		t.Fatal(err)
	}
	bytesInvariant(t, c, size)
	for _, k := range c.Keys() {
		c.Remove(k)
		bytesInvariant(t, c, size)
	}
	if c.BytesUsed() != 0 {
		t.Fatalf("BytesUsed %d after emptying, want 0", c.BytesUsed())
	}

	// Clearing the sizer zeroes the accounting.
	if _, _, err := c.Request("M_9", 1); err != nil {
		t.Fatal(err)
	}
	c.SetSizer(nil)
	if c.BytesUsed() != 0 {
		t.Fatalf("BytesUsed %d after clearing sizer, want 0", c.BytesUsed())
	}
}

func TestShardedBytesUsed(t *testing.T) {
	size := func(key string) int64 { return int64(len(key)) * 100 }
	s := MustNewSharded(8, LFU, 4)
	s.SetSizer(size)
	keys := []string{"a", "bb", "ccc", "dddd", "ee"}
	for _, k := range keys {
		if _, _, err := s.Request(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	var want int64
	for _, k := range s.Keys() {
		want += size(k)
	}
	if got := s.BytesUsed(); got != want {
		t.Fatalf("Sharded BytesUsed %d, resident sum %d", got, want)
	}
	for _, k := range s.Keys() {
		s.Remove(k)
	}
	if got := s.BytesUsed(); got != 0 {
		t.Fatalf("Sharded BytesUsed %d after emptying, want 0", got)
	}
}
