package modelcache

import (
	"sort"
	"testing"
)

// flatSizer charges every key the same serialized size, keeping the
// byte arithmetic in these tests legible.
func flatSizer(bytes int64) func(string) int64 {
	return func(string) int64 { return bytes }
}

// residentBytes recomputes what BytesUsed should be from first
// principles: the sizer summed over the resident key set.
func residentBytes(keys []string, sizer func(string) int64) int64 {
	var sum int64
	for _, k := range keys {
		sum += sizer(k)
	}
	return sum
}

func TestSweepToWatermarkSparesPinnedEntries(t *testing.T) {
	c := MustNew(10, LFU)
	sizer := flatSizer(100)
	c.SetSizer(sizer)
	c.SetByteCapacity(1000)
	c.SetPinWindow(1000) // pins stay live for the whole test

	for _, k := range []string{"p1", "p2"} {
		if ok, _, err := c.Prefetch(k, 1); !ok || err != nil {
			t.Fatalf("prefetch %s: admitted=%v err=%v", k, ok, err)
		}
	}
	for _, k := range []string{"d1", "d2", "d3", "d4"} {
		if _, _, err := c.Request(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.BytesUsed() != 600 {
		t.Fatalf("setup bytes %d, want 600", c.BytesUsed())
	}

	// Critical tightens the watermark; the sweep sheds cold unpinned
	// entries down to the scaled ceiling.
	c.SetWatermark(0.4) // ceiling 400 bytes
	evicted := c.SweepToWatermark()
	sort.Strings(evicted)
	if len(evicted) != 2 {
		t.Fatalf("sweep evicted %v, want two demand entries", evicted)
	}
	for _, k := range evicted {
		if k == "p1" || k == "p2" {
			t.Fatalf("sweep evicted pinned entry %s", k)
		}
	}
	if c.BytesUsed() != 400 {
		t.Fatalf("bytes after sweep %d, want 400", c.BytesUsed())
	}

	// Even a ceiling below the pinned footprint never claims a pinned
	// entry: the sweep stops when only pinned victims remain.
	c.SetWatermark(0.1) // ceiling 100 bytes < 200 pinned bytes
	c.SweepToWatermark()
	if !c.Contains("p1") || !c.Contains("p2") {
		t.Fatal("a tighter sweep evicted pinned entries")
	}
	if got := c.BytesUsed(); got != 200 {
		t.Fatalf("bytes after pinned-only sweep %d, want 200", got)
	}
	if got := residentBytes(c.Keys(), sizer); got != c.BytesUsed() {
		t.Fatalf("accounting drift: BytesUsed %d, resident sum %d", c.BytesUsed(), got)
	}

	// Relaxing back to Nominal makes the sweep a no-op.
	c.SetWatermark(1)
	if ev := c.SweepToWatermark(); ev != nil {
		t.Fatalf("nominal sweep evicted %v", ev)
	}
}

func TestByteCapacityBoundsAdmissions(t *testing.T) {
	c := MustNew(10, LFU)
	sizes := map[string]int64{"small": 500, "big": 600, "huge": 1200}
	c.SetSizer(func(k string) int64 { return sizes[k] })
	c.SetByteCapacity(1000)
	c.SetWatermark(0.5)

	// A model that can never fit is a demand-path error...
	if _, _, err := c.Request("huge", 1); err == nil {
		t.Fatal("Request admitted a model larger than the byte capacity")
	}
	// ...while speculative admission is best-effort: over the
	// watermark-scaled ceiling it declines without error.
	if ok, _, err := c.Prefetch("big", 1); ok || err != nil {
		t.Fatalf("prefetch past the watermark ceiling: admitted=%v err=%v", ok, err)
	}
	// The same model is admissible on demand — serving a frame uses the
	// full byte capacity, not the watermark fraction.
	if _, _, err := c.Request("big", 1); err != nil {
		t.Fatalf("demand admission under full capacity: %v", err)
	}
	if c.BytesUsed() != 600 {
		t.Fatalf("bytes %d, want 600", c.BytesUsed())
	}
	// A further demand admission evicts to fit under the byte ceiling
	// even though slot capacity has plenty of room.
	if _, evicted, err := c.Request("small", 1); err != nil || len(evicted) != 1 || evicted[0] != "big" {
		t.Fatalf("byte-pressure eviction: evicted=%v err=%v", evicted, err)
	}
	if c.Used() != 1 || c.BytesUsed() != 500 {
		t.Fatalf("after byte-pressure eviction: used=%d bytes=%d", c.Used(), c.BytesUsed())
	}
}

func TestWarmReadmitsWithoutEvictingOrCounting(t *testing.T) {
	c := MustNew(2, LFU)
	sizer := flatSizer(100)
	c.SetSizer(sizer)
	c.SetByteCapacity(250)

	if !c.Warm("a", 1, 5) {
		t.Fatal("warm into an empty cache failed")
	}
	if c.Freq("a") != 5 {
		t.Fatalf("warm freq %d, want the manifest's 5", c.Freq("a"))
	}
	if !c.Warm("a", 1, 2) {
		t.Fatal("warm of a resident key failed")
	}
	if c.Freq("a") != 5 {
		t.Fatalf("re-warm lowered freq to %d", c.Freq("a"))
	}
	if !c.Warm("b", 1, 0) {
		t.Fatal("warm of a second key failed")
	}
	// Slots are full: restore never displaces what already loaded.
	if c.Warm("c", 1, 99) {
		t.Fatal("warm evicted to make room")
	}
	// Byte budget full: same best-effort refusal.
	c2 := MustNew(8, LFU)
	c2.SetSizer(sizer)
	c2.SetByteCapacity(150)
	if !c2.Warm("a", 1, 0) || c2.Warm("b", 1, 0) {
		t.Fatal("warm ignored the byte capacity")
	}
	// A restore is not a lookup: no counter moves.
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Evictions != 0 || s.Prefetches != 0 {
		t.Fatalf("warm moved counters: %+v", s)
	}
	if got := residentBytes(c.Keys(), sizer); got != c.BytesUsed() {
		t.Fatalf("accounting drift: BytesUsed %d, resident sum %d", c.BytesUsed(), got)
	}
}

func TestShardedWatermarkAndWarm(t *testing.T) {
	s := MustNewSharded(8, LFU, 4)
	sizer := flatSizer(100)
	s.SetSizer(sizer)
	s.SetByteCapacity(800)
	s.SetPinWindow(1000)

	if !s.Warm("w1", 1, 3) || !s.Warm("w1", 1, 1) {
		t.Fatal("sharded warm failed")
	}
	if s.Freq("w1") != 3 {
		t.Fatalf("sharded warm freq %d, want 3", s.Freq("w1"))
	}
	if ok, _, err := s.Prefetch("pin", 1); !ok || err != nil {
		t.Fatalf("sharded prefetch: %v %v", ok, err)
	}
	for _, k := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		if _, _, err := s.Request(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Whatever the hash distribution did, the byte ledger must agree
	// with the resident key set.
	if got := residentBytes(s.Keys(), sizer); got != s.BytesUsed() {
		t.Fatalf("accounting drift: BytesUsed %d, resident sum %d", s.BytesUsed(), got)
	}
	// Tighten to a per-shard ceiling below one entry: every unpinned
	// resident is swept, the pinned prefetch alone survives.
	s.SetWatermark(0.25)
	evicted := s.SweepToWatermark()
	for _, k := range evicted {
		if k == "pin" {
			t.Fatal("sharded sweep evicted a pinned entry")
		}
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "pin" {
		t.Fatalf("survivors %v, want only the pinned entry", keys)
	}
	if s.BytesUsed() != 100 {
		t.Fatalf("bytes after sweep %d, want the pinned entry's 100", s.BytesUsed())
	}
}
