// Package modelcache implements the paper's Cache-based Model Deployment
// (CMD, §V-B): a bounded cache of compressed models resident in GPU
// memory, evicting Least Frequently Used models when a newly requested
// model misses. LRU and FIFO policies are included for the cache-policy
// ablation.
//
// Two cache types are provided. Cache is the single-goroutine original:
// one device, one stream, no locks. Sharded partitions the same capacity
// across mutex-guarded shards keyed by model name, with atomic
// hit/miss/eviction counters, and is safe for concurrent use — it backs
// core.MultiRuntime, where many streams share one resident-model budget.
package modelcache

import (
	"fmt"
	"sort"
)

// Policy selects the eviction discipline.
type Policy int

// Eviction policies. LFU is the paper's choice, justified by the
// power-law model-utility distribution of Fig. 4(b).
const (
	LFU Policy = iota + 1
	LRU
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LFU:
		return "LFU"
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

type entry struct {
	key      string
	size     int
	bytes    int64 // serialized model bytes per the sizer at admission (0 without a sizer)
	freq     int   // use count (LFU)
	lastUsed int64 // logical clock of last use (LRU)
	inserted int64 // logical clock at insertion (FIFO, tie-break)
	// prefetched marks entries admitted speculatively by Prefetch;
	// unused stays true until the entry's first real use (Touch or a
	// Request hit). pinnedUntil protects an unused prefetched entry
	// from eviction while clock < pinnedUntil (its first-use window).
	prefetched  bool
	unused      bool
	pinnedUntil int64
}

// Cache is a bounded model cache. Capacity is expressed in abstract size
// units (the harness uses "compressed model" units, matching Fig. 7(b)'s
// x-axis). The zero value is not usable; construct with New. Cache is not
// safe for concurrent use; wrap the same policies in a Sharded cache when
// multiple goroutines share one model budget.
type Cache struct {
	capacity int
	policy   Policy
	entries  map[string]*entry
	// history preserves use counts across evictions, so a hot model's
	// utility survives a temporary eviction (LFU with perfect history;
	// the paper's CMD tracks model utility over the whole stream).
	history map[string]int
	clock   int64
	used    int
	// pinWindow is the first-use protection span, in logical-clock
	// ticks, granted to prefetched entries (see Prefetch).
	pinWindow int64
	// sizer maps a key to its serialized model size in bytes (see
	// SetSizer); bytesUsed is the summed bytes of resident entries.
	sizer     func(key string) int64
	bytesUsed int64
	// byteCap bounds bytesUsed when > 0 and a sizer is installed (see
	// SetByteCapacity); watermark (0 < w ≤ 1) scales the byte ceiling
	// for speculative admissions and sweeps under memory pressure.
	byteCap   int64
	watermark float64

	hits      int64
	misses    int64
	evictions int64

	prefetches     int64
	prefetchHits   int64
	prefetchWasted int64
}

// DefaultPinWindow is the first-use protection window, in logical-clock
// ticks (every Touch and every admission advance the clock by one),
// granted to prefetched entries: within the window an unused prefetched
// entry is evicted only when no unpinned victim exists.
const DefaultPinWindow = 64

// New returns a cache holding at most capacity size units under the given
// policy.
func New(capacity int, policy Policy) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("modelcache: capacity %d", capacity)
	}
	switch policy {
	case LFU, LRU, FIFO:
	default:
		return nil, fmt.Errorf("modelcache: unknown policy %v", policy)
	}
	return &Cache{
		capacity:  capacity,
		policy:    policy,
		entries:   make(map[string]*entry),
		history:   make(map[string]int),
		pinWindow: DefaultPinWindow,
	}, nil
}

// MustNew is New that panics on error, for statically valid parameters.
func MustNew(capacity int, policy Policy) *Cache {
	c, err := New(capacity, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the configured capacity in size units.
func (c *Cache) Capacity() int { return c.capacity }

// Used returns the occupied size units.
func (c *Cache) Used() int { return c.used }

// SetSizer teaches the cache the serialized byte size of each model:
// fn maps a key to its exact on-device bytes (e.g. nn.Weights.SizeBytes
// of the detector behind the key). Resident entries are re-measured
// immediately, and every later admission records fn(key) so BytesUsed
// tracks the real resident set. A nil fn clears byte accounting.
func (c *Cache) SetSizer(fn func(key string) int64) {
	c.sizer = fn
	c.bytesUsed = 0
	for _, e := range c.entries {
		e.bytes = c.sizeOf(e.key)
		c.bytesUsed += e.bytes
	}
}

// BytesUsed returns the summed serialized bytes of resident models, 0
// until SetSizer installs a sizer. Unlike Used (abstract slot units),
// this is the exact memory figure of the resident repertoire slice.
func (c *Cache) BytesUsed() int64 { return c.bytesUsed }

// SetByteCapacity bounds the resident set in serialized bytes: demand
// admissions evict until the incoming model fits under n, speculative
// admissions fit under the watermark fraction of n. The bound is only
// enforced while a sizer is installed (without one every entry
// measures 0 bytes). n <= 0 clears the bound. This is how a device
// profile's GPU memory ceiling becomes the cache's real budget,
// instead of the slot capacity silently diverging from it.
func (c *Cache) SetByteCapacity(n int64) {
	if n < 0 {
		n = 0
	}
	c.byteCap = n
}

// ByteCapacity returns the configured byte capacity (0 = unbounded).
func (c *Cache) ByteCapacity() int64 { return c.byteCap }

// SetWatermark sets the byte-ceiling fraction (0 < frac ≤ 1) applied
// to speculative admissions and watermark sweeps. Under memory
// pressure the fraction tightens (e.g. 0.75) so the cache sheds cold
// entries and keeps headroom; demand admissions still use the full
// byte capacity — serving a frame is never blocked by the watermark.
// Out-of-range values reset to 1.
func (c *Cache) SetWatermark(frac float64) {
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	c.watermark = frac
}

// Watermark returns the current watermark fraction (1 when unset).
func (c *Cache) Watermark() float64 {
	if c.watermark <= 0 || c.watermark > 1 {
		return 1
	}
	return c.watermark
}

// effByteCap returns the watermark-scaled byte ceiling (0 when byte
// capacity is unbounded or no sizer is installed).
func (c *Cache) effByteCap() int64 {
	if c.byteCap <= 0 || c.sizer == nil {
		return 0
	}
	return int64(float64(c.byteCap) * c.Watermark())
}

// SweepToWatermark evicts unpinned entries (per the policy order)
// until resident bytes fit under the watermark-scaled byte ceiling,
// returning the evicted keys. Pinned entries — prefetched models
// inside their first-use window — are never evicted by a sweep, even
// if that leaves the cache above the watermark: the sweep is advisory
// pressure relief, not a correctness bound. No-op without a byte
// capacity and sizer.
func (c *Cache) SweepToWatermark() []string {
	target := c.effByteCap()
	if target <= 0 {
		return nil
	}
	var evicted []string
	for c.bytesUsed > target {
		victim := c.victimUnpinned()
		if victim == "" {
			break
		}
		c.evictEntry(victim)
		evicted = append(evicted, victim)
	}
	return evicted
}

// Warm re-admits key from a restart checkpoint's residency manifest:
// it inserts without evicting (admission is best-effort — restore must
// never displace whatever already loaded), without touching the
// hit/miss/prefetch counters (a restore is not a lookup), and seeds
// the LFU perfect history with freq so the entry keeps its pre-crash
// utility standing. Reports whether the key is resident afterwards.
func (c *Cache) Warm(key string, size, freq int) bool {
	if size <= 0 || key == "" {
		return false
	}
	if _, ok := c.entries[key]; ok {
		return true
	}
	if c.used+size > c.capacity {
		return false
	}
	bytes := c.sizeOf(key)
	if c.byteCap > 0 && c.sizer != nil && c.bytesUsed+bytes > c.byteCap {
		return false
	}
	if freq < 0 {
		freq = 0
	}
	if freq < c.history[key] {
		freq = c.history[key]
	}
	c.history[key] = freq
	c.clock++
	e := &entry{
		key:      key,
		size:     size,
		bytes:    bytes,
		freq:     freq,
		lastUsed: c.clock,
		inserted: c.clock,
	}
	c.entries[key] = e
	c.used += size
	c.bytesUsed += e.bytes
	return true
}

// sizeOf measures key under the installed sizer (0 without one).
func (c *Cache) sizeOf(key string) int64 {
	if c.sizer == nil {
		return 0
	}
	return c.sizer(key)
}

// Len returns the number of cached models.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether key is cached, without recording a use.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Touch records a use of key (frequency and recency bump) and reports
// whether it was present. The first use of a prefetched entry counts as
// a prefetch hit — the model was warmed before it was needed — and
// releases its eviction pin.
func (c *Cache) Touch(key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.clock++
	e.freq++
	c.history[key] = e.freq
	e.lastUsed = c.clock
	if e.prefetched && e.unused {
		e.unused = false
		e.pinnedUntil = 0
		c.prefetchHits++
	}
	return true
}

// SetPinWindow sets the first-use protection window of future Prefetch
// admissions, in logical-clock ticks (≤0 disables pinning). The default
// is DefaultPinWindow.
func (c *Cache) SetPinWindow(n int) {
	if n < 0 {
		n = 0
	}
	c.pinWindow = int64(n)
}

// Prefetch speculatively admits key ahead of an anticipated request. It
// differs from Request in three ways: it does not move the hit/miss
// counters (a prefetch is not a lookup), it will not evict a pinned
// entry or the most recently used one to make room (admission is
// best-effort and reports admitted = false when only protected victims
// remain), and the new entry is itself
// pinned against eviction until its first use or until the pin window
// expires. A key that is already resident is left untouched (admitted =
// false, no use recorded). Entries larger than the cache are rejected
// with an error.
func (c *Cache) Prefetch(key string, size int) (admitted bool, evicted []string, err error) {
	if size <= 0 {
		return false, nil, fmt.Errorf("modelcache: size %d for %q", size, key)
	}
	if _, ok := c.entries[key]; ok {
		return false, nil, nil
	}
	if size > c.capacity {
		return false, nil, fmt.Errorf("modelcache: %q (size %d) exceeds capacity %d", key, size, c.capacity)
	}
	incomingBytes := c.sizeOf(key)
	if ceil := c.effByteCap(); ceil > 0 && incomingBytes > ceil {
		return false, nil, nil
	}
	for c.overCommitted(size, incomingBytes, c.effByteCap()) {
		victim := c.victimSpeculative()
		if victim == "" {
			return false, evicted, nil
		}
		c.evictEntry(victim)
		evicted = append(evicted, victim)
	}
	c.clock++
	e := &entry{
		key:         key,
		size:        size,
		bytes:       incomingBytes,
		freq:        c.history[key], // no use recorded yet
		lastUsed:    c.clock,
		inserted:    c.clock,
		prefetched:  true,
		unused:      true,
		pinnedUntil: c.clock + c.pinWindow,
	}
	c.entries[key] = e
	c.used += size
	c.bytesUsed += e.bytes
	c.prefetches++
	return true, evicted, nil
}

// Request is the cache's main entry point: it records a hit (touching the
// entry) when key is cached, or a miss followed by insertion, evicting
// victims per the policy until the new entry fits. It returns whether the
// request hit and which keys were evicted. Entries larger than the whole
// cache are rejected with an error. LFU frequency counts survive
// eviction (perfect history), so a previously hot model regains its
// utility standing on re-admission.
func (c *Cache) Request(key string, size int) (hit bool, evicted []string, err error) {
	if size <= 0 {
		return false, nil, fmt.Errorf("modelcache: size %d for %q", size, key)
	}
	if c.Touch(key) {
		c.hits++
		return true, nil, nil
	}
	c.misses++
	if size > c.capacity {
		return false, nil, fmt.Errorf("modelcache: %q (size %d) exceeds capacity %d", key, size, c.capacity)
	}
	incomingBytes := c.sizeOf(key)
	if c.byteCap > 0 && c.sizer != nil && incomingBytes > c.byteCap {
		return false, nil, fmt.Errorf("modelcache: %q (%d bytes) exceeds byte capacity %d", key, incomingBytes, c.byteCap)
	}
	incomingFreq := c.history[key] + 1
	c.history[key] = incomingFreq
	// Demand admissions use the full byte capacity, not the watermark:
	// serving the current frame always outranks keeping headroom.
	byteCeil := int64(0)
	if c.byteCap > 0 && c.sizer != nil {
		byteCeil = c.byteCap
	}
	for c.overCommitted(size, incomingBytes, byteCeil) {
		victim := c.victim()
		if victim == "" {
			return false, evicted, fmt.Errorf("modelcache: no evictable entry for %q", key)
		}
		c.evictEntry(victim)
		evicted = append(evicted, victim)
	}
	c.clock++
	e := &entry{
		key:      key,
		size:     size,
		bytes:    incomingBytes,
		freq:     incomingFreq,
		lastUsed: c.clock,
		inserted: c.clock,
	}
	c.entries[key] = e
	c.used += size
	c.bytesUsed += e.bytes
	return false, evicted, nil
}

// Remove drops key from the cache (e.g. when the runtime retires a
// model), reporting whether it was present. It does not count as an
// eviction.
func (c *Cache) Remove(key string) bool {
	if _, ok := c.entries[key]; !ok {
		return false
	}
	c.removeEntry(key)
	return true
}

func (c *Cache) removeEntry(key string) {
	e := c.entries[key]
	c.used -= e.size
	c.bytesUsed -= e.bytes
	delete(c.entries, key)
}

// overCommitted reports whether admitting (size, bytes) would exceed
// the slot capacity or, when byteCeil > 0, the byte ceiling.
func (c *Cache) overCommitted(size int, bytes, byteCeil int64) bool {
	if c.used+size > c.capacity {
		return true
	}
	return byteCeil > 0 && c.bytesUsed+bytes > byteCeil
}

// evictEntry removes key as an eviction, counting a wasted prefetch when
// the entry was warmed but never used.
func (c *Cache) evictEntry(key string) {
	if e := c.entries[key]; e != nil && e.prefetched && e.unused {
		c.prefetchWasted++
	}
	c.removeEntry(key)
	c.evictions++
}

// pinned reports whether e is inside its prefetch first-use window.
func (c *Cache) pinned(e *entry) bool {
	return e.unused && e.pinnedUntil > c.clock
}

// victim picks the eviction candidate under the policy, breaking ties by
// earliest insertion so eviction order is deterministic. Entries inside
// their prefetch pin window are spared while any unpinned candidate
// exists; when every entry is pinned the policy runs over all of them,
// so an on-demand admission never fails for pinning alone.
func (c *Cache) victim() string {
	if v := c.victimUnpinned(); v != "" {
		return v
	}
	return c.victimAmong(func(*entry) bool { return true })
}

// victimUnpinned picks the policy victim among unpinned entries only,
// returning "" when none exists.
func (c *Cache) victimUnpinned() string {
	return c.victimAmong(func(e *entry) bool { return !c.pinned(e) })
}

// victimSpeculative selects a victim for speculative admission. Pinned
// entries are protected, and so is the most recently used entry: a
// prefetch must never displace the model serving the current scene,
// even when the policy's long-run ranking (LFU frequency, say) puts
// that model last. Demand insertion (Request) is not so constrained.
func (c *Cache) victimSpeculative() string {
	mru := c.mostRecentlyUsed()
	return c.victimAmong(func(e *entry) bool { return !c.pinned(e) && e != mru })
}

func (c *Cache) mostRecentlyUsed() *entry {
	var best *entry
	for _, e := range c.entries {
		if best == nil || e.lastUsed > best.lastUsed {
			best = e
		}
	}
	return best
}

func (c *Cache) victimAmong(ok func(*entry) bool) string {
	var best *entry
	for _, e := range c.entries {
		if !ok(e) {
			continue
		}
		if best == nil || less(c.policy, e, best) {
			best = e
		}
	}
	if best == nil {
		return ""
	}
	return best.key
}

func less(p Policy, a, b *entry) bool {
	switch p {
	case LFU:
		if a.freq != b.freq {
			return a.freq < b.freq
		}
	case LRU:
		if a.lastUsed != b.lastUsed {
			return a.lastUsed < b.lastUsed
		}
	case FIFO:
		// fall through to insertion order
	}
	return a.inserted < b.inserted
}

// Keys returns the cached keys sorted lexicographically (a stable view
// for tests and logs).
func (c *Cache) Keys() []string {
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats reports cumulative hit/miss/eviction counts plus the prefetch
// counters: speculative admissions, first uses of a warmed entry (the
// switch was served warm), and warmed entries evicted before any use.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64

	Prefetches     int64
	PrefetchHits   int64
	PrefetchWasted int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,

		Prefetches:     c.prefetches,
		PrefetchHits:   c.prefetchHits,
		PrefetchWasted: c.prefetchWasted,
	}
}

// MissRate returns misses / (hits + misses), 0 when idle. This is the
// Fig. 7(b) y-axis.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Freq returns the recorded use count of key (0 when absent), exposed for
// tests and the utility-distribution experiment.
func (c *Cache) Freq(key string) int {
	if e, ok := c.entries[key]; ok {
		return e.freq
	}
	return 0
}
