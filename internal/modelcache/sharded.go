package modelcache

import (
	"fmt"
	"sort"
	"sync"

	"anole/internal/telemetry"
)

// Sharded is a thread-safe model cache for multi-stream serving: the
// capacity is partitioned across independent shards, each an ordinary
// Cache guarded by its own mutex, and model keys are hashed to shards.
// Concurrent requests for different shards proceed in parallel; requests
// for the same shard serialize on that shard's lock only.
//
// The eviction policy is therefore approximate-global: each shard runs
// the configured policy over its own resident set, so a globally cold
// model can outlive a globally hot one that landed in a crowded shard.
// This is the standard sharding trade-off; the streams×slots benchmark
// at the repository root measures its cost on the paper's workload. The
// capacity bound, however, is exact: every shard enforces its slice of
// the capacity under its lock, so the summed residency never exceeds
// Capacity.
//
// Hit/miss/eviction/lookup counters live on the telemetry registry as
// atomic counters maintained outside the shard locks, giving Stats and
// MissRate a lock-free merged view (ShardStats exposes the exact
// per-shard breakdown) and /metrics the same numbers under the
// anole_modelcache_* names. Stats is a snapshot view over those
// handles, not a separate set of books.
type Sharded struct {
	shards   []*shard
	capacity int
	policy   Policy

	reg       *telemetry.Registry
	lookups   *telemetry.Counter
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	resident  *telemetry.Gauge
}

type shard struct {
	mu sync.Mutex
	c  *Cache
}

// NewSharded returns a thread-safe cache of the given total capacity,
// split over shards (≤0 selects min(capacity, 8); values above capacity
// are clamped so every shard holds at least one size unit). Capacity is
// distributed as evenly as possible: the first capacity mod shards
// shards receive one extra unit. The cache's counters land in a private
// telemetry registry; use NewShardedMetrics to register them on a
// shared one instead.
func NewSharded(capacity int, policy Policy, shards int) (*Sharded, error) {
	return NewShardedMetrics(capacity, policy, shards, nil)
}

// NewShardedMetrics is NewSharded with the cache's counters registered
// on reg under the anole_modelcache_* names, so a shared registry
// exposes live cache behavior on /metrics. A nil reg keeps the counters
// in a private registry (reachable via Registry()); either way Stats
// and MissRate read the same handles.
func NewShardedMetrics(capacity int, policy Policy, shards int, reg *telemetry.Registry) (*Sharded, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("modelcache: capacity %d", capacity)
	}
	if shards <= 0 {
		shards = 8
	}
	if shards > capacity {
		shards = capacity
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Sharded{
		capacity: capacity,
		policy:   policy,
		shards:   make([]*shard, shards),

		reg:       reg,
		lookups:   reg.Counter("anole_modelcache_lookups_total", "Request calls with a valid size"),
		hits:      reg.Counter("anole_modelcache_hits_total", "Requests served by a resident model"),
		misses:    reg.Counter("anole_modelcache_misses_total", "Requests that had to admit the model"),
		evictions: reg.Counter("anole_modelcache_evictions_total", "Models evicted to make room"),
		resident:  reg.Gauge("anole_modelcache_resident_models", "Models currently cached across shards"),
	}
	base, extra := capacity/shards, capacity%shards
	for i := range s.shards {
		cap := base
		if i < extra {
			cap++
		}
		c, err := New(cap, policy)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{c: c}
	}
	return s, nil
}

// MustNewSharded is NewSharded that panics on error, for statically
// valid parameters.
func MustNewSharded(capacity int, policy Policy, shards int) *Sharded {
	s, err := NewSharded(capacity, policy, shards)
	if err != nil {
		panic(err)
	}
	return s
}

// shardFor hashes key to its shard (FNV-1a, allocation-free).
func (s *Sharded) shardFor(key string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[int(h%uint32(len(s.shards)))]
}

// Capacity returns the total configured capacity in size units.
func (s *Sharded) Capacity() int { return s.capacity }

// Policy returns the per-shard eviction policy.
func (s *Sharded) Policy() Policy { return s.policy }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Used returns the occupied size units summed over shards. Each shard is
// read under its lock, but the sum is not a single atomic snapshot; with
// concurrent writers it is a bound, not an instant.
func (s *Sharded) Used() int {
	var used int
	for _, sh := range s.shards {
		sh.mu.Lock()
		used += sh.c.Used()
		sh.mu.Unlock()
	}
	return used
}

// SetSizer installs the key→serialized-bytes function on every shard
// (see Cache.SetSizer), re-measuring already-resident entries. Call it
// before concurrent traffic starts (e.g. at runtime construction);
// BytesUsed then tracks the exact resident model bytes.
func (s *Sharded) SetSizer(fn func(key string) int64) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.c.SetSizer(fn)
		sh.mu.Unlock()
	}
}

// BytesUsed returns the summed serialized bytes of resident models
// across shards (0 until SetSizer; same snapshot caveat as Used).
func (s *Sharded) BytesUsed() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.c.BytesUsed()
		sh.mu.Unlock()
	}
	return total
}

// Len returns the number of cached models summed over shards (same
// snapshot caveat as Used).
func (s *Sharded) Len() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

// Contains reports whether key is cached, without recording a use.
func (s *Sharded) Contains(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Contains(key)
}

// Touch records a use of key and reports whether it was present. It does
// not move the lookup counters (mirroring Cache.Touch).
func (s *Sharded) Touch(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Touch(key)
}

// Request behaves like Cache.Request against key's shard: a hit touches
// the entry; a miss admits it, evicting victims within the shard until
// it fits. Entries larger than the shard's capacity slice are rejected
// with an error (with slot-sized models — size 1 — every shard accepts
// every model). Exactly one lookup, and one hit or one miss, is counted
// per call with a valid size, so Hits+Misses always equals Lookups.
func (s *Sharded) Request(key string, size int) (hit bool, evicted []string, err error) {
	if size <= 0 {
		return false, nil, fmt.Errorf("modelcache: size %d for %q", size, key)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	hit, evicted, err = sh.c.Request(key, size)
	sh.mu.Unlock()
	s.lookups.Add(1)
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
		if err == nil {
			s.resident.Add(1)
		}
	}
	s.evictions.Add(int64(len(evicted)))
	s.resident.Add(-float64(len(evicted)))
	return hit, evicted, err
}

// Prefetch behaves like Cache.Prefetch against key's shard: a
// speculative admission that leaves the hit/miss counters alone, never
// displaces a pinned entry, and pins the new entry until its first use
// window expires. Safe to call from background prefetch goroutines
// while other goroutines Request.
func (s *Sharded) Prefetch(key string, size int) (admitted bool, evicted []string, err error) {
	if size <= 0 {
		return false, nil, fmt.Errorf("modelcache: size %d for %q", size, key)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	admitted, evicted, err = sh.c.Prefetch(key, size)
	sh.mu.Unlock()
	s.evictions.Add(int64(len(evicted)))
	if admitted {
		s.resident.Add(1)
	}
	s.resident.Add(-float64(len(evicted)))
	return admitted, evicted, err
}

// SetByteCapacity distributes a total byte capacity across shards the
// same way slot capacity is distributed (even split, first shards take
// the remainder), so the summed resident bytes never exceed total.
// Like Cache.SetByteCapacity it only binds while a sizer is installed;
// n <= 0 clears the bound on every shard.
func (s *Sharded) SetByteCapacity(total int64) {
	n := int64(len(s.shards))
	base, extra := total/n, total%n
	if total <= 0 {
		base, extra = 0, 0
	}
	for i, sh := range s.shards {
		slice := base
		if int64(i) < extra {
			slice++
		}
		sh.mu.Lock()
		sh.c.SetByteCapacity(slice)
		sh.mu.Unlock()
	}
}

// ByteCapacity returns the summed per-shard byte capacities (0 when
// unbounded).
func (s *Sharded) ByteCapacity() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.c.ByteCapacity()
		sh.mu.Unlock()
	}
	return total
}

// SetWatermark sets the byte-ceiling fraction on every shard (see
// Cache.SetWatermark).
func (s *Sharded) SetWatermark(frac float64) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.c.SetWatermark(frac)
		sh.mu.Unlock()
	}
}

// SweepToWatermark runs Cache.SweepToWatermark on every shard and
// returns all evicted keys. Pinned entries are never evicted.
func (s *Sharded) SweepToWatermark() []string {
	var evicted []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		ev := sh.c.SweepToWatermark()
		sh.mu.Unlock()
		evicted = append(evicted, ev...)
	}
	s.evictions.Add(int64(len(evicted)))
	s.resident.Add(-float64(len(evicted)))
	return evicted
}

// Warm re-admits key into its shard from a restart checkpoint's
// residency manifest (see Cache.Warm): best-effort, no eviction, no
// hit/miss accounting, LFU history seeded with freq.
func (s *Sharded) Warm(key string, size, freq int) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	resident := sh.c.Contains(key)
	ok := sh.c.Warm(key, size, freq)
	sh.mu.Unlock()
	if ok && !resident {
		s.resident.Add(1)
	}
	return ok
}

// SetPinWindow sets the prefetch first-use protection window on every
// shard (see Cache.SetPinWindow).
func (s *Sharded) SetPinWindow(n int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.c.SetPinWindow(n)
		sh.mu.Unlock()
	}
}

// Remove drops key from its shard, reporting whether it was present. It
// does not count as an eviction.
func (s *Sharded) Remove(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	removed := sh.c.Remove(key)
	sh.mu.Unlock()
	if removed {
		s.resident.Add(-1)
	}
	return removed
}

// Freq returns the recorded use count of key (0 when absent).
func (s *Sharded) Freq(key string) int {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Freq(key)
}

// Keys returns the cached keys across all shards, sorted
// lexicographically (same snapshot caveat as Used).
func (s *Sharded) Keys() []string {
	var keys []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		keys = append(keys, sh.c.Keys()...)
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// Stats returns the merged counters: hit/miss/eviction come from the
// atomic fast path (lock-free; equal to the sum of ShardStats once all
// requests have returned), while the prefetch counters are summed from
// the shards under their locks (prefetch accounting lives inside the
// per-shard caches, where first-use detection happens).
func (s *Sharded) Stats() Stats {
	out := Stats{
		Hits:      s.hits.Value(),
		Misses:    s.misses.Value(),
		Evictions: s.evictions.Value(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.c.Stats()
		sh.mu.Unlock()
		out.Prefetches += st.Prefetches
		out.PrefetchHits += st.PrefetchHits
		out.PrefetchWasted += st.PrefetchWasted
	}
	return out
}

// Lookups returns the total Request calls with a valid size; it always
// equals Stats().Hits + Stats().Misses at quiescence.
func (s *Sharded) Lookups() int64 { return s.lookups.Value() }

// Registry returns the telemetry registry holding the cache's counters
// — the one passed to NewShardedMetrics, or the private registry
// NewSharded created.
func (s *Sharded) Registry() *telemetry.Registry { return s.reg }

// ShardStats returns each shard's own counters, read under the shard
// locks.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.c.Stats()
		sh.mu.Unlock()
	}
	return out
}

// MissRate returns misses / lookups from the atomic counters, 0 when
// idle.
func (s *Sharded) MissRate() float64 {
	misses := s.misses.Value()
	total := s.hits.Value() + misses
	if total == 0 {
		return 0
	}
	return float64(misses) / float64(total)
}
