// Package baselines implements the paper's four candidate methods
// (§VI-A3): SDM (one versatile deep model), SSM (one general compressed
// model), CDG (clustering-based domain generalization: feature-space
// clusters with per-cluster compressed models selected by nearest
// centroid), and DMM (one compressed model per source dataset, selected
// by the test sample's dataset). All satisfy the Selector interface the
// experiment harness evaluates uniformly alongside Anole.
package baselines

import (
	"fmt"

	"anole/internal/detect"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Selector is a per-frame model-selection policy: the common surface of
// all candidate methods.
type Selector interface {
	// Name identifies the method ("SDM", "SSM", "CDG", "DMM").
	Name() string
	// Select returns the detector to run on frame f.
	Select(f *synth.Frame) *detect.Detector
	// Detectors lists every model the method may deploy (for memory
	// accounting).
	Detectors() []*detect.Detector
	// OverheadFLOPs is the per-frame selection cost beyond detection
	// itself (0 for the static methods).
	OverheadFLOPs() int64
}

// EvaluateFrame runs a selector's chosen model on one frame and scores
// it.
func EvaluateFrame(s Selector, f *synth.Frame) stats.PRF1 {
	return s.Select(f).EvaluateFrame(f)
}

// WindowedF1 evaluates a selector over consecutive windows of frames,
// matching the paper's "F1 every ten frames" protocol.
func WindowedF1(s Selector, frames []*synth.Frame, window int) []float64 {
	if window <= 0 {
		window = 10
	}
	var out []float64
	for start := 0; start < len(frames); start += window {
		end := start + window
		if end > len(frames) {
			end = len(frames)
		}
		var agg stats.PRF1
		for _, f := range frames[start:end] {
			agg = agg.Add(EvaluateFrame(s, f))
		}
		out = append(out, agg.F1)
	}
	return out
}

// SDM is the Single Deep Model baseline: one YOLOv3-analogue trained on
// everything.
type SDM struct {
	det *detect.Detector
}

// TrainSDM fits the deep baseline on all training frames.
func TrainSDM(train, val []*synth.Frame, cfg detect.TrainConfig) (*SDM, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: SDM needs training frames")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = xrand.New(0)
		cfg.RNG = rng
	}
	det := detect.NewDetector("SDM", detect.Deep, train[0].FeatDim(), rng)
	if err := det.Train(train, val, cfg); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return &SDM{det: det}, nil
}

// Name implements Selector.
func (s *SDM) Name() string { return "SDM" }

// Select implements Selector.
func (s *SDM) Select(*synth.Frame) *detect.Detector { return s.det }

// Detectors implements Selector.
func (s *SDM) Detectors() []*detect.Detector { return []*detect.Detector{s.det} }

// OverheadFLOPs implements Selector.
func (s *SDM) OverheadFLOPs() int64 { return 0 }

// SSM is the Single Shallow Model baseline: one compressed model trained
// on everything.
type SSM struct {
	det *detect.Detector
}

// TrainSSM fits the compressed baseline on all training frames.
func TrainSSM(train, val []*synth.Frame, cfg detect.TrainConfig) (*SSM, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: SSM needs training frames")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = xrand.New(0)
		cfg.RNG = rng
	}
	det := detect.NewDetector("SSM", detect.Compressed, train[0].FeatDim(), rng)
	if err := det.Train(train, val, cfg); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	return &SSM{det: det}, nil
}

// Name implements Selector.
func (s *SSM) Name() string { return "SSM" }

// Select implements Selector.
func (s *SSM) Select(*synth.Frame) *detect.Detector { return s.det }

// Detectors implements Selector.
func (s *SSM) Detectors() []*detect.Detector { return []*detect.Detector{s.det} }

// OverheadFLOPs implements Selector.
func (s *SSM) OverheadFLOPs() int64 { return 0 }

// CDG is Clustering-based Domain Generalization: k-means over raw frame
// features defines domains, each with a compressed model; online, the
// model of the nearest cluster centroid serves the frame.
type CDG struct {
	dets      []*detect.Detector
	centroids []tensor.Vector
}

// CDGConfig controls the CDG baseline.
type CDGConfig struct {
	// K is the number of feature-space domains (default 6).
	K int
	// Restarts is the k-means restart count (default 4).
	Restarts int
	// Train configures the per-domain detector training.
	Train detect.TrainConfig
	// RNG is required for determinism.
	RNG *xrand.RNG
}

// TrainCDG clusters training frames in raw feature space and fits one
// compressed model per cluster.
func TrainCDG(train, val []*synth.Frame, cfg CDGConfig) (*CDG, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: CDG needs training frames")
	}
	if cfg.K <= 0 {
		cfg.K = 6
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	if cfg.RNG == nil {
		cfg.RNG = xrand.New(0)
	}
	feats := make([]tensor.Vector, len(train))
	for i, f := range train {
		feats[i] = synth.FrameFeature(f)
	}
	res, err := scene.KMeans(feats, cfg.K, cfg.Restarts, cfg.RNG.Split(1))
	if err != nil {
		return nil, fmt.Errorf("baselines: CDG clustering: %w", err)
	}
	k := len(res.Centroids)
	c := &CDG{centroids: res.Centroids, dets: make([]*detect.Detector, k)}
	featDim := train[0].FeatDim()
	for j := 0; j < k; j++ {
		var cluster []*synth.Frame
		for i, a := range res.Assign {
			if a == j {
				cluster = append(cluster, train[i])
			}
		}
		det := detect.NewDetector(fmt.Sprintf("CDG_%d", j+1), detect.Compressed, featDim, cfg.RNG.Split(uint64(j+2)))
		tc := cfg.Train
		tc.RNG = cfg.RNG.Split(uint64(j + 100))
		if len(cluster) == 0 {
			cluster = train // degenerate cluster: fall back to all data
		}
		if err := det.Train(cluster, nil, tc); err != nil {
			return nil, fmt.Errorf("baselines: CDG model %d: %w", j, err)
		}
		c.dets[j] = det
	}
	_ = val // CDG, as described in the paper, does not early-stop
	return c, nil
}

// Name implements Selector.
func (c *CDG) Name() string { return "CDG" }

// Select implements Selector.
func (c *CDG) Select(f *synth.Frame) *detect.Detector {
	idx := scene.NearestCentroid(c.centroids, synth.FrameFeature(f))
	return c.dets[idx]
}

// Detectors implements Selector.
func (c *CDG) Detectors() []*detect.Detector { return c.dets }

// OverheadFLOPs implements Selector: the nearest-centroid search (one
// subtract-square-add triple per centroid dimension).
func (c *CDG) OverheadFLOPs() int64 {
	if len(c.centroids) == 0 {
		return 0
	}
	return int64(3 * len(c.centroids) * len(c.centroids[0]))
}

// DMM is Dataset-based Multiple Models: one compressed model per source
// dataset, selected by the frame's dataset of origin (the paper gives DMM
// this oracle knowledge).
type DMM struct {
	byDataset map[synth.DatasetID]*detect.Detector
	order     []*detect.Detector
	fallback  *detect.Detector
}

// TrainDMM fits one compressed model per dataset present in train.
func TrainDMM(train, val []*synth.Frame, cfg detect.TrainConfig) (*DMM, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: DMM needs training frames")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = xrand.New(0)
	}
	byDS := make(map[synth.DatasetID][]*synth.Frame)
	for _, f := range train {
		byDS[f.Dataset] = append(byDS[f.Dataset], f)
	}
	d := &DMM{byDataset: make(map[synth.DatasetID]*detect.Detector, len(byDS))}
	featDim := train[0].FeatDim()
	for ds := synth.DatasetID(0); int(ds) < synth.NumDatasets; ds++ {
		frames, ok := byDS[ds]
		if !ok {
			continue
		}
		det := detect.NewDetector("DMM_"+ds.String(), detect.Compressed, featDim, rng.Split(uint64(ds)))
		tc := cfg
		tc.RNG = rng.Split(uint64(ds) + 50)
		if err := det.Train(frames, nil, tc); err != nil {
			return nil, fmt.Errorf("baselines: DMM %v: %w", ds, err)
		}
		d.byDataset[ds] = det
		d.order = append(d.order, det)
		if d.fallback == nil {
			d.fallback = det
		}
	}
	_ = val
	return d, nil
}

// Name implements Selector.
func (d *DMM) Name() string { return "DMM" }

// Select implements Selector. Frames from datasets without a model fall
// back to the first trained model.
func (d *DMM) Select(f *synth.Frame) *detect.Detector {
	if det, ok := d.byDataset[f.Dataset]; ok {
		return det
	}
	return d.fallback
}

// Detectors implements Selector.
func (d *DMM) Detectors() []*detect.Detector { return d.order }

// OverheadFLOPs implements Selector.
func (d *DMM) OverheadFLOPs() int64 { return 0 }

// Compile-time interface checks.
var (
	_ Selector = (*SDM)(nil)
	_ Selector = (*SSM)(nil)
	_ Selector = (*CDG)(nil)
	_ Selector = (*DMM)(nil)
)
