package baselines

import (
	"testing"

	"anole/internal/detect"
	"anole/internal/synth"
	"anole/internal/xrand"
)

func smallCorpus(t *testing.T, seed uint64) *synth.Corpus {
	t.Helper()
	w, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w.GenerateCorpus(synth.DefaultProfiles(0.2))
}

func TestTrainSDM(t *testing.T) {
	corpus := smallCorpus(t, 1)
	train := corpus.Frames(synth.Train)
	s, err := TrainSDM(train, nil, detect.TrainConfig{Epochs: 8, RNG: xrand.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SDM" || len(s.Detectors()) != 1 || s.OverheadFLOPs() != 0 {
		t.Fatal("SDM surface wrong")
	}
	if s.Select(train[0]).Arch.Name != detect.Deep.Name {
		t.Fatal("SDM must use the deep architecture")
	}
	if f1 := s.Select(train[0]).EvaluateFrames(corpus.Frames(synth.Val)).F1; f1 < 0.2 {
		t.Fatalf("SDM F1 = %v, too weak", f1)
	}
}

func TestTrainSSM(t *testing.T) {
	corpus := smallCorpus(t, 3)
	train := corpus.Frames(synth.Train)
	s, err := TrainSSM(train, nil, detect.TrainConfig{Epochs: 8, RNG: xrand.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Select(train[0]).Arch.Name != detect.Compressed.Name {
		t.Fatal("SSM must use the compressed architecture")
	}
	if s.Name() != "SSM" || s.OverheadFLOPs() != 0 {
		t.Fatal("SSM surface wrong")
	}
}

func TestDeepBeatsShallowGlobally(t *testing.T) {
	// The capacity premise: a deep model trained on everything should
	// beat a compressed model trained on everything, on mixed scenes.
	w, err := synth.NewWorld(synth.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	corpus := w.GenerateCorpus(synth.DefaultProfiles(0.35))
	train := corpus.Frames(synth.Train)
	test := corpus.Frames(synth.Test)
	sdm, err := TrainSDM(train, nil, detect.TrainConfig{Epochs: 25, RNG: xrand.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	ssm, err := TrainSSM(train, nil, detect.TrainConfig{Epochs: 25, RNG: xrand.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	deepF1 := sdm.Select(test[0]).EvaluateFrames(test).F1
	tinyF1 := ssm.Select(test[0]).EvaluateFrames(test).F1
	if deepF1 <= tinyF1 {
		t.Fatalf("SDM F1 %v not above SSM %v", deepF1, tinyF1)
	}
}

func TestTrainCDG(t *testing.T) {
	corpus := smallCorpus(t, 8)
	train := corpus.Frames(synth.Train)
	c, err := TrainCDG(train, nil, CDGConfig{K: 4, Train: detect.TrainConfig{Epochs: 6}, RNG: xrand.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CDG" {
		t.Fatal("name wrong")
	}
	if len(c.Detectors()) != 4 {
		t.Fatalf("detectors = %d", len(c.Detectors()))
	}
	if c.OverheadFLOPs() <= 0 {
		t.Fatal("CDG selection has nonzero cost")
	}
	// Selection must be deterministic per frame.
	f := train[0]
	if c.Select(f) != c.Select(f) {
		t.Fatal("selection not deterministic")
	}
	// All selected detectors must come from the trained set.
	found := false
	sel := c.Select(f)
	for _, d := range c.Detectors() {
		if d == sel {
			found = true
		}
	}
	if !found {
		t.Fatal("selected detector not in set")
	}
}

func TestTrainDMM(t *testing.T) {
	corpus := smallCorpus(t, 10)
	train := corpus.Frames(synth.Train)
	d, err := TrainDMM(train, nil, detect.TrainConfig{Epochs: 6, RNG: xrand.New(11)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DMM" || d.OverheadFLOPs() != 0 {
		t.Fatal("DMM surface wrong")
	}
	if len(d.Detectors()) != synth.NumDatasets {
		t.Fatalf("detectors = %d, want one per dataset", len(d.Detectors()))
	}
	// Selection routes by dataset.
	for _, f := range train[:20] {
		det := d.Select(f)
		if det.Name != "DMM_"+f.Dataset.String() {
			t.Fatalf("frame from %v routed to %s", f.Dataset, det.Name)
		}
	}
}

func TestDMMFallback(t *testing.T) {
	corpus := smallCorpus(t, 12)
	var kittiOnly []*synth.Frame
	for _, f := range corpus.Frames(synth.Train) {
		if f.Dataset == synth.KITTI {
			kittiOnly = append(kittiOnly, f)
		}
	}
	d, err := TrainDMM(kittiOnly, nil, detect.TrainConfig{Epochs: 4, RNG: xrand.New(13)})
	if err != nil {
		t.Fatal(err)
	}
	// A BDD frame must fall back to the KITTI model, not crash.
	var bdd *synth.Frame
	for _, f := range corpus.Frames(synth.Train) {
		if f.Dataset == synth.BDD100k {
			bdd = f
			break
		}
	}
	if det := d.Select(bdd); det == nil {
		t.Fatal("fallback selection returned nil")
	}
}

func TestTrainValidationErrors(t *testing.T) {
	if _, err := TrainSDM(nil, nil, detect.TrainConfig{}); err == nil {
		t.Fatal("SDM empty accepted")
	}
	if _, err := TrainSSM(nil, nil, detect.TrainConfig{}); err == nil {
		t.Fatal("SSM empty accepted")
	}
	if _, err := TrainCDG(nil, nil, CDGConfig{}); err == nil {
		t.Fatal("CDG empty accepted")
	}
	if _, err := TrainDMM(nil, nil, detect.TrainConfig{}); err == nil {
		t.Fatal("DMM empty accepted")
	}
}

func TestWindowedF1(t *testing.T) {
	corpus := smallCorpus(t, 14)
	train := corpus.Frames(synth.Train)
	s, err := TrainSSM(train, nil, detect.TrainConfig{Epochs: 5, RNG: xrand.New(15)})
	if err != nil {
		t.Fatal(err)
	}
	frames := corpus.Frames(synth.Test)
	if len(frames) > 35 {
		frames = frames[:35]
	}
	f1s := WindowedF1(s, frames, 10)
	want := (len(frames) + 9) / 10
	if len(f1s) != want {
		t.Fatalf("windows = %d, want %d", len(f1s), want)
	}
	for _, v := range f1s {
		if v < 0 || v > 1 {
			t.Fatalf("window F1 %v", v)
		}
	}
	if got := WindowedF1(s, frames, 0); len(got) != want {
		t.Fatal("default window wrong")
	}
}

func TestEvaluateFrame(t *testing.T) {
	corpus := smallCorpus(t, 16)
	train := corpus.Frames(synth.Train)
	s, err := TrainSSM(train, nil, detect.TrainConfig{Epochs: 5, RNG: xrand.New(17)})
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateFrame(s, train[0])
	if m.TP < 0 || m.FP < 0 || m.FN < 0 {
		t.Fatalf("metrics: %+v", m)
	}
}
