package eval

import (
	"fmt"
	"io"

	"anole/internal/baselines"
	"anole/internal/core"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// Fig8Series is one method's windowed-F1 sample set on one dataset.
type Fig8Series struct {
	Method string
	F1s    []float64
	Mean   float64
	Median float64
}

// Fig8Result carries the cross-scene F1 CDFs per source dataset (Fig. 8):
// for each of KITTI, BDD100k and SHD, the windowed F1 distribution of all
// five methods on the seen test split.
type Fig8Result struct {
	Window  int
	Dataset map[synth.DatasetID][]Fig8Series
}

// RunFig8 evaluates all methods on the seen test frames, windowed per
// clip, grouped by source dataset.
func RunFig8(l *Lab, window int) (Fig8Result, error) {
	if window <= 0 {
		window = 10
	}
	res := Fig8Result{Window: window, Dataset: make(map[synth.DatasetID][]Fig8Series)}
	for ds := synth.DatasetID(0); int(ds) < synth.NumDatasets; ds++ {
		clips := testClipsOf(l, ds)
		if len(clips) == 0 {
			continue
		}
		var series []Fig8Series
		// Baselines.
		for _, sel := range l.Selectors() {
			var f1s []float64
			for _, frames := range clips {
				f1s = append(f1s, baselines.WindowedF1(sel, frames, window)...)
			}
			series = append(series, newFig8Series(sel.Name(), f1s))
		}
		// Anole: one runtime per dataset stream, clips in order.
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return Fig8Result{}, err
		}
		var f1s []float64
		for _, frames := range clips {
			ws, err := rt.ProcessClip(frames, window)
			if err != nil {
				return Fig8Result{}, err
			}
			f1s = append(f1s, ws...)
		}
		series = append(series, newFig8Series("Anole", f1s))
		res.Dataset[ds] = series
	}
	return res, nil
}

func newFig8Series(name string, f1s []float64) Fig8Series {
	return Fig8Series{
		Method: name,
		F1s:    f1s,
		Mean:   stats.Mean(f1s),
		Median: stats.Quantile(f1s, 0.5),
	}
}

// testClipsOf collects the test-split frame runs of every seen clip of a
// dataset.
func testClipsOf(l *Lab, ds synth.DatasetID) [][]*synth.Frame {
	var out [][]*synth.Frame
	for _, clip := range l.Corpus.SeenClips() {
		if clip.Dataset != ds {
			continue
		}
		var frames []*synth.Frame
		n := len(clip.Frames)
		for i, f := range clip.Frames {
			if synth.SplitOf(i, n, true) == synth.Test {
				frames = append(frames, f)
			}
		}
		if len(frames) > 0 {
			out = append(out, frames)
		}
	}
	return out
}

// Render writes per-dataset method summaries and decile CDF points.
func (r Fig8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8 — cross-scene windowed F1 (window %d) per source dataset\n", r.Window)
	for ds := synth.DatasetID(0); int(ds) < synth.NumDatasets; ds++ {
		series, ok := r.Dataset[ds]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "[%s]\n", ds)
		fmt.Fprintf(w, "%-8s %-8s %-8s %-8s %-8s %-8s\n", "method", "mean", "p25", "median", "p75", "n")
		for _, s := range series {
			fmt.Fprintf(w, "%-8s %-8.3f %-8.3f %-8.3f %-8.3f %-8d\n",
				s.Method, s.Mean, stats.Quantile(s.F1s, 0.25), s.Median,
				stats.Quantile(s.F1s, 0.75), len(s.F1s))
		}
	}
}

// Table3Row is one unseen clip's accuracy for every method.
type Table3Row struct {
	Label   string
	Dataset synth.DatasetID
	// F1 maps method name to the clip-level F1.
	F1 map[string]float64
}

// Table3Result is the new-scene experiment (Table III): per unseen clip
// and per method, clip-level F1, plus per-method means.
type Table3Result struct {
	Rows []Table3Row
	Mean map[string]float64
	// Best names the method with the highest mean.
	Best string
}

// RunTable3 evaluates every method on every unseen clip.
func RunTable3(l *Lab) (Table3Result, error) {
	unseen := l.Corpus.UnseenClips()
	if len(unseen) == 0 {
		return Table3Result{}, fmt.Errorf("eval: corpus has no unseen clips")
	}
	res := Table3Result{Mean: make(map[string]float64)}
	counts := make(map[string]int)
	for _, clip := range unseen {
		row := Table3Row{
			Label:   fmt.Sprintf("%s #%d (%s)", clip.Dataset, clip.ID, dominantScene(clip)),
			Dataset: clip.Dataset,
			F1:      make(map[string]float64),
		}
		for _, sel := range l.Selectors() {
			var agg stats.PRF1
			for _, f := range clip.Frames {
				agg = agg.Add(baselines.EvaluateFrame(sel, f))
			}
			row.F1[sel.Name()] = agg.F1
		}
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return Table3Result{}, err
		}
		for _, f := range clip.Frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				return Table3Result{}, err
			}
		}
		row.F1["Anole"] = rt.Stats().Detection.F1
		for m, v := range row.F1 {
			res.Mean[m] += v
			counts[m]++
		}
		res.Rows = append(res.Rows, row)
	}
	best, bestV := "", -1.0
	for m := range res.Mean {
		res.Mean[m] /= float64(counts[m])
		if res.Mean[m] > bestV {
			best, bestV = m, res.Mean[m]
		}
	}
	res.Best = best
	return res, nil
}

// dominantScene names the most frequent semantic scene of a clip.
func dominantScene(clip *synth.Clip) string {
	counts := make(map[synth.Scene]int)
	for _, f := range clip.Frames {
		counts[f.Scene]++
	}
	var best synth.Scene
	bestN := -1
	for s, n := range counts {
		if n > bestN || (n == bestN && s.Index() < best.Index()) {
			best, bestN = s, n
		}
	}
	return best.String()
}

// Render writes the table with methods as columns.
func (r Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table III — new-scene (unseen clips) F1 per method")
	fmt.Fprintf(w, "%-44s", "clip")
	for _, m := range MethodNames() {
		fmt.Fprintf(w, " %-7s", m)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-44s", row.Label)
		for _, m := range MethodNames() {
			fmt.Fprintf(w, " %-7.3f", row.F1[m])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-44s", "mean")
	for _, m := range MethodNames() {
		fmt.Fprintf(w, " %-7.3f", r.Mean[m])
	}
	fmt.Fprintf(w, "\nbest: %s (paper: Anole, mean 0.487 vs SDM 0.466)\n", r.Best)
}

// Fig10Row is one real-world scenario's accuracy per method.
type Fig10Row struct {
	Scenario string
	F1       map[string]float64
}

// Fig10Result is the real-world experiment (Fig. 10): seven driving
// scenarios streamed through every method.
type Fig10Result struct {
	Rows []Fig10Row
	Mean map[string]float64
}

// RunFig10 generates seven held-out Shanghai-like scenarios (fixed
// attribute combinations never used as such in training clips need not
// hold; the scenarios exercise road conditions × time of day as §VI-F
// describes) and scores all methods.
func RunFig10(l *Lab, framesPerScenario int) (Fig10Result, error) {
	if framesPerScenario <= 0 {
		framesPerScenario = 100
	}
	scenarios := []struct {
		name string
		s    synth.Scene
	}{
		{"highway/day", synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Daytime}},
		{"highway/night", synth.Scene{Weather: synth.Clear, Location: synth.Highway, Time: synth.Night}},
		{"urban/day", synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}},
		{"urban/night", synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Night}},
		{"tunnel/day", synth.Scene{Weather: synth.Clear, Location: synth.Tunnel, Time: synth.Daytime}},
		{"overcast/urban/dusk", synth.Scene{Weather: synth.Overcast, Location: synth.Urban, Time: synth.DawnDusk}},
		{"rainy/residential/day", synth.Scene{Weather: synth.Rainy, Location: synth.Residential, Time: synth.Daytime}},
	}
	rng := xrand.NewLabeled(l.Config.Seed, "fig10")
	res := Fig10Result{Mean: make(map[string]float64)}
	for si, sc := range scenarios {
		clip := l.World.GenerateScenarioClip(synth.SHD, 1000+si, sc.s, framesPerScenario, 0.9, rng.Split(uint64(si)))
		row := Fig10Row{Scenario: sc.name, F1: make(map[string]float64)}
		for _, sel := range l.Selectors() {
			var agg stats.PRF1
			for _, f := range clip.Frames {
				agg = agg.Add(baselines.EvaluateFrame(sel, f))
			}
			row.F1[sel.Name()] = agg.F1
		}
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return Fig10Result{}, err
		}
		for _, f := range clip.Frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				return Fig10Result{}, err
			}
		}
		row.F1["Anole"] = rt.Stats().Detection.F1
		for m, v := range row.F1 {
			res.Mean[m] += v / float64(len(scenarios))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes one row per scenario.
func (r Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 10 — real-world scenarios (simulated UAV/dashcam streams)")
	fmt.Fprintf(w, "%-24s", "scenario")
	for _, m := range MethodNames() {
		fmt.Fprintf(w, " %-7s", m)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s", row.Scenario)
		for _, m := range MethodNames() {
			fmt.Fprintf(w, " %-7.3f", row.F1[m])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-24s", "mean")
	for _, m := range MethodNames() {
		fmt.Fprintf(w, " %-7.3f", r.Mean[m])
	}
	fmt.Fprintln(w)
}
