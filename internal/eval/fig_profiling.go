package eval

import (
	"fmt"
	"io"
	"sort"

	"anole/internal/core"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// Fig6Result carries the confusion matrices of the scene encoder and the
// decision model on the seen-data validation split (Fig. 6).
type Fig6Result struct {
	SceneCM    *stats.ConfusionMatrix
	DecisionCM *stats.ConfusionMatrix
	// SceneAccuracy and DecisionDiagonal summarize the two matrices.
	SceneAccuracy    float64
	DecisionDiagonal float64
}

// RunFig6 evaluates both profiling models. maxFrames caps the validation
// frames scored (0 = all; the decision oracle runs every repertoire model
// per frame, which is quadratic-ish in repertoire size).
func RunFig6(l *Lab, maxFrames int) Fig6Result {
	val := l.Corpus.Frames(synth.Val)
	if maxFrames > 0 && len(val) > maxFrames {
		val = val[:maxFrames]
	}
	sceneCM := l.Bundle.Encoder.ConfusionOn(val)
	decCM := l.Bundle.Decision.ConfusionOn(l.Bundle.Detectors, val)
	return Fig6Result{
		SceneCM:          sceneCM,
		DecisionCM:       decCM,
		SceneAccuracy:    sceneCM.Accuracy(),
		DecisionDiagonal: decCM.DiagonalMass(),
	}
}

// Render writes both matrices (row-normalized) with their summaries.
// Matrices beyond 24 classes are summarized by their diagonal only, since
// a full 84×84 grid is unreadable as text.
func (r Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6a — M_scene confusion (accuracy %.3f, %d classes)\n",
		r.SceneAccuracy, r.SceneCM.K)
	renderMatrix(w, r.SceneCM)
	fmt.Fprintf(w, "Fig. 6b — M_decision vs oracle best model (mean diagonal %.3f, %d models)\n",
		r.DecisionDiagonal, r.DecisionCM.K)
	renderMatrix(w, r.DecisionCM)
}

func renderMatrix(w io.Writer, cm *stats.ConfusionMatrix) {
	if cm.K <= 24 {
		fmt.Fprint(w, cm.String())
		return
	}
	norm := cm.RowNormalized()
	fmt.Fprint(w, "  diagonal:")
	for i := 0; i < cm.K; i++ {
		fmt.Fprintf(w, " %.2f", norm[i][i])
		if (i+1)%20 == 0 {
			fmt.Fprint(w, "\n           ")
		}
	}
	fmt.Fprintln(w)
}

// Fig4bResult is the model-utility distribution: how often each
// compressed model ranks top-1 over streamed clips, sorted descending,
// with the fitted power-law exponent (Fig. 4b).
type Fig4bResult struct {
	// Ratio[i] is the top-1 share of the i-th most-used model.
	Ratio []float64
	// Alpha is the rank-frequency power-law exponent.
	Alpha float64
	// Top3Share is the cumulative share of the three most-used models.
	Top3Share float64
	Frames    int
}

// RunFig4b streams `clips` randomly chosen test clips through a fresh
// runtime and tallies which model the decision ranks first per frame.
func RunFig4b(l *Lab, clips int) (Fig4bResult, error) {
	if clips <= 0 {
		clips = 5
	}
	rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
	if err != nil {
		return Fig4bResult{}, err
	}
	rng := xrand.NewLabeled(l.Config.Seed, "fig4b")
	seen := l.Corpus.SeenClips()
	if len(seen) == 0 {
		return Fig4bResult{}, fmt.Errorf("eval: no seen clips")
	}
	frames := 0
	for c := 0; c < clips; c++ {
		clip := seen[rng.Intn(len(seen))]
		n := len(clip.Frames)
		for i, f := range clip.Frames {
			if synth.SplitOf(i, n, true) != synth.Test {
				continue
			}
			if _, err := rt.ProcessFrame(f); err != nil {
				return Fig4bResult{}, err
			}
			frames++
		}
	}
	st := rt.Stats()
	ratios := make([]float64, len(st.DesiredCounts))
	for i, c := range st.DesiredCounts {
		ratios[i] = float64(c) / float64(frames)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	top3 := 0.0
	for i := 0; i < 3 && i < len(ratios); i++ {
		top3 += ratios[i]
	}
	return Fig4bResult{
		Ratio:     ratios,
		Alpha:     stats.PowerLawAlpha(ratios),
		Top3Share: top3,
		Frames:    frames,
	}, nil
}

// Render writes the distribution rows.
func (r Fig4bResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4b — top-1 model utility over %d frames (sorted)\n", r.Frames)
	for i, v := range r.Ratio {
		fmt.Fprintf(w, "rank %-3d %.4f\n", i+1, v)
	}
	fmt.Fprintf(w, "power-law exponent %.2f; top-3 models cover %.1f%% of frames\n",
		r.Alpha, 100*r.Top3Share)
}
