package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/stats"
	"anole/internal/synth"
)

// SelectionResult decomposes where Anole's accuracy comes from and where
// selection loses it, on the seen test split:
//
//	Oracle        — per-frame best repertoire model (selection upper bound)
//	SceneOracle   — best-validated model among the clusters containing the
//	                frame's true scene (what perfect scene knowledge buys)
//	DecisionTop1  — the decision model's top pick, no cache constraint
//	Runtime       — the full OMI loop (decision + LFU cache fallback)
//	SDM           — the deep baseline, for scale
//
// The gap Oracle−Runtime is the selection+cache cost; DecisionTop1 vs
// Runtime isolates the cache's effect (a sticky cache can even beat the
// raw top-1 by smoothing decision noise).
type SelectionResult struct {
	Frames       int
	Oracle       float64
	SceneOracle  float64
	DecisionTop1 float64
	Runtime      float64
	SDM          float64
	// Top1Agreement is how often the decision's top pick matches the
	// per-frame oracle.
	Top1Agreement float64
}

// RunSelection computes the decomposition over at most maxFrames test
// frames (0 = all; the oracle scores every repertoire model per frame).
func RunSelection(l *Lab, maxFrames int) (SelectionResult, error) {
	test := l.Corpus.Frames(synth.Test)
	if len(test) == 0 {
		return SelectionResult{}, fmt.Errorf("eval: no test frames")
	}
	if maxFrames > 0 && len(test) > maxFrames {
		test = test[:maxFrames]
	}

	// Best-validated model per scene (cluster membership).
	bestForScene := make(map[int]int)
	for i, info := range l.Bundle.Infos {
		for _, s := range info.TrainScenes {
			if cur, ok := bestForScene[s]; !ok || l.Bundle.Infos[i].ValF1 > l.Bundle.Infos[cur].ValF1 {
				bestForScene[s] = i
			}
		}
	}

	rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
	if err != nil {
		return SelectionResult{}, err
	}

	var oracle, sceneOracle, decTop, runtime stats.PRF1
	agree := 0
	for _, f := range test {
		bestIdx, bestF1 := -1, -1.0
		var bestM stats.PRF1
		for i, det := range l.Bundle.Detectors {
			if m := det.EvaluateFrame(f); m.F1 > bestF1 {
				bestIdx, bestF1, bestM = i, m.F1, m
			}
		}
		oracle = oracle.Add(bestM)

		if mi, ok := bestForScene[f.Scene.Index()]; ok {
			sceneOracle = sceneOracle.Add(l.Bundle.Detectors[mi].EvaluateFrame(f))
		}

		top, _ := l.Bundle.Decision.Best(f)
		decTop = decTop.Add(l.Bundle.Detectors[top].EvaluateFrame(f))
		if top == bestIdx {
			agree++
		}

		res, err := rt.ProcessFrame(f)
		if err != nil {
			return SelectionResult{}, err
		}
		runtime = runtime.Add(res.Metrics)
	}

	return SelectionResult{
		Frames:        len(test),
		Oracle:        oracle.F1,
		SceneOracle:   sceneOracle.F1,
		DecisionTop1:  decTop.F1,
		Runtime:       runtime.F1,
		SDM:           l.SDM.Detectors()[0].EvaluateFrames(test).F1,
		Top1Agreement: float64(agree) / float64(len(test)),
	}, nil
}

// Render writes the decomposition rows.
func (r SelectionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Selection decomposition over %d seen test frames\n", r.Frames)
	fmt.Fprintf(w, "%-30s %-8s\n", "selector", "F1")
	fmt.Fprintf(w, "%-30s %-8.3f\n", "oracle (per-frame best)", r.Oracle)
	fmt.Fprintf(w, "%-30s %-8.3f\n", "scene-membership best", r.SceneOracle)
	fmt.Fprintf(w, "%-30s %-8.3f\n", "decision top-1 (no cache)", r.DecisionTop1)
	fmt.Fprintf(w, "%-30s %-8.3f\n", "Anole runtime (cache 5)", r.Runtime)
	fmt.Fprintf(w, "%-30s %-8.3f\n", "SDM (reference)", r.SDM)
	fmt.Fprintf(w, "decision top-1 matches oracle on %.1f%% of frames\n", 100*r.Top1Agreement)
}
