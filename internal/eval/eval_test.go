package eval

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"anole/internal/synth"
)

var (
	labOnce sync.Once
	labFix  *Lab
	labErr  error
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		labFix, labErr = NewLab(QuickLabConfig(777))
	})
	if labErr != nil {
		t.Fatalf("build lab: %v", labErr)
	}
	return labFix
}

func renderNonEmpty(t *testing.T, render func(io.Writer)) string {
	t.Helper()
	var buf bytes.Buffer
	render(&buf)
	out := buf.String()
	if len(out) == 0 {
		t.Fatal("render produced nothing")
	}
	return out
}

func TestNewLabShapes(t *testing.T) {
	lab := quickLab(t)
	if lab.Bundle.NumModels() < 2 {
		t.Fatalf("repertoire %d", lab.Bundle.NumModels())
	}
	if len(lab.Selectors()) != 4 {
		t.Fatal("expected 4 baselines")
	}
	if lab.Corpus.TotalFrames() == 0 {
		t.Fatal("empty corpus")
	}
	names := MethodNames()
	if len(names) != 5 || names[4] != "Anole" {
		t.Fatalf("method names: %v", names)
	}
}

func TestRunFig3(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig3(lab, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != lab.Bundle.NumModels() {
		t.Fatalf("models = %d", res.Models)
	}
	if len(res.Adaptive) != res.Models || len(res.Random) != res.Models {
		t.Fatal("count vectors wrong length")
	}
	// The headline property: adaptive sampling is more balanced.
	if res.GiniAdaptive >= res.GiniRandom {
		t.Fatalf("adaptive Gini %.3f not below random %.3f", res.GiniAdaptive, res.GiniRandom)
	}
	out := renderNonEmpty(t, res.Render)
	if !strings.Contains(out, "Gini") {
		t.Fatal("render missing summary")
	}
}

func TestRunFig4a(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig4a(lab, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeepMs) != 10 || len(res.TinyMs) != 10 {
		t.Fatal("series length wrong")
	}
	// First-frame spike: frame 1 must dwarf frame 2 for both models.
	if res.DeepMs[0] <= res.DeepMs[1]*2 || res.TinyMs[0] <= res.TinyMs[1]*2 {
		t.Fatalf("no first-frame spike: deep %v/%v tiny %v/%v",
			res.DeepMs[0], res.DeepMs[1], res.TinyMs[0], res.TinyMs[1])
	}
	// Steady state: deep slower than tiny.
	if res.SpeedUp <= 1 {
		t.Fatalf("speedup %v", res.SpeedUp)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig4b(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig4b(lab, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("no frames streamed")
	}
	// Sorted descending; shares sum to ~1.
	var sum float64
	for i, v := range res.Ratio {
		if i > 0 && v > res.Ratio[i-1] {
			t.Fatal("ratios not sorted")
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("ratio sum %v", sum)
	}
	// Long tail: top-3 should dominate.
	if res.Top3Share < 0.5 {
		t.Fatalf("top-3 share %v, expected a concentrated utility distribution", res.Top3Share)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig5(t *testing.T) {
	lab := quickLab(t)
	res := RunFig5(lab)
	if res.Frames != lab.Corpus.TotalFrames() {
		t.Fatalf("frames %d vs %d", res.Frames, lab.Corpus.TotalFrames())
	}
	if len(res.Brightness) == 0 || len(res.Contrast) == 0 || len(res.Objects) == 0 || len(res.AreaRatio) == 0 {
		t.Fatal("empty CDFs")
	}
	if last := res.Brightness[len(res.Brightness)-1].Frac; last != 1 {
		t.Fatalf("brightness CDF ends at %v", last)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig6(t *testing.T) {
	lab := quickLab(t)
	res := RunFig6(lab, 150)
	if res.SceneCM == nil || res.DecisionCM == nil {
		t.Fatal("missing matrices")
	}
	// M_scene must be much better than chance on its classes.
	chance := 1.0 / float64(res.SceneCM.K)
	if res.SceneAccuracy < 3*chance {
		t.Fatalf("scene accuracy %.3f vs chance %.3f", res.SceneAccuracy, chance)
	}
	if res.DecisionCM.K != lab.Bundle.NumModels() {
		t.Fatal("decision matrix size wrong")
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig7a(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig7a(lab, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clips) != 6 {
		t.Fatalf("clips = %d, want 6 (T1-T6)", len(res.Clips))
	}
	if res.MeanDuration <= 0 {
		t.Fatal("mean duration not positive")
	}
	if res.FracUnder40 < 0 || res.FracUnder40 > 1 {
		t.Fatalf("fraction under 40: %v", res.FracUnder40)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig7b(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig7b(lab, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shape: the largest cache must miss no more than the smallest.
	if res.Rows[4].MissRate > res.Rows[0].MissRate+1e-9 {
		t.Fatalf("miss rate not non-increasing: %v vs %v", res.Rows[4].MissRate, res.Rows[0].MissRate)
	}
	for _, row := range res.Rows {
		if row.F1 < 0 || row.F1 > 1 || row.MissRate < 0 || row.MissRate > 1 {
			t.Fatalf("row out of range: %+v", row)
		}
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig8(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig8(lab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset) == 0 {
		t.Fatal("no datasets evaluated")
	}
	var anoleMean, ssmMean float64
	var n int
	for ds, series := range res.Dataset {
		if len(series) != 5 {
			t.Fatalf("%v: %d methods", ds, len(series))
		}
		byName := make(map[string]Fig8Series)
		for _, s := range series {
			byName[s.Method] = s
			if len(s.F1s) == 0 {
				t.Fatalf("%v/%s: no windows", ds, s.Method)
			}
		}
		anoleMean += byName["Anole"].Mean
		ssmMean += byName["SSM"].Mean
		n++
	}
	// The paper's headline cross-scene ordering: Anole above the single
	// compressed model, averaged across datasets.
	if anoleMean/float64(n) <= ssmMean/float64(n) {
		t.Fatalf("Anole mean %.3f not above SSM %.3f", anoleMean/float64(n), ssmMean/float64(n))
	}
	renderNonEmpty(t, res.Render)
}

func TestRunTable2(t *testing.T) {
	lab := quickLab(t)
	res := RunTable2(lab)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Deep model is the most expensive; decision head the cheapest.
	if res.Rows[3].FLOPs <= res.Rows[0].FLOPs {
		t.Fatal("deep not above compressed")
	}
	if res.Rows[2].FLOPs >= res.Rows[1].FLOPs {
		t.Fatal("decision head should be cheaper than encoder")
	}
	renderNonEmpty(t, res.Render)
}

func TestRunTable3(t *testing.T) {
	lab := quickLab(t)
	res, err := RunTable3(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no unseen clips")
	}
	for _, row := range res.Rows {
		if len(row.F1) != 5 {
			t.Fatalf("row has %d methods", len(row.F1))
		}
	}
	if len(res.Mean) != 5 || res.Best == "" {
		t.Fatalf("means: %v best: %q", res.Mean, res.Best)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunTable4(t *testing.T) {
	lab := quickLab(t)
	res := RunTable4(lab)
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 models x 3 devices", len(res.Rows))
	}
	byKey := make(map[string]Table4Row)
	for _, row := range res.Rows {
		byKey[row.Model+"|"+row.Device] = row
		if row.LatencyMs <= 0 || row.LoadMemMB <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
	}
	// Table IV shape: deep slower than compressed everywhere; TX2 NX
	// faster than Nano.
	for _, dev := range []string{"Jetson Nano", "Jetson TX2 NX"} {
		deep := byKey["deep detector (YOLOv3)|"+dev]
		tiny := byKey["compressed detector (tiny)|"+dev]
		if deep.LatencyMs <= tiny.LatencyMs {
			t.Fatalf("%s: deep %.1fms not above tiny %.1fms", dev, deep.LatencyMs, tiny.LatencyMs)
		}
	}
	nano := byKey["compressed detector (tiny)|Jetson Nano"]
	tx2 := byKey["compressed detector (tiny)|Jetson TX2 NX"]
	if tx2.LatencyMs >= nano.LatencyMs {
		t.Fatal("TX2 should be faster than Nano")
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig10(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig10(lab, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("scenarios = %d, want 7", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.F1) != 5 {
			t.Fatalf("scenario %s has %d methods", row.Scenario, len(row.F1))
		}
	}
	renderNonEmpty(t, res.Render)
}

func TestRunFig11(t *testing.T) {
	lab := quickLab(t)
	res, err := RunFig11(lab, 100)
	if err != nil {
		t.Fatal(err)
	}
	modes := 4
	if len(res.Rows) != modes*5 {
		t.Fatalf("rows = %d, want %d", len(res.Rows), modes*5)
	}
	// Anole must draw less power than SDM at the top mode.
	if res.AnolePowerSavingVsSDM <= 0 {
		t.Fatalf("Anole power saving vs SDM = %v, want positive", res.AnolePowerSavingVsSDM)
	}
	// FPS of Anole should beat SDM at every mode (smaller models).
	perMode := make(map[string]map[string]Fig11Row)
	for _, row := range res.Rows {
		if perMode[row.Mode] == nil {
			perMode[row.Mode] = make(map[string]Fig11Row)
		}
		perMode[row.Mode][row.Method] = row
	}
	for mode, rows := range perMode {
		if rows["Anole"].FPS <= rows["SDM"].FPS {
			t.Fatalf("%s: Anole FPS %v not above SDM %v", mode, rows["Anole"].FPS, rows["SDM"].FPS)
		}
	}
	renderNonEmpty(t, res.Render)
}

func TestRunAblationCache(t *testing.T) {
	lab := quickLab(t)
	res, err := RunAblationCache(lab, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	seen := make(map[string]bool)
	for _, row := range res.Rows {
		seen[row.Policy] = true
	}
	if !seen["LFU"] || !seen["LRU"] || !seen["FIFO"] {
		t.Fatalf("policies: %v", seen)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunAblationRepertoire(t *testing.T) {
	lab := quickLab(t)
	res, err := RunAblationRepertoire(lab, []float64{0.05, 0.9}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// A permissive delta banks models; an absurd one banks none.
	if res.Rows[0].Banked == 0 {
		t.Fatal("permissive delta banked nothing")
	}
	if res.Rows[1].Banked != 0 {
		t.Fatalf("delta 0.9 banked %d models", res.Rows[1].Banked)
	}
	renderNonEmpty(t, res.Render)
}

func TestSynthClipsStructure(t *testing.T) {
	lab := quickLab(t)
	clips := lab.synthClips(20)
	if len(clips) != 6 {
		t.Fatalf("clips = %d", len(clips))
	}
	for i, frames := range clips {
		if len(frames) == 0 {
			t.Fatalf("T%d empty", i+1)
		}
	}
}

func TestQuickLabDeterministic(t *testing.T) {
	// Two labs with the same seed agree on corpus shape and repertoire.
	a, err := NewLab(QuickLabConfig(31337))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab(QuickLabConfig(31337))
	if err != nil {
		t.Fatal(err)
	}
	if a.Bundle.NumModels() != b.Bundle.NumModels() {
		t.Fatal("repertoire sizes differ")
	}
	fa := a.Corpus.Frames(synth.Test)[0]
	fb := b.Corpus.Frames(synth.Test)[0]
	sa, sb := a.Bundle.Decision.Scores(fa), b.Bundle.Decision.Scores(fb)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("decision models differ across identical seeds")
		}
	}
}

func TestRunContinual(t *testing.T) {
	lab := quickLab(t)
	res, err := RunContinual(lab, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlagRate <= 0 {
		t.Fatal("novel scene should trigger uncertainty flags")
	}
	if res.AfterF1 <= res.BeforeF1 {
		t.Fatalf("expansion did not improve novel-scene F1: %v -> %v", res.BeforeF1, res.AfterF1)
	}
	if res.NewModelShare <= 0.3 {
		t.Fatalf("new specialist barely used: %v", res.NewModelShare)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunSelection(t *testing.T) {
	lab := quickLab(t)
	res, err := RunSelection(lab, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("no frames")
	}
	// Structural orderings: the oracle bounds every other selector.
	for name, v := range map[string]float64{
		"scene-oracle": res.SceneOracle,
		"decision":     res.DecisionTop1,
		"runtime":      res.Runtime,
	} {
		if v > res.Oracle+1e-9 {
			t.Fatalf("%s (%v) above oracle (%v)", name, v, res.Oracle)
		}
	}
	if res.Top1Agreement < 0 || res.Top1Agreement > 1 {
		t.Fatalf("agreement %v", res.Top1Agreement)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunThermal(t *testing.T) {
	lab := quickLab(t)
	res, err := RunThermal(lab, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := make(map[string]ThermalRow)
	for _, row := range res.Rows {
		byName[row.Method] = row
	}
	sdm, anole := byName["SDM"], byName["Anole"]
	if sdm.Heat <= 1 || sdm.Throttle >= 1 {
		t.Fatalf("sustained deep load should throttle: %+v", sdm)
	}
	if anole.Heat >= sdm.Heat {
		t.Fatalf("Anole (%v) should run cooler than SDM (%v)", anole.Heat, sdm.Heat)
	}
	if anole.Throttle < 1 {
		t.Fatalf("Anole throttled: %+v", anole)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunQuantize(t *testing.T) {
	lab := quickLab(t)
	res, err := RunQuantize(lab, []int{8, 2}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	full, q8, q2 := res.Rows[0], res.Rows[1], res.Rows[2]
	if full.Bits != 0 || q8.Bits != 8 || q2.Bits != 2 {
		t.Fatalf("row order: %+v", res.Rows)
	}
	if q8.Compression < 6 || q8.Compression > 9 {
		t.Fatalf("8-bit compression %v, want ~8x", q8.Compression)
	}
	// 8-bit must stay within a few F1 points of full precision;
	// 2-bit must cost clearly more than 8-bit.
	if q8.F1 < full.F1-0.05 {
		t.Fatalf("8-bit F1 %v too far below full %v", q8.F1, full.F1)
	}
	if q2.F1 >= q8.F1 {
		t.Fatalf("2-bit (%v) should lose to 8-bit (%v)", q2.F1, q8.F1)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunHysteresis(t *testing.T) {
	lab := quickLab(t)
	res, err := RunHysteresis(lab, 300, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[1].Switches >= res.Rows[0].Switches {
		t.Fatalf("hysteresis 4 switches %d not below hysteresis 1's %d",
			res.Rows[1].Switches, res.Rows[0].Switches)
	}
	renderNonEmpty(t, res.Render)
}

func TestRunOffload(t *testing.T) {
	lab := quickLab(t)
	res, err := RunOffload(lab, 400, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	stable, churny := res.Rows[0], res.Rows[1]
	// A perfect link never drops; an unstable one does.
	if stable.DownFrac != 0 {
		t.Fatalf("stable link down %v", stable.DownFrac)
	}
	if churny.DownFrac <= 0 {
		t.Fatal("unstable link never went down")
	}
	// Instability raises deadline misses and lowers delivered accuracy.
	if churny.OffloadMissPct <= stable.OffloadMissPct {
		t.Fatalf("miss%% did not grow with instability: %v vs %v",
			churny.OffloadMissPct, stable.OffloadMissPct)
	}
	if churny.OffloadF1 >= stable.OffloadF1 {
		t.Fatalf("F1 did not drop with instability: %v vs %v",
			churny.OffloadF1, stable.OffloadF1)
	}
	// Local Anole is flat and fast: only the cold-start frame (model
	// load, the Fig. 4a spike) may exceed the deadline.
	if res.AnoleMissPct > 100.0/float64(res.Frames)+1e-9 {
		t.Fatalf("local path missed deadlines beyond cold start: %v%%", res.AnoleMissPct)
	}
	if res.AnoleP99Ms >= stable.OffloadMeanMs {
		t.Fatalf("local p99 %vms should beat offload mean %vms",
			res.AnoleP99Ms, stable.OffloadMeanMs)
	}
	renderNonEmpty(t, res.Render)
}
