package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// HysteresisRow is one smoothing setting's outcome on a coherent stream.
type HysteresisRow struct {
	// Hysteresis is the consecutive-win requirement (1 = the paper's
	// per-sample selection).
	Hysteresis int
	F1         float64
	Switches   int
	MissRate   float64
}

// HysteresisResult is the A6 ablation: the paper selects a model on
// every sample because scenes change fast (§V-A); this sweep quantifies
// what requiring a challenger to win k consecutive frames trades — fewer
// switches and cache loads against selection lag at scene boundaries.
type HysteresisResult struct {
	Frames int
	Rows   []HysteresisRow
}

// RunHysteresis streams freshly generated coherent clips (BDD-like scene
// dynamics) through runtimes with increasing hysteresis.
func RunHysteresis(l *Lab, frames int, settings []int) (HysteresisResult, error) {
	if frames <= 0 {
		frames = 600
	}
	if len(settings) == 0 {
		settings = []int{1, 2, 3, 5, 8}
	}
	profile := synth.DefaultProfiles(1)[1]
	profile.FramesPerClip = frames
	clip := l.World.GenerateClip(profile, 8800, xrand.NewLabeled(l.Config.Seed, "hysteresis"))

	res := HysteresisResult{Frames: len(clip.Frames)}
	for _, h := range settings {
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 3, SwitchHysteresis: h})
		if err != nil {
			return HysteresisResult{}, err
		}
		var agg stats.PRF1
		for _, f := range clip.Frames {
			fr, err := rt.ProcessFrame(f)
			if err != nil {
				return HysteresisResult{}, err
			}
			agg = agg.Add(fr.Metrics)
		}
		st := rt.Stats()
		res.Rows = append(res.Rows, HysteresisRow{
			Hysteresis: h,
			F1:         agg.F1,
			Switches:   st.Switches,
			MissRate:   st.MissRate,
		})
	}
	return res, nil
}

// Render writes one row per setting.
func (r HysteresisResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation A6 — switch hysteresis on a coherent %d-frame stream\n", r.Frames)
	fmt.Fprintf(w, "%-12s %-8s %-10s %-10s\n", "hysteresis", "F1", "switches", "miss rate")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12d %-8.3f %-10d %-10.3f\n", row.Hysteresis, row.F1, row.Switches, row.MissRate)
	}
}
