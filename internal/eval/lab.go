// Package eval is the experiment harness: one entry point per table and
// figure in the paper's evaluation section (§VI), each returning typed
// rows/series that cmd/anole-bench and bench_test.go render. A Lab holds
// the shared trained artifacts (corpus, Anole bundle, the four candidate
// methods) so experiments compose without retraining.
package eval

import (
	"fmt"

	"anole/internal/baselines"
	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/modelcache"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// LabConfig sizes a Lab. Zero values select the full paper-scale setup.
type LabConfig struct {
	// Seed roots all randomness.
	Seed uint64
	// Scale shrinks the corpus (clip counts and lengths) for fast runs;
	// 1 is the paper-scale 64-clip corpus.
	Scale float64
	// SceneShift overrides the world's appearance-shift strength when
	// positive (the A1 ablation knob).
	SceneShift float64
	// Profile configures Anole's offline profiling; zero value uses
	// core.DefaultProfileConfig(Seed) adjusted to the corpus size.
	Profile core.ProfileConfig
	// BaselineEpochs is the training budget of the candidate methods
	// (default 12).
	BaselineEpochs int
	// Workers parallelizes model training (default 4).
	Workers int
}

// DefaultLabConfig is the paper-scale configuration used by
// cmd/anole-bench.
func DefaultLabConfig(seed uint64) LabConfig {
	return LabConfig{Seed: seed, Scale: 1}
}

// QuickLabConfig is a reduced configuration for tests and smoke runs:
// a quarter-scale corpus and a 6-model repertoire.
func QuickLabConfig(seed uint64) LabConfig {
	cfg := LabConfig{Seed: seed, Scale: 0.3, BaselineEpochs: 15}
	p := core.DefaultProfileConfig(seed)
	p.Repertoire.N = 12
	p.Repertoire.Delta = 0.05
	p.Repertoire.MaxK = 8
	p.Repertoire.Train.Epochs = 25
	p.Sampling.Kappa = 900
	p.Sampling.AcceptF1 = 0.3
	cfg.Profile = p
	return cfg
}

func (c *LabConfig) setDefaults() {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.BaselineEpochs <= 0 {
		c.BaselineEpochs = 12
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Profile.Repertoire.N == 0 {
		c.Profile = core.DefaultProfileConfig(c.Seed)
	}
	c.Profile.Seed = c.Seed
	c.Profile.Repertoire.Workers = c.Workers
	c.Profile.Encoder.Workers = c.Workers
}

// Lab is the shared experimental setup: the synthetic world and corpus,
// the profiled Anole bundle, and the four trained candidate methods.
type Lab struct {
	Config LabConfig
	World  *synth.World
	Corpus *synth.Corpus
	Bundle *core.Bundle

	SDM *baselines.SDM
	SSM *baselines.SSM
	CDG *baselines.CDG
	DMM *baselines.DMM
}

// NewLab builds the full setup: generates the corpus, runs offline scene
// profiling, and trains SDM/SSM/CDG/DMM on the same training split.
func NewLab(cfg LabConfig) (*Lab, error) {
	cfg.setDefaults()
	wc := synth.DefaultConfig(cfg.Seed)
	if cfg.SceneShift > 0 {
		wc.SceneShift = cfg.SceneShift
	}
	world, err := synth.NewWorld(wc)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	corpus := world.GenerateCorpus(synth.DefaultProfiles(cfg.Scale))
	bundle, err := core.Profile(corpus, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("eval: profile: %w", err)
	}

	train := corpus.Frames(synth.Train)
	val := corpus.Frames(synth.Val)
	rng := xrand.NewLabeled(cfg.Seed, "eval-baselines")
	tc := func(tag uint64) detect.TrainConfig {
		return detect.TrainConfig{Epochs: cfg.BaselineEpochs, Workers: cfg.Workers, RNG: rng.Split(tag)}
	}
	sdm, err := baselines.TrainSDM(train, val, tc(1))
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	ssm, err := baselines.TrainSSM(train, val, tc(2))
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	cdg, err := baselines.TrainCDG(train, val, baselines.CDGConfig{
		K:     6,
		Train: detect.TrainConfig{Epochs: cfg.BaselineEpochs, Workers: cfg.Workers},
		RNG:   rng.Split(3),
	})
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	dmm, err := baselines.TrainDMM(train, val, tc(4))
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	return &Lab{
		Config: cfg,
		World:  world,
		Corpus: corpus,
		Bundle: bundle,
		SDM:    sdm,
		SSM:    ssm,
		CDG:    cdg,
		DMM:    dmm,
	}, nil
}

// NewRuntime builds a fresh Anole runtime with the lab's bundle.
func (l *Lab) NewRuntime(cacheSlots int, policy modelcache.Policy) (*core.Runtime, error) {
	return core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: cacheSlots, Policy: policy})
}

// Selectors returns the four baseline methods in the paper's table order
// (SDM, SSM, CDG, DMM).
func (l *Lab) Selectors() []baselines.Selector {
	return []baselines.Selector{l.SDM, l.SSM, l.CDG, l.DMM}
}

// MethodNames returns the five method names in presentation order,
// Anole last as in the paper's tables.
func MethodNames() []string {
	return []string{"SDM", "SSM", "CDG", "DMM", "Anole"}
}

// synthClips builds the six fast-changing synthesized clips T1–T6 of
// §VI-C: each splices segments cut from five randomly chosen clips (test
// frames for seen clips). Segment length is capped by the available
// frames, so reduced-scale labs produce shorter clips with the same
// structure.
func (l *Lab) synthClips(segment int) [][]*synth.Frame {
	rng := xrand.NewLabeled(l.Config.Seed, "eval-synth-clips")
	const numClips = 6
	out := make([][]*synth.Frame, 0, numClips)
	for t := 0; t < numClips; t++ {
		var spliced []*synth.Frame
		for seg := 0; seg < 5; seg++ {
			clip := l.Corpus.Clips[rng.Intn(len(l.Corpus.Clips))]
			var pool []*synth.Frame
			n := len(clip.Frames)
			for i, f := range clip.Frames {
				if synth.SplitOf(i, n, clip.Seen) == synth.Test || !clip.Seen {
					pool = append(pool, f)
				}
			}
			if len(pool) == 0 {
				continue
			}
			segLen := segment
			if segLen > len(pool) {
				segLen = len(pool)
			}
			start := 0
			if len(pool) > segLen {
				start = rng.Intn(len(pool) - segLen)
			}
			spliced = append(spliced, pool[start:start+segLen]...)
		}
		out = append(out, spliced)
	}
	return out
}
