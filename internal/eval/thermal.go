package eval

import (
	"fmt"
	"io"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/synth"
)

// ThermalRow is one method's outcome under sustained load with thermal
// throttling enabled.
type ThermalRow struct {
	Method string
	// Heat is the final thermal state (>1 = throttling).
	Heat float64
	// Throttle is the final throughput multiplier (1 = unthrottled).
	Throttle float64
	// SustainedFPS is inferences per busy second at the end of the run.
	SustainedFPS float64
	// MeanLatencyMs is the mean per-frame latency over the last quarter
	// of the stream (after thermals settle).
	MeanLatencyMs float64
}

// ThermalResult is the A4 ablation: a passively cooled device (thermal
// model attached) streams frames at 30 FPS for several simulated minutes.
// The deep model saturates the chassis and throttles; Anole's small
// models idle most of each frame period and stay inside the envelope —
// an effect the paper's powered test rig cannot show but any fanless
// deployment would.
type ThermalResult struct {
	Rows []ThermalRow
}

// RunThermal streams `frames` frames (33 ms apart) through SDM and
// through the Anole runtime on a TX2 NX with the default thermal model.
func RunThermal(l *Lab, frames int) (ThermalResult, error) {
	if frames <= 0 {
		frames = 3000
	}
	stream := make([]*synth.Frame, 0, frames)
	test := l.Corpus.Frames(synth.Test)
	if len(test) == 0 {
		return ThermalResult{}, fmt.Errorf("eval: no test frames")
	}
	for i := 0; i < frames; i++ {
		stream = append(stream, test[i%len(test)])
	}
	const period = 33300 * time.Microsecond
	cells := l.World.Config().Cells()
	tail := frames / 4

	var res ThermalResult

	// SDM: one deep inference per frame.
	sdmSim := mustSim(device.JetsonTX2NX)
	sdmSim.EnableThermal(device.DefaultThermal())
	deep := deepModelCost(l, cells)
	sdmSim.LoadModel(deep)
	var sdmTail time.Duration
	for i := range stream {
		lat := sdmSim.Infer(deep)
		sdmSim.Idle(period - lat)
		if i >= frames-tail {
			sdmTail += lat
		}
	}
	res.Rows = append(res.Rows, ThermalRow{
		Method:        "SDM",
		Heat:          sdmSim.Heat(),
		Throttle:      sdmSim.ThrottleFactor(),
		SustainedFPS:  sdmSim.FPS(),
		MeanLatencyMs: sdmTail.Seconds() * 1e3 / float64(tail),
	})

	// Anole: decision + compressed inference per frame via the runtime.
	anoleSim := mustSim(device.JetsonTX2NX)
	anoleSim.EnableThermal(device.DefaultThermal())
	rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5, Device: anoleSim})
	if err != nil {
		return ThermalResult{}, err
	}
	var anoleTail time.Duration
	for i, f := range stream {
		fr, err := rt.ProcessFrame(f)
		if err != nil {
			return ThermalResult{}, err
		}
		anoleSim.Idle(period - fr.Latency)
		if i >= frames-tail {
			anoleTail += fr.Latency
		}
	}
	res.Rows = append(res.Rows, ThermalRow{
		Method:        "Anole",
		Heat:          anoleSim.Heat(),
		Throttle:      anoleSim.ThrottleFactor(),
		SustainedFPS:  anoleSim.FPS(),
		MeanLatencyMs: anoleTail.Seconds() * 1e3 / float64(tail),
	})
	return res, nil
}

// Render writes one row per method.
func (r ThermalResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A4 — passive cooling: sustained 30 FPS stream on TX2 NX")
	fmt.Fprintf(w, "%-8s %-7s %-10s %-14s %-14s\n", "method", "heat", "throttle", "busy FPS", "tail ms/frame")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-7.2f %-10.2f %-14.1f %-14.2f\n",
			row.Method, row.Heat, row.Throttle, row.SustainedFPS, row.MeanLatencyMs)
	}
}
