package eval

import (
	"fmt"
	"io"

	"anole/internal/stats"
)

// Fig5Result carries the dataset-diversity CDFs of Fig. 5: image
// brightness, image contrast, objects per frame, and object area ratio
// over every frame of the corpus.
type Fig5Result struct {
	Frames     int
	Brightness []stats.CDFPoint
	Contrast   []stats.CDFPoint
	Objects    []stats.CDFPoint
	AreaRatio  []stats.CDFPoint
}

// RunFig5 computes the four CDFs over the full corpus.
func RunFig5(l *Lab) Fig5Result {
	var brightness, contrast, objects, area []float64
	for _, clip := range l.Corpus.Clips {
		for _, f := range clip.Frames {
			brightness = append(brightness, f.Brightness)
			contrast = append(contrast, f.Contrast)
			objects = append(objects, float64(len(f.Objects)))
			area = append(area, f.AreaRatio())
		}
	}
	return Fig5Result{
		Frames:     len(brightness),
		Brightness: stats.CDF(brightness),
		Contrast:   stats.CDF(contrast),
		Objects:    stats.CDF(objects),
		AreaRatio:  stats.CDF(area),
	}
}

// Render writes the four CDFs at decile resolution.
func (r Fig5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 5 — dataset diversity CDFs over %d frames\n", r.Frames)
	renderCDF(w, "brightness", r.Brightness)
	renderCDF(w, "contrast", r.Contrast)
	renderCDF(w, "#objects", r.Objects)
	renderCDF(w, "area ratio", r.AreaRatio)
}

func renderCDF(w io.Writer, name string, cdf []stats.CDFPoint) {
	fmt.Fprintf(w, "  %s:", name)
	if len(cdf) == 0 {
		fmt.Fprintln(w, " (empty)")
		return
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fmt.Fprintf(w, "  p%.0f=%.3f", q*100, valueAtFrac(cdf, q))
	}
	fmt.Fprintln(w)
}

// valueAtFrac inverts an empirical CDF at the given cumulative fraction.
func valueAtFrac(cdf []stats.CDFPoint, frac float64) float64 {
	for _, p := range cdf {
		if p.Frac >= frac {
			return p.Value
		}
	}
	return cdf[len(cdf)-1].Value
}
