package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/stats"
	"anole/internal/synth"
)

// QuantizeRow is one precision setting's outcome.
type QuantizeRow struct {
	// Bits is the repertoire weight precision (0 = full float64).
	Bits int
	// F1 is the Anole runtime's accuracy on the seen test split.
	F1 float64
	// RepertoireBytes is the serialized repertoire size.
	RepertoireBytes int64
	// Compression is full-precision bytes over this setting's bytes.
	Compression float64
}

// QuantizeResult is the A5 ablation: post-training quantization of the
// compressed repertoire. The paper positions Anole among compression
// techniques (§VII-A); this measures how far the repertoire's precision
// can drop before accuracy pays, and what it buys in download size and
// model-load latency (bytes drive both).
type QuantizeResult struct {
	Rows []QuantizeRow
}

// RunQuantize sweeps weight precision over the lab's bundle and scores
// each variant on at most maxFrames seen test frames (0 = all).
func RunQuantize(l *Lab, bitsList []int, maxFrames int) (QuantizeResult, error) {
	if len(bitsList) == 0 {
		bitsList = []int{16, 8, 4, 2}
	}
	test := l.Corpus.Frames(synth.Test)
	if len(test) == 0 {
		return QuantizeResult{}, fmt.Errorf("eval: no test frames")
	}
	if maxFrames > 0 && len(test) > maxFrames {
		test = test[:maxFrames]
	}

	score := func(b *core.Bundle) (float64, error) {
		rt, err := core.NewRuntime(b, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return 0, err
		}
		var agg stats.PRF1
		for _, f := range test {
			res, err := rt.ProcessFrame(f)
			if err != nil {
				return 0, err
			}
			agg = agg.Add(res.Metrics)
		}
		return agg.F1, nil
	}

	fullBytes := l.Bundle.RepertoireWeightBytes()
	fullF1, err := score(l.Bundle)
	if err != nil {
		return QuantizeResult{}, err
	}
	res := QuantizeResult{Rows: []QuantizeRow{{
		Bits: 0, F1: fullF1, RepertoireBytes: fullBytes, Compression: 1,
	}}}
	for _, bits := range bitsList {
		qb, err := core.QuantizeBundle(l.Bundle, bits)
		if err != nil {
			return QuantizeResult{}, err
		}
		f1, err := score(qb)
		if err != nil {
			return QuantizeResult{}, err
		}
		qBytes := qb.RepertoireWeightBytes()
		res.Rows = append(res.Rows, QuantizeRow{
			Bits:            bits,
			F1:              f1,
			RepertoireBytes: qBytes,
			Compression:     float64(fullBytes) / float64(qBytes),
		})
	}
	return res, nil
}

// Render writes one row per precision setting.
func (r QuantizeResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A5 — post-training quantization of the repertoire")
	fmt.Fprintf(w, "%-8s %-8s %-16s %-12s\n", "bits", "F1", "repertoire(B)", "compression")
	for _, row := range r.Rows {
		label := fmt.Sprint(row.Bits)
		if row.Bits == 0 {
			label = "f64"
		}
		fmt.Fprintf(w, "%-8s %-8.3f %-16d %-12.1fx\n", label, row.F1, row.RepertoireBytes, row.Compression)
	}
}
