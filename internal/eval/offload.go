package eval

import (
	"fmt"
	"io"
	"sort"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/netsim"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// OffloadRow is one link-stability setting's outcome for the
// cloud-offloading strategy, with Anole's local numbers alongside.
type OffloadRow struct {
	// Stability is the link-stickiness knob in [0,1].
	Stability float64
	// DownFrac is the measured fraction of frames with the link down.
	DownFrac float64
	// Offload metrics: mean and p99 end-to-end latency of delivered
	// frames, the fraction of frames missing the deadline (including
	// drops), and detection F1 with dropped frames scored as empty
	// predictions.
	OffloadMeanMs  float64
	OffloadP99Ms   float64
	OffloadMissPct float64
	OffloadF1      float64
}

// OffloadResult is the M1 motivation experiment (§I): offloading every
// frame to a cloud-hosted deep model is accurate when the link holds, but
// a moving device's link does not hold — latency becomes unpredictable
// and outages drop frames — while Anole's fully local path is flat. This
// quantifies the paper's premise rather than any of its figures.
type OffloadResult struct {
	Deadline time.Duration
	Frames   int
	Rows     []OffloadRow
	// AnoleMeanMs / AnoleP99Ms / AnoleMissPct / AnoleF1 are the local
	// baseline (link-independent).
	AnoleMeanMs  float64
	AnoleP99Ms   float64
	AnoleMissPct float64
	AnoleF1      float64
}

// RunOffload streams `frames` test frames at a 33 ms deadline through (a)
// Anole locally on a TX2 NX and (b) a cloud offloading strategy (deep
// model server, compressed frame upload) over links of decreasing
// stability.
func RunOffload(l *Lab, frames int, stabilities []float64) (OffloadResult, error) {
	if frames <= 0 {
		frames = 600
	}
	if len(stabilities) == 0 {
		stabilities = []float64{1, 0.9, 0.6, 0.3, 0}
	}
	const deadline = 100 * time.Millisecond // a lenient 100 ms interaction budget
	test := l.Corpus.Frames(synth.Test)
	if len(test) == 0 {
		return OffloadResult{}, fmt.Errorf("eval: no test frames")
	}
	stream := make([]*synth.Frame, frames)
	for i := range stream {
		stream[i] = test[i%len(test)]
	}
	res := OffloadResult{Deadline: deadline, Frames: frames}

	// Local Anole on the TX2 NX.
	sim := mustSim(device.JetsonTX2NX)
	rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5, Device: sim})
	if err != nil {
		return OffloadResult{}, err
	}
	var anoleLat []float64
	var anoleAgg stats.PRF1
	misses := 0
	for _, f := range stream {
		fr, err := rt.ProcessFrame(f)
		if err != nil {
			return OffloadResult{}, err
		}
		anoleLat = append(anoleLat, fr.Latency.Seconds()*1e3)
		anoleAgg = anoleAgg.Add(fr.Metrics)
		if fr.Latency > deadline {
			misses++
		}
	}
	res.AnoleMeanMs = stats.Mean(anoleLat)
	res.AnoleP99Ms = stats.Quantile(anoleLat, 0.99)
	res.AnoleMissPct = 100 * float64(misses) / float64(frames)
	res.AnoleF1 = anoleAgg.F1

	// Offloading: a compressed 720p frame upstream (~25 KB after JPEG),
	// detections downstream, cloud-side deep inference at 10× TX2
	// throughput.
	const (
		upBytes   = 25 << 10
		downBytes = 2 << 10
	)
	deep := deepModelCost(l, l.World.Config().Cells())
	cloudInfer := time.Duration(deep.ScaledFLOPs() / (10 * 1330e9) * float64(time.Second))
	sdm := l.SDM.Detectors()[0]

	for _, stability := range stabilities {
		link, err := netsim.NewLink(netsim.DefaultConfig(stability),
			xrand.NewLabeled(l.Config.Seed, fmt.Sprintf("offload-%v", stability)))
		if err != nil {
			return OffloadResult{}, err
		}
		var delivered []float64
		var agg stats.PRF1
		missed := 0
		for _, f := range stream {
			link.Step()
			transfer, ok := link.Transfer(upBytes, downBytes)
			if !ok {
				// Outage: the frame is dropped — every object missed.
				missed++
				agg = agg.Add(stats.ComputePRF1(0, 0, len(f.Objects)))
				continue
			}
			lat := transfer + cloudInfer
			delivered = append(delivered, lat.Seconds()*1e3)
			if lat > deadline {
				missed++
			}
			agg = agg.Add(sdm.EvaluateFrame(f))
		}
		sort.Float64s(delivered)
		row := OffloadRow{
			Stability:      stability,
			DownFrac:       link.DownFraction(),
			OffloadMissPct: 100 * float64(missed) / float64(frames),
			OffloadF1:      agg.F1,
		}
		if len(delivered) > 0 {
			row.OffloadMeanMs = stats.Mean(delivered)
			row.OffloadP99Ms = stats.Quantile(delivered, 0.99)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the comparison.
func (r OffloadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Motivation M1 — cloud offloading vs local Anole (%d frames, %s deadline)\n",
		r.Frames, r.Deadline)
	fmt.Fprintf(w, "%-11s %-9s %-10s %-10s %-10s %-8s\n",
		"stability", "down%", "mean(ms)", "p99(ms)", "miss%", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11.2f %-9.1f %-10.1f %-10.1f %-10.1f %-8.3f\n",
			row.Stability, 100*row.DownFrac, row.OffloadMeanMs, row.OffloadP99Ms,
			row.OffloadMissPct, row.OffloadF1)
	}
	fmt.Fprintf(w, "%-11s %-9s %-10.1f %-10.1f %-10.1f %-8.3f\n",
		"Anole", "local", r.AnoleMeanMs, r.AnoleP99Ms, r.AnoleMissPct, r.AnoleF1)
}
