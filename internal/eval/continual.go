package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// ContinualResult reports the continual-adaptation experiment (the
// paper's case-3 remedy, §II-B): a device meets a scene no repertoire
// model covers, flags the low-confidence frames, and after a cloud-side
// repertoire expansion handles the scene.
type ContinualResult struct {
	// Scene is the injected novel scene.
	Scene string
	// FlagRate is the fraction of novel-scene frames whose calibrated
	// novelty score exceeded the flagging threshold during the first
	// encounter.
	FlagRate float64
	// BeforeF1 is Anole's F1 on the held-out novel stream with the
	// original bundle; AfterF1 with the expanded bundle.
	BeforeF1 float64
	AfterF1  float64
	// NewModelShare is how often the expanded decision model ranks the
	// new specialist first on the held-out stream.
	NewModelShare float64
	// BaselineF1 is the deep model (SDM) on the same stream, for scale.
	BaselineF1 float64
}

// RunContinual injects a scene the lab's training corpus never visited,
// streams it through the lab's runtime with an uncertainty buffer,
// expands the repertoire from the flagged frames, and measures the
// before/after accuracy on a fresh stream of the same scene.
func RunContinual(l *Lab, frames int) (ContinualResult, error) {
	if frames <= 0 {
		frames = 120
	}
	novelScene, err := unseenScene(l)
	if err != nil {
		return ContinualResult{}, err
	}
	rng := xrand.NewLabeled(l.Config.Seed, "continual")

	encounter := make([]*synth.Frame, frames)
	for i := range encounter {
		encounter[i] = l.World.GenerateFrame(novelScene, 1, rng)
	}
	holdout := make([]*synth.Frame, frames/2)
	for i := range holdout {
		holdout[i] = l.World.GenerateFrame(novelScene, 1, rng)
	}

	res := ContinualResult{Scene: novelScene.String()}

	// First encounter: run the original bundle, flag uncertain frames.
	rtBefore, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
	if err != nil {
		return res, err
	}
	buffer, err := core.NewUncertaintyBuffer(1.5, frames)
	if err != nil {
		return res, err
	}
	for _, f := range encounter {
		fr, err := rtBefore.ProcessFrame(f)
		if err != nil {
			return res, err
		}
		buffer.Observe(f, fr)
	}
	res.FlagRate = buffer.FlagRate()
	if buffer.Len() < 30 {
		return res, fmt.Errorf("eval: only %d frames flagged; threshold too strict for this lab", buffer.Len())
	}

	// Before: original bundle on the held-out stream.
	var before stats.PRF1
	for _, f := range holdout {
		fr, err := rtBefore.ProcessFrame(f)
		if err != nil {
			return res, err
		}
		before = before.Add(fr.Metrics)
	}
	res.BeforeF1 = before.F1

	// Cloud-side expansion from the flagged frames.
	expanded, err := core.ExpandRepertoire(l.Bundle, buffer.Frames(), l.Corpus.Frames(synth.Train), core.ExpandConfig{
		Seed:     l.Config.Seed + 1,
		Train:    detect.TrainConfig{Epochs: 20, Workers: l.Config.Workers},
		Sampling: sampling.Config{Kappa: 600, AcceptF1: l.Config.Profile.Sampling.AcceptF1},
	})
	if err != nil {
		return res, err
	}

	// After: expanded bundle on the same held-out stream.
	rtAfter, err := core.NewRuntime(expanded, core.RuntimeConfig{CacheSlots: 5})
	if err != nil {
		return res, err
	}
	var after stats.PRF1
	newIdx := expanded.NumModels() - 1
	usedNew := 0
	for _, f := range holdout {
		fr, err := rtAfter.ProcessFrame(f)
		if err != nil {
			return res, err
		}
		after = after.Add(fr.Metrics)
		if fr.Desired == newIdx {
			usedNew++
		}
	}
	res.AfterF1 = after.F1
	res.NewModelShare = float64(usedNew) / float64(len(holdout))
	res.BaselineF1 = l.SDM.Detectors()[0].EvaluateFrames(holdout).F1
	return res, nil
}

// unseenScene returns a semantic scene absent from the encoder's training
// label space, preferring night scenes (the hardest). With 120 scenes and
// a finite corpus some combination is always left over; if the corpus
// somehow visited all 120, that is an error worth surfacing.
func unseenScene(l *Lab) (synth.Scene, error) {
	known := make(map[int]bool)
	for _, idx := range l.Bundle.Encoder.ClassToScene {
		known[idx] = true
	}
	fallback := -1
	for idx := 0; idx < synth.NumScenes; idx++ {
		if known[idx] {
			continue
		}
		s := synth.SceneFromIndex(idx)
		if s.Time == synth.Night {
			return s, nil
		}
		if fallback < 0 {
			fallback = idx
		}
	}
	if fallback >= 0 {
		return synth.SceneFromIndex(fallback), nil
	}
	return synth.Scene{}, fmt.Errorf("eval: every semantic scene was seen in training")
}

// Render writes the experiment summary.
func (r ContinualResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Continual adaptation (case-3 remedy) on novel scene %s\n", r.Scene)
	fmt.Fprintf(w, "flagged %.0f%% of first-encounter frames as uncertain\n", 100*r.FlagRate)
	fmt.Fprintf(w, "%-22s %-8s\n", "configuration", "F1")
	fmt.Fprintf(w, "%-22s %-8.3f\n", "Anole (original)", r.BeforeF1)
	fmt.Fprintf(w, "%-22s %-8.3f\n", "Anole (expanded)", r.AfterF1)
	fmt.Fprintf(w, "%-22s %-8.3f\n", "SDM (reference)", r.BaselineF1)
	fmt.Fprintf(w, "new specialist ranked first on %.0f%% of novel frames\n", 100*r.NewModelShare)
}
