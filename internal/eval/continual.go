package eval

import (
	"fmt"
	"io"

	"anole/internal/adapt"
	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/repo"
	"anole/internal/sampling"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// SceneF1 is one scene's held-out accuracy before and after adaptation.
type SceneF1 struct {
	Scene  string
	Before float64
	After  float64
}

// ContinualResult reports the continual-adaptation experiment (the
// paper's case-3 remedy, §II-B) run through the closed adaptation loop:
// a fleet meets a scene no repertoire model covers, its drift detector
// reports the emerging scene, the cloud controller retrains and
// publishes a new generation, and the canary rollout promotes it.
type ContinualResult struct {
	// Scene is the injected novel scene.
	Scene string
	// FlagRate is the fraction of novel-stream frames the drift detector
	// flagged as exemplars during the encounter.
	FlagRate float64
	// BeforeF1 is Anole's F1 on the held-out novel stream with the
	// original bundle; AfterF1 with the promoted bundle.
	BeforeF1 float64
	AfterF1  float64
	// NewModelShare is how often the promoted decision model ranks an
	// added specialist first on the held-out stream.
	NewModelShare float64
	// BaselineF1 is the deep model (SDM) on the same stream, for scale.
	BaselineF1 float64
	// PerScene breaks the before/after comparison down by scene: the
	// novel scene first, then every scene the repertoire trained on —
	// adaptation must lift the former without regressing the latter.
	PerScene []SceneF1
	// Adapt summarizes the loop run: drift reports, canary outcome,
	// final fleet generation.
	Adapt adapt.LoopStats
}

// RunContinual injects a scene the lab's training corpus never visited
// on one stream of a two-stream fleet (the other serves in-distribution
// traffic), and drives the full device→cloud→device loop: drift
// detection, report upload, cloud retrain, versioned publish, canary,
// promotion. It then measures before/after accuracy per scene on fresh
// held-out streams.
func RunContinual(l *Lab, frames int) (ContinualResult, error) {
	if frames <= 0 {
		frames = 120
	}
	novelScene, err := unseenScene(l)
	if err != nil {
		return ContinualResult{}, err
	}
	rng := xrand.NewLabeled(l.Config.Seed, "continual")
	res := ContinualResult{Scene: novelScene.String()}

	// The encounter needs room for the loop's phases: drift windows
	// before the retrain triggers, then a canary window, then settled
	// post-promotion serving.
	encounterLen := 2 * frames
	novelStream := make([]*synth.Frame, encounterLen)
	for i := range novelStream {
		novelStream[i] = l.World.GenerateFrame(novelScene, 1, rng)
	}
	healthy := l.Corpus.Frames(synth.Test)
	if len(healthy) == 0 {
		return res, fmt.Errorf("eval: corpus has no test frames")
	}
	healthyStream := make([]*synth.Frame, encounterLen)
	for i := range healthyStream {
		healthyStream[i] = healthy[i%len(healthy)]
	}

	// The cloud half: a versioned repository seeded with the original
	// bundle, and a controller that retrains from drift reports.
	srv, err := repo.NewServer(l.Bundle)
	if err != nil {
		return res, err
	}
	ctrl, err := adapt.NewController(l.Bundle, srv, adapt.ControllerConfig{
		Seed:        l.Config.Seed + 1,
		TrainFrames: l.Corpus.Frames(synth.Train),
		Train:       detect.TrainConfig{Epochs: 20, Workers: l.Config.Workers},
		Sampling:    sampling.Config{Kappa: 600, AcceptF1: l.Config.Profile.Sampling.AcceptF1},
	})
	if err != nil {
		return res, err
	}

	// The device half: a two-stream fleet under the adaptation loop.
	mrt, err := core.NewMultiRuntime(l.Bundle, core.MultiRuntimeConfig{Streams: 2, CacheSlots: 8})
	if err != nil {
		return res, err
	}
	defer mrt.Close()
	loop, err := adapt.NewLoop(mrt, adapt.LoopConfig{
		Drift:   adapt.DriftConfig{Window: 30, Cooldown: 1},
		Rollout: adapt.RolloutConfig{CanaryFrames: 60, MinF1Ratio: 0.5},
		// The novel scene drifts on stream 0 (also the canary stream);
		// stream 1 serves calibrated traffic as the incumbent reference.
		Submitter: ctrl,
		Source:    adapt.NewServerSource(srv),
	})
	if err != nil {
		return res, err
	}
	if _, err := loop.Run([][]*synth.Frame{novelStream, healthyStream}, nil); err != nil {
		return res, err
	}
	res.Adapt = loop.Stats()
	res.FlagRate = loop.Detector(0).FlagRate()
	if res.Adapt.Promotions == 0 {
		return res, fmt.Errorf("eval: adaptation loop never promoted (stats %+v, last verdict %q)",
			res.Adapt, loop.Rollout().LastVerdict().Reason)
	}
	promoted := loop.FleetBundle()

	// Held-out novel stream for the headline before/after numbers.
	holdout := make([]*synth.Frame, frames/2)
	for i := range holdout {
		holdout[i] = l.World.GenerateFrame(novelScene, 1, rng)
	}
	beforeF1, _, err := evalBundleF1(l.Bundle, holdout, l.Bundle.NumModels())
	if err != nil {
		return res, err
	}
	afterF1, newShare, err := evalBundleF1(promoted, holdout, l.Bundle.NumModels())
	if err != nil {
		return res, err
	}
	res.BeforeF1, res.AfterF1, res.NewModelShare = beforeF1, afterF1, newShare
	res.BaselineF1 = l.SDM.Detectors()[0].EvaluateFrames(holdout).F1

	// Per-scene breakdown: the novel scene plus every trained scene.
	res.PerScene = append(res.PerScene, SceneF1{Scene: novelScene.String(), Before: beforeF1, After: afterF1})
	seen := map[int]bool{novelScene.Index(): true}
	for _, idx := range l.Bundle.Encoder.ClassToScene {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		s := synth.SceneFromIndex(idx)
		sf := make([]*synth.Frame, frames/2)
		for i := range sf {
			sf[i] = l.World.GenerateFrame(s, 1, rng)
		}
		b, _, err := evalBundleF1(l.Bundle, sf, l.Bundle.NumModels())
		if err != nil {
			return res, err
		}
		a, _, err := evalBundleF1(promoted, sf, l.Bundle.NumModels())
		if err != nil {
			return res, err
		}
		res.PerScene = append(res.PerScene, SceneF1{Scene: s.String(), Before: b, After: a})
	}
	return res, nil
}

// evalBundleF1 measures aggregate F1 over frames on a fresh runtime and
// the share of frames whose desired model is an added specialist (index
// at or beyond baseModels).
func evalBundleF1(b *core.Bundle, frames []*synth.Frame, baseModels int) (float64, float64, error) {
	rt, err := core.NewRuntime(b, core.RuntimeConfig{CacheSlots: 8})
	if err != nil {
		return 0, 0, err
	}
	var agg stats.PRF1
	usedNew := 0
	for _, f := range frames {
		fr, err := rt.ProcessFrame(f)
		if err != nil {
			return 0, 0, err
		}
		agg = agg.Add(fr.Metrics)
		if fr.Desired >= baseModels {
			usedNew++
		}
	}
	share := 0.0
	if len(frames) > 0 {
		share = float64(usedNew) / float64(len(frames))
	}
	return agg.F1, share, nil
}

// unseenScene returns a semantic scene absent from the encoder's training
// label space, preferring night scenes (the hardest). With 120 scenes and
// a finite corpus some combination is always left over; if the corpus
// somehow visited all 120, that is an error worth surfacing.
func unseenScene(l *Lab) (synth.Scene, error) {
	known := make(map[int]bool)
	for _, idx := range l.Bundle.Encoder.ClassToScene {
		known[idx] = true
	}
	fallback := -1
	for idx := 0; idx < synth.NumScenes; idx++ {
		if known[idx] {
			continue
		}
		s := synth.SceneFromIndex(idx)
		if s.Time == synth.Night {
			return s, nil
		}
		if fallback < 0 {
			fallback = idx
		}
	}
	if fallback >= 0 {
		return synth.SceneFromIndex(fallback), nil
	}
	return synth.Scene{}, fmt.Errorf("eval: every semantic scene was seen in training")
}

// Render writes the experiment summary.
func (r ContinualResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Continual adaptation (case-3 remedy) on novel scene %s\n", r.Scene)
	fmt.Fprintf(w, "drift detector flagged %.0f%% of novel-stream frames; %d reports shipped, fleet promoted to generation %d (%d canary, %d rollback)\n",
		100*r.FlagRate, r.Adapt.ReportsSent, r.Adapt.FleetGeneration, r.Adapt.CanaryStarts, r.Adapt.Rollbacks)
	fmt.Fprintf(w, "%-22s %-8s\n", "configuration", "F1")
	fmt.Fprintf(w, "%-22s %-8.3f\n", "Anole (original)", r.BeforeF1)
	fmt.Fprintf(w, "%-22s %-8.3f\n", "Anole (adapted)", r.AfterF1)
	fmt.Fprintf(w, "%-22s %-8.3f\n", "SDM (reference)", r.BaselineF1)
	fmt.Fprintf(w, "new specialist ranked first on %.0f%% of novel frames\n", 100*r.NewModelShare)
	if len(r.PerScene) > 0 {
		fmt.Fprintf(w, "%-22s %-8s %-8s\n", "scene", "before", "after")
		for _, s := range r.PerScene {
			fmt.Fprintf(w, "%-22s %-8.3f %-8.3f\n", s.Scene, s.Before, s.After)
		}
	}
}
