package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/modelcache"
	"anole/internal/stats"
)

// Fig7aResult carries the scene-duration boxplots of the synthesized
// fast-changing clips T1–T6 (Fig. 7a): the lengths of frame runs without
// a model switch, per clip.
type Fig7aResult struct {
	Clips        []stats.Boxplot
	MeanDuration float64
	// FracUnder40 is the fraction of runs shorter than 40 frames (the
	// paper reports over 80%).
	FracUnder40 float64
}

// RunFig7a streams T1–T6 through fresh runtimes and summarizes
// desired-model run lengths.
func RunFig7a(l *Lab, segment int) (Fig7aResult, error) {
	if segment <= 0 {
		segment = 100
	}
	clips := l.synthClips(segment)
	var res Fig7aResult
	var all []float64
	for _, frames := range clips {
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return Fig7aResult{}, err
		}
		for _, f := range frames {
			if _, err := rt.ProcessFrame(f); err != nil {
				return Fig7aResult{}, err
			}
		}
		durations := toFloats(rt.Stats().SceneDurations)
		res.Clips = append(res.Clips, stats.BoxplotOf(durations))
		all = append(all, durations...)
	}
	if len(all) > 0 {
		res.MeanDuration = stats.Mean(all)
		under := 0
		for _, d := range all {
			if d < 40 {
				under++
			}
		}
		res.FracUnder40 = float64(under) / float64(len(all))
	}
	return res, nil
}

// Render writes one boxplot row per synthesized clip.
func (r Fig7aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7a — scene duration (frames without model switching) on T1-T6")
	fmt.Fprintf(w, "%-5s %-7s %-7s %-8s %-7s %-7s %-7s\n", "clip", "min", "q1", "median", "q3", "max", "mean")
	for i, b := range r.Clips {
		fmt.Fprintf(w, "T%-4d %-7.0f %-7.1f %-8.1f %-7.1f %-7.0f %-7.1f\n",
			i+1, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	}
	fmt.Fprintf(w, "mean duration %.1f frames; %.0f%% of runs under 40 frames (paper: >80%%)\n",
		r.MeanDuration, 100*r.FracUnder40)
}

// Fig7bRow is one cache size's outcome.
type Fig7bRow struct {
	CacheSize int
	MissRate  float64
	F1        float64
}

// Fig7bResult sweeps cache size over the synthesized clips (Fig. 7b).
type Fig7bResult struct {
	Rows []Fig7bRow
}

// RunFig7b measures miss rate and F1 for cache sizes 1..maxSize on the
// T1–T6 stream.
func RunFig7b(l *Lab, maxSize, segment int) (Fig7bResult, error) {
	if maxSize <= 0 {
		maxSize = 8
	}
	if segment <= 0 {
		segment = 100
	}
	clips := l.synthClips(segment)
	var res Fig7bResult
	for size := 1; size <= maxSize; size++ {
		var agg stats.PRF1
		var hits, misses int64
		for _, frames := range clips {
			rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: size})
			if err != nil {
				return Fig7bResult{}, err
			}
			for _, f := range frames {
				if _, err := rt.ProcessFrame(f); err != nil {
					return Fig7bResult{}, err
				}
			}
			st := rt.Stats()
			agg = agg.Add(st.Detection)
			hits += st.Cache.Hits
			misses += st.Cache.Misses
		}
		missRate := 0.0
		if hits+misses > 0 {
			missRate = float64(misses) / float64(hits+misses)
		}
		res.Rows = append(res.Rows, Fig7bRow{CacheSize: size, MissRate: missRate, F1: agg.F1})
	}
	return res, nil
}

// Render writes one row per cache size.
func (r Fig7bResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7b — cache miss rate and F1 vs cache size (T1-T6)")
	fmt.Fprintf(w, "%-11s %-10s %-8s\n", "cache size", "miss rate", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11d %-10.3f %-8.3f\n", row.CacheSize, row.MissRate, row.F1)
	}
}

// AblationCacheRow compares eviction policies at a fixed cache size.
type AblationCacheRow struct {
	Policy   string
	MissRate float64
	F1       float64
}

// AblationCacheResult is the LFU/LRU/FIFO comparison (ablation A3).
type AblationCacheResult struct {
	CacheSize int
	Rows      []AblationCacheRow
}

// RunAblationCache replays the T1–T6 stream under each eviction policy.
func RunAblationCache(l *Lab, cacheSize, segment int) (AblationCacheResult, error) {
	if cacheSize <= 0 {
		cacheSize = 3
	}
	if segment <= 0 {
		segment = 100
	}
	clips := l.synthClips(segment)
	res := AblationCacheResult{CacheSize: cacheSize}
	for _, policy := range []modelcache.Policy{modelcache.LFU, modelcache.LRU, modelcache.FIFO} {
		var agg stats.PRF1
		var hits, misses int64
		for _, frames := range clips {
			rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: cacheSize, Policy: policy})
			if err != nil {
				return AblationCacheResult{}, err
			}
			for _, f := range frames {
				if _, err := rt.ProcessFrame(f); err != nil {
					return AblationCacheResult{}, err
				}
			}
			st := rt.Stats()
			agg = agg.Add(st.Detection)
			hits += st.Cache.Hits
			misses += st.Cache.Misses
		}
		missRate := 0.0
		if hits+misses > 0 {
			missRate = float64(misses) / float64(hits+misses)
		}
		res.Rows = append(res.Rows, AblationCacheRow{Policy: policy.String(), MissRate: missRate, F1: agg.F1})
	}
	return res, nil
}

// Render writes one row per policy.
func (r AblationCacheResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation A3 — eviction policy at cache size %d (T1-T6)\n", r.CacheSize)
	fmt.Fprintf(w, "%-8s %-10s %-8s\n", "policy", "miss rate", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-10.3f %-8.3f\n", row.Policy, row.MissRate, row.F1)
	}
}
