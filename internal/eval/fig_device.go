package eval

import (
	"fmt"
	"io"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/synth"
)

// mustSim builds a simulator for a registry profile. The built-in
// profiles the figures run on always validate, so a failure here is a
// programming error, not an input error.
func mustSim(p device.Profile) *device.Simulator {
	sim, err := device.NewSimulator(p)
	if err != nil {
		panic(err)
	}
	return sim
}

// Fig4aResult is the per-frame inference latency of the deep and
// compressed detectors over the first frames of a clip, with the
// first-frame model-load spike (§V-B, Fig. 4a).
type Fig4aResult struct {
	Device  string
	Frames  int
	DeepMs  []float64
	TinyMs  []float64
	Clips   int
	Window  int
	SpeedUp float64 // steady-state deep/tiny latency ratio
}

// RunFig4a reproduces Fig. 4(a): average latency of the first `frames`
// frames over `clips` clips, on the TX2 NX profile, for the deep and
// compressed detectors. The first frame pays model load plus framework
// initialization.
func RunFig4a(l *Lab, clips, frames int) (Fig4aResult, error) {
	if clips <= 0 {
		clips = 5
	}
	if frames <= 0 {
		frames = 20
	}
	cells := l.World.Config().Cells()
	deep := deepModelCost(l, cells)
	tiny := l.Bundle.ModelCost(0, cells)

	run := func(model device.ModelCost) []float64 {
		acc := make([]float64, frames)
		for c := 0; c < clips; c++ {
			sim := mustSim(device.JetsonTX2NX)
			for i := 0; i < frames; i++ {
				var lat time.Duration
				if i == 0 {
					lat += sim.LoadModel(model)
				}
				lat += sim.Infer(model)
				acc[i] += lat.Seconds() * 1e3
			}
		}
		for i := range acc {
			acc[i] /= float64(clips)
		}
		return acc
	}
	deepMs := run(deep)
	tinyMs := run(tiny)
	speedup := 0.0
	if tinyMs[frames-1] > 0 {
		speedup = deepMs[frames-1] / tinyMs[frames-1]
	}
	return Fig4aResult{
		Device:  device.JetsonTX2NX.Name,
		Frames:  frames,
		DeepMs:  deepMs,
		TinyMs:  tinyMs,
		Clips:   clips,
		SpeedUp: speedup,
	}, nil
}

// Render writes the figure as text rows.
func (r Fig4aResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4a — per-frame latency on %s, mean over %d clips (ms)\n", r.Device, r.Clips)
	fmt.Fprintf(w, "%-7s %-12s %-12s\n", "frame", "deep", "compressed")
	for i := 0; i < r.Frames; i++ {
		fmt.Fprintf(w, "%-7d %-12.1f %-12.1f\n", i+1, r.DeepMs[i], r.TinyMs[i])
	}
	fmt.Fprintf(w, "steady-state deep/compressed latency ratio: %.1fx\n", r.SpeedUp)
}

// Table2Row is one model row of Table II.
type Table2Row struct {
	Model   string
	Role    string
	FLOPs   int64
	Weights int64
}

// Table2Result lists the deployed models' computational footprints.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table II from the lab's actual architectures
// (per-frame FLOPs for detectors; per-inference for the decision stack).
func RunTable2(l *Lab) Table2Result {
	cells := l.World.Config().Cells()
	deep := l.SDM.Detectors()[0]
	tiny := l.Bundle.Detectors[0]
	return Table2Result{Rows: []Table2Row{
		{
			Model:   "compressed detector (YOLOv3-tiny analogue)",
			Role:    "compressed model",
			FLOPs:   tiny.FrameFLOPs(cells),
			Weights: tiny.WeightBytes(),
		},
		{
			Model:   "scene encoder (ResNet18 analogue)",
			Role:    "M_scene",
			FLOPs:   l.Bundle.Encoder.Weights.FLOPs(),
			Weights: l.Bundle.Encoder.Weights.WeightBytes(),
		},
		{
			Model:   "decision head (MLP)",
			Role:    "M_decision",
			FLOPs:   l.Bundle.Decision.Head.FLOPs(),
			Weights: l.Bundle.Decision.Head.WeightBytes(),
		},
		{
			Model:   "deep detector (YOLOv3 analogue)",
			Role:    "deep model",
			FLOPs:   deep.FrameFLOPs(cells),
			Weights: deep.WeightBytes(),
		},
	}}
}

// Render writes the table.
func (r Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table II — deployed models (substitute-scale; ×1e4 ≈ paper scale)")
	fmt.Fprintf(w, "%-44s %-18s %-12s %-10s\n", "model", "role", "FLOPs", "weights(B)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-44s %-18s %-12d %-10d\n", row.Model, row.Role, row.FLOPs, row.Weights)
	}
	if len(r.Rows) == 4 {
		ratio := float64(r.Rows[3].FLOPs) / float64(r.Rows[0].FLOPs)
		fmt.Fprintf(w, "deep/compressed FLOPs ratio: %.1fx (paper: 11.8x)\n", ratio)
	}
}

// Table4Row is one (model, device) measurement of Table IV.
type Table4Row struct {
	Model       string
	Device      string
	LatencyMs   float64
	LoadMemMB   float64
	ExecMemMB   float64
	LoadTimeMs  float64
	PerModelMem bool
}

// Table4Result is the latency/memory table across the three devices.
type Table4Result struct {
	Rows []Table4Row
}

// RunTable4 reproduces Table IV: steady-state inference latency of the
// decision stack, the deep detector and a compressed detector on all
// three device profiles, plus load/execution memory.
func RunTable4(l *Lab) Table4Result {
	cells := l.World.Config().Cells()
	models := []device.ModelCost{
		l.Bundle.DecisionCost(),
		deepModelCost(l, cells),
		l.Bundle.ModelCost(0, cells),
	}
	names := []string{"M_scene + M_decision", "deep detector (YOLOv3)", "compressed detector (tiny)"}
	var rows []Table4Row
	for mi, m := range models {
		for _, prof := range device.Profiles() {
			sim := mustSim(prof)
			sim.LoadModel(m) // absorb framework init outside the steady-state figure
			lat := sim.Infer(m)
			loadSim := mustSim(prof)
			loadSim.LoadModel(device.ModelCost{Name: "warm", FLOPsPerInference: 1, WeightBytes: 1})
			loadTime := loadSim.LoadModel(m) // warm load: transfer only
			rows = append(rows, Table4Row{
				Model:      names[mi],
				Device:     prof.Name,
				LatencyMs:  lat.Seconds() * 1e3,
				LoadMemMB:  m.LoadMemoryMB(),
				ExecMemMB:  m.ExecMemoryMB(),
				LoadTimeMs: loadTime.Seconds() * 1e3,
			})
		}
	}
	return Table4Result{Rows: rows}
}

// Render writes the table.
func (r Table4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table IV — inference latency and memory on mobile devices")
	fmt.Fprintf(w, "%-28s %-24s %-12s %-12s %-12s %-12s\n",
		"model", "device", "latency(ms)", "load(MB)", "exec(MB)", "load(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %-24s %-12.1f %-12.1f %-12.1f %-12.1f\n",
			row.Model, row.Device, row.LatencyMs, row.LoadMemMB, row.ExecMemMB, row.LoadTimeMs)
	}
}

// Fig11Row is one (power mode, method) measurement.
type Fig11Row struct {
	Mode   string
	Method string
	PowerW float64
	FPS    float64
}

// Fig11Result sweeps TX2 NX power modes for Anole and the baselines.
type Fig11Result struct {
	Rows []Fig11Row
	// AnolePowerSavingVsSDM is (1 − Anole/SDM) power at the top mode,
	// the paper's headline 45.1%.
	AnolePowerSavingVsSDM float64
}

// fig11FramePeriod is the camera frame interval of the Fig. 11 workload:
// a 30 FPS stream. Methods whose per-frame work finishes early idle until
// the next frame, which is where small-model schemes save power.
const fig11FramePeriod = 33300 * time.Microsecond

// RunFig11 reproduces Fig. 11: average power and inference FPS of every
// method on a fixed 30 FPS frame stream, per TX2 NX power mode. frames
// caps the simulated stream length.
func RunFig11(l *Lab, frames int) (Fig11Result, error) {
	if frames <= 0 {
		frames = 300
	}
	stream := l.Corpus.Frames(synth.Test)
	if len(stream) == 0 {
		return Fig11Result{}, fmt.Errorf("eval: no test frames")
	}
	if len(stream) > frames {
		stream = stream[:frames]
	}
	cells := l.World.Config().Cells()

	var res Fig11Result
	var sdmTopPower, anoleTopPower float64
	for mi := range device.JetsonTX2NX.Modes {
		modeName := device.JetsonTX2NX.Modes[mi].Name

		// Baselines: load once, infer per frame.
		for _, sel := range l.Selectors() {
			sim, err := device.NewSimulatorAtMode(device.JetsonTX2NX, mi)
			if err != nil {
				return Fig11Result{}, err
			}
			perModel := make(map[string]device.ModelCost)
			for _, det := range sel.Detectors() {
				mc := device.ModelCost{Name: det.Name, FLOPsPerInference: det.FrameFLOPs(cells), WeightBytes: det.WeightBytes()}
				perModel[det.Name] = mc
				sim.LoadModel(mc)
			}
			sim.ResetCounters() // measure steady state, not model loading
			for _, f := range stream {
				det := sel.Select(f)
				lat := sim.Infer(perModel[det.Name])
				sim.Idle(fig11FramePeriod - lat)
			}
			res.Rows = append(res.Rows, Fig11Row{
				Mode: modeName, Method: sel.Name(),
				PowerW: sim.AveragePowerW(), FPS: sim.FPS(),
			})
			if sel.Name() == "SDM" && mi == len(device.JetsonTX2NX.Modes)-1 {
				sdmTopPower = sim.AveragePowerW()
			}
		}

		// Anole: decision + cache dynamics charged via the runtime.
		sim, err := device.NewSimulatorAtMode(device.JetsonTX2NX, mi)
		if err != nil {
			return Fig11Result{}, err
		}
		rt, err := core.NewRuntime(l.Bundle, core.RuntimeConfig{CacheSlots: 5, Device: sim})
		if err != nil {
			return Fig11Result{}, err
		}
		// Warm up the cache over the first quarter of the stream, then
		// measure steady state (baselines likewise measure post-load).
		warm := len(stream) / 4
		for i, f := range stream {
			if i == warm {
				sim.ResetCounters()
			}
			fres, err := rt.ProcessFrame(f)
			if err != nil {
				return Fig11Result{}, err
			}
			sim.Idle(fig11FramePeriod - fres.Latency)
		}
		res.Rows = append(res.Rows, Fig11Row{
			Mode: modeName, Method: "Anole",
			PowerW: sim.AveragePowerW(), FPS: sim.FPS(),
		})
		if mi == len(device.JetsonTX2NX.Modes)-1 {
			anoleTopPower = sim.AveragePowerW()
		}
	}
	if sdmTopPower > 0 {
		res.AnolePowerSavingVsSDM = 1 - anoleTopPower/sdmTopPower
	}
	return res, nil
}

// Render writes the figure as text rows.
func (r Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11 — power and inference speed across TX2 NX power modes")
	fmt.Fprintf(w, "%-14s %-8s %-10s %-8s\n", "mode", "method", "power(W)", "FPS")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-8s %-10.2f %-8.1f\n", row.Mode, row.Method, row.PowerW, row.FPS)
	}
	fmt.Fprintf(w, "Anole power saving vs SDM at top mode: %.1f%% (paper: 45.1%%)\n",
		100*r.AnolePowerSavingVsSDM)
}

// deepModelCost builds the device cost of the lab's deep baseline.
func deepModelCost(l *Lab, cells int) device.ModelCost {
	deep := l.SDM.Detectors()[0]
	return device.ModelCost{
		Name:              deep.Name,
		FLOPsPerInference: deep.FrameFLOPs(cells),
		WeightBytes:       deep.WeightBytes(),
	}
}
