package eval

import (
	"fmt"
	"io"

	"anole/internal/core"
	"anole/internal/scene"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// AblationShiftRow reports one scene-shift setting: the F1 of Anole and
// of the general compressed model (SSM), and their gap.
type AblationShiftRow struct {
	Shift   float64
	AnoleF1 float64
	SSMF1   float64
	Gap     float64
}

// AblationShiftResult is the A1 ablation: Anole's advantage over a single
// compressed model as a function of the scene-conditioned appearance
// shift. At shift 0 all scenes share one appearance transform, so
// specialization buys nothing and the gap should collapse — evidence that
// the reproduction's effect comes from scene conditioning rather than
// from tuning.
type AblationShiftResult struct {
	Rows []AblationShiftRow
}

// RunAblationShift trains a reduced lab per shift value and compares
// Anole with SSM on the seen test split. shifts defaults to
// {0, 0.5, 1, 1.5}.
func RunAblationShift(seed uint64, shifts []float64) (AblationShiftResult, error) {
	if len(shifts) == 0 {
		shifts = []float64{0, 0.5, 1, 1.5}
	}
	var res AblationShiftResult
	for _, shift := range shifts {
		cfg := QuickLabConfig(seed)
		cfg.Scale = 0.2
		if shift == 0 {
			// SceneShift 0 is a sentinel for "unset" in LabConfig, so
			// pass an epsilon that is numerically indistinguishable.
			cfg.SceneShift = 1e-9
		} else {
			cfg.SceneShift = shift
		}
		lab, err := NewLab(cfg)
		if err != nil {
			return AblationShiftResult{}, fmt.Errorf("eval: shift %v: %w", shift, err)
		}
		test := lab.Corpus.Frames(synth.Test)
		rt, err := core.NewRuntime(lab.Bundle, core.RuntimeConfig{CacheSlots: 5})
		if err != nil {
			return AblationShiftResult{}, err
		}
		for _, f := range test {
			if _, err := rt.ProcessFrame(f); err != nil {
				return AblationShiftResult{}, err
			}
		}
		anoleF1 := rt.Stats().Detection.F1
		ssmF1 := lab.SSM.Detectors()[0].EvaluateFrames(test).F1
		res.Rows = append(res.Rows, AblationShiftRow{
			Shift:   shift,
			AnoleF1: anoleF1,
			SSMF1:   ssmF1,
			Gap:     anoleF1 - ssmF1,
		})
	}
	return res, nil
}

// Render writes one row per shift setting.
func (r AblationShiftResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A1 — Anole advantage vs scene-shift strength")
	fmt.Fprintf(w, "%-8s %-9s %-9s %-9s\n", "shift", "Anole", "SSM", "gap")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8.2f %-9.3f %-9.3f %+-9.3f\n", row.Shift, row.AnoleF1, row.SSMF1, row.Gap)
	}
}

// AblationRepertoireRow reports one (δ, N) setting of Algorithm 1.
type AblationRepertoireRow struct {
	Delta     float64
	N         int
	Banked    int
	MeanValF1 float64
	MaxLevel  int
}

// AblationRepertoireResult is the A2 ablation: how the acceptance
// threshold δ and the target repertoire size N shape Algorithm 1's bank.
type AblationRepertoireResult struct {
	Rows []AblationRepertoireRow
}

// RunAblationRepertoire reruns Algorithm 1 on the lab's trained encoder
// under a grid of (δ, N) settings.
func RunAblationRepertoire(l *Lab, deltas []float64, ns []int) (AblationRepertoireResult, error) {
	if len(deltas) == 0 {
		deltas = []float64{0.1, 0.3, 0.5}
	}
	if len(ns) == 0 {
		ns = []int{4, 8, 12}
	}
	train := l.Corpus.Frames(synth.Train)
	val := l.Corpus.Frames(synth.Val)
	var res AblationRepertoireResult
	for _, delta := range deltas {
		for _, n := range ns {
			cfg := l.Config.Profile.Repertoire
			cfg.Delta = delta
			cfg.N = n
			cfg.RNG = xrand.NewLabeled(l.Config.Seed, fmt.Sprintf("ablation-rep-%v-%d", delta, n))
			bank, err := scene.TrainCompressedModels(l.Bundle.Encoder, train, val, cfg)
			row := AblationRepertoireRow{Delta: delta, N: n}
			if err == nil {
				row.Banked = len(bank)
				var f1s []float64
				for _, b := range bank {
					f1s = append(f1s, b.ValF1)
					if b.Level > row.MaxLevel {
						row.MaxLevel = b.Level
					}
				}
				row.MeanValF1 = stats.Mean(f1s)
			}
			// A δ too strict to bank anything is a legitimate data
			// point (Banked 0), not a failure.
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render writes one row per setting.
func (r AblationRepertoireResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A2 — Algorithm 1 under (delta, N) settings")
	fmt.Fprintf(w, "%-8s %-5s %-8s %-10s %-9s\n", "delta", "N", "banked", "meanValF1", "maxLevel")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8.2f %-5d %-8d %-10.3f %-9d\n",
			row.Delta, row.N, row.Banked, row.MeanValF1, row.MaxLevel)
	}
}
