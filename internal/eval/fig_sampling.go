package eval

import (
	"fmt"
	"io"

	"anole/internal/sampling"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/xrand"
)

// Fig3Result compares random against adaptive (Thompson) scene sampling:
// normalized per-model selection counts and their Gini imbalance.
type Fig3Result struct {
	Models         int
	Random         []float64
	Adaptive       []float64
	GiniRandom     float64
	GiniAdaptive   float64
	RandomAccept   int
	AdaptiveAccept int
}

// RunFig3 reproduces Fig. 3 using the lab's repertoire and its training
// pools. kappa caps accepted samples (0 selects the paper-like 800).
func RunFig3(l *Lab, kappa int) (Fig3Result, error) {
	if kappa <= 0 {
		kappa = 800
	}
	train := l.Corpus.Frames(synth.Train)
	pools := make([]sampling.Pool, len(l.Bundle.Detectors))
	for i := range pools {
		frames := poolFramesFor(l, i, train)
		if len(frames) == 0 {
			frames = train
		}
		pools[i] = sampling.Pool{ModelIdx: i, Frames: frames}
	}
	cfg := sampling.Config{Kappa: kappa, AcceptF1: l.Config.Profile.Sampling.AcceptF1}

	cfg.RNG = xrand.NewLabeled(l.Config.Seed, "fig3-random")
	random, err := sampling.Random(l.Bundle.Detectors, pools, cfg)
	if err != nil {
		return Fig3Result{}, err
	}
	cfg.RNG = xrand.NewLabeled(l.Config.Seed, "fig3-adaptive")
	adaptive, err := sampling.Adaptive(l.Bundle.Detectors, pools, cfg)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{
		Models:         len(pools),
		Random:         random.NormalizedCounts(),
		Adaptive:       adaptive.NormalizedCounts(),
		GiniRandom:     stats.Gini(toFloats(random.Counts)),
		GiniAdaptive:   stats.Gini(toFloats(adaptive.Counts)),
		RandomAccept:   len(random.Samples),
		AdaptiveAccept: len(adaptive.Samples),
	}, nil
}

// Render writes the figure as text rows.
func (r Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 3 — sampling balance over %d compressed models (normalized |S_i|)\n", r.Models)
	fmt.Fprintf(w, "%-8s %-10s %-10s\n", "model", "random", "adaptive")
	for i := 0; i < r.Models; i++ {
		fmt.Fprintf(w, "M_%-6d %-10.3f %-10.3f\n", i+1, r.Random[i], r.Adaptive[i])
	}
	fmt.Fprintf(w, "Gini imbalance: random %.3f, adaptive %.3f (lower is more balanced)\n",
		r.GiniRandom, r.GiniAdaptive)
}

func poolFramesFor(l *Lab, modelIdx int, frames []*synth.Frame) []*synth.Frame {
	scenes := make(map[int]bool)
	for _, s := range l.Bundle.Infos[modelIdx].TrainScenes {
		scenes[s] = true
	}
	var out []*synth.Frame
	for _, f := range frames {
		if scenes[f.Scene.Index()] {
			out = append(out, f)
		}
	}
	return out
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
