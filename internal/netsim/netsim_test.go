package netsim

import (
	"testing"
	"time"

	"anole/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Transition[0][0] = 0.5 // row no longer sums to 1
	if bad.Validate() == nil {
		t.Fatal("non-stochastic matrix accepted")
	}
	bad = good
	bad.Transition[1][0] = -0.1
	if bad.Validate() == nil {
		t.Fatal("negative probability accepted")
	}
	bad = good
	bad.GoodBandwidthMBps = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestLinkStartsGood(t *testing.T) {
	l, err := NewLink(DefaultConfig(0.5), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if l.State() != Good {
		t.Fatalf("initial state %v", l.State())
	}
}

func TestTransferLatencyByState(t *testing.T) {
	cfg := DefaultConfig(1) // never leaves Good
	l, err := NewLink(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := l.Transfer(1<<20, 1<<10) // 1 MiB up
	if !ok {
		t.Fatal("good link failed transfer")
	}
	// 1 MiB at 6 MB/s ≈ 167 ms + 40 ms RTT.
	if d < 150*time.Millisecond || d > 300*time.Millisecond {
		t.Fatalf("good-state transfer %v", d)
	}
	// Force degraded and down states.
	l.state = Degraded
	d2, ok := l.Transfer(1<<20, 1<<10)
	if !ok || d2 <= d {
		t.Fatalf("degraded transfer %v should exceed good %v", d2, d)
	}
	l.state = Down
	if _, ok := l.Transfer(1, 1); ok {
		t.Fatal("down link completed a transfer")
	}
}

func TestMarkovStationaryBehavior(t *testing.T) {
	// With full stability the link never leaves Good; with zero
	// stability it spends measurable time degraded/down.
	stable, err := NewLink(DefaultConfig(1), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if stable.Step() != Good {
			t.Fatal("fully stable link left Good")
		}
	}
	churny, err := NewLink(DefaultConfig(0), xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[LinkState]int{}
	for i := 0; i < 20000; i++ {
		counts[churny.Step()]++
	}
	if counts[Degraded] == 0 || counts[Down] == 0 {
		t.Fatalf("churny link never degraded: %v", counts)
	}
	if churny.DownFraction() <= 0 || churny.DownFraction() > 0.3 {
		t.Fatalf("down fraction %v", churny.DownFraction())
	}
	// More stability → less downtime.
	mid, err := NewLink(DefaultConfig(0.8), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		mid.Step()
	}
	if mid.DownFraction() >= churny.DownFraction() {
		t.Fatalf("stability did not reduce downtime: %v vs %v",
			mid.DownFraction(), churny.DownFraction())
	}
}

func TestLinkDeterministic(t *testing.T) {
	run := func() []LinkState {
		l, err := NewLink(DefaultConfig(0.3), xrand.New(6))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]LinkState, 200)
		for i := range out {
			out[i] = l.Step()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("link not deterministic")
		}
	}
}

func TestStateString(t *testing.T) {
	if Good.String() != "good" || Degraded.String() != "degraded" || Down.String() != "down" {
		t.Fatal("state names wrong")
	}
	if LinkState(9).String() == "" {
		t.Fatal("unknown state must print")
	}
}

func TestNewLinkNilRNG(t *testing.T) {
	l, err := NewLink(DefaultConfig(0.5), nil)
	if err != nil || l == nil {
		t.Fatal("nil rng should default")
	}
}

// stationary computes the chain's stationary distribution by power
// iteration on the transition matrix.
func stationary(tr [3][3]float64) [3]float64 {
	pi := [3]float64{1, 0, 0}
	for iter := 0; iter < 10000; iter++ {
		var next [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				next[j] += pi[i] * tr[i][j]
			}
		}
		pi = next
	}
	return pi
}

// TestEmpiricalStationaryMatchesMatrix checks the simulated chain
// against the analytic stationary distribution of its configured
// matrix: over many steps the empirical state frequencies must agree
// within a sampling tolerance.
func TestEmpiricalStationaryMatchesMatrix(t *testing.T) {
	for _, stability := range []float64{0, 0.5, 0.8} {
		cfg := DefaultConfig(stability)
		want := stationary(cfg.Transition)
		l, err := NewLink(cfg, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		const steps = 200000
		var counts [3]int
		for i := 0; i < steps; i++ {
			counts[l.Step()]++
		}
		for s := 0; s < 3; s++ {
			got := float64(counts[s]) / steps
			if diff := got - want[s]; diff < -0.01 || diff > 0.01 {
				t.Errorf("stability %.1f state %v: empirical %.4f, stationary %.4f",
					stability, LinkState(s), got, want[s])
			}
		}
	}
}

// TestTransferMonotoneInPayload checks that, in each up state, transfer
// time strictly increases with payload size.
func TestTransferMonotoneInPayload(t *testing.T) {
	l, err := NewLink(DefaultConfig(0.5), xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26}
	for _, state := range []LinkState{Good, Degraded} {
		l.state = state
		prev := time.Duration(-1)
		for _, size := range sizes {
			d, ok := l.Transfer(256, size)
			if !ok {
				t.Fatalf("state %v transfer failed", state)
			}
			if d <= prev {
				t.Fatalf("state %v: %d bytes took %v, not above %v", state, size, d, prev)
			}
			prev = d
		}
		// Upload bytes count against the same budget.
		small, _ := l.Transfer(256, 1<<20)
		big, _ := l.Transfer(1<<20, 1<<20)
		if big <= small {
			t.Fatalf("state %v: upload bytes not charged (%v vs %v)", state, big, small)
		}
	}
}
