package netsim

import (
	"testing"
	"time"

	"anole/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Transition[0][0] = 0.5 // row no longer sums to 1
	if bad.Validate() == nil {
		t.Fatal("non-stochastic matrix accepted")
	}
	bad = good
	bad.Transition[1][0] = -0.1
	if bad.Validate() == nil {
		t.Fatal("negative probability accepted")
	}
	bad = good
	bad.GoodBandwidthMBps = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestLinkStartsGood(t *testing.T) {
	l, err := NewLink(DefaultConfig(0.5), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if l.State() != Good {
		t.Fatalf("initial state %v", l.State())
	}
}

func TestTransferLatencyByState(t *testing.T) {
	cfg := DefaultConfig(1) // never leaves Good
	l, err := NewLink(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := l.Transfer(1<<20, 1<<10) // 1 MiB up
	if !ok {
		t.Fatal("good link failed transfer")
	}
	// 1 MiB at 6 MB/s ≈ 167 ms + 40 ms RTT.
	if d < 150*time.Millisecond || d > 300*time.Millisecond {
		t.Fatalf("good-state transfer %v", d)
	}
	// Force degraded and down states.
	l.state = Degraded
	d2, ok := l.Transfer(1<<20, 1<<10)
	if !ok || d2 <= d {
		t.Fatalf("degraded transfer %v should exceed good %v", d2, d)
	}
	l.state = Down
	if _, ok := l.Transfer(1, 1); ok {
		t.Fatal("down link completed a transfer")
	}
}

func TestMarkovStationaryBehavior(t *testing.T) {
	// With full stability the link never leaves Good; with zero
	// stability it spends measurable time degraded/down.
	stable, err := NewLink(DefaultConfig(1), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if stable.Step() != Good {
			t.Fatal("fully stable link left Good")
		}
	}
	churny, err := NewLink(DefaultConfig(0), xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[LinkState]int{}
	for i := 0; i < 20000; i++ {
		counts[churny.Step()]++
	}
	if counts[Degraded] == 0 || counts[Down] == 0 {
		t.Fatalf("churny link never degraded: %v", counts)
	}
	if churny.DownFraction() <= 0 || churny.DownFraction() > 0.3 {
		t.Fatalf("down fraction %v", churny.DownFraction())
	}
	// More stability → less downtime.
	mid, err := NewLink(DefaultConfig(0.8), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		mid.Step()
	}
	if mid.DownFraction() >= churny.DownFraction() {
		t.Fatalf("stability did not reduce downtime: %v vs %v",
			mid.DownFraction(), churny.DownFraction())
	}
}

func TestLinkDeterministic(t *testing.T) {
	run := func() []LinkState {
		l, err := NewLink(DefaultConfig(0.3), xrand.New(6))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]LinkState, 200)
		for i := range out {
			out[i] = l.Step()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("link not deterministic")
		}
	}
}

func TestStateString(t *testing.T) {
	if Good.String() != "good" || Degraded.String() != "degraded" || Down.String() != "down" {
		t.Fatal("state names wrong")
	}
	if LinkState(9).String() == "" {
		t.Fatal("unknown state must print")
	}
}

func TestNewLinkNilRNG(t *testing.T) {
	l, err := NewLink(DefaultConfig(0.5), nil)
	if err != nil || l == nil {
		t.Fatal("nil rng should default")
	}
}
