// Package netsim simulates the unstable device↔cloud wireless link that
// motivates Anole (§I): offloading inference to a server gives access to
// a big model, but a moving device's connection degrades and drops, so
// per-frame latency becomes unpredictable. The link is a three-state
// Markov chain (Good / Degraded / Down) with per-state bandwidth and
// round-trip time; transfers sample the chain per frame.
package netsim

import (
	"fmt"
	"time"

	"anole/internal/xrand"
)

// LinkState is the instantaneous link quality.
type LinkState uint8

// Link states.
const (
	Good LinkState = iota
	Degraded
	Down
)

func (s LinkState) String() string {
	switch s {
	case Good:
		return "good"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes a Link.
type Config struct {
	// GoodBandwidthMBps / GoodRTT describe the healthy link;
	// DegradedBandwidthMBps / DegradedRTT the impaired one.
	GoodBandwidthMBps     float64
	GoodRTT               time.Duration
	DegradedBandwidthMBps float64
	DegradedRTT           time.Duration
	// Transition[i][j] is the per-step probability of moving from
	// state i to state j; rows must sum to 1.
	Transition [3][3]float64
}

// DefaultConfig models a vehicular LTE link: mostly good, occasionally
// degraded, with outage bursts. stability in [0,1] scales how sticky the
// Good state is (1 = never leaves Good, 0 = the default churn).
func DefaultConfig(stability float64) Config {
	if stability < 0 {
		stability = 0
	}
	if stability > 1 {
		stability = 1
	}
	leaveGood := 0.08 * (1 - stability)
	return Config{
		GoodBandwidthMBps:     6,
		GoodRTT:               40 * time.Millisecond,
		DegradedBandwidthMBps: 0.6,
		DegradedRTT:           180 * time.Millisecond,
		Transition: [3][3]float64{
			{1 - leaveGood, leaveGood * 0.75, leaveGood * 0.25},
			{0.35, 0.55, 0.10},
			{0.25, 0.25, 0.50},
		},
	}
}

// Validate checks that the transition matrix is stochastic.
func (c Config) Validate() error {
	for i, row := range c.Transition {
		var sum float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("netsim: negative transition probability in row %d", i)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("netsim: transition row %d sums to %v", i, sum)
		}
	}
	if c.GoodBandwidthMBps <= 0 || c.DegradedBandwidthMBps <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	return nil
}

// Medium is the link surface a transfer simulator consumes: the
// instantaneous state, the per-frame Markov step, and the cost of one
// transfer at the current state. Link implements it directly; fault
// injectors (internal/faults) wrap one Medium in another, so everything
// above the link — prefetch.LinkFetcher in particular — works unchanged
// over a faulty link.
type Medium interface {
	State() LinkState
	Step() LinkState
	Transfer(upBytes, downBytes int64) (time.Duration, bool)
}

// Link is the stateful Markov link. It is not safe for concurrent use.
type Link struct {
	cfg   Config
	rng   *xrand.RNG
	state LinkState

	steps    int
	downtime int
}

var _ Medium = (*Link)(nil)

// NewLink creates a link starting in the Good state.
func NewLink(cfg Config, rng *xrand.RNG) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	return &Link{cfg: cfg, rng: rng, state: Good}, nil
}

// State returns the current link state.
func (l *Link) State() LinkState { return l.state }

// Step advances the Markov chain one frame interval and returns the new
// state.
func (l *Link) Step() LinkState {
	row := l.cfg.Transition[l.state]
	l.state = LinkState(l.rng.Categorical(row[:]))
	l.steps++
	if l.state == Down {
		l.downtime++
	}
	return l.state
}

// Transfer returns the round-trip time of moving `bytes` up and
// `downBytes` down at the current state, and ok=false when the link is
// down (the transfer fails; the caller decides between dropping the frame
// and falling back).
func (l *Link) Transfer(upBytes, downBytes int64) (time.Duration, bool) {
	var bw float64
	var rtt time.Duration
	switch l.state {
	case Good:
		bw, rtt = l.cfg.GoodBandwidthMBps, l.cfg.GoodRTT
	case Degraded:
		bw, rtt = l.cfg.DegradedBandwidthMBps, l.cfg.DegradedRTT
	default:
		return 0, false
	}
	seconds := float64(upBytes+downBytes) / (bw * (1 << 20))
	return rtt + time.Duration(seconds*float64(time.Second)), true
}

// DownFraction reports the fraction of steps spent in the Down state.
func (l *Link) DownFraction() float64 {
	if l.steps == 0 {
		return 0
	}
	return float64(l.downtime) / float64(l.steps)
}
