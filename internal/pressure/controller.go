package pressure

import "time"

// Rung is one step of the shed ladder. The ladder escalates under
// sustained deadline misses and relaxes under sustained headroom:
//
//	ShedNone      — full pipeline, no degradation
//	ShedPrefetch  — serve normally but suppress background prefetch plans
//	ShedDowngrade — serve the cheapest resident model, no demand fetches
//	ShedDrop      — drop frames with a counted verdict (probe frames
//	                still serve so the controller keeps observing)
type Rung int

const (
	ShedNone Rung = iota
	ShedPrefetch
	ShedDowngrade
	ShedDrop
)

func (r Rung) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedPrefetch:
		return "prefetch"
	case ShedDowngrade:
		return "downgrade"
	case ShedDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// ControllerConfig tunes the deadline controller. Zero values select
// the documented defaults.
type ControllerConfig struct {
	// Target is the per-frame deadline: a tick whose worst served
	// frame exceeds it counts as congested. Required (the controller
	// is inert when Target <= 0).
	Target time.Duration
	// EscalateTicks is how many consecutive congested ticks must
	// accumulate before the ladder steps up one rung. Default: 4.
	EscalateTicks int
	// RelaxTicks is how many consecutive uncongested ticks must
	// accumulate before the ladder steps down one rung. Default: 8.
	RelaxTicks int
}

func (c *ControllerConfig) withDefaults() ControllerConfig {
	out := *c
	if out.EscalateTicks <= 0 {
		out.EscalateTicks = 4
	}
	if out.RelaxTicks <= 0 {
		out.RelaxTicks = 8
	}
	return out
}

// Controller is a PID-free queue-delay controller in the CoDel mold:
// instead of reacting to instantaneous queue length it watches the
// sojourn time (worst served-frame latency per tick) against a target
// and only acts when the excess *persists* — one slow tick is noise,
// EscalateTicks consecutive slow ticks are standing congestion. The
// output is a shed-ladder rung, monotone in both directions one step
// at a time so the degradation the fleet sees is gradual and
// reversible.
//
// The controller is driven from the single-threaded tick barrier of
// the event loop and needs no internal locking. A nil *Controller is
// inert: Rung is always ShedNone.
type Controller struct {
	cfg   ControllerConfig
	rung  Rung
	above int // consecutive congested ticks
	below int // consecutive uncongested ticks
}

// NewController builds a Controller; returns nil (inert) when
// cfg.Target <= 0.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Target <= 0 {
		return nil
	}
	return &Controller{cfg: cfg.withDefaults()}
}

// Rung returns the ladder rung to apply to the next tick. Nil-safe.
func (c *Controller) Rung() Rung {
	if c == nil {
		return ShedNone
	}
	return c.rung
}

// Target returns the configured per-frame deadline (0 when inert).
func (c *Controller) Target() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Target
}

// ObserveTick folds one tick's worst served-frame sojourn into the
// controller and returns the rung for the next tick. served reports
// whether any frame actually completed this tick: ticks with no
// served sample (everything dropped or quarantined) count as
// congested — the absence of evidence that latency recovered must not
// relax the ladder, or a fully-dropping fleet would flap between
// ShedDrop and serving. Nil-safe.
func (c *Controller) ObserveTick(worst time.Duration, served bool) Rung {
	if c == nil {
		return ShedNone
	}
	congested := !served || worst > c.cfg.Target
	if congested {
		c.above++
		c.below = 0
		if c.above >= c.cfg.EscalateTicks {
			c.above = 0
			if c.rung < ShedDrop {
				c.rung++
			}
		}
	} else {
		c.below++
		c.above = 0
		if c.below >= c.cfg.RelaxTicks {
			c.below = 0
			if c.rung > ShedNone {
				c.rung--
			}
		}
	}
	return c.rung
}

// Sojourn returns worst/target as a unitless ratio for the Monitor's
// Sample (0 when inert or target unset).
func (c *Controller) Sojourn(worst time.Duration) float64 {
	if c == nil || c.cfg.Target <= 0 {
		return 0
	}
	return float64(worst) / float64(c.cfg.Target)
}
