package pressure

import (
	"bytes"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Generation: 7,
		Markov: &MarkovState{
			N:      3,
			Alpha:  0.5,
			Obs:    42,
			Counts: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8},
			RowSum: []float64{3, 12, 21},
		},
		Cache: []CacheEntry{
			{Key: "M_1", Freq: 9},
			{Key: "M_4", Freq: 2},
		},
		Drift: []DriftWindow{
			{Stream: 0, Count: 5, SumEntropy: 1.25, SumNovelty: 0.5,
				Probes: 2, Disagreed: 1, Cooldown: 3, Seen: 100, Flagged: 4, Emitted: 1},
			{Stream: 1, Seen: 7},
		},
		Fleet: []string{"nano", "tx2"},
	}
}

func encode(t testing.TB, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	got, err := ReadCheckpoint(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointRoundTripNoMarkov(t *testing.T) {
	want := &Checkpoint{Generation: 1}
	got, err := ReadCheckpoint(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.Markov != nil {
		t.Fatal("markov materialized from nothing")
	}
	if got.Generation != 1 || len(got.Cache) != 0 || len(got.Drift) != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteCheckpointRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	cases := map[string]*Checkpoint{
		"nil":             nil,
		"markov geometry": {Markov: &MarkovState{N: 2, Counts: []float64{1}, RowSum: []float64{1, 1}}},
		"markov dim":      {Markov: &MarkovState{N: -1}},
		"empty key":       {Cache: []CacheEntry{{Key: "", Freq: 1}}},
		"negative freq":   {Cache: []CacheEntry{{Key: "m", Freq: -1}}},
		"negative drift":  {Drift: []DriftWindow{{Stream: -1}}},
		"empty class":     {Fleet: []string{"nano", ""}},
	}
	for name, c := range cases {
		buf.Reset()
		if err := WriteCheckpoint(&buf, c); err == nil {
			t.Errorf("%s: WriteCheckpoint accepted malformed checkpoint", name)
		}
	}
}

func TestReadCheckpointRejectsDamage(t *testing.T) {
	blob := encode(t, sampleCheckpoint())
	damage := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"truncated":   blob[:len(blob)/2],
		"missing crc": blob[:len(blob)-2],
		"bit flip": func() []byte {
			out := append([]byte(nil), blob...)
			out[len(out)/2] ^= 0x01
			return out
		}(),
		"version skew": func() []byte {
			out := append([]byte(nil), blob...)
			out[4] = 99
			return out
		}(),
		"trailing garbage": append(append([]byte(nil), blob...), 0xFF),
	}
	for name, b := range damage {
		if _, err := ReadCheckpoint(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadCheckpoint accepted damaged input", name)
		}
	}
}

// TestReadCheckpointVersion1 hand-assembles a minimal version-1 stream
// (no fleet section) and checks it still reads: Fleet comes back nil,
// so the core-level layout guard lets it restore anywhere.
func TestReadCheckpointVersion1(t *testing.T) {
	var body bytes.Buffer
	if err := binWrite(&body,
		uint16(1), // version 1: fleet section absent
		uint64(5), // generation
		uint8(0),  // no markov
		uint32(1), // one cache entry
		uint16(3)); err != nil {
		t.Fatal(err)
	}
	body.WriteString("M_2")
	if err := binWrite(&body,
		uint32(4),               // freq
		uint32(0)); err != nil { // no drift windows
		t.Fatal(err)
	}
	var blob bytes.Buffer
	blob.WriteString(checkpointMagic)
	blob.Write(body.Bytes())
	if err := binWrite(&blob, crc32.ChecksumIEEE(body.Bytes())); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCheckpoint(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatalf("version-1 checkpoint unreadable: %v", err)
	}
	if got.Generation != 5 || len(got.Cache) != 1 || got.Cache[0].Key != "M_2" {
		t.Fatalf("version-1 decode mismatch: %+v", got)
	}
	if got.Fleet != nil {
		t.Fatalf("version-1 checkpoint grew a fleet section: %v", got.Fleet)
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "anole.ckpt")
	want := sampleCheckpoint()
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("save/load mismatch:\n got %+v\nwant %+v", got, want)
	}
	// A failed save must not leave temp litter next to the checkpoint.
	if err := SaveCheckpoint(path, nil); err == nil {
		t.Fatal("SaveCheckpoint accepted a nil checkpoint")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter after failed save: %v", entries)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("LoadCheckpoint read a missing file")
	}
}

// FuzzReadCheckpoint asserts the decoder's contract under arbitrary
// damage: it may reject, but it must never panic, and whatever it does
// accept must be internally consistent — finite, within bounds, and
// bit-for-bit re-encodable (no partial restore).
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(encode(f, sampleCheckpoint()))
	f.Add(encode(f, &Checkpoint{}))
	f.Add(encode(f, &Checkpoint{
		Generation: math.MaxUint64,
		Markov:     &MarkovState{N: 1, Counts: []float64{0}, RowSum: []float64{0}},
		Cache:      []CacheEntry{{Key: "k", Freq: 0}},
	}))
	blob := encode(f, sampleCheckpoint())
	f.Add(blob[:len(blob)-5])
	f.Add(append([]byte("ANLC"), 1, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if c != nil {
				t.Fatal("error with partial checkpoint returned")
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, c); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		// Accepted version-1 inputs re-encode at the current version
		// (fleet section appended), so byte equality only holds for
		// current-version inputs; older ones get the weaker idempotence
		// check below.
		if len(data) >= 6 && data[4] == checkpointVersion && data[5] == 0 &&
			!bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("re-encode differs from accepted input:\n got %x\nwant %x", buf.Bytes(), data)
		}
		c2, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint unreadable: %v", err)
		}
		if !reflect.DeepEqual(c2, c) {
			t.Fatalf("decode∘encode not idempotent:\n got %+v\nwant %+v", c2, c)
		}
	})
}
