package pressure

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Generation: 7,
		Markov: &MarkovState{
			N:      3,
			Alpha:  0.5,
			Obs:    42,
			Counts: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8},
			RowSum: []float64{3, 12, 21},
		},
		Cache: []CacheEntry{
			{Key: "M_1", Freq: 9},
			{Key: "M_4", Freq: 2},
		},
		Drift: []DriftWindow{
			{Stream: 0, Count: 5, SumEntropy: 1.25, SumNovelty: 0.5,
				Probes: 2, Disagreed: 1, Cooldown: 3, Seen: 100, Flagged: 4, Emitted: 1},
			{Stream: 1, Seen: 7},
		},
	}
}

func encode(t testing.TB, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	got, err := ReadCheckpoint(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointRoundTripNoMarkov(t *testing.T) {
	want := &Checkpoint{Generation: 1}
	got, err := ReadCheckpoint(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.Markov != nil {
		t.Fatal("markov materialized from nothing")
	}
	if got.Generation != 1 || len(got.Cache) != 0 || len(got.Drift) != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteCheckpointRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	cases := map[string]*Checkpoint{
		"nil":             nil,
		"markov geometry": {Markov: &MarkovState{N: 2, Counts: []float64{1}, RowSum: []float64{1, 1}}},
		"markov dim":      {Markov: &MarkovState{N: -1}},
		"empty key":       {Cache: []CacheEntry{{Key: "", Freq: 1}}},
		"negative freq":   {Cache: []CacheEntry{{Key: "m", Freq: -1}}},
		"negative drift":  {Drift: []DriftWindow{{Stream: -1}}},
	}
	for name, c := range cases {
		buf.Reset()
		if err := WriteCheckpoint(&buf, c); err == nil {
			t.Errorf("%s: WriteCheckpoint accepted malformed checkpoint", name)
		}
	}
}

func TestReadCheckpointRejectsDamage(t *testing.T) {
	blob := encode(t, sampleCheckpoint())
	damage := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), blob[4:]...),
		"truncated":   blob[:len(blob)/2],
		"missing crc": blob[:len(blob)-2],
		"bit flip": func() []byte {
			out := append([]byte(nil), blob...)
			out[len(out)/2] ^= 0x01
			return out
		}(),
		"version skew": func() []byte {
			out := append([]byte(nil), blob...)
			out[4] = 99
			return out
		}(),
		"trailing garbage": append(append([]byte(nil), blob...), 0xFF),
	}
	for name, b := range damage {
		if _, err := ReadCheckpoint(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadCheckpoint accepted damaged input", name)
		}
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "anole.ckpt")
	want := sampleCheckpoint()
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("save/load mismatch:\n got %+v\nwant %+v", got, want)
	}
	// A failed save must not leave temp litter next to the checkpoint.
	if err := SaveCheckpoint(path, nil); err == nil {
		t.Fatal("SaveCheckpoint accepted a nil checkpoint")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter after failed save: %v", entries)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("LoadCheckpoint read a missing file")
	}
}

// FuzzReadCheckpoint asserts the decoder's contract under arbitrary
// damage: it may reject, but it must never panic, and whatever it does
// accept must be internally consistent — finite, within bounds, and
// bit-for-bit re-encodable (no partial restore).
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(encode(f, sampleCheckpoint()))
	f.Add(encode(f, &Checkpoint{}))
	f.Add(encode(f, &Checkpoint{
		Generation: math.MaxUint64,
		Markov:     &MarkovState{N: 1, Counts: []float64{0}, RowSum: []float64{0}},
		Cache:      []CacheEntry{{Key: "k", Freq: 0}},
	}))
	blob := encode(f, sampleCheckpoint())
	f.Add(blob[:len(blob)-5])
	f.Add(append([]byte("ANLC"), 1, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if c != nil {
				t.Fatal("error with partial checkpoint returned")
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, c); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("re-encode differs from accepted input:\n got %x\nwant %x", buf.Bytes(), data)
		}
	})
}
