package pressure

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Checkpoint format (all little-endian):
//
//	magic      [4]byte "ANLC"
//	version    uint16 (2)
//	generation uint64
//	hasMarkov  uint8 (0|1)
//	  n        uint32            (models; rows == cols)
//	  alpha    float64           (Laplace smoothing, recorded for audit)
//	  obs      uint64            (observed transitions)
//	  counts   n×n float64
//	  rowSum   n float64
//	cacheN     uint32
//	  entries  cacheN × (keyLen uint16, key bytes, freq uint32)
//	driftN     uint32
//	  windows  driftN × (stream uint32, count uint32, sumEntropy float64,
//	           sumNovelty float64, probes uint32, disagreed float64,
//	           cooldown uint32, seen uint64, flagged uint64, emitted uint64)
//	fleetN     uint32                              (version ≥ 2 only)
//	  classes  fleetN × (classLen uint16, class bytes)
//	crc32      uint32 (IEEE, over everything after the magic)
//
// This is the warm state worth surviving a process death: the Markov
// transition counts (minutes of scene history), the cache residency
// manifest with LFU frequencies (model bytes persist on device flash,
// so residency can be re-pinned without link fetches), the fleet
// generation pin, and the drift-detector windows. Everything else —
// model weights (re-fetched by digest from the repo), per-frame
// scratch, hysteresis streaks, drift exemplar frames and centroids —
// is deliberately not checkpointed: it is either re-derivable, owned
// by the repository, or too short-lived to matter across a restart.
//
// Version 2 appends the fleet section: the per-stream device class the
// checkpoint was captured on, so a restore onto a different fleet
// layout (where stream indices mean different hardware) is refused.
// Version-1 files (no fleet section) remain readable and restore
// anywhere.
const (
	checkpointMagic   = "ANLC"
	checkpointVersion = 2
	maxMarkovModels   = 1 << 12
	maxCacheEntries   = 1 << 16
	maxCacheKeyLen    = 1 << 10
	maxDriftWindows   = 1 << 16
	maxFleetStreams   = 1 << 16
)

// Checkpoint is the plain, package-neutral snapshot of warm runtime
// state. core, prefetch, and adapt convert their internal state to and
// from these fields; pressure itself only encodes and decodes them.
type Checkpoint struct {
	// Generation is the fleet bundle generation being served.
	Generation uint64
	// Markov is the scene-transition model state (nil if prefetch is
	// disabled).
	Markov *MarkovState
	// Cache is the residency manifest: which models were resident and
	// how warm each was.
	Cache []CacheEntry
	// Drift holds one in-progress drift-detector window per stream.
	Drift []DriftWindow
	// Fleet is the per-stream device class the checkpoint was captured
	// on (nil for single-device runs and version-1 files). A restore
	// onto a different fleet layout is refused by the caller.
	Fleet []string
}

// MarkovState mirrors prefetch.Markov's counts matrix.
type MarkovState struct {
	N      int
	Alpha  float64
	Obs    int64
	Counts []float64 // row-major N×N
	RowSum []float64 // length N
}

// CacheEntry is one resident model in the manifest.
type CacheEntry struct {
	Key  string
	Freq int // LFU perfect-history frequency
}

// DriftWindow is one stream's in-progress drift-detection window.
type DriftWindow struct {
	Stream     int
	Count      int
	SumEntropy float64
	SumNovelty float64
	Probes     int
	Disagreed  float64
	Cooldown   int
	Seen       int64
	Flagged    int64
	Emitted    int64
}

func binWrite(w io.Writer, vs ...any) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func binRead(r io.Reader, vs ...any) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// WriteCheckpoint serializes c.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("pressure: nil checkpoint")
	}
	if len(c.Cache) > maxCacheEntries {
		return fmt.Errorf("pressure: %d cache entries exceed limit %d", len(c.Cache), maxCacheEntries)
	}
	if len(c.Drift) > maxDriftWindows {
		return fmt.Errorf("pressure: %d drift windows exceed limit %d", len(c.Drift), maxDriftWindows)
	}
	if len(c.Fleet) > maxFleetStreams {
		return fmt.Errorf("pressure: %d fleet streams exceed limit %d", len(c.Fleet), maxFleetStreams)
	}
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return fmt.Errorf("pressure: write magic: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if err := binWrite(mw, uint16(checkpointVersion), c.Generation); err != nil {
		return fmt.Errorf("pressure: write header: %w", err)
	}
	if m := c.Markov; m != nil {
		if m.N <= 0 || m.N > maxMarkovModels {
			return fmt.Errorf("pressure: implausible markov dimension %d", m.N)
		}
		if len(m.Counts) != m.N*m.N || len(m.RowSum) != m.N {
			return fmt.Errorf("pressure: markov geometry mismatch: n=%d counts=%d rowSum=%d",
				m.N, len(m.Counts), len(m.RowSum))
		}
		if err := binWrite(mw, uint8(1), uint32(m.N), m.Alpha, uint64(m.Obs), m.Counts, m.RowSum); err != nil {
			return fmt.Errorf("pressure: write markov: %w", err)
		}
	} else {
		if err := binWrite(mw, uint8(0)); err != nil {
			return fmt.Errorf("pressure: write markov flag: %w", err)
		}
	}
	if err := binWrite(mw, uint32(len(c.Cache))); err != nil {
		return fmt.Errorf("pressure: write cache count: %w", err)
	}
	for i, e := range c.Cache {
		if len(e.Key) == 0 || len(e.Key) > maxCacheKeyLen {
			return fmt.Errorf("pressure: cache entry %d key length %d out of range", i, len(e.Key))
		}
		if e.Freq < 0 {
			return fmt.Errorf("pressure: cache entry %d negative freq %d", i, e.Freq)
		}
		if err := binWrite(mw, uint16(len(e.Key))); err != nil {
			return fmt.Errorf("pressure: write cache entry %d: %w", i, err)
		}
		if _, err := mw.Write([]byte(e.Key)); err != nil {
			return fmt.Errorf("pressure: write cache entry %d: %w", i, err)
		}
		if err := binWrite(mw, uint32(e.Freq)); err != nil {
			return fmt.Errorf("pressure: write cache entry %d: %w", i, err)
		}
	}
	if err := binWrite(mw, uint32(len(c.Drift))); err != nil {
		return fmt.Errorf("pressure: write drift count: %w", err)
	}
	for i, d := range c.Drift {
		if d.Stream < 0 || d.Count < 0 || d.Probes < 0 || d.Cooldown < 0 {
			return fmt.Errorf("pressure: drift window %d has negative fields", i)
		}
		if err := binWrite(mw,
			uint32(d.Stream), uint32(d.Count), d.SumEntropy, d.SumNovelty,
			uint32(d.Probes), d.Disagreed, uint32(d.Cooldown),
			uint64(d.Seen), uint64(d.Flagged), uint64(d.Emitted)); err != nil {
			return fmt.Errorf("pressure: write drift window %d: %w", i, err)
		}
	}
	if err := binWrite(mw, uint32(len(c.Fleet))); err != nil {
		return fmt.Errorf("pressure: write fleet count: %w", err)
	}
	for i, class := range c.Fleet {
		if len(class) == 0 || len(class) > maxCacheKeyLen {
			return fmt.Errorf("pressure: fleet stream %d class length %d out of range", i, len(class))
		}
		if err := binWrite(mw, uint16(len(class))); err != nil {
			return fmt.Errorf("pressure: write fleet stream %d: %w", i, err)
		}
		if _, err := mw.Write([]byte(class)); err != nil {
			return fmt.Errorf("pressure: write fleet stream %d: %w", i, err)
		}
	}
	if err := binWrite(w, crc.Sum32()); err != nil {
		return fmt.Errorf("pressure: write checksum: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint,
// verifying version, plausibility bounds, and the trailing CRC.
// Any malformed input — truncation, bit flips, version skew — yields
// an error and no partial state; callers treat every error as "cold
// start".
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("pressure: read magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("pressure: bad checkpoint magic %q", magic)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	var (
		version uint16
		gen     uint64
	)
	if err := binRead(tr, &version, &gen); err != nil {
		return nil, fmt.Errorf("pressure: read header: %w", err)
	}
	if version != 1 && version != checkpointVersion {
		return nil, fmt.Errorf("pressure: unsupported checkpoint version %d", version)
	}
	c := &Checkpoint{Generation: gen}
	var hasMarkov uint8
	if err := binRead(tr, &hasMarkov); err != nil {
		return nil, fmt.Errorf("pressure: read markov flag: %w", err)
	}
	switch hasMarkov {
	case 0:
	case 1:
		var (
			n     uint32
			alpha float64
			obs   uint64
		)
		if err := binRead(tr, &n, &alpha, &obs); err != nil {
			return nil, fmt.Errorf("pressure: read markov header: %w", err)
		}
		if n == 0 || n > maxMarkovModels {
			return nil, fmt.Errorf("pressure: implausible markov dimension %d", n)
		}
		if !plausibleFinite(alpha) || alpha < 0 {
			return nil, fmt.Errorf("pressure: implausible markov alpha %v", alpha)
		}
		m := &MarkovState{
			N:      int(n),
			Alpha:  alpha,
			Obs:    int64(obs),
			Counts: make([]float64, int(n)*int(n)),
			RowSum: make([]float64, n),
		}
		if err := binRead(tr, m.Counts, m.RowSum); err != nil {
			return nil, fmt.Errorf("pressure: read markov matrix: %w", err)
		}
		for _, v := range m.Counts {
			if !plausibleFinite(v) || v < 0 {
				return nil, fmt.Errorf("pressure: implausible markov count %v", v)
			}
		}
		for _, v := range m.RowSum {
			if !plausibleFinite(v) || v < 0 {
				return nil, fmt.Errorf("pressure: implausible markov row sum %v", v)
			}
		}
		c.Markov = m
	default:
		return nil, fmt.Errorf("pressure: bad markov flag %d", hasMarkov)
	}
	var cacheN uint32
	if err := binRead(tr, &cacheN); err != nil {
		return nil, fmt.Errorf("pressure: read cache count: %w", err)
	}
	if cacheN > maxCacheEntries {
		return nil, fmt.Errorf("pressure: implausible cache entry count %d", cacheN)
	}
	c.Cache = make([]CacheEntry, 0, cacheN)
	for i := 0; i < int(cacheN); i++ {
		var keyLen uint16
		if err := binRead(tr, &keyLen); err != nil {
			return nil, fmt.Errorf("pressure: read cache entry %d: %w", i, err)
		}
		if keyLen == 0 || keyLen > maxCacheKeyLen {
			return nil, fmt.Errorf("pressure: cache entry %d implausible key length %d", i, keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(tr, key); err != nil {
			return nil, fmt.Errorf("pressure: read cache entry %d key: %w", i, err)
		}
		var freq uint32
		if err := binRead(tr, &freq); err != nil {
			return nil, fmt.Errorf("pressure: read cache entry %d freq: %w", i, err)
		}
		c.Cache = append(c.Cache, CacheEntry{Key: string(key), Freq: int(freq)})
	}
	var driftN uint32
	if err := binRead(tr, &driftN); err != nil {
		return nil, fmt.Errorf("pressure: read drift count: %w", err)
	}
	if driftN > maxDriftWindows {
		return nil, fmt.Errorf("pressure: implausible drift window count %d", driftN)
	}
	c.Drift = make([]DriftWindow, 0, driftN)
	for i := 0; i < int(driftN); i++ {
		var (
			stream, count, probes, cooldown uint32
			sumE, sumN, disagreed           float64
			seen, flagged, emitted          uint64
		)
		if err := binRead(tr, &stream, &count, &sumE, &sumN, &probes, &disagreed, &cooldown,
			&seen, &flagged, &emitted); err != nil {
			return nil, fmt.Errorf("pressure: read drift window %d: %w", i, err)
		}
		if !plausibleFinite(sumE) || !plausibleFinite(sumN) || !plausibleFinite(disagreed) {
			return nil, fmt.Errorf("pressure: drift window %d has non-finite sums", i)
		}
		c.Drift = append(c.Drift, DriftWindow{
			Stream:     int(stream),
			Count:      int(count),
			SumEntropy: sumE,
			SumNovelty: sumN,
			Probes:     int(probes),
			Disagreed:  disagreed,
			Cooldown:   int(cooldown),
			Seen:       int64(seen),
			Flagged:    int64(flagged),
			Emitted:    int64(emitted),
		})
	}
	if version >= 2 {
		var fleetN uint32
		if err := binRead(tr, &fleetN); err != nil {
			return nil, fmt.Errorf("pressure: read fleet count: %w", err)
		}
		if fleetN > maxFleetStreams {
			return nil, fmt.Errorf("pressure: implausible fleet stream count %d", fleetN)
		}
		if fleetN > 0 {
			c.Fleet = make([]string, 0, fleetN)
			for i := 0; i < int(fleetN); i++ {
				var classLen uint16
				if err := binRead(tr, &classLen); err != nil {
					return nil, fmt.Errorf("pressure: read fleet stream %d: %w", i, err)
				}
				if classLen == 0 || classLen > maxCacheKeyLen {
					return nil, fmt.Errorf("pressure: fleet stream %d implausible class length %d", i, classLen)
				}
				class := make([]byte, classLen)
				if _, err := io.ReadFull(tr, class); err != nil {
					return nil, fmt.Errorf("pressure: read fleet stream %d class: %w", i, err)
				}
				c.Fleet = append(c.Fleet, string(class))
			}
		}
	}
	wantCRC := crc.Sum32()
	var gotCRC uint32
	if err := binRead(br, &gotCRC); err != nil {
		return nil, fmt.Errorf("pressure: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("pressure: checkpoint checksum mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}
	// Trailing garbage means the file is not what we wrote.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("pressure: trailing data after checkpoint")
	}
	return c, nil
}

func plausibleFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// SaveCheckpoint writes c to path atomically (temp file + rename in
// the destination directory), so a crash mid-write leaves either the
// previous checkpoint or none — never a torn file.
func SaveCheckpoint(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("pressure: create checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteCheckpoint(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pressure: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pressure: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("pressure: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from path. Every failure mode —
// missing file, truncation, corruption, version skew — returns an
// error; the caller's fallback is a cold start.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pressure: open checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
