package pressure

import "sync"

// WatchdogConfig tunes the per-stream stall watchdog. Zero values
// select the documented defaults.
type WatchdogConfig struct {
	// StallTicks is how many consecutive ticks a stream may go without
	// completing a frame (served or downgraded verdict) before it is
	// quarantined. Default: 32.
	StallTicks int
	// QuarantineTicks is how long a quarantined stream's frames are
	// disposed without processing before the stream is probed again.
	// Default: 16.
	QuarantineTicks int
}

func (c *WatchdogConfig) withDefaults() WatchdogConfig {
	out := *c
	if out.StallTicks <= 0 {
		out.StallTicks = 32
	}
	if out.QuarantineTicks <= 0 {
		out.QuarantineTicks = 16
	}
	return out
}

// Watchdog tracks per-stream liveness across ticks and quarantines
// streams that stop completing frames — either because their frames
// keep erroring (e.g. a cold-start stream whose model repository is
// unreachable) or because no frame has produced a terminal served
// verdict for StallTicks consecutive ticks. A quarantined stream's
// frames are disposed immediately with a quarantined verdict, so one
// dead stream never blocks the tick barrier for the rest of the
// fleet; after QuarantineTicks the stream is released and its next
// frame probes the full pipeline again.
//
// Methods are safe for concurrent use (worker-pool ticks report
// progress from multiple goroutines). A nil *Watchdog is inert.
type Watchdog struct {
	cfg WatchdogConfig

	mu      sync.Mutex
	stalled []int // consecutive no-progress ticks per stream
	quar    []int // remaining quarantine ticks per stream (0 = live)

	quarantines int // total quarantine entries (for stats)
}

// NewWatchdog builds a Watchdog for n streams.
func NewWatchdog(n int, cfg WatchdogConfig) *Watchdog {
	if n <= 0 {
		return nil
	}
	return &Watchdog{
		cfg:     cfg.withDefaults(),
		stalled: make([]int, n),
		quar:    make([]int, n),
	}
}

// Quarantined reports whether stream i is currently quarantined.
// Nil-safe.
func (w *Watchdog) Quarantined(i int) bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return i >= 0 && i < len(w.quar) && w.quar[i] > 0
}

// Quarantine forces stream i into quarantine immediately (used when a
// frame errors). Returns true if this call transitioned the stream
// from live to quarantined. Nil-safe.
func (w *Watchdog) Quarantine(i int) bool {
	if w == nil || i < 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if i >= len(w.quar) || w.quar[i] > 0 {
		return false
	}
	w.quar[i] = w.cfg.QuarantineTicks
	w.stalled[i] = 0
	w.quarantines++
	return true
}

// ObserveTick folds one tick's per-stream progress into the watchdog.
// progress[i] must be true when stream i completed a frame this tick
// (served or downgraded verdict); streams with no frame this tick
// (inactive, shed by fleet policy, or already quarantined) must be
// reported false via active[i]=false so they neither accrue stall
// credit nor reset it. Returns the streams newly quarantined this
// tick. Nil-safe.
func (w *Watchdog) ObserveTick(active, progress []bool) []int {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var newly []int
	for i := range w.quar {
		if w.quar[i] > 0 {
			w.quar[i]--
			continue
		}
		if i >= len(active) || !active[i] {
			continue
		}
		if i < len(progress) && progress[i] {
			w.stalled[i] = 0
			continue
		}
		w.stalled[i]++
		if w.stalled[i] >= w.cfg.StallTicks {
			w.quar[i] = w.cfg.QuarantineTicks
			w.stalled[i] = 0
			w.quarantines++
			newly = append(newly, i)
		}
	}
	return newly
}

// Quarantines returns the total number of quarantine entries so far.
// Nil-safe.
func (w *Watchdog) Quarantines() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.quarantines
}
