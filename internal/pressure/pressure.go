// Package pressure provides overload-survival machinery for the
// multi-stream runtime: a resource-pressure monitor that folds thermal
// state, cache residency, and queue delay into a discrete pressure
// level; a CoDel-style deadline controller driving a shed ladder; a
// per-stream watchdog that quarantines stalled streams; and a
// versioned, CRC-checked checkpoint codec for crash/restart recovery.
//
// The package deliberately imports nothing from core, prefetch,
// modelcache, or adapt — those layers import pressure and convert
// their own state into the plain types defined here. That keeps the
// dependency graph acyclic and the checkpoint format free of any
// package-internal representation.
package pressure

import (
	"sync"
	"sync/atomic"

	"anole/internal/telemetry"
)

// Level is a discrete resource-pressure reading. Levels order:
// Nominal < Elevated < Critical.
type Level int

const (
	// Nominal means every signal is inside its envelope; no
	// degradation is active.
	Nominal Level = iota
	// Elevated means at least one signal crossed its soft threshold:
	// background work (prefetch planning) pauses, serving continues
	// untouched.
	Elevated
	// Critical means at least one signal crossed its hard threshold:
	// cache eviction watermarks tighten and non-essential uplink
	// traffic (drift reports) defers.
	Critical
)

func (l Level) String() string {
	switch l {
	case Nominal:
		return "nominal"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// Sample is one per-tick observation fed to the Monitor.
type Sample struct {
	// Heat is the hottest stream device's thermal state: 1.0 is the
	// sustained-power envelope, values above derate throughput.
	Heat float64
	// Residency is resident cache bytes over the device byte capacity
	// (0 when no byte capacity is configured).
	Residency float64
	// Sojourn is the tick's worst served-frame latency over the frame
	// deadline (0 when no deadline is configured). Values above 1 mean
	// the tick backlog is growing faster than frames drain.
	Sojourn float64
}

// MonitorConfig tunes the pressure thresholds. Zero values select the
// documented defaults.
type MonitorConfig struct {
	// HeatElevated / HeatCritical are thermal-state thresholds.
	// Defaults: 1.0 (at envelope) and 1.5.
	HeatElevated float64
	HeatCritical float64
	// ResidencyElevated / ResidencyCritical are cache-fill fractions.
	// Defaults: 0.85 and 0.95.
	ResidencyElevated float64
	ResidencyCritical float64
	// SojournElevated / SojournCritical are latency/deadline ratios.
	// Defaults: 1.0 and 4.0.
	SojournElevated float64
	SojournCritical float64
	// HoldTicks is how many consecutive calmer observations must
	// accumulate before the level steps down one notch. Escalation is
	// immediate; relaxation is damped so the level does not flap at a
	// threshold boundary. Default: 8.
	HoldTicks int
	// Metrics optionally publishes anole_pressure_* series.
	Metrics *telemetry.Registry
}

func (c *MonitorConfig) withDefaults() MonitorConfig {
	out := *c
	if out.HeatElevated == 0 {
		out.HeatElevated = 1.0
	}
	if out.HeatCritical == 0 {
		out.HeatCritical = 1.5
	}
	if out.ResidencyElevated == 0 {
		out.ResidencyElevated = 0.85
	}
	if out.ResidencyCritical == 0 {
		out.ResidencyCritical = 0.95
	}
	if out.SojournElevated == 0 {
		out.SojournElevated = 1.0
	}
	if out.SojournCritical == 0 {
		out.SojournCritical = 4.0
	}
	if out.HoldTicks <= 0 {
		out.HoldTicks = 8
	}
	return out
}

// Monitor folds per-tick resource samples into a discrete pressure
// level with damped downward transitions, and fans level changes out
// to subscribers. All methods are safe for concurrent use; a nil
// *Monitor is a no-op whose Level is always Nominal.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	level Level
	calm  int // consecutive observations strictly below the current level
	subs  []func(Level)

	levelAtomic atomic.Int64 // lock-free Level() reads

	// Telemetry handles (nil-safe).
	gLevel         *telemetry.Gauge
	cTransitions   *telemetry.Counter
	cShedPrefetch  *telemetry.Counter
	cShedDowngrade *telemetry.Counter
	cShedDropped   *telemetry.Counter
	cQuarantines   *telemetry.Counter
	cQuarFrames    *telemetry.Counter
	cSweeps        *telemetry.Counter
	cSweepEvicted  *telemetry.Counter
	cDeferred      *telemetry.Counter
}

// NewMonitor builds a Monitor from cfg (zero-value fields get
// defaults).
func NewMonitor(cfg MonitorConfig) *Monitor {
	m := &Monitor{cfg: cfg.withDefaults()}
	if reg := m.cfg.Metrics; reg != nil {
		m.gLevel = reg.Gauge("anole_pressure_level",
			"Current pressure level: 0 nominal, 1 elevated, 2 critical.")
		m.cTransitions = reg.Counter("anole_pressure_transitions_total",
			"Pressure level transitions (either direction).")
		m.cShedPrefetch = reg.Counter("anole_pressure_shed_prefetch_total",
			"Frames served with prefetch planning suppressed (ladder rung 1).")
		m.cShedDowngrade = reg.Counter("anole_pressure_shed_downgrade_total",
			"Frames downgraded to the cheapest resident model (ladder rung 2).")
		m.cShedDropped = reg.Counter("anole_pressure_shed_dropped_total",
			"Frames dropped with a shed verdict (ladder rung 3).")
		m.cQuarantines = reg.Counter("anole_pressure_quarantines_total",
			"Streams quarantined by the watchdog.")
		m.cQuarFrames = reg.Counter("anole_pressure_quarantined_frames_total",
			"Frames disposed with a quarantined verdict.")
		m.cSweeps = reg.Counter("anole_pressure_watermark_sweeps_total",
			"Critical-pressure cache watermark sweeps.")
		m.cSweepEvicted = reg.Counter("anole_pressure_watermark_evicted_total",
			"Cache entries evicted by watermark sweeps.")
		m.cDeferred = reg.Counter("anole_pressure_deferred_reports_total",
			"Drift report shipments deferred under critical pressure.")
	}
	return m
}

// Subscribe registers fn to be called synchronously (under no Monitor
// lock) whenever the level changes. Subscribers registered before the
// first Update see every transition.
func (m *Monitor) Subscribe(fn func(Level)) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// Level returns the current pressure level. Nil-safe.
func (m *Monitor) Level() Level {
	if m == nil {
		return Nominal
	}
	return Level(m.levelAtomic.Load())
}

// classify maps a sample to its instantaneous level, before damping.
func (m *Monitor) classify(s Sample) Level {
	c := &m.cfg
	if s.Heat >= c.HeatCritical || s.Residency >= c.ResidencyCritical || s.Sojourn >= c.SojournCritical {
		return Critical
	}
	if s.Heat >= c.HeatElevated || s.Residency >= c.ResidencyElevated || s.Sojourn >= c.SojournElevated {
		return Elevated
	}
	return Nominal
}

// Update folds one observation into the level. Escalation applies
// immediately; de-escalation requires HoldTicks consecutive
// observations strictly below the current level and then steps down
// one notch at a time. Returns the (possibly new) level. Nil-safe.
func (m *Monitor) Update(s Sample) Level {
	if m == nil {
		return Nominal
	}
	raw := m.classify(s)

	m.mu.Lock()
	prev := m.level
	next := prev
	switch {
	case raw > prev:
		next = raw
		m.calm = 0
	case raw < prev:
		m.calm++
		if m.calm >= m.cfg.HoldTicks {
			next = prev - 1
			m.calm = 0
		}
	default:
		m.calm = 0
	}
	var subs []func(Level)
	if next != prev {
		m.level = next
		m.levelAtomic.Store(int64(next))
		subs = append(subs, m.subs...)
	}
	m.mu.Unlock()

	if next != prev {
		if m.gLevel != nil {
			m.gLevel.Set(float64(next))
		}
		m.cTransitions.Inc()
		for _, fn := range subs {
			fn(next)
		}
	}
	return next
}

// The Note* methods below are the single funnel for anole_pressure_*
// event counters; callers hold no Monitor lock and all handles are
// nil-safe, so they may be invoked from any goroutine including when
// the Monitor was built without a registry.

// NoteShed counts one frame affected by the given ladder rung.
func (m *Monitor) NoteShed(r Rung) {
	if m == nil {
		return
	}
	switch r {
	case ShedPrefetch:
		m.cShedPrefetch.Inc()
	case ShedDowngrade:
		m.cShedDowngrade.Inc()
	case ShedDrop:
		m.cShedDropped.Inc()
	}
}

// NoteQuarantine counts one stream entering quarantine.
func (m *Monitor) NoteQuarantine() {
	if m == nil {
		return
	}
	m.cQuarantines.Inc()
}

// NoteQuarantinedFrame counts one frame disposed while its stream was
// quarantined.
func (m *Monitor) NoteQuarantinedFrame() {
	if m == nil {
		return
	}
	m.cQuarFrames.Inc()
}

// NoteSweep counts one watermark sweep that evicted n entries.
func (m *Monitor) NoteSweep(n int) {
	if m == nil {
		return
	}
	m.cSweeps.Inc()
	m.cSweepEvicted.Add(int64(n))
}

// NoteDeferredReports counts one drift shipment deferred under
// critical pressure.
func (m *Monitor) NoteDeferredReports() {
	if m == nil {
		return
	}
	m.cDeferred.Inc()
}
