package pressure

import (
	"testing"
	"time"
)

func TestMonitorEscalatesImmediately(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	var seen []Level
	m.Subscribe(func(lv Level) { seen = append(seen, lv) })
	if m.Level() != Nominal {
		t.Fatalf("fresh monitor at %v", m.Level())
	}
	m.Update(Sample{Heat: 1.2}) // past the Elevated heat threshold
	if m.Level() != Elevated {
		t.Fatalf("heat 1.2 left level at %v", m.Level())
	}
	m.Update(Sample{Heat: 1.9}) // past Critical
	if m.Level() != Critical {
		t.Fatalf("heat 1.9 left level at %v", m.Level())
	}
	if len(seen) != 2 || seen[0] != Elevated || seen[1] != Critical {
		t.Fatalf("subscriber saw %v", seen)
	}
}

func TestMonitorDeescalatesWithHysteresis(t *testing.T) {
	m := NewMonitor(MonitorConfig{HoldTicks: 3})
	m.Update(Sample{Heat: 1.9})
	if m.Level() != Critical {
		t.Fatalf("setup: %v", m.Level())
	}
	// Calm observations must persist for HoldTicks before one step down.
	for i := 0; i < 2; i++ {
		m.Update(Sample{})
		if m.Level() != Critical {
			t.Fatalf("dropped after %d calm ticks (< HoldTicks)", i+1)
		}
	}
	m.Update(Sample{})
	if m.Level() != Elevated {
		t.Fatalf("after HoldTicks calm ticks: %v, want one step down", m.Level())
	}
	// A single hot observation resets the calm streak.
	m.Update(Sample{})
	m.Update(Sample{Heat: 1.2})
	m.Update(Sample{})
	m.Update(Sample{})
	if m.Level() != Elevated {
		t.Fatalf("streak not reset by a hot tick: %v", m.Level())
	}
}

func TestMonitorFoldsAllSignals(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	m.Update(Sample{Residency: 0.9})
	if m.Level() != Elevated {
		t.Fatalf("residency 0.9: %v", m.Level())
	}
	m2 := NewMonitor(MonitorConfig{})
	m2.Update(Sample{Sojourn: 5})
	if m2.Level() != Critical {
		t.Fatalf("sojourn 5x: %v", m2.Level())
	}
}

func TestNilMonitorIsNominal(t *testing.T) {
	var m *Monitor
	if m.Level() != Nominal {
		t.Fatal("nil monitor not Nominal")
	}
	// All note funnels must be nil-safe.
	m.NoteShed(ShedDrop)
	m.NoteQuarantine()
	m.NoteQuarantinedFrame()
	m.NoteSweep(3)
	m.NoteDeferredReports()
}

func TestControllerEscalatesAndRelaxesOneRungAtATime(t *testing.T) {
	c := NewController(ControllerConfig{Target: time.Millisecond, EscalateTicks: 2, RelaxTicks: 2})
	if c.Rung() != ShedNone {
		t.Fatalf("fresh controller at %v", c.Rung())
	}
	over, under := 2*time.Millisecond, time.Millisecond/2
	c.ObserveTick(over, true)
	if c.Rung() != ShedNone {
		t.Fatal("escalated after one congested tick (< EscalateTicks)")
	}
	c.ObserveTick(over, true)
	if c.Rung() != ShedPrefetch {
		t.Fatalf("after EscalateTicks congested: %v", c.Rung())
	}
	// Escalation persistence restarts per rung.
	c.ObserveTick(over, true)
	c.ObserveTick(over, true)
	c.ObserveTick(over, true)
	c.ObserveTick(over, true)
	if c.Rung() != ShedDrop {
		t.Fatalf("sustained congestion: %v, want ShedDrop", c.Rung())
	}
	// And never past the top.
	c.ObserveTick(over, true)
	c.ObserveTick(over, true)
	if c.Rung() != ShedDrop {
		t.Fatalf("escalated past the top: %v", c.Rung())
	}
	// Relax one rung per RelaxTicks uncongested ticks.
	c.ObserveTick(under, true)
	if c.Rung() != ShedDrop {
		t.Fatal("relaxed after one calm tick")
	}
	c.ObserveTick(under, true)
	if c.Rung() != ShedDowngrade {
		t.Fatalf("after RelaxTicks calm: %v", c.Rung())
	}
	for i := 0; i < 4; i++ {
		c.ObserveTick(under, true)
	}
	if c.Rung() != ShedNone {
		t.Fatalf("sustained calm: %v, want ShedNone", c.Rung())
	}
}

func TestControllerCountsServedlessTicksCongested(t *testing.T) {
	c := NewController(ControllerConfig{Target: time.Millisecond, EscalateTicks: 2})
	// No served frame at all is the worst congestion signal there is.
	c.ObserveTick(0, false)
	c.ObserveTick(0, false)
	if c.Rung() != ShedPrefetch {
		t.Fatalf("served-less ticks not congested: %v", c.Rung())
	}
}

func TestNilControllerStaysAtShedNone(t *testing.T) {
	var c *Controller
	if c.Rung() != ShedNone {
		t.Fatal("nil controller off ShedNone")
	}
	if got := c.ObserveTick(time.Hour, false); got != ShedNone {
		t.Fatalf("nil controller observed %v", got)
	}
	if c.Sojourn(time.Hour) != 0 {
		t.Fatal("nil controller nonzero sojourn")
	}
	if NewController(ControllerConfig{}) != nil {
		t.Fatal("controller without a target must be nil")
	}
}

func TestWatchdogQuarantinesStalledStreams(t *testing.T) {
	w := NewWatchdog(3, WatchdogConfig{StallTicks: 2, QuarantineTicks: 3})
	active := []bool{true, true, true}
	progress := []bool{true, false, true}
	if newly := w.ObserveTick(active, progress); len(newly) != 0 {
		t.Fatalf("quarantined %v after one stalled tick", newly)
	}
	newly := w.ObserveTick(active, progress)
	if len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("after StallTicks stalls: %v, want [1]", newly)
	}
	if !w.Quarantined(1) || w.Quarantined(0) || w.Quarantined(2) {
		t.Fatal("wrong streams quarantined")
	}
	// Quarantine expires after QuarantineTicks, releasing a probe.
	idle := []bool{false, false, false}
	for i := 0; i < 3; i++ {
		if !w.Quarantined(1) {
			t.Fatalf("released after %d of 3 ticks", i)
		}
		w.ObserveTick(idle, idle)
	}
	if w.Quarantined(1) {
		t.Fatal("quarantine never expired")
	}
	if w.Quarantines() != 1 {
		t.Fatalf("quarantines %d, want 1", w.Quarantines())
	}
}

func TestWatchdogForcedQuarantine(t *testing.T) {
	w := NewWatchdog(2, WatchdogConfig{})
	if !w.Quarantine(0) {
		t.Fatal("forced quarantine of a live stream reported false")
	}
	if w.Quarantine(0) {
		t.Fatal("re-quarantine of a quarantined stream reported true")
	}
	if !w.Quarantined(0) {
		t.Fatal("stream not quarantined")
	}
	// Progress clears the stall clock for live streams.
	if w.Quarantined(1) {
		t.Fatal("stream 1 was never quarantined")
	}
}

func TestNilWatchdog(t *testing.T) {
	var w *Watchdog
	if w.Quarantined(0) {
		t.Fatal("nil watchdog quarantined something")
	}
	if w.Quarantine(0) {
		t.Fatal("nil watchdog accepted a quarantine")
	}
	if got := w.ObserveTick(nil, nil); got != nil {
		t.Fatalf("nil watchdog observed %v", got)
	}
	if w.Quarantines() != 0 {
		t.Fatal("nil watchdog counted quarantines")
	}
}
