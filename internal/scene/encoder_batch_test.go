package scene

import (
	"testing"

	"anole/internal/nn"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// randomEncoder builds an untrained encoder via FromParts — batch
// equivalence is a purely numerical property, so no training is needed.
func randomEncoder(t *testing.T, seed uint64, featDim int) *Encoder {
	t.Helper()
	rng := xrand.New(seed)
	net := nn.NewMLP(nn.MLPConfig{InDim: featDim, Hidden: []int{32, 16}, OutDim: 3}, rng)
	enc, err := FromParts(net.Freeze(), []int{0, 1, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestEmbedBatchMatchesSequential pins the batched embedding path
// bitwise against the per-frame path: the batched kernel preserves each
// dot product's summation order, so no tolerance is needed.
func TestEmbedBatchMatchesSequential(t *testing.T) {
	const featDim = 18
	enc := randomEncoder(t, 41, featDim)
	rng := xrand.New(42)
	for _, batch := range []int{0, 1, 3, 17, 64} {
		feats := tensor.NewMatrix(batch, featDim)
		for i := range feats.Data {
			feats.Data[i] = rng.NormMS(0, 1)
		}
		got := enc.EmbedBatchInto(nil, feats, nil)
		if got.Rows != batch || got.Cols != enc.EmbedDim() {
			t.Fatalf("batch %d: output %dx%d, want %dx%d", batch, got.Rows, got.Cols, batch, enc.EmbedDim())
		}
		for r := 0; r < batch; r++ {
			want := enc.EmbedFeatureInto(nil, feats.Row(r))
			for j := range want {
				if got.At(r, j) != want[j] {
					t.Fatalf("batch %d row %d dim %d: batched %v, sequential %v",
						batch, r, j, got.At(r, j), want[j])
				}
			}
		}
	}
}

// TestEmbedBatchReusesDst pins dst reuse plus scratch sharing: a held
// BatchScratch and a correctly-shaped dst make the batched embedding
// step allocation-free in steady state.
func TestEmbedBatchReusesDst(t *testing.T) {
	const featDim = 18
	enc := randomEncoder(t, 43, featDim)
	rng := xrand.New(44)
	const batch = 24
	s := enc.Weights.AcquireBatchScratch()
	defer enc.Weights.ReleaseBatchScratch(s)
	feats := s.In(batch, featDim)
	for i := range feats.Data {
		feats.Data[i] = rng.NormMS(0, 1)
	}
	dst := tensor.NewMatrix(batch, enc.EmbedDim())
	got := enc.EmbedBatchInto(dst, feats, s)
	if got != dst {
		t.Fatal("EmbedBatchInto should reuse a correctly-shaped dst")
	}
	allocs := testing.AllocsPerRun(100, func() {
		enc.EmbedBatchInto(dst, feats, s)
	})
	if allocs != 0 {
		t.Fatalf("EmbedBatchInto with held scratch: %v allocs/op, want 0", allocs)
	}
}
