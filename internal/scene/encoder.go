package scene

import (
	"fmt"
	"sort"

	"anole/internal/nn"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Encoder is M_scene: a classifier trained with semantic-scene indices as
// weak labels, whose last hidden activation serves as the scene embedding
// (paper §IV-A2, "Scene Embedding"). It doubles as the frozen backbone of
// M_decision.
//
// The backbone is an immutable nn.Weights program, so one Encoder is safe
// to share across any number of goroutines — no cloning required.
type Encoder struct {
	Weights *nn.Weights
	// ClassToScene maps classifier output index to semantic scene index
	// (only scenes present in training data get classes).
	ClassToScene []int
	// sceneToClass is the inverse map.
	sceneToClass map[int]int
	// embedLayers is the layer prefix whose output is the embedding.
	embedLayers int
	embedDim    int
}

// EncoderConfig controls M_scene training. Zero values choose defaults.
type EncoderConfig struct {
	// Hidden are the MLP hidden widths; the last entry is the embedding
	// dimension (default [32, 16]).
	Hidden []int
	// Epochs, BatchSize, LR configure training (defaults 30, 32, 0.01).
	Epochs    int
	BatchSize int
	LR        float64
	// Patience enables early stopping on a held-out split when val
	// frames are supplied.
	Patience int
	// Workers shards gradient computation.
	Workers int
	// RNG is required for determinism.
	RNG *xrand.RNG
}

func (c *EncoderConfig) setDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32, 16}
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.RNG == nil {
		c.RNG = xrand.New(0)
	}
}

// TrainEncoder fits M_scene on the training frames, using the semantic
// scene of each frame as its label. val may be nil.
func TrainEncoder(train, val []*synth.Frame, cfg EncoderConfig) (*Encoder, error) {
	cfg.setDefaults()
	if len(train) == 0 {
		return nil, fmt.Errorf("scene: no training frames")
	}

	// Build the label space from scenes present in training data.
	present := make(map[int]bool)
	for _, f := range train {
		present[f.Scene.Index()] = true
	}
	classToScene := make([]int, 0, len(present))
	for idx := range present {
		classToScene = append(classToScene, idx)
	}
	sort.Ints(classToScene)
	sceneToClass := make(map[int]int, len(classToScene))
	for cls, idx := range classToScene {
		sceneToClass[idx] = cls
	}
	numClasses := len(classToScene)

	featDim := synth.FrameFeatureDim(train[0].FeatDim())
	net := nn.NewMLP(nn.MLPConfig{InDim: featDim, Hidden: cfg.Hidden, OutDim: numClasses}, cfg.RNG)

	toSamples := func(frames []*synth.Frame) []nn.Sample {
		var out []nn.Sample
		for _, f := range frames {
			cls, ok := sceneToClass[f.Scene.Index()]
			if !ok {
				continue // scene unseen in training; skip for val
			}
			y := tensor.NewVector(numClasses)
			y[cls] = 1
			out = append(out, nn.Sample{X: synth.FrameFeature(f), Y: y})
		}
		return out
	}
	var valSamples []nn.Sample
	if len(val) > 0 && cfg.Patience > 0 {
		valSamples = toSamples(val)
	}
	if _, err := nn.Train(net, toSamples(train), valSamples, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Loss:      nn.NewSoftmaxCrossEntropy(),
		Optimizer: nn.NewAdam(cfg.LR),
		RNG:       cfg.RNG,
		Patience:  cfg.Patience,
		Workers:   cfg.Workers,
	}); err != nil {
		return nil, fmt.Errorf("scene: train encoder: %w", err)
	}

	// The embedding is the activation after the last hidden block:
	// layers are [Dense, Act, Dense, Act, ..., Dense(out)], so the
	// prefix is everything except the final output Dense.
	embedLayers := net.NumLayers() - 1
	return &Encoder{
		Weights:      net.Freeze(),
		ClassToScene: classToScene,
		sceneToClass: sceneToClass,
		embedLayers:  embedLayers,
		embedDim:     cfg.Hidden[len(cfg.Hidden)-1],
	}, nil
}

// EmbedDim returns the embedding dimensionality.
func (e *Encoder) EmbedDim() int { return e.embedDim }

// NumClasses returns the number of semantic scenes the encoder
// discriminates.
func (e *Encoder) NumClasses() int { return len(e.ClassToScene) }

// Embed returns the scene embedding of frame f. The returned vector is
// caller-owned by construction (no defensive clone needed: the frozen
// program never aliases its outputs).
func (e *Encoder) Embed(f *synth.Frame) tensor.Vector {
	return e.EmbedFeatureInto(nil, synth.FrameFeature(f))
}

// EmbedFeature embeds a precomputed frame feature vector into a fresh
// caller-owned vector.
func (e *Encoder) EmbedFeature(feat tensor.Vector) tensor.Vector {
	return e.EmbedFeatureInto(nil, feat)
}

// EmbedFeatureInto embeds feat into dst (allocating only when dst is nil
// or mis-sized) and returns dst. This is the steady-state runtime path:
// with a reused dst the embedding step performs no heap allocations.
func (e *Encoder) EmbedFeatureInto(dst, feat tensor.Vector) tensor.Vector {
	return e.Weights.InferThrough(e.embedLayers, dst, feat, nil)
}

// EmbedBatchInto embeds a batch of precomputed frame features (one per
// row of feats) into dst (one embedding per row, allocating only when
// dst is nil or mis-shaped) and returns dst. s supplies the intermediate
// activation matrices; pass nil to borrow one from the backbone's pool.
// Each dense layer runs as one matrix product for the whole batch, and
// per row the result is bit-identical to EmbedFeatureInto.
func (e *Encoder) EmbedBatchInto(dst, feats *tensor.Matrix, s *nn.BatchScratch) *tensor.Matrix {
	return e.Weights.InferBatchThrough(e.embedLayers, dst, feats, s)
}

// Classify returns the predicted class index (position in ClassToScene)
// for frame f.
func (e *Encoder) Classify(f *synth.Frame) int {
	s := e.Weights.AcquireScratch()
	defer e.Weights.ReleaseScratch(s)
	return e.Weights.Infer(s.Out(e.Weights.OutDim()), synth.FrameFeature(f), s).Argmax()
}

// ClassOf returns the class index of a semantic scene, or -1 when the
// scene was absent from training.
func (e *Encoder) ClassOf(sceneIdx int) int {
	cls, ok := e.sceneToClass[sceneIdx]
	if !ok {
		return -1
	}
	return cls
}

// ConfusionOn evaluates scene classification on frames and returns the
// confusion matrix over the encoder's class space (Fig. 6a). Frames whose
// scene was absent from training are skipped.
func (e *Encoder) ConfusionOn(frames []*synth.Frame) *stats.ConfusionMatrix {
	cm := stats.NewConfusionMatrix(e.NumClasses())
	for _, f := range frames {
		trueCls := e.ClassOf(f.Scene.Index())
		if trueCls < 0 {
			continue
		}
		cm.Observe(trueCls, e.Classify(f))
	}
	return cm
}

// FromParts reconstructs an Encoder from deserialized frozen weights and
// a class map (used by internal/repo when a device downloads the bundle).
func FromParts(w *nn.Weights, classToScene []int, embedDim int) (*Encoder, error) {
	if w.NumLayers() < 2 {
		return nil, fmt.Errorf("scene: encoder network too shallow")
	}
	if w.OutDim() != len(classToScene) {
		return nil, fmt.Errorf("scene: network outputs %d classes, map has %d", w.OutDim(), len(classToScene))
	}
	sceneToClass := make(map[int]int, len(classToScene))
	for cls, idx := range classToScene {
		sceneToClass[idx] = cls
	}
	return &Encoder{
		Weights:      w,
		ClassToScene: append([]int(nil), classToScene...),
		sceneToClass: sceneToClass,
		embedLayers:  w.NumLayers() - 1,
		embedDim:     embedDim,
	}, nil
}
