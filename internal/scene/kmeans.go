// Package scene implements the paper's offline scene-profiling core: the
// scene-representation encoder M_scene (§IV-A, a classifier over semantic
// scenes whose last hidden layer is the scene embedding), k-means
// clustering over scene embeddings, and Algorithm 1 — multi-level
// clustering that trains one compressed detector per model-friendly scene
// until a repertoire of n models passes the validation threshold δ.
package scene

import (
	"fmt"
	"math"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// KMeansResult is the outcome of one clustering: centroids, the
// assignment of each input point, and the total within-cluster squared
// distance.
type KMeansResult struct {
	Centroids []tensor.Vector
	Assign    []int
	Inertia   float64
}

// KMeans clusters points into k groups with Lloyd's algorithm seeded by
// k-means++, taking the best of restarts runs. It is deterministic given
// rng. k is clamped to len(points).
func KMeans(points []tensor.Vector, k, restarts int, rng *xrand.RNG) (KMeansResult, error) {
	if len(points) == 0 {
		return KMeansResult{}, fmt.Errorf("scene: kmeans on empty point set")
	}
	if k <= 0 {
		return KMeansResult{}, fmt.Errorf("scene: kmeans with k=%d", k)
	}
	if k > len(points) {
		k = len(points)
	}
	if restarts <= 0 {
		restarts = 1
	}
	best := KMeansResult{Inertia: math.Inf(1)}
	for r := 0; r < restarts; r++ {
		res := kmeansOnce(points, k, rng)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(points []tensor.Vector, k int, rng *xrand.RNG) KMeansResult {
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	counts := make([]int, k)

	const maxIters = 100
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := p.SquaredDistance(cent); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centroids {
			centroids[c] = tensor.NewVector(dim)
			counts[c] = 0
		}
		for i, p := range points {
			centroids[assign[i]].AddScaled(1, p)
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point
				// from its centroid's nearest neighbor; simplest
				// deterministic fix: steal a random point.
				centroids[c] = points[rng.Intn(len(points))].Clone()
				continue
			}
			centroids[c].Scale(1 / float64(counts[c]))
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += p.SquaredDistance(centroids[assign[i]])
	}
	return KMeansResult{Centroids: centroids, Assign: assign, Inertia: inertia}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points []tensor.Vector, k int, rng *xrand.RNG) []tensor.Vector {
	centroids := make([]tensor.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	dist := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if v := p.SquaredDistance(c); v < d {
					d = v
				}
			}
			dist[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		centroids = append(centroids, points[rng.Categorical(dist)].Clone())
	}
	return centroids
}

// NearestCentroid returns the index of the centroid closest to p (used by
// the CDG baseline for online model selection).
func NearestCentroid(centroids []tensor.Vector, p tensor.Vector) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range centroids {
		if d := p.SquaredDistance(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b−a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b the smallest mean distance to another
// cluster. Values near 1 indicate compact, well-separated clusters; near
// 0, overlapping ones. Points in singleton clusters contribute 0. Used as
// a diagnostic for Algorithm 1's clustering levels.
func Silhouette(points []tensor.Vector, assign []int, k int) float64 {
	if len(points) == 0 || len(points) != len(assign) || k <= 1 {
		return 0
	}
	// Mean pairwise distance from each point to each cluster.
	var total float64
	counted := 0
	for i, p := range points {
		sums := make([]float64, k)
		counts := make([]int, k)
		for j, q := range points {
			if i == j {
				continue
			}
			c := assign[j]
			if c < 0 || c >= k {
				return 0
			}
			sums[c] += math.Sqrt(p.SquaredDistance(q))
			counts[c]++
		}
		own := assign[i]
		if own < 0 || own >= k {
			return 0
		}
		if counts[own] == 0 {
			counted++ // singleton: contributes 0
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			counted++
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
