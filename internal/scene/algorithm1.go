package scene

import (
	"fmt"
	"sync"

	"anole/internal/detect"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

// BankedModel is one compressed model accepted into the repertoire by
// Algorithm 1, with the provenance needed by adaptive scene sampling
// (its training pool Γᵢ) and by the experiment harness.
type BankedModel struct {
	// Detector is the trained compressed model Mᵢ.
	Detector *detect.Detector
	// Level and Cluster identify which k-means level (k) and which
	// cluster within it produced the model.
	Level   int
	Cluster int
	// TrainScenes lists the semantic scene indices of the cluster; the
	// model's training pool Γᵢ is every training frame of these scenes.
	TrainScenes []int
	// ValF1 is the validation F1 that passed the δ threshold.
	ValF1 float64
}

// RepertoireConfig controls Algorithm 1. Zero values select defaults
// matching the paper's setup (n = 19 compressed models).
type RepertoireConfig struct {
	// N is the target repertoire size (default 19).
	N int
	// Delta is the validation-F1 acceptance threshold δ (default 0.3).
	Delta float64
	// MaxK bounds the multi-level clustering (default 8); if the bank
	// is still short of N at MaxK, the repertoire is returned as-is.
	MaxK int
	// MinSceneFrames drops semantic scenes with fewer training frames
	// from clustering (default 4).
	MinSceneFrames int
	// Restarts is the k-means restart count (default 4).
	Restarts int
	// Train configures each compressed model's training run; its RNG
	// field is ignored (per-model streams are split from RNG).
	Train detect.TrainConfig
	// Workers bounds concurrent model training at each level (default
	// GOMAXPROCS-friendly 4).
	Workers int
	// RNG is required for determinism.
	RNG *xrand.RNG
}

func (c *RepertoireConfig) setDefaults() {
	if c.N <= 0 {
		c.N = 19
	}
	if c.Delta <= 0 {
		c.Delta = 0.3
	}
	if c.MaxK <= 0 {
		c.MaxK = 8
	}
	if c.MinSceneFrames <= 0 {
		c.MinSceneFrames = 2
	}
	if c.Restarts <= 0 {
		c.Restarts = 4
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.RNG == nil {
		c.RNG = xrand.New(0)
	}
}

// TrainCompressedModels is Algorithm 1: embed each semantic scene with
// the encoder, run k-means for k = 2, 3, … over the scene embeddings,
// train one compressed detector per cluster, and bank every model whose
// validation F1 exceeds δ, until N models are banked or MaxK is reached.
// Banked models are named "M_1" … "M_n" in acceptance order.
func TrainCompressedModels(enc *Encoder, train, val []*synth.Frame, cfg RepertoireConfig) ([]*BankedModel, error) {
	cfg.setDefaults()
	if enc == nil {
		return nil, fmt.Errorf("scene: nil encoder")
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("scene: no training frames")
	}

	// Group frames by semantic scene and compute per-scene mean
	// embeddings (the Hᵢ of Algorithm 1).
	trainByScene := groupByScene(train)
	valByScene := groupByScene(val)
	var (
		sceneIdxs  []int
		embeddings []tensor.Vector
	)
	for _, idx := range sortedKeys(trainByScene) {
		frames := trainByScene[idx]
		if len(frames) < cfg.MinSceneFrames {
			continue
		}
		mean := tensor.NewVector(enc.EmbedDim())
		for _, f := range frames {
			mean.AddScaled(1, enc.Embed(f))
		}
		mean.Scale(1 / float64(len(frames)))
		sceneIdxs = append(sceneIdxs, idx)
		embeddings = append(embeddings, mean)
	}
	if len(sceneIdxs) < 2 {
		return nil, fmt.Errorf("scene: only %d scenes have enough frames", len(sceneIdxs))
	}

	featDim := train[0].FeatDim()
	var bank []*BankedModel
	for k := 2; k <= cfg.MaxK && len(bank) < cfg.N; k++ {
		res, err := KMeans(embeddings, k, cfg.Restarts, cfg.RNG.Split(uint64(k)))
		if err != nil {
			return nil, fmt.Errorf("scene: level %d: %w", k, err)
		}
		candidates := trainLevel(enc, res, sceneIdxs, trainByScene, valByScene, featDim, k, cfg)
		for _, cand := range candidates {
			if cand == nil || cand.ValF1 <= cfg.Delta {
				continue
			}
			if len(bank) >= cfg.N {
				break
			}
			cand.Detector.Name = fmt.Sprintf("M_%d", len(bank)+1)
			bank = append(bank, cand)
		}
	}
	if len(bank) == 0 {
		return nil, fmt.Errorf("scene: no cluster model passed delta=%.2f", cfg.Delta)
	}
	return bank, nil
}

// trainLevel trains one candidate model per cluster of a clustering
// level, in parallel, preserving cluster order in the result.
func trainLevel(enc *Encoder, res KMeansResult, sceneIdxs []int,
	trainByScene, valByScene map[int][]*synth.Frame,
	featDim, level int, cfg RepertoireConfig) []*BankedModel {

	k := len(res.Centroids)
	out := make([]*BankedModel, k)
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		var scenes []int
		for si, assign := range res.Assign {
			if assign == j {
				scenes = append(scenes, sceneIdxs[si])
			}
		}
		if len(scenes) == 0 {
			continue
		}
		var trainFrames, valFrames []*synth.Frame
		for _, s := range scenes {
			trainFrames = append(trainFrames, trainByScene[s]...)
			valFrames = append(valFrames, valByScene[s]...)
		}
		if len(trainFrames) == 0 {
			continue
		}
		rng := cfg.RNG.Split(uint64(level)<<16 | uint64(j))
		wg.Add(1)
		sem <- struct{}{}
		go func(j int, scenes []int, trainFrames, valFrames []*synth.Frame, rng *xrand.RNG) {
			defer wg.Done()
			defer func() { <-sem }()
			tc := cfg.Train
			tc.RNG = rng
			det := detect.NewDetector(fmt.Sprintf("k%d/c%d", level, j), detect.Compressed, featDim, rng)
			if err := det.Train(trainFrames, valFrames, tc); err != nil {
				return // cluster too small to train; skip silently
			}
			evalFrames := valFrames
			if len(evalFrames) == 0 {
				evalFrames = trainFrames
			}
			out[j] = &BankedModel{
				Detector:    det,
				Level:       level,
				Cluster:     j,
				TrainScenes: scenes,
				ValF1:       det.EvaluateFrames(evalFrames).F1,
			}
		}(j, scenes, trainFrames, valFrames, rng)
	}
	wg.Wait()
	return out
}

// PoolFrames returns the training pool Γᵢ of a banked model: every frame
// in `frames` whose semantic scene is in the model's cluster.
func (b *BankedModel) PoolFrames(frames []*synth.Frame) []*synth.Frame {
	in := make(map[int]bool, len(b.TrainScenes))
	for _, s := range b.TrainScenes {
		in[s] = true
	}
	var out []*synth.Frame
	for _, f := range frames {
		if in[f.Scene.Index()] {
			out = append(out, f)
		}
	}
	return out
}

func groupByScene(frames []*synth.Frame) map[int][]*synth.Frame {
	m := make(map[int][]*synth.Frame)
	for _, f := range frames {
		m[f.Scene.Index()] = append(m[f.Scene.Index()], f)
	}
	return m
}

func sortedKeys(m map[int][]*synth.Frame) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
