package scene

import (
	"math"
	"testing"

	"anole/internal/detect"
	"anole/internal/synth"
	"anole/internal/tensor"
	"anole/internal/xrand"
)

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := xrand.New(1)
	var points []tensor.Vector
	// Two tight blobs far apart.
	for i := 0; i < 30; i++ {
		points = append(points, tensor.Vector{rng.NormMS(0, 0.1), rng.NormMS(0, 0.1)})
		points = append(points, tensor.Vector{rng.NormMS(10, 0.1), rng.NormMS(10, 0.1)})
	}
	res, err := KMeans(points, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All even indices (blob A) share one cluster; odd (blob B) the other.
	a := res.Assign[0]
	for i := 0; i < len(points); i += 2 {
		if res.Assign[i] != a {
			t.Fatal("blob A split across clusters")
		}
	}
	b := res.Assign[1]
	if b == a {
		t.Fatal("blobs merged")
	}
	if res.Inertia > 10 {
		t.Fatalf("inertia too high: %v", res.Inertia)
	}
}

func TestKMeansKClampedToPoints(t *testing.T) {
	rng := xrand.New(2)
	points := []tensor.Vector{{0, 0}, {1, 1}}
	res, err := KMeans(points, 5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d, want clamp to 2", len(res.Centroids))
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := xrand.New(3)
	if _, err := KMeans(nil, 2, 1, rng); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := KMeans([]tensor.Vector{{1}}, 0, 1, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := xrand.New(4)
	points := make([]tensor.Vector, 60)
	for i := range points {
		points[i] = tensor.Vector{rng.Norm() * 5, rng.Norm() * 5}
	}
	prev := math.Inf(1)
	for k := 1; k <= 4; k++ {
		res, err := KMeans(points, k, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansDeterministic(t *testing.T) {
	mk := func() KMeansResult {
		rng := xrand.New(7)
		points := make([]tensor.Vector, 40)
		for i := range points {
			points[i] = tensor.Vector{rng.Norm(), rng.Norm()}
		}
		res, err := KMeans(points, 3, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := []tensor.Vector{{0, 0}, {10, 10}}
	if NearestCentroid(cents, tensor.Vector{1, 1}) != 0 {
		t.Fatal("nearest wrong")
	}
	if NearestCentroid(cents, tensor.Vector{9, 9}) != 1 {
		t.Fatal("nearest wrong")
	}
	if NearestCentroid(nil, tensor.Vector{1, 1}) != -1 {
		t.Fatal("empty centroids should give -1")
	}
}

// buildSmallCorpus generates a compact corpus for encoder/repertoire
// tests.
func buildSmallCorpus(t *testing.T, seed uint64) *synth.Corpus {
	t.Helper()
	w, err := synth.NewWorld(synth.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w.GenerateCorpus(synth.DefaultProfiles(0.25))
}

func TestTrainEncoderClassifiesScenes(t *testing.T) {
	corpus := buildSmallCorpus(t, 10)
	train := corpus.Frames(synth.Train)
	val := corpus.Frames(synth.Val)
	enc, err := TrainEncoder(train, val, EncoderConfig{Epochs: 25, RNG: xrand.New(11)})
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumClasses() < 2 {
		t.Fatalf("classes = %d", enc.NumClasses())
	}
	cm := enc.ConfusionOn(val)
	acc := cm.Accuracy()
	if acc < 0.5 {
		t.Fatalf("scene classification accuracy = %v, want > 0.5", acc)
	}
}

func TestEncoderEmbedProperties(t *testing.T) {
	corpus := buildSmallCorpus(t, 12)
	train := corpus.Frames(synth.Train)
	enc, err := TrainEncoder(train, nil, EncoderConfig{Epochs: 15, RNG: xrand.New(13)})
	if err != nil {
		t.Fatal(err)
	}
	f := train[0]
	e1 := enc.Embed(f)
	if len(e1) != enc.EmbedDim() {
		t.Fatalf("embed dim = %d, want %d", len(e1), enc.EmbedDim())
	}
	// Embed returns a copy: mutating it must not affect a second call.
	e1[0] += 100
	e2 := enc.Embed(f)
	if e2[0] == e1[0] {
		t.Fatal("Embed aliases internal state")
	}
	// EmbedFeature path matches Embed.
	e3 := enc.EmbedFeature(synth.FrameFeature(f))
	for i := range e2 {
		if e2[i] != e3[i] {
			t.Fatal("EmbedFeature differs from Embed")
		}
	}
}

func TestEncoderClassOf(t *testing.T) {
	corpus := buildSmallCorpus(t, 14)
	enc, err := TrainEncoder(corpus.Frames(synth.Train), nil, EncoderConfig{Epochs: 5, RNG: xrand.New(15)})
	if err != nil {
		t.Fatal(err)
	}
	for cls, sceneIdx := range enc.ClassToScene {
		if enc.ClassOf(sceneIdx) != cls {
			t.Fatal("ClassOf inverse broken")
		}
	}
	if enc.ClassOf(-5) != -1 {
		t.Fatal("unknown scene should map to -1")
	}
}

func TestTrainEncoderEmpty(t *testing.T) {
	if _, err := TrainEncoder(nil, nil, EncoderConfig{RNG: xrand.New(1)}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestEmbeddingsClusterBySceneSimilarity(t *testing.T) {
	// Embeddings of the same scene should be closer than embeddings of
	// very different scenes, on average.
	w, err := synth.NewWorld(synth.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(17)
	sceneA := synth.Scene{Weather: synth.Clear, Location: synth.Urban, Time: synth.Daytime}
	sceneB := synth.Scene{Weather: synth.Foggy, Location: synth.Tunnel, Time: synth.Night}
	var frames []*synth.Frame
	for i := 0; i < 60; i++ {
		frames = append(frames, w.GenerateFrame(sceneA, 1, rng))
		frames = append(frames, w.GenerateFrame(sceneB, 1, rng))
	}
	enc, err := TrainEncoder(frames, nil, EncoderConfig{Epochs: 20, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	meanA := tensor.NewVector(enc.EmbedDim())
	meanB := tensor.NewVector(enc.EmbedDim())
	var withinA float64
	embA := make([]tensor.Vector, 0, 60)
	for i, f := range frames {
		e := enc.Embed(f)
		if i%2 == 0 {
			meanA.AddScaled(1.0/60, e)
			embA = append(embA, e)
		} else {
			meanB.AddScaled(1.0/60, e)
		}
	}
	for _, e := range embA {
		withinA += math.Sqrt(e.SquaredDistance(meanA))
	}
	withinA /= float64(len(embA))
	between := math.Sqrt(meanA.SquaredDistance(meanB))
	if between < withinA {
		t.Fatalf("scenes not separated in embedding space: between %v, within %v", between, withinA)
	}
}

func TestFromPartsValidation(t *testing.T) {
	corpus := buildSmallCorpus(t, 18)
	enc, err := TrainEncoder(corpus.Frames(synth.Train), nil, EncoderConfig{Epochs: 3, RNG: xrand.New(19)})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromParts(enc.Weights, enc.ClassToScene, enc.EmbedDim())
	if err != nil {
		t.Fatal(err)
	}
	f := corpus.Frames(synth.Train)[0]
	a, b := enc.Embed(f), rebuilt.Embed(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FromParts encoder differs")
		}
	}
	if _, err := FromParts(enc.Weights, enc.ClassToScene[:1], enc.EmbedDim()); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
}

func TestTrainCompressedModelsBanksModels(t *testing.T) {
	corpus := buildSmallCorpus(t, 20)
	train := corpus.Frames(synth.Train)
	val := corpus.Frames(synth.Val)
	enc, err := TrainEncoder(train, nil, EncoderConfig{Epochs: 15, RNG: xrand.New(21)})
	if err != nil {
		t.Fatal(err)
	}
	bank, err := TrainCompressedModels(enc, train, val, RepertoireConfig{
		N:     6,
		Delta: 0.05,
		MaxK:  4,
		Train: detect.TrainConfig{Epochs: 8},
		RNG:   xrand.New(22),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bank) == 0 || len(bank) > 6 {
		t.Fatalf("banked %d models", len(bank))
	}
	seenNames := make(map[string]bool)
	for i, b := range bank {
		if b.ValF1 <= 0.05 {
			t.Fatalf("model %d below delta: %v", i, b.ValF1)
		}
		if len(b.TrainScenes) == 0 {
			t.Fatal("banked model without scenes")
		}
		if b.Level < 2 {
			t.Fatalf("level %d", b.Level)
		}
		if seenNames[b.Detector.Name] {
			t.Fatalf("duplicate model name %s", b.Detector.Name)
		}
		seenNames[b.Detector.Name] = true
	}
	if bank[0].Detector.Name != "M_1" {
		t.Fatalf("first model named %s", bank[0].Detector.Name)
	}

	// Pool frames only contain the model's scenes.
	pool := bank[0].PoolFrames(train)
	if len(pool) == 0 {
		t.Fatal("empty pool")
	}
	in := make(map[int]bool)
	for _, s := range bank[0].TrainScenes {
		in[s] = true
	}
	for _, f := range pool {
		if !in[f.Scene.Index()] {
			t.Fatal("pool contains out-of-cluster frame")
		}
	}
}

func TestTrainCompressedModelsHighDeltaFails(t *testing.T) {
	corpus := buildSmallCorpus(t, 23)
	train := corpus.Frames(synth.Train)
	enc, err := TrainEncoder(train, nil, EncoderConfig{Epochs: 5, RNG: xrand.New(24)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainCompressedModels(enc, train, nil, RepertoireConfig{
		N: 4, Delta: 0.999, MaxK: 2,
		Train: detect.TrainConfig{Epochs: 4},
		RNG:   xrand.New(25),
	}); err == nil {
		t.Fatal("impossible delta should fail")
	}
}

func TestTrainCompressedModelsValidation(t *testing.T) {
	if _, err := TrainCompressedModels(nil, nil, nil, RepertoireConfig{RNG: xrand.New(1)}); err == nil {
		t.Fatal("nil encoder accepted")
	}
}

func TestSilhouetteSeparatedBlobs(t *testing.T) {
	rng := xrand.New(500)
	var points []tensor.Vector
	var assign []int
	for i := 0; i < 30; i++ {
		points = append(points, tensor.Vector{rng.NormMS(0, 0.2), rng.NormMS(0, 0.2)})
		assign = append(assign, 0)
		points = append(points, tensor.Vector{rng.NormMS(10, 0.2), rng.NormMS(10, 0.2)})
		assign = append(assign, 1)
	}
	s := Silhouette(points, assign, 2)
	if s < 0.9 {
		t.Fatalf("well-separated blobs silhouette %v, want ~1", s)
	}
	// Scrambled assignment should score poorly.
	scrambled := make([]int, len(assign))
	for i := range scrambled {
		scrambled[i] = rng.Intn(2)
	}
	if s2 := Silhouette(points, scrambled, 2); s2 >= s/2 {
		t.Fatalf("scrambled silhouette %v should be far below %v", s2, s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if Silhouette(nil, nil, 2) != 0 {
		t.Fatal("empty silhouette should be 0")
	}
	pts := []tensor.Vector{{0}, {1}}
	if Silhouette(pts, []int{0, 0}, 1) != 0 {
		t.Fatal("k=1 silhouette should be 0")
	}
	if Silhouette(pts, []int{0}, 2) != 0 {
		t.Fatal("length mismatch should be 0")
	}
	// Singleton clusters contribute zero, not NaN.
	if s := Silhouette(pts, []int{0, 1}, 2); s != 0 {
		t.Fatalf("all-singleton silhouette = %v", s)
	}
}

func TestSilhouetteAgreesWithKMeans(t *testing.T) {
	rng := xrand.New(501)
	var points []tensor.Vector
	for i := 0; i < 40; i++ {
		points = append(points, tensor.Vector{rng.NormMS(0, 0.3), 0})
		points = append(points, tensor.Vector{rng.NormMS(8, 0.3), 0})
	}
	res2, err := KMeans(points, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res5, err := KMeans(points, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Silhouette(points, res2.Assign, 2)
	s5 := Silhouette(points, res5.Assign, 5)
	if s2 <= s5 {
		t.Fatalf("true k=2 silhouette %v should beat over-split k=5 %v", s2, s5)
	}
}

func TestInterleavedEmbedsAreIndependent(t *testing.T) {
	// Regression for the Network.Forward aliasing footgun: Embed used to
	// return a view of layer state and compensate with a defensive
	// Clone(). With frozen weights the outputs are caller-owned by
	// construction, so interleaved embeddings of different frames must
	// never overwrite each other — including through the reused-dst path.
	corpus := buildSmallCorpus(t, 22)
	train := corpus.Frames(synth.Train)
	enc, err := TrainEncoder(train, nil, EncoderConfig{Epochs: 5, RNG: xrand.New(23)})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := train[0], train[1]
	want1 := enc.Embed(f1)
	want2 := enc.Embed(f2)
	got1 := enc.Embed(f1)
	got2 := enc.Embed(f2) // must not corrupt got1
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("first embedding corrupted by second at [%d]", i)
		}
		if got2[i] != want2[i] {
			t.Fatalf("second embedding wrong at [%d]", i)
		}
	}
	d1 := tensor.NewVector(enc.EmbedDim())
	d2 := tensor.NewVector(enc.EmbedDim())
	feat1, feat2 := synth.FrameFeature(f1), synth.FrameFeature(f2)
	for trial := 0; trial < 5; trial++ {
		enc.EmbedFeatureInto(d1, feat1)
		enc.EmbedFeatureInto(d2, feat2)
		for i := range want1 {
			if d1[i] != want1[i] || d2[i] != want2[i] {
				t.Fatalf("trial %d: interleaved EmbedFeatureInto corrupted outputs", trial)
			}
		}
	}
}
