package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("anole_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("anole_test_level", "level")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var (
		reg *Registry
		tr  *Tracer
	)
	c := reg.Counter("anole_x_total", "")
	g := reg.Gauge("anole_x", "")
	h := reg.Histogram("anole_x_seconds", "", nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	tr.Record(Span{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if reg.Gather() != nil || tr.Snapshot() != nil || tr.NextSeq() != 0 {
		t.Fatal("nil registry/tracer must read as empty")
	}
	if err := WriteText(&strings.Builder{}, reg); err != nil {
		t.Fatal(err)
	}
}

func TestGetOrCreateSharesHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("anole_core_frames_total", "frames")
	b := r.Counter("anole_core_frames_total", "frames")
	if a != b {
		t.Fatal("same name must return the same handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared handle must share state")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("anole_test_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("anole_test_x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "Upper_case", "9starts_with_digit", "has-dash", "_leading"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("anole_test_latency_seconds", "lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	samples := r.Gather()
	if len(samples) != 1 {
		t.Fatalf("gathered %d samples", len(samples))
	}
	s := samples[0]
	wantCum := []int64{1, 3, 4} // <=0.01, <=0.1, <=1
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v count %d, want %d", b.Upper, b.Count, wantCum[i])
		}
	}
	// Ring-exact quantiles through internal/stats.
	if got := h.Quantile(0.5); got != 0.05 {
		t.Errorf("p50 = %v, want 0.05", got)
	}
	if got := h.Quantile(1); got != 5.0 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := h.Quantile(0); got != 0.005 {
		t.Errorf("p0 = %v, want 0.005", got)
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(0.25)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0.25 {
			t.Fatalf("q%v = %v, want 0.25", q, got)
		}
	}
}

func TestHistogramRingOverflowKeepsRecentWindow(t *testing.T) {
	h := newHistogram([]float64{1e9})
	for i := 0; i < histRing; i++ {
		h.Observe(1000) // old regime, fully overwritten below
	}
	for i := 0; i < histRing; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("p99 after overwrite = %v, want 1", got)
	}
	if h.Count() != 2*histRing {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("anole_test_ops_total", "ops so far").Add(3)
	r.Gauge("anole_test_level", "").Set(1.5)
	h := r.Histogram("anole_test_wait_seconds", "wait", []float64{0.5, 1})
	h.Observe(0.4)
	h.Observe(2)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP anole_test_ops_total ops so far",
		"# TYPE anole_test_ops_total counter",
		"anole_test_ops_total 3",
		"anole_test_level 1.5",
		"# TYPE anole_test_wait_seconds histogram",
		`anole_test_wait_seconds_bucket{le="0.5"} 1`,
		`anole_test_wait_seconds_bucket{le="1"} 1`,
		`anole_test_wait_seconds_bucket{le="+Inf"} 2`,
		"anole_test_wait_seconds_sum 2.4",
		"anole_test_wait_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMapFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("anole_test_ops_total", "").Add(2)
	h := r.Histogram("anole_test_wait_seconds", "", nil)
	h.Observe(0.1)
	h.Observe(0.3)
	m := Map(r)
	if m["anole_test_ops_total"] != 2 {
		t.Errorf("counter in map = %v", m["anole_test_ops_total"])
	}
	if m["anole_test_wait_seconds_count"] != 2 {
		t.Errorf("hist count in map = %v", m["anole_test_wait_seconds_count"])
	}
	if got := m["anole_test_wait_seconds_p50"]; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("p50 in map = %v, want 0.2", got)
	}
}

func TestValidateScheme(t *testing.T) {
	ok := []Sample{{Name: "anole_core_frames_total"}, {Name: "anole_repo_attempts_total"}}
	if err := ValidateScheme(ok); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	dup := []Sample{{Name: "anole_x_total"}, {Name: "anole_x_total"}}
	if err := ValidateScheme(dup); err == nil {
		t.Fatal("duplicate accepted")
	}
	foreign := []Sample{{Name: "other_x_total"}}
	if err := ValidateScheme(foreign); err == nil {
		t.Fatal("foreign namespace accepted")
	}
}

func TestMultiMergesAndExposesDuplicates(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("anole_a_total", "").Inc()
	b.Counter("anole_b_total", "").Add(2)
	m := Multi{a, b, nil}
	got := Map(m)
	if got["anole_a_total"] != 1 || got["anole_b_total"] != 2 {
		t.Fatalf("merged map = %v", got)
	}
	// A collision across registries must surface to ValidateScheme.
	b.Counter("anole_a_total", "").Inc()
	if err := ValidateScheme(m.Gather()); err == nil {
		t.Fatal("cross-registry duplicate not detected")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("anole_test_ops_total", "")
			h := r.Histogram("anole_test_wait_seconds", "", nil)
			g := r.Gauge("anole_test_level", "")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("anole_test_ops_total", "").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("anole_test_wait_seconds", "", nil).Count(); got != workers*each {
		t.Fatalf("hist count = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("anole_test_level", "").Value(); got != workers*each {
		t.Fatalf("gauge = %v, want %d", got, workers*each)
	}
}
