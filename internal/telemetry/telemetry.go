// Package telemetry is the repository's unified observability layer: a
// dependency-free, race-clean metrics registry (atomic counters, gauges
// and fixed-bucket histograms) plus lightweight span tracing for the
// per-frame pipeline, both built for simulated as well as wall-clock
// time.
//
// Every instrumented component — the core runtime, the sharded model
// cache, the prefetch scheduler, the circuit breaker, the repo client
// and server — registers its counters here under one naming scheme,
//
//	anole_<pkg>_<name>[_total|_seconds|_bytes]
//
// so a single Registry (or a Multi of several) renders the whole
// system's live state as Prometheus text exposition (WriteText), a flat
// JSON-friendly map (Map), or per-metric snapshots (Gather).
//
// Handles are nil-safe: a nil *Counter, *Gauge, *Histogram, *Registry
// or *Tracer accepts every call as a no-op, so instrumentation sites
// need no "is telemetry on?" branches and the disabled path costs one
// predictable nil check.
//
// Clocks are injectable everywhere a timestamp is taken (Tracer), so
// chaos tests driven by a simulated frame-tick clock observe fully
// deterministic telemetry.
package telemetry

import "fmt"

// validName reports whether name fits the metric naming scheme:
// lowercase snake_case, beginning with a letter. The "anole_" prefix is
// a repository convention checked by ValidateScheme, not here, so the
// package stays reusable.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// ValidateScheme checks a gathered snapshot against the repository
// naming convention — every metric name must be valid snake_case and
// carry the "anole_" prefix — and against accidental duplicates (two
// registries in a Multi exporting the same name). It returns the first
// violation found, nil when the snapshot is clean. CI scrapes /metrics
// and fails the build on exactly these conditions.
func ValidateScheme(samples []Sample) error {
	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		if !validName(s.Name) {
			return fmt.Errorf("telemetry: invalid metric name %q", s.Name)
		}
		if len(s.Name) < 6 || s.Name[:6] != "anole_" {
			return fmt.Errorf("telemetry: metric %q outside the anole_ namespace", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("telemetry: duplicate metric name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}
