// Package telemetry is the repository's unified observability layer: a
// dependency-free, race-clean metrics registry (atomic counters, gauges
// and fixed-bucket histograms) plus lightweight span tracing for the
// per-frame pipeline, both built for simulated as well as wall-clock
// time.
//
// Every instrumented component — the core runtime, the sharded model
// cache, the prefetch scheduler, the circuit breaker, the repo client
// and server — registers its counters here under one naming scheme,
//
//	anole_<pkg>_<name>[_total|_seconds|_bytes]
//
// so a single Registry (or a Multi of several) renders the whole
// system's live state as Prometheus text exposition (WriteText), a flat
// JSON-friendly map (Map), or per-metric snapshots (Gather).
//
// Handles are nil-safe: a nil *Counter, *Gauge, *Histogram, *Registry
// or *Tracer accepts every call as a no-op, so instrumentation sites
// need no "is telemetry on?" branches and the disabled path costs one
// predictable nil check.
//
// Clocks are injectable everywhere a timestamp is taken (Tracer), so
// chaos tests driven by a simulated frame-tick clock observe fully
// deterministic telemetry.
package telemetry

import (
	"fmt"
	"strings"
)

// validName reports whether name fits the metric naming scheme:
// lowercase snake_case, beginning with a letter. The "anole_" prefix is
// a repository convention checked by ValidateScheme, not here, so the
// package stays reusable.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// schemeFamilies are the instrumented component families the scheme
// admits as the segment after the "anole_" prefix. A metric outside
// them is either a typo or a new subsystem that must be added here
// deliberately — which is how the family list stays an inventory of
// what the fleet exports.
var schemeFamilies = map[string]bool{
	"core":       true,
	"modelcache": true,
	"prefetch":   true,
	"breaker":    true,
	"repo":       true,
	"adapt":      true,
	"pressure":   true,
	"server":     true,
	"slo":        true,
	"flight":     true,
	// fleet carries the per-device-class SLO aggregates
	// (anole_fleet_<class>_...), plan the per-device variant planner.
	"fleet": true,
	"plan":  true,
}

// histogramUnits are the unit suffixes a histogram name may carry.
// A unitless histogram ("anole_core_batch_size") is ambiguous on a
// dashboard; the scheme demands the unit in the name.
var histogramUnits = []string{"_seconds", "_bytes", "_frames"}

// ValidateScheme checks a gathered snapshot against the repository
// naming convention and returns the first violation found (nil when
// the snapshot is clean). The rules:
//
//   - every name is lowercase snake_case under the "anole_" prefix;
//   - the segment after the prefix names a known component family
//     (core, modelcache, prefetch, breaker, repo, adapt, pressure,
//     server, slo, flight, fleet, plan);
//   - no name appears twice (two registries in a Multi exporting the
//     same series);
//   - kind-aware suffixes, for samples whose Kind is set: counters end
//     "_total", gauges are bare nouns (never "_total"), histograms end
//     in a unit ("_seconds", "_bytes" or "_frames").
//
// CI scrapes /metrics and fails the build on exactly these
// conditions. Samples with a zero Kind (hand-built fixtures) skip the
// kind rules; everything produced by Registry.Gather carries its Kind.
func ValidateScheme(samples []Sample) error {
	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		if !validName(s.Name) {
			return fmt.Errorf("telemetry: invalid metric name %q", s.Name)
		}
		if len(s.Name) < 6 || s.Name[:6] != "anole_" {
			return fmt.Errorf("telemetry: metric %q outside the anole_ namespace", s.Name)
		}
		family, _, _ := strings.Cut(s.Name[6:], "_")
		if !schemeFamilies[family] {
			return fmt.Errorf("telemetry: metric %q names unknown family %q", s.Name, family)
		}
		if seen[s.Name] {
			return fmt.Errorf("telemetry: duplicate metric name %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Kind {
		case KindCounter:
			if !strings.HasSuffix(s.Name, "_total") {
				return fmt.Errorf("telemetry: counter %q must end in _total", s.Name)
			}
		case KindGauge:
			if strings.HasSuffix(s.Name, "_total") {
				return fmt.Errorf("telemetry: gauge %q must not end in _total", s.Name)
			}
		case KindHistogram:
			unit := false
			for _, u := range histogramUnits {
				if strings.HasSuffix(s.Name, u) {
					unit = true
					break
				}
			}
			if !unit {
				return fmt.Errorf("telemetry: histogram %q must carry a unit suffix (%s)",
					s.Name, strings.Join(histogramUnits, ", "))
			}
		}
	}
	return nil
}
