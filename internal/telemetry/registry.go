package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind discriminates the metric types a Registry holds.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

type metricEntry struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry is a named collection of metrics. Handles are get-or-create:
// asking twice for the same name and kind returns the same handle, so
// N streams sharing one registry share one counter and the exported
// value is the aggregate. Asking for an existing name with a different
// kind panics — that is a programming error, caught at wiring time.
//
// All methods are safe for concurrent use. A nil *Registry returns nil
// handles, which are themselves no-ops, so "telemetry off" needs no
// branches at instrumentation sites.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// lookup returns the existing entry for name after verifying the kind,
// or nil; r.mu held (any mode).
func (r *Registry) lookup(name string, kind Kind) *metricEntry {
	e, ok := r.entries[name]
	if !ok {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e
}

func (r *Registry) getOrCreate(name, help string, kind Kind, build func() *metricEntry) *metricEntry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.RLock()
	e := r.lookup(name, kind)
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kind); e != nil {
		return e
	}
	e = build()
	e.name, e.help, e.kind = name, help, kind
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registries return a nil (no-op) handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, KindCounter, func() *metricEntry {
		return &metricEntry{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registries return a nil (no-op) handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, KindGauge, func() *metricEntry {
		return &metricEntry{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given ascending bucket upper bounds (nil selects
// DefLatencyBuckets; later calls reuse the first call's buckets). Nil
// registries return a nil (no-op) handle.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, KindHistogram, func() *metricEntry {
		return &metricEntry{hist: newHistogram(bounds)}
	}).hist
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SampleBucket is one cumulative histogram bucket of a Sample.
type SampleBucket struct {
	Upper float64 `json:"le"`
	Count int64   `json:"count"`
}

// Sample is the point-in-time value of one metric, the unit of export
// shared by WriteText, Map and the tests.
type Sample struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind Kind   `json:"kind"`
	// Value carries a counter's count or a gauge's level.
	Value float64 `json:"value"`
	// Histogram-only fields: observation count and sum, cumulative
	// buckets (the implicit +Inf bucket is omitted; it equals Count),
	// and ring-exact quantiles.
	Count    int64          `json:"obsCount,omitempty"`
	Sum      float64        `json:"sum,omitempty"`
	Buckets  []SampleBucket `json:"buckets,omitempty"`
	P50, P95 float64        `json:"-"`
	P99      float64        `json:"-"`
}

// Gatherer is anything that can snapshot metrics: a Registry or a Multi
// of several.
type Gatherer interface {
	Gather() []Sample
}

// Gather snapshots every registered metric, sorted by name.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.counter.Value())
		case KindGauge:
			s.Value = e.gauge.Value()
		case KindHistogram:
			s.Count = e.hist.Count()
			s.Sum = e.hist.Sum()
			counts := e.hist.bucketCounts()
			s.Buckets = make([]SampleBucket, len(counts))
			for i, c := range counts {
				s.Buckets[i] = SampleBucket{Upper: e.hist.bounds[i], Count: c}
			}
			s.P50 = e.hist.Quantile(0.50)
			s.P95 = e.hist.Quantile(0.95)
			s.P99 = e.hist.Quantile(0.99)
		}
		out = append(out, s)
	}
	return out
}

// Multi merges several gatherers into one, concatenating their samples
// and re-sorting by name. Name collisions across children are preserved
// as duplicates so ValidateScheme (and the CI scrape check) can catch
// them.
type Multi []Gatherer

// Gather implements Gatherer.
func (m Multi) Gather() []Sample {
	var out []Sample
	for _, g := range m {
		if g == nil {
			continue
		}
		out = append(out, g.Gather()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the gatherer's snapshot in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, counters
// and gauges as single series, histograms as cumulative _bucket series
// plus _sum and _count.
func WriteText(w io.Writer, g Gatherer) error {
	if g == nil {
		return nil
	}
	for _, s := range g.Gather() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, formatFloat(b.Upper), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, formatFloat(s.Sum), s.Name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Map flattens a snapshot into a name→value map for JSON reports:
// counters and gauges map directly; a histogram named h contributes
// h_count, h_sum and ring-exact h_p50 / h_p95 / h_p99 entries.
func Map(g Gatherer) map[string]float64 {
	if g == nil {
		return nil
	}
	samples := g.Gather()
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Kind {
		case KindHistogram:
			out[s.Name+"_count"] = float64(s.Count)
			out[s.Name+"_sum"] = s.Sum
			out[s.Name+"_p50"] = s.P50
			out[s.Name+"_p95"] = s.P95
			out[s.Name+"_p99"] = s.P99
		default:
			out[s.Name] = s.Value
		}
	}
	return out
}
