package telemetry

import (
	"strconv"
	"sync"
	"time"
)

// Span is one stage of the per-frame pipeline: scene-encode+decision →
// cache-lookup → fetch/prefetch → detect. Seq identifies the frame
// (monotone across all streams sharing a Tracer), Stream the stream
// that processed it. Start is the Tracer clock at the moment the span
// was recorded; Dur is the stage's (simulated or measured) duration.
// Durations marshal as nanoseconds.
type Span struct {
	Seq    int64  `json:"seq"`
	Stream int    `json:"stream"`
	Stage  string `json:"stage"`
	// Model is the model index the stage concerned (-1 when the stage
	// has no single model, e.g. an HTTP request span).
	Model    int           `json:"model"`
	Start    time.Duration `json:"startNs"`
	Dur      time.Duration `json:"durNs"`
	Hit      bool          `json:"hit,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Err      string        `json:"err,omitempty"`
	// Trace is the causal trace ID the span belongs to: every span of
	// one frame's pipeline shares the frame's trace, and every hop of an
	// adaptation journey (drift report → cluster → retrain → publish →
	// canary → swap) shares the drift report's. Empty for untraced
	// spans.
	Trace string `json:"trace,omitempty"`
	// Event optionally names a causal milestone inside the trace (e.g.
	// "report", "publish", "canary_start", "rollback", "swap"), letting
	// a trace query reconstruct the journey without parsing Err.
	Event string `json:"event,omitempty"`
}

// Pipeline stage names recorded by core.Runtime, in frame order. The
// scene encoder and the decision head run as one simulated operation,
// so they share the decide stage.
const (
	StageDecide = "decide"
	StageCache  = "cache"
	StageFetch  = "fetch"
	StageDetect = "detect"
)

// TraceHeader is the HTTP header carrying a causal trace ID across the
// device↔cloud boundary: repo fetches and drift-report submissions set
// it, and InstrumentHandler copies it into the server-side request
// span, so one trace ID stitches both ends of every wire hop.
const TraceHeader = "X-Anole-Trace"

// FrameTrace mints the deterministic trace ID assigned at frame
// admission: "f<stream>.<seq>". Seq is globally monotone across
// streams sharing a Tracer, so the ID is unique within a run and
// reproducible across seeded reruns.
func FrameTrace(stream int, seq int64) string {
	return "f" + strconv.Itoa(stream) + "." + strconv.FormatInt(seq, 10)
}

// DriftTrace mints the deterministic trace ID assigned at drift-report
// creation: "d<stream>.g<generation>.<n>" where n counts the
// detector's emitted reports. The same ID then travels with the report
// to the cloud and back down with the generation it triggers, so the
// full device→cloud→device adaptation journey shares one trace.
func DriftTrace(stream int, generation uint64, n int) string {
	return "d" + strconv.Itoa(stream) + ".g" + strconv.FormatUint(generation, 10) + "." + strconv.Itoa(n)
}

// Tracer records spans into a bounded ring buffer: the most recent
// Cap() spans are retained, older ones overwritten. The clock is
// injectable so simulated-time runs (prefetch.LinkFetcher.Now) produce
// deterministic span timestamps; the default clock is wall time since
// construction. All methods are safe for concurrent use; a nil *Tracer
// ignores Record and reads as empty.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Duration
	ring  []Span
	total int64
	seq   int64
}

// DefaultSpanBuffer is the ring capacity NewTracer selects for cap <= 0.
const DefaultSpanBuffer = 2048

// NewTracer builds a tracer retaining the last cap spans (<= 0 selects
// DefaultSpanBuffer). A nil now selects wall time since construction.
func NewTracer(cap int, now func() time.Duration) *Tracer {
	if cap <= 0 {
		cap = DefaultSpanBuffer
	}
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &Tracer{now: now, ring: make([]Span, 0, cap)}
}

// NextSeq reserves and returns the next frame sequence number (frames
// across all streams sharing the tracer draw from one sequence).
func (t *Tracer) NextSeq() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return t.seq
}

// Record stamps s.Start from the tracer clock and appends s to the
// ring, overwriting the oldest span when full. Nil tracers drop the
// span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Start = t.now()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.total%int64(cap(t.ring))] = s
	}
	t.total++
}

// Cap returns the ring capacity (0 for nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Total returns how many spans have ever been recorded, including
// overwritten ones (0 for nil).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans oldest-first (nil for a nil or
// empty tracer).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= int64(len(t.ring)) {
		return append([]Span(nil), t.ring...)
	}
	// The ring has wrapped: the oldest retained span sits at the next
	// write position.
	head := int(t.total % int64(cap(t.ring)))
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// SnapshotFiltered returns the retained spans oldest-first, keeping
// only those matching a non-empty trace ID and/or a non-negative
// stream filter, then capping the result to the most recent limit
// spans (limit <= 0 means no cap). Nil tracers read as empty.
func (t *Tracer) SnapshotFiltered(trace string, stream, limit int) []Span {
	spans := t.Snapshot()
	if trace != "" || stream >= 0 {
		kept := spans[:0]
		for _, s := range spans {
			if trace != "" && s.Trace != trace {
				continue
			}
			if stream >= 0 && s.Stream != stream {
				continue
			}
			kept = append(kept, s)
		}
		spans = kept
	}
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	return spans
}
