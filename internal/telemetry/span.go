package telemetry

import (
	"sync"
	"time"
)

// Span is one stage of the per-frame pipeline: scene-encode+decision →
// cache-lookup → fetch/prefetch → detect. Seq identifies the frame
// (monotone across all streams sharing a Tracer), Stream the stream
// that processed it. Start is the Tracer clock at the moment the span
// was recorded; Dur is the stage's (simulated or measured) duration.
// Durations marshal as nanoseconds.
type Span struct {
	Seq    int64  `json:"seq"`
	Stream int    `json:"stream"`
	Stage  string `json:"stage"`
	// Model is the model index the stage concerned (-1 when the stage
	// has no single model, e.g. an HTTP request span).
	Model    int           `json:"model"`
	Start    time.Duration `json:"startNs"`
	Dur      time.Duration `json:"durNs"`
	Hit      bool          `json:"hit,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// Pipeline stage names recorded by core.Runtime, in frame order. The
// scene encoder and the decision head run as one simulated operation,
// so they share the decide stage.
const (
	StageDecide = "decide"
	StageCache  = "cache"
	StageFetch  = "fetch"
	StageDetect = "detect"
)

// Tracer records spans into a bounded ring buffer: the most recent
// Cap() spans are retained, older ones overwritten. The clock is
// injectable so simulated-time runs (prefetch.LinkFetcher.Now) produce
// deterministic span timestamps; the default clock is wall time since
// construction. All methods are safe for concurrent use; a nil *Tracer
// ignores Record and reads as empty.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Duration
	ring  []Span
	total int64
	seq   int64
}

// DefaultSpanBuffer is the ring capacity NewTracer selects for cap <= 0.
const DefaultSpanBuffer = 2048

// NewTracer builds a tracer retaining the last cap spans (<= 0 selects
// DefaultSpanBuffer). A nil now selects wall time since construction.
func NewTracer(cap int, now func() time.Duration) *Tracer {
	if cap <= 0 {
		cap = DefaultSpanBuffer
	}
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	return &Tracer{now: now, ring: make([]Span, 0, cap)}
}

// NextSeq reserves and returns the next frame sequence number (frames
// across all streams sharing the tracer draw from one sequence).
func (t *Tracer) NextSeq() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return t.seq
}

// Record stamps s.Start from the tracer clock and appends s to the
// ring, overwriting the oldest span when full. Nil tracers drop the
// span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Start = t.now()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.total%int64(cap(t.ring))] = s
	}
	t.total++
}

// Cap returns the ring capacity (0 for nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Total returns how many spans have ever been recorded, including
// overwritten ones (0 for nil).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans oldest-first (nil for a nil or
// empty tracer).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= int64(len(t.ring)) {
		return append([]Span(nil), t.ring...)
	}
	// The ring has wrapped: the oldest retained span sits at the next
	// write position.
	head := int(t.total % int64(cap(t.ring)))
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}
