package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricsHandler serves the gatherer's snapshot as Prometheus text
// exposition — the GET /metrics surface of anole-server and the
// anole-run -metrics-addr debug listener.
func MetricsHandler(g Gatherer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, g)
	})
}

// DefaultSpanDumpLimit caps how many spans one /debug/spans request
// returns when the caller does not pass an explicit limit, so a large
// ring does not dump megabytes per request.
const DefaultSpanDumpLimit = 4096

// SpansHandler serves the tracer's retained spans as a JSON array,
// oldest first — the GET /debug/spans surface. Query parameters narrow
// the dump: ?stream=N keeps one stream's spans, ?trace=ID keeps one
// causal trace's, and ?limit=N caps the response to the most recent N
// spans (default DefaultSpanDumpLimit).
func SpansHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		stream := -1
		if v := q.Get("stream"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad stream: want a non-negative integer", http.StatusBadRequest)
				return
			}
			stream = n
		}
		limit := DefaultSpanDumpLimit
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: want a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		spans := t.SnapshotFiltered(q.Get("trace"), stream, limit)
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(spans)
	})
}

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// InstrumentHandler wraps next with request telemetry: a total-request
// counter, an error (status >= 500) counter, a wall-clock latency
// histogram, and one span per request (Stage = METHOD path) in the
// tracer. Metric names are prefixed "anole_<component>_"; any of reg
// and tracer may be nil.
func InstrumentHandler(reg *Registry, tracer *Tracer, component string, next http.Handler) http.Handler {
	requests := reg.Counter("anole_"+component+"_requests_total", "HTTP requests served")
	errors := reg.Counter("anole_"+component+"_request_errors_total", "HTTP responses with status >= 500")
	latency := reg.Histogram("anole_"+component+"_request_seconds", "HTTP request wall-clock latency", nil)
	inflight := reg.Gauge("anole_"+component+"_inflight_requests", "HTTP requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		inflight.Add(-1)
		d := time.Since(start)
		requests.Inc()
		latency.Observe(d.Seconds())
		span := Span{
			Seq:   tracer.NextSeq(),
			Stage: r.Method + " " + r.URL.Path,
			Model: -1,
			Dur:   d,
			Trace: r.Header.Get(TraceHeader),
		}
		if rec.status >= 500 {
			errors.Inc()
			span.Err = http.StatusText(rec.status)
		}
		tracer.Record(span)
	})
}

// ParsedSeries is one scraped Prometheus series: a metric name, its
// sorted label set rendered verbatim (e.g. `{le="0.5"}`, empty for
// unlabeled series), and the value.
type ParsedSeries struct {
	Name   string
	Labels string
	Value  float64
}

// ParseText parses Prometheus text exposition (the format WriteText
// emits) into series. It returns an error on malformed lines or on
// duplicate series — the same (name, labels) appearing twice — which is
// what the CI scrape check and the modelserver example dashboard
// consume.
func ParseText(r io.Reader) ([]ParsedSeries, error) {
	var out []ParsedSeries
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name[{labels}] value": split on the last space.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("telemetry: malformed series line %q", line)
		}
		series, valText := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad value in %q: %w", line, err)
		}
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
			if !strings.HasSuffix(labels, "}") {
				return nil, fmt.Errorf("telemetry: malformed labels in %q", line)
			}
		}
		if seen[series] {
			return nil, fmt.Errorf("telemetry: duplicate series %q", series)
		}
		seen[series] = true
		out = append(out, ParsedSeries{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LintText validates a Prometheus text exposition (the format WriteText
// emits) against the repository metric naming scheme: every metric's
// kind is read from its # TYPE header, every series must belong to a
// declared metric (histograms expose _bucket/_sum/_count under the
// declared base name), and the declared set must pass ValidateScheme's
// family, suffix and uniqueness rules. This is the Go half of the CI
// scrape check — cmd/anole-metrics-lint pipes a live scrape through it.
func LintText(r io.Reader) error {
	kinds := make(map[string]Kind)
	var samples []Sample
	var body strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		rest, isType := strings.CutPrefix(line, "# TYPE ")
		if !isType {
			if !strings.HasPrefix(line, "#") {
				body.WriteString(line)
				body.WriteByte('\n')
			}
			continue
		}
		name, kindText, found := strings.Cut(rest, " ")
		if !found {
			return fmt.Errorf("telemetry: malformed TYPE line %q", line)
		}
		var k Kind
		switch kindText {
		case "counter":
			k = KindCounter
		case "gauge":
			k = KindGauge
		case "histogram":
			k = KindHistogram
		default:
			return fmt.Errorf("telemetry: metric %q declares unknown type %q", name, kindText)
		}
		if _, dup := kinds[name]; dup {
			return fmt.Errorf("telemetry: metric %q declared twice", name)
		}
		kinds[name] = k
		samples = append(samples, Sample{Name: name, Kind: k})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	series, err := ParseText(strings.NewReader(body.String()))
	if err != nil {
		return err
	}
	for _, s := range series {
		if _, ok := kinds[s.Name]; ok {
			continue
		}
		base := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(s.Name, suffix); ok {
				base = b
				break
			}
		}
		if kinds[base] != KindHistogram {
			return fmt.Errorf("telemetry: series %q has no TYPE declaration", s.Name)
		}
	}
	return ValidateScheme(samples)
}

// SeriesValue returns the value of the unlabeled series name in a
// parsed scrape (0, false when absent).
func SeriesValue(series []ParsedSeries, name string) (float64, bool) {
	for _, s := range series {
		if s.Name == name && s.Labels == "" {
			return s.Value, true
		}
	}
	return 0, false
}

// ScrapedQuantile estimates the q-th quantile of histogram name from
// its scraped _bucket series by linear interpolation inside the bucket
// that crosses the target rank — the standard histogram_quantile
// estimate. Returns 0, false when the histogram is absent or empty.
func ScrapedQuantile(series []ParsedSeries, name string, q float64) (float64, bool) {
	type bucket struct {
		upper float64
		count float64
	}
	var buckets []bucket
	for _, s := range series {
		if s.Name != name+"_bucket" {
			continue
		}
		le := s.Labels
		le = strings.TrimPrefix(le, `{le="`)
		le = strings.TrimSuffix(le, `"}`)
		var upper float64
		if le == "+Inf" {
			upper = le64Inf
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			upper = v
		}
		buckets = append(buckets, bucket{upper: upper, count: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].upper < buckets[j].upper })
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	rank := q * total
	var prevUpper, prevCount float64
	for _, b := range buckets {
		if b.count >= rank {
			if b.upper == le64Inf {
				return prevUpper, true
			}
			if b.count == prevCount {
				return b.upper, true
			}
			frac := (rank - prevCount) / (b.count - prevCount)
			return prevUpper + (b.upper-prevUpper)*frac, true
		}
		prevUpper, prevCount = b.upper, b.count
	}
	return prevUpper, true
}

// le64Inf stands in for the +Inf bucket bound during parsing.
const le64Inf = 1e308
