package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsWithInjectedClock(t *testing.T) {
	var clock time.Duration
	tr := NewTracer(8, func() time.Duration { return clock })
	clock = 100 * time.Millisecond
	tr.Record(Span{Seq: tr.NextSeq(), Stage: StageDecide, Dur: time.Millisecond})
	clock = 200 * time.Millisecond
	tr.Record(Span{Seq: tr.NextSeq(), Stage: StageDetect, Dur: 2 * time.Millisecond})

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Start != 100*time.Millisecond || spans[1].Start != 200*time.Millisecond {
		t.Fatalf("starts = %v, %v — clock not injected", spans[0].Start, spans[1].Start)
	}
	if spans[0].Seq != 1 || spans[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d", spans[0].Seq, spans[1].Seq)
	}
}

func TestTracerRingOverwritesOldestFirst(t *testing.T) {
	tr := NewTracer(4, func() time.Duration { return 0 })
	for i := 0; i < 10; i++ {
		tr.Record(Span{Seq: int64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int64(6 + i); s.Seq != want {
			t.Fatalf("span %d seq = %d, want %d (oldest-first order)", i, s.Seq, want)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0, nil)
	if tr.Cap() != DefaultSpanBuffer {
		t.Fatalf("cap = %d, want %d", tr.Cap(), DefaultSpanBuffer)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Span{Seq: tr.NextSeq(), Stream: stream, Stage: StageCache})
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d", tr.Total())
	}
	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("retained %d spans", got)
	}
}
