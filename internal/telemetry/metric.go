package telemetry

import (
	"math"
	"sort"
	"sync/atomic"

	"anole/internal/stats"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter ignores writes and reads as 0, so
// components can hold handles unconditionally and pay one nil check
// when telemetry is disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value (cache residency, breaker
// state, stream count). The zero value reads as 0; nil is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d atomically (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histRing is the bounded sample reservoir a Histogram keeps for exact
// quantile extraction: the most recent histRing observations, stored as
// float bits. 1024 samples bound the error of p99 on a steady stream
// while keeping the memory cost of a histogram fixed.
const histRing = 1024

// Histogram counts observations into fixed buckets (cumulative counts
// are rendered in Prometheus text form) and additionally retains a
// bounded ring of recent raw observations, from which Quantile extracts
// p50/p95/p99 through the internal/stats quantile code — exact over the
// retained window, deterministic under a simulated clock. All methods
// are safe for concurrent use; nil is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64

	ring [histRing]atomic.Uint64
	pos  atomic.Int64 // total writes; ring index = (pos-1) % histRing
}

// DefLatencyBuckets covers simulated frame latencies and link stalls,
// in seconds: 250µs to 10s.
var DefLatencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// newHistogram builds a histogram over the given ascending upper
// bounds; nil or empty bounds select DefLatencyBuckets.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	idx := h.pos.Add(1) - 1
	h.ring[idx%histRing].Store(math.Float64bits(v))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// samples snapshots the retained ring (at most histRing most-recent
// observations), unordered.
func (h *Histogram) samples() []float64 {
	n := h.pos.Load()
	if n > histRing {
		n = histRing
	}
	out := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, math.Float64frombits(h.ring[i].Load()))
	}
	return out
}

// Quantile returns the q-th quantile of the retained observation window
// via stats.Quantile (0 when nothing has been observed). With a ring
// larger than the run's observation count this is the exact quantile of
// the run.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return stats.Quantile(h.samples(), q)
}

// bucketCounts returns the cumulative per-bucket counts aligned with
// Bounds; the final +Inf bucket equals Count.
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the configured upper bounds (without the implicit
// +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}
