package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("anole_test_hits_total", "hits").Add(7)
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	series, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := SeriesValue(series, "anole_test_hits_total"); !ok || v != 7 {
		t.Fatalf("scraped %v, %v", v, ok)
	}
}

func TestSpansHandlerServesJSON(t *testing.T) {
	tr := NewTracer(4, func() time.Duration { return 42 })
	tr.Record(Span{Seq: 1, Stage: StageFetch, Model: 2, Dur: time.Second})
	rec := httptest.NewRecorder()
	SpansHandler(tr).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/spans", nil))
	var spans []Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Stage != StageFetch || spans[0].Start != 42 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestInstrumentHandlerCountsAndTraces(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8, nil)
	h := InstrumentHandler(reg, tr, "server", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	for _, path := range []string{"/v1/manifest", "/v1/manifest", "/boom"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	if got := reg.Counter("anole_server_requests_total", "").Value(); got != 3 {
		t.Fatalf("requests = %d", got)
	}
	if got := reg.Counter("anole_server_request_errors_total", "").Value(); got != 1 {
		t.Fatalf("errors = %d", got)
	}
	if got := reg.Histogram("anole_server_request_seconds", "", nil).Count(); got != 3 {
		t.Fatalf("latency observations = %d", got)
	}
	if got := reg.Gauge("anole_server_inflight_requests", "").Value(); got != 0 {
		t.Fatalf("inflight after quiescence = %v", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[2].Err == "" {
		t.Fatal("5xx span missing error")
	}
}

func TestParseTextRejectsDuplicates(t *testing.T) {
	dup := "anole_x_total 1\nanole_x_total 2\n"
	if _, err := ParseText(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate series accepted")
	}
	// Same name with distinct labels is legal (histogram buckets).
	ok := "anole_x_bucket{le=\"1\"} 1\nanole_x_bucket{le=\"+Inf\"} 2\n"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Fatalf("labeled series rejected: %v", err)
	}
}

func TestScrapedQuantileInterpolates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("anole_test_wait_seconds", "", []float64{0.1, 0.2, 0.4})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in the (0.1, 0.2] bucket
	}
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	p95, ok := ScrapedQuantile(series, "anole_test_wait_seconds", 0.95)
	if !ok {
		t.Fatal("histogram not found")
	}
	if p95 < 0.1 || p95 > 0.2 {
		t.Fatalf("p95 = %v, want within (0.1, 0.2]", p95)
	}
	if math.IsNaN(p95) {
		t.Fatal("NaN quantile")
	}
	if _, ok := ScrapedQuantile(series, "anole_absent_seconds", 0.5); ok {
		t.Fatal("absent histogram reported present")
	}
}

// TestLintTextAcceptsRealExposition feeds LintText a genuine registry
// scrape — counters, gauges and histograms across several families —
// and expects a clean pass.
func TestLintTextAcceptsRealExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("anole_core_frames_total", "frames").Add(7)
	r.Gauge("anole_slo_served_fraction", "served").Set(0.99)
	r.Histogram("anole_prefetch_wait_seconds", "wait", nil).Observe(0.05)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	if err := LintText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("clean exposition rejected: %v", err)
	}
}

// TestLintTextRejectsSchemeViolations pins each failure mode the CI
// scrape check exists to catch.
func TestLintTextRejectsSchemeViolations(t *testing.T) {
	cases := map[string]string{
		"series without TYPE": "anole_core_frames_total 1\n",
		"unknown family": "# TYPE anole_mystery_frames_total counter\n" +
			"anole_mystery_frames_total 1\n",
		"counter missing _total": "# TYPE anole_core_frames counter\n" +
			"anole_core_frames 1\n",
		"gauge ending _total": "# TYPE anole_core_pending_total gauge\n" +
			"anole_core_pending_total 1\n",
		"unitless histogram": "# TYPE anole_core_batch histogram\n" +
			"anole_core_batch_bucket{le=\"+Inf\"} 1\n" +
			"anole_core_batch_sum 1\nanole_core_batch_count 1\n",
		"duplicate TYPE": "# TYPE anole_core_frames_total counter\n" +
			"# TYPE anole_core_frames_total counter\n" +
			"anole_core_frames_total 1\n",
		"unknown type keyword": "# TYPE anole_core_frames_total summary\n" +
			"anole_core_frames_total 1\n",
		"duplicate series": "# TYPE anole_core_frames_total counter\n" +
			"anole_core_frames_total 1\nanole_core_frames_total 2\n",
		"outside anole_ namespace": "# TYPE requests_total counter\n" +
			"requests_total 1\n",
		"histogram series under non-histogram base": "# TYPE anole_core_frames_total counter\n" +
			"anole_core_frames_total 1\nanole_core_wait_seconds_bucket{le=\"+Inf\"} 1\n",
	}
	for name, text := range cases {
		if err := LintText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
}
