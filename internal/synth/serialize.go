package synth

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Corpus file format (all little-endian):
//
//	magic    [4]byte "ANLD"
//	version  uint16 (1)
//	config:  seed uint64, gridW/gridH/featDim uint16,
//	         sceneShift/noiseStd/clutterStd float64, maxObjects uint16
//	clips    uint32, then per clip:
//	  dataset uint8, id uint32, seen uint8, frames uint32
//	  per frame:
//	    scene uint16, brightness float64, contrast float64,
//	    objects uint8 ×(cell uint16, class uint8, size float64),
//	    cells (gridW·gridH·featDim) float64
//	crc32    uint32 (IEEE, over everything after the magic)
//
// Exporting a corpus pins the exact labeled trace an experiment ran on,
// so cloud- and device-side tooling (and external analysis) see identical
// data.
const (
	corpusMagic   = "ANLD"
	corpusVersion = 1
	maxClips      = 1 << 20
	maxFrames     = 1 << 24
)

// WriteCorpus serializes the corpus (and its world configuration, for
// provenance) to w.
func (c *Corpus) WriteCorpus(w io.Writer) error {
	if c.World == nil {
		return fmt.Errorf("synth: corpus has no world")
	}
	if _, err := w.Write([]byte(corpusMagic)); err != nil {
		return fmt.Errorf("synth: write magic: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	cfg := c.World.Config()
	if err := binWrite(mw,
		uint16(corpusVersion),
		cfg.Seed,
		uint16(cfg.GridW), uint16(cfg.GridH), uint16(cfg.FeatDim),
		cfg.SceneShift, cfg.NoiseStd, cfg.ClutterStd,
		uint16(cfg.MaxObjects),
		uint32(len(c.Clips)),
	); err != nil {
		return fmt.Errorf("synth: write header: %w", err)
	}
	for ci, clip := range c.Clips {
		seen := uint8(0)
		if clip.Seen {
			seen = 1
		}
		if err := binWrite(mw, uint8(clip.Dataset), uint32(clip.ID), seen, uint32(len(clip.Frames))); err != nil {
			return fmt.Errorf("synth: write clip %d: %w", ci, err)
		}
		for fi, f := range clip.Frames {
			if err := writeFrame(mw, cfg, f); err != nil {
				return fmt.Errorf("synth: write clip %d frame %d: %w", ci, fi, err)
			}
		}
	}
	if err := binWrite(w, crc.Sum32()); err != nil {
		return fmt.Errorf("synth: write checksum: %w", err)
	}
	return nil
}

func writeFrame(w io.Writer, cfg Config, f *Frame) error {
	if len(f.Objects) > 255 {
		return fmt.Errorf("frame has %d objects", len(f.Objects))
	}
	if err := binWrite(w, uint16(f.Scene.Index()), f.Brightness, f.Contrast, uint8(len(f.Objects))); err != nil {
		return err
	}
	for _, o := range f.Objects {
		if err := binWrite(w, uint16(o.Cell), uint8(o.Class), o.Size); err != nil {
			return err
		}
	}
	want := cfg.Cells() * cfg.FeatDim
	if len(f.Cells) != want {
		return fmt.Errorf("frame has %d cell floats, want %d", len(f.Cells), want)
	}
	buf := make([]byte, 8*len(f.Cells))
	for i, x := range f.Cells {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// ReadCorpus deserializes a corpus written by WriteCorpus, reconstructing
// the generating world from the stored configuration and verifying the
// checksum.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("synth: read magic: %w", err)
	}
	if string(magic) != corpusMagic {
		return nil, fmt.Errorf("synth: bad magic %q", magic)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	var (
		version                uint16
		seed                   uint64
		gridW, gridH, featDim  uint16
		shift, noise, clutter  float64
		maxObjects, _clipCount = uint16(0), uint32(0)
	)
	if err := binRead(tr, &version, &seed, &gridW, &gridH, &featDim,
		&shift, &noise, &clutter, &maxObjects, &_clipCount); err != nil {
		return nil, fmt.Errorf("synth: read header: %w", err)
	}
	if version != corpusVersion {
		return nil, fmt.Errorf("synth: unsupported version %d", version)
	}
	if _clipCount > maxClips {
		return nil, fmt.Errorf("synth: implausible clip count %d", _clipCount)
	}
	cfg := Config{
		Seed:       seed,
		GridW:      int(gridW),
		GridH:      int(gridH),
		FeatDim:    int(featDim),
		SceneShift: shift,
		NoiseStd:   noise,
		ClutterStd: clutter,
		MaxObjects: int(maxObjects),
	}
	world, err := NewWorld(cfg)
	if err != nil {
		return nil, fmt.Errorf("synth: rebuild world: %w", err)
	}

	corpus := &Corpus{World: world}
	totalFrames := 0
	for ci := 0; ci < int(_clipCount); ci++ {
		var (
			dataset, seen uint8
			id, frames    uint32
		)
		if err := binRead(tr, &dataset, &id, &seen, &frames); err != nil {
			return nil, fmt.Errorf("synth: read clip %d: %w", ci, err)
		}
		totalFrames += int(frames)
		if totalFrames > maxFrames {
			return nil, fmt.Errorf("synth: implausible total frame count %d", totalFrames)
		}
		clip := &Clip{Dataset: DatasetID(dataset), ID: int(id), Seen: seen != 0}
		for fi := 0; fi < int(frames); fi++ {
			f, err := readFrame(tr, cfg)
			if err != nil {
				return nil, fmt.Errorf("synth: read clip %d frame %d: %w", ci, fi, err)
			}
			f.Dataset = clip.Dataset
			f.Clip = clip.ID
			f.Index = fi
			clip.Frames = append(clip.Frames, f)
		}
		corpus.Clips = append(corpus.Clips, clip)
	}
	wantCRC := crc.Sum32()
	var gotCRC uint32
	if err := binRead(br, &gotCRC); err != nil {
		return nil, fmt.Errorf("synth: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("synth: checksum mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}
	return corpus, nil
}

func readFrame(r io.Reader, cfg Config) (*Frame, error) {
	var (
		sceneIdx             uint16
		brightness, contrast float64
		objCount             uint8
	)
	if err := binRead(r, &sceneIdx, &brightness, &contrast, &objCount); err != nil {
		return nil, err
	}
	if int(sceneIdx) >= NumScenes {
		return nil, fmt.Errorf("scene index %d out of range", sceneIdx)
	}
	f := &Frame{
		Scene:      SceneFromIndex(int(sceneIdx)),
		Brightness: brightness,
		Contrast:   contrast,
		featDim:    cfg.FeatDim,
	}
	cells := cfg.Cells()
	for i := 0; i < int(objCount); i++ {
		var (
			cell  uint16
			class uint8
			size  float64
		)
		if err := binRead(r, &cell, &class, &size); err != nil {
			return nil, err
		}
		if int(cell) >= cells || int(class) >= NumClasses {
			return nil, fmt.Errorf("object %d out of range (cell %d, class %d)", i, cell, class)
		}
		f.Objects = append(f.Objects, Object{Cell: int(cell), Class: Class(class), Size: size})
	}
	f.Cells = make([]float64, cells*cfg.FeatDim)
	buf := make([]byte, 8*len(f.Cells))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for i := range f.Cells {
		f.Cells[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return f, nil
}

// SaveCorpusFile writes the corpus to path atomically.
func SaveCorpusFile(path string, c *Corpus) error {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			break
		}
	}
	tmp, err := os.CreateTemp(dir, ".corpus-*")
	if err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := c.WriteCorpus(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("synth: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	return nil
}

// LoadCorpusFile reads a corpus from disk.
func LoadCorpusFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	defer f.Close()
	return ReadCorpus(f)
}

func binWrite(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func binRead(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}
