package synth

import (
	"math"
	"testing"
	"testing/quick"

	"anole/internal/xrand"
)

func testWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	w, err := NewWorld(DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSceneIndexRoundtrip(t *testing.T) {
	for idx := 0; idx < NumScenes; idx++ {
		s := SceneFromIndex(idx)
		if s.Index() != idx {
			t.Fatalf("roundtrip failed at %d -> %v -> %d", idx, s, s.Index())
		}
	}
}

func TestSceneIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SceneFromIndex(NumScenes)
}

func TestNumScenesIs120(t *testing.T) {
	if NumScenes != 120 {
		t.Fatalf("NumScenes = %d, want 120 (paper §IV-A1)", NumScenes)
	}
}

func TestAttributeStrings(t *testing.T) {
	if Clear.String() != "clear" || Tunnel.String() != "tunnel" || Night.String() != "night" {
		t.Fatal("attribute names wrong")
	}
	if Weather(99).String() == "" || Location(99).String() == "" || TimeOfDay(99).String() == "" {
		t.Fatal("out-of-range attributes must still print")
	}
	s := Scene{Weather: Foggy, Location: Bridge, Time: Night}
	if s.String() != "foggy/bridge/night" {
		t.Fatalf("scene string: %s", s)
	}
	if Car.String() != "car" || Class(9).String() == "" {
		t.Fatal("class names wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.GridW = 0
	if bad.Validate() == nil {
		t.Fatal("zero grid accepted")
	}
	bad = good
	bad.FeatDim = -1
	if bad.Validate() == nil {
		t.Fatal("negative feat dim accepted")
	}
	bad = good
	bad.SceneShift = -1
	if bad.Validate() == nil {
		t.Fatal("negative shift accepted")
	}
	bad = good
	bad.MaxObjects = -1
	if bad.Validate() == nil {
		t.Fatal("negative max objects accepted")
	}
}

func TestGenerateFrameShape(t *testing.T) {
	w := testWorld(t, 1)
	rng := xrand.New(2)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, rng)
	if f.NumCells() != 64 {
		t.Fatalf("cells = %d", f.NumCells())
	}
	if f.FeatDim() != 8 {
		t.Fatalf("feat dim = %d", f.FeatDim())
	}
	if f.Brightness < 0 || f.Brightness > 1 || f.Contrast < 0 || f.Contrast > 1 {
		t.Fatalf("illumination out of range: %v %v", f.Brightness, f.Contrast)
	}
	for _, o := range f.Objects {
		if o.Cell < 0 || o.Cell >= 64 {
			t.Fatalf("object cell %d out of range", o.Cell)
		}
		if o.Size <= 0 {
			t.Fatalf("object size %v", o.Size)
		}
	}
}

func TestObjectsOnDistinctCells(t *testing.T) {
	w := testWorld(t, 3)
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 2, rng)
		seen := make(map[int]bool)
		for _, o := range f.Objects {
			if seen[o.Cell] {
				t.Fatal("two objects share a cell")
			}
			seen[o.Cell] = true
		}
	}
}

func TestGenerateFrameDeterministic(t *testing.T) {
	w1 := testWorld(t, 7)
	w2 := testWorld(t, 7)
	f1 := w1.GenerateFrame(Scene{Rainy, Highway, Night}, 1, xrand.New(9))
	f2 := w2.GenerateFrame(Scene{Rainy, Highway, Night}, 1, xrand.New(9))
	for i := range f1.Cells {
		if f1.Cells[i] != f2.Cells[i] {
			t.Fatal("worlds with identical seeds generated different frames")
		}
	}
	if len(f1.Objects) != len(f2.Objects) {
		t.Fatal("object counts differ")
	}
}

func TestNightDarkerThanDay(t *testing.T) {
	w := testWorld(t, 11)
	rng := xrand.New(12)
	var day, night float64
	const n = 200
	for i := 0; i < n; i++ {
		day += w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, rng).Brightness
		night += w.GenerateFrame(Scene{Clear, Urban, Night}, 1, rng).Brightness
	}
	if night/n >= day/n {
		t.Fatalf("night brightness %v not below day %v", night/n, day/n)
	}
}

func TestFogCrushesContrast(t *testing.T) {
	w := testWorld(t, 13)
	rng := xrand.New(14)
	var clear, foggy float64
	const n = 200
	for i := 0; i < n; i++ {
		clear += w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, rng).Contrast
		foggy += w.GenerateFrame(Scene{Foggy, Urban, Daytime}, 1, rng).Contrast
	}
	if foggy/n >= clear/n {
		t.Fatalf("fog contrast %v not below clear %v", foggy/n, clear/n)
	}
}

func TestUrbanDenserThanHighway(t *testing.T) {
	w := testWorld(t, 15)
	rng := xrand.New(16)
	var urban, highway int
	const n = 300
	for i := 0; i < n; i++ {
		urban += len(w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, rng).Objects)
		highway += len(w.GenerateFrame(Scene{Clear, Highway, Daytime}, 1, rng).Objects)
	}
	if urban <= highway {
		t.Fatalf("urban objects %d not above highway %d", urban, highway)
	}
}

func TestSceneShiftZeroRemovesConditioning(t *testing.T) {
	cfg := DefaultConfig(17)
	cfg.SceneShift = 0
	cfg.NoiseStd = 0
	cfg.ClutterStd = 0
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With no shift/noise/clutter, an empty cell's features depend only
	// on the location background, not on weather or time.
	sA := Scene{Clear, Urban, Daytime}
	sB := Scene{Foggy, Urban, Daytime} // same location, different weather
	mk := func(s Scene) *Frame {
		f := w.GenerateFrame(s, 0, xrand.New(1))
		return f
	}
	fa, fb := mk(sA), mk(sB)
	for i := range fa.Cells {
		if math.Abs(fa.Cells[i]-fb.Cells[i]) > 1e-9 {
			t.Fatalf("shift-0 features differ across weather at %d: %v vs %v", i, fa.Cells[i], fb.Cells[i])
		}
	}
}

func TestSceneShiftSeparatesScenes(t *testing.T) {
	cfg := DefaultConfig(18)
	cfg.NoiseStd = 0
	cfg.ClutterStd = 0
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 0, xrand.New(1))
	fb := w.GenerateFrame(Scene{Foggy, Urban, Night}, 0, xrand.New(1))
	var diff float64
	for i := range fa.Cells {
		diff += math.Abs(fa.Cells[i] - fb.Cells[i])
	}
	if diff < 1 {
		t.Fatalf("scenes should differ in feature space; total |diff| = %v", diff)
	}
}

func TestAreaRatio(t *testing.T) {
	w := testWorld(t, 19)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, xrand.New(20))
	r := f.AreaRatio()
	if r < 0 || r > 1 {
		t.Fatalf("area ratio %v", r)
	}
	empty := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 0, xrand.New(21))
	if len(empty.Objects) != 0 || empty.AreaRatio() != 0 {
		t.Fatalf("zero-density frame has %d objects", len(empty.Objects))
	}
}

func TestObjectAt(t *testing.T) {
	w := testWorld(t, 22)
	rng := xrand.New(23)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 2, rng)
	if len(f.Objects) == 0 {
		t.Skip("no objects drawn")
	}
	o := f.Objects[0]
	got, ok := f.ObjectAt(o.Cell)
	if !ok || got.Class != o.Class {
		t.Fatal("ObjectAt missed a placed object")
	}
	occupied := make(map[int]bool)
	for _, obj := range f.Objects {
		occupied[obj.Cell] = true
	}
	for c := 0; c < f.NumCells(); c++ {
		if !occupied[c] {
			if _, ok := f.ObjectAt(c); ok {
				t.Fatal("ObjectAt found an object on an empty cell")
			}
			break
		}
	}
}

func TestGenerateClip(t *testing.T) {
	w := testWorld(t, 24)
	p := DefaultProfiles(1)[0]
	clip := w.GenerateClip(p, 5, xrand.New(25))
	if len(clip.Frames) != p.FramesPerClip {
		t.Fatalf("frames = %d, want %d", len(clip.Frames), p.FramesPerClip)
	}
	for i, f := range clip.Frames {
		if f.Clip != 5 || f.Index != i || f.Dataset != KITTI {
			t.Fatalf("frame metadata wrong: %+v", f)
		}
	}
}

func TestClipScenePersistence(t *testing.T) {
	w := testWorld(t, 26)
	p := DefaultProfiles(1)[1] // BDD: persistence 0.95
	clip := w.GenerateClip(p, 0, xrand.New(27))
	switches := 0
	for i := 1; i < len(clip.Frames); i++ {
		if clip.Frames[i].Scene != clip.Frames[i-1].Scene {
			switches++
		}
	}
	// With persistence 0.95 over ~150 frames expect ~7 switches; a
	// uniform draw would give far more.
	if switches > len(clip.Frames)/3 {
		t.Fatalf("too many scene switches: %d over %d frames", switches, len(clip.Frames))
	}
}

func TestDriftChangesOneAttribute(t *testing.T) {
	p := DefaultProfiles(1)[1]
	rng := xrand.New(28)
	s := Scene{Clear, Urban, Daytime}
	for i := 0; i < 200; i++ {
		next := p.drift(s, rng)
		changed := 0
		if next.Weather != s.Weather {
			changed++
		}
		if next.Location != s.Location {
			changed++
		}
		if next.Time != s.Time {
			changed++
		}
		if changed > 1 {
			t.Fatalf("drift changed %d attributes", changed)
		}
	}
}

func TestGenerateCorpusSplits(t *testing.T) {
	w := testWorld(t, 29)
	profiles := DefaultProfiles(0.3)
	corpus := w.GenerateCorpus(profiles)

	var wantClips int
	for _, p := range profiles {
		wantClips += p.Clips
	}
	if len(corpus.Clips) != wantClips {
		t.Fatalf("clips = %d, want %d", len(corpus.Clips), wantClips)
	}
	seen, unseen := corpus.SeenClips(), corpus.UnseenClips()
	if len(seen)+len(unseen) != wantClips {
		t.Fatal("seen/unseen do not partition")
	}
	if len(unseen) == 0 {
		t.Fatal("no unseen clips held out")
	}
	// Each dataset with ≥2 clips must hold out at least one clip.
	unseenPer := make(map[DatasetID]int)
	for _, c := range unseen {
		unseenPer[c.Dataset]++
	}
	for _, p := range profiles {
		if p.Clips >= 2 && unseenPer[p.Dataset] == 0 {
			t.Fatalf("dataset %v has no unseen clip", p.Dataset)
		}
	}

	train := corpus.Frames(Train)
	val := corpus.Frames(Val)
	test := corpus.Frames(Test)
	uns := corpus.Frames(Unseen)
	total := len(train) + len(val) + len(test) + len(uns)
	if total != corpus.TotalFrames() {
		t.Fatalf("splits do not partition: %d vs %d", total, corpus.TotalFrames())
	}
	// Ratios of seen frames approximately 6:2:2.
	seenTotal := len(train) + len(val) + len(test)
	ratio := float64(len(train)) / float64(seenTotal)
	if ratio < 0.55 || ratio > 0.65 {
		t.Fatalf("train ratio = %v", ratio)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	build := func() *Corpus {
		w, err := NewWorld(DefaultConfig(31))
		if err != nil {
			t.Fatal(err)
		}
		return w.GenerateCorpus(DefaultProfiles(0.2))
	}
	a, b := build(), build()
	if a.TotalFrames() != b.TotalFrames() {
		t.Fatal("corpus sizes differ")
	}
	fa := a.Clips[0].Frames[0]
	fb := b.Clips[0].Frames[0]
	for i := range fa.Cells {
		if fa.Cells[i] != fb.Cells[i] {
			t.Fatal("corpora differ despite identical seeds")
		}
	}
}

func TestScenesPresent(t *testing.T) {
	w := testWorld(t, 32)
	corpus := w.GenerateCorpus(DefaultProfiles(0.3))
	scenes := corpus.ScenesPresent()
	if len(scenes) == 0 {
		t.Fatal("no scenes present")
	}
	for i := 1; i < len(scenes); i++ {
		if scenes[i] <= scenes[i-1] {
			t.Fatal("scenes not sorted/unique")
		}
	}
	for _, idx := range scenes {
		if idx < 0 || idx >= NumScenes {
			t.Fatalf("scene index %d out of range", idx)
		}
	}
}

func TestSplitOf(t *testing.T) {
	n := 100
	// Interleaved 6:2:2 blocks: within each run of ten frames, the
	// first six train, the next two validate, the last two test.
	for _, i := range []int{0, 5, 10, 15, 25} {
		if SplitOf(i, n, true) != Train {
			t.Fatalf("frame %d should be Train", i)
		}
	}
	for _, i := range []int{6, 7, 16, 17} {
		if SplitOf(i, n, true) != Val {
			t.Fatalf("frame %d should be Val", i)
		}
	}
	for _, i := range []int{8, 9, 18, 19} {
		if SplitOf(i, n, true) != Test {
			t.Fatalf("frame %d should be Test", i)
		}
	}
	if SplitOf(5, n, false) != Unseen {
		t.Fatal("unseen clip frames must be Unseen")
	}
}

func TestSplitStrings(t *testing.T) {
	names := map[Split]string{Train: "train", Val: "val", Test: "test", Unseen: "unseen"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("split %d prints %q", s, s.String())
		}
	}
	if Split(9).String() == "" {
		t.Fatal("unknown split must print")
	}
}

func TestFrameFeature(t *testing.T) {
	w := testWorld(t, 33)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, xrand.New(34))
	feat := FrameFeature(f)
	if len(feat) != FrameFeatureDim(8) {
		t.Fatalf("feature dim = %d", len(feat))
	}
	if feat[16] != f.Brightness || feat[17] != f.Contrast {
		t.Fatal("illumination scalars not appended")
	}
	for i := 8; i < 16; i++ {
		if feat[i] < 0 {
			t.Fatalf("std feature %d negative: %v", i, feat[i])
		}
	}
}

func TestFrameFeatureSeparatesScenes(t *testing.T) {
	w := testWorld(t, 35)
	rng := xrand.New(36)
	a := FrameFeature(w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, rng))
	b := FrameFeature(w.GenerateFrame(Scene{Foggy, Tunnel, Night}, 1, rng))
	if a.SquaredDistance(b) < 0.01 {
		t.Fatal("frame features of distant scenes should differ")
	}
}

func TestCellInputAndTarget(t *testing.T) {
	w := testWorld(t, 37)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 3, xrand.New(38))
	ctx := FrameFeature(f)
	in := CellInput(nil, f, 0, ctx)
	if len(in) != CellInputDim(8) {
		t.Fatalf("cell input dim = %d", len(in))
	}
	// dst reuse path
	in2 := CellInput(in, f, 1, ctx)
	if &in2[0] != &in[0] {
		t.Fatal("CellInput should reuse dst")
	}

	if len(f.Objects) == 0 {
		t.Skip("no objects")
	}
	obj := f.Objects[0]
	tgt := CellTarget(nil, f, obj.Cell)
	if len(tgt) != DetectorOutDim {
		t.Fatalf("target dim = %d", len(tgt))
	}
	if tgt[0] != 1 || tgt[1+int(obj.Class)] != 1 {
		t.Fatalf("object target wrong: %v", tgt)
	}
	for c := 0; c < f.NumCells(); c++ {
		if _, ok := f.ObjectAt(c); !ok {
			bg := CellTarget(nil, f, c)
			for _, v := range bg {
				if v != 0 {
					t.Fatalf("background target non-zero: %v", bg)
				}
			}
			break
		}
	}
}

func TestGenerateScenarioClip(t *testing.T) {
	w := testWorld(t, 39)
	s := Scene{Clear, Tunnel, Night}
	clip := w.GenerateScenarioClip(SHD, 99, s, 30, 1, xrand.New(40))
	if len(clip.Frames) != 30 {
		t.Fatalf("frames = %d", len(clip.Frames))
	}
	for _, f := range clip.Frames {
		if f.Scene != s {
			t.Fatal("scenario clip drifted scenes")
		}
		if f.Dataset != SHD || f.Clip != 99 {
			t.Fatal("scenario metadata wrong")
		}
	}
}

func TestSamplePoissonMean(t *testing.T) {
	rng := xrand.New(41)
	const n = 20000
	for _, lambda := range []float64{0.5, 2, 6} {
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(samplePoisson(lambda, rng))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.1*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if samplePoisson(0, rng) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
}

func TestDatasetStrings(t *testing.T) {
	if KITTI.String() != "KITTI" || BDD100k.String() != "BDD100k" || SHD.String() != "SHD" {
		t.Fatal("dataset names wrong")
	}
	if DatasetID(9).String() == "" {
		t.Fatal("unknown dataset must print")
	}
}

func TestDefaultProfilesScale(t *testing.T) {
	full := DefaultProfiles(1)
	if full[0].Clips != 10 || full[1].Clips != 44 || full[2].Clips != 10 {
		t.Fatalf("full profile clip counts: %d/%d/%d", full[0].Clips, full[1].Clips, full[2].Clips)
	}
	small := DefaultProfiles(0.1)
	for _, p := range small {
		if p.Clips < 1 || p.FramesPerClip < 1 {
			t.Fatal("scaled profile degenerate")
		}
	}
	weird := DefaultProfiles(-3)
	if weird[1].Clips != 44 {
		t.Fatal("invalid scale should fall back to 1")
	}
}

func TestFrameCellViewAliases(t *testing.T) {
	w := testWorld(t, 42)
	f := w.GenerateFrame(Scene{Clear, Urban, Daytime}, 1, xrand.New(43))
	cell := f.Cell(3)
	cell[0] = 123.5
	if f.Cells[3*8] != 123.5 {
		t.Fatal("Cell view should alias frame storage")
	}
}

// Property: every generated frame is structurally valid across random
// scenes and densities.
func TestGenerateFrameProperty(t *testing.T) {
	w := testWorld(t, 44)
	r := xrand.New(45)
	if err := quick.Check(func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		s := SceneFromIndex(rr.Intn(NumScenes))
		f := w.GenerateFrame(s, rr.Float64()*2, rr)
		if f.NumCells() != w.Config().Cells() {
			return false
		}
		if len(f.Objects) > w.Config().MaxObjects {
			return false
		}
		for _, v := range f.Cells {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return f.Brightness >= 0 && f.Brightness <= 1 && f.Contrast >= 0 && f.Contrast <= 1
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
