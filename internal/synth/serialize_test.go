package synth

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"anole/internal/xrand"
)

func corpusFixture(t *testing.T) *Corpus {
	t.Helper()
	w := testWorld(t, 900)
	return w.GenerateCorpus(DefaultProfiles(0.15))
}

func corporaEqual(t *testing.T, a, b *Corpus) {
	t.Helper()
	if len(a.Clips) != len(b.Clips) {
		t.Fatalf("clip counts: %d vs %d", len(a.Clips), len(b.Clips))
	}
	if a.World.Config() != b.World.Config() {
		t.Fatalf("world configs differ: %+v vs %+v", a.World.Config(), b.World.Config())
	}
	for ci := range a.Clips {
		ca, cb := a.Clips[ci], b.Clips[ci]
		if ca.Dataset != cb.Dataset || ca.ID != cb.ID || ca.Seen != cb.Seen {
			t.Fatalf("clip %d metadata differs", ci)
		}
		if len(ca.Frames) != len(cb.Frames) {
			t.Fatalf("clip %d frame counts differ", ci)
		}
		for fi := range ca.Frames {
			fa, fb := ca.Frames[fi], cb.Frames[fi]
			if fa.Scene != fb.Scene || fa.Brightness != fb.Brightness || fa.Contrast != fb.Contrast {
				t.Fatalf("clip %d frame %d metadata differs", ci, fi)
			}
			if len(fa.Objects) != len(fb.Objects) {
				t.Fatalf("clip %d frame %d object counts differ", ci, fi)
			}
			for oi := range fa.Objects {
				if fa.Objects[oi] != fb.Objects[oi] {
					t.Fatalf("clip %d frame %d object %d differs", ci, fi, oi)
				}
			}
			for i := range fa.Cells {
				if fa.Cells[i] != fb.Cells[i] {
					t.Fatalf("clip %d frame %d cell float %d differs", ci, fi, i)
				}
			}
			if fa.Dataset != fb.Dataset || fa.Clip != fb.Clip || fa.Index != fb.Index {
				t.Fatalf("clip %d frame %d locator differs", ci, fi)
			}
		}
	}
}

func TestCorpusRoundtrip(t *testing.T) {
	corpus := corpusFixture(t)
	var buf bytes.Buffer
	if err := corpus.WriteCorpus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	corporaEqual(t, corpus, got)

	// The reconstructed world must generate identically to the
	// original (same config → same transforms).
	s := Scene{Weather: Rainy, Location: Highway, Time: Night}
	fa := corpus.World.GenerateFrame(s, 1, xrand.New(5))
	fb := got.World.GenerateFrame(s, 1, xrand.New(5))
	for i := range fa.Cells {
		if fa.Cells[i] != fb.Cells[i] {
			t.Fatal("reconstructed world diverges")
		}
	}
	// Splits survive (derived from clip metadata).
	if len(corpus.Frames(Test)) != len(got.Frames(Test)) {
		t.Fatal("test split sizes differ")
	}
}

func TestCorpusFileRoundtrip(t *testing.T) {
	corpus := corpusFixture(t)
	path := filepath.Join(t.TempDir(), "corpus.anld")
	if err := SaveCorpusFile(path, corpus); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corporaEqual(t, corpus, got)
}

func TestLoadCorpusFileMissing(t *testing.T) {
	if _, err := LoadCorpusFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCorpusBadMagic(t *testing.T) {
	if _, err := ReadCorpus(strings.NewReader("NOPEnope")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadCorpusCorruption(t *testing.T) {
	corpus := corpusFixture(t)
	var buf bytes.Buffer
	if err := corpus.WriteCorpus(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := xrand.New(901)
	for trial := 0; trial < 60; trial++ {
		data := append([]byte(nil), pristine...)
		data[rng.Intn(len(data))] ^= byte(1) << rng.Intn(8)
		if _, err := ReadCorpus(bytes.NewReader(data)); err == nil {
			t.Fatal("corruption accepted")
		}
	}
	for trial := 0; trial < 30; trial++ {
		cut := rng.Intn(len(pristine)-1) + 1
		if _, err := ReadCorpus(bytes.NewReader(pristine[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
