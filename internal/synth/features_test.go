package synth

import (
	"testing"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// TestFrameFeatureIntoMatchesFrameFeature pins the Into form against the
// allocating form, including on a dirty reused destination: the buffer
// must be fully re-derived from the frame, not accumulated on top of
// stale contents.
func TestFrameFeatureIntoMatchesFrameFeature(t *testing.T) {
	w, err := NewWorld(DefaultConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(72)
	s := Scene{Weather: Clear, Location: Urban, Time: Daytime}
	dst := tensor.NewVector(FrameFeatureDim(w.Config().FeatDim))
	for i := 0; i < 5; i++ {
		f := w.GenerateFrame(s, 1.2, rng)
		want := FrameFeature(f)
		dst.Fill(999) // poison: a correct Into must overwrite every element
		got := FrameFeatureInto(dst, f)
		if &got[0] != &dst[0] {
			t.Fatal("FrameFeatureInto should reuse a correctly-sized dst")
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("frame %d elem %d: %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestFrameFeatureIntoZeroAllocs pins the steady-state runtime contract:
// with a held destination the descriptor computation is allocation-free.
func TestFrameFeatureIntoZeroAllocs(t *testing.T) {
	w, err := NewWorld(DefaultConfig(73))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(74)
	f := w.GenerateFrame(Scene{Weather: Clear, Location: Urban, Time: Daytime}, 1, rng)
	dst := tensor.NewVector(FrameFeatureDim(w.Config().FeatDim))
	allocs := testing.AllocsPerRun(100, func() {
		FrameFeatureInto(dst, f)
	})
	if allocs != 0 {
		t.Fatalf("FrameFeatureInto with held dst: %v allocs/op, want 0", allocs)
	}
}
