package synth

import (
	"fmt"
	"math"

	"anole/internal/tensor"
	"anole/internal/xrand"
)

// Config parameterizes a World. The zero value is not usable; call
// DefaultConfig and override fields as needed.
type Config struct {
	// Seed is the root seed from which every transform, signature and
	// clip stream is derived.
	Seed uint64
	// GridW and GridH are the detection grid dimensions.
	GridW, GridH int
	// FeatDim is the per-cell feature dimensionality.
	FeatDim int
	// SceneShift scales the per-attribute appearance transforms. 0
	// removes scene conditioning entirely (the ablation A1 knob);
	// 1 is the default strength.
	SceneShift float64
	// NoiseStd is the per-feature observation noise.
	NoiseStd float64
	// ClutterStd is the magnitude of background clutter mixed into all
	// cells.
	ClutterStd float64
	// MaxObjects caps the number of objects in one frame.
	MaxObjects int
}

// DefaultConfig returns the parameters used by the experiment harness.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		GridW:      8,
		GridH:      8,
		FeatDim:    8,
		SceneShift: 1.0,
		NoiseStd:   0.20,
		ClutterStd: 0.30,
		MaxObjects: 14,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.GridW <= 0 || c.GridH <= 0:
		return fmt.Errorf("synth: non-positive grid %dx%d", c.GridW, c.GridH)
	case c.FeatDim <= 0:
		return fmt.Errorf("synth: non-positive feature dim %d", c.FeatDim)
	case c.SceneShift < 0:
		return fmt.Errorf("synth: negative scene shift %v", c.SceneShift)
	case c.MaxObjects < 0:
		return fmt.Errorf("synth: negative max objects %d", c.MaxObjects)
	default:
		return nil
	}
}

// Cells returns the number of grid cells per frame.
func (c Config) Cells() int { return c.GridW * c.GridH }

// Object is one foreground object placed in a frame.
type Object struct {
	Cell  int     // grid cell index in [0, Cells)
	Class Class   // object class
	Size  float64 // relative footprint in cell units (used for Fig. 5d)
}

// Frame is one generated observation: a feature grid plus ground truth.
type Frame struct {
	// Scene is the semantic scene the frame was generated under.
	Scene Scene
	// Cells holds the feature grid, row-major, Cells()×FeatDim floats.
	Cells []float64
	// Brightness and Contrast are the frame-level illumination scalars
	// (Fig. 5a/5b statistics).
	Brightness float64
	Contrast   float64
	// Objects is the ground-truth object list.
	Objects []Object

	// Dataset, Clip and Index locate the frame within the corpus.
	Dataset DatasetID
	Clip    int
	Index   int

	featDim int
}

// Cell returns a read-only view of cell i's feature vector.
func (f *Frame) Cell(i int) tensor.Vector {
	return tensor.Vector(f.Cells[i*f.featDim : (i+1)*f.featDim])
}

// NumCells returns the number of grid cells in the frame.
func (f *Frame) NumCells() int {
	if f.featDim == 0 {
		return 0
	}
	return len(f.Cells) / f.featDim
}

// FeatDim returns the per-cell feature dimension.
func (f *Frame) FeatDim() int { return f.featDim }

// ObjectAt returns the object occupying cell i and true, or a zero Object
// and false.
func (f *Frame) ObjectAt(i int) (Object, bool) {
	for _, o := range f.Objects {
		if o.Cell == i {
			return o, true
		}
	}
	return Object{}, false
}

// AreaRatio returns the fraction of the grid area covered by objects, the
// Fig. 5(d) statistic.
func (f *Frame) AreaRatio() float64 {
	var area float64
	for _, o := range f.Objects {
		area += o.Size
	}
	n := f.NumCells()
	if n == 0 {
		return 0
	}
	ratio := area / float64(n)
	if ratio > 1 {
		ratio = 1
	}
	return ratio
}

// World owns the generative model: per-attribute appearance transforms,
// class signatures, and location backgrounds. A World is immutable after
// construction and safe for concurrent frame generation when each caller
// uses its own RNG stream.
type World struct {
	cfg Config

	// Per-attribute-value appearance perturbations; a scene's transform
	// composes one from each dimension.
	weatherRot  []*tensor.Matrix
	locationRot []*tensor.Matrix
	timeRot     []*tensor.Matrix
	weatherBias []tensor.Vector
	locBias     []tensor.Vector
	timeBias    []tensor.Vector

	// Per-attribute-value channel gains; a scene's gain is their
	// channel-wise product, so gains can flip sign across scenes (the
	// "headlights at night vs silhouettes by day" effect) — which is
	// what makes one global low-capacity detector insufficient.
	weatherGain []tensor.Vector
	locGain     []tensor.Vector
	timeGain    []tensor.Vector

	classSig []tensor.Vector // per-class base signature
	locBG    []tensor.Vector // per-location background pattern

	// Cached composed per-scene transform: out = A·(raw ⊙ g) + b.
	sceneA []*tensor.Matrix
	sceneB []tensor.Vector
	sceneG []tensor.Vector
}

// NewWorld constructs the generative model for cfg.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{cfg: cfg}
	d := cfg.FeatDim
	rng := xrand.NewLabeled(cfg.Seed, "synth-world")

	makeRots := func(n int, scale float64) []*tensor.Matrix {
		ms := make([]*tensor.Matrix, n)
		for i := range ms {
			m := tensor.NewMatrix(d, d)
			for r := 0; r < d; r++ {
				for c := 0; c < d; c++ {
					v := scale * cfg.SceneShift * rng.Norm() / float64(d)
					if r == c {
						v += 1.0 / 3.0 // composed thrice ≈ identity
					}
					m.Set(r, c, v)
				}
			}
			ms[i] = m
		}
		return ms
	}
	makeBiases := func(n int, scale float64) []tensor.Vector {
		bs := make([]tensor.Vector, n)
		for i := range bs {
			b := tensor.NewVector(d)
			for j := range b {
				b[j] = scale * cfg.SceneShift * rng.Norm()
			}
			bs[i] = b
		}
		return bs
	}

	makeGains := func(n int, spread float64) []tensor.Vector {
		gs := make([]tensor.Vector, n)
		for i := range gs {
			g := tensor.NewVector(d)
			for j := range g {
				g[j] = 1 + spread*cfg.SceneShift*rng.Norm()
			}
			gs[i] = g
		}
		return gs
	}

	w.weatherRot = makeRots(NumWeather, 1.1)
	w.locationRot = makeRots(NumLocation, 0.9)
	w.timeRot = makeRots(NumTime, 1.3)
	w.weatherBias = makeBiases(NumWeather, 0.30)
	w.locBias = makeBiases(NumLocation, 0.25)
	w.timeBias = makeBiases(NumTime, 0.40)
	w.weatherGain = makeGains(NumWeather, 0.80)
	w.locGain = makeGains(NumLocation, 0.60)
	w.timeGain = makeGains(NumTime, 1.00)

	w.classSig = make([]tensor.Vector, NumClasses)
	for c := range w.classSig {
		sig := tensor.NewVector(d)
		for j := range sig {
			sig[j] = rng.NormMS(0, 1.4)
		}
		w.classSig[c] = sig
	}
	w.locBG = make([]tensor.Vector, NumLocation)
	for l := range w.locBG {
		bg := tensor.NewVector(d)
		for j := range bg {
			bg[j] = rng.NormMS(0, 0.5)
		}
		w.locBG[l] = bg
	}

	// Compose and cache per-scene transforms as the sum of one
	// perturbation per attribute dimension. Each summand carries I/3 on
	// its diagonal, so A_scene ≈ I + shift-scaled noise; at SceneShift 0
	// every scene shares the identity transform and scene conditioning
	// vanishes (the A1 ablation).
	w.sceneA = make([]*tensor.Matrix, NumScenes)
	w.sceneB = make([]tensor.Vector, NumScenes)
	w.sceneG = make([]tensor.Vector, NumScenes)
	for idx := 0; idx < NumScenes; idx++ {
		s := SceneFromIndex(idx)
		sum := tensor.NewMatrix(d, d)
		sum.AddScaled(1, w.weatherRot[s.Weather])
		sum.AddScaled(1, w.locationRot[s.Location])
		sum.AddScaled(1, w.timeRot[s.Time])
		w.sceneA[idx] = sum
		b := tensor.NewVector(d)
		b.AddScaled(1, w.weatherBias[s.Weather])
		b.AddScaled(1, w.locBias[s.Location])
		b.AddScaled(1, w.timeBias[s.Time])
		w.sceneB[idx] = b
		g := tensor.NewVector(d)
		for j := 0; j < d; j++ {
			g[j] = w.weatherGain[s.Weather][j] * w.locGain[s.Location][j] * w.timeGain[s.Time][j]
		}
		// Scene-idiosyncratic appearance on top of the attribute
		// factors: real scene appearance is not attribute-decomposable,
		// and the idiosyncratic component is what forces a global model
		// to memorize per-scene inverses (capacity pressure) rather
		// than span a handful of shared attribute factors.
		srng := xrand.NewLabeled(cfg.Seed, "scene-idio-"+s.String())
		for j := 0; j < d; j++ {
			g[j] *= 1 + 0.35*cfg.SceneShift*srng.Norm()
			b[j] += 0.2 * cfg.SceneShift * srng.Norm()
		}
		w.sceneG[idx] = g
	}
	return w, nil
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// illumination returns the brightness and contrast scalars for a scene,
// with per-frame jitter from rng. Night frames are dim and low-contrast;
// fog crushes contrast; snow brightens. These drive both the Fig. 5
// statistics and detection difficulty (signal amplitude scales with
// contrast).
func (w *World) illumination(s Scene, rng *xrand.RNG) (brightness, contrast float64) {
	switch s.Time {
	case Daytime:
		brightness = rng.NormMS(0.70, 0.08)
	case DawnDusk:
		brightness = rng.NormMS(0.45, 0.08)
	case Night:
		brightness = rng.NormMS(0.20, 0.05)
	}
	contrast = brightness
	switch s.Weather {
	case Overcast:
		brightness -= 0.08
		contrast -= 0.05
	case Rainy:
		brightness -= 0.10
		contrast -= 0.10
	case Snowy:
		brightness += 0.10
		contrast -= 0.08
	case Foggy:
		contrast -= 0.18
	}
	if s.Location == Tunnel {
		brightness -= 0.12
		contrast -= 0.05
	}
	brightness = clamp01(brightness)
	contrast = clamp01(contrast + 0.28) // floor so objects are never invisible
	return brightness, contrast
}

// objectDensity returns the expected object count for a scene, before the
// dataset profile multiplier.
func objectDensity(l Location) float64 {
	switch l {
	case Highway:
		return 2.5
	case Urban:
		return 6.0
	case Residential:
		return 4.0
	case ParkingLot:
		return 5.5
	case Tunnel:
		return 2.0
	case GasStation:
		return 3.0
	case Bridge:
		return 3.0
	case TollBooth:
		return 3.5
	default:
		return 3.0
	}
}

// classMix returns per-class placement weights for a location: highways
// carry cars and trucks, residential areas pedestrians and cyclists.
func classMix(l Location) []float64 {
	switch l {
	case Highway, Bridge, TollBooth, Tunnel:
		return []float64{0.55, 0.02, 0.38, 0.05}
	case Urban:
		return []float64{0.45, 0.25, 0.10, 0.20}
	case Residential:
		return []float64{0.35, 0.35, 0.05, 0.25}
	case ParkingLot, GasStation:
		return []float64{0.60, 0.25, 0.10, 0.05}
	default:
		return []float64{0.5, 0.2, 0.15, 0.15}
	}
}

// GenerateFrame draws one frame of scene s using rng, with densityMul
// scaling the expected object count (dataset profiles use this).
func (w *World) GenerateFrame(s Scene, densityMul float64, rng *xrand.RNG) *Frame {
	d := w.cfg.FeatDim
	cells := w.cfg.Cells()
	f := &Frame{
		Scene:   s,
		Cells:   make([]float64, cells*d),
		featDim: d,
	}
	f.Brightness, f.Contrast = w.illumination(s, rng)

	// Object placement: approximately Poisson via binomial thinning.
	lambda := objectDensity(s.Location) * densityMul
	count := samplePoisson(lambda, rng)
	if count > w.cfg.MaxObjects {
		count = w.cfg.MaxObjects
	}
	if count > cells {
		count = cells
	}
	mix := classMix(s.Location)
	perm := rng.Perm(cells)
	sizeBase := 0.6
	if s.Location == Highway || s.Location == Bridge {
		sizeBase = 1.0 // closer, faster objects occupy more area
	}
	for i := 0; i < count; i++ {
		f.Objects = append(f.Objects, Object{
			Cell:  perm[i],
			Class: Class(rng.Categorical(mix)),
			Size:  clampPos(rng.NormMS(sizeBase, 0.25), 0.15, 1.8),
		})
	}

	// Feature synthesis per cell:
	//   raw = background(location) + clutter + contrast·size·signature
	//   obs = A_scene·(raw ⊙ g_scene) + b_scene + noise
	// The channel-wise gain g composes one factor per attribute value
	// and can flip sign across scenes, which is why a single
	// low-capacity detector cannot serve all scenes (Proposition 1's
	// world) while a per-scene specialist can.
	raw := tensor.NewVector(d)
	gains := w.sceneG[s.Index()]
	for cell := 0; cell < cells; cell++ {
		copy(raw, w.locBG[s.Location])
		for j := 0; j < d; j++ {
			raw[j] += w.cfg.ClutterStd * rng.Norm()
		}
		if obj, ok := f.ObjectAt(cell); ok {
			amp := f.Contrast * obj.Size
			raw.AddScaled(amp, w.classSig[obj.Class])
		}
		for j := 0; j < d; j++ {
			raw[j] *= gains[j]
		}
		out := tensor.Vector(f.Cells[cell*d : (cell+1)*d])
		w.sceneA[s.Index()].MulVec(out, raw)
		out.AddScaled(1, w.sceneB[s.Index()])
		for j := 0; j < d; j++ {
			out[j] += w.cfg.NoiseStd * rng.Norm()
		}
	}
	return f
}

func samplePoisson(lambda float64, rng *xrand.RNG) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method is fine for the small lambdas used here.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampPos(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
