// Package synth generates the synthetic driving world that substitutes for
// the paper's KITTI / BDD100k / SHD video corpora (DESIGN.md §2). It
// produces frames on a feature grid whose object appearance is conditioned
// on the semantic scene (weather × location × time-of-day), organized into
// temporally coherent video clips drawn from three dataset profiles, with
// the paper's seen/unseen and train/val/test splits.
//
// The essential property carried over from the real datasets is
// scene-conditioned appearance: the same object class produces different
// cell features under different scenes, via per-attribute affine transforms
// composed per scene. A capacity-limited detector can invert the transform
// of one scene but not of all scenes at once — which is exactly the
// premise Anole exploits.
package synth

import "fmt"

// Weather is the meteorological attribute dimension of a semantic scene.
type Weather uint8

// Weather values (paper §IV-A1: clear, overcast, rainy, snowy, foggy).
const (
	Clear Weather = iota
	Overcast
	Rainy
	Snowy
	Foggy
	numWeather
)

// Location is the spatial attribute dimension of a semantic scene.
type Location uint8

// Location values (paper §IV-A1: highway, urban, residential, parking lot,
// tunnel, gas station, bridge, toll booth).
const (
	Highway Location = iota
	Urban
	Residential
	ParkingLot
	Tunnel
	GasStation
	Bridge
	TollBooth
	numLocation
)

// TimeOfDay is the temporal attribute dimension of a semantic scene.
type TimeOfDay uint8

// TimeOfDay values (paper §IV-A1: daytime, dawn/dusk, night).
const (
	Daytime TimeOfDay = iota
	DawnDusk
	Night
	numTime
)

// NumWeather, NumLocation and NumTime are the attribute-dimension sizes;
// NumScenes is their product — the paper's 120 semantic scene combinations.
const (
	NumWeather  = int(numWeather)
	NumLocation = int(numLocation)
	NumTime     = int(numTime)
	NumScenes   = NumWeather * NumLocation * NumTime
)

var weatherNames = [...]string{"clear", "overcast", "rainy", "snowy", "foggy"}

func (w Weather) String() string {
	if int(w) < len(weatherNames) {
		return weatherNames[w]
	}
	return fmt.Sprintf("weather(%d)", uint8(w))
}

var locationNames = [...]string{
	"highway", "urban", "residential", "parking-lot",
	"tunnel", "gas-station", "bridge", "toll-booth",
}

func (l Location) String() string {
	if int(l) < len(locationNames) {
		return locationNames[l]
	}
	return fmt.Sprintf("location(%d)", uint8(l))
}

var timeNames = [...]string{"daytime", "dawn-dusk", "night"}

func (t TimeOfDay) String() string {
	if int(t) < len(timeNames) {
		return timeNames[t]
	}
	return fmt.Sprintf("time(%d)", uint8(t))
}

// Scene is one semantic scene: a point in the weather × location × time
// attribute space. These are the paper's fine-grained human-heuristic
// scenes Γᵢ^sem that seed M_scene training.
type Scene struct {
	Weather  Weather
	Location Location
	Time     TimeOfDay
}

// Index flattens the scene into [0, NumScenes).
func (s Scene) Index() int {
	return (int(s.Weather)*NumLocation+int(s.Location))*NumTime + int(s.Time)
}

// SceneFromIndex is the inverse of Scene.Index. It panics on out-of-range
// indices.
func SceneFromIndex(idx int) Scene {
	if idx < 0 || idx >= NumScenes {
		panic(fmt.Sprintf("synth: scene index %d out of range", idx))
	}
	t := idx % NumTime
	idx /= NumTime
	l := idx % NumLocation
	w := idx / NumLocation
	return Scene{Weather: Weather(w), Location: Location(l), Time: TimeOfDay(t)}
}

func (s Scene) String() string {
	return fmt.Sprintf("%s/%s/%s", s.Weather, s.Location, s.Time)
}

// Class identifies a foreground object class.
type Class uint8

// Object classes detected in driving frames.
const (
	Car Class = iota
	Pedestrian
	Truck
	Cyclist
	NumClasses = 4
)

var classNames = [...]string{"car", "pedestrian", "truck", "cyclist"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}
