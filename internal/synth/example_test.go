package synth_test

import (
	"fmt"

	"anole/internal/synth"
	"anole/internal/xrand"
)

// Semantic scenes are points in the weather × location × time attribute
// space (the paper's 120 combinations).
func ExampleScene() {
	s := synth.Scene{Weather: synth.Foggy, Location: synth.Tunnel, Time: synth.Night}
	fmt.Println(s, s.Index(), synth.SceneFromIndex(s.Index()) == s)
	// Output:
	// foggy/tunnel/night 110 true
}

// Generating one scene-conditioned frame with ground-truth objects.
func ExampleWorld_GenerateFrame() {
	world, err := synth.NewWorld(synth.DefaultConfig(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	f := world.GenerateFrame(synth.Scene{
		Weather:  synth.Clear,
		Location: synth.Urban,
		Time:     synth.Daytime,
	}, 1, xrand.New(7))
	fmt.Printf("cells=%d featDim=%d objects=%d\n", f.NumCells(), f.FeatDim(), len(f.Objects))
	// Output:
	// cells=64 featDim=8 objects=6
}

// The 6:2:2 interleaved frame split of seen clips.
func ExampleSplitOf() {
	for i := 0; i < 10; i++ {
		fmt.Print(synth.SplitOf(i, 100, true), " ")
	}
	fmt.Println()
	// Output:
	// train train train train train train val val test test
}
