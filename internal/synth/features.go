package synth

import (
	"math"

	"anole/internal/tensor"
)

// FrameFeatureDim returns the dimensionality of FrameFeature's output for
// a world with per-cell feature dimension d: mean and standard deviation
// per feature channel plus brightness and contrast.
func FrameFeatureDim(featDim int) int { return 2*featDim + 2 }

// FrameFeature computes the frame-level descriptor consumed by M_scene:
// channel-wise mean and standard deviation pooled over all cells, plus the
// frame's brightness and contrast scalars. This is the stand-in for the
// paper's ResNet18 global image features.
func FrameFeature(f *Frame) tensor.Vector {
	return FrameFeatureInto(nil, f)
}

// FrameFeatureInto computes the frame descriptor into dst (allocating
// only when dst is nil or mis-sized) and returns dst. This is the
// batched runtime path: with a reused dst — typically one row of a
// batch staging matrix — the descriptor step performs no heap
// allocations.
func FrameFeatureInto(dst tensor.Vector, f *Frame) tensor.Vector {
	d := f.FeatDim()
	cells := f.NumCells()
	out := dst
	if len(out) != FrameFeatureDim(d) {
		out = tensor.NewVector(FrameFeatureDim(d))
	} else {
		out.Fill(0)
	}
	if cells == 0 {
		return out
	}
	mean := out[:d]
	std := out[d : 2*d]
	for c := 0; c < cells; c++ {
		cell := f.Cell(c)
		for j, x := range cell {
			mean[j] += x
		}
	}
	inv := 1 / float64(cells)
	for j := range mean {
		mean[j] *= inv
	}
	for c := 0; c < cells; c++ {
		cell := f.Cell(c)
		for j, x := range cell {
			dxy := x - mean[j]
			std[j] += dxy * dxy
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] * inv)
	}
	out[2*d] = f.Brightness
	out[2*d+1] = f.Contrast
	return out
}

// CellInputDim returns the dimensionality of CellInput's output: the cell
// features, the frame's channel means (global context), and the
// brightness/contrast scalars.
func CellInputDim(featDim int) int { return 2*featDim + 2 }

// CellInput builds the detector input for one cell: local features
// concatenated with global context. ctx must be the frame's FrameFeature
// (reused across cells to avoid recomputing the pooling); dst is reused
// when correctly sized.
func CellInput(dst tensor.Vector, f *Frame, cell int, ctx tensor.Vector) tensor.Vector {
	d := f.FeatDim()
	n := CellInputDim(d)
	if len(dst) != n {
		dst = tensor.NewVector(n)
	}
	copy(dst[:d], f.Cell(cell))
	copy(dst[d:2*d], ctx[:d]) // channel means
	dst[2*d] = f.Brightness
	dst[2*d+1] = f.Contrast
	return dst
}

// CellTarget builds the detector training target for one cell: element 0
// is objectness, elements 1..NumClasses are one-hot class indicators
// (all zero for background cells).
func CellTarget(dst tensor.Vector, f *Frame, cell int) tensor.Vector {
	n := 1 + NumClasses
	if len(dst) != n {
		dst = tensor.NewVector(n)
	}
	dst.Fill(0)
	if obj, ok := f.ObjectAt(cell); ok {
		dst[0] = 1
		dst[1+int(obj.Class)] = 1
	}
	return dst
}

// DetectorOutDim is the per-cell detector head output size.
const DetectorOutDim = 1 + NumClasses
