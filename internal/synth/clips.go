package synth

import (
	"fmt"

	"anole/internal/xrand"
)

// DatasetID identifies which source corpus a clip imitates.
type DatasetID uint8

// Dataset identifiers matching the paper's three corpora.
const (
	KITTI DatasetID = iota
	BDD100k
	SHD
	NumDatasets = 3
)

var datasetNames = [...]string{"KITTI", "BDD100k", "SHD"}

func (d DatasetID) String() string {
	if int(d) < len(datasetNames) {
		return datasetNames[d]
	}
	return fmt.Sprintf("dataset(%d)", uint8(d))
}

// Profile describes how one source dataset samples scenes: the attribute
// mixes, clip geometry and object density that distinguish KITTI (small,
// clear daytime suburbs), BDD100k (large, fully diverse) and SHD (Shanghai
// highways and tunnels, day and night).
type Profile struct {
	Dataset       DatasetID
	Clips         int
	FramesPerClip int
	// Weather, Location and Time weight the attribute marginals when a
	// clip picks its starting scene and when the Markov chain drifts.
	Weather  []float64
	Location []float64
	Time     []float64
	// Persistence is the per-frame probability of staying in the
	// current semantic scene (scene durations are geometric).
	Persistence float64
	// DensityMul scales the location's base object density.
	DensityMul float64
}

// DefaultProfiles returns the three dataset profiles sized as in the
// paper's corpus (10 KITTI + 44 BDD100k + 10 SHD = 64 clips). scale ∈
// (0, 1] shrinks clip counts and lengths proportionally for fast tests;
// pass 1 for the full corpus.
func DefaultProfiles(scale float64) []Profile {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	scaled := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	return []Profile{
		{
			Dataset:       KITTI,
			Clips:         scaled(10),
			FramesPerClip: scaled(120),
			//             clear overc rainy snowy foggy
			Weather: []float64{0.80, 0.20, 0, 0, 0},
			//              hwy  urban resid  park  tunl  gas  brdg  toll
			Location: []float64{0.15, 0.35, 0.40, 0.05, 0, 0.05, 0, 0},
			//            day  dusk night
			Time:        []float64{1, 0, 0},
			Persistence: 0.97,
			DensityMul:  1.2,
		},
		{
			Dataset:       BDD100k,
			Clips:         scaled(44),
			FramesPerClip: scaled(150),
			Weather:       []float64{0.45, 0.20, 0.15, 0.10, 0.10},
			Location:      []float64{0.20, 0.40, 0.20, 0.05, 0.03, 0.05, 0.04, 0.03},
			Time:          []float64{0.55, 0.15, 0.30},
			Persistence:   0.95,
			DensityMul:    1.0,
		},
		{
			Dataset:       SHD,
			Clips:         scaled(10),
			FramesPerClip: scaled(120),
			Weather:       []float64{0.60, 0.25, 0.15, 0, 0},
			Location:      []float64{0.40, 0.25, 0.05, 0, 0.20, 0, 0.05, 0.05},
			Time:          []float64{0.55, 0.10, 0.35},
			Persistence:   0.96,
			DensityMul:    0.9,
		},
	}
}

// Clip is one temporally coherent video clip.
type Clip struct {
	Dataset DatasetID
	ID      int // global clip index within the corpus
	Frames  []*Frame
	// Seen reports whether the clip participates in training (the
	// paper's 9:1 seen/unseen split).
	Seen bool
}

// sampleScene draws a semantic scene from the profile's attribute
// marginals.
func (p Profile) sampleScene(rng *xrand.RNG) Scene {
	return Scene{
		Weather:  Weather(rng.Categorical(p.Weather)),
		Location: Location(rng.Categorical(p.Location)),
		Time:     TimeOfDay(rng.Categorical(p.Time)),
	}
}

// drift changes exactly one attribute dimension of s, resampling from the
// profile marginals. Time of day drifts an order of magnitude less often
// than weather or location, since it changes slowly in reality.
func (p Profile) drift(s Scene, rng *xrand.RNG) Scene {
	roll := rng.Float64()
	switch {
	case roll < 0.48:
		s.Location = Location(rng.Categorical(p.Location))
	case roll < 0.92:
		s.Weather = Weather(rng.Categorical(p.Weather))
	default:
		s.Time = TimeOfDay(rng.Categorical(p.Time))
	}
	return s
}

// GenerateClip produces one clip of the profile using world w. The clip's
// scene sequence is a sticky Markov chain: each frame keeps the previous
// scene with probability Persistence, otherwise drifts one attribute.
func (w *World) GenerateClip(p Profile, clipID int, rng *xrand.RNG) *Clip {
	clip := &Clip{Dataset: p.Dataset, ID: clipID, Frames: make([]*Frame, 0, p.FramesPerClip)}
	scene := p.sampleScene(rng)
	for i := 0; i < p.FramesPerClip; i++ {
		if i > 0 && !rng.Bool(p.Persistence) {
			scene = p.drift(scene, rng)
		}
		f := w.GenerateFrame(scene, p.DensityMul, rng)
		f.Dataset = p.Dataset
		f.Clip = clipID
		f.Index = i
		clip.Frames = append(clip.Frames, f)
	}
	return clip
}

// Corpus is the full generated dataset: all clips plus the split
// bookkeeping the paper uses (seen/unseen clips 9:1; within seen clips,
// frames split 6:2:2 into train/val/test).
type Corpus struct {
	World *World
	Clips []*Clip
}

// GenerateCorpus builds the corpus from profiles, marking roughly one in
// ten clips per dataset as unseen (at least one when a dataset has ≥2
// clips).
func (w *World) GenerateCorpus(profiles []Profile) *Corpus {
	rng := xrand.NewLabeled(w.cfg.Seed, "synth-corpus")
	corpus := &Corpus{World: w}
	clipID := 0
	for _, p := range profiles {
		unseen := p.Clips / 10
		if unseen == 0 && p.Clips >= 2 {
			unseen = 1
		}
		// The last `unseen` clips of each dataset are held out.
		for i := 0; i < p.Clips; i++ {
			clip := w.GenerateClip(p, clipID, rng.Split(uint64(clipID)))
			clip.Seen = i < p.Clips-unseen
			corpus.Clips = append(corpus.Clips, clip)
			clipID++
		}
	}
	return corpus
}

// Split labels the role of a frame within the corpus.
type Split uint8

// Frame roles. Train/Val/Test partition the frames of seen clips 6:2:2 by
// contiguous blocks (respecting temporal order); Unseen covers every frame
// of held-out clips.
const (
	Train Split = iota
	Val
	Test
	Unseen
)

func (s Split) String() string {
	switch s {
	case Train:
		return "train"
	case Val:
		return "val"
	case Test:
		return "test"
	case Unseen:
		return "unseen"
	default:
		return fmt.Sprintf("split(%d)", uint8(s))
	}
}

// SplitOf returns the role of frame index i within a clip of length n
// belonging to a seen clip. The 6:2:2 partition interleaves by blocks of
// ten frames (6 train, 2 val, 2 test) rather than cutting the clip into
// three contiguous runs: "seen" data must expose every scene the clip
// visits to training, as the paper's frame-level split does; a contiguous
// tail would instead hold out whatever novel scenes the clip drifted into
// last (that harder setting is what the unseen clips of Table III
// measure).
func SplitOf(i, n int, seen bool) Split {
	if !seen {
		return Unseen
	}
	_ = n
	switch i % 10 {
	case 6, 7:
		return Val
	case 8, 9:
		return Test
	default:
		return Train
	}
}

// Frames returns every frame of the corpus with the given split role.
func (c *Corpus) Frames(s Split) []*Frame {
	var out []*Frame
	for _, clip := range c.Clips {
		n := len(clip.Frames)
		for i, f := range clip.Frames {
			if SplitOf(i, n, clip.Seen) == s {
				out = append(out, f)
			}
		}
	}
	return out
}

// SeenClips and UnseenClips partition the corpus clips.
func (c *Corpus) SeenClips() []*Clip {
	var out []*Clip
	for _, clip := range c.Clips {
		if clip.Seen {
			out = append(out, clip)
		}
	}
	return out
}

// UnseenClips returns the held-out clips.
func (c *Corpus) UnseenClips() []*Clip {
	var out []*Clip
	for _, clip := range c.Clips {
		if !clip.Seen {
			out = append(out, clip)
		}
	}
	return out
}

// TotalFrames returns the number of frames across all clips.
func (c *Corpus) TotalFrames() int {
	total := 0
	for _, clip := range c.Clips {
		total += len(clip.Frames)
	}
	return total
}

// ScenesPresent returns the sorted list of semantic scene indices that
// occur in the corpus' training frames, which is the label space M_scene
// is trained over.
func (c *Corpus) ScenesPresent() []int {
	present := make(map[int]bool)
	for _, f := range c.Frames(Train) {
		present[f.Scene.Index()] = true
	}
	out := make([]int, 0, len(present))
	for idx := range present {
		out = append(out, idx)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	// Insertion sort: scene lists are short and this avoids an import.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// GenerateScenarioClip builds a clip pinned to a fixed semantic scene,
// used for the new-scene experiments (Table III) and the real-world
// scenarios (Fig. 10), where each test clip has stated attributes.
func (w *World) GenerateScenarioClip(ds DatasetID, clipID int, s Scene, frames int, densityMul float64, rng *xrand.RNG) *Clip {
	clip := &Clip{Dataset: ds, ID: clipID, Frames: make([]*Frame, 0, frames)}
	for i := 0; i < frames; i++ {
		f := w.GenerateFrame(s, densityMul, rng)
		f.Dataset = ds
		f.Clip = clipID
		f.Index = i
		clip.Frames = append(clip.Frames, f)
	}
	return clip
}
