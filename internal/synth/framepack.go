package synth

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame-pack format (all little-endian):
//
//	magic    [4]byte "ANLF"
//	version  uint16 (1 or 2)
//	featDim  uint16
//	cells    uint16
//	count    uint32
//	trace    uint16 length + bytes (version 2 only)
//	frames   count × (the corpus file's per-frame encoding)
//	crc32    uint32 (IEEE, over everything after the magic)
//
// A frame pack is the wire form of a small labeled frame set detached
// from any corpus — drift reports ship their exemplar frames to the
// adaptation controller in it. Unlike the corpus format it carries no
// world configuration: the receiver only needs the frames' geometry,
// which the header pins. Version 2 additionally carries the drift
// report's causal trace ID, so the evidence payload itself names the
// device→cloud journey it belongs to; a pack without a trace is
// written as version 1, byte-identical to pre-trace encoders.
const (
	framePackMagic         = "ANLF"
	framePackVersion       = 1
	framePackVersionTraced = 2
	maxPackFrames          = 1 << 16
	maxPackTrace           = 256
)

// EncodeFrames serializes frames as a version-1 frame pack. All frames
// must share one cell count and feature dimension; at least one frame
// is required (an empty pack has no geometry to pin).
func EncodeFrames(w io.Writer, frames []*Frame) error {
	return EncodeFramesTrace(w, frames, "")
}

// EncodeFramesTrace serializes frames as a frame pack carrying a causal
// trace ID. An empty trace writes the version-1 layout (bit-identical
// to EncodeFrames); a non-empty one writes version 2.
func EncodeFramesTrace(w io.Writer, frames []*Frame, trace string) error {
	if len(frames) == 0 {
		return fmt.Errorf("synth: empty frame pack")
	}
	if len(frames) > maxPackFrames {
		return fmt.Errorf("synth: %d frames exceed pack limit %d", len(frames), maxPackFrames)
	}
	cells, featDim := frames[0].NumCells(), frames[0].FeatDim()
	for i, f := range frames {
		if f == nil {
			return fmt.Errorf("synth: nil frame %d", i)
		}
		if f.NumCells() != cells || f.FeatDim() != featDim {
			return fmt.Errorf("synth: frame %d geometry %d×%d, pack %d×%d",
				i, f.NumCells(), f.FeatDim(), cells, featDim)
		}
	}
	if len(trace) > maxPackTrace {
		return fmt.Errorf("synth: trace %d bytes exceeds pack limit %d", len(trace), maxPackTrace)
	}
	version := uint16(framePackVersion)
	if trace != "" {
		version = framePackVersionTraced
	}
	if _, err := w.Write([]byte(framePackMagic)); err != nil {
		return fmt.Errorf("synth: write magic: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if err := binWrite(mw, version, uint16(featDim), uint16(cells), uint32(len(frames))); err != nil {
		return fmt.Errorf("synth: write pack header: %w", err)
	}
	if version == framePackVersionTraced {
		if err := binWrite(mw, uint16(len(trace))); err != nil {
			return fmt.Errorf("synth: write pack trace length: %w", err)
		}
		if _, err := mw.Write([]byte(trace)); err != nil {
			return fmt.Errorf("synth: write pack trace: %w", err)
		}
	}
	cfg := Config{GridW: cells, GridH: 1, FeatDim: featDim}
	for i, f := range frames {
		if err := writeFrame(mw, cfg, f); err != nil {
			return fmt.Errorf("synth: write pack frame %d: %w", i, err)
		}
	}
	if err := binWrite(w, crc.Sum32()); err != nil {
		return fmt.Errorf("synth: write pack checksum: %w", err)
	}
	return nil
}

// DecodeFrames deserializes a frame pack written by EncodeFrames (or
// EncodeFramesTrace — the trace is discarded), verifying the checksum.
// The frames carry their scene labels and ground-truth objects;
// Dataset/Clip/Index provenance does not travel.
func DecodeFrames(r io.Reader) ([]*Frame, error) {
	frames, _, err := DecodeFramesTrace(r)
	return frames, err
}

// DecodeFramesTrace deserializes a frame pack of either version,
// returning the causal trace ID a version-2 pack carries (empty for
// version 1).
func DecodeFramesTrace(r io.Reader) ([]*Frame, string, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, "", fmt.Errorf("synth: read magic: %w", err)
	}
	if string(magic) != framePackMagic {
		return nil, "", fmt.Errorf("synth: bad frame-pack magic %q", magic)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	var (
		version, featDim, cells uint16
		count                   uint32
	)
	if err := binRead(tr, &version, &featDim, &cells, &count); err != nil {
		return nil, "", fmt.Errorf("synth: read pack header: %w", err)
	}
	if version != framePackVersion && version != framePackVersionTraced {
		return nil, "", fmt.Errorf("synth: unsupported frame-pack version %d", version)
	}
	if count == 0 || count > maxPackFrames {
		return nil, "", fmt.Errorf("synth: implausible frame count %d", count)
	}
	if featDim == 0 || cells == 0 {
		return nil, "", fmt.Errorf("synth: implausible geometry %d×%d", cells, featDim)
	}
	var trace string
	if version == framePackVersionTraced {
		var tlen uint16
		if err := binRead(tr, &tlen); err != nil {
			return nil, "", fmt.Errorf("synth: read pack trace length: %w", err)
		}
		if tlen > maxPackTrace {
			return nil, "", fmt.Errorf("synth: pack trace %d bytes exceeds limit %d", tlen, maxPackTrace)
		}
		tb := make([]byte, tlen)
		if _, err := io.ReadFull(tr, tb); err != nil {
			return nil, "", fmt.Errorf("synth: read pack trace: %w", err)
		}
		trace = string(tb)
	}
	cfg := Config{GridW: int(cells), GridH: 1, FeatDim: int(featDim)}
	frames := make([]*Frame, 0, count)
	for i := 0; i < int(count); i++ {
		f, err := readFrame(tr, cfg)
		if err != nil {
			return nil, "", fmt.Errorf("synth: read pack frame %d: %w", i, err)
		}
		f.Index = i
		frames = append(frames, f)
	}
	wantCRC := crc.Sum32()
	var gotCRC uint32
	if err := binRead(br, &gotCRC); err != nil {
		return nil, "", fmt.Errorf("synth: read pack checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, "", fmt.Errorf("synth: frame-pack checksum mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}
	return frames, trace, nil
}
