package synth

import (
	"bytes"
	"testing"

	"anole/internal/xrand"
)

// packFixture generates n frames across mixed scenes from one world.
func packFixture(t *testing.T, n int) []*Frame {
	t.Helper()
	w := testWorld(t, 3)
	rng := xrand.NewLabeled(3, "framepack-test")
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = w.GenerateFrame(SceneFromIndex(i%NumScenes), 1, rng)
	}
	return frames
}

// TestFramePackRoundTrip pins the drift-report wire format: everything a
// retrain needs — scene labels, ground-truth objects, the feature grid
// and illumination scalars — survives the encode/decode round trip.
func TestFramePackRoundTrip(t *testing.T) {
	frames := packFixture(t, 7)
	var buf bytes.Buffer
	if err := EncodeFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrames(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i, g := range got {
		f := frames[i]
		if g.Scene != f.Scene {
			t.Fatalf("frame %d scene %v, want %v", i, g.Scene, f.Scene)
		}
		if g.NumCells() != f.NumCells() || g.FeatDim() != f.FeatDim() {
			t.Fatalf("frame %d geometry %d×%d, want %d×%d",
				i, g.NumCells(), g.FeatDim(), f.NumCells(), f.FeatDim())
		}
		if g.Brightness != f.Brightness || g.Contrast != f.Contrast {
			t.Fatalf("frame %d illumination (%v, %v), want (%v, %v)",
				i, g.Brightness, g.Contrast, f.Brightness, f.Contrast)
		}
		for j, c := range g.Cells {
			if c != f.Cells[j] {
				t.Fatalf("frame %d cell value %d diverged", i, j)
			}
		}
		if len(g.Objects) != len(f.Objects) {
			t.Fatalf("frame %d has %d objects, want %d", i, len(g.Objects), len(f.Objects))
		}
		for j, o := range g.Objects {
			if o != f.Objects[j] {
				t.Fatalf("frame %d object %d = %+v, want %+v", i, j, o, f.Objects[j])
			}
		}
		// Provenance does not travel; the pack re-indexes.
		if g.Index != i {
			t.Fatalf("frame %d re-indexed to %d", i, g.Index)
		}
	}
}

// TestFramePackEncodeRejects pins the encoder's input contract: no empty
// packs, no nil frames, one geometry per pack.
func TestFramePackEncodeRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrames(&buf, nil); err == nil {
		t.Fatal("empty pack encoded")
	}
	frames := packFixture(t, 2)
	if err := EncodeFrames(&buf, []*Frame{frames[0], nil}); err == nil {
		t.Fatal("nil frame encoded")
	}
	// A frame from a world with a different feature dimension must not
	// share a pack.
	cfg := DefaultConfig(4)
	cfg.FeatDim++
	w2, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alien := w2.GenerateFrame(SceneFromIndex(0), 1, xrand.NewLabeled(4, "framepack-test-alien"))
	if err := EncodeFrames(&buf, []*Frame{frames[0], alien}); err == nil {
		t.Fatal("mixed-geometry pack encoded")
	}
}

// TestFramePackDecodeRejectsDamage pins the integrity checks a drift
// report's exemplars travel under: bad magic, unknown version, payload
// corruption and truncation are all detected, never decoded.
func TestFramePackDecodeRejectsDamage(t *testing.T) {
	frames := packFixture(t, 4)
	var buf bytes.Buffer
	if err := EncodeFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	pack := buf.Bytes()

	damage := func(mutate func([]byte)) error {
		cp := append([]byte(nil), pack...)
		mutate(cp)
		_, err := DecodeFrames(bytes.NewReader(cp))
		return err
	}

	if err := damage(func(b []byte) { b[0] ^= 0xFF }); err == nil {
		t.Fatal("bad magic decoded")
	}
	if err := damage(func(b []byte) { b[4] ^= 0xFF }); err == nil {
		t.Fatal("unknown version decoded")
	}
	// Flip one payload byte mid-pack: either the frame parse or the
	// trailing CRC must catch it.
	if err := damage(func(b []byte) { b[len(b)/2] ^= 0x01 }); err == nil {
		t.Fatal("corrupted payload decoded")
	}
	if err := damage(func(b []byte) { b[len(b)-2] ^= 0x01 }); err == nil {
		t.Fatal("checksum tamper decoded")
	}
	if _, err := DecodeFrames(bytes.NewReader(pack[:len(pack)-3])); err == nil {
		t.Fatal("truncated pack decoded")
	}
	if _, err := DecodeFrames(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input decoded")
	}
}
