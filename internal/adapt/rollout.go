package adapt

import "fmt"

// RolloutState is where a candidate generation stands in its rollout.
type RolloutState uint8

const (
	// RolloutIdle: no candidate in flight.
	RolloutIdle RolloutState = iota
	// RolloutCanary: the candidate serves the canary stream; the fleet
	// stays on the incumbent while telemetry accumulates.
	RolloutCanary
	// RolloutPromoted: the candidate passed and the whole fleet runs it.
	RolloutPromoted
	// RolloutRolledBack: the candidate failed and the canary stream was
	// restored to the incumbent.
	RolloutRolledBack
)

func (s RolloutState) String() string {
	switch s {
	case RolloutIdle:
		return "idle"
	case RolloutCanary:
		return "canary"
	case RolloutPromoted:
		return "promoted"
	case RolloutRolledBack:
		return "rolled_back"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// RolloutConfig sets the canary's scope and verdict thresholds.
type RolloutConfig struct {
	// CanaryStream is the stream index that serves the candidate first
	// (default 0).
	CanaryStream int
	// CanaryFrames is how many canary-stream frames must accumulate
	// before a verdict (default 60).
	CanaryFrames int
	// MinF1Ratio: the canary's F1 proxy must be at least this fraction
	// of the incumbent fleet's over the same period (default 0.9 — the
	// candidate serves a scene the incumbent cannot, so modest slack on
	// shared scenes is tolerated, but a broken model shows up far below).
	MinF1Ratio float64
	// MaxDegradedDelta: the canary's degraded-frame rate may exceed the
	// incumbent's by at most this much (default 0.1).
	MaxDegradedDelta float64
	// MaxBreakerOpens: circuit-breaker opens attributable to the canary
	// stream during the window before automatic rollback (default 0 —
	// any open is disqualifying).
	MaxBreakerOpens int64
}

func (c *RolloutConfig) fill() {
	if c.CanaryStream < 0 {
		c.CanaryStream = 0
	}
	if c.CanaryFrames <= 0 {
		c.CanaryFrames = 60
	}
	if c.MinF1Ratio <= 0 {
		c.MinF1Ratio = 0.9
	}
	if c.MaxDegradedDelta <= 0 {
		c.MaxDegradedDelta = 0.1
	}
	if c.MaxBreakerOpens < 0 {
		c.MaxBreakerOpens = 0
	}
}

// RolloutWindow aggregates the telemetry a verdict compares: the canary
// stream's numbers against the incumbent fleet's, over the same frames.
type RolloutWindow struct {
	// CanaryFrames / IncumbentFrames: frames processed on each side.
	CanaryFrames    int64
	IncumbentFrames int64
	// F1 proxies (e.g. mean per-frame cell F1 against ground truth).
	CanaryF1    float64
	IncumbentF1 float64
	// Degraded-frame counts (frames served by a worse-than-desired model
	// or hit by faults).
	CanaryDegraded    int64
	IncumbentDegraded int64
	// BreakerOpens attributable to the canary stream in the window.
	BreakerOpens int64
}

// Verdict is a rollout decision with its reason.
type Verdict struct {
	Promote bool
	Reason  string
}

// Rollout is the canary state machine for one candidate generation. It
// is pure bookkeeping — the Loop owns the side effects (bundle swaps,
// cache purges) — which keeps every transition table-testable. Not safe
// for concurrent use.
type Rollout struct {
	cfg   RolloutConfig
	state RolloutState
	// Candidate and incumbent generation numbers.
	candidate uint64
	incumbent uint64
	window    RolloutWindow
	verdict   Verdict
}

// NewRollout returns an idle rollout machine.
func NewRollout(cfg RolloutConfig) *Rollout {
	cfg.fill()
	return &Rollout{cfg: cfg, state: RolloutIdle}
}

// State, Candidate, and Incumbent expose the machine's position.
func (r *Rollout) State() RolloutState { return r.state }
func (r *Rollout) Candidate() uint64   { return r.candidate }
func (r *Rollout) Incumbent() uint64   { return r.incumbent }

// Config returns the effective (default-filled) configuration.
func (r *Rollout) Config() RolloutConfig { return r.cfg }

// LastVerdict returns the decision that ended the most recent canary.
func (r *Rollout) LastVerdict() Verdict { return r.verdict }

// Begin starts a canary of candidate against incumbent. Only legal from
// Idle, Promoted, or RolledBack (a finished machine restarts cleanly).
func (r *Rollout) Begin(candidate, incumbent uint64) error {
	if r.state == RolloutCanary {
		return fmt.Errorf("adapt: canary of generation %d already active", r.candidate)
	}
	if candidate == incumbent {
		return fmt.Errorf("adapt: candidate generation %d equals incumbent", candidate)
	}
	r.state = RolloutCanary
	r.candidate = candidate
	r.incumbent = incumbent
	r.window = RolloutWindow{}
	r.verdict = Verdict{}
	return nil
}

// ObserveFrame accumulates one frame's telemetry into the window.
// canary marks frames from the canary stream; f1 is the frame's F1
// proxy; degraded marks a degraded serve.
func (r *Rollout) ObserveFrame(canary bool, f1 float64, degraded bool) {
	if r.state != RolloutCanary {
		return
	}
	if canary {
		r.window.CanaryF1 = runningMean(r.window.CanaryF1, r.window.CanaryFrames, f1)
		r.window.CanaryFrames++
		if degraded {
			r.window.CanaryDegraded++
		}
	} else {
		r.window.IncumbentF1 = runningMean(r.window.IncumbentF1, r.window.IncumbentFrames, f1)
		r.window.IncumbentFrames++
		if degraded {
			r.window.IncumbentDegraded++
		}
	}
}

// Accumulate folds a batch of frames into the window: frames processed,
// their F1-proxy sum, and how many were degraded. The Loop uses this
// instead of per-frame ObserveFrame so the window is identical whatever
// order worker goroutines finished in — per-stream sums are folded in
// stream order between chunks.
func (r *Rollout) Accumulate(canary bool, frames int64, sumF1 float64, degraded int64) {
	if r.state != RolloutCanary || frames <= 0 {
		return
	}
	if canary {
		n := r.window.CanaryFrames
		r.window.CanaryF1 = (r.window.CanaryF1*float64(n) + sumF1) / float64(n+frames)
		r.window.CanaryFrames += frames
		r.window.CanaryDegraded += degraded
	} else {
		n := r.window.IncumbentFrames
		r.window.IncumbentF1 = (r.window.IncumbentF1*float64(n) + sumF1) / float64(n+frames)
		r.window.IncumbentFrames += frames
		r.window.IncumbentDegraded += degraded
	}
}

// ObserveBreakerOpens adds circuit-breaker opens attributed to the
// canary stream.
func (r *Rollout) ObserveBreakerOpens(n int64) {
	if r.state == RolloutCanary && n > 0 {
		r.window.BreakerOpens += n
	}
}

// Window returns a copy of the accumulated telemetry.
func (r *Rollout) Window() RolloutWindow { return r.window }

// Ready reports whether the canary window has accumulated enough frames
// for a verdict.
func (r *Rollout) Ready() bool {
	return r.state == RolloutCanary && r.window.CanaryFrames >= int64(r.cfg.CanaryFrames)
}

// Decide closes the canary window and moves the machine to Promoted or
// RolledBack, returning the verdict. Calling it before Ready forces an
// early verdict on whatever accumulated (the Loop does this on outage-
// triggered aborts); calling it outside Canary is an error.
func (r *Rollout) Decide() (Verdict, error) {
	if r.state != RolloutCanary {
		return Verdict{}, fmt.Errorf("adapt: no canary to decide (state %v)", r.state)
	}
	v := r.evaluate()
	r.verdict = v
	if v.Promote {
		r.state = RolloutPromoted
	} else {
		r.state = RolloutRolledBack
	}
	return v, nil
}

// Abort rolls the canary back unconditionally with the given reason
// (e.g. the candidate bundle failed verification mid-canary).
func (r *Rollout) Abort(reason string) (Verdict, error) {
	if r.state != RolloutCanary {
		return Verdict{}, fmt.Errorf("adapt: no canary to abort (state %v)", r.state)
	}
	r.verdict = Verdict{Promote: false, Reason: reason}
	r.state = RolloutRolledBack
	return r.verdict, nil
}

// evaluate applies the verdict rules, most disqualifying first.
func (r *Rollout) evaluate() Verdict {
	w := r.window
	if w.CanaryFrames == 0 {
		return Verdict{Promote: false, Reason: "no canary frames observed"}
	}
	if w.BreakerOpens > r.cfg.MaxBreakerOpens {
		return Verdict{Promote: false, Reason: fmt.Sprintf(
			"breaker opened %d times on canary stream (max %d)", w.BreakerOpens, r.cfg.MaxBreakerOpens)}
	}
	canaryDegRate := float64(w.CanaryDegraded) / float64(w.CanaryFrames)
	incDegRate := 0.0
	if w.IncumbentFrames > 0 {
		incDegRate = float64(w.IncumbentDegraded) / float64(w.IncumbentFrames)
	}
	if canaryDegRate > incDegRate+r.cfg.MaxDegradedDelta {
		return Verdict{Promote: false, Reason: fmt.Sprintf(
			"canary degraded rate %.3f exceeds incumbent %.3f by more than %.3f",
			canaryDegRate, incDegRate, r.cfg.MaxDegradedDelta)}
	}
	if w.IncumbentFrames > 0 && w.CanaryF1 < r.cfg.MinF1Ratio*w.IncumbentF1 {
		return Verdict{Promote: false, Reason: fmt.Sprintf(
			"canary F1 %.4f below %.2f of incumbent %.4f",
			w.CanaryF1, r.cfg.MinF1Ratio, w.IncumbentF1)}
	}
	return Verdict{Promote: true, Reason: fmt.Sprintf(
		"canary F1 %.4f vs incumbent %.4f, degraded %.3f vs %.3f, no breaker opens over budget",
		w.CanaryF1, w.IncumbentF1, canaryDegRate, incDegRate)}
}

func runningMean(mean float64, n int64, x float64) float64 {
	return mean + (x-mean)/float64(n+1)
}
