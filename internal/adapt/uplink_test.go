package adapt

import (
	"testing"

	"anole/internal/netsim"
)

func TestUplinkNilLinkAlwaysDelivers(t *testing.T) {
	u := NewUplink(nil)
	if _, err := u.Send(0); err == nil {
		t.Fatal("non-positive size must fail")
	}
	for i := 0; i < 3; i++ {
		if _, err := u.Send(1000); err != nil {
			t.Fatal(err)
		}
	}
	if u.Sent() != 3 || u.Failed() != 0 || u.Bytes() != 3000 {
		t.Fatalf("sent %d failed %d bytes %d", u.Sent(), u.Failed(), u.Bytes())
	}
}

func TestUplinkLosesReportsWhileDown(t *testing.T) {
	m := &scriptMedium{states: []netsim.LinkState{netsim.Good, netsim.Down, netsim.Down, netsim.Good}}
	u := NewUplink(m)
	if _, err := u.Send(512); err != nil {
		t.Fatalf("good step: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := u.Send(512); err == nil {
			t.Fatal("down step must lose the report")
		}
	}
	if _, err := u.Send(512); err != nil {
		t.Fatalf("recovered step: %v", err)
	}
	if u.Sent() != 2 || u.Failed() != 2 || u.Bytes() != 1024 {
		t.Fatalf("sent %d failed %d bytes %d", u.Sent(), u.Failed(), u.Bytes())
	}
}

func TestUplinkOverRealLink(t *testing.T) {
	link := newTestLink(t, 0.9, 99)
	u := NewUplink(link)
	delivered, lost := 0, 0
	for i := 0; i < 200; i++ {
		if _, err := u.Send(2048); err != nil {
			lost++
		} else {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("a mostly-good link should deliver some reports")
	}
	if int64(delivered) != u.Sent() || int64(lost) != u.Failed() {
		t.Fatalf("counters drifted: %d/%d vs %d/%d", delivered, lost, u.Sent(), u.Failed())
	}
}
