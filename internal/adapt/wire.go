package adapt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/tensor"
)

// reportWire is the JSON envelope a Report travels in over HTTP: scalar
// window statistics inline, exemplar frames as a base64 "ANLF" frame
// pack (encoding/json base64-encodes []byte). The frame pack carries its
// own geometry header and checksum, so a decoded report is structurally
// sound before the controller ever sees it.
type reportWire struct {
	Stream       int       `json:"stream"`
	Seq          int64     `json:"seq"`
	AtNs         int64     `json:"atNs"`
	Generation   uint64    `json:"generation"`
	Window       int       `json:"window"`
	MeanEntropy  float64   `json:"meanEntropy"`
	MeanNovelty  float64   `json:"meanNovelty"`
	Disagreement float64   `json:"disagreement"`
	Signals      int       `json:"signals"`
	Centroid     []float64 `json:"centroid"`
	Exemplars    []byte    `json:"exemplars"`
	Trace        string    `json:"trace,omitempty"`
}

// WriteReport serializes a report for the POST /v1/drift endpoint. A
// report needs at least one exemplar (the frame pack pins geometry from
// its first frame).
func WriteReport(w io.Writer, rep *Report) error {
	if rep == nil {
		return fmt.Errorf("adapt: nil report")
	}
	var pack bytes.Buffer
	if err := synth.EncodeFramesTrace(&pack, rep.Exemplars, rep.Trace); err != nil {
		return fmt.Errorf("adapt: encode exemplars: %w", err)
	}
	return json.NewEncoder(w).Encode(reportWire{
		Stream:       rep.Stream,
		Seq:          rep.Seq,
		AtNs:         rep.At.Nanoseconds(),
		Generation:   rep.Generation,
		Window:       rep.Window,
		MeanEntropy:  rep.MeanEntropy,
		MeanNovelty:  rep.MeanNovelty,
		Disagreement: rep.Disagreement,
		Signals:      rep.Signals,
		Centroid:     rep.Centroid,
		Exemplars:    pack.Bytes(),
		Trace:        rep.Trace,
	})
}

// ReadReport deserializes a report written by WriteReport, verifying the
// embedded frame pack's checksum.
func ReadReport(r io.Reader) (*Report, error) {
	var w reportWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("adapt: decode report envelope: %w", err)
	}
	frames, packTrace, err := synth.DecodeFramesTrace(bytes.NewReader(w.Exemplars))
	if err != nil {
		return nil, fmt.Errorf("adapt: decode exemplars: %w", err)
	}
	trace := w.Trace
	if trace == "" {
		trace = packTrace
	}
	return &Report{
		Stream:       w.Stream,
		Seq:          w.Seq,
		At:           time.Duration(w.AtNs),
		Generation:   w.Generation,
		Window:       w.Window,
		MeanEntropy:  w.MeanEntropy,
		MeanNovelty:  w.MeanNovelty,
		Disagreement: w.Disagreement,
		Signals:      w.Signals,
		Centroid:     tensor.Vector(w.Centroid),
		Exemplars:    frames,
		Trace:        trace,
	}, nil
}

// maxReportBody bounds a drift report upload: 48 exemplars of the
// default geometry are well under a megabyte, so 8 MiB leaves room for
// larger worlds without letting a client exhaust the server.
const maxReportBody = 8 << 20

// submitVerdict is the drift endpoint's JSON response.
type submitVerdict struct {
	Generation uint64 `json:"generation"`
	Published  bool   `json:"published"`
	Error      string `json:"error,omitempty"`
}

// NewDriftHandler serves POST /v1/drift over a Submitter: one decoded
// report per request, Submit calls serialized (Controller is not safe
// for concurrent use), the submit verdict returned as JSON. Malformed
// bodies are the client's fault (400); a report the submitter accepts
// but cannot act on (failed retrain, dimension mismatch) is a 500 with
// the reason in the body.
func NewDriftHandler(s Submitter) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		rep, err := ReadReport(http.MaxBytesReader(w, r.Body, maxReportBody))
		if err != nil {
			writeVerdict(w, http.StatusBadRequest, submitVerdict{Error: err.Error()})
			return
		}
		if rep.Trace == "" {
			// Older clients carry the trace only in the HTTP header.
			rep.Trace = r.Header.Get(telemetry.TraceHeader)
		}
		mu.Lock()
		gen, published, err := s.Submit(rep)
		mu.Unlock()
		if err != nil {
			writeVerdict(w, http.StatusInternalServerError, submitVerdict{Error: err.Error()})
			return
		}
		writeVerdict(w, http.StatusOK, submitVerdict{Generation: gen, Published: published})
	})
}

func writeVerdict(w http.ResponseWriter, status int, v submitVerdict) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// HTTPSubmitter is the device side of the drift endpoint: a Submitter
// that POSTs each report to URL (anole-server's /v1/drift) and relays
// the controller's verdict, so a Loop can run against a remote
// controller exactly as it runs against an in-process one.
type HTTPSubmitter struct {
	// URL is the full endpoint URL, e.g. http://cloud:8080/v1/drift.
	URL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Submit implements Submitter over HTTP.
func (h *HTTPSubmitter) Submit(rep *Report) (uint64, bool, error) {
	var body bytes.Buffer
	if err := WriteReport(&body, rep); err != nil {
		return 0, false, err
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest(http.MethodPost, h.URL, &body)
	if err != nil {
		return 0, false, fmt.Errorf("adapt: build drift request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rep.Trace != "" {
		req.Header.Set(telemetry.TraceHeader, rep.Trace)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, fmt.Errorf("adapt: post drift report: %w", err)
	}
	defer resp.Body.Close()
	var v submitVerdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, false, fmt.Errorf("adapt: drift endpoint status %d: %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("adapt: drift endpoint status %d: %s", resp.StatusCode, v.Error)
	}
	return v.Generation, v.Published, nil
}
