package adapt

import (
	"math"
	"strings"
	"testing"
)

func TestRolloutLifecycle(t *testing.T) {
	r := NewRollout(RolloutConfig{CanaryFrames: 10})
	if r.State() != RolloutIdle {
		t.Fatalf("fresh machine state %v", r.State())
	}
	if _, err := r.Decide(); err == nil {
		t.Fatal("Decide outside a canary must fail")
	}
	if err := r.Begin(2, 2); err == nil {
		t.Fatal("candidate == incumbent must fail")
	}
	if err := r.Begin(2, 1); err != nil {
		t.Fatal(err)
	}
	if r.State() != RolloutCanary || r.Candidate() != 2 || r.Incumbent() != 1 {
		t.Fatalf("canary state %v cand %d inc %d", r.State(), r.Candidate(), r.Incumbent())
	}
	if err := r.Begin(3, 1); err == nil {
		t.Fatal("nested Begin must fail")
	}
	if r.Ready() {
		t.Fatal("ready with zero frames")
	}
	r.Accumulate(true, 10, 8.0, 0)
	r.Accumulate(false, 20, 16.0, 0)
	if !r.Ready() {
		t.Fatal("not ready after CanaryFrames frames")
	}
	v, err := r.Decide()
	if err != nil || !v.Promote {
		t.Fatalf("equal-quality canary should promote: %+v err %v", v, err)
	}
	if r.State() != RolloutPromoted {
		t.Fatalf("state %v after promote", r.State())
	}
	// A finished machine restarts cleanly.
	if err := r.Begin(3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Abort("verification failed"); err != nil {
		t.Fatal(err)
	}
	if r.State() != RolloutRolledBack || r.LastVerdict().Promote {
		t.Fatalf("abort left state %v verdict %+v", r.State(), r.LastVerdict())
	}
}

func TestRolloutVerdictRules(t *testing.T) {
	cases := []struct {
		name    string
		window  RolloutWindow
		cfg     RolloutConfig
		promote bool
		reason  string
	}{
		{
			name:    "no frames",
			window:  RolloutWindow{},
			promote: false,
			reason:  "no canary frames",
		},
		{
			name: "breaker opens disqualify",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.9,
				IncumbentFrames: 100, IncumbentF1: 0.5, BreakerOpens: 1},
			promote: false,
			reason:  "breaker",
		},
		{
			name: "degraded delta disqualifies",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.9, CanaryDegraded: 30,
				IncumbentFrames: 100, IncumbentF1: 0.5, IncumbentDegraded: 5},
			promote: false,
			reason:  "degraded",
		},
		{
			name: "f1 collapse disqualifies",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.3,
				IncumbentFrames: 100, IncumbentF1: 0.8},
			promote: false,
			reason:  "F1",
		},
		{
			name: "modest f1 slack tolerated",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.75,
				IncumbentFrames: 100, IncumbentF1: 0.8},
			promote: true,
		},
		{
			name: "no incumbent frames promotes on canary alone",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.2,
				CanaryDegraded: 5},
			promote: true,
		},
		{
			name: "tight breaker budget honored",
			window: RolloutWindow{CanaryFrames: 100, CanaryF1: 0.9,
				IncumbentFrames: 100, IncumbentF1: 0.5, BreakerOpens: 2},
			cfg:     RolloutConfig{MaxBreakerOpens: 2},
			promote: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRollout(tc.cfg)
			if err := r.Begin(2, 1); err != nil {
				t.Fatal(err)
			}
			r.window = tc.window
			v, err := r.Decide()
			if err != nil {
				t.Fatal(err)
			}
			if v.Promote != tc.promote {
				t.Fatalf("promote = %v, want %v (%s)", v.Promote, tc.promote, v.Reason)
			}
			if tc.reason != "" && !strings.Contains(v.Reason, tc.reason) {
				t.Fatalf("reason %q missing %q", v.Reason, tc.reason)
			}
		})
	}
}

// Accumulate must be permutation-stable across batch boundaries: the
// final means depend only on the totals, not on how frames were grouped
// into chunks.
func TestRolloutAccumulateGrouping(t *testing.T) {
	mk := func() *Rollout {
		r := NewRollout(RolloutConfig{})
		if err := r.Begin(2, 1); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk()
	a.Accumulate(true, 4, 2.0, 1)
	a.Accumulate(true, 6, 4.5, 2)
	b := mk()
	b.Accumulate(true, 10, 6.5, 3)
	wa, wb := a.Window(), b.Window()
	if wa.CanaryFrames != wb.CanaryFrames || wa.CanaryDegraded != wb.CanaryDegraded {
		t.Fatalf("counts diverge: %+v vs %+v", wa, wb)
	}
	if math.Abs(wa.CanaryF1-wb.CanaryF1) > 1e-12 {
		t.Fatalf("means diverge: %v vs %v", wa.CanaryF1, wb.CanaryF1)
	}
	// Observing into the wrong state is inert.
	r := NewRollout(RolloutConfig{})
	r.Accumulate(true, 5, 5, 5)
	r.ObserveBreakerOpens(3)
	if w := r.Window(); w.CanaryFrames != 0 || w.BreakerOpens != 0 {
		t.Fatalf("idle machine accumulated: %+v", w)
	}
}

func TestRolloutStateStrings(t *testing.T) {
	for st, want := range map[RolloutState]string{
		RolloutIdle: "idle", RolloutCanary: "canary",
		RolloutPromoted: "promoted", RolloutRolledBack: "rolled_back",
		RolloutState(9): "state(9)",
	} {
		if got := st.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", st, got, want)
		}
	}
}
