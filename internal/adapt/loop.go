package adapt

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/flight"
	"anole/internal/prefetch"
	"anole/internal/pressure"
	"anole/internal/repo"
	"anole/internal/slo"
	"anole/internal/synth"
	"anole/internal/telemetry"
)

// Submitter is the device's view of the cloud controller: a drift
// report goes in; when it completes a retrain, the new generation comes
// back. Controller satisfies it directly (in-process); HTTPSubmitter
// speaks the same contract to anole-server's POST /v1/drift endpoint.
type Submitter interface {
	Submit(rep *Report) (gen uint64, published bool, err error)
}

// promotionAware is the optional Submitter surface for closing the
// rollout loop back to the cloud; Controller satisfies it.
type promotionAware interface {
	ConfirmPromotion(gen uint64, b *core.Bundle)
	NoteRollback(failedGen, restoredGen uint64) error
}

// BundleSource fetches a published generation's serialized bundle plus
// the digest the publisher claims for it. The Loop trusts neither: it
// re-hashes the payload, checks it against the claim, and fully decodes
// and validates the bundle before any stream serves it.
type BundleSource interface {
	FetchGeneration(gen uint64) (payload []byte, sha256hex string, err error)
}

// serverSource adapts an in-process repo.Server into a BundleSource,
// taking the claimed digest from the generation's publish lineage entry.
type serverSource struct{ s *repo.Server }

// NewServerSource wraps an in-process repository server.
func NewServerSource(s *repo.Server) BundleSource { return serverSource{s} }

func (ss serverSource) FetchGeneration(gen uint64) ([]byte, string, error) {
	data, ok := ss.s.GenerationBundleBytes(gen)
	if !ok {
		return nil, "", fmt.Errorf("adapt: generation %d not in repository", gen)
	}
	for _, le := range ss.s.Lineage() {
		if le.Generation == gen && le.Event == repo.LineageEventPublish {
			return data, le.BundleSHA256, nil
		}
	}
	return nil, "", fmt.Errorf("adapt: no publish lineage for generation %d", gen)
}

// LoopConfig wires a Loop.
type LoopConfig struct {
	// Drift configures every stream's drift detector.
	Drift DriftConfig
	// Rollout configures the canary state machine.
	Rollout RolloutConfig
	// Submitter receives drift reports (required).
	Submitter Submitter
	// Source serves candidate generations (required).
	Source BundleSource
	// Uplink carries reports; nil means a perfect free link.
	Uplink *Uplink
	// ChunkFrames is how many frames each stream advances between
	// control points — drift reports drain, canaries start and resolve
	// only at chunk boundaries, on the driver goroutine (default: the
	// drift window).
	ChunkFrames int
	// InitialGeneration is the generation of the bundle the fleet boots
	// with (default 1 — a fresh repo.Server's seed generation).
	InitialGeneration uint64
	// RegisterModels, when non-nil, teaches the transport about a new
	// generation's added models before they become prefetch-eligible
	// (e.g. prefetch.LinkFetcher.AddModels).
	RegisterModels func([]prefetch.Model) error
	// Pressure, when non-nil, gates the uplink: drift reports stay
	// queued (not dropped) while the monitor reads Critical, so an
	// overloaded device spends no control-plane bytes until pressure
	// relaxes.
	Pressure *pressure.Monitor
	// Metrics, when non-nil, receives the anole_adapt_* loop series.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span per control-plane event
	// (report send, canary start, promotion, rollback) under the
	// StageAdapt stage, tagged with the drift journey's trace ID.
	Tracer *telemetry.Tracer
	// Flight, when non-nil, receives the loop's anomaly-relevant
	// events: rollbacks (which trip a diagnostic dump), candidate
	// rejections, promotions, and checkpoint restores/rejects.
	Flight *flight.Recorder
	// SLO, when non-nil, is fed swap staleness at each promotion — the
	// publish-to-fleet-swap delay of the adaptation loop.
	SLO *slo.Engine
}

// StageAdapt is the telemetry span stage recorded for control-plane
// events (alongside the frame pipeline's decide/cache/fetch/detect).
const StageAdapt = "adapt"

// LoopStats summarizes a Run for reports and -json output.
type LoopStats struct {
	DriftEvents        int64  `json:"driftEvents"`
	ReportsSent        int64  `json:"reportsSent"`
	ReportFailures     int64  `json:"reportFailures"`
	ReportBytes        int64  `json:"reportBytes"`
	GenerationsApplied int64  `json:"generationsApplied"`
	CanaryStarts       int64  `json:"canaryStarts"`
	Promotions         int64  `json:"promotions"`
	Rollbacks          int64  `json:"rollbacks"`
	RejectedCandidates int64  `json:"rejectedCandidates"`
	PurgedModels       int64  `json:"purgedModels"`
	FleetGeneration    uint64 `json:"fleetGeneration"`
	// DeferredReports counts control points where the pending report
	// queue was held back by Critical resource pressure.
	DeferredReports int64 `json:"deferredReports"`
}

// streamChunk is one stream's order-independent accumulator for one
// processing chunk; the driver folds them in stream order.
type streamChunk struct {
	frames   int64
	sumF1    float64
	degraded int64
	reports  []*Report
}

// Loop is the device-side orchestrator that closes the adaptation loop
// around a MultiRuntime fleet: it chunks frame processing, watches every
// stream for drift, ships reports over the uplink, deploys published
// candidate generations to the canary stream, and promotes or rolls
// back on the rollout verdict. All control actions happen between
// ProcessStreams chunks on the driver goroutine, so a Run is
// deterministic for a fixed seed and configuration.
type Loop struct {
	cfg     LoopConfig
	m       *core.MultiRuntime
	rollout *Rollout
	dets    []*DriftDetector

	// Fleet state: the generation and bundle every non-canary stream
	// serves, and the candidate under canary (nil outside a canary).
	fleetGen  uint64
	fleet     *core.Bundle
	candGen   uint64
	cand      *core.Bundle
	breakBase int64 // prefetch breaker opens when the canary began
	// candTrace is the drift journey trace that published the candidate
	// under canary; candPubAt is when its publish verdict arrived (on
	// the SLO clock), feeding swap staleness at promotion.
	candTrace string
	candPubAt time.Duration
	// deferred is a generation published while a canary was already in
	// flight (rollouts are single-flight); it is considered once the
	// active canary resolves, carrying its own trace and publish time.
	deferred      uint64
	deferredTrace string
	deferredPubAt time.Duration
	pending       []*Report
	chunks        []streamChunk
	stats         LoopStats

	mDrift, mSent, mFailed, mBytes *telemetry.Counter
	mCanary, mPromote, mRollback   *telemetry.Counter
	mRejected, mPurged             *telemetry.Counter
	gGeneration                    *telemetry.Gauge
}

// NewLoop builds a Loop over the fleet. The MultiRuntime must already
// be configured (streams, cache, optional prefetch); the Loop never
// creates streams, it only swaps bundles on them.
func NewLoop(m *core.MultiRuntime, cfg LoopConfig) (*Loop, error) {
	if m == nil {
		return nil, fmt.Errorf("adapt: nil runtime")
	}
	if cfg.Submitter == nil {
		return nil, fmt.Errorf("adapt: nil submitter")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("adapt: nil bundle source")
	}
	cfg.Drift.fill()
	cfg.Rollout.fill()
	if cfg.ChunkFrames <= 0 {
		cfg.ChunkFrames = cfg.Drift.Window
	}
	if cfg.InitialGeneration == 0 {
		cfg.InitialGeneration = 1
	}
	if cfg.Rollout.CanaryStream >= m.NumStreams() {
		return nil, fmt.Errorf("adapt: canary stream %d, fleet has %d streams",
			cfg.Rollout.CanaryStream, m.NumStreams())
	}
	l := &Loop{
		cfg:      cfg,
		m:        m,
		rollout:  NewRollout(cfg.Rollout),
		fleetGen: cfg.InitialGeneration,
		fleet:    m.Bundle(),
		chunks:   make([]streamChunk, m.NumStreams()),
	}
	l.stats.FleetGeneration = l.fleetGen
	for i := 0; i < m.NumStreams(); i++ {
		d, err := NewDriftDetector(i, m.Bundle(), cfg.Drift)
		if err != nil {
			return nil, err
		}
		d.gen = l.fleetGen
		l.dets = append(l.dets, d)
	}
	if reg := cfg.Metrics; reg != nil {
		l.mDrift = reg.Counter("anole_adapt_drift_events_total", "Drift reports emitted by stream detectors.")
		l.mSent = reg.Counter("anole_adapt_reports_sent_total", "Drift reports delivered over the uplink.")
		l.mFailed = reg.Counter("anole_adapt_report_failures_total", "Drift report transfers lost to the link.")
		l.mBytes = reg.Counter("anole_adapt_report_bytes_total", "Upstream bytes spent on drift reports.")
		l.mCanary = reg.Counter("anole_adapt_canary_starts_total", "Candidate generations deployed to the canary stream.")
		l.mPromote = reg.Counter("anole_adapt_promotions_total", "Canaries promoted fleet-wide.")
		l.mRollback = reg.Counter("anole_adapt_rollbacks_total", "Canaries rolled back to the incumbent generation.")
		l.mRejected = reg.Counter("anole_adapt_rejected_candidates_total", "Published candidates that failed verification before deployment.")
		l.mPurged = reg.Counter("anole_adapt_purged_models_total", "Stale cached models evicted after promotion or rollback.")
		l.gGeneration = reg.Gauge("anole_adapt_fleet_generation", "Bundle generation the non-canary fleet serves.")
		l.gGeneration.Set(float64(l.fleetGen))
	}
	return l, nil
}

// Stats returns the loop counters accumulated so far.
func (l *Loop) Stats() LoopStats { return l.stats }

// Rollout exposes the canary state machine (read-only use).
func (l *Loop) Rollout() *Rollout { return l.rollout }

// Detector returns stream i's drift detector.
func (l *Loop) Detector(i int) *DriftDetector { return l.dets[i] }

// FleetGeneration returns the generation the non-canary fleet serves.
func (l *Loop) FleetGeneration() uint64 { return l.fleetGen }

// FleetBundle returns the bundle backing the fleet generation.
func (l *Loop) FleetBundle() *core.Bundle { return l.fleet }

// Run drives every stream through its frames in ChunkFrames segments,
// executing the adaptation control phase between segments, and returns
// the per-stream frame results (concatenated across chunks, same shape
// as MultiRuntime.ProcessStreams). An obs observer, when non-nil, is
// invoked exactly as ProcessStreams would invoke it.
func (l *Loop) Run(streams [][]*synth.Frame, obs core.StreamObserver) ([][]core.FrameResult, error) {
	if len(streams) != l.m.NumStreams() {
		return nil, fmt.Errorf("adapt: %d frame slices for %d streams", len(streams), l.m.NumStreams())
	}
	results := make([][]core.FrameResult, len(streams))
	maxLen := 0
	for i, s := range streams {
		results[i] = make([]core.FrameResult, 0, len(s))
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for start := 0; start < maxLen; start += l.cfg.ChunkFrames {
		end := start + l.cfg.ChunkFrames
		chunk := make([][]*synth.Frame, len(streams))
		for i, s := range streams {
			lo, hi := start, end
			if lo > len(s) {
				lo = len(s)
			}
			if hi > len(s) {
				hi = len(s)
			}
			chunk[i] = s[lo:hi]
		}
		res, err := l.m.ProcessStreams(chunk, l.observer(obs))
		if err != nil {
			return results, err
		}
		for i := range res {
			results[i] = append(results[i], res[i]...)
		}
		if err := l.controlPhase(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// observer builds the per-chunk StreamObserver: it feeds the stream's
// drift detector and chunk accumulator (per-stream state — MultiRuntime
// serializes observer calls within a stream) and chains to the caller's
// observer. The canary stream's drift detector pauses while a canary is
// active: that stream is the experiment, not a witness, and its frames
// are judged by the rollout window instead. (Rollout state only changes
// between chunks, so reading it here is race-free.)
func (l *Loop) observer(chained core.StreamObserver) core.StreamObserver {
	return func(stream int, f *synth.Frame, res core.FrameResult) error {
		c := &l.chunks[stream]
		c.frames++
		c.sumF1 += res.Metrics.F1
		if res.Degraded {
			c.degraded++
		}
		inCanary := l.rollout.State() == RolloutCanary && stream == l.cfg.Rollout.CanaryStream
		if !inCanary {
			if rep := l.dets[stream].Observe(f, res); rep != nil {
				c.reports = append(c.reports, rep)
			}
		}
		if chained != nil {
			return chained(stream, f, res)
		}
		return nil
	}
}

// controlPhase runs between chunks on the driver goroutine: fold the
// chunk telemetry into the rollout, resolve a ready canary, ship
// pending drift reports, and deploy any newly published generation.
func (l *Loop) controlPhase() error {
	canaryStream := l.cfg.Rollout.CanaryStream
	for i := range l.chunks {
		c := &l.chunks[i]
		l.rollout.Accumulate(i == canaryStream, c.frames, c.sumF1, c.degraded)
		if len(c.reports) > 0 {
			l.stats.DriftEvents += int64(len(c.reports))
			if l.mDrift != nil {
				l.mDrift.Add(int64(len(c.reports)))
			}
			l.pending = append(l.pending, c.reports...)
		}
		*c = streamChunk{}
	}
	if pf := l.m.Prefetcher(); pf != nil && l.rollout.State() == RolloutCanary {
		opens := pf.Stats().BreakerOpens
		if delta := opens - l.breakBase; delta > 0 {
			l.rollout.ObserveBreakerOpens(delta)
			l.breakBase = opens
		}
	}
	if l.rollout.Ready() {
		if err := l.resolveCanary(); err != nil {
			return err
		}
		// A generation published while that canary was in flight gets
		// its turn now. startCanary re-verifies it against the (possibly
		// just-promoted) fleet; a stale candidate is rejected there.
		if gen := l.deferred; gen != 0 {
			trace, pubAt := l.deferredTrace, l.deferredPubAt
			l.deferred, l.deferredTrace, l.deferredPubAt = 0, "", 0
			if gen > l.fleetGen {
				if err := l.startCanary(gen, trace, pubAt); err != nil {
					return err
				}
			}
		}
	}
	return l.shipReports()
}

// shipReports drains the pending queue over the uplink in emission
// order. A failed transfer keeps the report (and everything behind it)
// queued for the next control point — the link that dropped one report
// is down for the rest too. Under Critical resource pressure the whole
// queue defers: drift reporting is the least urgent traffic a
// struggling device carries, and the reports keep accumulating for the
// first calm control point.
func (l *Loop) shipReports() error {
	if l.cfg.Pressure.Level() >= pressure.Critical && len(l.pending) > 0 {
		l.stats.DeferredReports++
		l.cfg.Pressure.NoteDeferredReports()
		return nil
	}
	for len(l.pending) > 0 {
		rep := l.pending[0]
		size := rep.SizeBytes()
		if l.cfg.Uplink != nil {
			if _, err := l.cfg.Uplink.Send(size); err != nil {
				l.stats.ReportFailures++
				if l.mFailed != nil {
					l.mFailed.Inc()
				}
				return nil
			}
		}
		l.pending = l.pending[1:]
		l.stats.ReportsSent++
		l.stats.ReportBytes += size
		if l.mSent != nil {
			l.mSent.Inc()
		}
		if l.mBytes != nil {
			l.mBytes.Add(size)
		}
		l.span(rep.Stream, "report", rep.Trace)
		gen, published, err := l.cfg.Submitter.Submit(rep)
		if err != nil {
			// A failed retrain is a cloud-side problem; the report was
			// delivered. Keep going.
			continue
		}
		if !published || gen <= l.fleetGen {
			continue
		}
		if l.rollout.State() == RolloutCanary {
			// Single-flight: park the newer generation until the active
			// canary resolves (latest publish wins).
			l.deferred = gen
			l.deferredTrace = rep.Trace
			l.deferredPubAt = l.cfg.SLO.Now()
			continue
		}
		if err := l.startCanary(gen, rep.Trace, l.cfg.SLO.Now()); err != nil {
			return err
		}
	}
	return nil
}

// traceAware is the optional BundleSource surface for stamping the
// drift journey's trace ID on outbound repository requests (the HTTP
// bundle source forwards it to repo.Client.SetTrace), so the fetch of
// the candidate this journey published carries the same trace.
type traceAware interface{ SetTrace(trace string) }

// startCanary fetches, verifies, and deploys generation gen to the
// canary stream, carrying the publishing journey's trace ID and
// publish time. Any verification failure rejects the candidate without
// touching the fleet — nothing unverified is ever served.
func (l *Loop) startCanary(gen uint64, trace string, pubAt time.Duration) error {
	if ta, ok := l.cfg.Source.(traceAware); ok {
		ta.SetTrace(trace)
	}
	nb, err := l.verifyCandidate(gen)
	if err != nil {
		l.stats.RejectedCandidates++
		if l.mRejected != nil {
			l.mRejected.Inc()
		}
		l.cfg.Flight.Record(flight.Event{
			Stream: l.cfg.Rollout.CanaryStream,
			Kind:   flight.KindSwap,
			Detail: "reject",
			Trace:  trace,
			Value:  float64(gen),
		})
		if pa, ok := l.cfg.Submitter.(promotionAware); ok {
			// The cloud serves a generation no device will run; revert it.
			if rbErr := pa.NoteRollback(gen, l.fleetGen); rbErr != nil {
				return fmt.Errorf("adapt: reject generation %d (%v) and rollback failed: %w", gen, err, rbErr)
			}
		}
		return nil
	}
	if l.cfg.RegisterModels != nil {
		if err := l.cfg.RegisterModels(newModels(l.fleet, nb)); err != nil {
			return fmt.Errorf("adapt: register candidate models: %w", err)
		}
	}
	if pf := l.m.Prefetcher(); pf != nil {
		if err := pf.ExtendModels(newModels(l.fleet, nb)); err != nil {
			return fmt.Errorf("adapt: extend prefetch models: %w", err)
		}
		l.breakBase = pf.Stats().BreakerOpens
	}
	canary := l.cfg.Rollout.CanaryStream
	if err := l.m.SwapStreamBundle(canary, nb); err != nil {
		return fmt.Errorf("adapt: deploy canary: %w", err)
	}
	if err := l.rollout.Begin(gen, l.fleetGen); err != nil {
		return err
	}
	l.candGen, l.cand = gen, nb
	l.candTrace, l.candPubAt = trace, pubAt
	l.dets[canary].SetBundle(nb, gen)
	l.stats.CanaryStarts++
	if l.mCanary != nil {
		l.mCanary.Inc()
	}
	l.span(canary, "canary_start", trace)
	return nil
}

// verifyCandidate downloads generation gen and proves it sound: the
// payload hashes to the publisher's claimed digest, decodes as a bundle,
// passes bundle validation, and is shape-compatible with the fleet.
func (l *Loop) verifyCandidate(gen uint64) (*core.Bundle, error) {
	payload, claimed, err := l.cfg.Source.FetchGeneration(gen)
	if err != nil {
		return nil, err
	}
	got := fmt.Sprintf("%x", sha256.Sum256(payload))
	if got != claimed {
		return nil, fmt.Errorf("adapt: generation %d digest mismatch: claimed %s, got %s", gen, claimed, got)
	}
	nb, err := repo.ReadBundle(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("adapt: decode generation %d: %w", gen, err)
	}
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("adapt: validate generation %d: %w", gen, err)
	}
	if nb.Encoder.EmbedDim() != l.fleet.Encoder.EmbedDim() {
		return nil, fmt.Errorf("adapt: generation %d embed dim %d, fleet %d",
			gen, nb.Encoder.EmbedDim(), l.fleet.Encoder.EmbedDim())
	}
	if nb.NumModels() < l.fleet.NumModels() {
		return nil, fmt.Errorf("adapt: generation %d shrinks the repertoire (%d < %d)",
			gen, nb.NumModels(), l.fleet.NumModels())
	}
	// Model names are cache and fetch keys, so a name the candidate
	// shares with the fleet must carry the very same weights — otherwise
	// the two generations would fight over one cache slot during the
	// canary. A mismatch means the candidate was trained against a base
	// the fleet has since left behind (e.g. published mid-canary and
	// resolved after a promotion); it is stale, not canary-able.
	fleetDigests := make(map[string]string, l.fleet.NumModels())
	for _, d := range l.fleet.Detectors {
		fleetDigests[d.Name] = detectorDigest(d)
	}
	for _, d := range nb.Detectors {
		want, shared := fleetDigests[d.Name]
		if shared && detectorDigest(d) != want {
			return nil, fmt.Errorf("adapt: generation %d redefines model %q with different weights (stale base)",
				gen, d.Name)
		}
	}
	return nb, nil
}

// detectorDigest hashes a detector's serialized weights.
func detectorDigest(d *detect.Detector) string {
	h := sha256.New()
	if _, err := d.Weights().WriteTo(h); err != nil {
		return fmt.Sprintf("unserializable: %v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// resolveCanary closes a ready canary window: promote the candidate
// fleet-wide or restore the canary stream to the incumbent.
func (l *Loop) resolveCanary() error {
	verdict, err := l.rollout.Decide()
	if err != nil {
		return err
	}
	canary := l.cfg.Rollout.CanaryStream
	if verdict.Promote {
		if err := l.m.SwapAllBundles(l.cand); err != nil {
			return fmt.Errorf("adapt: promote generation %d: %w", l.candGen, err)
		}
		l.fleet, l.fleetGen = l.cand, l.candGen
		l.stats.FleetGeneration = l.fleetGen
		l.stats.GenerationsApplied++
		for _, d := range l.dets {
			d.SetBundle(l.fleet, l.fleetGen)
		}
		if pa, ok := l.cfg.Submitter.(promotionAware); ok {
			pa.ConfirmPromotion(l.fleetGen, l.fleet)
		}
		l.stats.Promotions++
		if l.mPromote != nil {
			l.mPromote.Inc()
		}
		if l.gGeneration != nil {
			l.gGeneration.Set(float64(l.fleetGen))
		}
		l.span(canary, "promote", l.candTrace)
		l.cfg.Flight.Record(flight.Event{
			Stream: flight.GlobalStream,
			Kind:   flight.KindSwap,
			Detail: "promote",
			Trace:  l.candTrace,
			Value:  float64(l.fleetGen),
		})
		// Swap staleness: how long the fleet waited between the cloud
		// publishing this generation and every stream serving it.
		l.cfg.SLO.ObserveStaleness(canary, l.cfg.SLO.Now()-l.candPubAt)
	} else {
		if err := l.m.SwapStreamBundle(canary, l.fleet); err != nil {
			return fmt.Errorf("adapt: rollback canary to generation %d: %w", l.fleetGen, err)
		}
		l.dets[canary].SetBundle(l.fleet, l.fleetGen)
		if pa, ok := l.cfg.Submitter.(promotionAware); ok {
			if err := pa.NoteRollback(l.candGen, l.fleetGen); err != nil {
				return fmt.Errorf("adapt: note rollback of generation %d: %w", l.candGen, err)
			}
		}
		l.stats.Rollbacks++
		if l.mRollback != nil {
			l.mRollback.Inc()
		}
		l.span(canary, "rollback", l.candTrace)
		// A rollback is an anomaly: this Record freezes the flight ring
		// and captures a diagnostic dump with the journey's trace.
		l.cfg.Flight.Record(flight.Event{
			Stream: canary,
			Kind:   flight.KindRollback,
			Detail: fmt.Sprintf("generation %d", l.candGen),
			Trace:  l.candTrace,
			Value:  float64(l.candGen),
		})
	}
	purged := l.m.PurgeStaleModels()
	l.stats.PurgedModels += int64(purged)
	if l.mPurged != nil && purged > 0 {
		l.mPurged.Add(int64(purged))
	}
	l.candGen, l.cand = 0, nil
	l.candTrace, l.candPubAt = "", 0
	return nil
}

// span records one control-plane event on the tracer, tagged with the
// drift journey's trace ID so /debug/spans?trace= stitches the event
// into the device→cloud→device adaptation journey.
func (l *Loop) span(stream int, event, trace string) {
	if l.cfg.Tracer == nil {
		return
	}
	l.cfg.Tracer.Record(telemetry.Span{
		Seq:    l.cfg.Tracer.NextSeq(),
		Stream: stream,
		Stage:  StageAdapt,
		Model:  -1,
		Event:  event,
		Trace:  trace,
	})
}

// CaptureCheckpoint fills c with the loop's share of a restart
// checkpoint: the fleet generation pin and every stream's in-progress
// drift window. Call it between chunks (the same driver-goroutine
// safe point as controlPhase); the MultiRuntime contributes the Markov
// and cache-manifest fields separately.
func (l *Loop) CaptureCheckpoint(c *pressure.Checkpoint) {
	if c == nil {
		return
	}
	c.Generation = l.fleetGen
	c.Drift = c.Drift[:0]
	for _, d := range l.dets {
		c.Drift = append(c.Drift, d.State())
	}
}

// RestoreCheckpoint warm-starts the drift detectors from c. Windows
// are only restored when the checkpoint's generation matches the
// generation this loop booted with — window statistics measured on a
// different repertoire mean nothing (the same reason SetBundle resets
// the window). A mismatch is not an error: the loop simply cold-starts
// its detectors and reports how many windows it restored.
func (l *Loop) RestoreCheckpoint(c *pressure.Checkpoint) (restored int) {
	if c == nil {
		return 0
	}
	if c.Generation != l.fleetGen {
		// A rejected checkpoint is an anomaly — the device lost its
		// warm-start state to a generation skew worth diagnosing.
		l.cfg.Flight.Record(flight.Event{
			Stream: flight.GlobalStream,
			Kind:   flight.KindCheckpoint,
			Detail: flight.DetailReject,
			Value:  float64(c.Generation),
		})
		return 0
	}
	for _, w := range c.Drift {
		if w.Stream < 0 || w.Stream >= len(l.dets) {
			continue
		}
		l.dets[w.Stream].RestoreState(w)
		restored++
	}
	l.cfg.Flight.Record(flight.Event{
		Stream: flight.GlobalStream,
		Kind:   flight.KindCheckpoint,
		Detail: flight.DetailRestore,
		Value:  float64(restored),
	})
	return restored
}

// newModels returns the prefetch entries for detectors present in next
// but not in prev (matched by name — the cache/fetch key).
func newModels(prev, next *core.Bundle) []prefetch.Model {
	known := make(map[string]bool, prev.NumModels())
	for _, d := range prev.Detectors {
		known[d.Name] = true
	}
	var out []prefetch.Model
	for _, pm := range core.PrefetchModels(next) {
		if !known[pm.Name] {
			out = append(out, pm)
		}
	}
	return out
}
