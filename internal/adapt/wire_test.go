package adapt

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anole/internal/testutil"
)

func TestReportWireRoundTrip(t *testing.T) {
	fx := testutil.Shared(t)
	rep := driftReports(fx, novelScene(t, fx.Bundle), 1, 20, 11)[0]
	rep.At = 1500 * time.Millisecond
	rep.MeanEntropy = 0.99
	rep.Disagreement = 0.8
	rep.Signals = 2

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != rep.Stream || got.Seq != rep.Seq || got.At != rep.At ||
		got.Generation != rep.Generation || got.Window != rep.Window ||
		got.MeanEntropy != rep.MeanEntropy || got.MeanNovelty != rep.MeanNovelty ||
		got.Disagreement != rep.Disagreement || got.Signals != rep.Signals {
		t.Fatalf("header mangled: sent %+v, got %+v", rep, got)
	}
	if len(got.Centroid) != len(rep.Centroid) {
		t.Fatalf("centroid dim %d, want %d", len(got.Centroid), len(rep.Centroid))
	}
	for i := range got.Centroid {
		if got.Centroid[i] != rep.Centroid[i] {
			t.Fatalf("centroid[%d] = %v, want %v", i, got.Centroid[i], rep.Centroid[i])
		}
	}
	if len(got.Exemplars) != len(rep.Exemplars) {
		t.Fatalf("%d exemplars, want %d", len(got.Exemplars), len(rep.Exemplars))
	}
	for i, f := range got.Exemplars {
		want := rep.Exemplars[i]
		if f.Scene != want.Scene || len(f.Objects) != len(want.Objects) || len(f.Cells) != len(want.Cells) {
			t.Fatalf("exemplar %d mangled", i)
		}
	}
}

func TestWriteReportRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, nil); err == nil {
		t.Fatal("nil report encoded")
	}
	if err := WriteReport(&buf, &Report{}); err == nil {
		t.Fatal("exemplar-free report encoded (frame pack has no geometry)")
	}
}

// recordingSubmitter captures submitted reports and plays a scripted
// verdict.
type recordingSubmitter struct {
	reports   []*Report
	gen       uint64
	published bool
	err       error
}

func (s *recordingSubmitter) Submit(rep *Report) (uint64, bool, error) {
	s.reports = append(s.reports, rep)
	return s.gen, s.published, s.err
}

// TestDriftEndpointRoundTrip drives HTTPSubmitter against NewDriftHandler
// over a real HTTP server: the report must survive the hop intact and
// the controller's verdict must come back to the device side.
func TestDriftEndpointRoundTrip(t *testing.T) {
	fx := testutil.Shared(t)
	sub := &recordingSubmitter{gen: 3, published: true}
	ts := httptest.NewServer(NewDriftHandler(sub))
	defer ts.Close()

	rep := driftReports(fx, novelScene(t, fx.Bundle), 1, 18, 13)[0]
	client := &HTTPSubmitter{URL: ts.URL}
	gen, published, err := client.Submit(rep)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || !published {
		t.Fatalf("verdict (%d, %v), want (3, true)", gen, published)
	}
	if len(sub.reports) != 1 {
		t.Fatalf("%d reports reached the submitter", len(sub.reports))
	}
	got := sub.reports[0]
	if got.Seq != rep.Seq || len(got.Exemplars) != len(rep.Exemplars) || len(got.Centroid) != len(rep.Centroid) {
		t.Fatalf("report mangled over HTTP: %+v", got)
	}
}

func TestDriftEndpointErrors(t *testing.T) {
	sub := &recordingSubmitter{}
	ts := httptest.NewServer(NewDriftHandler(sub))
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	// Garbage body.
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d, want 400", resp.StatusCode)
	}
	if len(sub.reports) != 0 {
		t.Fatal("malformed request reached the submitter")
	}

	// Submitter failure surfaces as an error on the device side.
	fx := testutil.Shared(t)
	sub.err = fmt.Errorf("retrain exploded")
	client := &HTTPSubmitter{URL: ts.URL}
	if _, _, err := client.Submit(driftReports(fx, novelScene(t, fx.Bundle), 1, 16, 17)[0]); err == nil ||
		!strings.Contains(err.Error(), "status 500") {
		t.Fatalf("submitter failure not relayed: %v", err)
	}
}
