package adapt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/flight"
	"anole/internal/repo"
	"anole/internal/slo"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// journeyHarness is loopHarness plus the observability stack: one
// shared tracer across the device loop and the cloud controller (the
// in-process equivalent of stitching both sides' /debug/spans?trace=
// dumps), a flight recorder, and an SLO engine.
type journeyHarness struct {
	*loopHarness
	tracer *telemetry.Tracer
	rec    *flight.Recorder
	eng    *slo.Engine
	dumps  []*flight.Dump
}

func newJourneyHarness(t *testing.T, fx testutil.Fixture, seed uint64, minF1Ratio float64,
	hook func(*core.Bundle) (*core.Bundle, error)) *journeyHarness {
	t.Helper()
	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(1024, nil)
	ccfg := testControllerConfig(fx, seed)
	ccfg.RetrainHook = hook
	ccfg.Tracer = tracer
	ctrl, err := NewController(fx.Bundle, srv, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, CacheSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A ticking fake clock makes publish→promote staleness strictly
	// positive and keeps every SLO sample inside the long window.
	var tick time.Duration
	h := &journeyHarness{
		loopHarness: &loopHarness{srv: srv, ctrl: ctrl, mrt: mrt, reg: reg},
		tracer:      tracer,
		eng: slo.NewEngine(slo.Config{
			Now:     func() time.Duration { tick += time.Millisecond; return tick },
			Metrics: reg,
		}),
	}
	h.rec = flight.NewRecorder(flight.Config{
		Spans:   tracer,
		Gather:  reg,
		Info:    map[string]string{"test": t.Name()},
		OnDump:  func(d *flight.Dump) { h.dumps = append(h.dumps, d) },
		Metrics: reg,
	})
	loop, err := NewLoop(mrt, LoopConfig{
		Drift:     DriftConfig{Window: 30, MinExemplars: 16, MaxExemplars: 48, Cooldown: 1},
		Rollout:   RolloutConfig{CanaryStream: 0, CanaryFrames: 60, MinF1Ratio: minF1Ratio},
		Submitter: ctrl,
		Source:    NewServerSource(srv),
		Metrics:   reg,
		Tracer:    tracer,
		Flight:    h.rec,
		SLO:       h.eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.loop = loop
	return h
}

// traceEvents returns the ordered control-plane event names recorded
// under one trace ID (spans come back oldest first).
func traceEvents(tracer *telemetry.Tracer, trace string) []string {
	var events []string
	for _, s := range tracer.SnapshotFiltered(trace, -1, 0) {
		if s.Event != "" {
			events = append(events, s.Event)
		}
	}
	return events
}

// TestJourneyTraceStitchesPromotion is the tentpole acceptance test:
// one drift report's trace ID, read off the published generation's
// lineage, reconstructs the whole device→cloud→device adaptation
// journey from the span store — report shipped, clustered, retrained,
// published, canaried, promoted — in causal order.
func TestJourneyTraceStitchesPromotion(t *testing.T) {
	fx := testutil.Shared(t)
	h := newJourneyHarness(t, fx, 101, 0.5, nil)
	defer h.mrt.Close()

	if _, err := h.loop.Run(driftStreams(t, fx, 240, 101), nil); err != nil {
		t.Fatal(err)
	}
	st := h.loop.Stats()
	if st.Promotions != 1 || st.Rollbacks != 0 {
		t.Fatalf("expected one clean promotion: %+v", st)
	}

	// The repository lineage anchors the journey: the publish event for
	// generation 2 carries the triggering drift report's trace ID.
	var trace string
	for _, e := range h.srv.Lineage() {
		if e.Event == "publish" && e.Generation == 2 {
			trace = e.Trace
		}
	}
	if trace == "" {
		t.Fatal("published lineage entry carries no trace ID")
	}
	if !strings.HasPrefix(trace, "d0.") {
		t.Fatalf("trace %q is not a stream-0 drift trace", trace)
	}

	// One SnapshotFiltered call on that ID yields the full journey.
	want := []string{"report", "cluster", "retrain", "publish", "canary_start", "promote"}
	got := traceEvents(h.tracer, trace)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journey events for trace %s:\ngot  %v\nwant %v", trace, got, want)
	}
	spans := h.tracer.SnapshotFiltered(trace, -1, 0)
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("journey spans out of causal order: %+v", spans)
		}
	}
	for _, s := range spans {
		if s.Stage != StageAdapt {
			t.Fatalf("journey span on stage %q, want %q", s.Stage, StageAdapt)
		}
	}

	// The promotion fed the flight recorder (a swap event, no anomaly)
	// and the SLO engine (one staleness sample on the canary stream).
	if h.rec.Frozen() {
		t.Fatal("clean promotion froze the flight recorder")
	}
	var swaps int
	for _, ev := range h.rec.Snapshot() {
		if ev.Kind == flight.KindSwap && ev.Detail == "promote" {
			swaps++
			if ev.Trace != trace {
				t.Fatalf("swap event trace %q, want %q", ev.Trace, trace)
			}
		}
	}
	if swaps != 1 {
		t.Fatalf("flight recorder saw %d promote swaps, want 1", swaps)
	}
	if stat := h.eng.Status(); stat.Long.SwapStaleness <= 0 {
		t.Fatalf("SLO engine saw no swap staleness: %+v", stat.Long)
	}
}

// TestJourneyRollbackFlightDump injects a regressed candidate and
// requires the rollback anomaly to freeze the flight recorder with a
// dump whose events and spans are causally linked to the journey's
// trace — and the dump artifact to round-trip through WriteDump and
// ReadDump bit-for-bit.
func TestJourneyRollbackFlightDump(t *testing.T) {
	fx := testutil.Shared(t)
	sabotage := func(b *core.Bundle) (*core.Bundle, error) {
		bad := *b
		n := b.NumModels()
		bad.Detectors = make([]*detect.Detector, n)
		bad.Infos = make([]core.ModelInfo, n)
		for i := range bad.Detectors {
			bad.Detectors[i] = b.Detectors[n-1-i]
			bad.Infos[i] = b.Infos[n-1-i]
		}
		return &bad, nil
	}
	h := newJourneyHarness(t, fx, 101, 0.9, sabotage)
	defer h.mrt.Close()

	if _, err := h.loop.Run(driftStreams(t, fx, 150, 101), nil); err != nil {
		t.Fatal(err)
	}
	if st := h.loop.Stats(); st.Rollbacks != 1 || st.Promotions != 0 {
		t.Fatalf("regression not rolled back: %+v", st)
	}

	// The rollback tripped the recorder: frozen, dump captured, OnDump
	// fired once.
	if !h.rec.Frozen() {
		t.Fatal("rollback did not freeze the flight recorder")
	}
	dump := h.rec.LastDump()
	if dump == nil {
		t.Fatal("no dump captured")
	}
	if len(h.dumps) != 1 || h.dumps[0] != dump {
		t.Fatalf("OnDump fired %d times", len(h.dumps))
	}
	if !strings.HasPrefix(dump.Reason, "rollback:generation ") {
		t.Fatalf("dump reason %q", dump.Reason)
	}
	if dump.Trigger.Kind != flight.KindRollback {
		t.Fatalf("trigger kind %q", dump.Trigger.Kind)
	}
	trace := dump.Trigger.Trace
	if !strings.HasPrefix(trace, "d0.") {
		t.Fatalf("trigger trace %q is not a stream-0 drift trace", trace)
	}

	// The dump's spans are the journey causally linked to the trigger:
	// the same trace threads report → cluster → retrain → publish →
	// canary_start → rollback. The rollback lands twice — once from the
	// cloud repository reverting its generation (stream -1), once from
	// the device loop restoring the canary stream.
	want := []string{"report", "cluster", "retrain", "publish", "canary_start", "rollback", "rollback"}
	var got []string
	for _, s := range dump.Spans {
		if s.Trace != trace {
			t.Fatalf("dump span off-trace: %+v", s)
		}
		if s.Event != "" {
			got = append(got, s.Event)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dump journey events:\ngot  %v\nwant %v", got, want)
	}

	// The canary stream's ring captured the trigger, the metrics
	// snapshot and config echo are embedded, and the repository lineage
	// records the rollback under the same trace.
	if len(dump.StreamEvents) == 0 {
		t.Fatal("dump has no canary-stream events")
	}
	if dump.Metrics["anole_adapt_rollbacks_total"] != 1 {
		t.Fatalf("dump metrics: rollbacks_total = %v", dump.Metrics["anole_adapt_rollbacks_total"])
	}
	if dump.Config["test"] != t.Name() {
		t.Fatalf("dump config echo: %v", dump.Config)
	}
	last := h.srv.Lineage()[len(h.srv.Lineage())-1]
	if last.Event != "rollback" || last.Trace != trace {
		t.Fatalf("lineage tail %+v does not record the traced rollback", last)
	}

	// Artifact round-trip: WriteDump output decodes back to an
	// identical dump.
	var buf bytes.Buffer
	if err := flight.WriteDump(&buf, dump); err != nil {
		t.Fatal(err)
	}
	back, err := flight.ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, dump) {
		t.Fatal("dump did not round-trip through WriteDump/ReadDump")
	}
}
