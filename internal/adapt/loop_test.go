package adapt

import (
	"bytes"
	"testing"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/repo"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// loopHarness wires a full in-process adaptation loop: a two-stream
// fleet (stream 0 will drift), a repository server, and a controller.
type loopHarness struct {
	srv  *repo.Server
	ctrl *Controller
	mrt  *core.MultiRuntime
	loop *Loop
	reg  *telemetry.Registry
}

func newLoopHarness(t *testing.T, fx testutil.Fixture, seed uint64, minF1Ratio float64,
	hook func(*core.Bundle) (*core.Bundle, error)) *loopHarness {
	t.Helper()
	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := testControllerConfig(fx, seed)
	ccfg.RetrainHook = hook
	ctrl, err := NewController(fx.Bundle, srv, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, CacheSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	loop, err := NewLoop(mrt, LoopConfig{
		Drift:     DriftConfig{Window: 30, MinExemplars: 16, MaxExemplars: 48, Cooldown: 1},
		Rollout:   RolloutConfig{CanaryStream: 0, CanaryFrames: 60, MinF1Ratio: minF1Ratio},
		Submitter: ctrl,
		Source:    NewServerSource(srv),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &loopHarness{srv: srv, ctrl: ctrl, mrt: mrt, loop: loop, reg: reg}
}

// driftStreams builds the two stream tapes: the novel scene on stream
// 0, in-distribution corpus traffic (what the bundle was calibrated on)
// on stream 1.
func driftStreams(t *testing.T, fx testutil.Fixture, frames int, seed uint64) [][]*synth.Frame {
	t.Helper()
	rng := xrand.NewLabeled(seed, "adapt-loop-streams")
	healthy := fx.Corpus.Frames(synth.Test)
	if len(healthy) == 0 {
		t.Fatal("fixture corpus has no test frames")
	}
	incumbent := make([]*synth.Frame, frames)
	for i := range incumbent {
		incumbent[i] = healthy[i%len(healthy)]
	}
	return [][]*synth.Frame{
		sceneFrames(fx, novelScene(t, fx.Bundle), frames, rng),
		incumbent,
	}
}

// evalF1 measures a bundle's detection F1 over frames on a fresh
// single-stream runtime.
func evalF1(t *testing.T, b *core.Bundle, frames []*synth.Frame) float64 {
	t.Helper()
	rt, err := core.NewRuntime(b, core.RuntimeConfig{CacheSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	var agg stats.PRF1
	for _, f := range frames {
		fr, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		agg = agg.Add(fr.Metrics)
	}
	return agg.F1
}

// TestLoopEndToEndPromotes is the acceptance scenario: an unseen scene
// drifts on stream 0, the detector reports it, the cloud retrains and
// publishes generation 2, the canary passes on stream 0, the fleet
// promotes, and post-promotion accuracy on the novel scene beats the
// frozen baseline. The whole run is deterministic: executed twice, it
// yields identical stats and a bit-identical promoted bundle.
func TestLoopEndToEndPromotes(t *testing.T) {
	fx := testutil.Shared(t)
	const frames = 240

	run := func() (LoopStats, []byte, *loopHarness) {
		h := newLoopHarness(t, fx, 101, 0.5, nil)
		defer h.mrt.Close()
		streams := driftStreams(t, fx, frames, 101)
		results, err := h.loop.Run(streams, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			if len(results[i]) != frames {
				t.Fatalf("stream %d: %d results for %d frames", i, len(results[i]), frames)
			}
		}
		var buf bytes.Buffer
		if err := repo.WriteBundle(&buf, h.loop.FleetBundle()); err != nil {
			t.Fatal(err)
		}
		return h.loop.Stats(), buf.Bytes(), h
	}

	st, blob, h := run()
	if st.DriftEvents < 2 || st.ReportsSent < 2 {
		t.Fatalf("drift not detected/reported: %+v", st)
	}
	if st.CanaryStarts != 1 || st.Promotions != 1 || st.Rollbacks != 0 || st.RejectedCandidates != 0 {
		t.Fatalf("rollout path: %+v", st)
	}
	if st.FleetGeneration != 2 || st.GenerationsApplied != 1 {
		t.Fatalf("fleet generation: %+v", st)
	}
	if h.srv.Generation() != 2 {
		t.Fatalf("repository at generation %d after promotion", h.srv.Generation())
	}
	for i := 0; i < h.mrt.NumStreams(); i++ {
		if h.mrt.StreamBundle(i) != h.loop.FleetBundle() {
			t.Fatalf("stream %d not on the promoted bundle", i)
		}
	}
	if err := telemetry.ValidateScheme(h.reg.Gather()); err != nil {
		t.Fatalf("metric scheme: %v", err)
	}

	// Post-promotion accuracy on the novel scene must beat the frozen
	// baseline on a held-out stream.
	holdout := sceneFrames(fx, novelScene(t, fx.Bundle), 60, xrand.NewLabeled(900, "adapt-loop-holdout"))
	before := evalF1(t, fx.Bundle, holdout)
	after := evalF1(t, h.loop.FleetBundle(), holdout)
	if after <= before {
		t.Fatalf("promotion did not improve novel-scene F1: %.3f -> %.3f", before, after)
	}

	// Determinism: the whole loop replays bit-identically.
	st2, blob2, h2 := run()
	if st != st2 {
		t.Fatalf("stats diverge across identical runs:\n%+v\n%+v", st, st2)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("promoted bundles differ across identical runs")
	}
	_ = h2
}

// TestLoopRegressionRollsBack injects a regression into the retrain (the
// published candidate's specialists are scrambled) and requires the
// canary to catch it: automatic rollback, fleet still serving the seed
// generation, repository restored bit-for-bit.
func TestLoopRegressionRollsBack(t *testing.T) {
	fx := testutil.Shared(t)
	sabotage := func(b *core.Bundle) (*core.Bundle, error) {
		bad := *b
		n := b.NumModels()
		bad.Detectors = make([]*detect.Detector, n)
		bad.Infos = make([]core.ModelInfo, n)
		for i := range bad.Detectors {
			bad.Detectors[i] = b.Detectors[n-1-i]
			bad.Infos[i] = b.Infos[n-1-i]
		}
		return &bad, nil
	}
	h := newLoopHarness(t, fx, 101, 0.9, sabotage)
	defer h.mrt.Close()
	seedBlob := append([]byte(nil), h.srv.BundleBytes()...)

	streams := driftStreams(t, fx, 150, 101)
	if _, err := h.loop.Run(streams, nil); err != nil {
		t.Fatal(err)
	}
	st := h.loop.Stats()
	if st.CanaryStarts != 1 || st.Rollbacks != 1 || st.Promotions != 0 {
		t.Fatalf("regression not rolled back: %+v", st)
	}
	if st.FleetGeneration != 1 || h.loop.FleetBundle() != fx.Bundle {
		t.Fatalf("fleet left the seed generation: %+v", st)
	}
	for i := 0; i < h.mrt.NumStreams(); i++ {
		if h.mrt.StreamBundle(i) != fx.Bundle {
			t.Fatalf("stream %d not restored to the seed bundle", i)
		}
	}
	if h.srv.Generation() != 1 {
		t.Fatalf("repository at generation %d after rollback", h.srv.Generation())
	}
	if !bytes.Equal(h.srv.BundleBytes(), seedBlob) {
		t.Fatal("rollback did not restore the seed bundle bit-for-bit")
	}
}

func TestLoopConfigValidation(t *testing.T) {
	fx := testutil.Shared(t)
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mrt.Close()
	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(fx.Bundle, srv, testControllerConfig(fx, 1))
	if err != nil {
		t.Fatal(err)
	}
	src := NewServerSource(srv)
	if _, err := NewLoop(nil, LoopConfig{Submitter: ctrl, Source: src}); err == nil {
		t.Fatal("nil runtime accepted")
	}
	if _, err := NewLoop(mrt, LoopConfig{Source: src}); err == nil {
		t.Fatal("nil submitter accepted")
	}
	if _, err := NewLoop(mrt, LoopConfig{Submitter: ctrl}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewLoop(mrt, LoopConfig{Submitter: ctrl, Source: src,
		Rollout: RolloutConfig{CanaryStream: 5}}); err == nil {
		t.Fatal("out-of-range canary stream accepted")
	}
	l, err := NewLoop(mrt, LoopConfig{Submitter: ctrl, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(make([][]*synth.Frame, 3), nil); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
}
