package adapt

import (
	"fmt"
	"time"

	"anole/internal/netsim"
)

// Uplink ships drift reports over a simulated control-plane link. It is
// a separate netsim.Medium from the model-download link — in the paper's
// deployment the two flows contend for the same radio, but the repo's
// LinkFetcher owns its Medium exclusively (netsim.Link is not safe for
// concurrent use), so the control plane gets its own chain with the
// same stability character.
//
// Reports are lost whole, never corrupted: the report either transfers
// within the link step or the caller keeps it and retries at the next
// control point. An Uplink is not safe for concurrent use; the Loop
// drives it only between processing chunks.
type Uplink struct {
	link netsim.Medium

	sent     int64
	failed   int64
	bytes    int64
	lastCost time.Duration
}

// ackBytes is the downstream acknowledgement charged per report.
const ackBytes = 256

// NewUplink wraps a control-plane link. A nil medium yields an uplink
// that always succeeds instantly (the in-process/test configuration).
func NewUplink(link netsim.Medium) *Uplink {
	return &Uplink{link: link}
}

// Send charges size bytes upstream (plus a small acknowledgement
// downstream) to the link, stepping its state chain once. It returns the
// simulated transfer cost, or an error when the link was down or the
// transfer failed mid-flight — the report was lost and the caller should
// requeue it.
func (u *Uplink) Send(size int64) (time.Duration, error) {
	if size <= 0 {
		return 0, fmt.Errorf("adapt: non-positive report size %d", size)
	}
	if u.link == nil {
		u.sent++
		u.bytes += size
		return 0, nil
	}
	if u.link.Step() == netsim.Down {
		u.failed++
		return 0, fmt.Errorf("adapt: uplink down")
	}
	cost, ok := u.link.Transfer(size, ackBytes)
	if !ok {
		u.failed++
		return cost, fmt.Errorf("adapt: uplink transfer failed after %v", cost)
	}
	u.sent++
	u.bytes += size
	u.lastCost = cost
	return cost, nil
}

// Sent and Failed count report transfer outcomes; Bytes is the total
// upstream payload successfully delivered.
func (u *Uplink) Sent() int64   { return u.sent }
func (u *Uplink) Failed() int64 { return u.failed }
func (u *Uplink) Bytes() int64  { return u.bytes }
