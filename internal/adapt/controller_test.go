package adapt

import (
	"bytes"
	"errors"
	"testing"

	"anole/internal/core"
	"anole/internal/repo"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

func TestControllerClustersAndRetrains(t *testing.T) {
	fx := testutil.Shared(t)
	pub := newCapturePublisher()
	reg := telemetry.NewRegistry()
	cfg := testControllerConfig(fx, 31)
	cfg.Metrics = reg
	ctrl, err := NewController(fx.Bundle, pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := driftReports(fx, novelScene(t, fx.Bundle), 3, 24, 31)

	// Report 1: same cluster but below MinReports — no retrain yet.
	gen, published, err := ctrl.Submit(reports[0])
	if err != nil || published || gen != 0 {
		t.Fatalf("first report: gen %d published %v err %v", gen, published, err)
	}
	// Report 2 completes the evidence: retrain and publish.
	gen, published, err = ctrl.Submit(reports[1])
	if err != nil {
		t.Fatal(err)
	}
	if !published || gen != 2 {
		t.Fatalf("second report: gen %d published %v", gen, published)
	}
	nb := pub.bundles[2]
	if nb == nil {
		t.Fatal("no bundle published")
	}
	if nb.NumModels() != fx.Bundle.NumModels()+1 {
		t.Fatalf("expanded to %d models from %d", nb.NumModels(), fx.Bundle.NumModels())
	}
	// Report 3 lands in the now-retrained cluster: absorbed silently.
	gen, published, err = ctrl.Submit(reports[2])
	if err != nil || published || gen != 0 {
		t.Fatalf("post-retrain report: gen %d published %v err %v", gen, published, err)
	}
	if ctrl.Received() != 3 || ctrl.Retrains() != 1 {
		t.Fatalf("received %d retrains %d", ctrl.Received(), ctrl.Retrains())
	}
	if err := telemetry.ValidateScheme(reg.Gather()); err != nil {
		t.Fatalf("metric scheme: %v", err)
	}
}

// The controller must be deterministic: the same reports in the same
// order produce a bit-identical published bundle.
func TestControllerDeterministic(t *testing.T) {
	fx := testutil.Shared(t)
	scene := novelScene(t, fx.Bundle)
	serialize := func() []byte {
		pub := newCapturePublisher()
		ctrl, err := NewController(fx.Bundle, pub, testControllerConfig(fx, 77))
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range driftReports(fx, scene, 2, 24, 77) {
			if _, _, err := ctrl.Submit(rep); err != nil {
				t.Fatal(err)
			}
		}
		nb := pub.bundles[2]
		if nb == nil {
			t.Fatal("no bundle published")
		}
		var buf bytes.Buffer
		if err := repo.WriteBundle(&buf, nb); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(serialize(), serialize()) {
		t.Fatal("same seed and reports produced different bundles")
	}
}

func TestControllerRejectsMalformedReports(t *testing.T) {
	fx := testutil.Shared(t)
	ctrl, err := NewController(fx.Bundle, newCapturePublisher(), testControllerConfig(fx, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl.Submit(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, _, err := ctrl.Submit(&Report{Centroid: make([]float64, 3)}); err == nil {
		t.Fatal("wrong-dimension centroid accepted")
	}
}

func TestControllerRetrainHookAndRollback(t *testing.T) {
	fx := testutil.Shared(t)
	scene := novelScene(t, fx.Bundle)

	// A failing hook abandons the retrain; the cluster stays eligible, so
	// the very next report retries (and succeeds once the hook relents).
	pub := newCapturePublisher()
	cfg := testControllerConfig(fx, 13)
	hookErr := errors.New("distillation failed")
	calls := 0
	cfg.RetrainHook = func(b *core.Bundle) (*core.Bundle, error) {
		calls++
		if calls == 1 {
			return nil, hookErr
		}
		return b, nil
	}
	ctrl, err := NewController(fx.Bundle, pub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := driftReports(fx, scene, 3, 24, 13)
	if _, _, err := ctrl.Submit(reports[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl.Submit(reports[1]); !errors.Is(err, hookErr) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	gen, published, err := ctrl.Submit(reports[2])
	if err != nil || !published || gen != 2 {
		t.Fatalf("retry after hook failure: gen %d published %v err %v", gen, published, err)
	}

	// NoteRollback reopens the cluster: it needs fresh evidence (weight
	// and frames reset) before it may retrain again.
	if err := ctrl.NoteRollback(2, 1); err != nil {
		t.Fatal(err)
	}
	gen, published, err = ctrl.Submit(reports[0])
	if err != nil || published || gen != 0 {
		t.Fatalf("reopened cluster retrained off one report: gen %d published %v err %v", gen, published, err)
	}
	gen, published, err = ctrl.Submit(reports[1])
	if err != nil || !published || gen != 3 {
		t.Fatalf("reopened cluster with fresh evidence: gen %d published %v err %v", gen, published, err)
	}
}

// A repo.Server publisher closes the cloud half end to end, including
// the rollback path through the rollbacker interface.
func TestControllerAgainstRepoServer(t *testing.T) {
	fx := testutil.Shared(t)
	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(fx.Bundle, srv, testControllerConfig(fx, 21))
	if err != nil {
		t.Fatal(err)
	}
	seedBlob := append([]byte(nil), srv.BundleBytes()...)
	for _, rep := range driftReports(fx, novelScene(t, fx.Bundle), 2, 24, 21) {
		if _, _, err := ctrl.Submit(rep); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Generation() != 2 {
		t.Fatalf("server at generation %d after retrain", srv.Generation())
	}
	if err := ctrl.NoteRollback(2, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Generation() != 1 {
		t.Fatalf("server at generation %d after rollback", srv.Generation())
	}
	if !bytes.Equal(srv.BundleBytes(), seedBlob) {
		t.Fatal("rollback did not restore the seed bundle bit-for-bit")
	}
}
