package adapt

// Chaos suite for the adaptation loop: the device→cloud→device path is
// attacked at each hop — reports lost to a flapping uplink, candidate
// payloads arriving with corrupt digests, and a distribution outage mid-
// canary — and the rollout contract must hold: nothing unverified is
// ever promoted, a rejected or rolled-back generation leaves the fleet
// and the repository exactly where they were (bit-for-bit), and the loop
// recovers once the chaos clears.
//
// CI runs these under -race across a fixed seed matrix via
// ANOLE_CHAOS_SEED; the assertions are seed-independent (the traffic
// changes, the contract does not). The fault schedules themselves are
// scripted, not sampled, so every scenario replays identically.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"anole/internal/breaker"
	"anole/internal/core"
	"anole/internal/netsim"
	"anole/internal/prefetch"
	"anole/internal/repo"
	"anole/internal/telemetry"
	"anole/internal/testutil"
)

// adaptChaosSeed is the traffic seed, overridable so CI can matrix over
// several schedules (same variable as the root chaos suite).
func adaptChaosSeed() uint64 {
	if v := os.Getenv("ANOLE_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return 7
}

// TestAdaptChaosLossyUplinkDelivers scripts the control-plane link down
// for the first three control points: every early report transfer fails,
// the reports stay queued in emission order, and once the link recovers
// they all arrive — the retrain happens late, but it happens, and the
// canary still promotes.
func TestAdaptChaosLossyUplinkDelivers(t *testing.T) {
	fx := testutil.Shared(t)
	seed := adaptChaosSeed()

	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(fx.Bundle, srv, testControllerConfig(fx, seed))
	if err != nil {
		t.Fatal(err)
	}
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, CacheSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mrt.Close()
	// Down for the first three Step calls (= the first three report
	// attempts), then clean forever.
	up := NewUplink(&scriptMedium{states: []netsim.LinkState{netsim.Down, netsim.Down, netsim.Down}})
	loop, err := NewLoop(mrt, LoopConfig{
		Drift:     DriftConfig{Window: 30, MinExemplars: 16, MaxExemplars: 48, Cooldown: 1},
		Rollout:   RolloutConfig{CanaryFrames: 60, MinF1Ratio: 0.25},
		Submitter: ctrl,
		Source:    NewServerSource(srv),
		Uplink:    up,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Run(driftStreams(t, fx, 240, seed), nil); err != nil {
		t.Fatal(err)
	}
	st := loop.Stats()
	if st.ReportFailures != 3 || up.Failed() != 3 {
		t.Fatalf("scripted outage should cost exactly 3 transfers: %+v (uplink failed %d)", st, up.Failed())
	}
	if st.ReportsSent < 2 || up.Sent() != st.ReportsSent || up.Bytes() != st.ReportBytes || st.ReportBytes <= 0 {
		t.Fatalf("queued reports not delivered after recovery: %+v (uplink sent %d, bytes %d)",
			st, up.Sent(), up.Bytes())
	}
	if st.Promotions != 1 || st.Rollbacks != 0 || st.RejectedCandidates != 0 || st.FleetGeneration != 2 {
		t.Fatalf("loop did not recover to a promotion: %+v", st)
	}
	if srv.Generation() != 2 {
		t.Fatalf("repository at generation %d", srv.Generation())
	}
}

// TestAdaptChaosCorruptDigestNeverPromotes serves candidate payloads
// whose claimed digest does not match the bytes. Verification must
// reject every lying candidate before any stream serves it, and the
// rejection must roll the repository back to the incumbent bit-for-bit.
// Once the source turns honest, the loop recovers to a real promotion.
func TestAdaptChaosCorruptDigestNeverPromotes(t *testing.T) {
	fx := testutil.Shared(t)
	seed := adaptChaosSeed()

	run := func(t *testing.T, lies int, frames int) (*loopHarness, []byte, LoopStats) {
		t.Helper()
		h := newLoopHarness(t, fx, seed, 0.5, nil)
		t.Cleanup(func() { h.mrt.Close() })
		seedBlob := append([]byte(nil), h.srv.BundleBytes()...)
		// Rebuild the loop with the lying source in front of the server.
		loop, err := NewLoop(h.mrt, LoopConfig{
			Drift:     DriftConfig{Window: 30, MinExemplars: 16, MaxExemplars: 48, Cooldown: 1},
			Rollout:   RolloutConfig{CanaryFrames: 60, MinF1Ratio: 0.25},
			Submitter: h.ctrl,
			Source:    &flakySource{inner: NewServerSource(h.srv), lies: lies},
			Metrics:   h.reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.loop = loop
		if _, err := loop.Run(driftStreams(t, fx, frames, seed), nil); err != nil {
			t.Fatal(err)
		}
		return h, seedBlob, loop.Stats()
	}

	t.Run("persistent_corruption", func(t *testing.T) {
		h, seedBlob, st := run(t, 1<<30, 240)
		if st.RejectedCandidates < 2 {
			t.Fatalf("persistent corruption barely bit: %+v", st)
		}
		if st.CanaryStarts != 0 || st.Promotions != 0 || st.GenerationsApplied != 0 {
			t.Fatalf("an unverified candidate reached a stream: %+v", st)
		}
		if st.FleetGeneration != 1 || h.loop.FleetBundle() != fx.Bundle {
			t.Fatalf("fleet left the incumbent generation: %+v", st)
		}
		for i := 0; i < h.mrt.NumStreams(); i++ {
			if h.mrt.StreamBundle(i) != fx.Bundle {
				t.Fatalf("stream %d serving an unverified bundle", i)
			}
		}
		if h.srv.Generation() != 1 {
			t.Fatalf("repository at generation %d after rejections", h.srv.Generation())
		}
		if !bytes.Equal(h.srv.BundleBytes(), seedBlob) {
			t.Fatal("rejection rollback did not restore the incumbent bit-for-bit")
		}
		if err := telemetry.ValidateScheme(h.reg.Gather()); err != nil {
			t.Fatalf("metric scheme: %v", err)
		}
	})

	t.Run("transient_corruption_recovers", func(t *testing.T) {
		h, _, st := run(t, 1, 240)
		if st.RejectedCandidates != 1 {
			t.Fatalf("single lie should cost one rejection: %+v", st)
		}
		if st.Promotions != 1 || st.FleetGeneration <= 2 {
			t.Fatalf("loop did not recover past the corrupt candidate: %+v", st)
		}
		if h.srv.Generation() != st.FleetGeneration {
			t.Fatalf("repository at %d, fleet at %d", h.srv.Generation(), st.FleetGeneration)
		}
	})
}

// outageFetcher serves model bytes instantly until beginOutage, then
// fails every fetch: the model-distribution path dies wholesale.
type outageFetcher struct {
	mu     sync.Mutex
	down   bool
	denied int64
}

func (f *outageFetcher) beginOutage() {
	f.mu.Lock()
	f.down = true
	f.mu.Unlock()
}

func (f *outageFetcher) fetch(name string) (int64, time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down {
		return 64 << 10, 0, nil
	}
	f.denied++
	return 0, 0, fmt.Errorf("distribution outage: %s unreachable", name)
}

func (f *outageFetcher) FetchModel(ctx context.Context, name string) (int64, time.Duration, error) {
	return f.fetch(name)
}

func (f *outageFetcher) FetchModelNow(ctx context.Context, name string) (int64, time.Duration, error) {
	return f.fetch(name)
}

// TestAdaptChaosOutageMidCanaryRollsBack kills the model-distribution
// transport at the exact moment the candidate deploys to the canary
// stream (the RegisterModels hook fires between verification and the
// bundle swap): demand fetches start failing fleet-wide, the circuit
// breaker opens during the canary window, and the rollout must roll
// back on the breaker guard — leaving fleet and repository exactly on
// the incumbent.
func TestAdaptChaosOutageMidCanaryRollsBack(t *testing.T) {
	fx := testutil.Shared(t)
	seed := adaptChaosSeed()

	srv, err := repo.NewServer(fx.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(fx.Bundle, srv, testControllerConfig(fx, seed))
	if err != nil {
		t.Fatal(err)
	}
	of := &outageFetcher{}
	mrt, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams: 2,
		// Two slots for a six-model repertoire: scene switches miss the
		// cache constantly, so the outage is felt within a few frames.
		CacheSlots: 2,
		Prefetch: &prefetch.Config{
			Fetcher: of,
			TopK:    -1, // demand path only: the outage hits the critical fetch
			Breaker: breaker.New(breaker.Config{FailureThreshold: 1, Cooldown: time.Hour}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mrt.Close()
	seedBlob := append([]byte(nil), srv.BundleBytes()...)
	loop, err := NewLoop(mrt, LoopConfig{
		Drift:     DriftConfig{Window: 30, MinExemplars: 16, MaxExemplars: 48, Cooldown: 1},
		Rollout:   RolloutConfig{CanaryFrames: 60, MinF1Ratio: 0.25},
		Submitter: ctrl,
		Source:    NewServerSource(srv),
		RegisterModels: func([]prefetch.Model) error {
			of.beginOutage() // the link dies as the canary deployment begins
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Run(driftStreams(t, fx, 150, seed), nil); err != nil {
		t.Fatal(err)
	}
	st := loop.Stats()
	if of.denied == 0 || mrt.Prefetcher().Stats().BreakerOpens == 0 {
		t.Fatalf("outage never bit: %d denied fetches, %d breaker opens",
			of.denied, mrt.Prefetcher().Stats().BreakerOpens)
	}
	if st.CanaryStarts != 1 || st.Rollbacks != 1 || st.Promotions != 0 {
		t.Fatalf("mid-canary outage not rolled back: %+v", st)
	}
	if reason := loop.Rollout().LastVerdict().Reason; !strings.Contains(reason, "breaker") {
		t.Fatalf("rollback reason %q, want the breaker guard", reason)
	}
	if st.FleetGeneration != 1 || loop.FleetBundle() != fx.Bundle {
		t.Fatalf("fleet left the incumbent: %+v", st)
	}
	for i := 0; i < mrt.NumStreams(); i++ {
		if mrt.StreamBundle(i) != fx.Bundle {
			t.Fatalf("stream %d not restored to the incumbent", i)
		}
	}
	if srv.Generation() != 1 {
		t.Fatalf("repository at generation %d after rollback", srv.Generation())
	}
	if !bytes.Equal(srv.BundleBytes(), seedBlob) {
		t.Fatal("rollback did not restore the incumbent bit-for-bit")
	}
}
