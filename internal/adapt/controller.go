package adapt

import (
	"fmt"
	"math"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/sampling"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/tensor"
)

// Publisher is the repository surface the controller publishes expanded
// bundles through; repo.Server satisfies it. Publish returns the new
// generation number.
type Publisher interface {
	Publish(b *core.Bundle, note string) (uint64, error)
}

// ControllerConfig parameterizes the cloud-side adaptation controller.
type ControllerConfig struct {
	// Seed roots retraining randomness; each retrain derives its own
	// stream from Seed and the cluster ordinal, so a controller replayed
	// over the same reports produces bit-identical bundles.
	Seed uint64
	// TrainFrames is the original training corpus, needed to rebuild the
	// decision head's balanced pools alongside the new scene's frames.
	TrainFrames []*synth.Frame
	// Train, Sampling, Decision configure core.ExpandRepertoire.
	Train    detect.TrainConfig
	Sampling sampling.Config
	Decision decision.Config
	// MinReports is how many clustered reports a signature needs before
	// it justifies a retrain (default 2 — one report can be a transient).
	MinReports int
	// MinFrames is the fewest pooled exemplar frames to train on
	// (default 30, matching ExpandRepertoire's floor).
	MinFrames int
	// ClusterRadius is the embedding-space distance within which two
	// report centroids describe the same emerging scene, in units of the
	// base bundle's calibrated NoveltyScale (default 1.0 — roughly one
	// in-scene 95th-percentile radius).
	ClusterRadius float64
	// RetrainHook, when non-nil, post-processes each retrained bundle
	// before publication. Tests use it to inject regressions; a real
	// deployment would hang distillation or quantization here. Returning
	// an error abandons the retrain (the cluster stays eligible).
	RetrainHook func(*core.Bundle) (*core.Bundle, error)
	// Metrics, when non-nil, receives anole_adapt_retrain* counters.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one StageAdapt span per cloud-side
	// causal milestone — cluster, retrain, publish, rollback — tagged
	// with the triggering drift report's trace ID, so /debug/spans on
	// the cloud stitches into the device's frame and report spans.
	Tracer *telemetry.Tracer
}

func (c *ControllerConfig) fill() {
	if c.MinReports <= 0 {
		c.MinReports = 2
	}
	if c.MinFrames <= 0 {
		c.MinFrames = 30
	}
	if c.ClusterRadius <= 0 {
		c.ClusterRadius = 1.0
	}
}

// cluster pools the evidence for one emerging-scene signature.
type cluster struct {
	centroid  tensor.Vector
	weight    int // reports merged into the centroid
	frames    []*synth.Frame
	retrained bool
	gen       uint64 // generation the retrain published as
	trace     string // trace of the report that triggered the retrain
}

// Controller is the cloud half of the adaptation loop: it clusters
// incoming drift reports by their embedding centroids (leader
// clustering — deterministic in arrival order), and once a cluster has
// MinReports reports and MinFrames frames, expands the base repertoire
// with a specialist for that signature and publishes the result as the
// next generation.
//
// A Controller is not safe for concurrent use; the HTTP wrapper in
// anole-server serializes Submit calls.
type Controller struct {
	cfg  ControllerConfig
	base *core.Bundle
	pub  Publisher

	clusters []*cluster

	received int64
	retrains int64
	failures int64

	mRetrains *telemetry.Counter
	mFailures *telemetry.Counter
}

// NewController builds a controller expanding base through pub.
func NewController(base *core.Bundle, pub Publisher, cfg ControllerConfig) (*Controller, error) {
	if base == nil {
		return nil, fmt.Errorf("adapt: nil base bundle")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if pub == nil {
		return nil, fmt.Errorf("adapt: nil publisher")
	}
	if len(cfg.TrainFrames) == 0 {
		return nil, fmt.Errorf("adapt: controller needs training frames for pool rebuild")
	}
	cfg.fill()
	c := &Controller{cfg: cfg, base: base, pub: pub}
	if cfg.Metrics != nil {
		c.mRetrains = cfg.Metrics.Counter("anole_adapt_retrains_total",
			"Repertoire expansions published by the adaptation controller.")
		c.mFailures = cfg.Metrics.Counter("anole_adapt_retrain_failures_total",
			"Retrain attempts abandoned by error.")
	}
	return c, nil
}

// Received reports how many drift reports the controller has absorbed;
// Retrains how many expansions it has published.
func (c *Controller) Received() int64 { return c.received }
func (c *Controller) Retrains() int64 { return c.retrains }

// Submit absorbs one drift report. When the report completes a cluster's
// evidence, the controller retrains and publishes a new generation,
// returning (generation, true). Otherwise it returns (0, false); a nil
// error either way means the report was accepted.
func (c *Controller) Submit(rep *Report) (uint64, bool, error) {
	if rep == nil {
		return 0, false, fmt.Errorf("adapt: nil report")
	}
	if len(rep.Centroid) != c.base.Encoder.EmbedDim() {
		return 0, false, fmt.Errorf("adapt: report centroid dim %d, encoder %d",
			len(rep.Centroid), c.base.Encoder.EmbedDim())
	}
	c.received++
	cl := c.assign(rep.Centroid)
	cl.frames = append(cl.frames, rep.Exemplars...)
	c.span(rep.Stream, "cluster", rep.Trace)
	if cl.retrained || cl.weight < c.cfg.MinReports || len(cl.frames) < c.cfg.MinFrames {
		return 0, false, nil
	}
	gen, err := c.retrain(cl, rep.Stream, rep.Trace)
	if err != nil {
		c.failures++
		if c.mFailures != nil {
			c.mFailures.Inc()
		}
		return 0, false, err
	}
	return gen, true, nil
}

// assign merges the centroid into the nearest cluster within
// ClusterRadius, or opens a new one. The matched cluster's centroid
// shifts toward the report (running mean over merged reports).
func (c *Controller) assign(centroid tensor.Vector) *cluster {
	var best *cluster
	bestDist := math.Inf(1)
	for _, cl := range c.clusters {
		d := math.Sqrt(cl.centroid.SquaredDistance(centroid))
		if d < bestDist {
			best, bestDist = cl, d
		}
	}
	if best != nil && bestDist <= c.cfg.ClusterRadius*c.base.NoveltyScale {
		best.weight++
		// new_mean = old + (x - old)/n
		alpha := 1 / float64(best.weight)
		for i := range best.centroid {
			best.centroid[i] += alpha * (centroid[i] - best.centroid[i])
		}
		return best
	}
	cl := &cluster{centroid: centroid.Clone(), weight: 1}
	c.clusters = append(c.clusters, cl)
	return cl
}

// tracedPublisher is the optional Publisher surface for threading the
// drift journey's trace ID into the published generation's lineage;
// repo.Server satisfies it.
type tracedPublisher interface {
	PublishTraced(b *core.Bundle, note, trace string) (uint64, error)
}

// span records one cloud-side control-plane event on the tracer.
func (c *Controller) span(stream int, event, trace string) {
	if c.cfg.Tracer == nil {
		return
	}
	c.cfg.Tracer.Record(telemetry.Span{
		Seq:    c.cfg.Tracer.NextSeq(),
		Stream: stream,
		Stage:  StageAdapt,
		Model:  -1,
		Event:  event,
		Trace:  trace,
	})
}

// retrain expands the base repertoire with a specialist for the cluster
// and publishes it, stamping the triggering report's trace on the
// lineage when the publisher supports it. The expansion seed mixes the
// controller seed with the cluster ordinal so successive emerging
// scenes train on independent but reproducible streams.
func (c *Controller) retrain(cl *cluster, stream int, trace string) (uint64, error) {
	ordinal := uint64(0)
	for i, other := range c.clusters {
		if other == cl {
			ordinal = uint64(i)
			break
		}
	}
	nb, err := core.ExpandRepertoire(c.base, cl.frames, c.cfg.TrainFrames, core.ExpandConfig{
		Seed:      c.cfg.Seed ^ (0x9e3779b97f4a7c15 * (ordinal + 1)),
		Train:     c.cfg.Train,
		Sampling:  c.cfg.Sampling,
		Decision:  c.cfg.Decision,
		MinFrames: c.cfg.MinFrames,
	})
	if err != nil {
		return 0, fmt.Errorf("adapt: expand repertoire: %w", err)
	}
	if c.cfg.RetrainHook != nil {
		if nb, err = c.cfg.RetrainHook(nb); err != nil {
			return 0, fmt.Errorf("adapt: retrain hook: %w", err)
		}
	}
	c.span(stream, "retrain", trace)
	note := fmt.Sprintf("adapt: specialist for drift cluster %d (%d reports, %d frames)",
		ordinal, cl.weight, len(cl.frames))
	var gen uint64
	if tp, ok := c.pub.(tracedPublisher); ok {
		gen, err = tp.PublishTraced(nb, note, trace)
	} else {
		gen, err = c.pub.Publish(nb, note)
	}
	if err != nil {
		return 0, fmt.Errorf("adapt: publish: %w", err)
	}
	cl.retrained = true
	cl.gen = gen
	cl.trace = trace
	c.retrains++
	if c.mRetrains != nil {
		c.mRetrains.Inc()
	}
	c.span(stream, "publish", trace)
	return gen, nil
}

// ConfirmPromotion tells the controller the fleet now runs the given
// generation's bundle; subsequent expansions build on it.
func (c *Controller) ConfirmPromotion(gen uint64, b *core.Bundle) {
	if b != nil {
		c.base = b
	}
	_ = gen
}

// rollbacker is the optional repository surface for reverting a bad
// generation; repo.Server satisfies it.
type rollbacker interface {
	Rollback(to uint64, note string) error
	Generation() uint64
}

// tracedRollbacker extends rollbacker with trace-stamped lineage;
// repo.Server satisfies it.
type tracedRollbacker interface {
	RollbackTraced(to uint64, note, trace string) error
}

// NoteRollback tells the controller a canary of failedGen was rolled
// back. The cluster that produced it is reopened so fresh evidence can
// trigger a new (differently seeded) retrain, and if the publisher
// supports rollback and still serves the failed generation, the
// repository is reverted to restoredGen with the failed journey's
// trace on the lineage entry.
func (c *Controller) NoteRollback(failedGen, restoredGen uint64) error {
	var trace string
	for _, cl := range c.clusters {
		if cl.retrained && cl.gen == failedGen {
			trace = cl.trace
			cl.retrained = false
			cl.gen = 0
			cl.trace = ""
			cl.weight = 0 // demand fresh reports before retrying
			cl.frames = cl.frames[:0]
		}
	}
	c.span(-1, "rollback", trace)
	rb, ok := c.pub.(rollbacker)
	if !ok || rb.Generation() != failedGen {
		return nil
	}
	note := fmt.Sprintf("adapt: canary of generation %d failed", failedGen)
	if trb, ok := c.pub.(tracedRollbacker); ok {
		return trb.RollbackTraced(restoredGen, note, trace)
	}
	return rb.Rollback(restoredGen, note)
}
