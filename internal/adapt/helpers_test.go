package adapt

import (
	"fmt"
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/decision"
	"anole/internal/detect"
	"anole/internal/netsim"
	"anole/internal/sampling"
	"anole/internal/synth"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

// novelScene returns a semantic scene absent from the bundle encoder's
// training label space (preferring night — the hardest shift).
func novelScene(tb testing.TB, b *core.Bundle) synth.Scene {
	tb.Helper()
	known := make(map[int]bool)
	for _, idx := range b.Encoder.ClassToScene {
		known[idx] = true
	}
	fallback := -1
	for idx := 0; idx < synth.NumScenes; idx++ {
		if known[idx] {
			continue
		}
		s := synth.SceneFromIndex(idx)
		if s.Time == synth.Night {
			return s
		}
		if fallback < 0 {
			fallback = idx
		}
	}
	if fallback < 0 {
		tb.Fatal("every semantic scene was seen in training")
	}
	return synth.SceneFromIndex(fallback)
}

// knownScene returns a scene the encoder trained on.
func knownScene(b *core.Bundle) synth.Scene {
	return synth.SceneFromIndex(b.Encoder.ClassToScene[0])
}

// sceneFrames generates n frames of one scene from the fixture world.
func sceneFrames(fx testutil.Fixture, s synth.Scene, n int, rng *xrand.RNG) []*synth.Frame {
	frames := make([]*synth.Frame, n)
	for i := range frames {
		frames[i] = fx.World.GenerateFrame(s, 1, rng)
	}
	return frames
}

// testControllerConfig returns a cheap, deterministic retrain setup over
// the fixture corpus.
func testControllerConfig(fx testutil.Fixture, seed uint64) ControllerConfig {
	return ControllerConfig{
		Seed:        seed,
		TrainFrames: fx.Corpus.Frames(synth.Train),
		Train:       detect.TrainConfig{Epochs: 8},
		Sampling:    sampling.Config{Kappa: 300, AcceptF1: 0.3},
		Decision:    decision.Config{Epochs: 25},
		MinReports:  2,
		MinFrames:   30,
	}
}

// driftReports synthesizes n well-formed reports for one scene, the way
// a detector on a drifting stream would emit them.
func driftReports(fx testutil.Fixture, s synth.Scene, n, exemplars int, seed uint64) []*Report {
	rng := xrand.NewLabeled(seed, "adapt-test-reports")
	reports := make([]*Report, n)
	for i := range reports {
		frames := sceneFrames(fx, s, exemplars, rng)
		centroid := fx.Bundle.Encoder.Embed(frames[0]).Clone()
		for _, f := range frames[1:] {
			centroid.AddScaled(1, fx.Bundle.Encoder.Embed(f))
		}
		centroid.Scale(1 / float64(len(frames)))
		reports[i] = &Report{
			Stream:      0,
			Seq:         int64((i + 1) * 30),
			Generation:  1,
			Window:      30,
			MeanNovelty: 2.0,
			Signals:     1,
			Centroid:    centroid,
			Exemplars:   frames,
		}
	}
	return reports
}

// capturePublisher records published bundles and mints generations the
// way repo.Server does (monotone from 1).
type capturePublisher struct {
	gens    uint64
	bundles map[uint64]*core.Bundle
	notes   []string
	err     error
}

func newCapturePublisher() *capturePublisher {
	return &capturePublisher{gens: 1, bundles: map[uint64]*core.Bundle{}}
}

func (p *capturePublisher) Publish(b *core.Bundle, note string) (uint64, error) {
	if p.err != nil {
		return 0, p.err
	}
	p.gens++
	p.bundles[p.gens] = b
	p.notes = append(p.notes, note)
	return p.gens, nil
}

// newTestLink builds a seeded simulated link of the given stability.
func newTestLink(tb testing.TB, stability float64, seed uint64) *netsim.Link {
	tb.Helper()
	link, err := netsim.NewLink(netsim.DefaultConfig(stability), xrand.NewLabeled(seed, "adapt-test-link"))
	if err != nil {
		tb.Fatal(err)
	}
	return link
}

// scriptMedium is a deterministic netsim.Medium whose per-step states
// are scripted; transfers succeed except in Down steps. After the
// script runs out it stays Good.
type scriptMedium struct {
	states []netsim.LinkState
	step   int
}

func (m *scriptMedium) State() netsim.LinkState {
	if m.step < len(m.states) {
		return m.states[m.step]
	}
	return netsim.Good
}

func (m *scriptMedium) Step() netsim.LinkState {
	st := m.State()
	m.step++
	return st
}

func (m *scriptMedium) Transfer(up, down int64) (time.Duration, bool) {
	// One millisecond per KiB, failing while down.
	if m.step > 0 && m.step <= len(m.states) && m.states[m.step-1] == netsim.Down {
		return 0, false
	}
	return time.Duration(up+down) * time.Millisecond / 1024, true
}

var _ netsim.Medium = (*scriptMedium)(nil)

// flakySource wraps a BundleSource, corrupting the claimed digest for
// the first `lies` fetches.
type flakySource struct {
	inner BundleSource
	lies  int
	calls int
}

func (s *flakySource) FetchGeneration(gen uint64) ([]byte, string, error) {
	payload, digest, err := s.inner.FetchGeneration(gen)
	s.calls++
	if err == nil && s.calls <= s.lies {
		digest = fmt.Sprintf("%064d", s.calls) // plausible hex, wrong value
	}
	return payload, digest, err
}
