// Package adapt closes the continual-adaptation loop the paper leaves
// open (§II-B case 3): a frozen repertoire cannot serve a scene it has
// never seen. The loop is device → cloud → device:
//
//   - DriftDetector watches the frame pipeline's decision signals
//     (score entropy, novelty, detector disagreement on sampled frames)
//     in fixed windows and emits compact drift Reports with exemplar
//     frames when a window trips;
//   - Uplink charges each report's bytes to a simulated control-plane
//     link (reports are lost, not corrupted, when the link is down);
//   - Controller clusters reports into an emerging-scene signature and,
//     once a cluster has enough evidence, retrains a new compressed
//     specialist (core.ExpandRepertoire — seeded, deterministic) and
//     publishes the expanded bundle as the next repository generation;
//   - Rollout canaries the new generation on one stream, compares its
//     telemetry against the incumbent fleet, and promotes fleet-wide or
//     rolls back; Loop orchestrates all of it deterministically between
//     processing chunks.
//
// Everything is observable under the anole_adapt_* telemetry scheme.
package adapt

import (
	"fmt"
	"time"

	"anole/internal/core"
	"anole/internal/detect"
	"anole/internal/pressure"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/tensor"
)

// DriftConfig parameterizes a DriftDetector.
type DriftConfig struct {
	// Window is the evaluation window in frames (default 30): signals
	// are averaged over each window and thresholds apply to the means.
	Window int
	// EntropyThreshold is the mean normalized decision-score entropy
	// above which a window counts as uncertain (default 0.97). The
	// decision head's scores are high-entropy even in distribution
	// (≈0.95 on calibrated traffic), but only saturate toward 1.0 well
	// off the training manifold, so the threshold sits just above the
	// healthy band.
	EntropyThreshold float64
	// NoveltyThreshold is the mean novelty above which a window counts
	// as off-distribution (default 1.5; 1.0 is the calibrated in-scene
	// 95th percentile).
	NoveltyThreshold float64
	// DisagreementThreshold is the sampled detector-disagreement rate
	// above which a window counts as contested (default 0.75; healthy
	// specialists overlap imperfectly, so moderate disagreement is
	// normal — only near-disjoint detections indicate drift).
	DisagreementThreshold float64
	// SampleEvery probes detector disagreement on every k-th frame
	// (default 4): the serving model and the decision head's runner-up
	// both detect the frame, and the disagreement is one minus the
	// Jaccard overlap of their positive cells. Sampling bounds the probe
	// cost; ≤0 disables the probe (its signal never trips).
	SampleEvery int
	// MinSignals is how many of the three signals (entropy, novelty,
	// disagreement) must trip for a window to emit a report (default 2:
	// any single signal can misfire on unlucky traffic, so a report
	// needs corroboration).
	MinSignals int
	// MinExemplars is the fewest flagged frames a report must carry to
	// be worth sending (default 16) — a report below it is held until a
	// later window accumulates more evidence.
	MinExemplars int
	// MaxExemplars caps the frames carried per report (default 48); the
	// uplink pays per byte, and the controller pools evidence across
	// reports anyway.
	MaxExemplars int
	// Cooldown is how many frames after an emitted report further
	// emission is suppressed (default 2×Window): one drifting scene
	// should produce a trickle of reports, not one per window.
	Cooldown int
	// Clock, when non-nil, timestamps reports (injectable for tests and
	// for alignment with a simulated link clock). Nil falls back to the
	// detector's own frame counter at FrameInterval per frame.
	Clock func() time.Duration
	// FrameInterval is the per-frame duration of the fallback clock
	// (default prefetch.DefaultFrameInterval's 100ms).
	FrameInterval time.Duration
}

func (c *DriftConfig) fill() {
	if c.Window <= 0 {
		c.Window = 30
	}
	if c.EntropyThreshold <= 0 {
		c.EntropyThreshold = 0.97
	}
	if c.NoveltyThreshold <= 0 {
		c.NoveltyThreshold = 1.5
	}
	if c.DisagreementThreshold <= 0 {
		c.DisagreementThreshold = 0.75
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 4
	}
	if c.MinSignals <= 0 {
		c.MinSignals = 2
	}
	if c.MinExemplars <= 0 {
		c.MinExemplars = 16
	}
	if c.MaxExemplars <= 0 {
		c.MaxExemplars = 48
	}
	if c.MaxExemplars < c.MinExemplars {
		c.MaxExemplars = c.MinExemplars
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Window
	}
	if c.FrameInterval <= 0 {
		c.FrameInterval = 100 * time.Millisecond
	}
}

// Report is one compact drift observation shipped to the controller: the
// window statistics that tripped, a centroid signature of where the
// drifting frames sit in embedding space, and a bounded set of exemplar
// frames for cloud-side retraining.
type Report struct {
	// Stream is the emitting stream; Seq is how many frames that
	// stream's detector had seen at emission; At is the emission time on
	// the configured clock.
	Stream int
	Seq    int64
	At     time.Duration
	// Generation is the bundle generation the device was serving when
	// the window tripped.
	Generation uint64
	// Window statistics: the means that were compared against the
	// thresholds, and how many signals tripped.
	Window       int
	MeanEntropy  float64
	MeanNovelty  float64
	Disagreement float64
	Signals      int
	// Centroid is the mean scene embedding of the exemplars — the
	// emerging-scene signature the controller clusters on.
	Centroid tensor.Vector
	// Exemplars are the flagged frames (≤ MaxExemplars).
	Exemplars []*synth.Frame
	// Trace is the report's causal trace ID (telemetry.DriftTrace),
	// minted at emission and carried through the uplink, the cloud
	// controller, the published generation's lineage, and the canary
	// rollout — one ID reconstructs the whole device→cloud→device
	// adaptation journey.
	Trace string
}

// SizeBytes approximates the report's wire size for link accounting:
// a fixed header plus each exemplar's frame-pack encoding (objects and
// cell features dominate).
func (r *Report) SizeBytes() int64 {
	size := int64(96 + 8*len(r.Centroid))
	for _, f := range r.Exemplars {
		size += int64(24 + 11*len(f.Objects) + 8*len(f.Cells))
	}
	return size
}

// DriftDetector watches one stream's frame results for distribution
// drift. It is not safe for concurrent use, but distinct streams'
// detectors are independent, matching MultiRuntime's per-stream
// observer serialization. Feed it from a StreamObserver and handle the
// occasional non-nil Report.
type DriftDetector struct {
	cfg    DriftConfig
	bundle *core.Bundle
	stream int
	gen    uint64

	// Window accumulators.
	count       int
	sumEntropy  float64
	sumNovelty  float64
	probes      int
	disagreed   float64
	exemplars   []*synth.Frame
	centroidSum tensor.Vector

	cooldown int
	seen     int64
	flagged  int64
	emitted  int64

	// Reused probe buffers for the two detector passes.
	predsA, predsB []detect.CellPred
}

// NewDriftDetector builds a detector for one stream over the deployed
// bundle (used for embeddings and disagreement probes; swap it with
// SetBundle when a rollout changes the deployment).
func NewDriftDetector(stream int, b *core.Bundle, cfg DriftConfig) (*DriftDetector, error) {
	if b == nil {
		return nil, fmt.Errorf("adapt: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	return &DriftDetector{
		cfg:         cfg,
		bundle:      b,
		stream:      stream,
		gen:         1,
		centroidSum: tensor.NewVector(b.Encoder.EmbedDim()),
	}, nil
}

// SetBundle points the detector at a newly deployed bundle and resets
// the open window — signals measured half on one repertoire and half on
// another mean nothing.
func (d *DriftDetector) SetBundle(b *core.Bundle, generation uint64) {
	d.bundle = b
	d.gen = generation
	d.resetWindow()
	d.exemplars = nil
	d.centroidSum = tensor.NewVector(b.Encoder.EmbedDim())
}

// Seen returns the number of frames observed; Emitted the number of
// reports produced.
func (d *DriftDetector) Seen() int64    { return d.seen }
func (d *DriftDetector) Emitted() int64 { return d.emitted }

// FlagRate returns the lifetime fraction of observed frames flagged as
// exemplars.
func (d *DriftDetector) FlagRate() float64 {
	if d.seen == 0 {
		return 0
	}
	return float64(d.flagged) / float64(d.seen)
}

// Observe feeds one processed frame. When the frame closes a window
// whose mean signals trip the thresholds (and the detector is out of
// cooldown with enough exemplars), it returns the drift report to ship;
// otherwise nil.
func (d *DriftDetector) Observe(f *synth.Frame, res core.FrameResult) *Report {
	d.seen++
	if d.cooldown > 0 {
		d.cooldown--
	}
	d.count++
	d.sumEntropy += res.Entropy
	d.sumNovelty += res.Novelty

	flag := res.Novelty > d.cfg.NoveltyThreshold || res.Entropy > d.cfg.EntropyThreshold
	if flag {
		d.flagged++
		if len(d.exemplars) < d.cfg.MaxExemplars {
			d.exemplars = append(d.exemplars, f)
			d.centroidSum.AddScaled(1, d.bundle.Encoder.Embed(f))
		}
	}
	if d.cfg.SampleEvery > 0 && d.seen%int64(d.cfg.SampleEvery) == 0 && res.Used != res.RunnerUp {
		d.probes++
		d.disagreed += d.probeDisagreement(f, res.Used, res.RunnerUp)
	}

	if d.count < d.cfg.Window {
		return nil
	}
	rep := d.windowVerdict()
	d.resetWindow()
	return rep
}

// windowVerdict closes the current window, returning a report when it
// trips.
func (d *DriftDetector) windowVerdict() *Report {
	meanEntropy := d.sumEntropy / float64(d.count)
	meanNovelty := d.sumNovelty / float64(d.count)
	disagreement := 0.0
	if d.probes > 0 {
		disagreement = d.disagreed / float64(d.probes)
	}
	signals := 0
	if meanEntropy > d.cfg.EntropyThreshold {
		signals++
	}
	if meanNovelty > d.cfg.NoveltyThreshold {
		signals++
	}
	if disagreement > d.cfg.DisagreementThreshold {
		signals++
	}
	if signals < d.cfg.MinSignals || d.cooldown > 0 || len(d.exemplars) < d.cfg.MinExemplars {
		return nil
	}
	centroid := tensor.NewVector(len(d.centroidSum))
	copy(centroid, d.centroidSum)
	centroid.Scale(1 / float64(len(d.exemplars)))
	rep := &Report{
		Stream:       d.stream,
		Seq:          d.seen,
		At:           d.now(),
		Generation:   d.gen,
		Trace:        telemetry.DriftTrace(d.stream, d.gen, int(d.emitted)),
		Window:       d.count,
		MeanEntropy:  meanEntropy,
		MeanNovelty:  meanNovelty,
		Disagreement: disagreement,
		Signals:      signals,
		Centroid:     centroid,
		Exemplars:    append([]*synth.Frame(nil), d.exemplars...),
	}
	d.emitted++
	d.cooldown = d.cfg.Cooldown
	d.exemplars = nil
	d.centroidSum = tensor.NewVector(len(d.centroidSum))
	return rep
}

func (d *DriftDetector) resetWindow() {
	d.count = 0
	d.sumEntropy, d.sumNovelty = 0, 0
	d.probes, d.disagreed = 0, 0
}

// State snapshots the in-progress window and lifetime counters for a
// restart checkpoint. Exemplar frames and the centroid accumulator are
// deliberately excluded: they are raw frame payloads (large, and
// re-collectable within one window), not statistics — the next window
// after a restart simply samples fresh exemplars.
func (d *DriftDetector) State() pressure.DriftWindow {
	return pressure.DriftWindow{
		Stream:     d.stream,
		Count:      d.count,
		SumEntropy: d.sumEntropy,
		SumNovelty: d.sumNovelty,
		Probes:     d.probes,
		Disagreed:  d.disagreed,
		Cooldown:   d.cooldown,
		Seen:       d.seen,
		Flagged:    d.flagged,
		Emitted:    d.emitted,
	}
}

// RestoreState warm-starts the window accumulators and lifetime
// counters from a checkpoint. The exemplar set and centroid stay
// empty (see State); a window that completes with zero exemplars
// emits no report, so the first post-restore report may take one
// extra window — never a corrupt one.
func (d *DriftDetector) RestoreState(w pressure.DriftWindow) {
	if w.Count < 0 || w.Probes < 0 || w.Cooldown < 0 ||
		w.Seen < 0 || w.Flagged < 0 || w.Emitted < 0 {
		return
	}
	d.count = w.Count
	d.sumEntropy = w.SumEntropy
	d.sumNovelty = w.SumNovelty
	d.probes = w.Probes
	d.disagreed = w.Disagreed
	d.cooldown = w.Cooldown
	d.seen = w.Seen
	d.flagged = w.Flagged
	d.emitted = w.Emitted
}

func (d *DriftDetector) now() time.Duration {
	if d.cfg.Clock != nil {
		return d.cfg.Clock()
	}
	return time.Duration(d.seen) * d.cfg.FrameInterval
}

// probeDisagreement runs the serving model and the decision head's
// runner-up on one frame and returns one minus the Jaccard overlap of
// their positive cells: 0 when the two detectors agree everywhere mass
// is, 1 when they find disjoint objects. A frame where neither fires
// scores 0 — an empty scene is not evidence of drift.
func (d *DriftDetector) probeDisagreement(f *synth.Frame, a, b int) float64 {
	n := d.bundle.NumModels()
	if a < 0 || b < 0 || a >= n || b >= n {
		return 0
	}
	d.predsA = d.bundle.Detectors[a].DetectFrame(d.predsA, f)
	d.predsB = d.bundle.Detectors[b].DetectFrame(d.predsB, f)
	const positive = 0.5
	var both, either float64
	for i := range d.predsA {
		pa := d.predsA[i].Objectness >= positive
		pb := d.predsB[i].Objectness >= positive
		switch {
		case pa && pb:
			if d.predsA[i].Class == d.predsB[i].Class {
				both++
			}
			either++
		case pa || pb:
			either++
		}
	}
	if either == 0 {
		return 0
	}
	return 1 - both/either
}
