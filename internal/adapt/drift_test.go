package adapt

import (
	"testing"

	"anole/internal/core"
	"anole/internal/testutil"
	"anole/internal/xrand"
)

func TestDriftDetectorEmitsOnDrift(t *testing.T) {
	fx := testutil.Shared(t)
	cfg := DriftConfig{Window: 20, MinExemplars: 8, MaxExemplars: 16, Cooldown: 1}
	d, err := NewDriftDetector(3, fx.Bundle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewLabeled(5, "drift-test")
	frames := sceneFrames(fx, novelScene(t, fx.Bundle), 40, rng)

	var reports []*Report
	for i, f := range frames {
		res := core.FrameResult{Novelty: 2.2, Entropy: 0.99, Used: 0, RunnerUp: 1}
		if rep := d.Observe(f, res); rep != nil {
			reports = append(reports, rep)
			if rep.Seq != int64(i+1) {
				t.Fatalf("report %d at seq %d, observed %d frames", len(reports), rep.Seq, i+1)
			}
		}
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports over two windows with cooldown 1, want 2", len(reports))
	}
	rep := reports[0]
	if rep.Stream != 3 || rep.Window != 20 || rep.Signals < 2 {
		t.Fatalf("report header %+v", rep)
	}
	if rep.MeanNovelty <= cfg.NoveltyThreshold || rep.MeanEntropy <= cfg.EntropyThreshold {
		t.Fatalf("means below thresholds: %+v", rep)
	}
	if len(rep.Exemplars) == 0 || len(rep.Exemplars) > cfg.MaxExemplars {
		t.Fatalf("%d exemplars (max %d)", len(rep.Exemplars), cfg.MaxExemplars)
	}
	if len(rep.Centroid) != fx.Bundle.Encoder.EmbedDim() {
		t.Fatalf("centroid dim %d, embed dim %d", len(rep.Centroid), fx.Bundle.Encoder.EmbedDim())
	}
	if rep.SizeBytes() <= 0 {
		t.Fatal("non-positive report size")
	}
	if d.FlagRate() != 1 {
		t.Fatalf("every frame was flaggable, flag rate %v", d.FlagRate())
	}
	if d.Emitted() != 2 || d.Seen() != 40 {
		t.Fatalf("emitted %d seen %d", d.Emitted(), d.Seen())
	}
}

func TestDriftDetectorQuietOnHealthyStream(t *testing.T) {
	fx := testutil.Shared(t)
	d, err := NewDriftDetector(0, fx.Bundle, DriftConfig{Window: 10, MinExemplars: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewLabeled(6, "drift-test-quiet")
	frames := sceneFrames(fx, knownScene(fx.Bundle), 50, rng)
	for _, f := range frames {
		res := core.FrameResult{Novelty: 0.4, Entropy: 0.2, Used: 0, RunnerUp: 0}
		if rep := d.Observe(f, res); rep != nil {
			t.Fatalf("healthy stream emitted a report: %+v", rep)
		}
	}
	if d.FlagRate() != 0 {
		t.Fatalf("healthy stream flagged frames: %v", d.FlagRate())
	}
}

func TestDriftDetectorCooldownSuppresses(t *testing.T) {
	fx := testutil.Shared(t)
	// Default cooldown (2×window) suppresses the second window entirely.
	d, err := NewDriftDetector(0, fx.Bundle, DriftConfig{Window: 10, MinExemplars: 4, MaxExemplars: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewLabeled(7, "drift-test-cooldown")
	frames := sceneFrames(fx, novelScene(t, fx.Bundle), 30, rng)
	var seqs []int64
	for _, f := range frames {
		if rep := d.Observe(f, core.FrameResult{Novelty: 3, Entropy: 0.99, RunnerUp: 1}); rep != nil {
			seqs = append(seqs, rep.Seq)
		}
	}
	// Windows close at 10, 20, 30. The first emits and starts a
	// 20-frame cooldown, which silences the window at 20 and expires
	// exactly in time for the window at 30.
	if len(seqs) != 2 || seqs[0] != 10 || seqs[1] != 30 {
		t.Fatalf("cooldown should yield reports at frames 10 and 30, got %v", seqs)
	}
}

func TestDriftDetectorProbeAndSetBundle(t *testing.T) {
	fx := testutil.Shared(t)
	d, err := NewDriftDetector(0, fx.Bundle, DriftConfig{
		Window: 12, SampleEvery: 1, MinExemplars: 4, MinSignals: 3, Cooldown: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewLabeled(8, "drift-test-probe")
	frames := sceneFrames(fx, novelScene(t, fx.Bundle), 12, rng)
	// Probe two distinct specialists on every frame; disagreement lands
	// in [0,1] and the MinSignals=3 gate only passes if it tripped too.
	var got *Report
	for _, f := range frames {
		if rep := d.Observe(f, core.FrameResult{Novelty: 3, Entropy: 0.99, Used: 0, RunnerUp: fx.Bundle.NumModels() - 1}); rep != nil {
			got = rep
		}
	}
	if got != nil {
		if got.Disagreement < 0 || got.Disagreement > 1 {
			t.Fatalf("disagreement %v out of range", got.Disagreement)
		}
		if got.Signals != 3 {
			t.Fatalf("signals %d with MinSignals 3", got.Signals)
		}
	}
	// SetBundle resets the open window and stamps later reports with the
	// new generation.
	d2, err := NewDriftDetector(0, fx.Bundle, DriftConfig{Window: 6, MinExemplars: 2, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // half-filled window...
		d2.Observe(frames[i], core.FrameResult{Novelty: 3, Entropy: 0.99})
	}
	d2.SetBundle(fx.Bundle, 7) // ...discarded here
	var reps []*Report
	for i := 0; i < 6; i++ {
		if rep := d2.Observe(frames[i%len(frames)], core.FrameResult{Novelty: 3, Entropy: 0.99}); rep != nil {
			reps = append(reps, rep)
		}
	}
	if len(reps) != 1 {
		t.Fatalf("one full window after SetBundle should emit once, got %d", len(reps))
	}
	if reps[0].Generation != 7 {
		t.Fatalf("report generation %d after SetBundle(7)", reps[0].Generation)
	}
}

func TestDriftConfigDefaults(t *testing.T) {
	var cfg DriftConfig
	cfg.fill()
	if cfg.Window != 30 || cfg.EntropyThreshold != 0.97 || cfg.NoveltyThreshold != 1.5 ||
		cfg.DisagreementThreshold != 0.75 || cfg.SampleEvery != 4 || cfg.MinSignals != 2 ||
		cfg.MinExemplars != 16 || cfg.MaxExemplars != 48 || cfg.Cooldown != 60 {
		t.Fatalf("defaults: %+v", cfg)
	}
	// MaxExemplars is lifted to MinExemplars when set below it.
	cfg = DriftConfig{MinExemplars: 40, MaxExemplars: 10}
	cfg.fill()
	if cfg.MaxExemplars != 40 {
		t.Fatalf("MaxExemplars %d, want 40", cfg.MaxExemplars)
	}
}
