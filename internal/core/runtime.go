package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"anole/internal/detect"
	"anole/internal/device"
	"anole/internal/modelcache"
	"anole/internal/prefetch"
	"anole/internal/stats"
	"anole/internal/synth"
	"anole/internal/telemetry"
	"anole/internal/tensor"
)

// ModelStore is the cache surface the runtime drives: Request admits or
// touches the desired model, Contains probes residency for fallback
// selection, and the counters feed RunStats. Both *modelcache.Cache
// (single stream) and *modelcache.Sharded (shared across streams)
// satisfy it.
type ModelStore interface {
	Request(key string, size int) (hit bool, evicted []string, err error)
	Contains(key string) bool
	Len() int
	Stats() modelcache.Stats
	MissRate() float64
}

// RuntimeConfig controls the on-device inference loop.
type RuntimeConfig struct {
	// CacheSlots is the model cache capacity in compressed-model units
	// (default 5, the knee of Fig. 7b).
	CacheSlots int
	// Policy is the eviction policy (default LFU, the paper's choice).
	Policy modelcache.Policy
	// Store, when non-nil, is the model cache the runtime uses instead
	// of constructing its own from CacheSlots/Policy. MultiRuntime
	// passes one shared thread-safe store to every stream; when set,
	// the Cache and MissRate fields of Stats reflect that shared store,
	// not this runtime alone.
	Store ModelStore
	// Device, when non-nil, charges simulated latency/energy/memory for
	// every decision, load and inference.
	Device *device.Simulator
	// SwitchHysteresis requires a challenger model to rank top-1 for
	// this many consecutive frames before the runtime switches to it
	// (≤1 = switch immediately, the paper's per-sample selection).
	// Hysteresis trades a little selection agility for fewer model
	// switches and cache loads on noisy decision boundaries.
	SwitchHysteresis int
	// Prefetch, when non-nil, makes the runtime build its own
	// prefetch.Scheduler from this config (the Fetcher field must be
	// set): model bytes then travel the device↔cloud link, absent
	// desired models pay an on-demand fetch stall, and predicted next
	// models are prefetched in the background after each switch. The
	// runtime owns the scheduler; call Close to drain it. When no Store
	// is supplied the private cache becomes a single-shard
	// modelcache.Sharded, since prefetch completions insert from
	// background goroutines.
	Prefetch *prefetch.Config
	// Prefetcher, when non-nil, attaches a pre-built (possibly shared)
	// scheduler instead; it takes precedence over Prefetch and is NOT
	// closed by Runtime.Close — its owner closes it. The scheduler's
	// store must be the same cache this runtime resolves requests
	// against.
	Prefetcher *prefetch.Scheduler
	// Metrics, when non-nil, registers the runtime's frame counters and
	// latency/stall histograms (anole_core_*) on the given telemetry
	// registry. Streams sharing one registry share the handles, so the
	// exported values aggregate across streams while each stream's
	// RunStats stays per-stream. Nil disables metrics at the cost of
	// one nil check per instrumentation site.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span per pipeline stage per
	// frame — decide (scene-encode + decision head), cache, fetch,
	// detect — into the tracer's bounded ring. StreamID tags the spans
	// (MultiRuntime sets it per stream).
	Tracer   *telemetry.Tracer
	StreamID int
	// sizer, when non-nil, is the shared byte-size registry the store's
	// byte accounting reads (MultiRuntime passes one registry covering
	// the fleet bundle and every planner variant, so streams on
	// different variants never clobber each other's sizes).
	sizer *sizerRegistry
	// DegradedRetryFrames and DegradedRetryCap control the stale-serve
	// hysteresis entered when the decided model cannot be fetched: after
	// a failed demand fetch the runtime serves the best resident model
	// and waits DegradedRetryFrames frames (default 4) before probing
	// the link again, doubling the wait on every consecutive failure up
	// to DegradedRetryCap frames (default 32). The cap bounds recovery:
	// once the link is restored, at most DegradedRetryCap frames pass
	// before a probe succeeds and the decided model serves again.
	DegradedRetryFrames int
	DegradedRetryCap    int
}

// FrameResult reports one processed frame.
type FrameResult struct {
	// Desired is the top-ranked model index; Used is the model that
	// actually ran (differs from Desired on a cache miss).
	Desired int
	Used    int
	// Hit reports whether Desired was already cached.
	Hit bool
	// Switched reports whether Desired differs from the previous
	// frame's Desired (the scene-change signal of Fig. 7a).
	Switched bool
	// Metrics is the detection outcome against ground truth.
	Metrics stats.PRF1
	// Latency is the simulated end-to-end delay (zero without a device
	// simulator): decision + (load on admitted miss) + inference, plus
	// FetchStall when the desired model had to come over the link.
	Latency time.Duration
	// FetchStall is the time this frame spent waiting for the desired
	// model's bytes on the device↔cloud link (zero without a prefetch
	// scheduler, and zero when the model was already resident — warm or
	// prefetched).
	FetchStall time.Duration
	// Confidence is the decision model's top suitability probability.
	Confidence float64
	// Novelty scores how far the frame sits from every known scene
	// (see Bundle.Novelty); 0 when the bundle has no calibration.
	Novelty float64
	// Entropy is the normalized Shannon entropy of the decision-score
	// distribution, in [0, 1]: near 0 when one model clearly dominates,
	// near 1 when the head cannot tell the repertoire apart. Drift
	// detection windows it as an uncertainty signal.
	Entropy float64
	// RunnerUp is the second-ranked model index (equal to Desired when
	// the repertoire has a single model). Drift detection probes it on
	// sampled frames to measure detector disagreement.
	RunnerUp int
	// Degraded marks a frame served in degraded mode: the decided model
	// was absent and the link could not deliver it (or the runtime was
	// waiting out a failed fetch's backoff window), so a stale resident
	// model served the frame.
	Degraded bool
	// Verdict is the frame's terminal disposition under overload (see
	// FrameVerdict). The zero value is VerdictServed, so runs without
	// the pressure machinery are unchanged.
	Verdict FrameVerdict
}

// RunStats summarizes a runtime's history.
type RunStats struct {
	Frames   int
	Switches int
	// SceneDurations are the lengths of maximal runs of frames sharing
	// one desired model — the paper's "scene duration" measured "as the
	// number of frames without model switching" (Fig. 7a).
	SceneDurations []int
	// DesiredCounts is how often each model ranked top-1 (Fig. 4b).
	DesiredCounts []int
	// UsedCounts is how often each model actually served a frame.
	UsedCounts []int
	// Cache carries hit/miss/eviction counters; MissRate is derived.
	Cache    modelcache.Stats
	MissRate float64
	// Detection aggregates matching counts over all frames.
	Detection stats.PRF1
	// TotalLatency sums simulated per-frame latency.
	TotalLatency time.Duration
	// ColdMisses counts frames whose desired model was absent from the
	// cache and had to be fetched over the link; FetchStall is the total
	// time those fetches stalled frames. Both stay zero without a
	// prefetch scheduler.
	ColdMisses int
	FetchStall time.Duration
	// DegradedFrames counts frames served in degraded mode (the decided
	// model was unfetchable and a stale resident model served instead);
	// FallbackServed counts every frame whose serving model differed
	// from the decided one — degraded frames plus ordinary
	// load-in-background fallbacks. No frame is ever dropped: each one
	// is served by the decided model or counted here.
	DegradedFrames int
	FallbackServed int
	// Overload-survival counters (all zero without the pressure
	// machinery): ShedFrames were dropped at admission by the shed
	// ladder, DowngradedServed were served by the smallest resident
	// model instead of the decided one, QuarantinedFrames were disposed
	// because their stream was quarantined. Shed and quarantined frames
	// do not count toward Frames — Frames remains "frames that ran the
	// pipeline".
	ShedFrames        int
	DowngradedServed  int
	QuarantinedFrames int
}

// MeanSceneDuration returns the average desired-model run length.
func (s RunStats) MeanSceneDuration() float64 {
	if len(s.SceneDurations) == 0 {
		return 0
	}
	var sum int
	for _, d := range s.SceneDurations {
		sum += d
	}
	return float64(sum) / float64(len(s.SceneDurations))
}

// Runtime is the Online Model Inference loop. It is not safe for
// concurrent use (one runtime per device); MultiRuntime multiplexes
// several of them over one shared cache.
type Runtime struct {
	bundle     *Bundle
	cache      ModelStore
	dev        *device.Simulator
	hysteresis int
	// pf, when non-nil, gates model residency on the device↔cloud link;
	// ownsPF marks a scheduler built by NewRuntime (closed by Close).
	pf     *prefetch.Scheduler
	ownsPF bool
	// Degraded-mode state: retryBase/retryCap are the configured backoff
	// bounds; degradedWait is the frames left before the next link
	// probe; degradedStreak counts consecutive failed probes (drives the
	// doubling).
	retryBase      int
	retryCap       int
	degradedWait   int
	degradedStreak int
	// planSuppressed is set by processFrameShed around stageFinish so a
	// shed-ladder frame skips background prefetch planning (rung ≥ 1)
	// while keeping the rest of the bookkeeping identical.
	planSuppressed bool
	// sizer is the byte-size registry backing the store's sizer func.
	sizer *sizerRegistry
	// pfOffset shifts this stream's model indices into the shared
	// prefetch scheduler's model space when the stream runs a planner
	// variant: variant v's detector i registers at v×NumModels+i, so
	// the Markov chain and link transfers track each variant's models
	// separately. Zero for the base bundle.
	pfOffset int

	prevDesired int
	runLen      int
	// committed is the hysteresis-smoothed desired model; candidate and
	// streak track the current challenger.
	committed int
	candidate int
	streak    int
	stats     RunStats

	// Reused per-frame working buffers: the frame feature, the
	// embedding, the score vector, and the per-cell prediction slice.
	// The bundle's models are frozen weights, so the steady-state frame
	// step performs no per-frame heap allocations beyond the rank slice.
	featBuf   tensor.Vector
	embBuf    tensor.Vector
	scoresBuf []float64
	predsBuf  []detect.CellPred

	// met/tracer/streamID are the telemetry attachment (see
	// RuntimeConfig.Metrics and Tracer); all handles are nil-safe.
	met      frameMetrics
	tracer   *telemetry.Tracer
	streamID int
	// frameTrace is the causal trace ID of the frame currently in
	// flight, minted in beginFrame and stamped on every stage span. It
	// is derived purely from (stream, seq), so seeded reruns mint
	// identical IDs. Empty when tracing is off.
	frameTrace string
}

// NewRuntime prepares the OMI loop for a downloaded bundle.
func NewRuntime(b *Bundle, cfg RuntimeConfig) (*Runtime, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		if cfg.CacheSlots <= 0 {
			cfg.CacheSlots = 5
		}
		if cfg.Policy == 0 {
			cfg.Policy = modelcache.LFU
		}
		if cfg.Prefetch != nil || cfg.Prefetcher != nil || cfg.Metrics != nil {
			// Prefetch completions insert from background goroutines, so
			// a prefetching runtime's private store must be thread-safe;
			// one shard reproduces Cache's eviction behavior under a lock.
			// A metrics-enabled runtime also takes this path so its cache
			// counters land on the shared registry.
			sharded, err := modelcache.NewShardedMetrics(cfg.CacheSlots, cfg.Policy, 1, cfg.Metrics)
			if err != nil {
				return nil, err
			}
			store = sharded
		} else {
			cache, err := modelcache.New(cfg.CacheSlots, cfg.Policy)
			if err != nil {
				return nil, err
			}
			store = cache
		}
	}
	sizer := cfg.sizer
	if sizer == nil {
		sizer = newSizerRegistry()
	}
	sizer.add(b)
	wireSizer(store, sizer)
	retryBase := cfg.DegradedRetryFrames
	if retryBase <= 0 {
		retryBase = 4
	}
	retryCap := cfg.DegradedRetryCap
	if retryCap <= 0 {
		retryCap = 32
	}
	if retryCap < retryBase {
		retryCap = retryBase
	}
	r := &Runtime{
		bundle:      b,
		cache:       store,
		sizer:       sizer,
		dev:         cfg.Device,
		hysteresis:  cfg.SwitchHysteresis,
		retryBase:   retryBase,
		retryCap:    retryCap,
		prevDesired: -1,
		committed:   -1,
		candidate:   -1,
		met:         newFrameMetrics(cfg.Metrics),
		tracer:      cfg.Tracer,
		streamID:    cfg.StreamID,
		stats: RunStats{
			DesiredCounts: make([]int, b.NumModels()),
			UsedCounts:    make([]int, b.NumModels()),
		},
	}
	switch {
	case cfg.Prefetcher != nil:
		r.pf = cfg.Prefetcher
	case cfg.Prefetch != nil:
		ps, ok := store.(prefetch.Store)
		if !ok {
			return nil, fmt.Errorf("core: prefetch needs a store with Prefetch/Contains, have %T", store)
		}
		sched, err := prefetch.NewScheduler(*cfg.Prefetch, ps, PrefetchModels(b))
		if err != nil {
			return nil, err
		}
		r.pf = sched
		r.ownsPF = true
	}
	return r, nil
}

// PrefetchModels lists the bundle's repertoire as prefetch.Model
// entries. Bytes is the paper-scale over-the-wire size (WeightBytes ×
// device.BytesScale) — the same size the device simulator charges for
// loads — so link transfer times and load latencies describe one model.
func PrefetchModels(b *Bundle) []prefetch.Model {
	out := make([]prefetch.Model, b.NumModels())
	for i, d := range b.Detectors {
		cost := device.ModelCost{WeightBytes: d.WeightBytes()}
		out[i] = prefetch.Model{Name: d.Name, Bytes: int64(cost.ScaledBytes())}
	}
	return out
}

// byteSizedStore is the optional cache surface for byte-level residency
// accounting: stores that implement it (modelcache.Cache and Sharded)
// are taught the exact serialized size of each model so BytesUsed
// reflects real resident memory, not just slot counts.
type byteSizedStore interface {
	SetSizer(func(key string) int64)
}

// sizerRegistry is the byte-size map behind a store's sizer func: each
// cache key (detector name) maps to the exact serialized size of its
// program (Weights.SizeBytes). It accumulates — registering a new bundle
// (a generation swap, a planner variant) merges its sizes instead of
// clobbering the old ones, so entries from earlier generations or other
// streams' variants keep correct byte accounting until they are evicted.
// Reads and writes can race between a swap and a background prefetch
// completion, hence the lock.
type sizerRegistry struct {
	mu    sync.RWMutex
	sizes map[string]int64
}

func newSizerRegistry() *sizerRegistry {
	return &sizerRegistry{sizes: make(map[string]int64)}
}

func (sr *sizerRegistry) add(b *Bundle) {
	sr.mu.Lock()
	for _, d := range b.Detectors {
		sr.sizes[d.Name] = d.SizeBytes()
	}
	sr.mu.Unlock()
}

func (sr *sizerRegistry) size(key string) int64 {
	sr.mu.RLock()
	defer sr.mu.RUnlock()
	return sr.sizes[key]
}

// wireSizer points the store's byte accounting at the registry.
func wireSizer(store ModelStore, sr *sizerRegistry) {
	if bs, ok := store.(byteSizedStore); ok {
		bs.SetSizer(sr.size)
	}
}

// Prefetcher returns the attached prefetch scheduler (nil when
// prefetching is disabled).
func (r *Runtime) Prefetcher() *prefetch.Scheduler { return r.pf }

// Close drains a prefetch scheduler the runtime built for itself
// (RuntimeConfig.Prefetch) and detaches it. A shared scheduler injected
// via RuntimeConfig.Prefetcher is only detached — its owner closes it.
// Safe to call on runtimes without prefetching.
func (r *Runtime) Close() {
	if r.ownsPF && r.pf != nil {
		r.pf.Close()
	}
	r.pf = nil
}

// Bundle returns the runtime's deployed bundle.
func (r *Runtime) Bundle() *Bundle { return r.bundle }

// SwapBundle deploys a new bundle on this runtime between frames — the
// rollout path for continual adaptation. The feature dimension must
// match (the stream keeps producing the same frames). Per-model stats
// slices grow to cover the larger repertoire and never shrink, so a
// rollback to a smaller bundle keeps the canary models' history; any
// selection state referring to a model index beyond the new repertoire
// (possible only on rollback) is reset so hysteresis re-seeds from the
// next frame. Not safe to call while a frame is in flight: callers
// swap between ProcessFrame / ProcessStreams calls.
func (r *Runtime) SwapBundle(b *Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if b.FeatDim != r.bundle.FeatDim {
		return fmt.Errorf("core: swap bundle feat dim %d, runtime %d", b.FeatDim, r.bundle.FeatDim)
	}
	r.bundle = b
	// Merge the new generation's sizes and re-measure the store's
	// residents: keys shared between generations (a promote keeps
	// detector names) take the incoming sizes, other bundles' keys keep
	// theirs, so BytesUsed stays the exact sum over the resident set.
	r.sizer.add(b)
	wireSizer(r.cache, r.sizer)
	n := b.NumModels()
	for len(r.stats.DesiredCounts) < n {
		r.stats.DesiredCounts = append(r.stats.DesiredCounts, 0)
	}
	for len(r.stats.UsedCounts) < n {
		r.stats.UsedCounts = append(r.stats.UsedCounts, 0)
	}
	if r.prevDesired >= n {
		r.prevDesired = -1
	}
	if r.committed >= n {
		r.committed = -1
	}
	if r.candidate >= n {
		r.candidate, r.streak = -1, 0
	}
	return nil
}

// ProcessFrame executes the paper's per-frame pipeline: MSS ranks the
// repertoire with M_decision; CMD resolves the ranking against the LFU
// cache (on a miss the best cached model serves the frame while the cache
// updates); MI runs the chosen detector. Ground-truth metrics, cache
// behavior and simulated latency are recorded.
//
// The body is a composition of the stage methods below; MultiRuntime's
// batched event loop runs the same stages, substituting batched
// embedding/score/detector computation for the per-frame calls.
func (r *Runtime) ProcessFrame(f *synth.Frame) (FrameResult, error) {
	if err := r.validateFrame(f); err != nil {
		return FrameResult{}, err
	}
	var res FrameResult
	seq := r.beginFrame()
	r.computeDecision(f)
	rank := r.stageDecide(seq, &res)
	if err := r.stageResolve(f, seq, rank, &res); err != nil {
		return FrameResult{}, err
	}
	detectDur := r.detectAccount(f, &res)
	r.predsBuf = r.bundle.Detectors[res.Used].DetectFrame(r.predsBuf, f)
	r.finishDetect(f, seq, detectDur, &res)
	r.stageFinish(&res)
	return res, nil
}

// validateFrame rejects frames the bundle cannot process. Split from
// beginFrame so the batched path can vet a whole tick's frames before
// touching any shared clocks.
func (r *Runtime) validateFrame(f *synth.Frame) error {
	if f == nil {
		return fmt.Errorf("core: nil frame")
	}
	if f.FeatDim() != r.bundle.FeatDim {
		return fmt.Errorf("core: frame feat dim %d, bundle %d", f.FeatDim(), r.bundle.FeatDim)
	}
	return nil
}

// beginFrame opens one frame: it reserves the tracer sequence, mints
// the frame's causal trace ID, and advances the shared link clock —
// one frame elapses per processed frame, so background transfers
// progress at the link's simulated rate.
func (r *Runtime) beginFrame() int64 {
	seq := r.tracer.NextSeq()
	if r.tracer != nil {
		r.frameTrace = telemetry.FrameTrace(r.streamID, seq)
	}
	if r.pf != nil {
		r.pf.Tick()
	}
	return seq
}

// computeDecision fills the embedding and score buffers for one frame —
// the per-frame (GEMV) form. The batched path replaces this with
// adoptDecision over rows of the tick's batch matrices; both produce
// bit-identical buffers.
func (r *Runtime) computeDecision(f *synth.Frame) {
	r.featBuf = synth.FrameFeatureInto(r.featBuf, f)
	r.embBuf = r.bundle.Encoder.EmbedFeatureInto(r.embBuf, r.featBuf)
	r.scoresBuf = r.bundle.Decision.ScoresInto(r.scoresBuf, r.embBuf)
}

// adoptDecision copies a batched embedding/score row pair into the
// runtime's decision buffers, after which stageDecide proceeds exactly
// as in the per-frame path.
func (r *Runtime) adoptDecision(emb tensor.Vector, scores []float64) {
	if len(r.embBuf) != len(emb) {
		r.embBuf = tensor.NewVector(len(emb))
	}
	copy(r.embBuf, emb)
	if len(r.scoresBuf) != len(scores) {
		r.scoresBuf = make([]float64, len(scores))
	}
	copy(r.scoresBuf, scores)
}

// stageDecide is MSS: it charges the decision cost to the device, ranks
// the repertoire from the score buffer, applies hysteresis and scores
// novelty. The scene embedding is computed once (computeDecision or
// adoptDecision) and shared by the decision head and the novelty score —
// they run as one simulated op, so they share the decide span.
func (r *Runtime) stageDecide(seq int64, res *FrameResult) []int {
	var decideDur time.Duration
	if r.dev != nil {
		decideDur = r.dev.Infer(r.bundle.DecisionCost())
		res.Latency += decideDur
	}
	scores := r.scoresBuf
	rank := stats.RankDescending(scores)
	res.Desired = r.applyHysteresis(rank[0])
	res.Confidence = scores[rank[0]]
	res.Novelty = r.bundle.NoveltyOfEmbedding(r.embBuf)
	res.Entropy = stats.NormalizedEntropy(scores)
	res.RunnerUp = rank[0]
	if len(rank) > 1 {
		res.RunnerUp = rank[1]
	}
	if res.Desired != rank[0] {
		// The smoothed choice leads the ranking used for fallback.
		rank = prependModel(rank, res.Desired)
	}
	r.recordStage(seq, telemetry.StageDecide, res.Desired, decideDur, false, false, nil)
	return rank
}

// stageResolve is CMD: it resolves the ranking against the cache and
// picks the model serving this frame (res.Used), charging fetch stalls
// and load latencies. It touches the shared cache and link, so the
// batched event loop runs it sequentially in stream order.
func (r *Runtime) stageResolve(f *synth.Frame, seq int64, rank []int, res *FrameResult) error {
	// CMD: resolve against the cache. On a miss the frame is served by
	// the best model already resident (the paper's §V-B rule) while the
	// desired model loads in the background; only the very first frame,
	// with an empty cache, blocks on its load.
	coldStart := r.cache.Len() == 0
	var preResident []bool
	if !coldStart {
		preResident = make([]bool, len(r.bundle.Detectors))
		for i, det := range r.bundle.Detectors {
			preResident[i] = r.cache.Contains(det.Name)
		}
	}
	desiredName := r.bundle.Detectors[res.Desired].Name

	// With a prefetch scheduler the desired model's bytes must cross the
	// link before admission: a resident model (warm or prefetched) is
	// free, an absent one pays an on-demand fetch whose stall is charged
	// to this frame. The fetch routes through the scheduler so it
	// preempts any background prefetches (the miss path owns the link).
	//
	// When the fetch fails, the runtime enters degraded mode: the frame
	// is served by the best resident fallback below and subsequent
	// frames skip the link probe for an exponentially growing (capped)
	// window, so a dead link costs one stall per window instead of one
	// per frame. Any successful fetch — or the model turning up resident
	// via a background prefetch — exits degraded mode; the cap bounds
	// how long after link restoration the decided model returns.
	demandLoaded, demandFailed := false, false
	if r.pf != nil {
		if !r.cache.Contains(desiredName) {
			if r.degradedWait > 0 && !coldStart {
				r.degradedWait--
				demandFailed = true
				res.Degraded = true
				r.recordStage(seq, telemetry.StageFetch, res.Desired, 0, false, true, errDegradedBackoff)
			} else {
				r.stats.ColdMisses++
				r.met.coldMisses.Inc()
				stall, ferr := r.pf.DemandFetch(context.Background(), r.pfOffset+res.Desired)
				r.recordStage(seq, telemetry.StageFetch, res.Desired, stall, false, ferr != nil, ferr)
				if ferr != nil {
					// Link unreachable: back off before the next probe.
					demandFailed = true
					res.Degraded = true
					r.noteDemandFailure()
				} else {
					demandLoaded = true
					r.degradedWait, r.degradedStreak = 0, 0
					res.FetchStall = stall
					res.Latency += stall
					r.stats.FetchStall += stall
					r.met.stall.Observe(stall.Seconds())
					if r.dev != nil {
						r.dev.Idle(stall)
					}
				}
			}
		} else {
			// The decided model is resident; whatever failures came
			// before, the runtime is serving decided again.
			r.degradedWait, r.degradedStreak = 0, 0
		}
	}
	if res.Degraded {
		r.stats.DegradedFrames++
		r.met.degraded.Inc()
	}
	var (
		hit     bool
		evicted []string
	)
	if demandFailed {
		if coldStart {
			return fmt.Errorf("core: model %q unreachable with an empty cache", desiredName)
		}
	} else {
		var err error
		hit, evicted, err = r.cache.Request(desiredName, 1)
		if err != nil {
			return fmt.Errorf("core: cache: %w", err)
		}
	}
	res.Hit = hit
	r.recordStage(seq, telemetry.StageCache, res.Desired, 0, hit, res.Degraded, nil)
	if r.dev != nil {
		cells := f.NumCells()
		for _, name := range evicted {
			if idx := r.modelIndex(name); idx >= 0 {
				r.dev.UnloadModel(r.bundle.ModelCost(idx, cells))
			}
		}
		if !hit && r.cache.Contains(desiredName) {
			cost := r.bundle.ModelCost(res.Desired, cells)
			if coldStart || demandLoaded {
				// A demand-fetched model serves this very frame, so its
				// device load is synchronous, like the cold-start load.
				res.Latency += r.dev.LoadModel(cost)
			} else {
				r.dev.LoadModelAsync(cost)
			}
		}
	}

	// Choose the model serving this frame: on a hit (or cold start, or
	// after a demand fetch already stalled the frame for the desired
	// bytes) the desired model; otherwise the highest-ranked model that
	// was resident before the background load began.
	res.Used = -1
	if hit || coldStart || demandLoaded {
		res.Used = res.Desired
	} else {
		for _, idx := range rank {
			if preResident[idx] {
				res.Used = idx
				break
			}
		}
	}
	if res.Used < 0 {
		// Unreachable: a warm cache always has a resident model.
		res.Used = res.Desired
	}
	if res.Used != res.Desired {
		r.stats.FallbackServed++
		r.met.fallback.Inc()
	}
	return nil
}

// detectAccount charges the serving model's inference cost to the
// device simulator — the accounting half of MI, kept apart from the
// actual detector run so the batched path can account per stream while
// detecting per group.
func (r *Runtime) detectAccount(f *synth.Frame, res *FrameResult) time.Duration {
	var detectDur time.Duration
	if r.dev != nil {
		detectDur = r.dev.Infer(r.bundle.ModelCost(res.Used, f.NumCells()))
		res.Latency += detectDur
	}
	return detectDur
}

// finishDetect scores the predictions in predsBuf against ground truth
// and closes the detect span. The caller has already filled predsBuf —
// DetectFrame in the per-frame path, a grouped DetectBatch in the
// batched one.
func (r *Runtime) finishDetect(f *synth.Frame, seq int64, detectDur time.Duration, res *FrameResult) {
	res.Metrics = detect.ScorePredictions(r.predsBuf, f)
	r.recordStage(seq, telemetry.StageDetect, res.Used, detectDur, res.Used == res.Desired, res.Degraded, nil)
}

// stageFinish is the per-frame bookkeeping: switch detection, prefetch
// planning, stats and metrics. It mutates per-stream state and the
// shared prefetch scheduler, so the batched event loop runs it
// sequentially in stream order.
func (r *Runtime) stageFinish(res *FrameResult) {
	res.Switched = r.prevDesired >= 0 && res.Desired != r.prevDesired
	if r.pf != nil {
		if res.Switched {
			r.pf.Observe(r.pfOffset+r.prevDesired, r.pfOffset+res.Desired)
		}
		if (res.Switched || r.stats.Frames == 0) && !r.planSuppressed {
			// Warm the cache toward the likeliest next switch targets.
			r.pf.Plan(r.pfOffset + res.Desired)
		}
	}
	if res.Switched {
		r.stats.Switches++
		r.met.switches.Inc()
		r.stats.SceneDurations = append(r.stats.SceneDurations, r.runLen)
		r.runLen = 1
	} else {
		r.runLen++
	}
	r.prevDesired = res.Desired
	r.stats.Frames++
	r.met.frames.Inc()
	r.met.latency.Observe(res.Latency.Seconds())
	r.stats.DesiredCounts[res.Desired]++
	r.stats.UsedCounts[res.Used]++
	r.stats.Detection = r.stats.Detection.Add(res.Metrics)
	r.stats.TotalLatency += res.Latency
}

// ProcessClip runs every frame of a clip in order and returns the
// windowed F1 series (window 10, the Fig. 8 protocol).
func (r *Runtime) ProcessClip(frames []*synth.Frame, window int) ([]float64, error) {
	if window <= 0 {
		window = 10
	}
	var (
		out []float64
		agg stats.PRF1
		n   int
	)
	for _, f := range frames {
		res, err := r.ProcessFrame(f)
		if err != nil {
			return nil, err
		}
		agg = agg.Add(res.Metrics)
		n++
		if n == window {
			out = append(out, agg.F1)
			agg = stats.PRF1{}
			n = 0
		}
	}
	if n > 0 {
		out = append(out, agg.F1)
	}
	return out, nil
}

// Stats returns a snapshot of the run, closing the open desired-model run
// into SceneDurations.
func (r *Runtime) Stats() RunStats {
	out := r.stats
	out.SceneDurations = append([]int(nil), r.stats.SceneDurations...)
	if r.runLen > 0 {
		out.SceneDurations = append(out.SceneDurations, r.runLen)
	}
	out.DesiredCounts = append([]int(nil), r.stats.DesiredCounts...)
	out.UsedCounts = append([]int(nil), r.stats.UsedCounts...)
	out.Cache = r.cache.Stats()
	out.MissRate = r.cache.MissRate()
	out.Detection = stats.ComputePRF1(r.stats.Detection.TP, r.stats.Detection.FP, r.stats.Detection.FN)
	return out
}

// Name implements the Selector surface shared with the baselines
// package, so the harness can evaluate Anole uniformly.
func (r *Runtime) Name() string { return "Anole" }

// Select implements the Selector surface: it advances the cache exactly
// as ProcessFrame does and returns the model that would serve the frame.
func (r *Runtime) Select(f *synth.Frame) *detect.Detector {
	scores := r.bundle.Decision.Scores(f)
	rank := stats.RankDescending(scores)
	desiredName := r.bundle.Detectors[rank[0]].Name
	if _, _, err := r.cache.Request(desiredName, 1); err != nil {
		return r.bundle.Detectors[rank[0]]
	}
	for _, idx := range rank {
		if r.cache.Contains(r.bundle.Detectors[idx].Name) {
			return r.bundle.Detectors[idx]
		}
	}
	return r.bundle.Detectors[rank[0]]
}

// Detectors implements the Selector surface.
func (r *Runtime) Detectors() []*detect.Detector { return r.bundle.Detectors }

// OverheadFLOPs implements the Selector surface: the per-frame decision
// cost.
func (r *Runtime) OverheadFLOPs() int64 { return r.bundle.Decision.FLOPs() }

// noteDemandFailure advances the degraded-mode backoff: the wait before
// the next link probe doubles with every consecutive failure, capped at
// retryCap frames.
func (r *Runtime) noteDemandFailure() {
	r.degradedStreak++
	wait := r.retryBase
	for i := 1; i < r.degradedStreak && wait < r.retryCap; i++ {
		wait *= 2
	}
	if wait > r.retryCap {
		wait = r.retryCap
	}
	r.degradedWait = wait
}

// applyHysteresis smooths the per-frame top-1 choice: a challenger must
// win SwitchHysteresis consecutive frames to displace the committed
// model.
func (r *Runtime) applyHysteresis(top int) int {
	if r.hysteresis <= 1 {
		return top
	}
	if r.committed < 0 || top == r.committed {
		r.committed = top
		r.candidate, r.streak = -1, 0
		return r.committed
	}
	if top == r.candidate {
		r.streak++
	} else {
		r.candidate, r.streak = top, 1
	}
	if r.streak >= r.hysteresis {
		r.committed = top
		r.candidate, r.streak = -1, 0
	}
	return r.committed
}

// prependModel moves idx to the front of rank without duplicating it.
func prependModel(rank []int, idx int) []int {
	out := make([]int, 0, len(rank))
	out = append(out, idx)
	for _, m := range rank {
		if m != idx {
			out = append(out, m)
		}
	}
	return out
}

func (r *Runtime) modelIndex(name string) int {
	for i, d := range r.bundle.Detectors {
		if d.Name == name {
			return i
		}
	}
	return -1
}
