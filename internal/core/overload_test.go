package core_test

import (
	"testing"
	"time"

	"anole/internal/core"
	"anole/internal/device"
	"anole/internal/testutil"
)

// TestMultiRuntimeThermalThrottlingRaisesLatency is the regression
// guard for satellite thermal wiring: a fleet configured with a
// thermal model that cannot sustain the workload must heat past the
// throttle threshold, and the resulting derate must show up in the
// core frame-latency accounting — strictly higher TotalLatency than an
// identical run without the thermal model.
func TestMultiRuntimeThermalThrottlingRaisesLatency(t *testing.T) {
	fx := testutil.Shared(t)
	const streams, perStream = 2, 120
	run := func(th *device.ThermalModel) *core.MultiRuntime {
		m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
			Streams:    streams,
			CacheSlots: 3,
			Device:     &device.JetsonTX2NX,
			Thermal:    th,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		if _, err := m.ProcessStreams(streamFrames(t, streams, perStream), nil); err != nil {
			t.Fatal(err)
		}
		return m
	}

	cool := run(nil)
	hot := run(&device.ThermalModel{
		SustainedW:   0.5, // far below the TX2 NX active draw: saturates
		TimeConstant: time.Millisecond,
		MaxDerate:    0.9,
	})

	for i := 0; i < streams; i++ {
		dev := hot.StreamDevice(i)
		if dev.Heat() <= 1 {
			t.Fatalf("stream %d heat %.3f, want past the throttle threshold 1", i, dev.Heat())
		}
		if dev.ThrottleFactor() >= 1 {
			t.Fatalf("stream %d throttle factor %.3f, want a derate", i, dev.ThrottleFactor())
		}
		if cool.StreamDevice(i).Heat() != 0 {
			t.Fatalf("stream %d heated without a thermal model", i)
		}
	}
	hs, cs := hot.Stats(), cool.Stats()
	if hs.Frames != cs.Frames {
		t.Fatalf("frame counts diverged: %d vs %d", hs.Frames, cs.Frames)
	}
	if hs.TotalLatency <= cs.TotalLatency {
		t.Fatalf("throttled latency %v not above unthrottled %v", hs.TotalLatency, cs.TotalLatency)
	}
}

// TestMultiRuntimeGPUMemoryBecomesByteCapacity pins satellite (b): a
// device profile's GPUMemoryMB is enforced as the shared cache's byte
// capacity (scaled to sizer units), and a run never leaves the
// resident set above it.
func TestMultiRuntimeGPUMemoryBecomesByteCapacity(t *testing.T) {
	fx := testutil.Shared(t)
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    2,
		CacheSlots: 3,
		Device:     &device.JetsonTX2NX,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	want := int64(device.JetsonTX2NX.GPUMemoryMB * float64(1<<20) / device.BytesScale)
	if got := m.Cache().ByteCapacity(); got != want {
		t.Fatalf("byte capacity %d, want %d from the %s profile", got, want, device.JetsonTX2NX.Name)
	}
	if _, err := m.ProcessStreams(streamFrames(t, 2, 60), nil); err != nil {
		t.Fatal(err)
	}
	if used := m.Cache().BytesUsed(); used <= 0 || used > want {
		t.Fatalf("resident bytes %d outside (0, %d]", used, want)
	}

	// Without a device profile there is nothing to enforce.
	free, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{Streams: 2, CacheSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	if got := free.Cache().ByteCapacity(); got != 0 {
		t.Fatalf("byte capacity %d without a device profile, want 0", got)
	}
}

// TestMultiRuntimeSwapPurgeByteAccounting pins satellite (c)'s ledger
// invariant: through a canary swap, a rollback, and a stale-model
// purge, BytesUsed always equals the currently wired sizer summed over
// the resident key set — byte accounting never drifts.
func TestMultiRuntimeSwapPurgeByteAccounting(t *testing.T) {
	fx := testutil.Shared(t)
	candidate, err := core.QuantizeBundle(fx.Bundle, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMultiRuntime(fx.Bundle, core.MultiRuntimeConfig{
		Streams:    2,
		CacheSlots: fx.Bundle.NumModels() + 2,
		Device:     &device.JetsonTX2NX,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// sizesOf mirrors wireSizer: detector name to frozen serialized
	// size; keys outside the bundle measure zero.
	sizesOf := func(b *core.Bundle) map[string]int64 {
		out := make(map[string]int64, len(b.Detectors))
		for _, d := range b.Detectors {
			out[d.Name] = d.SizeBytes()
		}
		return out
	}
	ledgerMatches := func(step string, sizes map[string]int64) {
		t.Helper()
		var want int64
		for _, k := range m.Cache().Keys() {
			want += sizes[k]
		}
		if got := m.Cache().BytesUsed(); got != want {
			t.Fatalf("%s: BytesUsed %d, resident sum %d", step, got, want)
		}
	}

	if _, err := m.ProcessStreams(streamFrames(t, 2, 60), nil); err != nil {
		t.Fatal(err)
	}
	ledgerMatches("after warmup", sizesOf(fx.Bundle))

	// Residents from a withdrawn generation, unknown to any sizer.
	for _, stale := range []string{"M_old_a", "M_old_b"} {
		if _, _, err := m.Cache().Request(stale, 1); err != nil {
			t.Fatal(err)
		}
	}
	ledgerMatches("with stale residents", sizesOf(fx.Bundle))

	// Canary: the swap re-wires the sizer to the candidate bundle and
	// re-measures every resident.
	if err := m.SwapStreamBundle(1, candidate); err != nil {
		t.Fatal(err)
	}
	ledgerMatches("after canary swap", sizesOf(candidate))
	if _, err := m.ProcessStreams(streamFrames(t, 2, 40), nil); err != nil {
		t.Fatal(err)
	}
	ledgerMatches("after mixed-fleet run", sizesOf(candidate))

	// Rollback, then purge the stale generation.
	if err := m.SwapStreamBundle(1, fx.Bundle); err != nil {
		t.Fatal(err)
	}
	if purged := m.PurgeStaleModels(); purged != 2 {
		t.Fatalf("purged %d, want the 2 stale models", purged)
	}
	ledgerMatches("after purge", sizesOf(fx.Bundle))
	for _, k := range m.Cache().Keys() {
		if sizesOf(fx.Bundle)[k] == 0 {
			t.Fatalf("non-bundle key %q survived the purge", k)
		}
	}
}
