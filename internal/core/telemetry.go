package core

import (
	"errors"
	"time"

	"anole/internal/telemetry"
)

// errDegradedBackoff labels fetch spans for frames that skipped the link
// probe because the runtime was waiting out a failed fetch's backoff
// window.
var errDegradedBackoff = errors.New("degraded backoff: link probe skipped")

// frameMetrics are the runtime's telemetry handles, registered under
// anole_core_* names. All handles are nil-safe no-ops when telemetry is
// disabled (RuntimeConfig.Metrics nil), so the instrumented hot path
// pays one nil check per site. N streams sharing one registry share
// these handles — the exported values are the aggregate across streams,
// while each stream's RunStats remains its own per-stream view.
type frameMetrics struct {
	frames     *telemetry.Counter
	switches   *telemetry.Counter
	coldMisses *telemetry.Counter
	degraded   *telemetry.Counter
	fallback   *telemetry.Counter
	latency    *telemetry.Histogram
	stall      *telemetry.Histogram
}

// newFrameMetrics binds the handle set on reg; a nil reg yields all-nil
// (no-op) handles.
func newFrameMetrics(reg *telemetry.Registry) frameMetrics {
	if reg == nil {
		return frameMetrics{}
	}
	return frameMetrics{
		frames:     reg.Counter("anole_core_frames_total", "frames processed across streams"),
		switches:   reg.Counter("anole_core_switches_total", "desired-model switches (scene changes)"),
		coldMisses: reg.Counter("anole_core_cold_misses_total", "frames whose desired model had to cross the link"),
		degraded:   reg.Counter("anole_core_degraded_frames_total", "frames served stale in degraded mode"),
		fallback:   reg.Counter("anole_core_fallback_served_total", "frames served by a model other than the decided one"),
		latency:    reg.Histogram("anole_core_frame_latency_seconds", "simulated end-to-end per-frame latency", nil),
		stall:      reg.Histogram("anole_core_fetch_stall_seconds", "per-frame stall waiting on the device-cloud link", nil),
	}
}

// recordStage appends one pipeline-stage span for the current frame; a
// nil tracer drops it. seq is the frame's tracer sequence (0 when
// tracing is off).
func (r *Runtime) recordStage(seq int64, stage string, model int, dur time.Duration, hit, degraded bool, err error) {
	if r.tracer == nil {
		return
	}
	s := telemetry.Span{
		Seq:      seq,
		Stream:   r.streamID,
		Stage:    stage,
		Model:    model,
		Trace:    r.frameTrace,
		Dur:      dur,
		Hit:      hit,
		Degraded: degraded,
	}
	if err != nil {
		s.Err = err.Error()
	}
	r.tracer.Record(s)
}
