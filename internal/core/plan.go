package core

import (
	"fmt"
	"time"

	"anole/internal/detect"
	"anole/internal/device"
	"anole/internal/nn"
	"anole/internal/plan"
	"anole/internal/telemetry"
)

// Per-device planning (internal/plan wired into the multi-stream loop):
// the bundle is expanded into a variant ladder — full precision plus a
// few quantized copies — and every stream is assigned the variant its
// device can actually serve: the most accurate one that fits the
// device's cache byte capacity and meets the latency budget at the
// device's current throttle factor. Pressure-level transitions re-run
// the selection, so a device that heats up steps down to a cheaper
// variant and steps back up when it cools.

// PlanConfig tunes per-device model/quantization selection.
type PlanConfig struct {
	// QuantLadder lists the detector bit widths offered as variants in
	// addition to the full-precision bundle (default 8, 6, 4).
	QuantLadder []int
	// LatencyBudget is the per-frame target every device should meet
	// (default 33ms — the paper's 30 FPS regime). Devices that cannot
	// meet it on any variant run the fastest one that fits in memory.
	LatencyBudget time.Duration
	// CellsHint is the frame grid cell count used for FLOP estimates
	// (default 64, the synthetic world's 8×8 grid).
	CellsHint int
}

func (c *PlanConfig) ladder() []int {
	if c == nil || len(c.QuantLadder) == 0 {
		return []int{8, 6, 4}
	}
	return c.QuantLadder
}

func (c *PlanConfig) budget() time.Duration {
	if c == nil || c.LatencyBudget <= 0 {
		return 33 * time.Millisecond
	}
	return c.LatencyBudget
}

func (c *PlanConfig) cells() int {
	if c == nil || c.CellsHint <= 0 {
		return 64
	}
	return c.CellsHint
}

// planVariant couples one runnable bundle with its planning estimates.
type planVariant struct {
	bundle *Bundle
	est    plan.Variant
}

// planState is the per-device selector's runtime state.
type planState struct {
	variants []planVariant // variants[0] is the full-precision bundle
	ests     []plan.Variant
	budget   time.Duration
	choices  []int // per-stream variant index
	// replans counts variant switches applied after the initial plan;
	// infeasible counts streams whose device cannot meet the latency
	// budget on any variant (they run the fastest fit).
	replans    *telemetry.Counter
	infeasible *telemetry.Gauge
}

// newPlanState builds the variant ladder: the base bundle plus one
// quantized copy per ladder width. Quantized variants rename their
// detectors ("<name>@q8"), so cache keys, prefetch models and byte-size
// accounting stay distinct per variant.
func newPlanState(b *Bundle, cfg *PlanConfig, streams int, reg *telemetry.Registry) (*planState, error) {
	ps := &planState{
		budget:  cfg.budget(),
		choices: make([]int, streams),
	}
	cells := cfg.cells()
	ps.variants = append(ps.variants, planVariant{bundle: b, est: variantEstimate(b, "fp32", 0, cells)})
	for _, bits := range cfg.ladder() {
		qb, err := quantVariantBundle(b, bits)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("q%d", bits)
		ps.variants = append(ps.variants, planVariant{bundle: qb, est: variantEstimate(qb, name, bits, cells)})
	}
	ps.ests = make([]plan.Variant, len(ps.variants))
	for i, v := range ps.variants {
		ps.ests[i] = v.est
	}
	if reg != nil {
		ps.replans = reg.Counter("anole_plan_replans_total", "variant switches applied by per-device re-planning")
		ps.infeasible = reg.Gauge("anole_plan_infeasible_streams", "streams whose device meets the latency budget on no variant")
	}
	return ps, nil
}

// variantEstimate summarizes one bundle for the solver: decision cost,
// the worst detector's per-frame cost, the repertoire's total resident
// size (cache sizer units), and expected accuracy (mean validation F1
// scaled by the quantization penalty).
func variantEstimate(b *Bundle, name string, bits, cells int) plan.Variant {
	var detectFLOPs, size int64
	for _, d := range b.Detectors {
		if f := d.FrameFLOPs(cells); f > detectFLOPs {
			detectFLOPs = f
		}
		size += d.SizeBytes()
	}
	var f1 float64
	for _, info := range b.Infos {
		f1 += info.ValF1
	}
	if len(b.Infos) > 0 {
		f1 /= float64(len(b.Infos))
	}
	return plan.Variant{
		Name:        name,
		QuantBits:   bits,
		DecideFLOPs: b.Decision.FLOPs(),
		DetectFLOPs: detectFLOPs,
		SizeBytes:   size,
		Accuracy:    f1 * nn.QuantAccuracyFactor(bits),
	}
}

// quantVariantBundle is QuantizeBundle plus a rename: every detector
// (and its info) becomes "<name>@q<bits>", keeping variant cache keys
// disjoint from the base bundle's.
func quantVariantBundle(b *Bundle, bits int) (*Bundle, error) {
	qb, err := QuantizeBundle(b, bits)
	if err != nil {
		return nil, err
	}
	detectors := make([]*detect.Detector, len(qb.Detectors))
	infos := append([]ModelInfo(nil), qb.Infos...)
	for i, d := range qb.Detectors {
		name := fmt.Sprintf("%s@q%d", d.Name, bits)
		rd, err := detect.FromWeights(name, d.Arch, d.FeatDim(), d.Weights())
		if err != nil {
			return nil, fmt.Errorf("core: variant q%d: %w", bits, err)
		}
		detectors[i] = rd
		infos[i].Name = name
	}
	qb.Detectors = detectors
	qb.Infos = infos
	return qb, nil
}

// cacheByteCapacity converts a profile's GPU memory into the model
// cache's sizer units (serialized bytes; the device charges paper-scale
// bytes, WeightBytes × BytesScale).
func cacheByteCapacity(p device.Profile) int64 {
	return int64(p.GPUMemoryMB * float64(1<<20) / device.BytesScale)
}

// planDevice snapshots stream i's device as the solver sees it right
// now: mode throughput, current throttle factor, its own memory ceiling.
func (m *MultiRuntime) planDevice(i int) plan.Device {
	a := m.fleet[i]
	mode := a.Profile.Modes[a.Mode]
	throttle := 1.0
	if m.devs[i] != nil {
		throttle = m.devs[i].ThrottleFactor()
	}
	return plan.Device{
		Name:               a.Profile.Name,
		GFLOPS:             mode.GFLOPS,
		Throttle:           throttle,
		DispatchOverheadMs: a.Profile.DispatchOverheadMs,
		MemoryBytes:        cacheByteCapacity(a.Profile),
		LatencyBudget:      m.plan.budget,
	}
}

// applyInitialPlan runs the solver once per stream at construction time
// and deploys each stream's chosen variant. A device no variant fits is
// a configuration error and fails construction.
func (m *MultiRuntime) applyInitialPlan() error {
	infeasible := 0
	for i, rt := range m.streams {
		choice, err := plan.Select(m.planDevice(i), m.plan.ests)
		if err != nil {
			return fmt.Errorf("core: stream %d (%s): %w", i, m.fleet[i].Class, err)
		}
		if !choice.Feasible {
			infeasible++
		}
		if choice.Index != 0 {
			if err := rt.SwapBundle(m.plan.variants[choice.Index].bundle); err != nil {
				return fmt.Errorf("core: stream %d: %w", i, err)
			}
			rt.pfOffset = choice.Index * m.bundle.NumModels()
		}
		m.plan.choices[i] = choice.Index
	}
	if m.plan.infeasible != nil {
		m.plan.infeasible.Set(float64(infeasible))
	}
	return nil
}

// replanStreams re-runs the solver with each device's current throttle
// factor and swaps streams whose best variant changed — called on
// pressure-level transitions. Selection failures (which cannot happen
// after a successful initial plan: throttling never changes a variant's
// size) leave the stream on its current variant.
func (m *MultiRuntime) replanStreams() {
	if m.plan == nil {
		return
	}
	infeasible := 0
	for i, rt := range m.streams {
		cur := m.plan.choices[i]
		choice, err := plan.Select(m.planDevice(i), m.plan.ests)
		if err != nil {
			continue
		}
		if !choice.Feasible {
			infeasible++
		}
		if choice.Index == cur {
			continue
		}
		if err := rt.SwapBundle(m.plan.variants[choice.Index].bundle); err != nil {
			continue
		}
		rt.pfOffset = choice.Index * m.bundle.NumModels()
		m.plan.choices[i] = choice.Index
		if m.plan.replans != nil {
			m.plan.replans.Inc()
		}
	}
	if m.plan.infeasible != nil {
		m.plan.infeasible.Set(float64(infeasible))
	}
}

// StreamVariant returns the name of the planner variant stream i runs
// ("fp32", "q8", ...), or "" when planning is disabled.
func (m *MultiRuntime) StreamVariant(i int) string {
	if m.plan == nil {
		return ""
	}
	return m.plan.variants[m.plan.choices[i]].est.Name
}
